// Shared plumbing for the decoder fuzz harnesses.
//
// Several decode entry points take file paths rather than byte spans
// (SnapshotReader::Open mmaps, LoadCorpus opens), so harnesses stage the
// fuzz input in a throwaway file. ScratchFile/ScratchDir keep that cheap
// and leak-free: contents live under the system temp directory and are
// removed on destruction.

#ifndef IRHINT_FUZZ_FUZZ_UTIL_H_
#define IRHINT_FUZZ_FUZZ_UTIL_H_

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

namespace irhint_fuzz {

/// \brief A temp file holding one fuzz input; unlinked on destruction.
class ScratchFile {
 public:
  ScratchFile(const uint8_t* data, size_t size) {
    char tmpl[] = "/tmp/irhint_fuzz_XXXXXX";
    const int fd = ::mkstemp(tmpl);
    if (fd < 0) return;
    path_ = tmpl;
    size_t written = 0;
    while (written < size) {
      const ssize_t n = ::write(fd, data + written, size - written);
      if (n <= 0) break;
      written += static_cast<size_t>(n);
    }
    ::close(fd);
    ok_ = written == size;
  }
  ~ScratchFile() {
    if (!path_.empty()) ::unlink(path_.c_str());
  }
  ScratchFile(const ScratchFile&) = delete;
  ScratchFile& operator=(const ScratchFile&) = delete;

  bool ok() const { return ok_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  bool ok_ = false;
};

/// \brief A temp directory with one named file inside; removed recursively
/// on destruction. Used to stage WAL segments, whose reader derives the
/// segment sequence from the file name.
class ScratchDir {
 public:
  ScratchDir(const std::string& file_name, const uint8_t* data, size_t size) {
    char tmpl[] = "/tmp/irhint_fuzzdir_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) return;
    dir_ = tmpl;
    const std::string path = dir_ + "/" + file_name;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return;
    ok_ = size == 0 || std::fwrite(data, 1, size, f) == size;
    std::fclose(f);
    file_ = path;
  }
  ~ScratchDir() {
    if (!dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir_, ec);
    }
  }
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  bool ok() const { return ok_; }
  const std::string& dir() const { return dir_; }
  const std::string& file() const { return file_; }

 private:
  std::string dir_;
  std::string file_;
  bool ok_ = false;
};

}  // namespace irhint_fuzz

#endif  // IRHINT_FUZZ_FUZZ_UTIL_H_

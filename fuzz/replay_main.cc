// Corpus replay driver: a plain main() over LLVMFuzzerTestOneInput.
//
// libFuzzer needs Clang, but the regression corpus must run everywhere the
// tests run — including GCC-only hosts — so each harness also links against
// this driver. Arguments are corpus files or directories of them; every
// input is fed through the harness once. Exit 0 means no input crashed
// (any decode-path failure aborts the process, which ctest reports).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s CORPUS_FILE_OR_DIR...\n", argv[0]);
    return 2;
  }
  size_t inputs = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg = argv[i];
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        if (!RunFile(file)) return 1;
        ++inputs;
      }
    } else {
      if (!RunFile(arg)) return 1;
      ++inputs;
    }
  }
  std::printf("replayed %zu corpus inputs without a crash\n", inputs);
  return 0;
}

// Fuzz target: the corpus deserializer.
//
// LoadCorpus parses the dictionary, object table, and description lists
// out of a snapshot payload; hostile counts and out-of-range element ids
// must surface as Status::Corruption, never as an over-allocation or an
// out-of-bounds index into the dictionary.

#include <cstddef>
#include <cstdint>

#include "data/serialize.h"
#include "fuzz_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  irhint_fuzz::ScratchFile file(data, size);
  if (!file.ok()) return 0;
  (void)irhint::LoadCorpus(file.path());
  return 0;
}

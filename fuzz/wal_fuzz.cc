// Fuzz target: the WAL decoders.
//
// Two layers. First the pure in-memory record decoder — DecodeWalRecord is
// handed the raw buffer at every prefix the previous decode left off at,
// which is exactly how ReadWalSegment walks a segment. Then the input is
// staged as a single live segment (wal-000001.log) and the full directory
// audit runs over it, covering segment-header parsing, torn-tail
// classification, and recovery replay. Every outcome must be a Status;
// crashes and hangs are bugs.

#include <cstddef>
#include <cstdint>

#include "core/fsck.h"
#include "fuzz_util.h"
#include "wal/wal_format.h"
#include "wal/wal_reader.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Layer 1: raw record decoding, starting just past where a segment
  // header would sit and at offset zero (both occur in practice).
  const size_t starts[] = {0, irhint::kWalSegmentHeaderBytes};
  for (size_t start : starts) {
    size_t offset = start;
    while (offset < size) {
      irhint::WalRecord record;
      size_t consumed = 0;
      const irhint::Status status =
          irhint::DecodeWalRecord(data, size, offset, &record, &consumed);
      if (!status.ok() || consumed == 0) break;
      offset += consumed;
    }
  }

  // Layer 2: the same bytes as a live segment in an otherwise empty
  // directory, through the full fsck audit (segment read + recovery).
  irhint_fuzz::ScratchDir dir(irhint::WalSegmentFileName(1), data, size);
  if (dir.ok()) {
    (void)irhint::CheckWalDirectory(dir.dir(), irhint::CheckLevel::kDeep);
  }
  return 0;
}

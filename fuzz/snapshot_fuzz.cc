// Fuzz target: the snapshot decode path, end to end.
//
// Contract under test (DESIGN.md §9): arbitrary bytes presented as a
// snapshot file must come back as a non-OK Status — never a crash, UB, or
// unbounded allocation. The harness drives the same deep pass irhint_fsck
// uses, in both mmap and buffered modes, so every section decoder,
// LoadIndexSnapshot branch, and IntegrityCheck implementation sits behind
// the fuzzer.

#include <cstddef>
#include <cstdint>

#include "core/fsck.h"
#include "fuzz_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  irhint_fuzz::ScratchFile file(data, size);
  if (!file.ok()) return 0;

  irhint::SnapshotReadOptions mapped;
  (void)irhint::CheckSnapshotFile(file.path(), irhint::CheckLevel::kDeep,
                                  mapped);

  irhint::SnapshotReadOptions buffered;
  buffered.use_mmap = false;
  (void)irhint::CheckSnapshotFile(file.path(), irhint::CheckLevel::kDeep,
                                  buffered);
  return 0;
}

#include "ir/division_index.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace irhint {
namespace {

using Ids = std::vector<ObjectId>;

TEST(DivisionTifTest, SingleElementModes) {
  DivisionTif tif;
  tif.Add(1, Interval(10, 20), {5});
  tif.Add(2, Interval(30, 40), {5});
  tif.Add(3, Interval(50, 60), {5});
  tif.Finalize();

  DivisionQueryScratch scratch;
  Ids out;
  const Interval q(25, 45);
  // kBoth: only object 2 overlaps.
  tif.Query({5}, q, CheckMode::kBoth, &scratch, &out);
  EXPECT_EQ(out, (Ids{2}));
  // kStartOnly (end >= q.st): objects 2 and 3.
  out.clear();
  tif.Query({5}, q, CheckMode::kStartOnly, &scratch, &out);
  EXPECT_EQ(out, (Ids{2, 3}));
  // kEndOnly (st <= q.end): objects 1 and 2.
  out.clear();
  tif.Query({5}, q, CheckMode::kEndOnly, &scratch, &out);
  EXPECT_EQ(out, (Ids{1, 2}));
  // kNone: everything.
  out.clear();
  tif.Query({5}, q, CheckMode::kNone, &scratch, &out);
  EXPECT_EQ(out, (Ids{1, 2, 3}));
}

TEST(DivisionTifTest, MultiElementIntersection) {
  DivisionTif tif;
  tif.Add(1, Interval(0, 9), {2, 7});
  tif.Add(2, Interval(0, 9), {2});
  tif.Add(3, Interval(0, 9), {2, 7, 9});
  tif.Finalize();

  DivisionQueryScratch scratch;
  Ids out;
  tif.Query({7, 2}, Interval(0, 9), CheckMode::kNone, &scratch, &out);
  EXPECT_EQ(out, (Ids{1, 3}));
  out.clear();
  tif.Query({9, 7, 2}, Interval(0, 9), CheckMode::kNone, &scratch, &out);
  EXPECT_EQ(out, (Ids{3}));
  out.clear();
  tif.Query({4}, Interval(0, 9), CheckMode::kNone, &scratch, &out);
  EXPECT_TRUE(out.empty());  // unknown element
}

TEST(DivisionTifTest, DeltaAfterFinalizeIsVisibleAndOrdered) {
  DivisionTif tif;
  tif.Add(1, Interval(0, 9), {3});
  tif.Add(2, Interval(0, 9), {3});
  tif.Finalize();
  tif.Add(5, Interval(0, 9), {3});  // lands in the delta

  DivisionQueryScratch scratch;
  Ids out;
  tif.Query({3}, Interval(0, 9), CheckMode::kNone, &scratch, &out);
  EXPECT_EQ(out, (Ids{1, 2, 5}));  // core then delta, still id-sorted

  // Finalize again merges the delta into the core.
  tif.Finalize();
  out.clear();
  tif.Query({3}, Interval(0, 9), CheckMode::kNone, &scratch, &out);
  EXPECT_EQ(out, (Ids{1, 2, 5}));
}

TEST(DivisionTifTest, FinalizeMergesDisjointAndOverlappingKeys) {
  DivisionTif tif;
  tif.Add(1, Interval(0, 9), {10, 30});
  tif.Finalize();
  // New keys both before, between and after existing core keys, plus an
  // existing key.
  tif.Add(2, Interval(0, 9), {5, 20, 30, 40});
  tif.Finalize();

  DivisionQueryScratch scratch;
  Ids out;
  tif.Query({30}, Interval(0, 9), CheckMode::kNone, &scratch, &out);
  EXPECT_EQ(out, (Ids{1, 2}));
  out.clear();
  tif.Query({5}, Interval(0, 9), CheckMode::kNone, &scratch, &out);
  EXPECT_EQ(out, (Ids{2}));
  out.clear();
  tif.Query({10}, Interval(0, 9), CheckMode::kNone, &scratch, &out);
  EXPECT_EQ(out, (Ids{1}));
  out.clear();
  tif.Query({40}, Interval(0, 9), CheckMode::kNone, &scratch, &out);
  EXPECT_EQ(out, (Ids{2}));
}

TEST(DivisionTifTest, TombstoneInCoreAndDelta) {
  DivisionTif tif;
  tif.Add(1, Interval(0, 9), {3});
  tif.Finalize();
  tif.Add(2, Interval(0, 9), {3});  // delta

  EXPECT_EQ(tif.Tombstone(1, {3}), 1u);  // core hit
  EXPECT_EQ(tif.Tombstone(2, {3}), 1u);  // delta hit
  EXPECT_EQ(tif.Tombstone(9, {3}), 0u);  // absent

  DivisionQueryScratch scratch;
  Ids out;
  tif.Query({3}, Interval(0, 9), CheckMode::kNone, &scratch, &out);
  EXPECT_TRUE(out.empty());
}

TEST(DivisionIdIndexTest, IntersectAgainstCandidates) {
  DivisionIdIndex index;
  index.Add(1, {2, 4});
  index.Add(2, {2});
  index.Add(3, {2, 4});
  index.Finalize();

  DivisionQueryScratch scratch;
  Ids out;
  index.Intersect({1, 2, 3}, {2, 4}, &scratch, &out);
  EXPECT_EQ(out, (Ids{1, 3}));
  out.clear();
  index.Intersect({2}, {2, 4}, &scratch, &out);
  EXPECT_TRUE(out.empty());
  out.clear();
  index.Intersect({}, {2}, &scratch, &out);
  EXPECT_TRUE(out.empty());
}

TEST(DivisionIdIndexTest, IntersectListsEqualsIntersectWithUniverse) {
  DivisionIdIndex index;
  index.Add(1, {2, 4, 6});
  index.Add(2, {2, 6});
  index.Add(3, {4, 6});
  index.Add(4, {2, 4, 6});
  index.Finalize();

  DivisionQueryScratch scratch;
  Ids fast, slow;
  index.IntersectLists({2, 4}, &scratch, &fast);
  index.Intersect({1, 2, 3, 4}, {2, 4}, &scratch, &slow);
  EXPECT_EQ(fast, slow);
  EXPECT_EQ(fast, (Ids{1, 4}));

  fast.clear();
  index.IntersectLists({6}, &scratch, &fast);
  EXPECT_EQ(fast, (Ids{1, 2, 3, 4}));
}

TEST(DivisionIdIndexTest, MemoryShrinksAfterFinalize) {
  DivisionIdIndex index;
  for (ObjectId id = 0; id < 500; ++id) {
    index.Add(id, {id % 37, 37 + id % 11});
  }
  const size_t before = index.MemoryUsageBytes();
  index.Finalize();
  EXPECT_LT(index.MemoryUsageBytes(), before);
  EXPECT_EQ(index.NumPostings(), 1000u);
}

}  // namespace
}  // namespace irhint

// Dedicated tests for the two tIF+HINT variants (Algorithms 3 and 4) and
// the tIF+HINT+Slicing hybrid (Section 3.2).

#include "irfirst/tif_hint.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/naive_scan.h"
#include "data/synthetic.h"
#include "irfirst/tif_hint_slicing.h"

namespace irhint {
namespace {

Corpus TestCorpus(uint64_t seed = 21) {
  SyntheticParams params;
  params.cardinality = 1500;
  params.domain = 200000;
  params.alpha = 1.1;
  params.sigma = 40000;
  params.dictionary_size = 60;
  params.description_size = 6;
  params.seed = seed;
  return GenerateSynthetic(params);
}

std::vector<ObjectId> Sorted(std::vector<ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(TifHintTest, VariantsAgreeAcrossM) {
  const Corpus corpus = TestCorpus();
  NaiveScan oracle;
  ASSERT_TRUE(oracle.Build(corpus).ok());

  for (const int m : {1, 3, 6, 9}) {
    TifHintOptions bs_options;
    bs_options.num_bits = m;
    bs_options.mode = TifHintMode::kBinarySearch;
    TifHint bs(bs_options);
    ASSERT_TRUE(bs.Build(corpus).ok());

    TifHintOptions ms_options;
    ms_options.num_bits = m;
    ms_options.mode = TifHintMode::kMergeSort;
    TifHint ms(ms_options);
    ASSERT_TRUE(ms.Build(corpus).ok());

    std::vector<ObjectId> expected, a, b;
    Query q(Interval(30000, 90000), {0, 1});
    oracle.Query(q, &expected);
    bs.Query(q, &a);
    ms.Query(q, &b);
    EXPECT_EQ(Sorted(a), Sorted(expected)) << "bs m=" << m;
    EXPECT_EQ(Sorted(b), Sorted(expected)) << "ms m=" << m;
  }
}

TEST(TifHintTest, NamesReflectVariant) {
  TifHintOptions options;
  options.mode = TifHintMode::kBinarySearch;
  EXPECT_EQ(TifHint(options).Name(), "tIF+HINT(bs)");
  options.mode = TifHintMode::kMergeSort;
  EXPECT_EQ(TifHint(options).Name(), "tIF+HINT(ms)");
}

TEST(TifHintTest, PostingsHintExposesPerElementIndex) {
  const Corpus corpus = TestCorpus();
  TifHint index;
  ASSERT_TRUE(index.Build(corpus).ok());
  const HintIndex* hint = index.PostingsHint(0);
  ASSERT_NE(hint, nullptr);
  // Entries (incl. replicas) of element 0's HINT cover at least its
  // frequency.
  EXPECT_GE(hint->NumEntries(), index.Frequency(0));
  EXPECT_EQ(index.PostingsHint(static_cast<ElementId>(9999)), nullptr);
}

TEST(TifHintTest, SingleElementQueryIsPlainRangeQuery) {
  const Corpus corpus = TestCorpus();
  TifHint index;
  ASSERT_TRUE(index.Build(corpus).ok());
  NaiveScan oracle;
  ASSERT_TRUE(oracle.Build(corpus).ok());
  std::vector<ObjectId> a, expected;
  const Query q(Interval(0, corpus.domain_end()), {3});
  index.Query(q, &a);
  oracle.Query(q, &expected);
  EXPECT_EQ(Sorted(a), Sorted(expected));
  EXPECT_EQ(a.size(), index.Frequency(3));
}

TEST(TifHintTest, FrequencyTracksErase) {
  const Corpus corpus = TestCorpus();
  TifHint index;
  ASSERT_TRUE(index.Build(corpus).ok());
  const Object& victim = corpus.object(0);
  const ElementId e = victim.elements.front();
  const uint64_t before = index.Frequency(e);
  ASSERT_TRUE(index.Erase(victim).ok());
  EXPECT_EQ(index.Frequency(e), before - 1);
}

TEST(TifHintSlicingTest, MatchesOracleAcrossConfigs) {
  const Corpus corpus = TestCorpus(22);
  NaiveScan oracle;
  ASSERT_TRUE(oracle.Build(corpus).ok());
  for (const uint32_t slices : {1u, 4u, 16u}) {
    for (const int m : {2, 5}) {
      TifHintSlicingOptions options;
      options.num_slices = slices;
      options.num_bits = m;
      TifHintSlicing index(options);
      ASSERT_TRUE(index.Build(corpus).ok());
      std::vector<ObjectId> expected, actual;
      for (const auto& q :
           {Query(Interval(10000, 60000), {0, 1, 2}),
            Query(Interval(0, corpus.domain_end()), {1}),
            Query(Interval(99000, 99000), {0, 2})}) {
        oracle.Query(q, &expected);
        index.Query(q, &actual);
        EXPECT_EQ(Sorted(actual), Sorted(expected))
            << "slices=" << slices << " m=" << m;
      }
    }
  }
}

TEST(TifHintSlicingTest, DualCopiesStayConsistentUnderUpdates) {
  const Corpus corpus = TestCorpus(23);
  const Corpus prefix = corpus.Prefix(1000);
  TifHintSlicing index;
  ASSERT_TRUE(index.Build(prefix).ok());
  NaiveScan oracle;
  ASSERT_TRUE(oracle.Build(prefix).ok());
  // Insert the rest, erase a slab, re-check.
  for (size_t i = 1000; i < corpus.size(); ++i) {
    ASSERT_TRUE(index.Insert(corpus.object(static_cast<ObjectId>(i))).ok());
    ASSERT_TRUE(oracle.Insert(corpus.object(static_cast<ObjectId>(i))).ok());
  }
  for (size_t i = 100; i < 200; ++i) {
    ASSERT_TRUE(index.Erase(corpus.object(static_cast<ObjectId>(i))).ok());
    ASSERT_TRUE(oracle.Erase(corpus.object(static_cast<ObjectId>(i))).ok());
  }
  std::vector<ObjectId> expected, actual;
  const Query q(Interval(20000, 150000), {0, 1});
  oracle.Query(q, &expected);
  index.Query(q, &actual);
  EXPECT_EQ(Sorted(actual), Sorted(expected));
}

TEST(TifHintSlicingTest, HybridIsSmallerWithIdStEntries) {
  // The hybrid's second copy stores <id, t_st> instead of full postings;
  // its total size must be below HINT copy + a full-posting slicing copy.
  const Corpus corpus = TestCorpus(24);
  TifHintSlicing hybrid;
  ASSERT_TRUE(hybrid.Build(corpus).ok());
  EXPECT_GT(hybrid.MemoryUsageBytes(), 0u);
  // Sanity: hybrid must cost more than a bare merge-sort tIF+HINT (it
  // stores the postings twice).
  TifHintOptions ms;
  ms.mode = TifHintMode::kMergeSort;
  TifHint bare(ms);
  ASSERT_TRUE(bare.Build(corpus).ok());
  EXPECT_GT(hybrid.MemoryUsageBytes(), bare.MemoryUsageBytes());
}

}  // namespace
}  // namespace irhint

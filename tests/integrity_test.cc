// Tests for IntegrityCheck (DESIGN.md §9).
//
// Positive direction: a freshly built, a live-updated, a snapshot
// round-tripped, and a WAL-recovered index of every kind passes the deep
// pass. Negative direction: IntegrityTestPeer reaches through the friend
// declarations to seed one representative corruption per class — unsorted
// postings, an interval filed in a non-canonical HINT division, a dangling
// size-variant id entry, desynced live counters, a stale sharding
// prefix-max — and the deep pass must return a non-OK Status (never crash)
// for each.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/durable_index.h"
#include "core/factory.h"
#include "core/integrity.h"
#include "core/irhint_perf.h"
#include "core/irhint_size.h"
#include "data/synthetic.h"
#include "irfirst/tif_hint.h"
#include "irfirst/tif_sharding.h"
#include "storage/index_io.h"

namespace irhint {

// Friend of every index class (and their storage internals): each helper
// plants exactly one corruption and returns false if the built instance
// has no site to corrupt (so tests can fail loudly instead of silently
// passing on an empty structure).
struct IntegrityTestPeer {
  // Swaps two postings inside one element list of one division, breaking
  // the id sort order the CSR core guarantees.
  static bool UnsortPerfPostings(IrHintPerf* index) {
    bool done = false;
    index->levels_.ForEachMutable([&](int, uint64_t,
                                      IrHintPerf::Partition& part) {
      if (done) return;
      for (DivisionTif& sub : part.subs) {
        auto& dp = sub.postings_;
        for (size_t i = 0; i + 1 < dp.offsets_.size() && !done; ++i) {
          if (dp.offsets_[i + 1] - dp.offsets_[i] >= 2) {
            Posting* data = dp.postings_.MutableData();
            std::swap(data[dp.offsets_[i]], data[dp.offsets_[i] + 1]);
            done = true;
          }
        }
        if (done) return;
      }
    });
    return done;
  }

  // Rewrites one stored posting's interval to [0, 0], whose canonical
  // dyadic cover is a single leaf partition — so the entry no longer
  // belongs where it is filed.
  static bool MisfilePerfInterval(IrHintPerf* index) {
    bool done = false;
    const int m = index->m_;
    index->levels_.ForEachMutable([&](int level, uint64_t key,
                                      IrHintPerf::Partition& part) {
      if (done) return;
      for (int role = 0; role < 4; ++role) {
        // Skip the one slot [0, 0] canonically lands in.
        if (level == m && key == 0 && role == IrHintPerf::kOin) continue;
        auto& dp = part.subs[role].postings_;
        if (dp.postings_.size() > 0) {
          Posting* data = dp.postings_.MutableData();
          if (data[0].id == kTombstoneId) continue;
          data[0].st = 0;
          data[0].end = 0;
          done = true;
          return;
        }
      }
    });
    return done;
  }

  // Repoints one live id-index entry at an object id absent from the
  // partition's interval stores.
  static bool DangleSizeId(IrHintSize* index) {
    bool done = false;
    index->levels_.ForEachMutable([&](int, uint64_t,
                                      IrHintSize::Partition& part) {
      if (done) return;
      auto& dp = part.originals_index.postings_;
      if (dp.postings_.size() > 0) {
        IdEntry* data = dp.postings_.MutableData();
        if (data[0].id == kTombstoneId) return;
        data[0].id = 0x7FFFFFF0u;  // far beyond any corpus object id
        done = true;
      }
    });
    return done;
  }

  // Desyncs the per-slot live counter from the postings HINT under it.
  static bool DesyncTifHintLiveCount(TifHint* index) {
    if (index->live_counts_.empty()) return false;
    ++index->live_counts_[0];
    return true;
  }

  // Stales one shard's prefix-max array relative to its entries.
  static bool StaleShardPrefixMax(TifSharding* index) {
    for (auto& list : index->lists_) {
      for (auto& shard : list.shards) {
        if (!shard.prefix_max_end.empty()) {
          shard.prefix_max_end.back() += 1;
          return true;
        }
      }
    }
    return false;
  }
};

namespace {

Corpus TestCorpus() {
  SyntheticParams params;
  params.cardinality = 800;
  params.domain = 100000;
  params.sigma = 20000;
  params.dictionary_size = 120;
  params.description_size = 5;
  params.seed = 17;
  return GenerateSynthetic(params);
}

std::string KindTestName(const ::testing::TestParamInfo<IndexKind>& info) {
  std::string name(IndexKindName(info.param));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class IntegrityCleanTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(IntegrityCleanTest, FreshBuildPassesBothLevels) {
  const Corpus corpus = TestCorpus();
  std::unique_ptr<TemporalIrIndex> index = CreateIndex(GetParam());
  ASSERT_TRUE(index->Build(corpus).ok());
  EXPECT_TRUE(index->IntegrityCheck(CheckLevel::kQuick).ok());
  EXPECT_TRUE(index->IntegrityCheck(CheckLevel::kDeep).ok());
}

TEST_P(IntegrityCleanTest, UnbuiltIndexPasses) {
  std::unique_ptr<TemporalIrIndex> index = CreateIndex(GetParam());
  EXPECT_TRUE(index->IntegrityCheck(CheckLevel::kDeep).ok());
}

TEST_P(IntegrityCleanTest, LiveUpdatesKeepInvariants) {
  const Corpus corpus = TestCorpus();
  const Corpus prefix = corpus.Prefix(corpus.size() * 9 / 10);
  std::unique_ptr<TemporalIrIndex> index = CreateIndex(GetParam());
  ASSERT_TRUE(index->Build(prefix).ok());
  for (size_t id = prefix.size(); id < corpus.size(); ++id) {
    ASSERT_TRUE(index->Insert(corpus.object(static_cast<ObjectId>(id))).ok());
  }
  for (size_t id = 0; id < corpus.size(); id += 4) {
    ASSERT_TRUE(index->Erase(corpus.object(static_cast<ObjectId>(id))).ok());
  }
  EXPECT_TRUE(index->IntegrityCheck(CheckLevel::kDeep).ok());
}

TEST_P(IntegrityCleanTest, SnapshotRoundTripPasses) {
  const Corpus corpus = TestCorpus();
  std::unique_ptr<TemporalIrIndex> index = CreateIndex(GetParam());
  ASSERT_TRUE(index->Build(corpus).ok());
  const std::string path = std::string(::testing::TempDir()) +
                           "/integrity_rt_" + KindTestName({GetParam(), 0}) +
                           ".snap";
  ASSERT_TRUE(SaveIndex(*index, path).ok());
  auto loaded = LoadIndexSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->index->IntegrityCheck(CheckLevel::kDeep).ok());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, IntegrityCleanTest,
                         ::testing::ValuesIn(AllIndexKinds()), KindTestName);

TEST(IntegrityDurableTest, WalRecoveredIndexPasses) {
  const Corpus corpus = TestCorpus();
  // WAL directories accumulate state across test-binary runs; start clean.
  const std::string dir =
      std::string(::testing::TempDir()) + "/integrity_wal_recovered";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  {
    auto index = DurableIndex::Open(dir);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    for (size_t id = 0; id < 200; ++id) {
      ASSERT_TRUE(
          (*index)->Insert(corpus.object(static_cast<ObjectId>(id))).ok());
    }
    EXPECT_TRUE((*index)->IntegrityCheck(CheckLevel::kDeep).ok());
  }
  auto reopened = DurableIndex::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE((*reopened)->IntegrityCheck(CheckLevel::kQuick).ok());
  EXPECT_TRUE((*reopened)->IntegrityCheck(CheckLevel::kDeep).ok());
}

// -- seeded corruption, one test per class ----------------------------------

TEST(IntegrityCorruptionTest, UnsortedPostingsDetected) {
  const Corpus corpus = TestCorpus();
  IrHintPerf index;
  ASSERT_TRUE(index.Build(corpus).ok());
  ASSERT_TRUE(index.IntegrityCheck(CheckLevel::kDeep).ok());
  ASSERT_TRUE(IntegrityTestPeer::UnsortPerfPostings(&index));
  const Status status = index.IntegrityCheck(CheckLevel::kDeep);
  EXPECT_FALSE(status.ok()) << "unsorted postings not detected";
}

TEST(IntegrityCorruptionTest, IntervalInWrongDivisionDetected) {
  const Corpus corpus = TestCorpus();
  IrHintPerf index;
  ASSERT_TRUE(index.Build(corpus).ok());
  ASSERT_TRUE(index.IntegrityCheck(CheckLevel::kDeep).ok());
  ASSERT_TRUE(IntegrityTestPeer::MisfilePerfInterval(&index));
  const Status status = index.IntegrityCheck(CheckLevel::kDeep);
  EXPECT_FALSE(status.ok()) << "misfiled interval not detected";
}

TEST(IntegrityCorruptionTest, DanglingSizeVariantIdDetected) {
  const Corpus corpus = TestCorpus();
  IrHintSize index;
  ASSERT_TRUE(index.Build(corpus).ok());
  ASSERT_TRUE(index.IntegrityCheck(CheckLevel::kDeep).ok());
  ASSERT_TRUE(IntegrityTestPeer::DangleSizeId(&index));
  const Status status = index.IntegrityCheck(CheckLevel::kDeep);
  EXPECT_FALSE(status.ok()) << "dangling id entry not detected";
}

TEST(IntegrityCorruptionTest, DesyncedLiveCountDetected) {
  const Corpus corpus = TestCorpus();
  TifHint index{TifHintOptions{}};
  ASSERT_TRUE(index.Build(corpus).ok());
  ASSERT_TRUE(index.IntegrityCheck(CheckLevel::kDeep).ok());
  ASSERT_TRUE(IntegrityTestPeer::DesyncTifHintLiveCount(&index));
  const Status status = index.IntegrityCheck(CheckLevel::kDeep);
  EXPECT_FALSE(status.ok()) << "desynced live count not detected";
}

TEST(IntegrityCorruptionTest, StaleShardingDerivedStateDetected) {
  const Corpus corpus = TestCorpus();
  TifSharding index{TifShardingOptions{}};
  ASSERT_TRUE(index.Build(corpus).ok());
  ASSERT_TRUE(index.IntegrityCheck(CheckLevel::kDeep).ok());
  ASSERT_TRUE(IntegrityTestPeer::StaleShardPrefixMax(&index));
  const Status status = index.IntegrityCheck(CheckLevel::kDeep);
  EXPECT_FALSE(status.ok()) << "stale prefix-max array not detected";
}

}  // namespace
}  // namespace irhint

#include <gtest/gtest.h>

#include "data/real_sim.h"
#include "data/synthetic.h"

namespace irhint {
namespace {

TEST(SyntheticTest, DeterministicInSeed) {
  SyntheticParams params;
  params.cardinality = 500;
  params.domain = 100000;
  params.dictionary_size = 100;
  params.description_size = 5;
  const Corpus a = GenerateSynthetic(params);
  const Corpus b = GenerateSynthetic(params);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.object(i).interval, b.object(i).interval);
    EXPECT_EQ(a.object(i).elements, b.object(i).elements);
  }
  params.seed = 43;
  const Corpus c = GenerateSynthetic(params);
  bool any_differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a.object(i).interval == c.object(i).interval)) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(SyntheticTest, RespectsStructuralParameters) {
  SyntheticParams params;
  params.cardinality = 2000;
  params.domain = 50000;
  params.dictionary_size = 200;
  params.description_size = 7;
  const Corpus corpus = GenerateSynthetic(params);
  EXPECT_EQ(corpus.size(), 2000u);
  EXPECT_EQ(corpus.dictionary().size(), 200u);
  EXPECT_EQ(corpus.domain_end(), params.domain - 1);
  for (const Object& o : corpus.objects()) {
    EXPECT_EQ(o.elements.size(), 7u);  // distinct by construction
    EXPECT_LE(o.interval.end, corpus.domain_end());
    EXPECT_LE(o.interval.st, o.interval.end);
    for (ElementId e : o.elements) EXPECT_LT(e, 200u);
  }
}

TEST(SyntheticTest, AlphaControlsDurations) {
  SyntheticParams params;
  params.cardinality = 3000;
  params.domain = 1000000;
  params.description_size = 5;
  params.dictionary_size = 100;
  params.alpha = 1.01;
  const double long_avg = GenerateSynthetic(params).Stats().avg_duration;
  params.alpha = 1.8;
  const Corpus short_corpus = GenerateSynthetic(params);
  const double short_avg = short_corpus.Stats().avg_duration;
  EXPECT_GT(long_avg, 10 * short_avg);
  // With heavy skew, length-1 intervals dominate (the paper: "with a large
  // value, the majority of intervals have length 1").
  size_t length_one = 0;
  for (const Object& o : short_corpus.objects()) {
    if (o.interval.Length() == 1) ++length_one;
  }
  EXPECT_GT(static_cast<double>(length_one) /
                static_cast<double>(short_corpus.size()),
            0.4);
}

TEST(SyntheticTest, ZetaControlsElementSkew) {
  SyntheticParams params;
  params.cardinality = 3000;
  params.domain = 100000;
  params.dictionary_size = 1000;
  params.description_size = 5;
  params.zeta = 1.0;
  const auto mild = GenerateSynthetic(params).Stats();
  params.zeta = 2.0;
  const auto heavy = GenerateSynthetic(params).Stats();
  EXPECT_GT(heavy.max_element_frequency, mild.max_element_frequency);
}

TEST(SyntheticTest, SigmaControlsSpread) {
  SyntheticParams params;
  params.cardinality = 3000;
  params.domain = 10000000;
  params.alpha = 1.8;  // near-point intervals
  params.dictionary_size = 100;
  params.description_size = 5;
  params.sigma = 1000;
  const Corpus tight = GenerateSynthetic(params);
  params.sigma = 2000000;
  const Corpus wide = GenerateSynthetic(params);
  // Midpoint spread: compare the fraction within 1% of the center.
  auto near_center = [](const Corpus& corpus) {
    const Time center = (corpus.domain_end() + 1) / 2;
    const Time band = (corpus.domain_end() + 1) / 100;
    size_t n = 0;
    for (const Object& o : corpus.objects()) {
      const Time mid = o.interval.st + o.interval.Length() / 2;
      if (mid >= center - band && mid <= center + band) ++n;
    }
    return static_cast<double>(n) / static_cast<double>(corpus.size());
  };
  EXPECT_GT(near_center(tight), 0.95);
  EXPECT_LT(near_center(wide), 0.5);
}

TEST(RealSimTest, EclogMatchesPublishedShape) {
  const Corpus corpus = MakeEclogLike(0.05);
  const CorpusStats stats = corpus.Stats();
  // Table 3 targets: domain 15.8M seconds, mean duration ~8.4% of it,
  // mean |d| ~72, min duration 1.
  EXPECT_EQ(corpus.domain_end(), 15807599u - 1);
  EXPECT_NEAR(stats.avg_duration_pct, 8.4, 1.5);
  EXPECT_NEAR(stats.avg_description_size, 72.0, 15.0);
  EXPECT_GE(stats.min_duration, 1u);
  // Most frequent element in roughly 47% of objects (140423 / 300311).
  const double max_freq_pct = 100.0 *
      static_cast<double>(stats.max_element_frequency) /
      static_cast<double>(stats.cardinality);
  EXPECT_NEAR(max_freq_pct, 47.0, 12.0);
}

TEST(RealSimTest, WikipediaMatchesPublishedShape) {
  const Corpus corpus = MakeWikipediaLike(0.004);
  const CorpusStats stats = corpus.Stats();
  EXPECT_EQ(corpus.domain_end(), 126230391u - 1);
  EXPECT_NEAR(stats.avg_duration_pct, 5.2, 1.2);
  EXPECT_NEAR(stats.avg_description_size, 367.0, 80.0);
  // A near-universal element exists (max frequency ~99.9% of objects).
  const double max_freq_pct = 100.0 *
      static_cast<double>(stats.max_element_frequency) /
      static_cast<double>(stats.cardinality);
  EXPECT_GT(max_freq_pct, 95.0);
}

TEST(RealSimTest, ScaleControlsCardinality) {
  const Corpus small = MakeEclogLike(0.01);
  const Corpus large = MakeEclogLike(0.03);
  EXPECT_NEAR(static_cast<double>(large.size()),
              3.0 * static_cast<double>(small.size()),
              static_cast<double>(small.size()) * 0.2);
}

}  // namespace
}  // namespace irhint

// Regression tests pinned to the paper's own worked examples: Figure 4
// (HINT partitioning/query), Figure 1 + Example 2.2 (the running corpus),
// and the Figure 6 / Table 2 irHINT partitioning.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "data/corpus.h"
#include "hint/hint.h"
#include "hint/traversal.h"

namespace irhint {
namespace {

std::vector<ObjectId> Sorted(std::vector<ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// Figure 4 of the paper: m = 3, interval i spanning cells [1, 4], query q
// spanning cells [4, 7].
TEST(PaperFigure4Test, IntervalAssignment) {
  std::set<std::tuple<int, uint64_t, bool>> assignments;
  AssignToPartitions(3, 1, 4, [&](const PartitionRef& ref) {
    assignments.insert({ref.level, ref.index, ref.original});
  });
  // "interval i is assigned to partitions P3,1, P2,1, and P3,4", original
  // in P3,1 (it starts there), replicas elsewhere.
  EXPECT_EQ(assignments,
            (std::set<std::tuple<int, uint64_t, bool>>{
                {3, 1, true}, {2, 1, false}, {3, 4, false}}));
}

TEST(PaperFigure4Test, QueryVisitsRelevantPartitions) {
  // "For query q... only partitions P3,4-P3,7, P2,2, P2,3, P1,1 and P0,0
  // will be accessed."
  TraversalState state(3, 4, 7);
  std::set<std::pair<int, uint64_t>> relevant;
  for (int level = 3; level >= 0; --level) {
    const LevelPlan plan = state.PlanLevel(level);
    for (uint64_t j = plan.f; j <= plan.l; ++j) relevant.insert({level, j});
    state.Descend(level);
  }
  EXPECT_EQ(relevant, (std::set<std::pair<int, uint64_t>>{{3, 4},
                                                          {3, 5},
                                                          {3, 6},
                                                          {3, 7},
                                                          {2, 2},
                                                          {2, 3},
                                                          {1, 1},
                                                          {0, 0}}));
}

TEST(PaperFigure4Test, BottomUpFlagPruning) {
  // "no comparisons are needed in partition P2,3" — q covers cells [4,7];
  // at level 3 the last relevant partition is 7 (odd), so complast clears
  // before level 2, and P2,3 (the last relevant partition at level 2) is
  // reported without comparisons.
  TraversalState state(3, 4, 7);
  state.Descend(3);
  EXPECT_FALSE(state.complast());
  // f = 4 is even, so compfirst clears as well ("comparisons are necessary
  // only in 4 partitions" at the bottom level).
  EXPECT_FALSE(state.compfirst());
  const LevelPlan level2 = state.PlanLevel(2);
  EXPECT_EQ(level2.last_originals, CheckMode::kNone);
  EXPECT_EQ(level2.first_originals, CheckMode::kNone);
}

// The running example (Figure 1 / Example 2.2) answered by every index.
TEST(PaperRunningExampleTest, AllIndexesAnswerExample22) {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(3));
  corpus.Append(Interval(55, 95), {0, 1, 2});  // o1
  corpus.Append(Interval(12, 30), {0, 2});     // o2
  corpus.Append(Interval(40, 58), {1});        // o3
  corpus.Append(Interval(5, 90), {0, 1, 2});   // o4
  corpus.Append(Interval(20, 45), {1, 2});     // o5
  corpus.Append(Interval(25, 60), {2});        // o6
  corpus.Append(Interval(15, 99), {0, 2});     // o7
  corpus.Append(Interval(30, 38), {2});        // o8
  ASSERT_TRUE(corpus.Finalize().ok());

  for (const IndexKind kind : AllIndexKinds()) {
    IndexConfig config;
    config.num_slices = 4;    // Figure 2 uses 4 slices
    config.tif_hint_bits_bs = 3;  // Figures 5/6 use m = 3
    config.tif_hint_bits_ms = 3;
    config.irhint_bits = 3;
    auto index = CreateIndex(kind, config);
    ASSERT_TRUE(index->Build(corpus).ok()) << index->Name();
    std::vector<ObjectId> out;
    // "The answer to q consists of objects o2, o4 and o7."
    index->Query(Query(Interval(18, 42), {0, 2}), &out);
    EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{1, 3, 6}))
        << index->Name();
  }
}

// Figure 6: the irHINT partitioning of the running example stores o6 as an
// original in P3,1 and replicas in P2,1 (the paper's Figure 5 commentary:
// "object o6 in H[c]; the object is stored as an original in P_O3,1 and as
// a replica in P_R2,1 and P_R2,2"). With the running example's domain
// mapped to 8 cells, o6 = [25, 60] spans cells 2..4.
TEST(PaperFigure6Test, ObjectO6Partitioning) {
  const DomainMapper mapper(99, 3);
  EXPECT_EQ(mapper.Cell(25), 2u);
  EXPECT_EQ(mapper.Cell(60), 4u);
  std::set<std::tuple<int, uint64_t, bool>> assignments;
  AssignToPartitions(3, 2, 4, [&](const PartitionRef& ref) {
    assignments.insert({ref.level, ref.index, ref.original});
  });
  // Cells [2,4]: original in P2,1 (covers cells 2-3, contains the start),
  // replica in P3,4.
  EXPECT_EQ(assignments,
            (std::set<std::tuple<int, uint64_t, bool>>{{2, 1, true},
                                                       {3, 4, false}}));
}

}  // namespace
}  // namespace irhint

#include "data/query_gen.h"

#include <gtest/gtest.h>

#include "core/naive_scan.h"
#include "data/synthetic.h"
#include "eval/workload.h"

namespace irhint {
namespace {

Corpus TestCorpus() {
  SyntheticParams params;
  params.cardinality = 3000;
  params.domain = 1000000;
  params.alpha = 1.2;
  params.sigma = 200000;
  params.dictionary_size = 300;
  params.description_size = 8;
  params.zeta = 1.2;
  return GenerateSynthetic(params);
}

TEST(QueryGenTest, ExtentWorkloadHasRequestedShape) {
  const Corpus corpus = TestCorpus();
  WorkloadGenerator generator(corpus, 99);
  const auto queries = generator.ExtentWorkload(1.0, 3, 100);
  ASSERT_EQ(queries.size(), 100u);
  const uint64_t expected_length = (corpus.domain_end() + 1) / 100;
  for (const Query& q : queries) {
    EXPECT_EQ(q.elements.size(), 3u);
    EXPECT_EQ(q.interval.Length(), expected_length);
    EXPECT_LE(q.interval.end, corpus.domain_end());
  }
}

TEST(QueryGenTest, ExtentWorkloadIsNonEmptyByConstruction) {
  const Corpus corpus = TestCorpus();
  WorkloadGenerator generator(corpus, 100);
  NaiveScan oracle;
  ASSERT_TRUE(oracle.Build(corpus).ok());
  std::vector<ObjectId> results;
  for (const Query& q : generator.ExtentWorkload(0.1, 2, 200)) {
    oracle.Query(q, &results);
    EXPECT_FALSE(results.empty());
  }
}

TEST(QueryGenTest, StabbingExtentProducesSinglePoint) {
  const Corpus corpus = TestCorpus();
  WorkloadGenerator generator(corpus, 101);
  for (const Query& q : generator.ExtentWorkload(0.0, 2, 50)) {
    EXPECT_EQ(q.interval.st, q.interval.end);
  }
}

TEST(QueryGenTest, FrequencyBinWorkloadRespectsBin) {
  const Corpus corpus = TestCorpus();
  WorkloadGenerator generator(corpus, 102);
  const double lo = 1.0, hi = 10.0;
  const auto queries = generator.FrequencyBinWorkload(lo, hi, 0.1, 2, 100);
  EXPECT_FALSE(queries.empty());
  const double n = static_cast<double>(corpus.size());
  for (const Query& q : queries) {
    for (ElementId e : q.elements) {
      const double pct =
          100.0 * static_cast<double>(corpus.dictionary().Frequency(e)) / n;
      EXPECT_GT(pct, lo);
      EXPECT_LE(pct, hi);
    }
  }
}

TEST(QueryGenTest, EmptyWorkloadIsVerifiedEmpty) {
  const Corpus corpus = TestCorpus();
  WorkloadGenerator generator(corpus, 103);
  NaiveScan oracle;
  ASSERT_TRUE(oracle.Build(corpus).ok());
  std::vector<ObjectId> results;
  const auto queries = generator.EmptyResultWorkload(0.1, 3, 50);
  EXPECT_FALSE(queries.empty());
  for (const Query& q : queries) {
    oracle.Query(q, &results);
    EXPECT_TRUE(results.empty());
  }
}

TEST(QueryGenTest, MixedWorkloadVariesShape) {
  const Corpus corpus = TestCorpus();
  WorkloadGenerator generator(corpus, 104);
  const auto queries = generator.MixedWorkload(300);
  ASSERT_EQ(queries.size(), 300u);
  std::set<size_t> sizes;
  std::set<uint64_t> lengths;
  for (const Query& q : queries) {
    sizes.insert(q.elements.size());
    lengths.insert(q.interval.Length());
  }
  EXPECT_GE(sizes.size(), 4u);    // |q.d| varies over 1..5
  EXPECT_GE(lengths.size(), 5u);  // extents vary
}

TEST(QueryGenTest, DeterministicInSeed) {
  const Corpus corpus = TestCorpus();
  WorkloadGenerator a(corpus, 7);
  WorkloadGenerator b(corpus, 7);
  const auto qa = a.ExtentWorkload(0.5, 2, 50);
  const auto qb = b.ExtentWorkload(0.5, 2, 50);
  ASSERT_EQ(qa.size(), qb.size());
  for (size_t i = 0; i < qa.size(); ++i) {
    EXPECT_EQ(qa[i].interval, qb[i].interval);
    EXPECT_EQ(qa[i].elements, qb[i].elements);
  }
}

TEST(WorkloadTest, SelectivityBinningIsExhaustiveAndDisjoint) {
  const Corpus corpus = TestCorpus();
  WorkloadGenerator generator(corpus, 105);
  NaiveScan oracle;
  ASSERT_TRUE(oracle.Build(corpus).ok());
  const auto mixed = generator.MixedWorkload(400);
  const auto bins = BinBySelectivity(oracle, mixed, corpus.size());
  ASSERT_EQ(bins.size(), PaperSelectivityBins().size());

  size_t total = 0;
  std::vector<ObjectId> results;
  for (size_t b = 0; b < bins.size(); ++b) {
    total += bins[b].queries.size();
    const SelectivityBin spec = PaperSelectivityBins()[b];
    for (const Query& q : bins[b].queries) {
      oracle.Query(q, &results);
      const double pct = 100.0 * static_cast<double>(results.size()) /
                         static_cast<double>(corpus.size());
      if (spec.hi_pct == 0.0) {
        EXPECT_TRUE(results.empty());
      } else {
        EXPECT_GT(pct, spec.lo_pct) << bins[b].name;
        EXPECT_LE(pct, spec.hi_pct) << bins[b].name;
      }
    }
  }
  // Mixed queries are non-empty and <= 10% selective by construction, so
  // nearly all land in some bin.
  EXPECT_GE(total, mixed.size() * 9 / 10);
}

}  // namespace
}  // namespace irhint

#include "data/serialize.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace irhint {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeTest, RoundTripsCorpus) {
  SyntheticParams params;
  params.cardinality = 500;
  params.domain = 100000;
  params.dictionary_size = 64;
  params.description_size = 5;
  const Corpus original = GenerateSynthetic(params);

  const std::string path = TempPath("corpus_roundtrip.bin");
  ASSERT_TRUE(SaveCorpus(original, path).ok());
  StatusOr<Corpus> loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->size(), original.size());
  EXPECT_EQ(loaded->domain_end(), original.domain_end());
  EXPECT_EQ(loaded->dictionary().size(), original.dictionary().size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded->object(i).interval, original.object(i).interval);
    EXPECT_EQ(loaded->object(i).elements, original.object(i).elements);
  }
  // Frequencies are recomputed on load.
  EXPECT_EQ(loaded->dictionary().frequencies(),
            original.dictionary().frequencies());
  std::remove(path.c_str());
}

TEST(SerializeTest, EmptyCorpusRoundTrips) {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(10));
  corpus.DeclareDomain(42);
  ASSERT_TRUE(corpus.Finalize().ok());
  const std::string path = TempPath("corpus_empty.bin");
  ASSERT_TRUE(SaveCorpus(corpus, path).ok());
  StatusOr<Corpus> loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->domain_end(), 42u);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIoError) {
  StatusOr<Corpus> loaded = LoadCorpus("/nonexistent/dir/corpus.bin");
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIoError());
}

TEST(SerializeTest, BadMagicIsCorruption) {
  const std::string path = TempPath("corpus_badmagic.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[] = "not a corpus file at all";
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  StatusOr<Corpus> loaded = LoadCorpus(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedFileIsCorruption) {
  SyntheticParams params;
  params.cardinality = 50;
  params.domain = 1000;
  params.dictionary_size = 16;
  params.description_size = 3;
  const Corpus original = GenerateSynthetic(params);
  const std::string path = TempPath("corpus_truncated.bin");
  ASSERT_TRUE(SaveCorpus(original, path).ok());

  // Truncate the file to half its size.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);

  StatusOr<Corpus> loaded = LoadCorpus(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace irhint

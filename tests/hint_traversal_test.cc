#include "hint/traversal.h"

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "hint/domain.h"

namespace irhint {
namespace {

using Assignment = std::vector<PartitionRef>;

Assignment Assign(int m, uint64_t first, uint64_t last) {
  Assignment out;
  AssignToPartitions(m, first, last,
                     [&out](const PartitionRef& ref) { out.push_back(ref); });
  return out;
}

// Cell range covered by partition (level, index) in an m-level hierarchy.
std::pair<uint64_t, uint64_t> PartitionCells(int m, int level,
                                             uint64_t index) {
  const uint64_t width = uint64_t{1} << (m - level);
  return {index * width, (index + 1) * width - 1};
}

TEST(AssignTest, SingleCell) {
  const Assignment a = Assign(3, 5, 5);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].level, 3);
  EXPECT_EQ(a[0].index, 5u);
  EXPECT_TRUE(a[0].original);
}

TEST(AssignTest, FullDomainGoesToRoot) {
  const Assignment a = Assign(3, 0, 7);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].level, 0);
  EXPECT_EQ(a[0].index, 0u);
  EXPECT_TRUE(a[0].original);
}

TEST(AssignTest, PaperExample) {
  // Figure 4: interval spanning cells [1, 4] at m = 3 is assigned to
  // P3,1 (original), P2,1 and P3,4 (replicas).
  const Assignment a = Assign(3, 1, 4);
  ASSERT_EQ(a.size(), 3u);
  std::set<std::tuple<int, uint64_t, bool>> got;
  for (const PartitionRef& ref : a) {
    got.insert({ref.level, ref.index, ref.original});
  }
  EXPECT_TRUE(got.count({3, 1, true}));
  EXPECT_TRUE(got.count({2, 1, false}));
  EXPECT_TRUE(got.count({3, 4, false}));
}

class AssignExhaustiveTest : public ::testing::TestWithParam<int> {};

TEST_P(AssignExhaustiveTest, CoverIsExactAndMinimal) {
  const int m = GetParam();
  const uint64_t cells = uint64_t{1} << m;
  for (uint64_t first = 0; first < cells; ++first) {
    for (uint64_t last = first; last < cells; ++last) {
      const Assignment a = Assign(m, first, last);
      // At most 2 partitions per level.
      std::map<int, int> per_level;
      // Exactly one original.
      int originals = 0;
      // The union of partition extents equals [first, last], disjointly.
      uint64_t covered = 0;
      for (const PartitionRef& ref : a) {
        ++per_level[ref.level];
        if (ref.original) ++originals;
        const auto [lo, hi] = PartitionCells(m, ref.level, ref.index);
        EXPECT_GE(lo, first);
        EXPECT_LE(hi, last);
        covered += hi - lo + 1;
        // Original iff the partition contains the first cell.
        EXPECT_EQ(ref.original, lo <= first && first <= hi);
      }
      EXPECT_EQ(originals, 1) << "[" << first << "," << last << "]";
      EXPECT_EQ(covered, last - first + 1)
          << "[" << first << "," << last << "]";
      for (const auto& [level, count] : per_level) {
        EXPECT_LE(count, 2) << "level " << level;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllM, AssignExhaustiveTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6));

TEST(TraversalPlanTest, RelevantPartitionsMatchPrefixes) {
  const int m = 4;
  TraversalState state(m, 3, 11);
  for (int level = m; level >= 0; --level) {
    const LevelPlan plan = state.PlanLevel(level);
    EXPECT_EQ(plan.f, 3u >> (m - level));
    EXPECT_EQ(plan.l, 11u >> (m - level));
    state.Descend(level);
  }
}

TEST(TraversalPlanTest, FlagsClearAccordingToParity) {
  // qst cell 4 (even) clears compfirst immediately; qend cell 11 (odd)
  // clears complast immediately.
  TraversalState state(4, 4, 11);
  EXPECT_TRUE(state.compfirst());
  EXPECT_TRUE(state.complast());
  state.Descend(4);
  EXPECT_FALSE(state.compfirst());
  EXPECT_FALSE(state.complast());
}

TEST(TraversalPlanTest, BothFlagsSetAtBottomSingle) {
  TraversalState state(4, 5, 5);
  const LevelPlan plan = state.PlanLevel(4);
  EXPECT_EQ(plan.f, plan.l);
  EXPECT_EQ(plan.first_originals, CheckMode::kBoth);
  EXPECT_EQ(plan.first_replicas, CheckMode::kStartOnly);
}

TEST(SplitModesTest, OriginalsRefinement) {
  EXPECT_EQ(SplitOriginalsMode(CheckMode::kBoth),
            std::make_pair(CheckMode::kBoth, CheckMode::kEndOnly));
  EXPECT_EQ(SplitOriginalsMode(CheckMode::kStartOnly),
            std::make_pair(CheckMode::kStartOnly, CheckMode::kNone));
  EXPECT_EQ(SplitOriginalsMode(CheckMode::kEndOnly),
            std::make_pair(CheckMode::kEndOnly, CheckMode::kEndOnly));
  EXPECT_EQ(SplitOriginalsMode(CheckMode::kNone),
            std::make_pair(CheckMode::kNone, CheckMode::kNone));
}

TEST(SplitModesTest, ReplicasRefinement) {
  EXPECT_EQ(SplitReplicasMode(CheckMode::kStartOnly),
            std::make_pair(CheckMode::kStartOnly, CheckMode::kNone));
  EXPECT_EQ(SplitReplicasMode(CheckMode::kNone),
            std::make_pair(CheckMode::kNone, CheckMode::kNone));
}

TEST(DomainMapperTest, MonotoneAndClamped) {
  DomainMapper mapper(999, 4);  // 1000 raw points -> 16 cells
  uint64_t prev = 0;
  for (Time t = 0; t <= 999; ++t) {
    const uint64_t cell = mapper.Cell(t);
    EXPECT_GE(cell, prev);
    EXPECT_LT(cell, 16u);
    prev = cell;
  }
  EXPECT_EQ(mapper.Cell(0), 0u);
  EXPECT_EQ(mapper.Cell(999), 15u);
  EXPECT_EQ(mapper.Cell(5000), 15u);  // beyond-domain clamp
}

TEST(DomainMapperTest, ExactWhenDomainIsPowerOfTwo) {
  DomainMapper mapper(15, 4);  // 16 points -> 16 cells, identity
  for (Time t = 0; t <= 15; ++t) EXPECT_EQ(mapper.Cell(t), t);
}

}  // namespace
}  // namespace irhint

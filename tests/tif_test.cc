#include "ir/tif.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/corpus.h"

namespace irhint {
namespace {

Corpus RunningExample() {
  // The paper's Figure 1 corpus over D = {a=0, b=1, c=2}.
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(3));
  corpus.Append(Interval(55, 95), {0, 1, 2});  // o1
  corpus.Append(Interval(12, 30), {0, 2});     // o2
  corpus.Append(Interval(40, 58), {1});        // o3
  corpus.Append(Interval(5, 90), {0, 1, 2});   // o4
  corpus.Append(Interval(20, 45), {1, 2});     // o5
  corpus.Append(Interval(25, 60), {2});        // o6
  corpus.Append(Interval(15, 99), {0, 2});     // o7
  corpus.Append(Interval(30, 38), {2});        // o8
  EXPECT_TRUE(corpus.Finalize().ok());
  return corpus;
}

std::vector<ObjectId> Sorted(std::vector<ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(TifTest, RunningExampleQuery) {
  const Corpus corpus = RunningExample();
  TemporalInvertedFile tif;
  ASSERT_TRUE(tif.Build(corpus).ok());
  // Query of Example 2.2: interval inside the shaded area, q.d = {a, c};
  // the answer is o2, o4, o7 (ids 1, 3, 6).
  std::vector<ObjectId> out;
  tif.Query(Query(Interval(18, 42), {0, 2}), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{1, 3, 6}));
}

TEST(TifTest, FrequenciesMatchListLengths) {
  const Corpus corpus = RunningExample();
  TemporalInvertedFile tif;
  ASSERT_TRUE(tif.Build(corpus).ok());
  EXPECT_EQ(tif.Frequency(0), 4u);  // a in o1 o2 o4 o7
  EXPECT_EQ(tif.Frequency(1), 4u);  // b in o1 o3 o4 o5
  EXPECT_EQ(tif.Frequency(2), 7u);  // c in all but o3
  EXPECT_EQ(tif.Frequency(9), 0u);
}

TEST(TifTest, SortByFrequencyPutsRarestFirst) {
  const Corpus corpus = RunningExample();
  TemporalInvertedFile tif;
  ASSERT_TRUE(tif.Build(corpus).ok());
  std::vector<ElementId> elements{2, 0};
  tif.SortByFrequency(&elements);
  EXPECT_EQ(elements, (std::vector<ElementId>{0, 2}));
}

TEST(TifTest, ListsStayIdSorted) {
  const Corpus corpus = RunningExample();
  TemporalInvertedFile tif;
  ASSERT_TRUE(tif.Build(corpus).ok());
  const auto* list = tif.List(2);
  ASSERT_NE(list, nullptr);
  for (size_t i = 1; i < list->size(); ++i) {
    EXPECT_LT((*list)[i - 1].id, (*list)[i].id);
  }
}

TEST(TifTest, EraseRemovesFromResults) {
  const Corpus corpus = RunningExample();
  TemporalInvertedFile tif;
  ASSERT_TRUE(tif.Build(corpus).ok());
  ASSERT_TRUE(tif.Erase(corpus.object(3)).ok());  // delete o4
  std::vector<ObjectId> out;
  tif.Query(Query(Interval(18, 42), {0, 2}), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{1, 6}));
  EXPECT_EQ(tif.Frequency(0), 3u);
  // Double delete fails.
  EXPECT_TRUE(tif.Erase(corpus.object(3)).IsNotFound());
}

TEST(TifTest, StabbingAndFullDomainQueries) {
  const Corpus corpus = RunningExample();
  TemporalInvertedFile tif;
  ASSERT_TRUE(tif.Build(corpus).ok());
  std::vector<ObjectId> out;
  // Stabbing at t=5: only o4 starts there; query {c}.
  tif.Query(Query(Interval(5, 5), {2}), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{3}));
  // Full domain with {a, b, c}: o1 and o4.
  tif.Query(Query(Interval(0, 99), {0, 1, 2}), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{0, 3}));
}

TEST(TifTest, EmptyAndUnknownQueries) {
  const Corpus corpus = RunningExample();
  TemporalInvertedFile tif;
  ASSERT_TRUE(tif.Build(corpus).ok());
  std::vector<ObjectId> out{99};  // must be cleared
  tif.Query(Query(Interval(0, 99), {}), &out);
  EXPECT_TRUE(out.empty());
  tif.Query(Query(Interval(0, 99), {42}), &out);
  EXPECT_TRUE(out.empty());
  // Non-overlapping window.
  tif.Query(Query(Interval(97, 98), {0, 1}), &out);
  EXPECT_TRUE(out.empty());
}

TEST(TifTest, InsertAfterBuild) {
  const Corpus corpus = RunningExample();
  TemporalInvertedFile tif;
  ASSERT_TRUE(tif.Build(corpus).ok());
  ASSERT_TRUE(tif.Insert(Object(8, Interval(20, 25), {0, 2})).ok());
  std::vector<ObjectId> out;
  tif.Query(Query(Interval(18, 42), {0, 2}), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{1, 3, 6, 8}));
}

TEST(TifTest, RejectsInvertedInterval) {
  TemporalInvertedFile tif;
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(1));
  ASSERT_TRUE(tif.Build(corpus).ok());
  EXPECT_TRUE(tif.Insert(Object(0, Interval(9, 3), {0})).IsInvalidArgument());
}

}  // namespace
}  // namespace irhint

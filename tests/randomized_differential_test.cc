// Randomized differential tests for the lower-level components that the
// cross-index property suite only exercises indirectly.

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/naive_scan.h"
#include "hint/cost_model.h"
#include "ir/division_index.h"

namespace irhint {
namespace {

using Ids = std::vector<ObjectId>;

// Reference model of a division tif: per element, the list of (id,
// interval) pairs in insertion (= id) order.
struct ReferenceDivision {
  std::map<ElementId, std::vector<std::pair<ObjectId, Interval>>> lists;
  std::set<ObjectId> dead;

  void Add(ObjectId id, const Interval& iv,
           const std::vector<ElementId>& elements) {
    for (ElementId e : elements) lists[e].emplace_back(id, iv);
  }

  Ids Query(const std::vector<ElementId>& elements, const Interval& q,
            CheckMode mode) const {
    Ids out;
    const auto first = lists.find(elements[0]);
    if (first == lists.end()) return out;
    for (const auto& [id, iv] : first->second) {
      if (dead.count(id)) continue;
      bool pass = true;
      switch (mode) {
        case CheckMode::kBoth:
          pass = iv.st <= q.end && q.st <= iv.end;
          break;
        case CheckMode::kStartOnly:
          pass = q.st <= iv.end;
          break;
        case CheckMode::kEndOnly:
          pass = iv.st <= q.end;
          break;
        case CheckMode::kNone:
          break;
      }
      if (!pass) continue;
      bool in_all = true;
      for (size_t i = 1; i < elements.size() && in_all; ++i) {
        const auto it = lists.find(elements[i]);
        in_all = it != lists.end() &&
                 std::any_of(it->second.begin(), it->second.end(),
                             [&](const auto& p) { return p.first == id; });
      }
      if (in_all) out.push_back(id);
    }
    return out;
  }
};

TEST(DivisionTifDifferentialTest, RandomOpsMatchReference) {
  Rng rng(61);
  for (int round = 0; round < 20; ++round) {
    DivisionTif tif;
    ReferenceDivision reference;
    ObjectId next_id = 0;
    // Interleave adds, finalizes and tombstones.
    for (int op = 0; op < 300; ++op) {
      const double dice = rng.NextDouble();
      if (dice < 0.70) {
        const Time st = rng.Uniform(1000);
        const Interval iv(st, st + rng.Uniform(200));
        std::vector<ElementId> elements;
        const int k = 1 + static_cast<int>(rng.Uniform(4));
        for (int i = 0; i < k; ++i) {
          const ElementId e = static_cast<ElementId>(rng.Uniform(12));
          if (std::find(elements.begin(), elements.end(), e) ==
              elements.end()) {
            elements.push_back(e);
          }
        }
        std::sort(elements.begin(), elements.end());
        tif.Add(next_id, iv, elements);
        reference.Add(next_id, iv, elements);
        ++next_id;
      } else if (dice < 0.78) {
        tif.Finalize();
      } else if (dice < 0.85 && next_id > 0) {
        const ObjectId victim = static_cast<ObjectId>(rng.Uniform(next_id));
        // Tombstone under every element the reference says it has.
        std::vector<ElementId> elements;
        for (const auto& [e, list] : reference.lists) {
          for (const auto& [id, iv] : list) {
            if (id == victim) {
              elements.push_back(e);
              break;
            }
          }
        }
        if (!reference.dead.count(victim) && !elements.empty()) {
          EXPECT_EQ(tif.Tombstone(victim, elements), elements.size());
          reference.dead.insert(victim);
        }
      } else {
        // Query with random mode and elements.
        const CheckMode mode = static_cast<CheckMode>(rng.Uniform(4));
        std::vector<ElementId> elements;
        const int k = 1 + static_cast<int>(rng.Uniform(3));
        for (int i = 0; i < k; ++i) {
          const ElementId e = static_cast<ElementId>(rng.Uniform(12));
          if (std::find(elements.begin(), elements.end(), e) ==
              elements.end()) {
            elements.push_back(e);
          }
        }
        const Time st = rng.Uniform(1000);
        const Interval q(st, st + rng.Uniform(300));
        DivisionQueryScratch scratch;
        Ids out;
        tif.Query(elements, q, mode, &scratch, &out);
        EXPECT_EQ(out, reference.Query(elements, q, mode))
            << "round " << round << " op " << op;
      }
    }
  }
}

TEST(DivisionIdIndexDifferentialTest, IntersectMatchesSetAlgebra) {
  Rng rng(67);
  DivisionIdIndex index;
  std::map<ElementId, std::set<ObjectId>> reference;
  for (ObjectId id = 0; id < 500; ++id) {
    std::vector<ElementId> elements;
    for (int i = 0; i < 3; ++i) {
      const ElementId e = static_cast<ElementId>(rng.Uniform(10));
      if (std::find(elements.begin(), elements.end(), e) == elements.end()) {
        elements.push_back(e);
        reference[e].insert(id);
      }
    }
    std::sort(elements.begin(), elements.end());
    index.Add(id, elements);
    if (id == 250) index.Finalize();  // half core, half delta
  }
  DivisionQueryScratch scratch;
  for (int round = 0; round < 200; ++round) {
    // Random candidate subset + 2 elements.
    Ids candidates;
    for (ObjectId id = 0; id < 500; ++id) {
      if (rng.NextBool(0.3)) candidates.push_back(id);
    }
    const ElementId e1 = static_cast<ElementId>(rng.Uniform(10));
    const ElementId e2 = static_cast<ElementId>(rng.Uniform(10));
    Ids out;
    index.Intersect(candidates, {e1, e2}, &scratch, &out);
    Ids expected;
    for (ObjectId id : candidates) {
      if (reference[e1].count(id) && reference[e2].count(id)) {
        expected.push_back(id);
      }
    }
    EXPECT_EQ(out, expected);
  }
}

TEST(CostModelDifferentialTest, HigherProbeCostNeverRaisesM) {
  Rng rng(71);
  std::vector<IntervalRecord> records;
  for (ObjectId i = 0; i < 3000; ++i) {
    const Time st = rng.Uniform(1 << 20);
    records.push_back(IntervalRecord{
        i, Interval(st, std::min<Time>((1 << 20) - 1,
                                       st + rng.Uniform(1 << 12)))});
  }
  int prev_m = 1000;
  for (const double probe : {1.0, 8.0, 32.0, 128.0, 512.0}) {
    CostModelOptions options;
    options.partition_probe_cost = probe;
    const int m = ChooseHintBits(records, (1 << 20) - 1, options);
    EXPECT_LE(m, prev_m) << "probe=" << probe;
    prev_m = m;
  }
}

TEST(CostModelDifferentialTest, LargerExtentPrefersSmallerM) {
  Rng rng(73);
  std::vector<IntervalRecord> records;
  for (ObjectId i = 0; i < 3000; ++i) {
    const Time st = rng.Uniform(1 << 20);
    records.push_back(IntervalRecord{
        i, Interval(st, std::min<Time>((1 << 20) - 1,
                                       st + rng.Uniform(1 << 10)))});
  }
  CostModelOptions narrow;
  narrow.query_extent_fraction = 1e-4;
  CostModelOptions wide;
  wide.query_extent_fraction = 0.2;
  EXPECT_GE(ChooseHintBits(records, (1 << 20) - 1, narrow),
            ChooseHintBits(records, (1 << 20) - 1, wide));
}

TEST(NaiveScanTest, DuplicateAndUnknownHandling) {
  NaiveScan scan;
  ASSERT_TRUE(scan.Insert(Object(5, Interval(1, 2), {0})).ok());
  EXPECT_TRUE(scan.Insert(Object(5, Interval(3, 4), {1})).IsAlreadyExists());
  EXPECT_TRUE(scan.Erase(Object(9, Interval(0, 0), {})).IsNotFound());
  ASSERT_TRUE(scan.Erase(Object(5, Interval(1, 2), {0})).ok());
  EXPECT_TRUE(scan.Erase(Object(5, Interval(1, 2), {0})).IsNotFound());
}

}  // namespace
}  // namespace irhint

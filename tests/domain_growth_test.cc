// Time-expanding updates: objects inserted after Build may extend past the
// declared time domain (the LIT-style extension the paper points to for
// growing domains). Every index must keep answering exactly.

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/factory.h"
#include "core/naive_scan.h"
#include "data/synthetic.h"
#include "hint/hint.h"

namespace irhint {
namespace {

std::vector<ObjectId> Sorted(std::vector<ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(HintOverflowTest, InsertBeyondDomainIsQueryable) {
  HintIndex hint;
  HintOptions options;
  options.num_bits = 5;
  ASSERT_TRUE(hint.Build({{1, Interval(10, 20)}}, 100, options).ok());

  // Grows the time domain: ends at 500 > 100.
  ASSERT_TRUE(hint.Insert(2, Interval(90, 500)).ok());
  ASSERT_TRUE(hint.Insert(3, Interval(400, 450)).ok());
  EXPECT_EQ(hint.NumOverflow(), 2u);

  std::vector<ObjectId> out;
  hint.RangeQuery(Interval(0, 1000), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{1, 2, 3}));

  // Query entirely beyond the built domain.
  out.clear();
  hint.RangeQuery(Interval(420, 430), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{2, 3}));

  // Query inside the built domain still sees the overflow interval that
  // reaches back into it.
  out.clear();
  hint.RangeQuery(Interval(95, 99), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{2}));

  // Overflow tombstoning.
  ASSERT_TRUE(hint.Erase(2, Interval(90, 500)).ok());
  out.clear();
  hint.RangeQuery(Interval(0, 1000), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{1, 3}));
  EXPECT_TRUE(hint.Erase(2, Interval(90, 500)).IsNotFound());
}

TEST(HintOverflowTest, FilteredAndMergeQueriesSeeOverflow) {
  HintOptions options;
  options.num_bits = 4;
  options.sort_mode = HintSortMode::kById;
  HintIndex hint;
  ASSERT_TRUE(hint.Build({{1, Interval(0, 50)}}, 100, options).ok());
  ASSERT_TRUE(hint.Insert(5, Interval(80, 300)).ok());

  std::vector<ObjectId> out;
  hint.RangeQueryFiltered(Interval(200, 250), {4, 5, 6}, &out);
  EXPECT_EQ(out, (std::vector<ObjectId>{5}));

  out.clear();
  hint.IntersectRelevant(Interval(200, 250), {5}, &out);
  EXPECT_EQ(out, (std::vector<ObjectId>{5}));
}

class DomainGrowthTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(DomainGrowthTest, GrowingInsertsMatchOracle) {
  SyntheticParams params;
  params.cardinality = 800;
  params.domain = 50000;
  params.dictionary_size = 40;
  params.description_size = 5;
  params.sigma = 10000;
  params.seed = 77;
  Corpus corpus = GenerateSynthetic(params);

  std::unique_ptr<TemporalIrIndex> index = CreateIndex(GetParam());
  ASSERT_TRUE(index->Build(corpus).ok());
  NaiveScan oracle;
  ASSERT_TRUE(oracle.Build(corpus).ok());

  // Insert objects that progressively grow the time domain up to 4x.
  Rng rng(78);
  for (int i = 0; i < 300; ++i) {
    const Time st = rng.Uniform(4 * params.domain);
    const Time end = std::min<Time>(4 * params.domain,
                                    st + rng.Uniform(20000));
    // Insert() requires set semantics: sorted, duplicate-free elements.
    std::vector<ElementId> elements;
    for (int j = 0; j < 4; ++j) {
      elements.push_back(static_cast<ElementId>(rng.Uniform(40)));
    }
    std::sort(elements.begin(), elements.end());
    elements.erase(std::unique(elements.begin(), elements.end()),
                   elements.end());
    const Object o(static_cast<ObjectId>(corpus.size()), Interval(st, end),
                   elements);
    ASSERT_TRUE(corpus.Add(o).ok());
    ASSERT_TRUE(index->Insert(o).ok()) << index->Name();
    ASSERT_TRUE(oracle.Insert(o).ok());
  }

  std::vector<ObjectId> expected, actual;
  for (int i = 0; i < 300; ++i) {
    const Time st = rng.Uniform(4 * params.domain + 10000);
    const Time end = st + rng.Uniform(30000);
    const Query q(Interval(st, end),
                  {static_cast<ElementId>(rng.Uniform(40)),
                   static_cast<ElementId>(rng.Uniform(40))});
    oracle.Query(q, &expected);
    index->Query(q, &actual);
    ASSERT_EQ(Sorted(actual), Sorted(expected))
        << index->Name() << " q=[" << st << "," << end << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, DomainGrowthTest,
    ::testing::Values(IndexKind::kTif, IndexKind::kTifSlicing,
                      IndexKind::kTifSharding,
                      IndexKind::kTifHintBinarySearch,
                      IndexKind::kTifHintMergeSort,
                      IndexKind::kTifHintSlicing, IndexKind::kIrHintPerf,
                      IndexKind::kIrHintSize),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      std::string label(IndexKindName(info.param));
      for (char& c : label) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return label;
    });

}  // namespace
}  // namespace irhint

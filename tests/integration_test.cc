// End-to-end integration: generate -> serialize -> reload -> build every
// index -> generated workloads agree across all indexes and the oracle.
// This is the full pipeline a downstream user of the library would run.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/naive_scan.h"
#include "data/query_gen.h"
#include "data/real_sim.h"
#include "data/serialize.h"
#include "data/synthetic.h"
#include "eval/runner.h"
#include "eval/workload.h"

namespace irhint {
namespace {

std::vector<ObjectId> Sorted(std::vector<ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(IntegrationTest, FullPipelineOnSyntheticCorpus) {
  SyntheticParams params;
  params.cardinality = 2000;
  params.domain = 500000;
  params.dictionary_size = 100;
  params.description_size = 6;
  params.sigma = 100000;
  const Corpus generated = GenerateSynthetic(params);

  // Serialize and reload.
  const std::string path =
      std::string(::testing::TempDir()) + "/integration_corpus.bin";
  ASSERT_TRUE(SaveCorpus(generated, path).ok());
  StatusOr<Corpus> loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());
  const Corpus& corpus = *loaded;

  // Build the full lineup plus the oracle.
  NaiveScan oracle;
  ASSERT_TRUE(oracle.Build(corpus).ok());
  std::vector<std::unique_ptr<TemporalIrIndex>> indexes;
  for (const IndexKind kind : AllIndexKinds()) {
    indexes.push_back(CreateIndex(kind));
    const BuildStats stats = MeasureBuild(indexes.back().get(), corpus);
    ASSERT_GE(stats.seconds, 0.0) << indexes.back()->Name();
    ASSERT_GT(stats.bytes, 0u) << indexes.back()->Name();
  }

  // All four workload generators produce queries every index answers
  // identically.
  WorkloadGenerator generator(corpus, 5150);
  std::vector<std::vector<Query>> workloads;
  workloads.push_back(generator.ExtentWorkload(0.5, 2, 50));
  workloads.push_back(generator.ExtentWorkload(10.0, 4, 50));
  workloads.push_back(generator.FrequencyBinWorkload(-1, 50, 0.5, 2, 30));
  workloads.push_back(generator.MixedWorkload(80));
  workloads.push_back(generator.EmptyResultWorkload(0.1, 3, 20));

  std::vector<ObjectId> expected, actual;
  for (const auto& workload : workloads) {
    ASSERT_FALSE(workload.empty());
    for (const Query& q : workload) {
      oracle.Query(q, &expected);
      for (const auto& index : indexes) {
        index->Query(q, &actual);
        ASSERT_EQ(Sorted(actual), Sorted(expected)) << index->Name();
      }
    }
  }

  // Selectivity binning covers the mixed workload and the harness measures
  // sensible throughput on every index.
  const auto bins = BinBySelectivity(oracle, workloads[3], corpus.size());
  size_t binned = 0;
  for (const Workload& bin : bins) binned += bin.queries.size();
  EXPECT_GE(binned, workloads[3].size() * 9 / 10);
  const QueryStats stats = MeasureQueries(*indexes.front(), workloads[0]);
  EXPECT_GT(stats.queries_per_second, 0.0);
}

TEST(IntegrationTest, RealSimulatorsRoundTripAndIndex) {
  const Corpus corpus = MakeEclogLike(0.004);
  const std::string path =
      std::string(::testing::TempDir()) + "/integration_eclog.bin";
  ASSERT_TRUE(SaveCorpus(corpus, path).ok());
  StatusOr<Corpus> loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  auto index = CreateIndex(IndexKind::kIrHintPerf);
  ASSERT_TRUE(index->Build(*loaded).ok());
  WorkloadGenerator generator(*loaded, 1);
  const auto queries = generator.ExtentWorkload(1.0, 2, 25);
  NaiveScan oracle;
  ASSERT_TRUE(oracle.Build(*loaded).ok());
  std::vector<ObjectId> expected, actual;
  for (const Query& q : queries) {
    oracle.Query(q, &expected);
    index->Query(q, &actual);
    ASSERT_EQ(Sorted(actual), Sorted(expected));
  }
}

}  // namespace
}  // namespace irhint

#include "common/rng.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/zipf.h"

namespace irhint {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Uniform(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  constexpr int kDraws = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(ZipfTest, RanksInRange) {
  Rng rng(19);
  ZipfSampler zipf(1000, 1.2);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t k = zipf.Sample(rng);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 1000u);
  }
}

TEST(ZipfTest, SingleRank) {
  Rng rng(23);
  ZipfSampler zipf(1, 1.5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 1u);
}

class ZipfDistributionTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfDistributionTest, EmpiricalMatchesPmfOnHead) {
  const double theta = GetParam();
  constexpr uint64_t kN = 500;
  constexpr int kDraws = 300000;
  Rng rng(29);
  ZipfSampler zipf(kN, theta);
  std::vector<int> counts(kN + 1, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(rng)];
  // The five most likely ranks must match the analytic pmf within 15%.
  for (uint64_t k = 1; k <= 5; ++k) {
    const double expected = zipf.Pmf(k) * kDraws;
    EXPECT_NEAR(counts[k], expected, expected * 0.15 + 30)
        << "theta=" << theta << " rank=" << k;
  }
  // Skew direction: rank 1 strictly more popular than rank 10.
  EXPECT_GT(counts[1], counts[10]);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfDistributionTest,
                         ::testing::Values(0.65, 0.8, 1.0, 1.2, 1.5, 2.0));

}  // namespace
}  // namespace irhint

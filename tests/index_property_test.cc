// Cross-index property suite: every time-travel IR index in the library
// must return exactly the same result sets as the naive full-scan oracle,
// on randomized corpora, across query shapes, and through update batches.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/factory.h"
#include "core/naive_scan.h"
#include "data/corpus.h"
#include "data/synthetic.h"

namespace irhint {
namespace {

Corpus SmallSynthetic(uint64_t seed, uint64_t cardinality = 2000) {
  SyntheticParams params;
  params.cardinality = cardinality;
  params.domain = 100000;
  params.alpha = 1.1;
  params.sigma = 20000;
  params.dictionary_size = 50;  // small dictionary -> dense co-occurrence
  params.description_size = 6;
  params.zeta = 1.2;
  params.seed = seed;
  return GenerateSynthetic(params);
}

std::vector<Query> RandomQueries(const Corpus& corpus, size_t count,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> queries;
  const Time domain_end = corpus.domain_end();
  for (size_t i = 0; i < count; ++i) {
    const Time st = rng.Uniform(domain_end + 1);
    const Time length = 1 + rng.Uniform(domain_end / 4);
    const Time end = std::min(domain_end, st + length);
    const uint32_t k =
        1 + static_cast<uint32_t>(rng.Uniform(4));  // |q.d| in 1..4
    std::vector<ElementId> elements;
    for (uint32_t j = 0; j < k; ++j) {
      elements.push_back(static_cast<ElementId>(
          rng.Uniform(corpus.dictionary().size())));
    }
    queries.emplace_back(Interval(st, end), std::move(elements));
  }
  // Extremes: stabbing query and a full-domain (pure containment) query.
  queries.emplace_back(Interval(domain_end / 2, domain_end / 2),
                       std::vector<ElementId>{0, 1});
  queries.emplace_back(Interval(0, domain_end), std::vector<ElementId>{0});
  return queries;
}

std::vector<ObjectId> Sorted(std::vector<ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::string KindLabel(IndexKind kind) {
  std::string label(IndexKindName(kind));
  for (char& c : label) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return label;
}

class IndexPropertyTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(IndexPropertyTest, MatchesOracleOnRandomCorpus) {
  const Corpus corpus = SmallSynthetic(/*seed=*/1);
  NaiveScan oracle;
  ASSERT_TRUE(oracle.Build(corpus).ok());

  IndexConfig config;
  config.num_slices = 8;
  config.tif_hint_bits_bs = 6;
  config.tif_hint_bits_ms = 4;
  config.irhint_bits = 6;
  std::unique_ptr<TemporalIrIndex> index = CreateIndex(GetParam(), config);
  ASSERT_TRUE(index->Build(corpus).ok());

  std::vector<ObjectId> expected, actual;
  for (const Query& q : RandomQueries(corpus, 300, /*seed=*/2)) {
    oracle.Query(q, &expected);
    index->Query(q, &actual);
    ASSERT_EQ(Sorted(actual), Sorted(expected))
        << index->Name() << " q=[" << q.interval.st << "," << q.interval.end
        << "] |q.d|=" << q.elements.size();
  }
}

TEST_P(IndexPropertyTest, MatchesOracleWithUnknownElements) {
  const Corpus corpus = SmallSynthetic(/*seed=*/3, 500);
  NaiveScan oracle;
  ASSERT_TRUE(oracle.Build(corpus).ok());
  std::unique_ptr<TemporalIrIndex> index = CreateIndex(GetParam());
  ASSERT_TRUE(index->Build(corpus).ok());

  // Element id beyond the dictionary: result must be empty, not a crash.
  Query q(Interval(0, corpus.domain_end()),
          {static_cast<ElementId>(corpus.dictionary().size() + 7), 0});
  std::vector<ObjectId> actual;
  index->Query(q, &actual);
  EXPECT_TRUE(actual.empty()) << index->Name();

  // Empty description: defined to return nothing.
  Query empty(Interval(0, corpus.domain_end()), {});
  index->Query(empty, &actual);
  EXPECT_TRUE(actual.empty()) << index->Name();
}

TEST_P(IndexPropertyTest, InsertThenQueryMatchesOracle) {
  const Corpus corpus = SmallSynthetic(/*seed=*/5, 1500);
  // Build on the first 70%, then insert the rest online.
  const size_t offline = corpus.size() * 7 / 10;
  const Corpus prefix = corpus.Prefix(offline);

  NaiveScan oracle;
  ASSERT_TRUE(oracle.Build(corpus).ok());

  IndexConfig config;
  config.num_slices = 8;
  config.tif_hint_bits_bs = 5;
  config.tif_hint_bits_ms = 4;
  config.irhint_bits = 5;
  std::unique_ptr<TemporalIrIndex> index = CreateIndex(GetParam(), config);
  ASSERT_TRUE(index->Build(prefix).ok());
  for (size_t i = offline; i < corpus.size(); ++i) {
    ASSERT_TRUE(index->Insert(corpus.object(static_cast<ObjectId>(i))).ok())
        << index->Name() << " at " << i;
  }

  std::vector<ObjectId> expected, actual;
  for (const Query& q : RandomQueries(corpus, 200, /*seed=*/6)) {
    oracle.Query(q, &expected);
    index->Query(q, &actual);
    ASSERT_EQ(Sorted(actual), Sorted(expected)) << index->Name();
  }
}

TEST_P(IndexPropertyTest, EraseThenQueryMatchesOracle) {
  const Corpus corpus = SmallSynthetic(/*seed=*/7, 1500);
  NaiveScan oracle;
  ASSERT_TRUE(oracle.Build(corpus).ok());
  std::unique_ptr<TemporalIrIndex> index = CreateIndex(GetParam());
  ASSERT_TRUE(index->Build(corpus).ok());

  // Tombstone every fourth object in both index and oracle.
  Rng rng(8);
  for (size_t i = 0; i < corpus.size(); i += 4) {
    const Object& o = corpus.object(static_cast<ObjectId>(i));
    ASSERT_TRUE(index->Erase(o).ok()) << index->Name() << " id " << i;
    ASSERT_TRUE(oracle.Erase(o).ok());
  }
  // Double-delete must report NotFound-style failure, not corrupt state.
  EXPECT_FALSE(index->Erase(corpus.object(0)).ok()) << index->Name();

  std::vector<ObjectId> expected, actual;
  for (const Query& q : RandomQueries(corpus, 200, /*seed=*/9)) {
    oracle.Query(q, &expected);
    index->Query(q, &actual);
    ASSERT_EQ(Sorted(actual), Sorted(expected)) << index->Name();
  }
}

TEST_P(IndexPropertyTest, MixedUpdateStream) {
  const Corpus corpus = SmallSynthetic(/*seed=*/11, 1200);
  const size_t offline = corpus.size() / 2;
  const Corpus prefix = corpus.Prefix(offline);

  std::unique_ptr<TemporalIrIndex> index = CreateIndex(GetParam());
  ASSERT_TRUE(index->Build(prefix).ok());
  NaiveScan oracle;
  ASSERT_TRUE(oracle.Build(prefix).ok());

  // Interleave inserts of the second half with deletes of the first half.
  Rng rng(12);
  size_t next_insert = offline;
  size_t next_erase = 0;
  std::vector<ObjectId> expected, actual;
  while (next_insert < corpus.size() || next_erase < offline) {
    if (next_insert < corpus.size() &&
        (rng.NextBool(0.6) || next_erase >= offline)) {
      const Object& o = corpus.object(static_cast<ObjectId>(next_insert++));
      ASSERT_TRUE(index->Insert(o).ok());
      ASSERT_TRUE(oracle.Insert(o).ok());
    } else {
      const Object& o = corpus.object(static_cast<ObjectId>(next_erase++));
      ASSERT_TRUE(index->Erase(o).ok());
      ASSERT_TRUE(oracle.Erase(o).ok());
    }
    if (rng.NextBool(0.05)) {  // spot-check mid-stream
      const Time st = rng.Uniform(corpus.domain_end());
      const Query q(Interval(st, std::min(corpus.domain_end(),
                                          st + corpus.domain_end() / 8)),
                    {static_cast<ElementId>(rng.Uniform(20)),
                     static_cast<ElementId>(rng.Uniform(20))});
      oracle.Query(q, &expected);
      index->Query(q, &actual);
      ASSERT_EQ(Sorted(actual), Sorted(expected)) << index->Name();
    }
  }
  for (const Query& q : RandomQueries(corpus, 100, /*seed=*/13)) {
    oracle.Query(q, &expected);
    index->Query(q, &actual);
    ASSERT_EQ(Sorted(actual), Sorted(expected)) << index->Name();
  }
}

TEST_P(IndexPropertyTest, NoDuplicateResults) {
  const Corpus corpus = SmallSynthetic(/*seed=*/17);
  std::unique_ptr<TemporalIrIndex> index = CreateIndex(GetParam());
  ASSERT_TRUE(index->Build(corpus).ok());
  std::vector<ObjectId> actual;
  for (const Query& q : RandomQueries(corpus, 300, /*seed=*/18)) {
    index->Query(q, &actual);
    std::vector<ObjectId> sorted = Sorted(actual);
    ASSERT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end())
        << index->Name() << " returned duplicates";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, IndexPropertyTest,
    ::testing::Values(IndexKind::kTif, IndexKind::kTifSlicing,
                      IndexKind::kTifSharding,
                      IndexKind::kTifHintBinarySearch,
                      IndexKind::kTifHintMergeSort,
                      IndexKind::kTifHintSlicing, IndexKind::kIrHintPerf,
                      IndexKind::kIrHintSize),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      return KindLabel(info.param);
    });

}  // namespace
}  // namespace irhint

// Concurrency race hunt for the durable query/ingest stack. For every
// index kind, a DurableIndex is hammered by a mix of concurrent threads —
// inserts, lagging erases, queries, stats reads, integrity audits, and
// checkpoint triggers (on top of the automatic background checkpointer) —
// then the final state is verified three ways: a deep IntegrityCheck, a
// differential check against a NaiveScan reference of the surviving
// objects, and the same two again after closing and recovering the
// directory. The schedule is nondeterministic by design; the workload is
// seeded and deterministic, so the final expected state is exact.
//
// This is the test the TSan CI job promotes (TSAN_OPTIONS=halt_on_error=1)
// and the lock-order registry rides along in Debug/sanitizer builds.
//
// Knobs (environment variables):
//   IRHINT_RACE_HUNT_OPS   objects inserted per kind (default 160)
//   IRHINT_RACE_HUNT_MS    wall-clock budget per kind; past it the threads
//                          wind down where they are (default 10000)
//   IRHINT_RACE_HUNT_SEED  workload RNG seed (default 20260805)

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/durable_index.h"
#include "core/factory.h"
#include "core/integrity.h"

namespace irhint {
namespace {

using Ids = std::vector<ObjectId>;

uint64_t EnvKnob(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0'
             ? std::strtoull(value, nullptr, 10)
             : fallback;
}

Object HuntObject(ObjectId id, std::mt19937_64* rng) {
  Object o;
  o.id = id;
  const uint64_t st = (*rng)() % 100000;
  o.interval = Interval(st, st + 1 + (*rng)() % 5000);
  const size_t n = 1 + (*rng)() % 6;
  for (size_t i = 0; i < n; ++i) o.elements.push_back((*rng)() % 40);
  std::sort(o.elements.begin(), o.elements.end());
  o.elements.erase(std::unique(o.elements.begin(), o.elements.end()),
                   o.elements.end());
  return o;
}

std::vector<Query> HuntQueries(std::mt19937_64* rng) {
  std::vector<Query> queries;
  for (int i = 0; i < 32; ++i) {
    const uint64_t st = (*rng)() % 100000;
    std::vector<ElementId> elements = {
        static_cast<ElementId>((*rng)() % 40)};
    if (i % 3 == 0) elements.push_back(static_cast<ElementId>((*rng)() % 40));
    std::sort(elements.begin(), elements.end());
    elements.erase(std::unique(elements.begin(), elements.end()),
                   elements.end());
    queries.push_back(
        Query(Interval(st, st + 1 + (*rng)() % 20000), std::move(elements)));
  }
  return queries;
}

Ids Answer(const TemporalIrIndex& index, const Query& query) {
  Ids out;
  index.Query(query, &out);
  std::sort(out.begin(), out.end());
  return out;
}

class RaceHuntTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(RaceHuntTest, ConcurrentMixedWorkloadStaysConsistent) {
  const uint64_t num_objects = EnvKnob("IRHINT_RACE_HUNT_OPS", 160);
  const uint64_t budget_ms = EnvKnob("IRHINT_RACE_HUNT_MS", 10000);
  const uint64_t seed = EnvKnob("IRHINT_RACE_HUNT_SEED", 20260805);
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " ops=" + std::to_string(num_objects));

  // The workload is generated up front and immutable while the threads
  // run, so sharing the vectors needs no lock.
  std::mt19937_64 rng(seed);
  std::vector<Object> objects;
  objects.reserve(num_objects);
  for (uint64_t i = 0; i < num_objects; ++i) {
    objects.push_back(HuntObject(static_cast<ObjectId>(i), &rng));
  }
  const std::vector<Query> queries = HuntQueries(&rng);

  std::string name(IndexKindName(GetParam()));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  const std::string dir =
      std::string(::testing::TempDir()) + "/race_hunt_" + name;
  std::filesystem::remove_all(dir);

  DurableIndexOptions options;
  options.kind = GetParam();
  options.durability = WalDurability::kBatch;
  options.batch_bytes = 1024;  // frequent syncs
  options.checkpoint_bytes = 8 * 1024;
  options.background_checkpoint = true;  // automatic checkpointer churns too
  auto opened = DurableIndex::Open(dir, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  DurableIndex* index = opened->get();
  index->EnableStats(true);

  // inserted/erased are contiguous progress watermarks: objects
  // [erased, inserted) are live. The erase thread trails the insert thread
  // by kEraseLag so it only ever erases objects whose Insert has returned.
  constexpr uint64_t kEraseLag = 24;
  std::atomic<uint64_t> inserted{0};
  std::atomic<uint64_t> erased{0};
  std::atomic<bool> halt{false};  // wall-clock budget exhausted
  std::atomic<bool> stop{false};  // insert/erase wound down; drain the rest

  std::thread insert_thread([&] {
    for (uint64_t i = 0; i < num_objects && !halt.load(); ++i) {
      ASSERT_TRUE(index->Insert(objects[i]).ok());
      inserted.store(i + 1, std::memory_order_release);
    }
  });

  std::thread erase_thread([&] {
    uint64_t j = 0;
    while (!halt.load()) {
      const uint64_t limit = inserted.load(std::memory_order_acquire);
      if (j + kEraseLag >= limit) {
        if (limit == num_objects) break;  // inserts done; stop lagging
        std::this_thread::yield();
        continue;
      }
      ASSERT_TRUE(index->Erase(objects[j]).ok());
      ++j;
      erased.store(j, std::memory_order_release);
    }
  });

  std::vector<std::thread> query_threads;
  for (int t = 0; t < 2; ++t) {
    query_threads.emplace_back([&] {
      size_t qi = 0;
      while (!stop.load()) {
        // Erases of objects [0, floor) returned before this query locked
        // the index, so none of those ids may ever come back.
        const uint64_t floor = erased.load(std::memory_order_acquire);
        const Ids out = Answer(*index, queries[qi % queries.size()]);
        ++qi;
        for (const ObjectId id : out) {
          ASSERT_LT(static_cast<uint64_t>(id), num_objects);
          ASSERT_GE(static_cast<uint64_t>(id), floor)
              << "query returned an object whose erase completed earlier";
        }
      }
    });
  }

  std::thread stats_thread([&] {
    uint64_t ticks = 0;
    while (!stop.load()) {
      (void)index->Stats();
      (void)index->MemoryUsageBytes();
      (void)index->Kind();
      (void)index->next_lsn();
      if (++ticks % 64 == 0) index->ResetStats();
      std::this_thread::yield();
    }
  });

  std::thread integrity_thread([&] {
    while (!stop.load()) {
      const Status st = index->IntegrityCheck(CheckLevel::kQuick);
      ASSERT_TRUE(st.ok()) << st.ToString();
      std::this_thread::yield();
    }
  });

  std::thread checkpoint_thread([&] {
    while (!stop.load()) {
      const Status st = index->TriggerCheckpoint();
      ASSERT_TRUE(st.ok()) << st.ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Wind down: give the mutators the budget, then drain the readers.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
  while (inserted.load() < num_objects &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  halt.store(true);
  insert_thread.join();
  erase_thread.join();
  stop.store(true);
  for (std::thread& t : query_threads) t.join();
  stats_thread.join();
  integrity_thread.join();
  checkpoint_thread.join();
  ASSERT_TRUE(index->WaitForCheckpoint().ok());

  // The quiescent state is exact: objects [final_erased, final_inserted)
  // survive. Verify deep integrity and differential equality against a
  // NaiveScan reference, then once more after close + recovery.
  const uint64_t final_inserted = inserted.load();
  const uint64_t final_erased = erased.load();
  ASSERT_GE(final_inserted, final_erased);
  {
    const Status st = index->IntegrityCheck(CheckLevel::kDeep);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  std::unique_ptr<TemporalIrIndex> reference =
      CreateIndex(IndexKind::kNaiveScan);
  Corpus empty;
  empty.DeclareDomain(1);
  ASSERT_TRUE(empty.Finalize().ok());
  ASSERT_TRUE(reference->Build(empty).ok());
  for (uint64_t i = final_erased; i < final_inserted; ++i) {
    ASSERT_TRUE(reference->Insert(objects[i]).ok());
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(Answer(*index, queries[i]), Answer(*reference, queries[i]))
        << "query " << i << " diverges after the concurrent mix";
  }

  opened->reset();  // clean close: checkpointer stops, log syncs
  auto recovered = DurableIndex::Open(dir, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  {
    const Status st = (*recovered)->IntegrityCheck(CheckLevel::kDeep);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(Answer(**recovered, queries[i]), Answer(*reference, queries[i]))
        << "query " << i << " diverges after recovery";
  }
  recovered->reset();
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, RaceHuntTest,
    ::testing::Values(IndexKind::kNaiveScan, IndexKind::kTif,
                      IndexKind::kTifSlicing, IndexKind::kTifSharding,
                      IndexKind::kTifHintBinarySearch,
                      IndexKind::kTifHintMergeSort, IndexKind::kTifHintSlicing,
                      IndexKind::kIrHintPerf, IndexKind::kIrHintSize),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      std::string name(IndexKindName(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace irhint

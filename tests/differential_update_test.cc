// Differential test of live updates (the Table 6/7 insertion/deletion
// workloads): every index kind is bulk-loaded with 90% of a synthetic
// corpus, the remaining objects are inserted in batches, then a third of
// the corpus is erased in batches — and after every batch each index must
// answer a mixed query workload exactly like a NaiveScan subjected to the
// same update stream.

#include <algorithm>
#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "data/query_gen.h"
#include "data/synthetic.h"

namespace irhint {
namespace {

using Ids = std::vector<ObjectId>;

Ids Answer(const TemporalIrIndex& index, const Query& query) {
  Ids out;
  index.Query(query, &out);
  std::sort(out.begin(), out.end());
  return out;
}

class DifferentialUpdateTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(DifferentialUpdateTest, MatchesNaiveScanAfterEveryBatch) {
  SyntheticParams params;
  params.cardinality = 1500;
  params.domain = 200000;
  params.sigma = 40000;
  params.dictionary_size = 300;
  params.description_size = 6;
  params.seed = 11;
  const Corpus corpus = GenerateSynthetic(params);
  const size_t offline = corpus.size() * 9 / 10;

  // Queries are anchored on the full corpus so they exercise both the
  // bulk-loaded objects and the ones arriving live.
  WorkloadGenerator generator(corpus, /*seed=*/3);
  std::vector<Query> queries = generator.ExtentWorkload(0.5, 1, 40);
  const std::vector<Query> more = generator.ExtentWorkload(5.0, 2, 40);
  queries.insert(queries.end(), more.begin(), more.end());
  const std::vector<Query> stabs = generator.ExtentWorkload(0.0, 1, 20);
  queries.insert(queries.end(), stabs.begin(), stabs.end());

  const Corpus prefix = corpus.Prefix(offline);
  std::unique_ptr<TemporalIrIndex> reference =
      CreateIndex(IndexKind::kNaiveScan);
  ASSERT_TRUE(reference->Build(prefix).ok());
  std::unique_ptr<TemporalIrIndex> index = CreateIndex(GetParam());
  ASSERT_TRUE(index->Build(prefix).ok());

  auto expect_equal = [&](const char* stage, size_t batch) {
    // Structural invariants must hold after every batch, not just the
    // observable query answers (DESIGN.md §9).
    const Status integrity = index->IntegrityCheck(CheckLevel::kDeep);
    ASSERT_TRUE(integrity.ok())
        << IndexKindName(GetParam()) << ": integrity broken, " << stage
        << " batch " << batch << ": " << integrity.ToString();
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(Answer(*index, queries[i]), Answer(*reference, queries[i]))
          << IndexKindName(GetParam()) << ": query " << i << " diverges, "
          << stage << " batch " << batch;
    }
  };
  expect_equal("after build", 0);

  // Insertion workload: the held-out 10% arrives in batches of ~2%.
  const size_t insert_batch = std::max<size_t>(1, corpus.size() / 50);
  size_t batch = 0;
  for (size_t begin = offline; begin < corpus.size(); begin += insert_batch) {
    const size_t end = std::min(corpus.size(), begin + insert_batch);
    for (size_t id = begin; id < end; ++id) {
      const Object& object = corpus.object(static_cast<ObjectId>(id));
      ASSERT_TRUE(index->Insert(object).ok());
      ASSERT_TRUE(reference->Insert(object).ok());
    }
    expect_equal("insert", ++batch);
  }

  // Deletion workload: erase every third object, again in batches.
  std::vector<ObjectId> victims;
  for (size_t id = 0; id < corpus.size(); id += 3) {
    victims.push_back(static_cast<ObjectId>(id));
  }
  const size_t erase_batch = std::max<size_t>(1, victims.size() / 5);
  batch = 0;
  for (size_t begin = 0; begin < victims.size(); begin += erase_batch) {
    const size_t end = std::min(victims.size(), begin + erase_batch);
    for (size_t i = begin; i < end; ++i) {
      const Object& object = corpus.object(victims[i]);
      ASSERT_TRUE(index->Erase(object).ok());
      ASSERT_TRUE(reference->Erase(object).ok());
    }
    expect_equal("erase", ++batch);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DifferentialUpdateTest,
    ::testing::Values(IndexKind::kNaiveScan, IndexKind::kTif,
                      IndexKind::kTifSlicing, IndexKind::kTifSharding,
                      IndexKind::kTifHintBinarySearch,
                      IndexKind::kTifHintMergeSort, IndexKind::kTifHintSlicing,
                      IndexKind::kIrHintPerf, IndexKind::kIrHintSize),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      std::string name(IndexKindName(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace irhint

// Allen-relationship queries on HINT, validated against brute force for
// all thirteen relations over randomized data, plus hand-checked examples.

#include "hint/allen.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "hint/hint.h"

namespace irhint {
namespace {

constexpr AllenRelation kAllRelations[] = {
    AllenRelation::kEquals,      AllenRelation::kStarts,
    AllenRelation::kStartedBy,   AllenRelation::kFinishes,
    AllenRelation::kFinishedBy,  AllenRelation::kMeets,
    AllenRelation::kMetBy,       AllenRelation::kOverlaps,
    AllenRelation::kOverlappedBy, AllenRelation::kContains,
    AllenRelation::kDuring,      AllenRelation::kBefore,
    AllenRelation::kAfter,
};

std::vector<ObjectId> Sorted(std::vector<ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(AllenPredicateTest, HandCheckedMatrix) {
  const Interval q(10, 20);
  EXPECT_TRUE(MatchesAllen(AllenRelation::kEquals, {10, 20}, q));
  EXPECT_TRUE(MatchesAllen(AllenRelation::kStarts, {10, 15}, q));
  EXPECT_TRUE(MatchesAllen(AllenRelation::kStartedBy, {10, 30}, q));
  EXPECT_TRUE(MatchesAllen(AllenRelation::kFinishes, {15, 20}, q));
  EXPECT_TRUE(MatchesAllen(AllenRelation::kFinishedBy, {5, 20}, q));
  EXPECT_TRUE(MatchesAllen(AllenRelation::kMeets, {2, 9}, q));
  EXPECT_TRUE(MatchesAllen(AllenRelation::kMetBy, {21, 28}, q));
  EXPECT_TRUE(MatchesAllen(AllenRelation::kOverlaps, {5, 15}, q));
  EXPECT_TRUE(MatchesAllen(AllenRelation::kOverlappedBy, {15, 25}, q));
  EXPECT_TRUE(MatchesAllen(AllenRelation::kContains, {5, 25}, q));
  EXPECT_TRUE(MatchesAllen(AllenRelation::kDuring, {12, 18}, q));
  EXPECT_TRUE(MatchesAllen(AllenRelation::kBefore, {2, 8}, q));
  EXPECT_TRUE(MatchesAllen(AllenRelation::kAfter, {22, 30}, q));

  // A few sharp negatives around the boundaries.
  EXPECT_FALSE(MatchesAllen(AllenRelation::kBefore, {2, 9}, q));    // meets
  EXPECT_FALSE(MatchesAllen(AllenRelation::kOverlaps, {10, 15}, q));  // starts
  EXPECT_FALSE(MatchesAllen(AllenRelation::kDuring, {10, 18}, q));  // starts
  EXPECT_FALSE(MatchesAllen(AllenRelation::kContains, {10, 25}, q));
}

TEST(AllenPredicateTest, RelationsPartitionAllConfigurations) {
  // For any pair of intervals exactly one basic relation holds.
  for (Time ist = 0; ist < 8; ++ist) {
    for (Time iend = ist; iend < 8; ++iend) {
      for (Time qst = 0; qst < 8; ++qst) {
        for (Time qend = qst; qend < 8; ++qend) {
          int matches = 0;
          for (const AllenRelation rel : kAllRelations) {
            if (MatchesAllen(rel, {ist, iend}, {qst, qend})) ++matches;
          }
          EXPECT_EQ(matches, 1)
              << "i=[" << ist << "," << iend << "] q=[" << qst << "," << qend
              << "]";
        }
      }
    }
  }
}

class AllenQueryTest : public ::testing::TestWithParam<AllenRelation> {};

TEST_P(AllenQueryTest, MatchesBruteForce) {
  const AllenRelation relation = GetParam();
  const Time domain_end = 499;
  Rng rng(17 + static_cast<uint64_t>(relation));
  std::vector<IntervalRecord> records;
  for (ObjectId i = 0; i < 400; ++i) {
    const Time st = rng.Uniform(domain_end + 1);
    // Short intervals so boundary relations (meets, equals...) fire often.
    const Time end = std::min<Time>(domain_end, st + rng.Uniform(25));
    records.push_back(IntervalRecord{i, Interval(st, end)});
  }
  HintIndex hint;
  HintOptions options;
  options.num_bits = 6;
  ASSERT_TRUE(hint.Build(records, domain_end, options).ok());

  std::vector<ObjectId> out;
  for (int round = 0; round < 300; ++round) {
    const Time st = rng.Uniform(domain_end + 1);
    const Time end = std::min<Time>(domain_end, st + rng.Uniform(40));
    const Interval q(st, end);
    ASSERT_TRUE(hint.AllenQuery(relation, q, &out).ok());
    std::vector<ObjectId> expected;
    for (const IntervalRecord& rec : records) {
      if (MatchesAllen(relation, rec.interval, q)) {
        expected.push_back(rec.id);
      }
    }
    ASSERT_EQ(Sorted(out), expected)
        << AllenRelationName(relation) << " q=[" << st << "," << end << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(AllRelations, AllenQueryTest,
                         ::testing::ValuesIn(kAllRelations),
                         [](const ::testing::TestParamInfo<AllenRelation>& i) {
                           return AllenRelationName(i.param);
                         });

TEST(AllenQueryTest, SeesOverflowEntries) {
  HintIndex hint;
  HintOptions options;
  options.num_bits = 4;
  ASSERT_TRUE(hint.Build({{1, Interval(10, 20)}}, 100, options).ok());
  ASSERT_TRUE(hint.Insert(2, Interval(150, 300)).ok());  // overflow

  std::vector<ObjectId> out;
  ASSERT_TRUE(hint.AllenQuery(AllenRelation::kAfter, Interval(30, 40), &out)
                  .ok());
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{2}));
  ASSERT_TRUE(
      hint.AllenQuery(AllenRelation::kDuring, Interval(100, 400), &out).ok());
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{2}));
  ASSERT_TRUE(
      hint.AllenQuery(AllenRelation::kBefore, Interval(150, 160), &out).ok());
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{1}));
}

TEST(AllenQueryTest, EmptyEdges) {
  HintIndex hint;
  ASSERT_TRUE(hint.Build({{1, Interval(0, 100)}}, 100, HintOptions{}).ok());
  std::vector<ObjectId> out;
  // BEFORE with q.st == 0 is provably empty.
  ASSERT_TRUE(hint.AllenQuery(AllenRelation::kBefore, Interval(0, 5), &out)
                  .ok());
  EXPECT_TRUE(out.empty());
  // AFTER with q.end at the max indexed time is provably empty.
  ASSERT_TRUE(hint.AllenQuery(AllenRelation::kAfter, Interval(50, 100), &out)
                  .ok());
  EXPECT_TRUE(out.empty());
}

TEST(AllenQueryTest, StorageOptimizationIsRejected) {
  HintOptions options;
  options.storage_optimization = true;
  HintIndex hint;
  ASSERT_TRUE(hint.Build({{1, Interval(2, 8)}}, 100, options).ok());
  std::vector<ObjectId> out;
  EXPECT_TRUE(hint.AllenQuery(AllenRelation::kEquals, Interval(2, 8), &out)
                  .IsNotSupported());
}

}  // namespace
}  // namespace irhint

// Targeted tests for the irHINT variants on the paper's running example
// (Figures 1 and 6, Table 2) and their bookkeeping.

#include <algorithm>

#include <gtest/gtest.h>

#include "core/irhint_perf.h"
#include "core/irhint_size.h"
#include "data/corpus.h"

namespace irhint {
namespace {

// Figure 1 objects over D = {a=0, b=1, c=2}; domain [0, 99] so that m = 3
// gives the 8 bottom partitions of Figure 6.
Corpus RunningExample() {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(3));
  corpus.Append(Interval(55, 95), {0, 1, 2});  // o1
  corpus.Append(Interval(12, 30), {0, 2});     // o2
  corpus.Append(Interval(40, 58), {1});        // o3
  corpus.Append(Interval(5, 90), {0, 1, 2});   // o4
  corpus.Append(Interval(20, 45), {1, 2});     // o5
  corpus.Append(Interval(25, 60), {2});        // o6
  corpus.Append(Interval(15, 99), {0, 2});     // o7
  corpus.Append(Interval(30, 38), {2});        // o8
  EXPECT_TRUE(corpus.Finalize().ok());
  return corpus;
}

std::vector<ObjectId> Sorted(std::vector<ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

template <typename Index>
void ExpectRunningExampleAnswers(Index& index) {
  std::vector<ObjectId> out;
  // Example 2.2: q = [18, 42] with {a, c} -> o2, o4, o7.
  index.Query(Query(Interval(18, 42), {0, 2}), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{1, 3, 6}));
  // Single element c over everything -> all but o3.
  index.Query(Query(Interval(0, 99), {2}), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{0, 1, 3, 4, 5, 6, 7}));
  // {a, b, c} over a window covering only o1's span.
  index.Query(Query(Interval(91, 99), {0, 1, 2}), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{0}));
  // Stabbing query at t = 5 -> o4 only (with {c}).
  index.Query(Query(Interval(5, 5), {2}), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{3}));
}

TEST(IrHintPerfTest, RunningExample) {
  const Corpus corpus = RunningExample();
  IrHintOptions options;
  options.num_bits = 3;
  IrHintPerf index(options);
  ASSERT_TRUE(index.Build(corpus).ok());
  EXPECT_EQ(index.m(), 3);
  ExpectRunningExampleAnswers(index);
}

TEST(IrHintSizeTest, RunningExample) {
  const Corpus corpus = RunningExample();
  IrHintSizeOptions options;
  options.num_bits = 3;
  IrHintSize index(options);
  ASSERT_TRUE(index.Build(corpus).ok());
  ExpectRunningExampleAnswers(index);
}

TEST(IrHintPerfTest, AutoChoosesMWithCostModel) {
  const Corpus corpus = RunningExample();
  IrHintPerf index;  // num_bits = -1
  ASSERT_TRUE(index.Build(corpus).ok());
  EXPECT_GE(index.m(), 1);
  EXPECT_LE(index.m(), 20);
  ExpectRunningExampleAnswers(index);
}

TEST(IrHintPerfTest, FrequencyTracksUpdates) {
  const Corpus corpus = RunningExample();
  IrHintPerf index;
  ASSERT_TRUE(index.Build(corpus).ok());
  EXPECT_EQ(index.Frequency(0), 4u);
  EXPECT_EQ(index.Frequency(2), 7u);
  ASSERT_TRUE(index.Insert(Object(8, Interval(10, 12), {0})).ok());
  EXPECT_EQ(index.Frequency(0), 5u);
  ASSERT_TRUE(index.Erase(corpus.object(0)).ok());  // o1 has a, b, c
  EXPECT_EQ(index.Frequency(0), 4u);
  EXPECT_EQ(index.Frequency(2), 6u);
}

TEST(IrHintSizeTest, SmallerThanPerfVariant) {
  // The size variant stores each interval once per division instead of once
  // per (element, division); with multi-element descriptions it must be
  // smaller.
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(50));
  for (ObjectId i = 0; i < 2000; ++i) {
    std::vector<ElementId> elements;
    for (ElementId e = 0; e < 10; ++e) {
      elements.push_back((i + e * 7) % 50);
    }
    corpus.Append(Interval((i * 13) % 9000, (i * 13) % 9000 + 500),
                  std::move(elements));
  }
  ASSERT_TRUE(corpus.Finalize().ok());
  IrHintOptions perf_options;
  perf_options.num_bits = 8;
  IrHintPerf perf(perf_options);
  IrHintSizeOptions size_options;
  size_options.num_bits = 8;
  IrHintSize size(size_options);
  ASSERT_TRUE(perf.Build(corpus).ok());
  ASSERT_TRUE(size.Build(corpus).ok());
  EXPECT_LT(size.MemoryUsageBytes(), perf.MemoryUsageBytes());

  // And they agree.
  std::vector<ObjectId> a, b;
  perf.Query(Query(Interval(1000, 2000), {3, 10}), &a);
  size.Query(Query(Interval(1000, 2000), {3, 10}), &b);
  EXPECT_EQ(Sorted(a), Sorted(b));
}

TEST(IrHintPerfTest, QueryBeforeBuildIsSafe) {
  IrHintPerf index;
  std::vector<ObjectId> out{1, 2};
  index.Query(Query(Interval(0, 10), {0}), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(index.Insert(Object(0, Interval(0, 1), {0})).IsInvalidArgument());
  EXPECT_TRUE(index.Erase(Object(0, Interval(0, 1), {0})).IsInvalidArgument());
}

TEST(IrHintPerfTest, InvertedQueryIntervalIsEmpty) {
  const Corpus corpus = RunningExample();
  IrHintPerf index;
  ASSERT_TRUE(index.Build(corpus).ok());
  std::vector<ObjectId> out;
  index.Query(Query(Interval(50, 10), {0}), &out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace irhint

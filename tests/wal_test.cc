// WAL subsystem tests: record framing round trips, torn-tail vs mid-log
// corruption classification, rotation, recovery from snapshot + replay,
// checkpointing with garbage collection, the id watermark, and the
// checkpoint snapshot section.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/durable_index.h"
#include "core/factory.h"
#include "data/synthetic.h"
#include "storage/index_io.h"
#include "wal/recovery.h"
#include "wal/wal_env.h"
#include "wal/wal_format.h"
#include "wal/wal_reader.h"
#include "wal/wal_writer.h"

namespace irhint {
namespace {

using Ids = std::vector<ObjectId>;

// Fresh, per-test directory (parallel ctest runs cases of this binary
// concurrently; paths must not be shared).
std::string TempWalDir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = std::string(info->test_suite_name()) + "_" + info->name();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  const std::string dir = std::string(::testing::TempDir()) + "/wal_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Object MakeObject(ObjectId id) {
  Object o;
  o.id = id;
  o.interval = Interval(10 * uint64_t{id}, 10 * uint64_t{id} + 500);
  o.elements = {id % 7, 10 + id % 5, 20 + id % 3};
  std::sort(o.elements.begin(), o.elements.end());
  o.elements.erase(std::unique(o.elements.begin(), o.elements.end()),
                   o.elements.end());
  return o;
}

std::vector<Query> MakeQueries() {
  std::vector<Query> queries;
  for (uint64_t st = 0; st < 2000; st += 130) {
    queries.push_back(Query(Interval(st, st + 400), {st % 7 == 0 ? 3u : 1u}));
    queries.push_back(Query(Interval(st, st + 900), {2, 12}));
  }
  return queries;
}

Ids Answer(const TemporalIrIndex& index, const Query& query) {
  Ids out;
  index.Query(query, &out);
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectSameAnswers(const TemporalIrIndex& a, const TemporalIrIndex& b) {
  const std::vector<Query> queries = MakeQueries();
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(Answer(a, queries[i]), Answer(b, queries[i]))
        << "query " << i << " differs";
  }
}

std::unique_ptr<TemporalIrIndex> EmptyIndex(IndexKind kind) {
  std::unique_ptr<TemporalIrIndex> index = CreateIndex(kind);
  Corpus empty;
  empty.DeclareDomain(1);
  EXPECT_TRUE(empty.Finalize().ok());
  EXPECT_TRUE(index->Build(empty).ok());
  return index;
}

void FlipByteInFile(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  unsigned char byte = 0;
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  ASSERT_EQ(std::fread(&byte, 1, 1, f), 1u);
  byte ^= 0x20;
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&byte, 1, 1, f), 1u);
  std::fclose(f);
}

void AppendGarbage(const std::string& path, size_t n) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  for (size_t i = 0; i < n; ++i) {
    const unsigned char byte = static_cast<unsigned char>(0xA5 ^ (31 * i));
    ASSERT_EQ(std::fwrite(&byte, 1, 1, f), 1u);
  }
  std::fclose(f);
}

TEST(WalFormatTest, FileNamesRoundTrip) {
  uint64_t value = 0;
  EXPECT_TRUE(ParseWalSegmentFileName(WalSegmentFileName(7), &value));
  EXPECT_EQ(value, 7u);
  EXPECT_TRUE(ParseCheckpointFileName(CheckpointFileName(123456789), &value));
  EXPECT_EQ(value, 123456789u);
  EXPECT_FALSE(ParseWalSegmentFileName("ckpt-00000000000000000001.snap",
                                       &value));
  EXPECT_FALSE(ParseCheckpointFileName("wal-00000000000000000001.log",
                                       &value));
  EXPECT_FALSE(ParseWalSegmentFileName("wal-1.log", &value));
  EXPECT_FALSE(ParseWalSegmentFileName("", &value));
}

TEST(WalWriterReaderTest, RecordsRoundTrip) {
  const std::string dir = TempWalDir();
  WalEnv* env = DefaultWalEnv();
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  WalWriterOptions options;
  options.durability = WalDurability::kAlways;
  auto writer = WalWriter::Open(env, dir, 1, 1, options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  for (ObjectId id = 0; id < 40; ++id) {
    auto lsn = (*writer)->AppendInsert(MakeObject(id));
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(lsn.value(), uint64_t{id} + 1);
  }
  auto erase_lsn = (*writer)->AppendErase(MakeObject(3));
  ASSERT_TRUE(erase_lsn.ok());
  EXPECT_EQ(erase_lsn.value(), 41u);
  EXPECT_EQ((*writer)->last_synced_lsn(), 41u);  // kAlways syncs every record
  writer->reset();

  auto contents =
      ReadWalSegment(env, WalPathJoin(dir, WalSegmentFileName(1)));
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_TRUE(contents->clean);
  EXPECT_EQ(contents->seq, 1u);
  ASSERT_EQ(contents->records.size(), 41u);
  for (size_t i = 0; i < 40; ++i) {
    const WalRecord& record = contents->records[i];
    EXPECT_EQ(record.lsn, i + 1);
    EXPECT_EQ(record.type, WalRecordType::kInsert);
    const Object want = MakeObject(static_cast<ObjectId>(i));
    EXPECT_EQ(record.object.id, want.id);
    EXPECT_EQ(record.object.interval, want.interval);
    EXPECT_EQ(record.object.elements, want.elements);
  }
  EXPECT_EQ(contents->records.back().type, WalRecordType::kErase);
  EXPECT_EQ(contents->records.back().object.id, 3u);
  std::filesystem::remove_all(dir);
}

TEST(WalWriterReaderTest, RotateSealsSegmentAndContinues) {
  const std::string dir = TempWalDir();
  WalEnv* env = DefaultWalEnv();
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  auto writer = WalWriter::Open(env, dir, 1, 1, {});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendInsert(MakeObject(0)).ok());
  ASSERT_TRUE((*writer)->Rotate().ok());
  EXPECT_EQ((*writer)->segment_seq(), 2u);
  ASSERT_TRUE((*writer)->AppendInsert(MakeObject(1)).ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  writer->reset();

  auto first = ReadWalSegment(env, WalPathJoin(dir, WalSegmentFileName(1)));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->clean);
  EXPECT_TRUE(first->ends_with_rotate);
  ASSERT_EQ(first->records.size(), 2u);
  EXPECT_EQ(first->records[1].type, WalRecordType::kRotate);
  EXPECT_EQ(first->records[1].next_seq, 2u);

  auto second = ReadWalSegment(env, WalPathJoin(dir, WalSegmentFileName(2)));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->clean);
  ASSERT_EQ(second->records.size(), 1u);
  EXPECT_EQ(second->records[0].lsn, 3u);  // LSNs continue across segments
  std::filesystem::remove_all(dir);
}

TEST(WalWriterReaderTest, TornTailIsNotMidLogCorruption) {
  const std::string dir = TempWalDir();
  WalEnv* env = DefaultWalEnv();
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  auto writer = WalWriter::Open(env, dir, 1, 1, {});
  ASSERT_TRUE(writer.ok());
  for (ObjectId id = 0; id < 10; ++id) {
    ASSERT_TRUE((*writer)->AppendInsert(MakeObject(id)).ok());
  }
  ASSERT_TRUE((*writer)->Sync().ok());
  writer->reset();

  const std::string path = WalPathJoin(dir, WalSegmentFileName(1));
  auto full = ReadWalSegment(env, path);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(full->clean);

  // Cut the file mid-way through the last record: a classic torn write.
  ASSERT_TRUE(env->TruncateFile(path, full->file_bytes - 5).ok());
  auto torn = ReadWalSegment(env, path);
  ASSERT_TRUE(torn.ok());
  EXPECT_FALSE(torn->clean);
  EXPECT_FALSE(torn->valid_record_after_tail);
  EXPECT_EQ(torn->records.size(), 9u);
  EXPECT_LT(torn->valid_bytes, torn->file_bytes);
  std::filesystem::remove_all(dir);
}

TEST(WalWriterReaderTest, BitFlipBeforeValidRecordsIsReported) {
  const std::string dir = TempWalDir();
  WalEnv* env = DefaultWalEnv();
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  auto writer = WalWriter::Open(env, dir, 1, 1, {});
  ASSERT_TRUE(writer.ok());
  for (ObjectId id = 0; id < 10; ++id) {
    ASSERT_TRUE((*writer)->AppendInsert(MakeObject(id)).ok());
  }
  ASSERT_TRUE((*writer)->Sync().ok());
  writer->reset();

  // Damage the second record; the reader keeps decoding past it and
  // reports the surviving records as a diagnostic (recovery still treats a
  // live segment's first failure as end-of-log).
  const std::string path = WalPathJoin(dir, WalSegmentFileName(1));
  const size_t second_record =
      kWalSegmentHeaderBytes +
      WalRecordBytesOnDisk(WalObjectPayloadBytes(MakeObject(0)));
  FlipByteInFile(path,
                 static_cast<long>(second_record + kWalRecordHeaderBytes + 2));
  auto contents = ReadWalSegment(env, path);
  ASSERT_TRUE(contents.ok());
  EXPECT_FALSE(contents->clean);
  EXPECT_TRUE(contents->valid_record_after_tail);
  EXPECT_EQ(contents->records.size(), 1u);
  std::filesystem::remove_all(dir);
}

TEST(WalWriterReaderTest, MisnamedSegmentFileIsRejected) {
  const std::string dir = TempWalDir();
  WalEnv* env = DefaultWalEnv();
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  auto writer = WalWriter::Open(env, dir, 1, 1, {});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendInsert(MakeObject(0)).ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  writer->reset();

  const std::string renamed = WalPathJoin(dir, WalSegmentFileName(9));
  ASSERT_TRUE(
      env->RenameFile(WalPathJoin(dir, WalSegmentFileName(1)), renamed).ok());
  auto contents = ReadWalSegment(env, renamed);
  EXPECT_FALSE(contents.ok());
  EXPECT_TRUE(contents.status().IsCorruption());
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, FreshDirectoryYieldsEmptyIndex) {
  const std::string dir = TempWalDir();  // never created
  auto result = RecoveryManager(DefaultWalEnv(), dir).Recover();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->last_lsn, 0u);
  EXPECT_EQ(result->next_segment_seq, 1u);
  EXPECT_EQ(result->next_object_id, 0u);
  Ids out;
  result->index->Query(Query(Interval(0, 1000), {1}), &out);
  EXPECT_TRUE(out.empty());
}

TEST(RecoveryTest, ReplaysLogAgainstReference) {
  const std::string dir = TempWalDir();
  WalEnv* env = DefaultWalEnv();
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  auto writer = WalWriter::Open(env, dir, 1, 1, {});
  ASSERT_TRUE(writer.ok());
  std::unique_ptr<TemporalIrIndex> reference =
      EmptyIndex(IndexKind::kNaiveScan);
  for (ObjectId id = 0; id < 120; ++id) {
    ASSERT_TRUE((*writer)->AppendInsert(MakeObject(id)).ok());
    ASSERT_TRUE(reference->Insert(MakeObject(id)).ok());
    if (id % 3 == 0) {
      ASSERT_TRUE((*writer)->AppendErase(MakeObject(id)).ok());
      ASSERT_TRUE(reference->Erase(MakeObject(id)).ok());
    }
  }
  ASSERT_TRUE((*writer)->Sync().ok());
  writer->reset();

  auto result = RecoveryManager(env, dir).Recover();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->records_replayed, 160u);
  EXPECT_EQ(result->records_skipped, 0u);
  EXPECT_EQ(result->next_object_id, 120u);
  ExpectSameAnswers(*result->index, *reference);
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, TruncatesTornTailAndRecoversSyncedPrefix) {
  const std::string dir = TempWalDir();
  WalEnv* env = DefaultWalEnv();
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  auto writer = WalWriter::Open(env, dir, 1, 1, {});
  ASSERT_TRUE(writer.ok());
  for (ObjectId id = 0; id < 30; ++id) {
    ASSERT_TRUE((*writer)->AppendInsert(MakeObject(id)).ok());
  }
  ASSERT_TRUE((*writer)->Sync().ok());
  writer->reset();

  const std::string path = WalPathJoin(dir, WalSegmentFileName(1));
  AppendGarbage(path, 13);  // a torn write past the synced prefix

  auto result = RecoveryManager(env, dir).Recover();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->last_lsn, 30u);
  EXPECT_EQ(result->torn_bytes_dropped, 13u);

  // The tail was physically truncated: a second recovery sees a clean log.
  auto again = RecoveryManager(env, dir).Recover();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->torn_bytes_dropped, 0u);
  EXPECT_EQ(again->last_lsn, 30u);
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, SealedSegmentCorruptionFailsWithCleanStatus) {
  const std::string dir = TempWalDir();
  WalEnv* env = DefaultWalEnv();
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  auto writer = WalWriter::Open(env, dir, 1, 1, {});
  ASSERT_TRUE(writer.ok());
  for (ObjectId id = 0; id < 30; ++id) {
    ASSERT_TRUE((*writer)->AppendInsert(MakeObject(id)).ok());
  }
  ASSERT_TRUE((*writer)->Rotate().ok());  // seal segment 1
  ASSERT_TRUE((*writer)->AppendInsert(MakeObject(30)).ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  writer->reset();

  FlipByteInFile(WalPathJoin(dir, WalSegmentFileName(1)),
                 kWalSegmentHeaderBytes + kWalRecordHeaderBytes + 1);
  auto result = RecoveryManager(env, dir).Recover();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, LiveSegmentDamageEndsTheLogThere) {
  const std::string dir = TempWalDir();
  WalEnv* env = DefaultWalEnv();
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  auto writer = WalWriter::Open(env, dir, 1, 1, {});
  ASSERT_TRUE(writer.ok());
  for (ObjectId id = 0; id < 30; ++id) {
    ASSERT_TRUE((*writer)->AppendInsert(MakeObject(id)).ok());
  }
  ASSERT_TRUE((*writer)->Sync().ok());
  writer->reset();

  // A flipped bit in the live segment's second record: out-of-order
  // writeback makes this a reachable crash state even with valid records
  // after it, so recovery truncates at the damage instead of failing.
  const size_t second_record =
      kWalSegmentHeaderBytes +
      WalRecordBytesOnDisk(WalObjectPayloadBytes(MakeObject(0)));
  FlipByteInFile(WalPathJoin(dir, WalSegmentFileName(1)),
                 static_cast<long>(second_record + kWalRecordHeaderBytes + 1));
  auto result = RecoveryManager(env, dir).Recover();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->last_lsn, 1u);
  EXPECT_GT(result->torn_bytes_dropped, 0u);

  // The truncation is durable: a second recovery sees a clean short log.
  auto again = RecoveryManager(env, dir).Recover();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->last_lsn, 1u);
  EXPECT_EQ(again->torn_bytes_dropped, 0u);
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, TornNonFinalSegmentIsCorruption) {
  const std::string dir = TempWalDir();
  WalEnv* env = DefaultWalEnv();
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  auto writer = WalWriter::Open(env, dir, 1, 1, {});
  ASSERT_TRUE(writer.ok());
  for (ObjectId id = 0; id < 10; ++id) {
    ASSERT_TRUE((*writer)->AppendInsert(MakeObject(id)).ok());
  }
  ASSERT_TRUE((*writer)->Rotate().ok());
  ASSERT_TRUE((*writer)->AppendInsert(MakeObject(10)).ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  writer->reset();

  const std::string first = WalPathJoin(dir, WalSegmentFileName(1));
  auto size = env->FileSize(first);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(env->TruncateFile(first, *size - 3).ok());
  auto result = RecoveryManager(env, dir).Recover();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, CorruptSnapshotFallsBackToFullReplay) {
  const std::string dir = TempWalDir();
  WalEnv* env = DefaultWalEnv();
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  auto writer = WalWriter::Open(env, dir, 1, 1, {});
  ASSERT_TRUE(writer.ok());
  std::unique_ptr<TemporalIrIndex> reference =
      EmptyIndex(IndexKind::kNaiveScan);
  std::unique_ptr<TemporalIrIndex> mid = EmptyIndex(IndexKind::kNaiveScan);
  for (ObjectId id = 0; id < 60; ++id) {
    ASSERT_TRUE((*writer)->AppendInsert(MakeObject(id)).ok());
    ASSERT_TRUE(reference->Insert(MakeObject(id)).ok());
    if (id < 40) {
      ASSERT_TRUE(mid->Insert(MakeObject(id)).ok());
    }
  }
  ASSERT_TRUE((*writer)->Sync().ok());
  writer->reset();

  // A checkpoint covering LSN 40 whose snapshot has since bit-rotted. The
  // log still holds every record, so recovery must fall back to replaying
  // it all.
  const std::string snapshot = WalPathJoin(dir, CheckpointFileName(40));
  ASSERT_TRUE(SaveIndexCheckpoint(*mid, snapshot, 40, 40).ok());
  FlipByteInFile(snapshot, 100);

  auto result = RecoveryManager(env, dir).Recover();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->snapshots_rejected, 1u);
  EXPECT_TRUE(result->snapshot_file.empty());
  EXPECT_EQ(result->records_replayed, 60u);
  ExpectSameAnswers(*result->index, *reference);
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, IntactSnapshotSkipsCoveredRecords) {
  const std::string dir = TempWalDir();
  WalEnv* env = DefaultWalEnv();
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  auto writer = WalWriter::Open(env, dir, 1, 1, {});
  ASSERT_TRUE(writer.ok());
  std::unique_ptr<TemporalIrIndex> reference =
      EmptyIndex(IndexKind::kNaiveScan);
  std::unique_ptr<TemporalIrIndex> mid = EmptyIndex(IndexKind::kNaiveScan);
  for (ObjectId id = 0; id < 60; ++id) {
    ASSERT_TRUE((*writer)->AppendInsert(MakeObject(id)).ok());
    ASSERT_TRUE(reference->Insert(MakeObject(id)).ok());
    if (id < 40) {
      ASSERT_TRUE(mid->Insert(MakeObject(id)).ok());
    }
  }
  ASSERT_TRUE((*writer)->Sync().ok());
  writer->reset();
  ASSERT_TRUE(SaveIndexCheckpoint(
      *mid, WalPathJoin(dir, CheckpointFileName(40)), 40, 40).ok());

  auto result = RecoveryManager(env, dir).Recover();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->snapshot_lsn, 40u);
  EXPECT_EQ(result->kind, IndexKind::kNaiveScan);  // snapshot kind wins
  EXPECT_EQ(result->records_replayed, 20u);
  EXPECT_EQ(result->next_object_id, 60u);
  ExpectSameAnswers(*result->index, *reference);
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, MisnamedCheckpointIsRejected) {
  const std::string dir = TempWalDir();
  WalEnv* env = DefaultWalEnv();
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  std::unique_ptr<TemporalIrIndex> mid = EmptyIndex(IndexKind::kNaiveScan);
  ASSERT_TRUE(mid->Insert(MakeObject(0)).ok());
  // Snapshot says it covers LSN 1 but sits under a name claiming LSN 25.
  ASSERT_TRUE(SaveIndexCheckpoint(
      *mid, WalPathJoin(dir, CheckpointFileName(25)), 1, 1).ok());
  auto result = RecoveryManager(env, dir).Recover();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->snapshots_rejected, 1u);
  EXPECT_TRUE(result->snapshot_file.empty());
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, LsnGapAfterLostRecordsIsCorruption) {
  const std::string dir = TempWalDir();
  WalEnv* env = DefaultWalEnv();
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  // Records 1..99 were garbage-collected against a checkpoint that no
  // longer loads (simulated here by its absence); the survivors start at
  // LSN 100. Silently dropping 99 acknowledged records would be data loss,
  // so recovery must fail cleanly.
  auto writer = WalWriter::Open(env, dir, 2, 100, {});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendInsert(MakeObject(99)).ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  writer->reset();
  auto result = RecoveryManager(env, dir).Recover();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointSnapshotTest, WalStateSectionRoundTrips) {
  const std::string dir = TempWalDir();
  ASSERT_TRUE(DefaultWalEnv()->CreateDirIfMissing(dir).ok());
  std::unique_ptr<TemporalIrIndex> index = EmptyIndex(IndexKind::kIrHintPerf);
  ASSERT_TRUE(index->Insert(MakeObject(0)).ok());
  const std::string path = WalPathJoin(dir, CheckpointFileName(17));
  ASSERT_TRUE(SaveIndexCheckpoint(*index, path, 17, 1).ok());

  auto info = LoadIndexCheckpoint(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->wal_lsn, 17u);
  EXPECT_EQ(info->next_object_id, 1u);
  EXPECT_EQ(info->loaded.kind, IndexKind::kIrHintPerf);

  // A checkpoint is still a regular snapshot (readers ignore the extra
  // section) ...
  EXPECT_TRUE(LoadIndexSnapshot(path).ok());

  // ... but a plain snapshot is not a checkpoint.
  const std::string plain = WalPathJoin(dir, "plain.irh");
  ASSERT_TRUE(SaveIndex(*index, plain).ok());
  auto not_ckpt = LoadIndexCheckpoint(plain);
  EXPECT_FALSE(not_ckpt.ok());
  EXPECT_TRUE(not_ckpt.status().IsInvalidArgument());
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// DurableIndex: the full stack.
// ---------------------------------------------------------------------------

TEST(DurableIndexTest, ReopenRestoresExactState) {
  const std::string dir = TempWalDir();
  std::unique_ptr<TemporalIrIndex> reference =
      EmptyIndex(IndexKind::kNaiveScan);
  {
    auto index = DurableIndex::Open(dir);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    for (ObjectId id = 0; id < 150; ++id) {
      ASSERT_TRUE((*index)->Insert(MakeObject(id)).ok());
      ASSERT_TRUE(reference->Insert(MakeObject(id)).ok());
      if (id % 4 == 1) {
        ASSERT_TRUE((*index)->Erase(MakeObject(id)).ok());
        ASSERT_TRUE(reference->Erase(MakeObject(id)).ok());
      }
    }
    ExpectSameAnswers(**index, *reference);
  }
  auto reopened = DurableIndex::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovery_info().last_lsn, 150u + 38u);
  EXPECT_EQ((*reopened)->next_object_id(), 150u);
  ExpectSameAnswers(**reopened, *reference);
  std::filesystem::remove_all(dir);
}

TEST(DurableIndexTest, WatermarkRejectsDuplicateAndUnknownIds) {
  const std::string dir = TempWalDir();
  auto index = DurableIndex::Open(dir);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE((*index)->Insert(MakeObject(5)).ok());
  EXPECT_TRUE((*index)->Insert(MakeObject(5)).IsAlreadyExists());
  EXPECT_TRUE((*index)->Insert(MakeObject(2)).IsAlreadyExists());
  EXPECT_TRUE((*index)->Erase(MakeObject(9)).IsNotFound());
  Object inverted = MakeObject(6);
  inverted.interval = Interval(10, 9);
  EXPECT_TRUE((*index)->Insert(inverted).IsInvalidArgument());
  EXPECT_TRUE((*index)->Insert(MakeObject(6)).ok());

  // The watermark survives recovery.
  index->reset();
  auto reopened = DurableIndex::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->Insert(MakeObject(6)).IsAlreadyExists());
  EXPECT_TRUE((*reopened)->Insert(MakeObject(7)).ok());
  std::filesystem::remove_all(dir);
}

TEST(DurableIndexTest, InlineCheckpointRotatesAndCollectsGarbage) {
  const std::string dir = TempWalDir();
  WalEnv* env = DefaultWalEnv();
  std::unique_ptr<TemporalIrIndex> reference =
      EmptyIndex(IndexKind::kNaiveScan);
  DurableIndexOptions options;
  options.checkpoint_bytes = 4096;  // checkpoint roughly every ~60 records
  options.background_checkpoint = false;
  {
    auto index = DurableIndex::Open(dir, options);
    ASSERT_TRUE(index.ok());
    for (ObjectId id = 0; id < 400; ++id) {
      ASSERT_TRUE((*index)->Insert(MakeObject(id)).ok());
      ASSERT_TRUE(reference->Insert(MakeObject(id)).ok());
    }
    EXPECT_GT((*index)->wal_segment_seq(), 2u);  // rotations happened
  }
  // GC keeps exactly one checkpoint and only segments at/after the live
  // one.
  auto checkpoints = ListCheckpointLsns(env, dir);
  ASSERT_TRUE(checkpoints.ok());
  EXPECT_EQ(checkpoints->size(), 1u);
  auto segments = ListWalSegments(env, dir);
  ASSERT_TRUE(segments.ok());
  EXPECT_LE(segments->size(), 2u);

  auto reopened = DurableIndex::Open(dir, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovery_info().snapshot_lsn,
            checkpoints->front());
  ExpectSameAnswers(**reopened, *reference);
  std::filesystem::remove_all(dir);
}

TEST(DurableIndexTest, BackgroundCheckpointCompletes) {
  const std::string dir = TempWalDir();
  DurableIndexOptions options;
  options.checkpoint_bytes = 4096;
  options.background_checkpoint = true;
  std::unique_ptr<TemporalIrIndex> reference =
      EmptyIndex(IndexKind::kNaiveScan);
  {
    auto index = DurableIndex::Open(dir, options);
    ASSERT_TRUE(index.ok());
    for (ObjectId id = 0; id < 400; ++id) {
      ASSERT_TRUE((*index)->Insert(MakeObject(id)).ok());
      ASSERT_TRUE(reference->Insert(MakeObject(id)).ok());
    }
    ASSERT_TRUE((*index)->WaitForCheckpoint().ok());
    EXPECT_GT((*index)->wal_segment_seq(), 1u);
    ExpectSameAnswers(**index, *reference);
  }
  auto reopened = DurableIndex::Open(dir, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GT((*reopened)->recovery_info().snapshot_lsn, 0u);
  ExpectSameAnswers(**reopened, *reference);
  std::filesystem::remove_all(dir);
}

TEST(DurableIndexTest, BuildBulkLoadsThroughTheLog) {
  const std::string dir = TempWalDir();
  SyntheticParams params;
  params.cardinality = 300;
  params.domain = 20000;
  params.sigma = 2000;
  params.dictionary_size = 50;
  params.description_size = 4;
  params.seed = 5;
  const Corpus corpus = GenerateSynthetic(params);

  std::unique_ptr<TemporalIrIndex> reference =
      CreateIndex(IndexKind::kNaiveScan);
  ASSERT_TRUE(reference->Build(corpus).ok());
  {
    auto index = DurableIndex::Open(dir);
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE((*index)->Build(corpus).ok());
    // Build on a non-fresh directory is rejected.
    EXPECT_TRUE((*index)->Build(corpus).IsInvalidArgument());
  }
  auto reopened = DurableIndex::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->recovery_info().last_lsn, corpus.size());
  ExpectSameAnswers(**reopened, *reference);
  std::filesystem::remove_all(dir);
}

TEST(DurableIndexTest, AllKindsSurviveReopen) {
  const IndexKind kinds[] = {
      IndexKind::kNaiveScan,           IndexKind::kTif,
      IndexKind::kTifSlicing,          IndexKind::kTifSharding,
      IndexKind::kTifHintBinarySearch, IndexKind::kTifHintMergeSort,
      IndexKind::kTifHintSlicing,      IndexKind::kIrHintPerf,
      IndexKind::kIrHintSize,
  };
  for (const IndexKind kind : kinds) {
    const std::string dir =
        TempWalDir() + "_" + std::to_string(static_cast<int>(kind));
    std::filesystem::remove_all(dir);
    DurableIndexOptions options;
    options.kind = kind;
    options.checkpoint_bytes = 2048;
    options.background_checkpoint = false;
    std::unique_ptr<TemporalIrIndex> reference =
        EmptyIndex(IndexKind::kNaiveScan);
    {
      auto index = DurableIndex::Open(dir, options);
      ASSERT_TRUE(index.ok()) << index.status().ToString();
      for (ObjectId id = 0; id < 80; ++id) {
        ASSERT_TRUE((*index)->Insert(MakeObject(id)).ok());
        ASSERT_TRUE(reference->Insert(MakeObject(id)).ok());
        if (id % 5 == 2) {
          ASSERT_TRUE((*index)->Erase(MakeObject(id)).ok());
          ASSERT_TRUE(reference->Erase(MakeObject(id)).ok());
        }
      }
    }
    auto reopened = DurableIndex::Open(dir, options);
    ASSERT_TRUE(reopened.ok())
        << IndexKindName(kind) << ": " << reopened.status().ToString();
    EXPECT_EQ((*reopened)->Kind(), kind);
    ExpectSameAnswers(**reopened, *reference);
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace irhint

#include "irfirst/tif_sharding.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/corpus.h"

namespace irhint {
namespace {

std::vector<ObjectId> Sorted(std::vector<ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

Corpus StaircaseCorpus() {
  // Two interleaved "staircases" over one element, forcing >= 2 ideal
  // shards: intervals whose ends decrease as starts increase violate the
  // staircase property within one chain.
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(2));
  corpus.Append(Interval(0, 100), {0});
  corpus.Append(Interval(10, 90), {0});
  corpus.Append(Interval(20, 80), {0});
  corpus.Append(Interval(30, 70), {0});
  corpus.Append(Interval(40, 60), {0});
  EXPECT_TRUE(corpus.Finalize().ok());
  return corpus;
}

TEST(TifShardingTest, NestedIntervalsNeedOneShardEach) {
  const Corpus corpus = StaircaseCorpus();
  TifShardingOptions options;
  options.min_shard_size = 1;       // keep ideal shards
  options.max_shards_per_list = 64;
  TifSharding index(options);
  ASSERT_TRUE(index.Build(corpus).ok());
  // Fully nested intervals: every chain holds exactly one interval.
  EXPECT_EQ(index.NumShards(0), 5u);
}

TEST(TifShardingTest, StaircaseInputNeedsOneShard) {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(1));
  corpus.Append(Interval(0, 10), {0});
  corpus.Append(Interval(5, 20), {0});
  corpus.Append(Interval(7, 30), {0});
  corpus.Append(Interval(9, 30), {0});
  ASSERT_TRUE(corpus.Finalize().ok());
  TifShardingOptions options;
  options.min_shard_size = 1;
  TifSharding index(options);
  ASSERT_TRUE(index.Build(corpus).ok());
  EXPECT_EQ(index.NumShards(0), 1u);
}

TEST(TifShardingTest, MergingBoundsShardCount) {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(1));
  // 100 fully nested intervals -> 100 ideal shards.
  for (int i = 0; i < 100; ++i) {
    corpus.Append(Interval(i, 200 - i), {0});
  }
  ASSERT_TRUE(corpus.Finalize().ok());
  TifShardingOptions options;
  options.max_shards_per_list = 4;
  options.min_shard_size = 1;
  TifSharding index(options);
  ASSERT_TRUE(index.Build(corpus).ok());
  EXPECT_LE(index.NumShards(0), 4u);

  // Relaxed shards must still answer correctly.
  std::vector<ObjectId> out;
  index.Query(Query(Interval(95, 105), {0}), &out);
  EXPECT_EQ(out.size(), 100u);
  out.clear();
  index.Query(Query(Interval(0, 0), {0}), &out);
  EXPECT_EQ(out, std::vector<ObjectId>{0});
}

TEST(TifShardingTest, ImpactListSkipsDeadPrefix) {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(1));
  // A long staircase; queries late in the domain must not scan the prefix.
  for (ObjectId i = 0; i < 1000; ++i) {
    corpus.Append(Interval(i, i + 5), {0});
  }
  ASSERT_TRUE(corpus.Finalize().ok());
  TifSharding index;
  ASSERT_TRUE(index.Build(corpus).ok());
  std::vector<ObjectId> out;
  index.Query(Query(Interval(990, 1000), {0}), &out);
  EXPECT_EQ(Sorted(out),
            (std::vector<ObjectId>{985, 986, 987, 988, 989, 990, 991, 992,
                                   993, 994, 995, 996, 997, 998, 999}));
}

TEST(TifShardingTest, InsertKeepsShardsQueryable) {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(2));
  for (ObjectId i = 0; i < 50; ++i) {
    corpus.Append(Interval(i * 2, i * 2 + 10), {i % 2});
  }
  ASSERT_TRUE(corpus.Finalize().ok());
  TifSharding index;
  ASSERT_TRUE(index.Build(corpus).ok());
  // Insert an interval that starts before existing ones end (stresses the
  // sorted-insert path).
  ASSERT_TRUE(index.Insert(Object(50, Interval(3, 200), {0, 1})).ok());
  std::vector<ObjectId> out;
  index.Query(Query(Interval(150, 180), {0, 1}), &out);
  EXPECT_EQ(out, std::vector<ObjectId>{50});
}

TEST(TifShardingTest, EraseViaQueryResemblingScan) {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(1));
  for (ObjectId i = 0; i < 30; ++i) {
    corpus.Append(Interval(i, i + 3), {0});
  }
  ASSERT_TRUE(corpus.Finalize().ok());
  TifSharding index;
  ASSERT_TRUE(index.Build(corpus).ok());
  ASSERT_TRUE(index.Erase(corpus.object(10)).ok());
  std::vector<ObjectId> out;
  index.Query(Query(Interval(10, 10), {0}), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{7, 8, 9}));
  EXPECT_TRUE(index.Erase(corpus.object(10)).IsNotFound());
}

}  // namespace
}  // namespace irhint

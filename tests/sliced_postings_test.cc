#include "irfirst/sliced_postings.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace irhint {
namespace {

using Ids = std::vector<ObjectId>;

Ids Flatten(const CandidateChunks& chunks) {
  Ids out;
  FlattenChunks(chunks, &out);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(SliceGridTest, UniformMapping) {
  SliceGrid grid(99, 10);  // 100 points, 10 slices of 10
  EXPECT_EQ(grid.SliceOf(0), 0u);
  EXPECT_EQ(grid.SliceOf(9), 0u);
  EXPECT_EQ(grid.SliceOf(10), 1u);
  EXPECT_EQ(grid.SliceOf(99), 9u);
  EXPECT_EQ(grid.SliceOf(1000), 9u);  // clamp
}

TEST(SlicedPostingsTest, ReplicationCountsOverlappingSlices) {
  SliceGrid grid(99, 10);
  SlicedPostings list;
  list.Add(grid, 1, Interval(5, 35));   // slices 0..3 -> 4 replicas
  list.Add(grid, 2, Interval(50, 50));  // 1 replica
  EXPECT_EQ(list.NumEntries(), 5u);
}

TEST(SlicedPostingsTest, BuildCandidatesDeduplicatesByReference) {
  SliceGrid grid(99, 10);
  SlicedPostings list;
  list.Add(grid, 1, Interval(0, 99));   // replicated everywhere
  list.Add(grid, 2, Interval(12, 18));  // slice 1 only
  list.Add(grid, 3, Interval(70, 95));  // slices 7..9

  CandidateChunks chunks;
  list.BuildCandidates(grid, Interval(10, 79), &chunks);
  EXPECT_EQ(Flatten(chunks), (Ids{1, 2, 3}));

  // Narrow query missing object 2 and 3.
  chunks.clear();
  list.BuildCandidates(grid, Interval(30, 40), &chunks);
  EXPECT_EQ(Flatten(chunks), (Ids{1}));
}

TEST(SlicedPostingsTest, ChunksComeSortedBySliceAndId) {
  SliceGrid grid(99, 10);
  SlicedPostings list;
  for (ObjectId id = 0; id < 20; ++id) {
    const Time st = (id * 13) % 90;
    list.Add(grid, id, Interval(st, st + 9));
  }
  CandidateChunks chunks;
  list.BuildCandidates(grid, Interval(0, 99), &chunks);
  uint32_t prev_slice = 0;
  bool first = true;
  size_t total = 0;
  for (const auto& [slice, ids] : chunks) {
    if (!first) {
      EXPECT_GT(slice, prev_slice);
    }
    prev_slice = slice;
    first = false;
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    total += ids.size();
  }
  EXPECT_EQ(total, 20u);  // every object exactly once
}

TEST(SlicedPostingsTest, IntersectChunksMatchesPerSliceMembership) {
  SliceGrid grid(99, 10);
  SlicedPostings first;
  SlicedPostings second;
  // Objects 1..4 all overlap the query; only 1 and 3 appear in `second`.
  first.Add(grid, 1, Interval(0, 99));
  first.Add(grid, 2, Interval(15, 20));
  first.Add(grid, 3, Interval(30, 60));
  first.Add(grid, 4, Interval(80, 85));
  second.Add(grid, 1, Interval(0, 99));
  second.Add(grid, 3, Interval(30, 60));

  CandidateChunks chunks;
  first.BuildCandidates(grid, Interval(0, 99), &chunks);
  CandidateChunks out;
  second.IntersectChunks(chunks, &out);
  EXPECT_EQ(Flatten(out), (Ids{1, 3}));
}

TEST(SlicedPostingsTest, IntersectFlatAppliesReferenceTest) {
  SliceGrid grid(99, 10);
  SlicedPostingsIdSt list;
  list.Add(grid, 1, Interval(0, 99));  // in every slice
  list.Add(grid, 5, Interval(42, 44));

  // Flat candidates sorted by id (as produced by the hybrid's HINT copy).
  const Ids flat{1, 5, 9};
  CandidateChunks out;
  list.IntersectFlat(grid, Interval(20, 70), flat, &out);
  // Each candidate reported exactly once despite replication.
  EXPECT_EQ(Flatten(out), (Ids{1, 5}));
  size_t occurrences_of_1 = 0;
  for (const auto& [slice, ids] : out) {
    (void)slice;
    occurrences_of_1 += std::count(ids.begin(), ids.end(), 1u);
  }
  EXPECT_EQ(occurrences_of_1, 1u);
}

TEST(SlicedPostingsTest, TombstoneHidesAllReplicas) {
  SliceGrid grid(99, 10);
  SlicedPostings list;
  list.Add(grid, 7, Interval(0, 99));
  EXPECT_EQ(list.Tombstone(grid, 7, Interval(0, 99)), 10u);  // one per slice
  CandidateChunks chunks;
  list.BuildCandidates(grid, Interval(0, 99), &chunks);
  EXPECT_TRUE(Flatten(chunks).empty());
  EXPECT_EQ(list.Tombstone(grid, 7, Interval(0, 99)), 0u);  // already gone
}

TEST(SlicedPostingsTest, TombstoneOnlyTouchesOwnReplicas) {
  SliceGrid grid(99, 10);
  SlicedPostings list;
  list.Add(grid, 3, Interval(10, 35));   // slices 1..3
  list.Add(grid, 4, Interval(30, 55));   // slices 3..5
  EXPECT_EQ(list.Tombstone(grid, 3, Interval(10, 35)), 3u);
  CandidateChunks chunks;
  list.BuildCandidates(grid, Interval(0, 99), &chunks);
  EXPECT_EQ(Flatten(chunks), (Ids{4}));
}

TEST(SlicedPostingsTest, RandomizedAgainstBruteForce) {
  const Time domain_end = 999;
  SliceGrid grid(domain_end, 13);
  SlicedPostings list;
  Rng rng(77);
  std::vector<Interval> intervals;
  for (ObjectId id = 0; id < 200; ++id) {
    const Time st = rng.Uniform(domain_end + 1);
    const Time end = std::min<Time>(domain_end, st + rng.Uniform(400));
    intervals.emplace_back(st, end);
    list.Add(grid, id, intervals.back());
  }
  for (int round = 0; round < 200; ++round) {
    const Time st = rng.Uniform(domain_end + 1);
    const Time end = std::min<Time>(domain_end, st + rng.Uniform(500));
    const Interval q(st, end);
    CandidateChunks chunks;
    list.BuildCandidates(grid, q, &chunks);
    Ids expected;
    for (ObjectId id = 0; id < 200; ++id) {
      if (Overlaps(intervals[id], q)) expected.push_back(id);
    }
    EXPECT_EQ(Flatten(chunks), expected) << "q=[" << st << "," << end << "]";
  }
}

}  // namespace
}  // namespace irhint

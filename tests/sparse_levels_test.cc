#include "hint/sparse_levels.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace irhint {
namespace {

struct Payload {
  int value = 0;
};

TEST(SparseLevelsTest, InitCreatesEmptyLevels) {
  SparseLevels<Payload> levels;
  levels.Init(4);
  EXPECT_EQ(levels.num_levels(), 5);
  EXPECT_EQ(levels.NumPartitions(), 0u);
  EXPECT_EQ(levels.Find(0, 0), nullptr);
  EXPECT_EQ(levels.Find(4, 15), nullptr);
}

TEST(SparseLevelsTest, FindOrCreateIsIdempotent) {
  SparseLevels<Payload> levels;
  levels.Init(3);
  levels.FindOrCreate(2, 3).value = 42;
  EXPECT_EQ(levels.FindOrCreate(2, 3).value, 42);
  ASSERT_NE(levels.Find(2, 3), nullptr);
  EXPECT_EQ(levels.Find(2, 3)->value, 42);
  EXPECT_EQ(levels.NumPartitions(), 1u);
  // Same index at a different level is distinct.
  EXPECT_EQ(levels.Find(1, 3), nullptr);
}

TEST(SparseLevelsTest, ForRangeVisitsSortedWindow) {
  SparseLevels<Payload> levels;
  levels.Init(5);
  // Insert out of order.
  for (const uint64_t j : {17u, 3u, 29u, 11u, 5u, 23u}) {
    levels.FindOrCreate(5, j).value = static_cast<int>(j);
  }
  std::vector<uint64_t> seen;
  levels.ForRange(5, 5, 23, [&seen](uint64_t j, const Payload& p) {
    EXPECT_EQ(p.value, static_cast<int>(j));
    seen.push_back(j);
  });
  EXPECT_EQ(seen, (std::vector<uint64_t>{5, 11, 17, 23}));
  // Empty window.
  seen.clear();
  levels.ForRange(5, 30, 100, [&seen](uint64_t j, const Payload&) {
    seen.push_back(j);
  });
  EXPECT_TRUE(seen.empty());
}

TEST(SparseLevelsTest, ForEachCoversAllLevels) {
  SparseLevels<Payload> levels;
  levels.Init(3);
  levels.FindOrCreate(0, 0);
  levels.FindOrCreate(1, 1);
  levels.FindOrCreate(3, 7);
  std::set<std::pair<int, uint64_t>> seen;
  levels.ForEach([&seen](int level, uint64_t j, const Payload&) {
    seen.insert({level, j});
  });
  EXPECT_EQ(seen, (std::set<std::pair<int, uint64_t>>{{0, 0}, {1, 1},
                                                      {3, 7}}));
  EXPECT_EQ(levels.NumPartitions(), 3u);
}

TEST(SparseLevelsTest, ForEachMutableAllowsEdits) {
  SparseLevels<Payload> levels;
  levels.Init(2);
  levels.FindOrCreate(2, 0);
  levels.FindOrCreate(2, 3);
  levels.ForEachMutable([](int, uint64_t, Payload& p) { p.value = 9; });
  EXPECT_EQ(levels.Find(2, 0)->value, 9);
  EXPECT_EQ(levels.Find(2, 3)->value, 9);
}

TEST(SparseLevelsTest, RandomizedAgainstReferenceMap) {
  SparseLevels<Payload> levels;
  levels.Init(8);
  std::set<std::pair<int, uint64_t>> reference;
  Rng rng(41);
  for (int op = 0; op < 2000; ++op) {
    const int level = static_cast<int>(rng.Uniform(9));
    const uint64_t j = rng.Uniform(uint64_t{1} << level);
    if (rng.NextBool(0.7)) {
      levels.FindOrCreate(level, j);
      reference.insert({level, j});
    } else {
      EXPECT_EQ(levels.Find(level, j) != nullptr,
                reference.count({level, j}) > 0);
    }
  }
  EXPECT_EQ(levels.NumPartitions(), reference.size());
  EXPECT_GT(levels.DirectoryBytes(), 0u);
}

}  // namespace
}  // namespace irhint

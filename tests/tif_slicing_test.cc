// Dedicated tests for tIF+Slicing (replication accounting, tuning knob,
// degenerate slice counts, update interplay).

#include "irfirst/tif_slicing.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/naive_scan.h"
#include "data/corpus.h"
#include "data/synthetic.h"

namespace irhint {
namespace {

std::vector<ObjectId> Sorted(std::vector<ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(TifSlicingTest, ReplicationCountsMatchHandComputation) {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(2));
  corpus.DeclareDomain(99);
  corpus.Append(Interval(0, 99), {0});   // spans all 10 slices
  corpus.Append(Interval(5, 9), {0});    // 1 slice
  corpus.Append(Interval(8, 12), {1});   // 2 slices
  ASSERT_TRUE(corpus.Finalize().ok());

  TifSlicingOptions options;
  options.num_slices = 10;
  TifSlicing index(options);
  ASSERT_TRUE(index.Build(corpus).ok());
  EXPECT_EQ(index.NumEntries(), 10u + 1u + 2u);
  EXPECT_EQ(index.Frequency(0), 2u);  // distinct objects, not replicas
  EXPECT_EQ(index.Frequency(1), 1u);
}

TEST(TifSlicingTest, SingleSliceDegeneratesToPlainTif) {
  SyntheticParams params;
  params.cardinality = 800;
  params.domain = 50000;
  params.dictionary_size = 30;
  params.description_size = 4;
  const Corpus corpus = GenerateSynthetic(params);

  TifSlicingOptions options;
  options.num_slices = 1;
  TifSlicing index(options);
  ASSERT_TRUE(index.Build(corpus).ok());
  // No replication with a single slice.
  size_t postings = 0;
  for (const Object& o : corpus.objects()) postings += o.elements.size();
  EXPECT_EQ(index.NumEntries(), postings);

  NaiveScan oracle;
  ASSERT_TRUE(oracle.Build(corpus).ok());
  std::vector<ObjectId> expected, actual;
  const Query q(Interval(10000, 30000), {0, 1});
  oracle.Query(q, &expected);
  index.Query(q, &actual);
  EXPECT_EQ(Sorted(actual), Sorted(expected));
}

TEST(TifSlicingTest, ZeroSlicesRejected) {
  TifSlicingOptions options;
  options.num_slices = 0;
  TifSlicing index(options);
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(1));
  EXPECT_TRUE(index.Build(corpus).IsInvalidArgument());
}

TEST(TifSlicingTest, MoreSlicesMoreEntries) {
  SyntheticParams params;
  params.cardinality = 500;
  params.domain = 50000;
  params.alpha = 1.01;  // long intervals -> heavy replication
  params.dictionary_size = 20;
  params.description_size = 3;
  const Corpus corpus = GenerateSynthetic(params);
  size_t prev = 0;
  for (const uint32_t slices : {1u, 8u, 64u}) {
    TifSlicingOptions options;
    options.num_slices = slices;
    TifSlicing index(options);
    ASSERT_TRUE(index.Build(corpus).ok());
    EXPECT_GT(index.NumEntries(), prev);
    prev = index.NumEntries();
  }
}

TEST(TifSlicingTest, EraseDropsAllReplicasAndFrequency) {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(1));
  corpus.DeclareDomain(99);
  corpus.Append(Interval(0, 99), {0});
  corpus.Append(Interval(40, 45), {0});
  ASSERT_TRUE(corpus.Finalize().ok());
  TifSlicingOptions options;
  options.num_slices = 10;
  TifSlicing index(options);
  ASSERT_TRUE(index.Build(corpus).ok());

  ASSERT_TRUE(index.Erase(corpus.object(0)).ok());
  EXPECT_EQ(index.Frequency(0), 1u);
  std::vector<ObjectId> out;
  index.Query(Query(Interval(0, 99), {0}), &out);
  EXPECT_EQ(out, std::vector<ObjectId>{1});
  // Re-erasing fails; erasing the other object works.
  EXPECT_TRUE(index.Erase(corpus.object(0)).IsNotFound());
  ASSERT_TRUE(index.Erase(corpus.object(1)).ok());
  index.Query(Query(Interval(0, 99), {0}), &out);
  EXPECT_TRUE(out.empty());
}

TEST(TifSlicingTest, QueryWindowClampsToRelevantSlices) {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(1));
  corpus.DeclareDomain(99);
  // One object per slice of 10.
  for (int s = 0; s < 10; ++s) {
    corpus.Append(Interval(s * 10 + 2, s * 10 + 7), {0});
  }
  ASSERT_TRUE(corpus.Finalize().ok());
  TifSlicingOptions options;
  options.num_slices = 10;
  TifSlicing index(options);
  ASSERT_TRUE(index.Build(corpus).ok());
  std::vector<ObjectId> out;
  index.Query(Query(Interval(35, 55), {0}), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{3, 4, 5}));
}

}  // namespace
}  // namespace irhint

#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/synchronization.h"

namespace irhint {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) pool.Submit([&done] { done.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(done.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.Submit([&done] { done.fetch_add(1); });
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, DestructorRunsTasksThatNeverStarted) {
  // Queue far more work than the workers can have started, with a slow
  // first task per worker so the destructor provably finds queued-but-
  // unstarted tasks. ~ThreadPool must drain them all, not drop them.
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 2; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        done.fetch_add(1);
      });
    }
    for (int i = 0; i < 200; ++i) pool.Submit([&done] { done.fetch_add(1); });
  }
  EXPECT_EQ(done.load(), 202);
}

TEST(ThreadPoolTest, WaitFromInsideWorkerTaskHelpsDrainTheQueue) {
  // A task that submits subtasks and Wait()s for them must not deadlock,
  // even on a single-worker pool where the only worker is the one waiting:
  // Wait() detects it runs on a pool thread and helps execute the queue.
  for (size_t threads : {size_t{1}, size_t{3}}) {
    ThreadPool pool(threads);
    std::atomic<int> inner{0};
    std::atomic<int> outer{0};
    pool.Submit([&] {
      for (int i = 0; i < 16; ++i) {
        pool.Submit([&inner] { inner.fetch_add(1); });
      }
      pool.Wait();
      // Every subtask finished before the nested Wait() returned.
      EXPECT_EQ(inner.load(), 16) << "threads=" << threads;
      outer.fetch_add(1);
    });
    pool.Wait();
    EXPECT_EQ(outer.load(), 1) << "threads=" << threads;
    EXPECT_EQ(inner.load(), 16) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, SubmittedTaskExceptionSurfacesAtWaitAndPoolStaysUsable) {
  ThreadPool pool(2);
  std::atomic<int> survivors{0};
  pool.Submit([] { throw std::runtime_error("submitted task failed"); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&survivors] { survivors.fetch_add(1); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The failure cancelled nothing: the other tasks all ran.
  EXPECT_EQ(survivors.load(), 10);
  // The error does not stick to the pool — the next batch is clean.
  std::atomic<int> after{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&after] { after.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.ParallelFor(0, visits.size(),
                   [&visits](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForRespectsBounds) {
  ThreadPool pool(3);
  Mutex mu{"test::seen"};
  std::set<size_t> seen;
  pool.ParallelFor(17, 113, [&](size_t i) {
    MutexLock lock(&mu);
    seen.insert(i);
  });
  ASSERT_EQ(seen.size(), 113u - 17u);
  EXPECT_EQ(*seen.begin(), 17u);
  EXPECT_EQ(*seen.rbegin(), 112u);
}

TEST(ThreadPoolTest, ParallelForEmptyAndInvertedRangesAreNoOps) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&calls](size_t) { calls.fetch_add(1); });
  pool.ParallelFor(9, 3, [&calls](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForSmallRangeOnWidePool) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 3, [&calls](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.ParallelFor(0, 64,
                                [&completed](size_t i) {
                                  if (i == 20) {
                                    throw std::runtime_error("task failed");
                                  }
                                  completed.fetch_add(1);
                                }),
               std::runtime_error);
  // Every non-throwing index still ran: a failed chunk does not cancel the
  // others.
  EXPECT_EQ(completed.load(), 63);
  // The pool is still usable afterwards.
  std::atomic<int> after{0};
  pool.ParallelFor(0, 8, [&after](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPoolTest, CurrentWorkerIndexIsDenseInsidePoolAndMinusOneOutside) {
  EXPECT_EQ(ThreadPool::CurrentWorkerIndex(), -1);
  ThreadPool pool(3);
  Mutex mu{"test::indexes"};
  std::set<int> indexes;
  pool.ParallelFor(0, 64, [&](size_t) {
    const int w = ThreadPool::CurrentWorkerIndex();
    MutexLock lock(&mu);
    indexes.insert(w);
  });
  ASSERT_FALSE(indexes.empty());
  EXPECT_GE(*indexes.begin(), 0);
  EXPECT_LT(*indexes.rbegin(), 3);
}

TEST(ThreadPoolTest, DefaultThreadCountReadsEnv) {
  unsetenv("IRHINT_THREADS");
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  setenv("IRHINT_THREADS", "7", 1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 7u);
  setenv("IRHINT_THREADS", "bogus", 1);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  unsetenv("IRHINT_THREADS");
}

TEST(ThreadPoolTest, ZeroRequestedThreadsUsesDefault) {
  setenv("IRHINT_THREADS", "2", 1);
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 2u);
  unsetenv("IRHINT_THREADS");
}

}  // namespace
}  // namespace irhint

// Edge cases across the library: degenerate domains, extreme option
// values, boundary intervals, and tiny corpora.

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/factory.h"
#include "core/naive_scan.h"
#include "data/corpus.h"
#include "data/query_gen.h"
#include "hint/hint.h"
#include "irfirst/tif_sharding.h"

namespace irhint {
namespace {

std::vector<ObjectId> Sorted(std::vector<ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(HintEdgeTest, SinglePointDomain) {
  HintIndex hint;
  HintOptions options;
  options.num_bits = 0;  // one partition total
  const std::vector<IntervalRecord> records{{1, Interval(0, 0)},
                                            {2, Interval(0, 0)}};
  ASSERT_TRUE(hint.Build(records, 0, options).ok());
  std::vector<ObjectId> out;
  hint.RangeQuery(Interval(0, 0), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{1, 2}));
}

TEST(HintEdgeTest, IntervalsAtDomainBoundaries) {
  HintIndex hint;
  HintOptions options;
  options.num_bits = 5;
  const Time domain_end = 999;
  const std::vector<IntervalRecord> records{
      {1, Interval(0, 0)},                      // first point
      {2, Interval(domain_end, domain_end)},    // last point
      {3, Interval(0, domain_end)},             // whole domain
  };
  ASSERT_TRUE(hint.Build(records, domain_end, options).ok());
  std::vector<ObjectId> out;
  hint.RangeQuery(Interval(0, 0), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{1, 3}));
  out.clear();
  hint.RangeQuery(Interval(domain_end, domain_end), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{2, 3}));
  out.clear();
  hint.RangeQuery(Interval(500, 500), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{3}));
}

TEST(HintEdgeTest, MLargerThanDomainBits) {
  // More bits than distinct time points: cells are mostly empty but
  // queries stay exact.
  HintIndex hint;
  HintOptions options;
  options.num_bits = 10;  // 1024 cells over a 10-point domain
  const std::vector<IntervalRecord> records{{1, Interval(2, 7)},
                                            {2, Interval(8, 9)}};
  ASSERT_TRUE(hint.Build(records, 9, options).ok());
  std::vector<ObjectId> out;
  hint.RangeQuery(Interval(7, 8), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{1, 2}));
  out.clear();
  hint.RangeQuery(Interval(0, 1), &out);
  EXPECT_TRUE(out.empty());
}

TEST(HintEdgeTest, RejectsBadOptions) {
  HintIndex hint;
  HintOptions options;
  options.num_bits = 31;
  EXPECT_TRUE(hint.Build({}, 100, options).IsInvalidArgument());
  options.num_bits = -1;
  EXPECT_TRUE(hint.Build({}, 100, options).IsInvalidArgument());
  // Domain too large for 32-bit endpoints.
  options.num_bits = 10;
  EXPECT_TRUE(hint.Build({}, Time{1} << 40, options).IsInvalidArgument());
}

TEST(ShardingEdgeTest, SingleShardCap) {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(1));
  for (int i = 0; i < 50; ++i) {
    corpus.Append(Interval(i, 100 - i), {0});  // nested: 50 ideal shards
  }
  ASSERT_TRUE(corpus.Finalize().ok());
  TifShardingOptions options;
  options.max_shards_per_list = 1;
  TifSharding index(options);
  ASSERT_TRUE(index.Build(corpus).ok());
  EXPECT_EQ(index.NumShards(0), 1u);
  std::vector<ObjectId> out;
  index.Query(Query(Interval(50, 50), {0}), &out);
  EXPECT_EQ(out.size(), 50u);
}

TEST(ShardingEdgeTest, ImpactStrideOne) {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(1));
  for (ObjectId i = 0; i < 200; ++i) {
    corpus.Append(Interval(i * 3, i * 3 + 2), {0});
  }
  ASSERT_TRUE(corpus.Finalize().ok());
  TifShardingOptions options;
  options.impact_stride = 1;  // one impact entry per posting
  TifSharding index(options);
  ASSERT_TRUE(index.Build(corpus).ok());
  std::vector<ObjectId> out;
  index.Query(Query(Interval(300, 305), {0}), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{100, 101}));
}

TEST(CorpusEdgeTest, SingleObjectCorpusWorksEverywhere) {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(2));
  corpus.Append(Interval(10, 20), {0, 1});
  ASSERT_TRUE(corpus.Finalize().ok());
  for (const IndexKind kind : AllIndexKinds()) {
    auto index = CreateIndex(kind);
    ASSERT_TRUE(index->Build(corpus).ok()) << index->Name();
    std::vector<ObjectId> out;
    index->Query(Query(Interval(15, 15), {0, 1}), &out);
    EXPECT_EQ(out, std::vector<ObjectId>{0}) << index->Name();
    index->Query(Query(Interval(21, 30), {0, 1}), &out);
    EXPECT_TRUE(out.empty()) << index->Name();
  }
}

TEST(CorpusEdgeTest, EmptyCorpusBuildsEverywhere) {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(4));
  corpus.DeclareDomain(1000);
  ASSERT_TRUE(corpus.Finalize().ok());
  for (const IndexKind kind : AllIndexKinds()) {
    auto index = CreateIndex(kind);
    ASSERT_TRUE(index->Build(corpus).ok()) << index->Name();
    std::vector<ObjectId> out;
    index->Query(Query(Interval(0, 1000), {0}), &out);
    EXPECT_TRUE(out.empty()) << index->Name();
    // First insert into an empty index works.
    ASSERT_TRUE(index->Insert(Object(0, Interval(5, 9), {1})).ok())
        << index->Name();
    index->Query(Query(Interval(0, 1000), {1}), &out);
    EXPECT_EQ(out, std::vector<ObjectId>{0}) << index->Name();
  }
}

TEST(WorkloadEdgeTest, FullDomainExtent) {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(3));
  Rng rng(3);
  for (ObjectId i = 0; i < 200; ++i) {
    const Time st = rng.Uniform(1000);
    corpus.Append(Interval(st, st + rng.Uniform(100)),
                  {static_cast<ElementId>(i % 3)});
  }
  ASSERT_TRUE(corpus.Finalize().ok());
  WorkloadGenerator generator(corpus, 9);
  const auto queries = generator.ExtentWorkload(100.0, 1, 20);
  ASSERT_EQ(queries.size(), 20u);
  for (const Query& q : queries) {
    EXPECT_EQ(q.interval.st, 0u);
    EXPECT_EQ(q.interval.end, corpus.domain_end());
  }
}

TEST(NaiveEdgeTest, QueryWithDuplicateQueryElements) {
  // q.d with repeats must behave as the set (containment semantics).
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(2));
  corpus.Append(Interval(0, 10), {0});
  corpus.Append(Interval(0, 10), {0, 1});
  ASSERT_TRUE(corpus.Finalize().ok());
  for (const IndexKind kind : AllIndexKinds()) {
    auto index = CreateIndex(kind);
    ASSERT_TRUE(index->Build(corpus).ok());
    std::vector<ObjectId> out;
    index->Query(Query(Interval(0, 10), {0, 0, 1}), &out);
    EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{1})) << index->Name();
  }
}

}  // namespace
}  // namespace irhint

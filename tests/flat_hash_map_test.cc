#include "common/flat_hash_map.h"

#include <string>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace irhint {
namespace {

TEST(FlatHashMapTest, EmptyMap) {
  FlatHashMap<int, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(5), nullptr);
  EXPECT_FALSE(map.contains(5));
  EXPECT_FALSE(map.erase(5));
}

TEST(FlatHashMapTest, InsertAndFind) {
  FlatHashMap<int, std::string> map;
  EXPECT_TRUE(map.insert_or_assign(1, "one"));
  EXPECT_TRUE(map.insert_or_assign(2, "two"));
  EXPECT_FALSE(map.insert_or_assign(1, "uno"));  // overwrite
  ASSERT_NE(map.find(1), nullptr);
  EXPECT_EQ(*map.find(1), "uno");
  EXPECT_EQ(*map.find(2), "two");
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatHashMapTest, SubscriptCreatesDefault) {
  FlatHashMap<int, int> map;
  map[7] += 3;
  map[7] += 4;
  EXPECT_EQ(map[7], 7);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, EraseWithBackwardShift) {
  FlatHashMap<int, int> map;
  for (int i = 0; i < 100; ++i) map.insert_or_assign(i, i * 10);
  for (int i = 0; i < 100; i += 2) EXPECT_TRUE(map.erase(i));
  EXPECT_EQ(map.size(), 50u);
  for (int i = 0; i < 100; ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(map.find(i), nullptr) << i;
    } else {
      ASSERT_NE(map.find(i), nullptr) << i;
      EXPECT_EQ(*map.find(i), i * 10);
    }
  }
}

TEST(FlatHashMapTest, GrowsThroughRehash) {
  FlatHashMap<uint64_t, uint64_t> map;
  for (uint64_t i = 0; i < 10000; ++i) map.insert_or_assign(i * 7919, i);
  EXPECT_EQ(map.size(), 10000u);
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_NE(map.find(i * 7919), nullptr) << i;
    EXPECT_EQ(*map.find(i * 7919), i);
  }
}

TEST(FlatHashMapTest, MatchesUnorderedMapUnderRandomOps) {
  FlatHashMap<uint32_t, uint32_t> mine;
  std::unordered_map<uint32_t, uint32_t> reference;
  Rng rng(31);
  for (int op = 0; op < 50000; ++op) {
    const uint32_t key = static_cast<uint32_t>(rng.Uniform(2000));
    switch (rng.Uniform(3)) {
      case 0: {
        const uint32_t value = static_cast<uint32_t>(rng.Next());
        mine.insert_or_assign(key, value);
        reference[key] = value;
        break;
      }
      case 1: {
        EXPECT_EQ(mine.erase(key), reference.erase(key) > 0);
        break;
      }
      default: {
        const uint32_t* found = mine.find(key);
        auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(*found, it->second);
        }
      }
    }
    EXPECT_EQ(mine.size(), reference.size());
  }
}

TEST(FlatHashMapTest, ForEachVisitsEverything) {
  FlatHashMap<int, int> map;
  for (int i = 0; i < 500; ++i) map.insert_or_assign(i, i);
  int sum = 0;
  map.ForEach([&sum](const int& k, const int& v) {
    EXPECT_EQ(k, v);
    sum += v;
  });
  EXPECT_EQ(sum, 499 * 500 / 2);
}

TEST(FlatHashMapTest, ReserveAvoidsInvalidation) {
  FlatHashMap<int, int> map;
  map.reserve(1000);
  map.insert_or_assign(1, 1);
  const int* p = map.find(1);
  for (int i = 2; i < 900; ++i) map.insert_or_assign(i, i);
  EXPECT_EQ(map.find(1), p);  // no rehash within reserved capacity
}

TEST(FlatHashSetTest, BasicOps) {
  FlatHashSet<int> set;
  EXPECT_TRUE(set.insert(3));
  EXPECT_FALSE(set.insert(3));
  EXPECT_TRUE(set.contains(3));
  EXPECT_FALSE(set.contains(4));
  EXPECT_TRUE(set.erase(3));
  EXPECT_FALSE(set.contains(3));
  EXPECT_TRUE(set.empty());
}

TEST(FlatHashSetTest, MatchesUnorderedSet) {
  FlatHashSet<uint32_t> mine;
  std::unordered_set<uint32_t> reference;
  Rng rng(37);
  for (int op = 0; op < 30000; ++op) {
    const uint32_t key = static_cast<uint32_t>(rng.Uniform(1000));
    if (rng.NextBool(0.6)) {
      EXPECT_EQ(mine.insert(key), reference.insert(key).second);
    } else {
      EXPECT_EQ(mine.erase(key), reference.erase(key) > 0);
    }
  }
  EXPECT_EQ(mine.size(), reference.size());
  reference.clear();
  mine.ForEach([&reference](const uint32_t& k) { reference.insert(k); });
  EXPECT_EQ(mine.size(), reference.size());
}

TEST(FlatHashMapTest, StringKeys) {
  FlatHashMap<std::string, int> map;
  map.insert_or_assign("alpha", 1);
  map.insert_or_assign("beta", 2);
  ASSERT_NE(map.find("alpha"), nullptr);
  EXPECT_EQ(*map.find("alpha"), 1);
  EXPECT_EQ(map.find("gamma"), nullptr);
}

}  // namespace
}  // namespace irhint

#include "data/corpus.h"

#include <gtest/gtest.h>

#include "data/object.h"

namespace irhint {
namespace {

TEST(IntervalTest, OverlapPredicate) {
  EXPECT_TRUE(Overlaps(Interval(1, 5), Interval(5, 9)));   // touch at point
  EXPECT_TRUE(Overlaps(Interval(5, 9), Interval(1, 5)));
  EXPECT_TRUE(Overlaps(Interval(1, 9), Interval(3, 4)));   // containment
  EXPECT_TRUE(Overlaps(Interval(3, 4), Interval(1, 9)));
  EXPECT_TRUE(Overlaps(Interval(2, 2), Interval(2, 2)));   // points
  EXPECT_FALSE(Overlaps(Interval(1, 4), Interval(5, 9)));  // adjacent
  EXPECT_FALSE(Overlaps(Interval(5, 9), Interval(1, 4)));
}

TEST(IntervalTest, LengthAndContains) {
  const Interval i(3, 7);
  EXPECT_EQ(i.Length(), 5u);
  EXPECT_TRUE(Contains(i, 3));
  EXPECT_TRUE(Contains(i, 7));
  EXPECT_FALSE(Contains(i, 2));
  EXPECT_FALSE(Contains(i, 8));
  EXPECT_EQ(Interval(4, 4).Length(), 1u);
}

TEST(ObjectTest, ContainsElementBinarySearch) {
  Object o(0, Interval(0, 1), {2, 5, 9, 12});
  EXPECT_TRUE(o.ContainsElement(2));
  EXPECT_TRUE(o.ContainsElement(12));
  EXPECT_FALSE(o.ContainsElement(0));
  EXPECT_FALSE(o.ContainsElement(7));
  EXPECT_FALSE(o.ContainsElement(13));
}

TEST(ObjectTest, ContainsAllMergeSemantics) {
  Object o(0, Interval(0, 1), {2, 5, 9, 12});
  EXPECT_TRUE(o.ContainsAll({}));
  EXPECT_TRUE(o.ContainsAll({5}));
  EXPECT_TRUE(o.ContainsAll({2, 9, 12}));
  EXPECT_FALSE(o.ContainsAll({2, 3}));
  EXPECT_FALSE(o.ContainsAll({13}));
}

TEST(CorpusTest, AddValidatesIdsAndIntervals) {
  Corpus corpus;
  EXPECT_TRUE(corpus.Add(Object(0, Interval(1, 5), {1})).ok());
  // Non-dense id rejected.
  EXPECT_TRUE(corpus.Add(Object(2, Interval(1, 5), {1})).IsInvalidArgument());
  // Inverted interval rejected.
  EXPECT_TRUE(corpus.Add(Object(1, Interval(5, 1), {1})).IsInvalidArgument());
  EXPECT_EQ(corpus.size(), 1u);
}

TEST(CorpusTest, FinalizeSortsAndDeduplicatesDescriptions) {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(10));
  corpus.Append(Interval(0, 5), {7, 2, 7, 2, 4});
  ASSERT_TRUE(corpus.Finalize().ok());
  EXPECT_EQ(corpus.object(0).elements, (std::vector<ElementId>{2, 4, 7}));
  // Frequencies count each object once per element.
  EXPECT_EQ(corpus.dictionary().Frequency(7), 1u);
  EXPECT_EQ(corpus.dictionary().Frequency(3), 0u);
}

TEST(CorpusTest, DomainTracksMaxEnd) {
  Corpus corpus;
  corpus.Append(Interval(0, 50), {});
  EXPECT_EQ(corpus.domain_end(), 50u);
  corpus.DeclareDomain(100);
  EXPECT_EQ(corpus.domain_end(), 100u);
  corpus.Append(Interval(10, 200), {});
  EXPECT_EQ(corpus.domain_end(), 200u);
  corpus.DeclareDomain(150);  // smaller declaration never shrinks
  EXPECT_EQ(corpus.domain_end(), 200u);
}

TEST(CorpusTest, StatsMatchHandComputedValues) {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(5));
  corpus.Append(Interval(0, 9), {0, 1});    // duration 10
  corpus.Append(Interval(5, 24), {1});      // duration 20
  corpus.DeclareDomain(99);
  ASSERT_TRUE(corpus.Finalize().ok());
  const CorpusStats stats = corpus.Stats();
  EXPECT_EQ(stats.cardinality, 2u);
  EXPECT_EQ(stats.min_duration, 10u);
  EXPECT_EQ(stats.max_duration, 20u);
  EXPECT_DOUBLE_EQ(stats.avg_duration, 15.0);
  EXPECT_DOUBLE_EQ(stats.avg_duration_pct, 15.0);  // of 100 points
  EXPECT_EQ(stats.min_description_size, 1u);
  EXPECT_EQ(stats.max_description_size, 2u);
  EXPECT_EQ(stats.max_element_frequency, 2u);  // element 1
  EXPECT_EQ(stats.min_element_frequency, 1u);  // element 0
}

TEST(CorpusTest, PrefixRecomputesFrequencies) {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(3));
  corpus.Append(Interval(0, 1), {0});
  corpus.Append(Interval(0, 1), {0, 1});
  corpus.Append(Interval(0, 1), {1, 2});
  ASSERT_TRUE(corpus.Finalize().ok());

  const Corpus prefix = corpus.Prefix(2);
  EXPECT_EQ(prefix.size(), 2u);
  EXPECT_EQ(prefix.dictionary().Frequency(0), 2u);
  EXPECT_EQ(prefix.dictionary().Frequency(1), 1u);
  EXPECT_EQ(prefix.dictionary().Frequency(2), 0u);
  EXPECT_EQ(prefix.domain_end(), corpus.domain_end());
}

TEST(DictionaryTest, TextualInterningRoundTrips) {
  Dictionary dict;
  const ElementId a = dict.AddTerm("alpha");
  const ElementId b = dict.AddTerm("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.AddTerm("alpha"), a);  // idempotent
  EXPECT_EQ(dict.LookupTerm("beta"), b);
  EXPECT_EQ(dict.LookupTerm("gamma"), Dictionary::kInvalidElement);
  EXPECT_EQ(dict.Term(a), "alpha");
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, SortByFrequencyIsStableByIdOnTies) {
  Dictionary dict = Dictionary::MakeAnonymous(4);
  dict.SetFrequencies({5, 1, 5, 0});
  std::vector<ElementId> elements{0, 1, 2, 3};
  dict.SortByFrequency(&elements);
  EXPECT_EQ(elements, (std::vector<ElementId>{3, 1, 0, 2}));
}

TEST(DictionaryTest, BumpFrequencyGrowsVector) {
  Dictionary dict = Dictionary::MakeAnonymous(2);
  dict.BumpFrequency(5, 3);
  EXPECT_EQ(dict.Frequency(5), 3u);
  EXPECT_EQ(dict.Frequency(1), 0u);
}

}  // namespace
}  // namespace irhint

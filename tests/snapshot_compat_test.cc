// Backward-compatibility test over the committed golden fixtures in
// tests/golden/ (regenerated only on deliberate format-version bumps via
// tools/make_golden_snapshot). Guards against accidental encoding changes:
// a snapshot written by an older build must keep loading and answering
// queries identically to a freshly built index.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "data/query_gen.h"
#include "data/serialize.h"
#include "storage/index_io.h"
#include "storage/snapshot_format.h"
#include "storage/snapshot_reader.h"

namespace irhint {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(IRHINT_TEST_DATA_DIR) + "/" + name;
}

class SnapshotCompatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StatusOr<Corpus> corpus = LoadCorpus(GoldenPath("corpus_v1.snap"));
    ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
    corpus_ = std::move(corpus.value());
  }
  Corpus corpus_;
};

TEST_F(SnapshotCompatTest, GoldenCorpusLoads) {
  EXPECT_EQ(corpus_.size(), 300u);
  EXPECT_GT(corpus_.dictionary().size(), 0u);
}

TEST_F(SnapshotCompatTest, GoldenIndexSnapshotsAnswerLikeFreshBuilds) {
  WorkloadGenerator generator(corpus_, 5);
  const std::vector<Query> queries = generator.ExtentWorkload(0.1, 2, 100);

  for (const char* name : {"irhint_perf_v1.irh", "tif_v1.irh"}) {
    SCOPED_TRACE(name);
    StatusOr<LoadedIndex> loaded = LoadIndexSnapshot(GoldenPath(name));
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    SnapshotReader reader;
    ASSERT_TRUE(reader.Open(GoldenPath(name)).ok());
    EXPECT_LE(reader.version(), kFormatVersion);

    std::unique_ptr<TemporalIrIndex> fresh = CreateIndex(loaded->kind);
    ASSERT_TRUE(fresh->Build(corpus_).ok());
    std::vector<ObjectId> got, want;
    for (size_t i = 0; i < queries.size(); ++i) {
      loaded->index->Query(queries[i], &got);
      fresh->Query(queries[i], &want);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      EXPECT_EQ(got, want) << "query " << i;
    }
  }
}

}  // namespace
}  // namespace irhint

// Tests for the fsck layer (src/core/fsck.h): CheckSnapshotFile and
// CheckWalDirectory must pass on healthy state produced through the public
// APIs and return a non-OK Status — never crash — for damaged files,
// damaged sealed segments, and checkpoint watermarks that disagree with
// the log.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/durable_index.h"
#include "core/factory.h"
#include "core/fsck.h"
#include "data/serialize.h"
#include "data/synthetic.h"
#include "storage/index_io.h"
#include "wal/wal_env.h"
#include "wal/wal_format.h"
#include "wal/wal_writer.h"

namespace irhint {
namespace {

Corpus TestCorpus() {
  SyntheticParams params;
  params.cardinality = 400;
  params.domain = 50000;
  params.sigma = 9000;
  params.dictionary_size = 80;
  params.description_size = 4;
  params.seed = 23;
  return GenerateSynthetic(params);
}

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// WAL directories accumulate state across test-binary runs; start clean.
std::string FreshDir(const std::string& name) {
  const std::string dir = TempPath(name);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

void FlipByte(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

TEST(FsckSnapshotTest, HealthyIndexSnapshotPasses) {
  const Corpus corpus = TestCorpus();
  std::unique_ptr<TemporalIrIndex> index =
      CreateIndex(IndexKind::kIrHintPerf);
  ASSERT_TRUE(index->Build(corpus).ok());
  const std::string path = TempPath("fsck_healthy.irh");
  ASSERT_TRUE(SaveIndex(*index, path).ok());

  FsckReport report;
  EXPECT_TRUE(CheckSnapshotFile(path, CheckLevel::kQuick).ok());
  EXPECT_TRUE(CheckSnapshotFile(path, CheckLevel::kDeep, {}, &report).ok());
  EXPECT_GT(report.sections_verified, 0u);
  EXPECT_EQ(report.indexes_deep_checked, 1u);
}

TEST(FsckSnapshotTest, HealthyCorpusSnapshotPasses) {
  const Corpus corpus = TestCorpus();
  const std::string path = TempPath("fsck_corpus.snap");
  ASSERT_TRUE(SaveCorpus(corpus, path).ok());
  EXPECT_TRUE(CheckSnapshotFile(path, CheckLevel::kDeep).ok());
}

TEST(FsckSnapshotTest, PayloadDamageFailsQuickPass) {
  const Corpus corpus = TestCorpus();
  std::unique_ptr<TemporalIrIndex> index = CreateIndex(IndexKind::kTif);
  ASSERT_TRUE(index->Build(corpus).ok());
  const std::string path = TempPath("fsck_damaged.irh");
  ASSERT_TRUE(SaveIndex(*index, path).ok());
  FlipByte(path, 300);  // inside the first section payload
  EXPECT_FALSE(CheckSnapshotFile(path, CheckLevel::kQuick).ok());
  EXPECT_FALSE(CheckSnapshotFile(path, CheckLevel::kDeep).ok());
}

TEST(FsckSnapshotTest, TruncationFailsCleanly) {
  const Corpus corpus = TestCorpus();
  const std::string path = TempPath("fsck_trunc.snap");
  ASSERT_TRUE(SaveCorpus(corpus, path).ok());
  auto* env = DefaultWalEnv();
  auto bytes = env->ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  const std::string cut = TempPath("fsck_trunc_cut.snap");
  std::ofstream out(cut, std::ios::binary);
  out.write(bytes->data(), static_cast<std::streamoff>(bytes->size() / 2));
  out.close();
  EXPECT_FALSE(CheckSnapshotFile(cut, CheckLevel::kQuick).ok());
}

TEST(FsckSnapshotTest, MissingFileIsErrorNotCrash) {
  EXPECT_FALSE(
      CheckSnapshotFile(TempPath("fsck_nonexistent"), CheckLevel::kDeep).ok());
}

TEST(FsckWalTest, HealthyDirectoryPassesBothLevels) {
  const Corpus corpus = TestCorpus();
  const std::string dir = FreshDir("fsck_wal_healthy");
  {
    auto index = DurableIndex::Open(dir);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    for (size_t id = 0; id < 150; ++id) {
      ASSERT_TRUE(
          (*index)->Insert(corpus.object(static_cast<ObjectId>(id))).ok());
    }
    ASSERT_TRUE((*index)->TriggerCheckpoint().ok());
    ASSERT_TRUE((*index)->WaitForCheckpoint().ok());
    for (size_t id = 150; id < 200; ++id) {
      ASSERT_TRUE(
          (*index)->Insert(corpus.object(static_cast<ObjectId>(id))).ok());
    }
  }
  FsckReport report;
  EXPECT_TRUE(CheckWalDirectory(dir, CheckLevel::kQuick).ok());
  const Status deep = CheckWalDirectory(dir, CheckLevel::kDeep, nullptr,
                                        &report);
  EXPECT_TRUE(deep.ok()) << deep.ToString();
  EXPECT_GT(report.segments_scanned, 0u);
  EXPECT_GT(report.records_decoded, 0u);
  EXPECT_GT(report.checkpoints_checked, 0u);
  // Checkpoint snapshot + recovered live index both deep-audited.
  EXPECT_GE(report.indexes_deep_checked, 2u);
}

TEST(FsckWalTest, DamagedSealedSegmentDetected) {
  // Checkpointing garbage-collects sealed segments, so a retained sealed
  // segment means a crash landed between the rotate and the GC. Author
  // that state directly with the writer: segment 1 sealed by its rotate
  // handoff, segment 2 live, no checkpoint yet.
  const Corpus corpus = TestCorpus();
  const std::string dir = FreshDir("fsck_wal_sealed_damage");
  auto* env = DefaultWalEnv();
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  {
    auto writer = WalWriter::Open(env, dir, /*seq=*/1, /*next_lsn=*/1,
                                  WalWriterOptions{});
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (size_t id = 0; id < 20; ++id) {
      ASSERT_TRUE(
          (*writer)->AppendInsert(corpus.object(static_cast<ObjectId>(id)))
              .ok());
    }
    ASSERT_TRUE((*writer)->Rotate().ok());
    ASSERT_TRUE(
        (*writer)->AppendInsert(corpus.object(static_cast<ObjectId>(20))).ok());
  }
  ASSERT_TRUE(CheckWalDirectory(dir, CheckLevel::kDeep).ok());
  // A flipped byte inside a record of the sealed segment is mid-log
  // corruption, not a torn tail.
  FlipByte(WalPathJoin(dir, WalSegmentFileName(1)), kWalSegmentHeaderBytes + 30);
  EXPECT_FALSE(CheckWalDirectory(dir, CheckLevel::kDeep).ok());
}

TEST(FsckWalTest, TornLiveTailTolerated) {
  const Corpus corpus = TestCorpus();
  const std::string dir = FreshDir("fsck_wal_torn_tail");
  {
    auto index = DurableIndex::Open(dir);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    for (size_t id = 0; id < 60; ++id) {
      ASSERT_TRUE(
          (*index)->Insert(corpus.object(static_cast<ObjectId>(id))).ok());
    }
  }
  // Tear the live segment mid-record (cut the final 10 bytes).
  auto* env = DefaultWalEnv();
  const std::string seg = WalPathJoin(dir, WalSegmentFileName(1));
  auto bytes = env->ReadFileToString(seg);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(env->TruncateFile(seg, bytes->size() - 10).ok());

  FsckReport report;
  const Status status =
      CheckWalDirectory(dir, CheckLevel::kDeep, nullptr, &report);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GT(report.torn_tail_bytes, 0u);
}

TEST(FsckWalTest, CheckpointWatermarkBelowLoggedIdsDetected) {
  const Corpus corpus = TestCorpus();
  const std::string dir = FreshDir("fsck_wal_bad_watermark");
  uint64_t last_lsn = 0;
  {
    auto index = DurableIndex::Open(dir);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    for (size_t id = 0; id < 80; ++id) {
      ASSERT_TRUE(
          (*index)->Insert(corpus.object(static_cast<ObjectId>(id))).ok());
    }
    last_lsn = (*index)->next_lsn() - 1;
  }
  ASSERT_TRUE(CheckWalDirectory(dir, CheckLevel::kDeep).ok());

  // Plant a checkpoint claiming to cover the log but with an id watermark
  // of zero: a re-ingest after recovery from it would reuse logged ids.
  std::unique_ptr<TemporalIrIndex> stale =
      CreateIndex(IndexKind::kIrHintPerf);
  ASSERT_TRUE(stale->Build(corpus.Prefix(80)).ok());
  ASSERT_TRUE(SaveIndexCheckpoint(*stale,
                                  WalPathJoin(dir, CheckpointFileName(last_lsn)),
                                  /*wal_lsn=*/last_lsn,
                                  /*next_object_id=*/0)
                  .ok());
  const Status status = CheckWalDirectory(dir, CheckLevel::kDeep);
  EXPECT_FALSE(status.ok()) << "stale id watermark not detected";
}

TEST(FsckWalTest, CheckpointLsnFileNameMismatchDetected) {
  const Corpus corpus = TestCorpus();
  const std::string dir = FreshDir("fsck_wal_lsn_mismatch");
  uint64_t last_lsn = 0;
  {
    auto index = DurableIndex::Open(dir);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    for (size_t id = 0; id < 40; ++id) {
      ASSERT_TRUE(
          (*index)->Insert(corpus.object(static_cast<ObjectId>(id))).ok());
    }
    last_lsn = (*index)->next_lsn() - 1;
  }
  // The file name says one LSN, the wal_state section another.
  std::unique_ptr<TemporalIrIndex> stale =
      CreateIndex(IndexKind::kIrHintPerf);
  ASSERT_TRUE(stale->Build(corpus.Prefix(40)).ok());
  ASSERT_TRUE(SaveIndexCheckpoint(*stale,
                                  WalPathJoin(dir, CheckpointFileName(last_lsn)),
                                  /*wal_lsn=*/last_lsn - 1,
                                  /*next_object_id=*/1000)
                  .ok());
  const Status status = CheckWalDirectory(dir, CheckLevel::kDeep);
  EXPECT_FALSE(status.ok()) << "file-name/LSN disagreement not detected";
}

TEST(FsckWalTest, ReopenedDirectoryPassesDeepFsck) {
  // Regression: closing a directory and reopening it used to leave the
  // previous live segment sealed-by-position (a newer segment exists) but
  // without its rotate handoff, so deep fsck flagged a healthy directory.
  // DurableIndex::Open now seals the old segment on reopen.
  const Corpus corpus = TestCorpus();
  const std::string dir = FreshDir("fsck_wal_reopen");
  {
    auto index = DurableIndex::Open(dir);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    for (size_t id = 0; id < 60; ++id) {
      ASSERT_TRUE(
          (*index)->Insert(corpus.object(static_cast<ObjectId>(id))).ok());
    }
  }
  {
    auto index = DurableIndex::Open(dir);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    for (size_t id = 60; id < 100; ++id) {
      ASSERT_TRUE(
          (*index)->Insert(corpus.object(static_cast<ObjectId>(id))).ok());
    }
  }
  const Status deep = CheckWalDirectory(dir, CheckLevel::kDeep);
  EXPECT_TRUE(deep.ok()) << deep.ToString();
}

TEST(FsckWalTest, RepeatedReopensStayFsckCleanAndRecoverEverything) {
  // Each reopen seals one more segment with a rotate that consumes an LSN;
  // the chain and the LSN density must both survive arbitrarily many
  // close/open cycles, and replay must still see every insert.
  const Corpus corpus = TestCorpus();
  const std::string dir = FreshDir("fsck_wal_reopen_many");
  size_t next = 0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    auto index = DurableIndex::Open(dir);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    for (size_t end = next + 30; next < end; ++next) {
      ASSERT_TRUE(
          (*index)->Insert(corpus.object(static_cast<ObjectId>(next))).ok());
    }
    const Status deep = CheckWalDirectory(dir, CheckLevel::kDeep);
    EXPECT_TRUE(deep.ok()) << "cycle " << cycle << ": " << deep.ToString();
  }
  auto index = DurableIndex::Open(dir);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ((*index)->recovery_info().records_replayed, next);
  EXPECT_EQ((*index)->next_object_id(), next);
}

TEST(FsckWalTest, ReopenWithoutWritesRecyclesTheEmptySegment) {
  // A no-op open/close leaves a record-less live segment. Recovery deletes
  // it and reuses its sequence number, so the reopened directory is
  // indistinguishable from a fresh one: Build() (which requires LSN 1)
  // still works and fsck stays clean.
  const Corpus corpus = TestCorpus();
  const std::string dir = FreshDir("fsck_wal_reopen_empty");
  {
    auto index = DurableIndex::Open(dir);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
  }
  {
    auto index = DurableIndex::Open(dir);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    ASSERT_TRUE((*index)->Build(corpus.Prefix(50)).ok());
  }
  const Status deep = CheckWalDirectory(dir, CheckLevel::kDeep);
  EXPECT_TRUE(deep.ok()) << deep.ToString();
}

TEST(FsckWalTest, EmptyDirectoryPasses) {
  const std::string dir = TempPath("fsck_wal_empty");
  ASSERT_TRUE(DefaultWalEnv()->CreateDirIfMissing(dir).ok());
  EXPECT_TRUE(CheckWalDirectory(dir, CheckLevel::kDeep).ok());
}

}  // namespace
}  // namespace irhint

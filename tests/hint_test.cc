#include "hint/hint.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "hint/cost_model.h"

namespace irhint {
namespace {

std::vector<ObjectId> BruteForce(const std::vector<IntervalRecord>& records,
                                 const Interval& q) {
  std::vector<ObjectId> out;
  for (const IntervalRecord& rec : records) {
    if (Overlaps(rec.interval, q)) out.push_back(rec.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<IntervalRecord> RandomRecords(size_t n, Time domain_end,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<IntervalRecord> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Time st = rng.Uniform(domain_end + 1);
    // Mix of short and long intervals.
    const Time max_len = rng.NextBool(0.2) ? domain_end / 2 + 1 : 20;
    const Time end = std::min<Time>(domain_end, st + rng.Uniform(max_len));
    records.push_back(IntervalRecord{static_cast<ObjectId>(i),
                                     Interval(st, end)});
  }
  return records;
}

std::vector<ObjectId> Sorted(std::vector<ObjectId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

struct HintParam {
  int m;
  HintSortMode sort;
  bool storage_opt;
};

class HintRandomizedTest : public ::testing::TestWithParam<HintParam> {};

TEST_P(HintRandomizedTest, MatchesBruteForce) {
  const HintParam param = GetParam();
  const Time domain_end = 997;  // non-power-of-two domain
  const auto records = RandomRecords(400, domain_end, 101 + param.m);

  HintOptions options;
  options.num_bits = param.m;
  options.sort_mode = param.sort;
  options.storage_optimization = param.storage_opt;
  HintIndex hint;
  ASSERT_TRUE(hint.Build(records, domain_end, options).ok());

  Rng rng(55);
  std::vector<ObjectId> out;
  for (int i = 0; i < 500; ++i) {
    const Time st = rng.Uniform(domain_end + 1);
    const Time end = std::min<Time>(domain_end, st + rng.Uniform(200));
    const Interval q(st, end);
    out.clear();
    hint.RangeQuery(q, &out);
    EXPECT_EQ(Sorted(out), BruteForce(records, q)) << "q=[" << st << "," << end
                                                   << "] m=" << param.m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HintRandomizedTest,
    ::testing::Values(HintParam{0, HintSortMode::kBeneficial, false},
                      HintParam{1, HintSortMode::kBeneficial, false},
                      HintParam{3, HintSortMode::kBeneficial, false},
                      HintParam{5, HintSortMode::kBeneficial, false},
                      HintParam{8, HintSortMode::kBeneficial, false},
                      HintParam{10, HintSortMode::kBeneficial, false},
                      HintParam{5, HintSortMode::kNone, false},
                      HintParam{5, HintSortMode::kById, false},
                      HintParam{5, HintSortMode::kBeneficial, true},
                      HintParam{8, HintSortMode::kById, true}));

TEST(HintTest, EmptyIndex) {
  HintIndex hint;
  ASSERT_TRUE(hint.Build({}, 100, HintOptions{}).ok());
  std::vector<ObjectId> out;
  hint.RangeQuery(Interval(0, 100), &out);
  EXPECT_TRUE(out.empty());
}

TEST(HintTest, QueryBeyondDomainIsEmpty) {
  HintIndex hint;
  const std::vector<IntervalRecord> records{{1, Interval(10, 20)}};
  ASSERT_TRUE(hint.Build(records, 100, HintOptions{}).ok());
  std::vector<ObjectId> out;
  hint.RangeQuery(Interval(101, 200), &out);
  EXPECT_TRUE(out.empty());
  // Query overlapping the domain end still works.
  hint.RangeQuery(Interval(15, 400), &out);
  EXPECT_EQ(out, std::vector<ObjectId>{1});
}

TEST(HintTest, StabbingQueries) {
  const Time domain_end = 499;
  const auto records = RandomRecords(200, domain_end, 77);
  HintIndex hint;
  HintOptions options;
  options.num_bits = 6;
  ASSERT_TRUE(hint.Build(records, domain_end, options).ok());
  std::vector<ObjectId> out;
  for (Time t = 0; t <= domain_end; t += 7) {
    out.clear();
    hint.RangeQuery(Interval(t, t), &out);
    EXPECT_EQ(Sorted(out), BruteForce(records, Interval(t, t))) << t;
  }
}

TEST(HintTest, InsertMatchesBulkBuild) {
  const Time domain_end = 800;
  const auto records = RandomRecords(300, domain_end, 88);

  HintOptions options;
  options.num_bits = 6;
  HintIndex bulk, incremental;
  ASSERT_TRUE(bulk.Build(records, domain_end, options).ok());
  ASSERT_TRUE(incremental.Build({}, domain_end, options).ok());
  for (const IntervalRecord& rec : records) {
    ASSERT_TRUE(incremental.Insert(rec.id, rec.interval).ok());
  }

  Rng rng(99);
  std::vector<ObjectId> a, b;
  for (int i = 0; i < 200; ++i) {
    const Time st = rng.Uniform(domain_end + 1);
    const Time end = std::min<Time>(domain_end, st + rng.Uniform(100));
    a.clear();
    b.clear();
    bulk.RangeQuery(Interval(st, end), &a);
    incremental.RangeQuery(Interval(st, end), &b);
    EXPECT_EQ(Sorted(a), Sorted(b));
  }
}

TEST(HintTest, InsertBeyondDomainGoesToOverflow) {
  HintIndex hint;
  ASSERT_TRUE(hint.Build({}, 100, HintOptions{}).ok());
  EXPECT_TRUE(hint.Insert(1, Interval(50, 150)).ok());
  EXPECT_EQ(hint.NumOverflow(), 1u);
  EXPECT_TRUE(hint.Insert(1, Interval(80, 20)).IsInvalidArgument());
}

TEST(HintTest, EraseTombstonesAllReplicas) {
  const Time domain_end = 255;
  HintOptions options;
  options.num_bits = 4;
  HintIndex hint;
  // A long interval with many replicas plus a short one.
  std::vector<IntervalRecord> records{{1, Interval(10, 200)},
                                      {2, Interval(50, 60)}};
  ASSERT_TRUE(hint.Build(records, domain_end, options).ok());

  std::vector<ObjectId> out;
  hint.RangeQuery(Interval(0, 255), &out);
  EXPECT_EQ(Sorted(out), (std::vector<ObjectId>{1, 2}));

  ASSERT_TRUE(hint.Erase(1, Interval(10, 200)).ok());
  for (Time t = 0; t <= 255; t += 5) {
    out.clear();
    hint.RangeQuery(Interval(t, t), &out);
    for (ObjectId id : out) EXPECT_NE(id, 1u) << "stab " << t;
  }
  // Erasing again reports NotFound.
  EXPECT_TRUE(hint.Erase(1, Interval(10, 200)).IsNotFound());
}

TEST(HintTest, EraseThenQueryMatchesBruteForce) {
  const Time domain_end = 600;
  auto records = RandomRecords(250, domain_end, 111);
  HintOptions options;
  options.num_bits = 6;
  HintIndex hint;
  ASSERT_TRUE(hint.Build(records, domain_end, options).ok());

  // Erase every third record.
  std::vector<IntervalRecord> remaining;
  for (size_t i = 0; i < records.size(); ++i) {
    if (i % 3 == 0) {
      ASSERT_TRUE(hint.Erase(records[i].id, records[i].interval).ok());
    } else {
      remaining.push_back(records[i]);
    }
  }
  Rng rng(13);
  std::vector<ObjectId> out;
  for (int i = 0; i < 200; ++i) {
    const Time st = rng.Uniform(domain_end + 1);
    const Time end = std::min<Time>(domain_end, st + rng.Uniform(150));
    out.clear();
    hint.RangeQuery(Interval(st, end), &out);
    EXPECT_EQ(Sorted(out), BruteForce(remaining, Interval(st, end)));
  }
  EXPECT_GT(hint.NumTombstones(), 0u);
}

TEST(HintTest, RangeQueryFilteredKeepsOnlyCandidates) {
  const Time domain_end = 500;
  const auto records = RandomRecords(200, domain_end, 131);
  HintOptions options;
  options.num_bits = 5;
  HintIndex hint;
  ASSERT_TRUE(hint.Build(records, domain_end, options).ok());

  const std::vector<ObjectId> candidates{3, 50, 77, 120, 199};
  Rng rng(7);
  std::vector<ObjectId> filtered;
  for (int i = 0; i < 100; ++i) {
    const Time st = rng.Uniform(domain_end + 1);
    const Time end = std::min<Time>(domain_end, st + rng.Uniform(200));
    filtered.clear();
    hint.RangeQueryFiltered(Interval(st, end), candidates, &filtered);
    std::vector<ObjectId> expected;
    for (ObjectId id : BruteForce(records, Interval(st, end))) {
      if (std::binary_search(candidates.begin(), candidates.end(), id)) {
        expected.push_back(id);
      }
    }
    EXPECT_EQ(Sorted(filtered), expected);
  }
}

TEST(HintTest, IntersectRelevantEqualsFilteredResults) {
  const Time domain_end = 500;
  const auto records = RandomRecords(300, domain_end, 151);
  HintOptions options;
  options.num_bits = 5;
  options.sort_mode = HintSortMode::kById;
  HintIndex hint;
  ASSERT_TRUE(hint.Build(records, domain_end, options).ok());

  Rng rng(17);
  std::vector<ObjectId> out;
  for (int i = 0; i < 100; ++i) {
    const Time st = rng.Uniform(domain_end + 1);
    const Time end = std::min<Time>(domain_end, st + rng.Uniform(200));
    const Interval q(st, end);
    // Candidates: a random subset of ids that overlap q (plus noise ids
    // that do not overlap — those must never be reported because they are
    // never stored in a relevant division... they are, however, not
    // temporally qualifying, so Algorithm 4's contract excludes them).
    std::vector<ObjectId> candidates;
    for (ObjectId id : BruteForce(records, q)) {
      if (rng.NextBool(0.5)) candidates.push_back(id);
    }
    out.clear();
    hint.IntersectRelevant(q, candidates, &out);
    EXPECT_EQ(Sorted(out), candidates);
  }
}

TEST(CostModelTest, PicksReasonableM) {
  const Time domain_end = 1 << 20;
  const auto records = RandomRecords(5000, domain_end, 171);
  CostModelOptions options;
  const int m = ChooseHintBits(records, domain_end, options);
  EXPECT_GE(m, options.min_bits);
  EXPECT_LE(m, options.max_bits);
}

TEST(CostModelTest, CostIsPositiveAndFiniteAcrossM) {
  const Time domain_end = 100000;
  const auto records = RandomRecords(2000, domain_end, 181);
  for (int m = 1; m <= 15; ++m) {
    const double cost =
        EstimateHintQueryCost(records, domain_end, m, CostModelOptions{});
    EXPECT_GT(cost, 0.0);
    EXPECT_TRUE(std::isfinite(cost));
  }
}

TEST(HintTest, MemoryUsageGrowsWithData) {
  HintOptions options;
  options.num_bits = 6;
  HintIndex small, large;
  ASSERT_TRUE(small.Build(RandomRecords(100, 999, 1), 999, options).ok());
  ASSERT_TRUE(large.Build(RandomRecords(10000, 999, 2), 999, options).ok());
  EXPECT_GT(large.MemoryUsageBytes(), small.MemoryUsageBytes());
  EXPECT_GT(large.NumEntries(), large.NumEntries() == 0 ? 0u : 9999u);
}

TEST(HintTest, StatsReflectStructure) {
  HintOptions options;
  options.num_bits = 3;
  HintIndex hint;
  // Interval spanning cells [1,4] of Figure 4: P3,1 original; P2,1 and
  // P3,4 replicas (domain 0..7 so cells == raw times).
  const std::vector<IntervalRecord> records{{1, Interval(1, 4)}};
  ASSERT_TRUE(hint.Build(records, 7, options).ok());
  const HintStats stats = hint.Stats(/*distinct_intervals=*/1);
  ASSERT_EQ(stats.levels.size(), 4u);
  EXPECT_EQ(stats.levels[3].partitions, 2u);  // P3,1 and P3,4
  EXPECT_EQ(stats.levels[3].originals, 1u);
  EXPECT_EQ(stats.levels[3].replicas, 1u);
  EXPECT_EQ(stats.levels[2].partitions, 1u);  // P2,1
  EXPECT_EQ(stats.levels[2].replicas, 1u);
  EXPECT_EQ(stats.total_entries, 3u);
  EXPECT_DOUBLE_EQ(stats.replication_factor, 3.0);
  EXPECT_EQ(stats.tombstones, 0u);
  ASSERT_TRUE(hint.Erase(1, Interval(1, 4)).ok());
  EXPECT_EQ(hint.Stats().tombstones, 3u);
}

TEST(HintTest, StorageOptimizationReducesMemory) {
  const auto records = RandomRecords(5000, 9999, 3);
  HintOptions plain;
  plain.num_bits = 8;
  HintOptions optimized = plain;
  optimized.storage_optimization = true;
  HintIndex a, b;
  ASSERT_TRUE(a.Build(records, 9999, plain).ok());
  ASSERT_TRUE(b.Build(records, 9999, optimized).ok());
  EXPECT_LT(b.MemoryUsageBytes(), a.MemoryUsageBytes());
}

}  // namespace
}  // namespace irhint

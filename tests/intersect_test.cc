#include "ir/intersect.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace irhint {
namespace {

using Ids = std::vector<ObjectId>;

Ids ReferenceIntersect(Ids a, Ids b) {
  a.erase(std::remove(a.begin(), a.end(), kTombstoneId), a.end());
  b.erase(std::remove(b.begin(), b.end(), kTombstoneId), b.end());
  Ids out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

TEST(IntersectTest, MergeBasics) {
  Ids out;
  IntersectMerge(Ids{1, 3, 5}, Ids{2, 3, 4, 5}, &out);
  EXPECT_EQ(out, (Ids{3, 5}));
  out.clear();
  IntersectMerge(Ids{}, Ids{1, 2}, &out);
  EXPECT_TRUE(out.empty());
  out.clear();
  IntersectMerge(Ids{1, 2}, Ids{}, &out);
  EXPECT_TRUE(out.empty());
  out.clear();
  IntersectMerge(Ids{7}, Ids{7}, &out);
  EXPECT_EQ(out, Ids{7});
}

TEST(IntersectTest, MergeSkipsTombstonesInPlace) {
  // Tombstones keep their slot; live subsequence remains sorted.
  Ids a{1, kTombstoneId, 5, 9};
  Ids b{kTombstoneId, 5, 9, kTombstoneId};
  Ids out;
  IntersectMerge(a, b, &out);
  EXPECT_EQ(out, (Ids{5, 9}));
}

TEST(IntersectTest, MergeWithPostings) {
  PostingsList list{{2, 0, 1}, {4, 0, 1}, {kTombstoneId, 0, 1}, {6, 0, 1}};
  Ids out;
  IntersectMerge(Ids{1, 2, 5, 6}, list, &out);
  EXPECT_EQ(out, (Ids{2, 6}));
}

TEST(IntersectTest, BinaryAndGallopingMatchMerge) {
  Rng rng(42);
  for (int round = 0; round < 50; ++round) {
    Ids a, b;
    const size_t na = 1 + rng.Uniform(200);
    const size_t nb = 1 + rng.Uniform(2000);
    for (size_t i = 0; i < na; ++i) {
      a.push_back(static_cast<ObjectId>(rng.Uniform(3000)));
    }
    for (size_t i = 0; i < nb; ++i) {
      b.push_back(static_cast<ObjectId>(rng.Uniform(3000)));
    }
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());

    const Ids expected = ReferenceIntersect(a, b);
    Ids merge, binary, gallop;
    IntersectMerge(a, b, &merge);
    IntersectBinary(a, b, &binary);
    IntersectGalloping(a, b, &gallop);
    EXPECT_EQ(merge, expected);
    EXPECT_EQ(binary, expected);
    EXPECT_EQ(gallop, expected);
  }
}

TEST(IntersectTest, GallopingHandlesExtremes) {
  Ids out;
  IntersectGalloping(Ids{0}, Ids{0, 1, 2, 3}, &out);
  EXPECT_EQ(out, Ids{0});
  out.clear();
  IntersectGalloping(Ids{3}, Ids{0, 1, 2, 3}, &out);
  EXPECT_EQ(out, Ids{3});
  out.clear();
  IntersectGalloping(Ids{5}, Ids{0, 1, 2, 3}, &out);
  EXPECT_TRUE(out.empty());
  out.clear();
  IntersectGalloping(Ids{}, Ids{}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(IntersectTest, SortedContains) {
  const Ids v{2, 4, 6};
  EXPECT_TRUE(SortedContains(v, 2));
  EXPECT_TRUE(SortedContains(v, 6));
  EXPECT_FALSE(SortedContains(v, 5));
  EXPECT_FALSE(SortedContains({}, 1));
}

}  // namespace
}  // namespace irhint

#include "core/factory.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace irhint {
namespace {

TEST(FactoryTest, CreatesEveryKindWithMatchingName) {
  const IndexKind kinds[] = {
      IndexKind::kNaiveScan,       IndexKind::kTif,
      IndexKind::kTifSlicing,      IndexKind::kTifSharding,
      IndexKind::kTifHintBinarySearch, IndexKind::kTifHintMergeSort,
      IndexKind::kTifHintSlicing,  IndexKind::kIrHintPerf,
      IndexKind::kIrHintSize,
  };
  for (const IndexKind kind : kinds) {
    auto index = CreateIndex(kind);
    ASSERT_NE(index, nullptr);
    EXPECT_EQ(index->Name(), IndexKindName(kind));
  }
}

TEST(FactoryTest, ComparisonLineupMatchesFigure11) {
  const auto kinds = ComparisonIndexKinds();
  ASSERT_EQ(kinds.size(), 5u);  // 2 competitors + hybrid + 2 irHINT
  EXPECT_EQ(kinds.front(), IndexKind::kTifSlicing);
  EXPECT_EQ(kinds.back(), IndexKind::kIrHintSize);
}

TEST(FactoryTest, AllLineupMatchesTable5) {
  EXPECT_EQ(AllIndexKinds().size(), 7u);
}

TEST(FactoryTest, ConfigIsApplied) {
  SyntheticParams params;
  params.cardinality = 300;
  params.domain = 10000;
  params.dictionary_size = 20;
  params.description_size = 4;
  const Corpus corpus = GenerateSynthetic(params);

  IndexConfig small;
  small.num_slices = 2;
  IndexConfig large;
  large.num_slices = 200;
  auto a = CreateIndex(IndexKind::kTifSlicing, small);
  auto b = CreateIndex(IndexKind::kTifSlicing, large);
  ASSERT_TRUE(a->Build(corpus).ok());
  ASSERT_TRUE(b->Build(corpus).ok());
  // More slices -> more replication -> bigger index.
  EXPECT_LT(a->MemoryUsageBytes(), b->MemoryUsageBytes());
}

TEST(FactoryTest, BuiltIndexesAnswerQueries) {
  SyntheticParams params;
  params.cardinality = 400;
  params.domain = 10000;
  params.dictionary_size = 10;
  params.description_size = 3;
  const Corpus corpus = GenerateSynthetic(params);
  const Query q(Interval(0, 9999), {0});
  std::vector<ObjectId> reference;
  std::vector<ObjectId> out;
  for (const IndexKind kind : AllIndexKinds()) {
    auto index = CreateIndex(kind);
    ASSERT_TRUE(index->Build(corpus).ok()) << index->Name();
    index->Query(q, &out);
    std::sort(out.begin(), out.end());
    if (reference.empty()) {
      reference = out;
      EXPECT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(out, reference) << index->Name();
    }
  }
}

}  // namespace
}  // namespace irhint

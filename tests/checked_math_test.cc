// Unit tests for the overflow-detecting arithmetic in checked_math.h —
// the sanitizer layer the irhint-untrusted-decode static check relies on.
// Each helper is exercised at the exact boundary where the unchecked
// spelling would wrap, because those boundaries are what the decode paths
// feed it (on-disk counts, ElementIds at the representable maximum).

#include "common/checked_math.h"

#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

namespace irhint {
namespace {

constexpr uint64_t kU64Max = std::numeric_limits<uint64_t>::max();
constexpr uint32_t kU32Max = std::numeric_limits<uint32_t>::max();

TEST(CheckedAddTest, InRange) {
  uint64_t out = 0;
  EXPECT_TRUE(CheckedAdd(uint64_t{2}, uint64_t{3}, &out));
  EXPECT_EQ(out, 5u);
  EXPECT_TRUE(CheckedAdd(kU64Max - 1, uint64_t{1}, &out));
  EXPECT_EQ(out, kU64Max);
}

TEST(CheckedAddTest, OverflowLeavesOutUntouched) {
  uint64_t out = 42;
  EXPECT_FALSE(CheckedAdd(kU64Max, uint64_t{1}, &out));
  EXPECT_EQ(out, 42u);
}

TEST(CheckedAddTest, SignedOverflowBothDirections) {
  int32_t out = 0;
  EXPECT_FALSE(CheckedAdd(std::numeric_limits<int32_t>::max(), 1, &out));
  EXPECT_FALSE(CheckedAdd(std::numeric_limits<int32_t>::min(), -1, &out));
  EXPECT_TRUE(CheckedAdd(-2, 1, &out));
  EXPECT_EQ(out, -1);
}

TEST(CheckedSubTest, UnsignedUnderflow) {
  uint32_t out = 7;
  EXPECT_FALSE(CheckedSub(uint32_t{0}, uint32_t{1}, &out));
  EXPECT_EQ(out, 7u);
  EXPECT_TRUE(CheckedSub(uint32_t{5}, uint32_t{5}, &out));
  EXPECT_EQ(out, 0u);
}

TEST(CheckedMulTest, InRangeAndOverflow) {
  uint64_t out = 0;
  EXPECT_TRUE(CheckedMul(uint64_t{1} << 31, uint64_t{2}, &out));
  EXPECT_EQ(out, uint64_t{1} << 32);
  out = 9;
  EXPECT_FALSE(CheckedMul(uint64_t{1} << 32, uint64_t{1} << 32, &out));
  EXPECT_EQ(out, 9u);
  // The wal_reader shape: count * sizeof(ElementId) with a hostile count.
  size_t bytes = 0;
  EXPECT_FALSE(CheckedMul(static_cast<size_t>(kU64Max), sizeof(uint32_t),
                          &bytes));
}

TEST(CheckedMulTest, ZeroNeverOverflows) {
  uint64_t out = 1;
  EXPECT_TRUE(CheckedMul(kU64Max, uint64_t{0}, &out));
  EXPECT_EQ(out, 0u);
}

TEST(CheckedCastTest, NarrowingFits) {
  uint32_t out = 0;
  EXPECT_TRUE(CheckedCast(uint64_t{kU32Max}, &out));
  EXPECT_EQ(out, kU32Max);
}

TEST(CheckedCastTest, NarrowingRejectsTooLarge) {
  uint32_t out = 5;
  EXPECT_FALSE(CheckedCast(uint64_t{kU32Max} + 1, &out));
  EXPECT_EQ(out, 5u);
}

TEST(CheckedCastTest, SignednessCrossings) {
  uint32_t u = 1;
  EXPECT_FALSE(CheckedCast(int32_t{-1}, &u));
  int32_t s = 0;
  EXPECT_FALSE(CheckedCast(uint32_t{0x80000000u}, &s));
  EXPECT_TRUE(CheckedCast(uint32_t{0x7fffffffu}, &s));
  EXPECT_EQ(s, std::numeric_limits<int32_t>::max());
  int64_t wide = 0;
  EXPECT_TRUE(CheckedCast(int32_t{-7}, &wide));
  EXPECT_EQ(wide, -7);
}

TEST(SaturatingTest, ClampsAtMax) {
  EXPECT_EQ(SaturatingAdd(kU64Max, uint64_t{1}), kU64Max);
  EXPECT_EQ(SaturatingAdd(uint64_t{2}, uint64_t{3}), 5u);
  EXPECT_EQ(SaturatingMul(kU64Max, uint64_t{2}), kU64Max);
  EXPECT_EQ(SaturatingMul(uint64_t{6}, uint64_t{7}), 42u);
}

TEST(GrowToFitTest, MaxIdDoesNotWrap) {
  // resize(e + 1) in ElementId width wraps to 0 at the max id — the PR 4
  // dictionary/corpus bug. GrowToFit widens first.
  EXPECT_EQ(GrowToFit(kU32Max), static_cast<size_t>(kU32Max) + 1);
  EXPECT_EQ(GrowToFit(0), 1u);
}

TEST(FitsInBytesTest, GuardsAllocationBombs) {
  EXPECT_TRUE(FitsInBytes(10, 24, 240));
  EXPECT_FALSE(FitsInBytes(11, 24, 240));
  // A count whose byte size wraps SIZE_MAX must still be rejected.
  EXPECT_FALSE(FitsInBytes(kU64Max, 24, 240));
  // Zero element size cannot overcommit regardless of count.
  EXPECT_TRUE(FitsInBytes(kU64Max, 0, 0));
}

TEST(CheckedMathTest, UsableInConstantExpressions) {
  constexpr size_t kLen = GrowToFit(100);
  static_assert(kLen == 101);
  static_assert(FitsInBytes(4, 8, 32));
  static_assert(!FitsInBytes(5, 8, 32));
  static_assert(SaturatingAdd(uint32_t{0xffffffffu}, uint32_t{5}) ==
                0xffffffffu);
}

}  // namespace
}  // namespace irhint

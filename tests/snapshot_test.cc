// Snapshot storage tests: build → save → load → randomized differential
// queries for every index kind (mmap and buffered), update support on
// loaded indexes, and corruption injection (truncation at every section
// boundary, bit flips, bad magic, future versions) asserting every decode
// failure is a clean Status — never a crash.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "data/query_gen.h"
#include "data/serialize.h"
#include "data/synthetic.h"
#include "storage/crc32c.h"
#include "storage/index_io.h"
#include "storage/snapshot_format.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

namespace irhint {
namespace {

using Ids = std::vector<ObjectId>;

std::string TempPath(const std::string& name) {
  // ctest runs the parameterized cases of this binary as separate tests,
  // possibly concurrently; a path shared between cases lets one truncate a
  // file another still has mmapped (SIGBUS). Namespace every path by the
  // running test.
  std::string unique = name;
  if (const auto* info =
          ::testing::UnitTest::GetInstance()->current_test_info()) {
    unique = std::string(info->test_suite_name()) + "_" + info->name() + "_" +
             name;
    for (char& c : unique) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.') c = '_';
    }
  }
  return std::string(::testing::TempDir()) + "/" + unique;
}

Corpus MakeCorpus(uint64_t cardinality = 2000) {
  SyntheticParams params;
  params.cardinality = cardinality;
  params.domain = 200000;
  params.sigma = 20000;
  params.dictionary_size = 200;
  params.description_size = 5;
  params.seed = 17;
  return GenerateSynthetic(params);
}

std::vector<Query> MakeQueries(const Corpus& corpus, size_t count) {
  WorkloadGenerator generator(corpus, 99);
  return generator.ExtentWorkload(0.1, 3, count);
}

Ids Answer(const TemporalIrIndex& index, const Query& query) {
  Ids out;
  index.Query(query, &out);
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectSameAnswers(const TemporalIrIndex& a, const TemporalIrIndex& b,
                       const std::vector<Query>& queries) {
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(Answer(a, queries[i]), Answer(b, queries[i]))
        << "query " << i << " differs";
  }
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

const IndexKind kAllKinds[] = {
    IndexKind::kNaiveScan,           IndexKind::kTif,
    IndexKind::kTifSlicing,          IndexKind::kTifSharding,
    IndexKind::kTifHintBinarySearch, IndexKind::kTifHintMergeSort,
    IndexKind::kTifHintSlicing,      IndexKind::kIrHintPerf,
    IndexKind::kIrHintSize,
};

class SnapshotRoundTripTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(SnapshotRoundTripTest, LoadAnswersIdentically) {
  const Corpus corpus = MakeCorpus();
  std::unique_ptr<TemporalIrIndex> built = CreateIndex(GetParam());
  ASSERT_TRUE(built->Build(corpus).ok());
  const std::string path = TempPath("roundtrip.irh");
  ASSERT_TRUE(SaveIndex(*built, path).ok());

  const std::vector<Query> queries = MakeQueries(corpus, 100);
  for (const bool use_mmap : {true, false}) {
    SnapshotReadOptions options;
    options.use_mmap = use_mmap;
    StatusOr<LoadedIndex> loaded = LoadIndexSnapshot(path, options);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->kind, GetParam());
    EXPECT_EQ(loaded->index->Name(), built->Name());
    ExpectSameAnswers(*loaded->index, *built, queries);
  }
  std::remove(path.c_str());
}

TEST_P(SnapshotRoundTripTest, LoadedIndexSupportsUpdates) {
  const Corpus corpus = MakeCorpus(500);
  std::unique_ptr<TemporalIrIndex> built = CreateIndex(GetParam());
  ASSERT_TRUE(built->Build(corpus).ok());
  const std::string path = TempPath("updatable.irh");
  ASSERT_TRUE(SaveIndex(*built, path).ok());
  StatusOr<LoadedIndex> loaded = LoadIndexSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Mutate both copies identically: new inserts (copy-on-write inside any
  // mapped arrays) and erases of existing objects.
  ObjectId next_id = static_cast<ObjectId>(corpus.size());
  for (int i = 0; i < 20; ++i) {
    Object o;
    o.id = next_id++;
    o.interval = Interval(100 + 40 * static_cast<Time>(i),
                          900 + 150 * static_cast<Time>(i));
    o.elements = {static_cast<ElementId>(i % 7),
                  static_cast<ElementId>(10 + i % 5)};
    std::sort(o.elements.begin(), o.elements.end());
    ASSERT_TRUE(built->Insert(o).ok());
    ASSERT_TRUE(loaded->index->Insert(o).ok());
  }
  for (ObjectId id = 0; id < 30; ++id) {
    const Object& victim = corpus.object(id);
    const Status a = built->Erase(victim);
    const Status b = loaded->index->Erase(victim);
    EXPECT_EQ(a.ok(), b.ok());
  }
  ExpectSameAnswers(*loaded->index, *built, MakeQueries(corpus, 100));

  // A mutated loaded index must save and reload cleanly again.
  const std::string path2 = TempPath("updatable2.irh");
  ASSERT_TRUE(SaveIndex(*loaded->index, path2).ok());
  StatusOr<LoadedIndex> reloaded = LoadIndexSnapshot(path2);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ExpectSameAnswers(*reloaded->index, *built, MakeQueries(corpus, 50));
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST_P(SnapshotRoundTripTest, EmptyCorpusRoundTrips) {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(8));
  corpus.DeclareDomain(1000);
  ASSERT_TRUE(corpus.Finalize().ok());
  std::unique_ptr<TemporalIrIndex> built = CreateIndex(GetParam());
  ASSERT_TRUE(built->Build(corpus).ok());
  const std::string path = TempPath("empty.irh");
  ASSERT_TRUE(SaveIndex(*built, path).ok());
  StatusOr<LoadedIndex> loaded = LoadIndexSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Ids out;
  loaded->index->Query(Query(Interval(0, 1000), {1, 2}), &out);
  EXPECT_TRUE(out.empty());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SnapshotRoundTripTest,
                         ::testing::ValuesIn(kAllKinds),
                         [](const auto& info) {
                           std::string name(IndexKindName(info.param));
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Corruption injection. Every mangled input must fail with a clean Status.
// ---------------------------------------------------------------------------

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = MakeCorpus(800);
    index_ = CreateIndex(IndexKind::kIrHintPerf);
    ASSERT_TRUE(index_->Build(corpus_).ok());
    path_ = TempPath("corrupt.irh");
    ASSERT_TRUE(SaveIndex(*index_, path_).ok());
    bytes_ = ReadFile(path_);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  // Expect load failure (clean Status) under both read backends.
  void ExpectLoadFails(const std::vector<uint8_t>& mangled) {
    WriteFile(path_, mangled);
    for (const bool use_mmap : {true, false}) {
      SnapshotReadOptions options;
      options.use_mmap = use_mmap;
      StatusOr<LoadedIndex> loaded = LoadIndexSnapshot(path_, options);
      EXPECT_FALSE(loaded.ok());
    }
  }

  Corpus corpus_;
  std::unique_ptr<TemporalIrIndex> index_;
  std::string path_;
  std::vector<uint8_t> bytes_;
};

TEST_F(SnapshotCorruptionTest, TruncationAtEverySectionBoundary) {
  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(path_).ok());
  std::vector<size_t> cuts = {0, 1, kSnapshotHeaderBytes - 1,
                              kSnapshotHeaderBytes, bytes_.size() - 1,
                              bytes_.size() - 4};
  for (const SectionInfo& section : reader.sections()) {
    cuts.push_back(static_cast<size_t>(section.offset));
    cuts.push_back(static_cast<size_t>(section.offset + section.size / 2));
    cuts.push_back(static_cast<size_t>(section.offset + section.size));
  }
  for (const size_t cut : cuts) {
    ASSERT_LE(cut, bytes_.size());
    std::vector<uint8_t> mangled(bytes_.begin(),
                                 bytes_.begin() + static_cast<long>(cut));
    ExpectLoadFails(mangled);
  }
}

TEST_F(SnapshotCorruptionTest, BitFlipsAreDetected) {
  // Flip a bit inside the header, inside each section payload, and inside
  // the section table; the CRCs must catch all of them.
  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(path_).ok());
  std::vector<size_t> positions = {4, 9, 13, bytes_.size() - 3};
  for (const SectionInfo& section : reader.sections()) {
    positions.push_back(static_cast<size_t>(section.offset));
    positions.push_back(
        static_cast<size_t>(section.offset + section.size / 2));
    positions.push_back(static_cast<size_t>(section.offset + section.size - 1));
  }
  for (const size_t pos : positions) {
    ASSERT_LT(pos, bytes_.size());
    std::vector<uint8_t> mangled = bytes_;
    mangled[pos] ^= 0x10;
    ExpectLoadFails(mangled);
  }
}

TEST_F(SnapshotCorruptionTest, BadMagicIsCorruption) {
  std::vector<uint8_t> mangled = bytes_;
  mangled[0] ^= 0xFF;
  WriteFile(path_, mangled);
  StatusOr<LoadedIndex> loaded = LoadIndexSnapshot(path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(SnapshotCorruptionTest, FutureVersionIsNotSupported) {
  std::vector<uint8_t> mangled = bytes_;
  // Bump the version field and re-stamp the header CRC so only the version
  // check can fire.
  const uint32_t version = kFormatVersion + 1;
  std::memcpy(mangled.data() + 8, &version, sizeof(version));
  const uint32_t crc = Crc32c(mangled.data(), 32);
  std::memcpy(mangled.data() + 32, &crc, sizeof(crc));
  WriteFile(path_, mangled);
  StatusOr<LoadedIndex> loaded = LoadIndexSnapshot(path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotSupported());
}

TEST_F(SnapshotCorruptionTest, EmptyAndTinyFilesAreCorruption) {
  ExpectLoadFails({});
  ExpectLoadFails({'I', 'R', 'H'});
}

TEST_F(SnapshotCorruptionTest, WrongSnapshotTypeIsRejected) {
  // An index snapshot is not a corpus, and vice versa.
  StatusOr<Corpus> as_corpus = LoadCorpus(path_);
  EXPECT_FALSE(as_corpus.ok());

  const std::string corpus_path = TempPath("corpus.snap");
  ASSERT_TRUE(SaveCorpus(corpus_, corpus_path).ok());
  StatusOr<LoadedIndex> as_index = LoadIndexSnapshot(corpus_path);
  EXPECT_FALSE(as_index.ok());
  EXPECT_TRUE(as_index.status().IsInvalidArgument());
  std::remove(corpus_path.c_str());
}

TEST_F(SnapshotCorruptionTest, MissingFileIsIoError) {
  StatusOr<LoadedIndex> loaded =
      LoadIndexSnapshot("/nonexistent/dir/snap.irh");
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIoError());
}

// ---------------------------------------------------------------------------
// Write atomicity: snapshots are written to <path>.tmp and renamed into
// place by Finish(), so a crash mid-save never clobbers a good snapshot.
// ---------------------------------------------------------------------------

TEST(SnapshotAtomicityTest, FinishLeavesNoTempFile) {
  const Corpus corpus = MakeCorpus(200);
  std::unique_ptr<TemporalIrIndex> index =
      CreateIndex(IndexKind::kIrHintPerf);
  ASSERT_TRUE(index->Build(corpus).ok());
  const std::string path = TempPath("atomic.irh");
  ASSERT_TRUE(SaveIndex(*index, path).ok());
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr) << "Finish() must rename the temp file away";
  if (tmp != nullptr) std::fclose(tmp);
  EXPECT_TRUE(LoadIndexSnapshot(path).ok());
  std::remove(path.c_str());
}

TEST(SnapshotAtomicityTest, AbandonedWriterPreservesExistingSnapshot) {
  const Corpus corpus = MakeCorpus(200);
  std::unique_ptr<TemporalIrIndex> index =
      CreateIndex(IndexKind::kIrHintPerf);
  ASSERT_TRUE(index->Build(corpus).ok());
  const std::string path = TempPath("abandoned.irh");
  ASSERT_TRUE(SaveIndex(*index, path).ok());
  const std::vector<uint8_t> before = ReadFile(path);

  {
    // A save that dies before Finish() (crash, error unwind) must leave
    // the previous snapshot untouched and clean up its temp file.
    SnapshotWriter writer;
    ASSERT_TRUE(writer.Open(path, SnapshotKind::kIrHintPerf).ok());
    writer.BeginSection(kSectionMeta);
    writer.WriteU64(123);
    ASSERT_TRUE(writer.EndSection().ok());
  }
  EXPECT_EQ(ReadFile(path), before);
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr) << "abandoned writer must remove its temp file";
  if (tmp != nullptr) std::fclose(tmp);
  EXPECT_TRUE(LoadIndexSnapshot(path).ok());
  std::remove(path.c_str());
}

TEST(SnapshotAtomicityTest, SyncCanBeDisabled) {
  const Corpus corpus = MakeCorpus(100);
  std::unique_ptr<TemporalIrIndex> index =
      CreateIndex(IndexKind::kNaiveScan);
  ASSERT_TRUE(index->Build(corpus).ok());
  const std::string path = TempPath("nosync.irh");
  SnapshotWriter writer;
  SnapshotWriteOptions options;
  options.sync_on_finish = false;
  ASSERT_TRUE(writer.Open(path, SnapshotKindFor(index->Kind()), options).ok());
  ASSERT_TRUE(index->SaveTo(&writer).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_TRUE(LoadIndexSnapshot(path).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Corpus snapshots.
// ---------------------------------------------------------------------------

TEST(CorpusSnapshotTest, TextualDictionaryRoundTrips) {
  Corpus corpus;
  Dictionary dict;
  const ElementId apple = dict.AddTerm("apple");
  const ElementId pear = dict.AddTerm("pear");
  const ElementId quince = dict.AddTerm("quince");
  corpus.set_dictionary(std::move(dict));
  corpus.Append(Interval(0, 10), {apple, pear});
  corpus.Append(Interval(5, 20), {pear, quince});
  corpus.Append(Interval(15, 30), {apple, quince});
  ASSERT_TRUE(corpus.Finalize().ok());

  const std::string path = TempPath("textual_corpus.snap");
  ASSERT_TRUE(SaveCorpus(corpus, path).ok());
  StatusOr<Corpus> loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->dictionary().size(), 3u);
  EXPECT_EQ(loaded->dictionary().LookupTerm("apple"), apple);
  EXPECT_EQ(loaded->dictionary().LookupTerm("pear"), pear);
  EXPECT_EQ(loaded->dictionary().Term(quince), "quince");
  EXPECT_EQ(loaded->dictionary().frequencies(),
            corpus.dictionary().frequencies());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(loaded->object(i).interval, corpus.object(i).interval);
    EXPECT_EQ(loaded->object(i).elements, corpus.object(i).elements);
  }
  std::remove(path.c_str());
}

TEST(CorpusSnapshotTest, InspectableSections) {
  const Corpus corpus = MakeCorpus(100);
  const std::string path = TempPath("sections.snap");
  ASSERT_TRUE(SaveCorpus(corpus, path).ok());
  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_EQ(reader.version(), kFormatVersion);
  EXPECT_EQ(reader.kind(), static_cast<uint32_t>(SnapshotKind::kCorpus));
  EXPECT_TRUE(reader.HasSection(kSectionMeta));
  EXPECT_TRUE(reader.HasSection(kSectionDictionary));
  EXPECT_TRUE(reader.HasSection(kSectionObjects));
  for (const SectionInfo& section : reader.sections()) {
    EXPECT_EQ(section.offset % 8, 0u);
    EXPECT_TRUE(reader.VerifySection(section).ok());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace irhint

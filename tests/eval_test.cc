#include <algorithm>
#include <cstdlib>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "core/factory.h"
#include "core/naive_scan.h"
#include "data/query_gen.h"
#include "data/synthetic.h"
#include "eval/runner.h"

namespace irhint {
namespace {

Corpus SmallCorpus() {
  SyntheticParams params;
  params.cardinality = 500;
  params.domain = 10000;
  params.dictionary_size = 30;
  params.description_size = 4;
  return GenerateSynthetic(params);
}

TEST(RunnerTest, MeasureBuildReportsTimeAndSize) {
  const Corpus corpus = SmallCorpus();
  NaiveScan index;
  const BuildStats stats = MeasureBuild(&index, corpus);
  EXPECT_GE(stats.seconds, 0.0);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(RunnerTest, MeasureQueriesCountsResults) {
  const Corpus corpus = SmallCorpus();
  NaiveScan index;
  ASSERT_TRUE(index.Build(corpus).ok());
  WorkloadGenerator generator(corpus, 1);
  const auto queries = generator.ExtentWorkload(10.0, 1, 20);
  const QueryStats stats = MeasureQueries(index, queries);
  EXPECT_EQ(stats.num_queries, queries.size());
  EXPECT_GT(stats.total_results, 0u);  // non-empty by construction
  EXPECT_GT(stats.queries_per_second, 0.0);
  EXPECT_GE(stats.seconds, 0.2);  // repeats until min measurement window
}

TEST(RunnerTest, MeasureQueriesEmptyBatch) {
  NaiveScan index;
  const QueryStats stats = MeasureQueries(index, {});
  EXPECT_EQ(stats.num_queries, 0u);
  EXPECT_EQ(stats.queries_per_second, 0.0);
}

TEST(RunnerTest, InsertAndEraseBatches) {
  const Corpus corpus = SmallCorpus();
  const Corpus prefix = corpus.Prefix(400);
  NaiveScan index;
  ASSERT_TRUE(index.Build(prefix).ok());
  EXPECT_GE(MeasureInsertSeconds(&index, corpus, 400, 500), 0.0);
  EXPECT_GE(MeasureEraseSeconds(&index, corpus, 0, 100), 0.0);
  // Erasing the same range again fails -> negative sentinel.
  EXPECT_LT(MeasureEraseSeconds(&index, corpus, 0, 100), 0.0);
}

TEST(RunnerTest, ParallelMeasureQueriesEmptyBatch) {
  NaiveScan index;
  const QueryStats stats = ParallelMeasureQueries(index, {}, 4);
  EXPECT_EQ(stats.num_queries, 0u);
  EXPECT_EQ(stats.queries_per_second, 0.0);
}

TEST(RunnerTest, ParallelMeasureQueriesMatchesSerial) {
  const Corpus corpus = SmallCorpus();
  NaiveScan index;
  ASSERT_TRUE(index.Build(corpus).ok());
  WorkloadGenerator generator(corpus, 7);
  const auto queries = generator.ExtentWorkload(10.0, 1, 50);
  const QueryStats serial = MeasureQueries(index, queries);
  const QueryStats parallel = ParallelMeasureQueries(index, queries, 4);
  EXPECT_EQ(parallel.num_queries, queries.size());
  EXPECT_EQ(parallel.num_threads, 4u);
  EXPECT_EQ(parallel.total_results, serial.total_results);
  EXPECT_GT(parallel.queries_per_second, 0.0);
  EXPECT_GT(parallel.latency_p50_us, 0.0);
  EXPECT_GE(parallel.latency_p99_us, parallel.latency_p50_us);
}

// The read-concurrency contract every index must honor: concurrent const
// Query() calls on a built index return exactly the serial answer. Runs
// every factory-constructed index over a randomized workload, comparing
// sorted per-query result sets and the merged total against serial
// execution with 4 threads.
TEST(RunnerTest, ParallelQueriesAreDeterministicForAllIndexes) {
  SyntheticParams params;
  params.cardinality = 2000;
  params.domain = 50000;
  params.dictionary_size = 100;
  params.description_size = 6;
  params.seed = 99;
  const Corpus corpus = GenerateSynthetic(params);
  WorkloadGenerator generator(corpus, 31);
  const auto queries = generator.MixedWorkload(60);
  ASSERT_FALSE(queries.empty());

  ThreadPool pool(4);
  for (const IndexKind kind : AllIndexKinds()) {
    std::unique_ptr<TemporalIrIndex> index = CreateIndex(kind);
    ASSERT_TRUE(index->Build(corpus).ok()) << IndexKindName(kind);

    std::vector<std::vector<ObjectId>> serial(queries.size());
    uint64_t serial_total = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      index->Query(queries[i], &serial[i]);
      std::sort(serial[i].begin(), serial[i].end());
      serial_total += serial[i].size();
    }

    std::vector<std::vector<ObjectId>> concurrent(queries.size());
    pool.ParallelFor(0, queries.size(), [&](size_t i) {
      index->Query(queries[i], &concurrent[i]);
      std::sort(concurrent[i].begin(), concurrent[i].end());
    });
    uint64_t concurrent_total = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(concurrent[i], serial[i])
          << IndexKindName(kind) << " query " << i;
      concurrent_total += concurrent[i].size();
    }
    EXPECT_EQ(concurrent_total, serial_total) << IndexKindName(kind);
  }
}

TEST(CountersTest, DisabledByDefaultAndZeroed) {
  const Corpus corpus = SmallCorpus();
  NaiveScan index;
  ASSERT_TRUE(index.Build(corpus).ok());
  WorkloadGenerator generator(corpus, 5);
  const auto queries = generator.ExtentWorkload(10.0, 1, 5);
  for (const Query& q : queries) {
    std::vector<ObjectId> out;
    index.Query(q, &out);
  }
  const std::optional<QueryCounters> stats = index.Stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->candidates_verified, 0u);  // collection was off
  EXPECT_EQ(stats->divisions_visited, 0u);
}

TEST(CountersTest, SupportedIndexesCountWorkAndReset) {
  SyntheticParams params;
  params.cardinality = 1500;
  params.domain = 40000;
  params.dictionary_size = 50;
  params.description_size = 5;
  params.seed = 17;
  const Corpus corpus = GenerateSynthetic(params);
  WorkloadGenerator generator(corpus, 23);
  const auto queries = generator.ExtentWorkload(20.0, 2, 30);

  const IndexKind counting_kinds[] = {
      IndexKind::kNaiveScan,          IndexKind::kTif,
      IndexKind::kTifHintBinarySearch, IndexKind::kTifHintMergeSort,
      IndexKind::kIrHintPerf,         IndexKind::kIrHintSize,
  };
  for (const IndexKind kind : counting_kinds) {
    std::unique_ptr<TemporalIrIndex> index = CreateIndex(kind);
    ASSERT_TRUE(index->Build(corpus).ok()) << IndexKindName(kind);
    index->EnableStats(true);
    std::vector<ObjectId> out;
    for (const Query& q : queries) index->Query(q, &out);
    const std::optional<QueryCounters> stats = index->Stats();
    ASSERT_TRUE(stats.has_value()) << IndexKindName(kind);
    const uint64_t work = stats->divisions_visited + stats->postings_scanned +
                          stats->intersections_performed +
                          stats->candidates_verified;
    EXPECT_GT(work, 0u) << IndexKindName(kind);

    index->ResetStats();
    const std::optional<QueryCounters> cleared = index->Stats();
    ASSERT_TRUE(cleared.has_value());
    EXPECT_EQ(cleared->divisions_visited, 0u) << IndexKindName(kind);
    EXPECT_EQ(cleared->postings_scanned, 0u) << IndexKindName(kind);
    EXPECT_EQ(cleared->intersections_performed, 0u) << IndexKindName(kind);
    EXPECT_EQ(cleared->candidates_verified, 0u) << IndexKindName(kind);
  }
}

TEST(CountersTest, CountersMergeAcrossThreads) {
  SyntheticParams params;
  params.cardinality = 1000;
  params.domain = 30000;
  params.dictionary_size = 40;
  params.description_size = 5;
  params.seed = 29;
  const Corpus corpus = GenerateSynthetic(params);
  WorkloadGenerator generator(corpus, 41);
  const auto queries = generator.ExtentWorkload(20.0, 2, 40);

  std::unique_ptr<TemporalIrIndex> index = CreateIndex(IndexKind::kIrHintPerf);
  ASSERT_TRUE(index->Build(corpus).ok());
  index->EnableStats(true);

  // Serial reference tally.
  std::vector<ObjectId> out;
  for (const Query& q : queries) index->Query(q, &out);
  const QueryCounters serial = *index->Stats();

  // The same batch from 4 threads must merge to the same totals.
  index->ResetStats();
  ThreadPool pool(4);
  pool.ParallelFor(0, queries.size(), [&](size_t i) {
    std::vector<ObjectId> local;
    index->Query(queries[i], &local);
  });
  const QueryCounters merged = *index->Stats();
  EXPECT_EQ(merged.divisions_visited, serial.divisions_visited);
  EXPECT_EQ(merged.postings_scanned, serial.postings_scanned);
  EXPECT_EQ(merged.intersections_performed, serial.intersections_performed);
  EXPECT_EQ(merged.candidates_verified, serial.candidates_verified);
}

TEST(RunnerTest, EnvKnobs) {
  unsetenv("IRHINT_SCALE");
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 1.0);
  setenv("IRHINT_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 2.5);
  setenv("IRHINT_SCALE", "bogus", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 1.0);
  unsetenv("IRHINT_SCALE");

  unsetenv("IRHINT_QUERIES");
  EXPECT_EQ(BenchQueriesFromEnv(123), 123u);
  setenv("IRHINT_QUERIES", "777", 1);
  EXPECT_EQ(BenchQueriesFromEnv(123), 777u);
  unsetenv("IRHINT_QUERIES");

  unsetenv("IRHINT_THREADS");
  EXPECT_EQ(BenchThreadsFromEnv(1), 1u);
  setenv("IRHINT_THREADS", "4", 1);
  EXPECT_EQ(BenchThreadsFromEnv(1), 4u);
  setenv("IRHINT_THREADS", "-2", 1);
  EXPECT_EQ(BenchThreadsFromEnv(3), 3u);
  unsetenv("IRHINT_THREADS");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer-name"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"x", "y"});
  table.AddRow({"1", "2"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(FmtTest, Formatting) {
  EXPECT_EQ(Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Fmt(uint64_t{42}), "42");
  EXPECT_EQ(Fmt(int64_t{-7}), "-7");
  EXPECT_EQ(FmtMb(1048576 * 3), "3.0");
}

TEST(BitsTest, Helpers) {
  EXPECT_EQ(BitWidth(0), 1);
  EXPECT_EQ(BitWidth(1), 1);
  EXPECT_EQ(BitWidth(2), 2);
  EXPECT_EQ(BitWidth(255), 8);
  EXPECT_EQ(BitWidth(256), 9);
  EXPECT_EQ(CeilPow2(1), 1u);
  EXPECT_EQ(CeilPow2(3), 4u);
  EXPECT_EQ(CeilPow2(1024), 1024u);
  EXPECT_TRUE(IsPow2(64));
  EXPECT_FALSE(IsPow2(0));
  EXPECT_FALSE(IsPow2(12));
  EXPECT_EQ(LevelPrefix(2, 4, 13), 3u);  // 1101 -> 11
  EXPECT_EQ(LevelPrefix(4, 4, 13), 13u);
  EXPECT_EQ(LevelPrefix(0, 4, 13), 0u);
}

}  // namespace
}  // namespace irhint

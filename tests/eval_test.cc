#include <cstdlib>
#include <sstream>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/table_printer.h"
#include "core/naive_scan.h"
#include "data/query_gen.h"
#include "data/synthetic.h"
#include "eval/runner.h"

namespace irhint {
namespace {

Corpus SmallCorpus() {
  SyntheticParams params;
  params.cardinality = 500;
  params.domain = 10000;
  params.dictionary_size = 30;
  params.description_size = 4;
  return GenerateSynthetic(params);
}

TEST(RunnerTest, MeasureBuildReportsTimeAndSize) {
  const Corpus corpus = SmallCorpus();
  NaiveScan index;
  const BuildStats stats = MeasureBuild(&index, corpus);
  EXPECT_GE(stats.seconds, 0.0);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(RunnerTest, MeasureQueriesCountsResults) {
  const Corpus corpus = SmallCorpus();
  NaiveScan index;
  ASSERT_TRUE(index.Build(corpus).ok());
  WorkloadGenerator generator(corpus, 1);
  const auto queries = generator.ExtentWorkload(10.0, 1, 20);
  const QueryStats stats = MeasureQueries(index, queries);
  EXPECT_EQ(stats.num_queries, queries.size());
  EXPECT_GT(stats.total_results, 0u);  // non-empty by construction
  EXPECT_GT(stats.queries_per_second, 0.0);
  EXPECT_GE(stats.seconds, 0.2);  // repeats until min measurement window
}

TEST(RunnerTest, MeasureQueriesEmptyBatch) {
  NaiveScan index;
  const QueryStats stats = MeasureQueries(index, {});
  EXPECT_EQ(stats.num_queries, 0u);
  EXPECT_EQ(stats.queries_per_second, 0.0);
}

TEST(RunnerTest, InsertAndEraseBatches) {
  const Corpus corpus = SmallCorpus();
  const Corpus prefix = corpus.Prefix(400);
  NaiveScan index;
  ASSERT_TRUE(index.Build(prefix).ok());
  EXPECT_GE(MeasureInsertSeconds(&index, corpus, 400, 500), 0.0);
  EXPECT_GE(MeasureEraseSeconds(&index, corpus, 0, 100), 0.0);
  // Erasing the same range again fails -> negative sentinel.
  EXPECT_LT(MeasureEraseSeconds(&index, corpus, 0, 100), 0.0);
}

TEST(RunnerTest, EnvKnobs) {
  unsetenv("IRHINT_SCALE");
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 1.0);
  setenv("IRHINT_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 2.5);
  setenv("IRHINT_SCALE", "bogus", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 1.0);
  unsetenv("IRHINT_SCALE");

  unsetenv("IRHINT_QUERIES");
  EXPECT_EQ(BenchQueriesFromEnv(123), 123u);
  setenv("IRHINT_QUERIES", "777", 1);
  EXPECT_EQ(BenchQueriesFromEnv(123), 777u);
  unsetenv("IRHINT_QUERIES");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer-name"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"x", "y"});
  table.AddRow({"1", "2"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(FmtTest, Formatting) {
  EXPECT_EQ(Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Fmt(uint64_t{42}), "42");
  EXPECT_EQ(Fmt(int64_t{-7}), "-7");
  EXPECT_EQ(FmtMb(1048576 * 3), "3.0");
}

TEST(BitsTest, Helpers) {
  EXPECT_EQ(BitWidth(0), 1);
  EXPECT_EQ(BitWidth(1), 1);
  EXPECT_EQ(BitWidth(2), 2);
  EXPECT_EQ(BitWidth(255), 8);
  EXPECT_EQ(BitWidth(256), 9);
  EXPECT_EQ(CeilPow2(1), 1u);
  EXPECT_EQ(CeilPow2(3), 4u);
  EXPECT_EQ(CeilPow2(1024), 1024u);
  EXPECT_TRUE(IsPow2(64));
  EXPECT_FALSE(IsPow2(0));
  EXPECT_FALSE(IsPow2(12));
  EXPECT_EQ(LevelPrefix(2, 4, 13), 3u);  // 1101 -> 11
  EXPECT_EQ(LevelPrefix(4, 4, 13), 13u);
  EXPECT_EQ(LevelPrefix(0, 4, 13), 0u);
}

}  // namespace
}  // namespace irhint

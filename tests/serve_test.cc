// Tests of the sharded serving engine (src/serve/): routing/merge
// determinism against a 1-shard oracle and a NaiveScan ground truth,
// batching and duplicate coalescing, admission control under a slow-shard
// fault, live updates through the shard queues, durable mode, and the
// line-oriented server loop.

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/query_gen.h"
#include "data/synthetic.h"
#include "serve/engine.h"
#include "serve/server_loop.h"

namespace irhint {
namespace serve {
namespace {

using Ids = std::vector<ObjectId>;

Corpus TestCorpus(uint64_t cardinality = 1200, uint64_t seed = 13) {
  SyntheticParams params;
  params.cardinality = cardinality;
  params.domain = 200000;
  params.sigma = 40000;
  params.dictionary_size = 250;
  params.description_size = 6;
  params.seed = seed;
  return GenerateSynthetic(params);
}

std::vector<Query> TestQueries(const Corpus& corpus, size_t count = 60) {
  WorkloadGenerator generator(corpus, /*seed=*/3);
  std::vector<Query> queries =
      generator.ExtentWorkload(0.5, 1, count / 3);
  const std::vector<Query> wide = generator.ExtentWorkload(5.0, 2, count / 3);
  queries.insert(queries.end(), wide.begin(), wide.end());
  const std::vector<Query> stabs = generator.ExtentWorkload(0.0, 1, count / 3);
  queries.insert(queries.end(), stabs.begin(), stabs.end());
  return queries;
}

Ids MustGet(ResultFuture future) {
  StatusOr<Ids> result = future.Get();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *std::move(result) : Ids();
}

TEST(TermBucketTest, DeterministicAndInRange) {
  for (uint32_t buckets : {1u, 2u, 7u}) {
    for (ElementId e = 0; e < 1000; ++e) {
      const uint32_t b = TermBucket(e, buckets);
      EXPECT_LT(b, buckets);
      EXPECT_EQ(b, TermBucket(e, buckets));
    }
  }
}

// The acceptance property of the router: for every shard/bucket geometry
// the merged answer is byte-identical to a 1-shard engine over the same
// corpus (which itself must match the index answering directly).
TEST(ServeEngineTest, MergedResultsMatchOneShardOracle) {
  const Corpus corpus = TestCorpus();
  const std::vector<Query> queries = TestQueries(corpus);

  ServeOptions oracle_options;
  oracle_options.time_shards = 1;
  StatusOr<std::unique_ptr<ServeEngine>> oracle =
      ServeEngine::Create(corpus, oracle_options);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  std::vector<Ids> expected;
  expected.reserve(queries.size());
  for (const Query& query : queries) {
    expected.push_back(MustGet((*oracle)->Submit(query)));
  }

  for (const uint32_t shards : {2u, 3u, 5u}) {
    for (const uint32_t buckets : {1u, 3u}) {
      ServeOptions options;
      options.time_shards = shards;
      options.term_buckets = buckets;
      StatusOr<std::unique_ptr<ServeEngine>> engine =
          ServeEngine::Create(corpus, options);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      EXPECT_EQ((*engine)->num_shards(), shards * buckets);
      for (size_t i = 0; i < queries.size(); ++i) {
        EXPECT_EQ(MustGet((*engine)->Submit(queries[i])), expected[i])
            << "query " << i << " diverges at " << shards << "x" << buckets;
      }
    }
  }
}

// Same property under concurrent submitters: many client threads racing
// into the shard queues must not change any answer.
TEST(ServeEngineTest, ConcurrentSubmittersGetIdenticalAnswers) {
  const Corpus corpus = TestCorpus();
  const std::vector<Query> queries = TestQueries(corpus);

  ServeOptions oracle_options;
  oracle_options.time_shards = 1;
  StatusOr<std::unique_ptr<ServeEngine>> oracle =
      ServeEngine::Create(corpus, oracle_options);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  std::vector<Ids> expected;
  for (const Query& query : queries) {
    expected.push_back(MustGet((*oracle)->Submit(query)));
  }

  ServeOptions options;
  options.time_shards = 4;
  options.term_buckets = 2;
  StatusOr<std::unique_ptr<ServeEngine>> engine =
      ServeEngine::Create(corpus, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  constexpr size_t kThreads = 4;
  constexpr size_t kRounds = 3;
  std::vector<std::vector<Ids>> got(kThreads);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (size_t c = 0; c < kThreads; ++c) {
    clients.emplace_back([&, c]() {
      for (size_t round = 0; round < kRounds; ++round) {
        for (const Query& query : queries) {
          StatusOr<Ids> result = (*engine)->Execute(query);
          got[c].push_back(result.ok() ? *std::move(result) : Ids());
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (size_t c = 0; c < kThreads; ++c) {
    ASSERT_EQ(got[c].size(), kRounds * queries.size());
    for (size_t i = 0; i < got[c].size(); ++i) {
      EXPECT_EQ(got[c][i], expected[i % queries.size()])
          << "client " << c << " request " << i;
    }
  }
}

// Element-less queries cannot pick a term bucket, so the router must fan
// them out to every bucket of each overlapping time shard. Results are
// empty either way (the library-wide contract for element-less queries),
// so the routing is observed through the per-shard submitted counters.
TEST(ServeEngineTest, EmptyElementQueriesFanOutToAllBuckets) {
  const Corpus corpus = TestCorpus(600);
  ServeOptions options;
  options.time_shards = 3;
  options.term_buckets = 4;
  StatusOr<std::unique_ptr<ServeEngine>> engine =
      ServeEngine::Create(corpus, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Full-domain interval: overlaps all 3 time shards x 4 buckets.
  EXPECT_EQ(MustGet((*engine)->Submit(Query(Interval(0, 200000), {}))), Ids());
  (*engine)->WaitIdle();
  EngineStats stats = (*engine)->Stats();
  EXPECT_EQ(stats.total_submitted, 12u);
  for (const ShardStats& shard : stats.shards) {
    EXPECT_EQ(shard.submitted, 1u);
  }

  // A query with elements routes to exactly one bucket per time shard.
  EXPECT_TRUE((*engine)->Execute(Query(Interval(0, 200000), {1})).ok());
  (*engine)->WaitIdle();
  stats = (*engine)->Stats();
  EXPECT_EQ(stats.total_submitted, 15u);
}

// Live updates ride the shard queues: inserts spanning shard boundaries
// become visible everywhere, erases tombstone every replica, and the
// engine keeps matching a NaiveScan subjected to the same stream.
TEST(ServeEngineTest, LiveInsertAndEraseStayConsistent) {
  const Corpus corpus = TestCorpus(800);
  const size_t offline = corpus.size() * 9 / 10;
  const Corpus prefix = corpus.Prefix(offline);

  ServeOptions options;
  options.time_shards = 3;
  options.term_buckets = 2;
  StatusOr<std::unique_ptr<ServeEngine>> engine =
      ServeEngine::Create(prefix, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->next_object_id(), offline);

  std::unique_ptr<TemporalIrIndex> reference =
      CreateIndex(IndexKind::kNaiveScan);
  ASSERT_TRUE(reference->Build(prefix).ok());

  const std::vector<Query> queries = TestQueries(corpus, 30);
  auto expect_match = [&](const char* stage) {
    for (size_t i = 0; i < queries.size(); ++i) {
      if (queries[i].elements.empty()) continue;  // irHINT contract
      Ids want;
      reference->Query(queries[i], &want);
      std::sort(want.begin(), want.end());
      ASSERT_EQ(MustGet((*engine)->Submit(queries[i])), want)
          << stage << ": query " << i;
    }
  };
  expect_match("after build");

  for (size_t i = offline; i < corpus.size(); ++i) {
    const Object& object = corpus.object(static_cast<ObjectId>(i));
    ASSERT_TRUE((*engine)->Insert(object).ok());
    ASSERT_TRUE(reference->Insert(object).ok());
  }
  expect_match("after live inserts");
  EXPECT_EQ((*engine)->next_object_id(), corpus.size());

  // Out-of-order / duplicate ids are rejected up front.
  EXPECT_TRUE((*engine)->Insert(corpus.object(0)).IsInvalidArgument());

  for (ObjectId id = 0; id < corpus.size(); id += 3) {
    ASSERT_TRUE((*engine)->Erase(corpus.object(id)).ok());
    ASSERT_TRUE(reference->Erase(corpus.object(id)).ok());
  }
  expect_match("after erases");

  const EngineStats stats = (*engine)->Stats();
  EXPECT_GT(stats.total_updates_applied, 0u);
}

// Durable mode: every shard persists through its own WAL directory, live
// AppendInsert survives the queues, and Flush syncs all shards.
TEST(ServeEngineTest, DurableModeServesAndIngests) {
  const Corpus corpus = TestCorpus(400);
  const std::string dir =
      std::string(::testing::TempDir()) + "/serve_durable_test";
  std::filesystem::remove_all(dir);  // the engine requires a fresh dir

  ServeOptions options;
  options.time_shards = 2;
  options.term_buckets = 2;
  options.wal_dir = dir;
  StatusOr<std::unique_ptr<ServeEngine>> engine =
      ServeEngine::Create(corpus, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  std::unique_ptr<TemporalIrIndex> reference =
      CreateIndex(IndexKind::kNaiveScan);
  ASSERT_TRUE(reference->Build(corpus).ok());

  // Live ingestion with engine-assigned ids, mirrored into the reference.
  for (int i = 0; i < 20; ++i) {
    const Time st = static_cast<Time>(1000 * i);
    const Interval interval(st, st + 5000);
    std::vector<ElementId> elements = {static_cast<ElementId>(i % 7),
                                       static_cast<ElementId>(100 + i)};
    StatusOr<ObjectId> id = (*engine)->AppendInsert(interval, elements);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    std::sort(elements.begin(), elements.end());
    ASSERT_TRUE(reference->Insert(Object(*id, interval, elements)).ok());
  }
  ASSERT_TRUE((*engine)->Flush().ok());

  const std::vector<Query> queries = TestQueries(corpus, 30);
  for (size_t i = 0; i < queries.size(); ++i) {
    if (queries[i].elements.empty()) continue;
    Ids want;
    reference->Query(queries[i], &want);
    std::sort(want.begin(), want.end());
    ASSERT_EQ(MustGet((*engine)->Submit(queries[i])), want) << "query " << i;
  }

  // A second engine over the same (now dirty) directory must refuse — the
  // sharded layout is not recoverable across runs yet.
  StatusOr<std::unique_ptr<ServeEngine>> second =
      ServeEngine::Create(corpus, options);
  EXPECT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsInvalidArgument())
      << second.status().ToString();
}

// Admission control under a slow-shard fault: a sleep hook makes every
// batch slow, the queue bound is tiny, and an open-loop burst must shed
// (kUnavailable) rather than queue without limit — and still drain.
TEST(ServeEngineTest, SlowShardShedsAtBoundedDepth) {
  const Corpus corpus = TestCorpus(300);
  ServeOptions options;
  options.time_shards = 1;  // one queue, so the burst targets one worker
  options.max_queue_depth = 8;
  options.batch_hook = [](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };
  StatusOr<std::unique_ptr<ServeEngine>> engine =
      ServeEngine::Create(corpus, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const Query query(Interval(0, 200000), {1});
  std::vector<ResultFuture> futures;
  futures.reserve(200);
  for (int i = 0; i < 200; ++i) futures.push_back((*engine)->Submit(query));

  size_t ok = 0, shed = 0;
  for (ResultFuture& future : futures) {
    const StatusOr<Ids> result = future.Get();
    if (result.ok()) {
      ++ok;
    } else {
      ASSERT_TRUE(result.status().IsUnavailable())
          << result.status().ToString();
      ++shed;
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(shed, 0u);

  (*engine)->WaitIdle();
  const EngineStats stats = (*engine)->Stats();
  EXPECT_EQ(stats.total_shed, shed);
  EXPECT_LE(stats.max_peak_queue_depth, options.max_queue_depth);
  EXPECT_EQ(stats.max_queue_depth, 0u);  // drained

  // The engine still answers once the burst is over (no deadlock, no
  // poisoned worker).
  EXPECT_TRUE((*engine)->Execute(query).ok());
}

// Batch coalescing: with the worker pinned slow, a burst of one popular
// query must collapse into few batches with most duplicates served by a
// twin's descent.
TEST(ServeEngineTest, BatchingCoalescesDuplicateQueries) {
  const Corpus corpus = TestCorpus(300);
  ServeOptions options;
  options.time_shards = 1;
  options.max_queue_depth = 256;
  options.max_batch = 64;
  options.batch_hook = [](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  };
  StatusOr<std::unique_ptr<ServeEngine>> engine =
      ServeEngine::Create(corpus, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const Query popular(Interval(0, 100000), {2});
  std::vector<ResultFuture> futures;
  for (int i = 0; i < 100; ++i) futures.push_back((*engine)->Submit(popular));
  Ids first = MustGet(futures.front());
  for (size_t i = 1; i < futures.size(); ++i) {
    EXPECT_EQ(MustGet(std::move(futures[i])), first);
  }

  const EngineStats stats = (*engine)->Stats();
  EXPECT_GT(stats.total_dedup_hits, 0u);
  EXPECT_LT(stats.total_batches, 100u);
  EXPECT_EQ(stats.total_executed_queries + stats.total_dedup_hits, 100u);
}

TEST(ServeEngineTest, RejectsInvalidOptions) {
  const Corpus corpus = TestCorpus(100);
  ServeOptions options;
  options.time_shards = 0;
  EXPECT_FALSE(ServeEngine::Create(corpus, options).ok());
  options.time_shards = 2;
  options.max_queue_depth = 0;
  EXPECT_FALSE(ServeEngine::Create(corpus, options).ok());
}

TEST(ServeEngineTest, ClampsShardsToTinyDomains) {
  Corpus corpus;
  corpus.Append(Interval(0, 1), {1});
  corpus.Append(Interval(1, 2), {2});
  corpus.DeclareDomain(2);
  ASSERT_TRUE(corpus.Finalize().ok());

  ServeOptions options;
  options.time_shards = 64;  // domain has 3 points; must clamp, not crash
  StatusOr<std::unique_ptr<ServeEngine>> engine =
      ServeEngine::Create(corpus, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_LE((*engine)->time_shards(), 3u);
  EXPECT_EQ(MustGet((*engine)->Submit(Query(Interval(0, 2), {1}))), Ids{0});
}

// The server loop speaks the documented protocol over plain streams.
TEST(ServerLoopTest, SpeaksTheLineProtocol) {
  Corpus corpus;
  corpus.Append(Interval(0, 10), {1, 2});
  corpus.Append(Interval(5, 20), {2, 3});
  corpus.DeclareDomain(1000);
  ASSERT_TRUE(corpus.Finalize().ok());

  ServeOptions options;
  options.time_shards = 2;
  StatusOr<std::unique_ptr<ServeEngine>> engine =
      ServeEngine::Create(corpus, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  std::istringstream in(
      "# comment\n"
      "\n"
      "query 0 10 2\n"
      "insert 8 30 2 9\n"
      "query 0 10 2\n"
      "erase 0 0 10 1 2\n"
      "query 0 10 2\n"
      "bogus\n"
      "stats\n"
      "flush\n"
      "quit\n"
      "query 0 10 2\n");  // after quit: must not run
  std::ostringstream out;
  const size_t commands = RunServerLoop(engine->get(), in, out);
  EXPECT_EQ(commands, 9u);

  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "OK 2 0 1");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "OK id=2");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "OK 3 0 1 2");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "OK");  // erase
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "OK 2 1 2");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.substr(0, 3), "ERR");  // bogus command
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.substr(0, 11), "stat shards");
  bool saw_bye = false;
  while (std::getline(lines, line)) saw_bye = (line == "BYE");
  EXPECT_TRUE(saw_bye);
}

}  // namespace
}  // namespace serve
}  // namespace irhint

#include "common/status.h"

#include <gtest/gtest.h>

namespace irhint {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad m");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad m");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad m");
}

TEST(StatusTest, AllConstructorsSetMatchingPredicate) {
  EXPECT_TRUE(Status::OutOfDomain("x").IsOutOfDomain());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
}

TEST(StatusTest, UnavailableRenders) {
  EXPECT_EQ(Status::Unavailable("queue full").ToString(),
            "Unavailable: queue full");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

Status Fails() { return Status::NotFound("gone"); }

Status Propagates() {
  IRHINT_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Propagates().IsNotFound());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::IoError("disk"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIoError());
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("payload"));
  std::string s = std::move(result).value();
  EXPECT_EQ(s, "payload");
}

}  // namespace
}  // namespace irhint

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "interval_baselines/grid1d.h"
#include "interval_baselines/interval_tree.h"

namespace irhint {
namespace {

std::vector<ObjectId> BruteForce(const std::vector<IntervalRecord>& records,
                                 const Interval& q) {
  std::vector<ObjectId> out;
  for (const IntervalRecord& rec : records) {
    if (Overlaps(rec.interval, q)) out.push_back(rec.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<IntervalRecord> RandomRecords(size_t n, Time domain_end,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<IntervalRecord> records;
  for (size_t i = 0; i < n; ++i) {
    const Time st = rng.Uniform(domain_end + 1);
    const Time max_len = rng.NextBool(0.2) ? domain_end / 2 + 1 : 30;
    const Time end = std::min<Time>(domain_end, st + rng.Uniform(max_len));
    records.push_back(IntervalRecord{static_cast<ObjectId>(i),
                                     Interval(st, end)});
  }
  return records;
}

std::vector<ObjectId> Sorted(std::vector<ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class Grid1DPartitionsTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(Grid1DPartitionsTest, MatchesBruteForceWithoutDuplicates) {
  const Time domain_end = 997;
  const auto records = RandomRecords(300, domain_end, 21);
  Grid1D grid;
  Grid1DOptions options;
  options.num_partitions = GetParam();
  ASSERT_TRUE(grid.Build(records, domain_end, options).ok());

  Rng rng(22);
  std::vector<ObjectId> out;
  for (int i = 0; i < 300; ++i) {
    const Time st = rng.Uniform(domain_end + 1);
    const Time end = std::min<Time>(domain_end, st + rng.Uniform(300));
    out.clear();
    grid.RangeQuery(Interval(st, end), &out);
    const auto sorted = Sorted(out);
    EXPECT_EQ(sorted, BruteForce(records, Interval(st, end)));
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
  }
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, Grid1DPartitionsTest,
                         ::testing::Values(1, 2, 7, 16, 64, 255));

TEST(Grid1DTest, EraseTombstonesAllReplicas) {
  Grid1D grid;
  Grid1DOptions options;
  options.num_partitions = 8;
  const std::vector<IntervalRecord> records{{1, Interval(0, 900)},
                                            {2, Interval(100, 150)}};
  ASSERT_TRUE(grid.Build(records, 999, options).ok());
  ASSERT_TRUE(grid.Erase(1, Interval(0, 900)).ok());
  std::vector<ObjectId> out;
  grid.RangeQuery(Interval(0, 999), &out);
  EXPECT_EQ(out, std::vector<ObjectId>{2});
  EXPECT_TRUE(grid.Erase(1, Interval(0, 900)).IsNotFound());
}

TEST(Grid1DTest, RejectsOutOfDomain) {
  Grid1D grid;
  ASSERT_TRUE(grid.Build({}, 100, Grid1DOptions{}).ok());
  EXPECT_TRUE(grid.Insert(1, Interval(90, 200)).IsOutOfDomain());
  EXPECT_TRUE(grid.Insert(1, Interval(50, 10)).IsInvalidArgument());
}

TEST(IntervalTreeTest, MatchesBruteForce) {
  const Time domain_end = 2047;
  const auto records = RandomRecords(500, domain_end, 31);
  IntervalTree tree;
  ASSERT_TRUE(tree.Build(records, domain_end).ok());

  Rng rng(32);
  std::vector<ObjectId> out;
  for (int i = 0; i < 400; ++i) {
    const Time st = rng.Uniform(domain_end + 1);
    const Time end = std::min<Time>(domain_end, st + rng.Uniform(500));
    out.clear();
    tree.RangeQuery(Interval(st, end), &out);
    EXPECT_EQ(Sorted(out), BruteForce(records, Interval(st, end)));
  }
}

TEST(IntervalTreeTest, StabbingQueries) {
  const Time domain_end = 511;
  const auto records = RandomRecords(200, domain_end, 33);
  IntervalTree tree;
  ASSERT_TRUE(tree.Build(records, domain_end).ok());
  std::vector<ObjectId> out;
  for (Time t = 0; t <= domain_end; t += 3) {
    out.clear();
    tree.RangeQuery(Interval(t, t), &out);
    EXPECT_EQ(Sorted(out), BruteForce(records, Interval(t, t)));
  }
}

TEST(IntervalTreeTest, EraseAndDoubleErase) {
  const std::vector<IntervalRecord> records{{1, Interval(10, 60)},
                                            {2, Interval(40, 45)}};
  IntervalTree tree;
  ASSERT_TRUE(tree.Build(records, 100).ok());
  ASSERT_TRUE(tree.Erase(1, Interval(10, 60)).ok());
  std::vector<ObjectId> out;
  tree.RangeQuery(Interval(0, 100), &out);
  EXPECT_EQ(out, std::vector<ObjectId>{2});
  EXPECT_TRUE(tree.Erase(1, Interval(10, 60)).IsNotFound());
  EXPECT_TRUE(tree.Erase(9, Interval(0, 5)).IsNotFound());
}

TEST(IntervalTreeTest, EmptyTree) {
  IntervalTree tree;
  ASSERT_TRUE(tree.Build({}, 100).ok());
  std::vector<ObjectId> out;
  tree.RangeQuery(Interval(0, 100), &out);
  EXPECT_TRUE(out.empty());
}

TEST(IntervalTreeTest, AllRecordsAtOnePoint) {
  std::vector<IntervalRecord> records;
  for (ObjectId i = 0; i < 50; ++i) {
    records.push_back(IntervalRecord{i, Interval(7, 7)});
  }
  IntervalTree tree;
  ASSERT_TRUE(tree.Build(records, 15).ok());
  std::vector<ObjectId> out;
  tree.RangeQuery(Interval(7, 7), &out);
  EXPECT_EQ(out.size(), 50u);
  out.clear();
  tree.RangeQuery(Interval(8, 15), &out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace irhint

// Tests of the ranked-retrieval subsystem (src/rank/): the acceptance
// property is byte-identical agreement between the MaxScore traversal
// (TopKQuery) and the exhaustive oracle (TopKOracle) on every workload —
// across index kinds, k values, score ties, live updates, WAL replay,
// snapshot roundtrips and the sharded serving engine — while the work
// counters prove the traversal actually pruned.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/durable_index.h"
#include "core/factory.h"
#include "data/query_gen.h"
#include "data/synthetic.h"
#include "rank/scored_index.h"
#include "serve/engine.h"
#include "serve/server_loop.h"
#include "storage/index_io.h"

namespace irhint {
namespace {

using Hits = std::vector<ScoredHit>;

std::string TempPath(const std::string& name) {
  std::string unique = name;
  if (const auto* info =
          ::testing::UnitTest::GetInstance()->current_test_info()) {
    unique = std::string(info->test_suite_name()) + "_" + info->name() + "_" +
             name;
    for (char& c : unique) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.') c = '_';
    }
  }
  return std::string(::testing::TempDir()) + "/" + unique;
}

Corpus MakeCorpus(uint64_t cardinality = 2000, uint64_t seed = 17) {
  SyntheticParams params;
  params.cardinality = cardinality;
  params.domain = 200000;
  params.sigma = 20000;
  params.dictionary_size = 200;
  params.description_size = 5;
  params.seed = seed;
  return GenerateSynthetic(params);
}

std::vector<Query> MakeQueries(const Corpus& corpus, size_t count = 60) {
  WorkloadGenerator generator(corpus, /*seed=*/3);
  std::vector<Query> queries = generator.ExtentWorkload(0.5, 2, count / 3);
  const std::vector<Query> wide = generator.ExtentWorkload(5.0, 3, count / 3);
  queries.insert(queries.end(), wide.begin(), wide.end());
  const std::vector<Query> stabs = generator.ExtentWorkload(0.0, 1, count / 3);
  queries.insert(queries.end(), stabs.begin(), stabs.end());
  return queries;
}

Hits MustTopK(const TemporalIrIndex& index, const Query& query, uint32_t k) {
  Hits hits;
  const Status status = index.TopKQuery(query, k, &hits);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return hits;
}

Hits MustOracle(const ScoredIndex& index, const Query& query, uint32_t k) {
  Hits hits;
  const Status status = index.TopKOracle(query, k, &hits);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return hits;
}

std::string HitsString(const Hits& hits) {
  std::ostringstream out;
  for (const ScoredHit& hit : hits) out << hit.id << ":" << hit.score << " ";
  return out.str();
}

TEST(ImpactScoreTest, PureFunctionOfTermAndEnd) {
  // Deterministic, always >= 1 for a live posting, fits the u16 quantizer.
  EXPECT_EQ(ImpactScore(0, 0), ImpactScore(0, 0));
  EXPECT_GE(ImpactScore(0, 0), 1u);
  EXPECT_GE(ImpactScore(123, 456), 1u);
  // Longer-lived objects never score lower for the same term (LogQuant16
  // is monotone in its argument).
  EXPECT_LE(ImpactScore(7, 100), ImpactScore(7, 1000000));
  // The saturation guard: the maximal end must not wrap to impact 1.
  EXPECT_GE(ImpactScore(7, static_cast<Time>(-1)), ImpactScore(7, 1000000));
}

TEST(FactoryTest, ScoredKindsAndTopKSupport) {
  const std::vector<IndexKind> scored = ScoredIndexKinds();
  ASSERT_EQ(scored.size(), 2u);
  for (const IndexKind kind : scored) {
    EXPECT_TRUE(KindSupportsTopK(kind)) << IndexKindName(kind);
    std::unique_ptr<TemporalIrIndex> index = CreateIndex(kind);
    EXPECT_EQ(index->Kind(), kind);
  }
  for (const IndexKind kind : AllIndexKinds()) {
    EXPECT_FALSE(KindSupportsTopK(kind)) << IndexKindName(kind);
  }
}

TEST(ScoredIndexTest, PlainKindsReportNotSupported) {
  const Corpus corpus = MakeCorpus(300);
  std::unique_ptr<TemporalIrIndex> index = CreateIndex(IndexKind::kIrHintPerf);
  ASSERT_TRUE(index->Build(corpus).ok());
  Hits hits;
  const Status status =
      index->TopKQuery(Query(Interval(0, 1000), {1, 2}), 10, &hits);
  EXPECT_TRUE(status.IsNotSupported()) << status.ToString();
}

// The core acceptance property: the MaxScore traversal returns exactly the
// oracle's ids AND scores for both scored kinds, every workload shape and
// k in {1, 10, 100}. Boolean results must also match the wrapped kind.
TEST(ScoredIndexTest, TopKMatchesOracleAcrossKindsAndK) {
  const Corpus corpus = MakeCorpus();
  const std::vector<Query> queries = MakeQueries(corpus);
  Hits reference;  // scored-tif answer, to cross-check kinds against
  for (const IndexKind kind : ScoredIndexKinds()) {
    std::unique_ptr<TemporalIrIndex> index = CreateIndex(kind);
    ASSERT_TRUE(index->Build(corpus).ok());
    auto* scored = dynamic_cast<ScoredIndex*>(index.get());
    ASSERT_NE(scored, nullptr);
    for (const uint32_t k : {1u, 10u, 100u}) {
      for (size_t i = 0; i < queries.size(); ++i) {
        const Hits got = MustTopK(*index, queries[i], k);
        const Hits want = MustOracle(*scored, queries[i], k);
        ASSERT_EQ(got, want)
            << IndexKindName(kind) << " query " << i << " k=" << k << "\n got "
            << HitsString(got) << "\nwant " << HitsString(want);
      }
    }
    // Kind-independence: scored-tif (1 division) and scored-irhint (32
    // divisions) must agree hit-for-hit — impacts are a pure function of
    // the posting, never of the store geometry.
    const Hits all = MustTopK(*index, queries.front(), 100);
    if (reference.empty()) {
      reference = all;
    } else {
      EXPECT_EQ(all, reference);
    }
  }
}

TEST(ScoredIndexTest, ScoreTiesBreakByAscendingId) {
  // Identical intervals and descriptions => identical scores; the total
  // order must then fall back to ascending id, traversal and oracle alike.
  Corpus corpus;
  for (int i = 0; i < 50; ++i) corpus.Append(Interval(100, 200), {1, 2});
  ASSERT_TRUE(corpus.Finalize().ok());
  for (const IndexKind kind : ScoredIndexKinds()) {
    std::unique_ptr<TemporalIrIndex> index = CreateIndex(kind);
    ASSERT_TRUE(index->Build(corpus).ok());
    const Hits hits = MustTopK(*index, Query(Interval(150, 160), {1, 2}), 10);
    ASSERT_EQ(hits.size(), 10u);
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].id, static_cast<ObjectId>(i));
      EXPECT_EQ(hits[i].score, hits[0].score);
    }
    auto* scored = dynamic_cast<ScoredIndex*>(index.get());
    ASSERT_NE(scored, nullptr);
    EXPECT_EQ(hits, MustOracle(*scored, Query(Interval(150, 160), {1, 2}), 10));
  }
}

TEST(ScoredIndexTest, EdgeCases) {
  const Corpus corpus = MakeCorpus(200);
  std::unique_ptr<TemporalIrIndex> index =
      CreateIndex(IndexKind::kScoredIrHint);
  ASSERT_TRUE(index->Build(corpus).ok());
  auto* scored = dynamic_cast<ScoredIndex*>(index.get());
  ASSERT_NE(scored, nullptr);

  // k far beyond the result set returns every match, still ranked.
  const Query query(Interval(0, 200000), {1});
  const Hits all = MustTopK(*index, query, 100000);
  EXPECT_EQ(all, MustOracle(*scored, query, 100000));
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_TRUE(ScoredBetter(all[i - 1], all[i]));
  }

  // k == 0 and element-less queries are empty, not errors.
  EXPECT_TRUE(MustTopK(*index, query, 0).empty());
  EXPECT_TRUE(MustTopK(*index, Query(Interval(0, 1000), {}), 10).empty());

  // Inverted intervals are rejected.
  Hits hits;
  EXPECT_TRUE(
      index->TopKQuery(Query(Interval(10, 5), {1}), 3, &hits)
          .IsInvalidArgument());
}

TEST(ScoredIndexTest, CountersProvePruning) {
  const Corpus corpus = MakeCorpus(4000);
  const std::vector<Query> queries = MakeQueries(corpus);
  std::unique_ptr<TemporalIrIndex> index =
      CreateIndex(IndexKind::kScoredIrHint);
  ASSERT_TRUE(index->Build(corpus).ok());
  auto* scored = dynamic_cast<ScoredIndex*>(index.get());
  ASSERT_NE(scored, nullptr);
  index->EnableStats(true);

  Hits hits;
  for (const Query& query : queries) {
    ASSERT_TRUE(index->TopKQuery(query, 10, &hits).ok());
  }
  const QueryCounters topk = *index->Stats();
  index->ResetStats();
  for (const Query& query : queries) {
    ASSERT_TRUE(scored->TopKOracle(query, 10, &hits).ok());
  }
  const QueryCounters oracle = *index->Stats();

  EXPECT_GT(topk.postings_scored, 0u);
  EXPECT_LT(topk.postings_scored, oracle.postings_scored);
  EXPECT_GT(topk.blocks_skipped + topk.divisions_skipped, 0u);
  EXPECT_EQ(oracle.blocks_skipped, 0u);

  // Boolean queries leave the ranked counters untouched.
  index->ResetStats();
  std::vector<ObjectId> ids;
  for (const Query& query : queries) index->Query(query, &ids);
  const QueryCounters boolean = *index->Stats();
  EXPECT_EQ(boolean.postings_scored, 0u);
  EXPECT_EQ(boolean.blocks_skipped, 0u);
  EXPECT_EQ(boolean.divisions_skipped, 0u);
}

TEST(ScoredIndexTest, LiveInsertAndEraseKeepOracleAgreement) {
  const Corpus corpus = MakeCorpus(1000);
  const std::vector<Query> queries = MakeQueries(corpus);
  for (const IndexKind kind : ScoredIndexKinds()) {
    std::unique_ptr<TemporalIrIndex> index = CreateIndex(kind);
    ASSERT_TRUE(index->Build(corpus.Prefix(800)).ok());
    auto* scored = dynamic_cast<ScoredIndex*>(index.get());
    ASSERT_NE(scored, nullptr);
    // Insert the tail live (delta overlay), erase every third object of it.
    for (size_t i = 800; i < corpus.size(); ++i) {
      ASSERT_TRUE(index->Insert(corpus.object(static_cast<ObjectId>(i))).ok());
    }
    for (size_t i = 800; i < corpus.size(); i += 3) {
      ASSERT_TRUE(index->Erase(corpus.object(static_cast<ObjectId>(i))).ok());
    }
    for (const Query& query : queries) {
      const Hits got = MustTopK(*index, query, 10);
      ASSERT_EQ(got, MustOracle(*scored, query, 10)) << IndexKindName(kind);
      // Erased ids must be gone.
      for (const ScoredHit& hit : got) {
        EXPECT_TRUE(hit.id < 800 || (hit.id - 800) % 3 != 0);
      }
    }
    EXPECT_TRUE(index->IntegrityCheck(CheckLevel::kDeep).ok());
  }
}

TEST(ScoredIndexTest, DurableReplayMatchesDirect) {
  const Corpus corpus = MakeCorpus(600);
  const std::vector<Query> queries = MakeQueries(corpus, 30);
  const std::string dir = TempPath("wal");
  std::filesystem::remove_all(dir);

  // A direct (non-durable) scored index fed the same update stream is the
  // reference; impacts are pure functions, so replay must reproduce it.
  // Built empty first, matching the recovery path's insert-only start.
  std::unique_ptr<TemporalIrIndex> direct =
      CreateIndex(IndexKind::kScoredIrHint);
  Corpus empty;
  empty.DeclareDomain(corpus.domain_end());
  ASSERT_TRUE(empty.Finalize().ok());
  ASSERT_TRUE(direct->Build(empty).ok());
  DurableIndexOptions options;
  options.kind = IndexKind::kScoredIrHint;
  {
    StatusOr<std::unique_ptr<DurableIndex>> opened =
        DurableIndex::Open(dir, options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    for (const Object& object : corpus.objects()) {
      ASSERT_TRUE((*opened)->Insert(object).ok());
      ASSERT_TRUE(direct->Insert(object).ok());
    }
    for (ObjectId id = 0; id < 100; id += 5) {
      ASSERT_TRUE((*opened)->Erase(corpus.object(id)).ok());
      ASSERT_TRUE(direct->Erase(corpus.object(id)).ok());
    }
    ASSERT_TRUE((*opened)->Flush().ok());
    for (const Query& query : queries) {
      EXPECT_EQ(MustTopK(**opened, query, 10), MustTopK(*direct, query, 10));
    }
  }
  // Reopen: recovery replays the WAL into a fresh scored index.
  StatusOr<std::unique_ptr<DurableIndex>> reopened =
      DurableIndex::Open(dir, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  for (const Query& query : queries) {
    EXPECT_EQ(MustTopK(**reopened, query, 10), MustTopK(*direct, query, 10));
  }
  EXPECT_TRUE((*reopened)->IntegrityCheck(CheckLevel::kDeep).ok());
  std::filesystem::remove_all(dir);
}

TEST(ScoredIndexTest, SnapshotRoundtripBufferedAndMmap) {
  const Corpus corpus = MakeCorpus(1200);
  const std::vector<Query> queries = MakeQueries(corpus, 30);
  for (const IndexKind kind : ScoredIndexKinds()) {
    std::unique_ptr<TemporalIrIndex> built = CreateIndex(kind);
    ASSERT_TRUE(built->Build(corpus).ok());
    const std::string path =
        TempPath(std::string(IndexKindName(kind)) + ".irh");
    ASSERT_TRUE(SaveIndex(*built, path).ok());
    for (const bool use_mmap : {false, true}) {
      SnapshotReadOptions options;
      options.use_mmap = use_mmap;
      StatusOr<LoadedIndex> loaded = LoadIndexSnapshot(path, options);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      EXPECT_EQ(loaded->index->Kind(), kind);
      EXPECT_TRUE(loaded->index->IntegrityCheck(CheckLevel::kDeep).ok());
      for (const Query& query : queries) {
        for (const uint32_t k : {1u, 10u, 100u}) {
          EXPECT_EQ(MustTopK(*loaded->index, query, k),
                    MustTopK(*built, query, k))
              << IndexKindName(kind) << (use_mmap ? " mmap" : " buffered");
        }
      }
    }
    std::remove(path.c_str());
  }
}

TEST(ServeTopKTest, EngineMatchesDirectIndexAcrossGeometries) {
  const Corpus corpus = MakeCorpus(1500);
  const std::vector<Query> queries = MakeQueries(corpus);
  std::unique_ptr<TemporalIrIndex> direct =
      CreateIndex(IndexKind::kScoredIrHint);
  ASSERT_TRUE(direct->Build(corpus).ok());

  struct Geometry {
    uint32_t shards, buckets;
  };
  for (const Geometry g : {Geometry{1, 1}, Geometry{3, 2}}) {
    serve::ServeOptions options;
    options.time_shards = g.shards;
    options.term_buckets = g.buckets;
    options.kind = IndexKind::kScoredIrHint;
    StatusOr<std::unique_ptr<serve::ServeEngine>> engine =
        serve::ServeEngine::Create(corpus, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    for (const Query& query : queries) {
      for (const uint32_t k : {1u, 10u}) {
        StatusOr<Hits> got = (*engine)->ExecuteTopK(query, k);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_EQ(*got, MustTopK(*direct, query, k))
            << g.shards << "x" << g.buckets;
      }
    }
  }
}

TEST(ServeTopKTest, LiveUpdatesStayConsistent) {
  const Corpus corpus = MakeCorpus(800);
  serve::ServeOptions options;
  options.time_shards = 3;
  options.term_buckets = 2;
  options.kind = IndexKind::kScoredIrHint;
  StatusOr<std::unique_ptr<serve::ServeEngine>> engine =
      serve::ServeEngine::Create(corpus, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Mirror the engine's update stream into a direct scored index.
  std::unique_ptr<TemporalIrIndex> direct =
      CreateIndex(IndexKind::kScoredIrHint);
  ASSERT_TRUE(direct->Build(corpus).ok());
  std::vector<Object> inserted;
  for (int i = 0; i < 40; ++i) {
    const Interval interval(1000 * static_cast<Time>(i),
                            1000 * static_cast<Time>(i) + 5000);
    std::vector<ElementId> elements = {static_cast<ElementId>(i % 7),
                                       static_cast<ElementId>(50 + i % 3)};
    StatusOr<ObjectId> id = (*engine)->AppendInsert(interval, elements);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    Object object(*id, interval, elements);
    std::sort(object.elements.begin(), object.elements.end());
    ASSERT_TRUE(direct->Insert(object).ok());
    inserted.push_back(std::move(object));
  }
  for (size_t i = 0; i < inserted.size(); i += 4) {
    ASSERT_TRUE((*engine)->Erase(inserted[i]).ok());
    ASSERT_TRUE(direct->Erase(inserted[i]).ok());
  }
  (*engine)->WaitIdle();

  const std::vector<Query> queries = MakeQueries(corpus, 30);
  for (const Query& query : queries) {
    StatusOr<Hits> got = (*engine)->ExecuteTopK(query, 10);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, MustTopK(*direct, query, 10));
  }
}

TEST(ServeTopKTest, PlainKindFailsLegsWithNotSupported) {
  const Corpus corpus = MakeCorpus(300);
  serve::ServeOptions options;
  options.time_shards = 2;
  options.kind = IndexKind::kIrHintPerf;
  StatusOr<std::unique_ptr<serve::ServeEngine>> engine =
      serve::ServeEngine::Create(corpus, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  StatusOr<Hits> result =
      (*engine)->ExecuteTopK(Query(Interval(0, 200000), {1}), 5);
  EXPECT_TRUE(result.status().IsNotSupported())
      << result.status().ToString();
}

TEST(ServeTopKTest, ServerLoopSpeaksTopk) {
  const Corpus corpus = MakeCorpus(500);
  serve::ServeOptions options;
  options.time_shards = 2;
  options.kind = IndexKind::kScoredIrHint;
  StatusOr<std::unique_ptr<serve::ServeEngine>> engine =
      serve::ServeEngine::Create(corpus, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  std::unique_ptr<TemporalIrIndex> direct =
      CreateIndex(IndexKind::kScoredIrHint);
  ASSERT_TRUE(direct->Build(corpus).ok());
  const Hits want = MustTopK(*direct, Query(Interval(0, 200000), {1, 2}), 3);
  std::ostringstream expected;
  expected << "OK " << want.size();
  for (const ScoredHit& hit : want) expected << " " << hit.id << ":"
                                             << hit.score;

  std::istringstream in(
      "topk 3 0 200000 1 2\n"
      "topk\n"
      "quit\n");
  std::ostringstream out;
  serve::RunServerLoop(engine->get(), in, out);
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, expected.str());
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("ERR", 0), 0u) << line;
}

// Concurrent ranked and Boolean traffic through the engine: every thread
// must see exactly the single-threaded answer (this is the test the TSan
// CI job runs to certify the new path).
TEST(ServeTopKTest, ConcurrentSubmittersSeeConsistentResults) {
  const Corpus corpus = MakeCorpus(1000);
  const std::vector<Query> queries = MakeQueries(corpus, 24);
  serve::ServeOptions options;
  options.time_shards = 2;
  options.term_buckets = 2;
  options.kind = IndexKind::kScoredIrHint;
  StatusOr<std::unique_ptr<serve::ServeEngine>> engine =
      serve::ServeEngine::Create(corpus, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  std::vector<Hits> expected;
  for (const Query& query : queries) {
    StatusOr<Hits> hits = (*engine)->ExecuteTopK(query, 10);
    ASSERT_TRUE(hits.ok());
    expected.push_back(*std::move(hits));
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 10;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      std::vector<ObjectId> ids;
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < queries.size(); ++i) {
          StatusOr<Hits> hits = (*engine)->ExecuteTopK(queries[i], 10);
          if (!hits.ok() || *hits != expected[i]) mismatches[t]++;
          // Interleave Boolean traffic over the same shards.
          StatusOr<std::vector<ObjectId>> boolean =
              (*engine)->Execute(queries[i]);
          if (!boolean.ok()) mismatches[t]++;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << t;
}

}  // namespace
}  // namespace irhint

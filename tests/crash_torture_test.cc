// Crash-torture harness for the durable ingestion stack. Each iteration
// drives a DurableIndex through a randomized insert/erase stream on a
// fault-injecting filesystem that "loses power" at a random mutating
// operation — possibly mid-record, mid-fsync, or mid-checkpoint. The
// crash state is then materialized (synced prefix + random unsynced tail,
// optionally with a flipped bit), recovered with the real environment, and
// checked differentially: the recovered index must answer exactly like a
// NaiveScan reference replay of the LSN prefix the log retained, and that
// prefix must cover every LSN the writer acknowledged as synced.
//
// Knobs (environment variables, for the CI soak loop):
//   IRHINT_TORTURE_ITERS   iterations per test run (default 8)
//   IRHINT_TORTURE_OPS     max update ops per iteration (default 400)
//   IRHINT_TORTURE_SEED    base RNG seed (default 20250805)

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/durable_index.h"
#include "core/factory.h"
#include "wal/fault_env.h"
#include "wal/recovery.h"
#include "wal/wal_env.h"

namespace irhint {
namespace {

using Ids = std::vector<ObjectId>;

uint64_t EnvKnob(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0'
             ? std::strtoull(value, nullptr, 10)
             : fallback;
}

std::string TortureDir(uint64_t iteration) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = std::string(info->test_suite_name()) + "_" + info->name();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return std::string(::testing::TempDir()) + "/torture_" + name + "_" +
         std::to_string(iteration);
}

/// One acknowledged-or-attempted update with the LSN its record carries if
/// it made it into the log (captured as next_lsn() before the call — the
/// op's own record is always logged before any rotate/checkpoint marker
/// the same call may emit).
struct LoggedOp {
  uint64_t lsn = 0;
  bool is_erase = false;
  Object object;
};

Object TortureObject(ObjectId id, std::mt19937_64* rng) {
  Object o;
  o.id = id;
  const uint64_t st = (*rng)() % 100000;
  o.interval = Interval(st, st + 1 + (*rng)() % 5000);
  const size_t n = 1 + (*rng)() % 6;
  for (size_t i = 0; i < n; ++i) o.elements.push_back((*rng)() % 40);
  std::sort(o.elements.begin(), o.elements.end());
  o.elements.erase(std::unique(o.elements.begin(), o.elements.end()),
                   o.elements.end());
  return o;
}

std::vector<Query> TortureQueries(std::mt19937_64* rng) {
  std::vector<Query> queries;
  for (int i = 0; i < 40; ++i) {
    const uint64_t st = (*rng)() % 100000;
    std::vector<ElementId> elements = {
        static_cast<ElementId>((*rng)() % 40)};
    if (i % 3 == 0) elements.push_back(static_cast<ElementId>((*rng)() % 40));
    std::sort(elements.begin(), elements.end());
    elements.erase(std::unique(elements.begin(), elements.end()),
                   elements.end());
    queries.push_back(
        Query(Interval(st, st + 1 + (*rng)() % 20000), std::move(elements)));
  }
  return queries;
}

Ids Answer(const TemporalIrIndex& index, const Query& query) {
  Ids out;
  index.Query(query, &out);
  std::sort(out.begin(), out.end());
  return out;
}

/// NaiveScan holding the replay of every logged op with lsn <= last_lsn.
std::unique_ptr<TemporalIrIndex> ReferenceReplay(
    const std::vector<LoggedOp>& ops, uint64_t last_lsn) {
  std::unique_ptr<TemporalIrIndex> reference =
      CreateIndex(IndexKind::kNaiveScan);
  Corpus empty;
  empty.DeclareDomain(1);
  EXPECT_TRUE(empty.Finalize().ok());
  EXPECT_TRUE(reference->Build(empty).ok());
  for (const LoggedOp& op : ops) {
    if (op.lsn > last_lsn) break;  // ops are logged in LSN order
    const Status st = op.is_erase ? reference->Erase(op.object)
                                  : reference->Insert(op.object);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return reference;
}

void RunTortureIteration(uint64_t iteration, uint64_t base_seed,
                         uint64_t max_ops, bool flip_bits) {
  SCOPED_TRACE("iteration " + std::to_string(iteration) +
               " seed=" + std::to_string(base_seed) +
               " flip=" + std::to_string(flip_bits));
  std::mt19937_64 rng(base_seed + 7919 * iteration);
  const std::string dir = TortureDir(iteration);
  std::filesystem::remove_all(dir);

  FaultInjectingWalEnv fault(DefaultWalEnv());
  DurableIndexOptions options;
  options.kind = iteration % 2 == 0 ? IndexKind::kIrHintPerf
                                    : IndexKind::kTifHintSlicing;
  options.durability =
      iteration % 3 == 0 ? WalDurability::kAlways : WalDurability::kBatch;
  options.batch_bytes = 512;  // sync every handful of records
  options.checkpoint_bytes = 2048;
  options.background_checkpoint = false;  // keep the op stream deterministic
  auto opened = DurableIndex::Open(dir, options, &fault);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  DurableIndex* index = opened->get();

  // Crash somewhere inside the update stream (each insert is >= 1 op, plus
  // periodic sync/rotate/snapshot bursts). A budget beyond the stream's
  // total op count yields a clean-shutdown iteration, also worth checking.
  fault.ArmCrash(1 + rng() % (2 * max_ops), rng());

  std::vector<LoggedOp> ops;
  std::vector<Object> live;  // erase candidates
  uint64_t max_acked_synced_lsn = 0;
  ObjectId next_id = 0;
  for (uint64_t i = 0; i < max_ops; ++i) {
    LoggedOp op;
    op.is_erase = !live.empty() && rng() % 5 == 0;
    if (op.is_erase) {
      const size_t pick = rng() % live.size();
      op.object = live[pick];
      live.erase(live.begin() + pick);
    } else {
      op.object = TortureObject(next_id++, &rng);
    }
    op.lsn = index->next_lsn();
    ops.push_back(op);
    const Status st =
        op.is_erase ? index->Erase(op.object) : index->Insert(op.object);
    if (!st.ok()) {
      ASSERT_TRUE(fault.crashed()) << st.ToString();
      break;
    }
    if (!op.is_erase) live.push_back(op.object);
    if (rng() % 32 == 0 && !index->Flush().ok()) {
      ASSERT_TRUE(fault.crashed());
      break;
    }
    max_acked_synced_lsn =
        std::max(max_acked_synced_lsn, index->last_synced_lsn());
  }
  const bool crashed = fault.crashed();
  opened->reset();  // destructor's best-effort sync fails after the crash

  if (crashed) {
    ASSERT_TRUE(fault.MaterializeCrashState(&rng, flip_bits).ok());
  } else {
    // Clean shutdown: the destructor synced, so everything is durable.
    max_acked_synced_lsn = ops.empty() ? 0 : ops.back().lsn;
  }

  // Recover with the REAL environment — the disk now looks exactly like
  // what a machine reboot would present.
  RecoveryOptions recovery_options;
  recovery_options.kind = options.kind;
  auto recovered = RecoveryManager(DefaultWalEnv(), dir).Recover(
      recovery_options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  // Durability: nothing acknowledged as synced may be lost.
  EXPECT_GE(recovered->last_lsn, max_acked_synced_lsn);

  // Differential check: the recovered state equals a reference replay of
  // the exact LSN prefix the log retained.
  std::unique_ptr<TemporalIrIndex> reference =
      ReferenceReplay(ops, recovered->last_lsn);
  std::mt19937_64 query_rng(base_seed ^ (iteration << 20));
  const std::vector<Query> queries = TortureQueries(&query_rng);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(Answer(*recovered->index, queries[i]),
              Answer(*reference, queries[i]))
        << "query " << i << " diverges after recovery";
  }
  recovered->index.reset();

  // The directory must be fully operational again: reopen, ingest more,
  // survive another clean close.
  auto reopened = DurableIndex::Open(dir, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ObjectId id = static_cast<ObjectId>((*reopened)->next_object_id());
  for (int i = 0; i < 25; ++i) {
    const Object object = TortureObject(id++, &rng);
    ASSERT_TRUE((*reopened)->Insert(object).ok());
    ASSERT_TRUE(reference->Insert(object).ok());
  }
  ASSERT_TRUE((*reopened)->Flush().ok());
  reopened->reset();

  auto final_open = DurableIndex::Open(dir, options);
  ASSERT_TRUE(final_open.ok()) << final_open.status().ToString();
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(Answer(**final_open, queries[i]), Answer(*reference, queries[i]))
        << "query " << i << " diverges after post-recovery ingest";
  }
  final_open->reset();
  std::filesystem::remove_all(dir);
}

TEST(CrashTortureTest, FaultEnvCrashesAndMaterializes) {
  const std::string dir = TortureDir(0);
  std::filesystem::remove_all(dir);
  FaultInjectingWalEnv fault(DefaultWalEnv());
  ASSERT_TRUE(fault.CreateDirIfMissing(dir).ok());
  auto file = fault.NewWritableFile(dir + "/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("0123456789", 10).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  fault.ArmCrash(1, 99);
  const Status torn = (*file)->Append("abcdefghij", 10);
  EXPECT_TRUE(torn.IsIoError());
  EXPECT_TRUE(fault.crashed());
  EXPECT_TRUE((*file)->Sync().IsIoError());
  EXPECT_TRUE(fault.NewWritableFile(dir + "/g").status().IsIoError());
  EXPECT_TRUE(fault.FileExists(dir + "/f"));  // reads keep working

  std::mt19937_64 rng(7);
  ASSERT_TRUE(fault.MaterializeCrashState(&rng, /*flip_bits=*/true).ok());
  auto size = DefaultWalEnv()->FileSize(dir + "/f");
  ASSERT_TRUE(size.ok());
  EXPECT_GE(*size, 10u);  // the synced prefix always survives
  auto contents = DefaultWalEnv()->ReadFileToString(dir + "/f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->substr(0, 10), "0123456789");  // bit flips stay in the tail
  std::filesystem::remove_all(dir);
}

TEST(CrashTortureTest, RandomizedCrashRecoveryIsLossless) {
  const uint64_t iterations = EnvKnob("IRHINT_TORTURE_ITERS", 8);
  const uint64_t max_ops = EnvKnob("IRHINT_TORTURE_OPS", 400);
  const uint64_t seed = EnvKnob("IRHINT_TORTURE_SEED", 20250805);
  for (uint64_t i = 0; i < iterations; ++i) {
    RunTortureIteration(i, seed, max_ops, /*flip_bits=*/i % 2 == 1);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace irhint

// Tests for the annotated synchronization wrappers (common/synchronization.h)
// and, when IRHINT_DEBUG_LOCK_ORDER is compiled in, the runtime lock-order
// registry: recursive acquisition, same-name pairs, and A/B inversions must
// all abort with a message naming the locks involved.

#include "common/synchronization.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace irhint {
namespace {

TEST(SynchronizationTest, MutexSerializesIncrements) {
  Mutex mu{"test::counter"};
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, 4000);
}

TEST(SynchronizationTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu{"test::shared"};
  std::atomic<int> readers_inside{0};
  std::atomic<int> peak{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      ReaderLock lock(&mu);
      const int inside = readers_inside.fetch_add(1) + 1;
      int prev = peak.load();
      while (inside > prev && !peak.compare_exchange_weak(prev, inside)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      readers_inside.fetch_sub(1);
    });
  }
  go.store(true);
  for (std::thread& t : threads) t.join();
  // All four readers overlapped at least pairwise; a writer lock would have
  // forced peak == 1.
  EXPECT_GT(peak.load(), 1);
}

TEST(SynchronizationTest, WriterLockExcludesReaders) {
  SharedMutex mu{"test::rw"};
  std::atomic<bool> writing{false};
  int value = 0;
  std::thread writer([&] {
    WriterLock lock(&mu);
    writing.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    value = 42;
  });
  while (!writing.load()) std::this_thread::yield();
  {
    ReaderLock lock(&mu);
    EXPECT_EQ(value, 42);  // Reader cannot slip in mid-write.
  }
  writer.join();
}

TEST(SynchronizationTest, CondVarHandshake) {
  Mutex mu{"test::handshake"};
  CondVar cv;
  bool ready = false;
  int observed = -1;
  std::thread consumer([&] {
    mu.Lock();
    while (!ready) cv.Wait(&mu);
    observed = 1;
    mu.Unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  consumer.join();
  EXPECT_EQ(observed, 1);
}

#ifdef IRHINT_DEBUG_LOCK_ORDER

TEST(LockOrderTest, HeldCountTracksTheStack) {
  EXPECT_EQ(lock_order::HeldCount(), 0u);
  Mutex outer{"test::held_outer"};
  Mutex inner{"test::held_inner"};
  {
    MutexLock lock_outer(&outer);
    EXPECT_EQ(lock_order::HeldCount(), 1u);
    {
      MutexLock lock_inner(&inner);
      EXPECT_EQ(lock_order::HeldCount(), 2u);
    }
    EXPECT_EQ(lock_order::HeldCount(), 1u);
  }
  EXPECT_EQ(lock_order::HeldCount(), 0u);
}

TEST(LockOrderTest, CondVarWaitKeepsHeldCountConsistent) {
  Mutex mu{"test::wait_count"};
  CondVar cv;
  bool ready = false;
  std::thread consumer([&] {
    mu.Lock();
    while (!ready) {
      cv.Wait(&mu);
      // Reacquired: the stack must show the lock held again.
      EXPECT_EQ(lock_order::HeldCount(), 1u);
    }
    mu.Unlock();
    EXPECT_EQ(lock_order::HeldCount(), 0u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyAll();
  consumer.join();
}

TEST(LockOrderDeathTest, RecursiveAcquisitionAborts) {
  Mutex mu{"test::recursive"};
  mu.Lock();
  EXPECT_DEATH(mu.Lock(), "recursive acquisition of \"test::recursive\"");
  mu.Unlock();
}

TEST(LockOrderDeathTest, SameNamePairAborts) {
  // Names are class-level ranks: holding two locks of the same name means
  // the rank can deadlock against itself, so the registry rejects it.
  Mutex first{"test::dup_name"};
  Mutex second{"test::dup_name"};
  first.Lock();
  EXPECT_DEATH(second.Lock(), "two locks named \"test::dup_name\"");
  first.Unlock();
}

TEST(LockOrderDeathTest, InversionAbortsNamingBothLocks) {
  Mutex a{"test::inv_a"};
  Mutex b{"test::inv_b"};
  // Establish the order a -> b.
  a.Lock();
  b.Lock();
  b.Unlock();
  a.Unlock();
  // Acquire in the opposite order. No deadlock happens in this schedule —
  // the checker flags the *potential*, naming both participants.
  b.Lock();
  EXPECT_DEATH(a.Lock(),
               "lock-order inversion: acquiring \"test::inv_a\" while "
               "holding \"test::inv_b\"");
  b.Unlock();
}

TEST(LockOrderDeathTest, TransitiveInversionIsCaught) {
  // a -> b and b -> c established separately; c -> a closes a 3-cycle.
  Mutex a{"test::tri_a"};
  Mutex b{"test::tri_b"};
  Mutex c{"test::tri_c"};
  a.Lock();
  b.Lock();
  b.Unlock();
  a.Unlock();
  b.Lock();
  c.Lock();
  c.Unlock();
  b.Unlock();
  c.Lock();
  EXPECT_DEATH(a.Lock(),
               "lock-order inversion: acquiring \"test::tri_a\" while "
               "holding \"test::tri_c\"");
  c.Unlock();
}

#else  // !IRHINT_DEBUG_LOCK_ORDER

TEST(LockOrderTest, HeldCountIsZeroWhenCheckingIsCompiledOut) {
  Mutex mu{"test::off"};
  MutexLock lock(&mu);
  EXPECT_EQ(lock_order::HeldCount(), 0u);
}

#endif  // IRHINT_DEBUG_LOCK_ORDER

}  // namespace
}  // namespace irhint

// Tests for the bench harness (src/bench/harness.h): statistics must be
// exact on known inputs, the JSON report must round-trip bit-exactly
// through ParseBenchJson, and malformed documents must come back as a
// Status (never a crash) — the parser is a decode path.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/harness.h"

namespace irhint {
namespace bench {
namespace {

TEST(TrialStatsTest, EmptyInputIsAllZero) {
  const TrialStats stats = ComputeTrialStats({});
  EXPECT_EQ(stats.trials, 0u);
  EXPECT_EQ(stats.min, 0.0);
  EXPECT_EQ(stats.p99, 0.0);
}

TEST(TrialStatsTest, SingleSample) {
  const TrialStats stats = ComputeTrialStats({42.0});
  EXPECT_EQ(stats.trials, 1u);
  EXPECT_EQ(stats.min, 42.0);
  EXPECT_EQ(stats.max, 42.0);
  EXPECT_EQ(stats.mean, 42.0);
  EXPECT_EQ(stats.stddev, 0.0);
  EXPECT_EQ(stats.p50, 42.0);
  EXPECT_EQ(stats.p99, 42.0);
}

TEST(TrialStatsTest, KnownSamplesAreExact) {
  // Order must not matter; values chosen for exact binary arithmetic.
  const TrialStats stats = ComputeTrialStats({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(stats.trials, 4u);
  EXPECT_EQ(stats.min, 1.0);
  EXPECT_EQ(stats.max, 4.0);
  EXPECT_EQ(stats.mean, 2.5);
  // Sample stddev of {1,2,3,4}: sqrt(5/3).
  EXPECT_NEAR(stats.stddev, 1.2909944487358056, 1e-12);
  // Nearest rank: p50 over 4 samples = 2nd smallest.
  EXPECT_EQ(stats.p50, 2.0);
  EXPECT_EQ(stats.p90, 4.0);
  EXPECT_EQ(stats.p99, 4.0);
}

TEST(TrialStatsTest, NearestRankPercentiles) {
  std::vector<double> sorted;
  for (int i = 1; i <= 100; ++i) sorted.push_back(static_cast<double>(i));
  EXPECT_EQ(PercentileSorted(sorted, 0.0), 1.0);
  EXPECT_EQ(PercentileSorted(sorted, 1.0), 1.0);
  EXPECT_EQ(PercentileSorted(sorted, 50.0), 50.0);
  EXPECT_EQ(PercentileSorted(sorted, 99.0), 99.0);
  EXPECT_EQ(PercentileSorted(sorted, 100.0), 100.0);
  EXPECT_EQ(PercentileSorted({}, 50.0), 0.0);
}

TEST(TrialStatsTest, MeasureTrialsRunsWarmupThenTrials) {
  MeasureOptions options;
  options.warmup = 2;
  options.trials = 5;
  int calls = 0;
  const TrialStats stats = MeasureTrials(options, [&calls]() {
    ++calls;
    return static_cast<double>(calls);
  });
  EXPECT_EQ(calls, 7);
  EXPECT_EQ(stats.trials, 5u);
  // Warmup samples (1, 2) are discarded; trials are 3..7.
  EXPECT_EQ(stats.min, 3.0);
  EXPECT_EQ(stats.max, 7.0);
  EXPECT_EQ(stats.p50, 5.0);
}

TEST(TrialStatsTest, MeasureOptionsReadEnv) {
  unsetenv("IRHINT_BENCH_WARMUP");
  unsetenv("IRHINT_BENCH_TRIALS");
  MeasureOptions fallback;
  fallback.warmup = 3;
  fallback.trials = 9;
  EXPECT_EQ(MeasureOptionsFromEnv(fallback).warmup, 3u);
  EXPECT_EQ(MeasureOptionsFromEnv(fallback).trials, 9u);
  setenv("IRHINT_BENCH_WARMUP", "0", 1);
  setenv("IRHINT_BENCH_TRIALS", "2", 1);
  EXPECT_EQ(MeasureOptionsFromEnv(fallback).warmup, 0u);
  EXPECT_EQ(MeasureOptionsFromEnv(fallback).trials, 2u);
  setenv("IRHINT_BENCH_TRIALS", "0", 1);  // clamped: at least one trial
  EXPECT_EQ(MeasureOptionsFromEnv(fallback).trials, 1u);
  unsetenv("IRHINT_BENCH_WARMUP");
  unsetenv("IRHINT_BENCH_TRIALS");
}

TEST(BenchEnvironmentTest, CaptureFillsEveryField) {
  const BenchEnvironment env = CaptureBenchEnvironment();
  EXPECT_FALSE(env.git_sha.empty());
  EXPECT_FALSE(env.compiler.empty());
  EXPECT_FALSE(env.build_type.empty());
  EXPECT_FALSE(env.cpu_model.empty());
  EXPECT_GT(env.hardware_threads, 0u);
  // ISO-8601: "YYYY-MM-DDTHH:MM:SSZ".
  ASSERT_EQ(env.timestamp_utc.size(), 20u);
  EXPECT_EQ(env.timestamp_utc[10], 'T');
  EXPECT_EQ(env.timestamp_utc.back(), 'Z');
}

TEST(BenchEnvironmentTest, GitShaEnvOverrideWins) {
  setenv("IRHINT_GIT_SHA", "deadbeef", 1);
  EXPECT_EQ(CaptureBenchEnvironment().git_sha, "deadbeef");
  unsetenv("IRHINT_GIT_SHA");
}

BenchReport MakeReport() {
  BenchReport report("test_suite");
  report.Add("build", "build_s/irhint", "s", /*higher_is_better=*/false,
             ComputeTrialStats({0.25, 0.5, 0.125}));
  report.Add("query", "qps/irhint/\"quoted\"\nname", "q/s",
             /*higher_is_better=*/true,
             ComputeTrialStats({1e9, 3.14159265358979312, 1e-9}));
  return report;
}

TEST(BenchJsonTest, RoundTripsExactly) {
  const BenchReport report = MakeReport();
  auto parsed = ParseBenchJson(report.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->suite(), report.suite());
  EXPECT_EQ(parsed->environment().git_sha, report.environment().git_sha);
  EXPECT_EQ(parsed->environment().compiler, report.environment().compiler);
  EXPECT_EQ(parsed->environment().cpu_model, report.environment().cpu_model);
  EXPECT_EQ(parsed->environment().hardware_threads,
            report.environment().hardware_threads);
  EXPECT_EQ(parsed->environment().timestamp_utc,
            report.environment().timestamp_utc);
  ASSERT_EQ(parsed->metrics().size(), report.metrics().size());
  for (size_t i = 0; i < report.metrics().size(); ++i) {
    const BenchMetric& a = report.metrics()[i];
    const BenchMetric& b = parsed->metrics()[i];
    EXPECT_EQ(a.family, b.family);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.unit, b.unit);
    EXPECT_EQ(a.higher_is_better, b.higher_is_better);
    EXPECT_EQ(a.stats.trials, b.stats.trials);
    // %.17g round-trips doubles bit-exactly.
    EXPECT_EQ(a.stats.min, b.stats.min);
    EXPECT_EQ(a.stats.max, b.stats.max);
    EXPECT_EQ(a.stats.mean, b.stats.mean);
    EXPECT_EQ(a.stats.stddev, b.stats.stddev);
    EXPECT_EQ(a.stats.p50, b.stats.p50);
    EXPECT_EQ(a.stats.p90, b.stats.p90);
    EXPECT_EQ(a.stats.p99, b.stats.p99);
  }
  // And a second pass through the writer is byte-identical.
  EXPECT_EQ(parsed->ToJson(), report.ToJson());
}

TEST(BenchJsonTest, MalformedInputsFailWithStatus) {
  const std::string good = MakeReport().ToJson();
  EXPECT_FALSE(ParseBenchJson("").ok());
  EXPECT_FALSE(ParseBenchJson("not json").ok());
  EXPECT_FALSE(ParseBenchJson("{}").ok());
  EXPECT_FALSE(ParseBenchJson("[1, 2, 3]").ok());
  EXPECT_FALSE(ParseBenchJson(good + "trailing").ok());
  // Truncation at every prefix length must fail cleanly, never crash.
  for (size_t cut = 0; cut + 1 < good.size(); cut += 97) {
    EXPECT_FALSE(ParseBenchJson(good.substr(0, cut)).ok()) << cut;
  }
}

TEST(BenchJsonTest, WrongSchemaVersionRejected) {
  std::string doc = MakeReport().ToJson();
  const std::string needle = "\"schema_version\": 1";
  const size_t pos = doc.find(needle);
  ASSERT_NE(pos, std::string::npos);
  doc.replace(pos, needle.size(), "\"schema_version\": 2");
  const auto parsed = ParseBenchJson(doc);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument())
      << parsed.status().ToString();
}

TEST(BenchJsonTest, WriteJsonFileRoundTrips) {
  const BenchReport report = MakeReport();
  const std::string path =
      std::string(::testing::TempDir()) + "/bench_harness_report.json";
  ASSERT_TRUE(report.WriteJsonFile(path).ok());
  std::string bytes;
  {
    FILE* f = fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n = 0;
    while ((n = fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    fclose(f);
  }
  EXPECT_EQ(bytes, report.ToJson());
  std::remove(path.c_str());
}

// The committed baseline at the repo root must stay loadable and keep the
// metric families the perf gate tracks — a schema drift or a hand-edit
// that breaks it would otherwise surface only inside the CI gate.
#ifdef IRHINT_BENCH_BASELINE
TEST(BenchJsonTest, CommittedBaselineParsesWithExpectedFamilies) {
  std::string bytes;
  {
    FILE* f = fopen(IRHINT_BENCH_BASELINE, "rb");
    ASSERT_NE(f, nullptr) << "missing " << IRHINT_BENCH_BASELINE;
    char buf[65536];
    size_t n = 0;
    while ((n = fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    fclose(f);
  }
  auto parsed = ParseBenchJson(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->suite(), "core");
  std::vector<std::string> families;
  for (const BenchMetric& m : parsed->metrics()) {
    if (std::find(families.begin(), families.end(), m.family) ==
        families.end()) {
      families.push_back(m.family);
    }
  }
  for (const char* family :
       {"build", "query_latency", "query_throughput",
        "parallel_query_scaling", "ingest", "snapshot", "footprint"}) {
    EXPECT_NE(std::find(families.begin(), families.end(), family),
              families.end())
        << "baseline lost family " << family;
  }
}
#endif  // IRHINT_BENCH_BASELINE

}  // namespace
}  // namespace bench
}  // namespace irhint

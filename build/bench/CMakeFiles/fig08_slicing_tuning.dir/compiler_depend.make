# Empty compiler generated dependencies file for fig08_slicing_tuning.
# This may be replaced when dependencies are built.

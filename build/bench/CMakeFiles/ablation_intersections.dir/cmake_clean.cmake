file(REMOVE_RECURSE
  "CMakeFiles/ablation_intersections.dir/ablation_intersections.cc.o"
  "CMakeFiles/ablation_intersections.dir/ablation_intersections.cc.o.d"
  "ablation_intersections"
  "ablation_intersections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_intersections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

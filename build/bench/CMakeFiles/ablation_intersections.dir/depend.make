# Empty dependencies file for ablation_intersections.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig10_tifhint_variants.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig10_tifhint_variants.dir/fig10_tifhint_variants.cc.o"
  "CMakeFiles/fig10_tifhint_variants.dir/fig10_tifhint_variants.cc.o.d"
  "fig10_tifhint_variants"
  "fig10_tifhint_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tifhint_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

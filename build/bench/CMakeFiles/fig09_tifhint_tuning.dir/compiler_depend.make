# Empty compiler generated dependencies file for fig09_tifhint_tuning.
# This may be replaced when dependencies are built.

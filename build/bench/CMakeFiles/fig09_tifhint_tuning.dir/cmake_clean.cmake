file(REMOVE_RECURSE
  "CMakeFiles/fig09_tifhint_tuning.dir/fig09_tifhint_tuning.cc.o"
  "CMakeFiles/fig09_tifhint_tuning.dir/fig09_tifhint_tuning.cc.o.d"
  "fig09_tifhint_tuning"
  "fig09_tifhint_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_tifhint_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_hint_options.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_hint_options.dir/ablation_hint_options.cc.o"
  "CMakeFiles/ablation_hint_options.dir/ablation_hint_options.cc.o.d"
  "ablation_hint_options"
  "ablation_hint_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hint_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig11_real_datasets.dir/fig11_real_datasets.cc.o"
  "CMakeFiles/fig11_real_datasets.dir/fig11_real_datasets.cc.o.d"
  "fig11_real_datasets"
  "fig11_real_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_real_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig11_real_datasets.
# This may be replaced when dependencies are built.

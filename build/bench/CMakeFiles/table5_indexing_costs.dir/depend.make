# Empty dependencies file for table5_indexing_costs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table5_indexing_costs.dir/table5_indexing_costs.cc.o"
  "CMakeFiles/table5_indexing_costs.dir/table5_indexing_costs.cc.o.d"
  "table5_indexing_costs"
  "table5_indexing_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_indexing_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table6_insertions.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table6_insertions.dir/table6_insertions.cc.o"
  "CMakeFiles/table6_insertions.dir/table6_insertions.cc.o.d"
  "table6_insertions"
  "table6_insertions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_insertions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

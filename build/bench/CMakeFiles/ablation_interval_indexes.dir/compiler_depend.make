# Empty compiler generated dependencies file for ablation_interval_indexes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_interval_indexes.dir/ablation_interval_indexes.cc.o"
  "CMakeFiles/ablation_interval_indexes.dir/ablation_interval_indexes.cc.o.d"
  "ablation_interval_indexes"
  "ablation_interval_indexes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interval_indexes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table7_deletions.dir/table7_deletions.cc.o"
  "CMakeFiles/table7_deletions.dir/table7_deletions.cc.o.d"
  "table7_deletions"
  "table7_deletions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_deletions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table7_deletions.
# This may be replaced when dependencies are built.

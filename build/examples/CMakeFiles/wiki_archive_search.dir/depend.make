# Empty dependencies file for wiki_archive_search.
# This may be replaced when dependencies are built.

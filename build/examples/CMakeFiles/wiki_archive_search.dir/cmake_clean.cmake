file(REMOVE_RECURSE
  "CMakeFiles/wiki_archive_search.dir/wiki_archive_search.cpp.o"
  "CMakeFiles/wiki_archive_search.dir/wiki_archive_search.cpp.o.d"
  "wiki_archive_search"
  "wiki_archive_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiki_archive_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

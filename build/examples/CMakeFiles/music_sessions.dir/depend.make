# Empty dependencies file for music_sessions.
# This may be replaced when dependencies are built.

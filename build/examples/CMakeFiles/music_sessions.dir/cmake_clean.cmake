file(REMOVE_RECURSE
  "CMakeFiles/music_sessions.dir/music_sessions.cpp.o"
  "CMakeFiles/music_sessions.dir/music_sessions.cpp.o.d"
  "music_sessions"
  "music_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/music_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

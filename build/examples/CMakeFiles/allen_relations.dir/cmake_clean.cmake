file(REMOVE_RECURSE
  "CMakeFiles/allen_relations.dir/allen_relations.cpp.o"
  "CMakeFiles/allen_relations.dir/allen_relations.cpp.o.d"
  "allen_relations"
  "allen_relations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allen_relations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

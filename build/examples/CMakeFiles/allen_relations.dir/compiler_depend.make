# Empty compiler generated dependencies file for allen_relations.
# This may be replaced when dependencies are built.

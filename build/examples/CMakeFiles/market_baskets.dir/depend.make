# Empty dependencies file for market_baskets.
# This may be replaced when dependencies are built.

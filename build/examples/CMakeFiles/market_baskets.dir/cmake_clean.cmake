file(REMOVE_RECURSE
  "CMakeFiles/market_baskets.dir/market_baskets.cpp.o"
  "CMakeFiles/market_baskets.dir/market_baskets.cpp.o.d"
  "market_baskets"
  "market_baskets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_baskets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for irhint_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/irhint_cli.dir/irhint_cli.cc.o"
  "CMakeFiles/irhint_cli.dir/irhint_cli.cc.o.d"
  "irhint_cli"
  "irhint_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irhint_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

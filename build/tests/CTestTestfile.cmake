# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/flat_hash_map_test[1]_include.cmake")
include("/root/repo/build/tests/hint_traversal_test[1]_include.cmake")
include("/root/repo/build/tests/hint_test[1]_include.cmake")
include("/root/repo/build/tests/index_property_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/intersect_test[1]_include.cmake")
include("/root/repo/build/tests/tif_test[1]_include.cmake")
include("/root/repo/build/tests/interval_baselines_test[1]_include.cmake")
include("/root/repo/build/tests/sliced_postings_test[1]_include.cmake")
include("/root/repo/build/tests/tif_sharding_test[1]_include.cmake")
include("/root/repo/build/tests/division_index_test[1]_include.cmake")
include("/root/repo/build/tests/data_gen_test[1]_include.cmake")
include("/root/repo/build/tests/query_gen_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/domain_growth_test[1]_include.cmake")
include("/root/repo/build/tests/irhint_test[1]_include.cmake")
include("/root/repo/build/tests/factory_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/allen_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_levels_test[1]_include.cmake")
include("/root/repo/build/tests/tif_hint_test[1]_include.cmake")
include("/root/repo/build/tests/tif_slicing_test[1]_include.cmake")
include("/root/repo/build/tests/randomized_differential_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/paper_examples_test[1]_include.cmake")

# Empty dependencies file for randomized_differential_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/randomized_differential_test.dir/randomized_differential_test.cc.o"
  "CMakeFiles/randomized_differential_test.dir/randomized_differential_test.cc.o.d"
  "randomized_differential_test"
  "randomized_differential_test.pdb"
  "randomized_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomized_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

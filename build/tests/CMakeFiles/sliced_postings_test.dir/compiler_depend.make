# Empty compiler generated dependencies file for sliced_postings_test.
# This may be replaced when dependencies are built.

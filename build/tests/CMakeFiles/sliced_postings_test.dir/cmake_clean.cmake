file(REMOVE_RECURSE
  "CMakeFiles/sliced_postings_test.dir/sliced_postings_test.cc.o"
  "CMakeFiles/sliced_postings_test.dir/sliced_postings_test.cc.o.d"
  "sliced_postings_test"
  "sliced_postings_test.pdb"
  "sliced_postings_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliced_postings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

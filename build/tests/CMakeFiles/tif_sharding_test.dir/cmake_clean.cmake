file(REMOVE_RECURSE
  "CMakeFiles/tif_sharding_test.dir/tif_sharding_test.cc.o"
  "CMakeFiles/tif_sharding_test.dir/tif_sharding_test.cc.o.d"
  "tif_sharding_test"
  "tif_sharding_test.pdb"
  "tif_sharding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tif_sharding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tif_sharding_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/irhint_test.dir/irhint_test.cc.o"
  "CMakeFiles/irhint_test.dir/irhint_test.cc.o.d"
  "irhint_test"
  "irhint_test.pdb"
  "irhint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irhint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for irhint_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/domain_growth_test.dir/domain_growth_test.cc.o"
  "CMakeFiles/domain_growth_test.dir/domain_growth_test.cc.o.d"
  "domain_growth_test"
  "domain_growth_test.pdb"
  "domain_growth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_growth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for domain_growth_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for division_index_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/division_index_test.dir/division_index_test.cc.o"
  "CMakeFiles/division_index_test.dir/division_index_test.cc.o.d"
  "division_index_test"
  "division_index_test.pdb"
  "division_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/division_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sparse_levels_test.dir/sparse_levels_test.cc.o"
  "CMakeFiles/sparse_levels_test.dir/sparse_levels_test.cc.o.d"
  "sparse_levels_test"
  "sparse_levels_test.pdb"
  "sparse_levels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_levels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sparse_levels_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for tif_hint_test.
# This may be replaced when dependencies are built.

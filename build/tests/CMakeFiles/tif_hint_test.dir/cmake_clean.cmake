file(REMOVE_RECURSE
  "CMakeFiles/tif_hint_test.dir/tif_hint_test.cc.o"
  "CMakeFiles/tif_hint_test.dir/tif_hint_test.cc.o.d"
  "tif_hint_test"
  "tif_hint_test.pdb"
  "tif_hint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tif_hint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tif_slicing_test.dir/tif_slicing_test.cc.o"
  "CMakeFiles/tif_slicing_test.dir/tif_slicing_test.cc.o.d"
  "tif_slicing_test"
  "tif_slicing_test.pdb"
  "tif_slicing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tif_slicing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tif_slicing_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/interval_baselines_test.dir/interval_baselines_test.cc.o"
  "CMakeFiles/interval_baselines_test.dir/interval_baselines_test.cc.o.d"
  "interval_baselines_test"
  "interval_baselines_test.pdb"
  "interval_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for interval_baselines_test.
# This may be replaced when dependencies are built.

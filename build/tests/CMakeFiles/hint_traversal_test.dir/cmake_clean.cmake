file(REMOVE_RECURSE
  "CMakeFiles/hint_traversal_test.dir/hint_traversal_test.cc.o"
  "CMakeFiles/hint_traversal_test.dir/hint_traversal_test.cc.o.d"
  "hint_traversal_test"
  "hint_traversal_test.pdb"
  "hint_traversal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hint_traversal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

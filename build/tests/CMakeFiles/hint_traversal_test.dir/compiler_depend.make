# Empty compiler generated dependencies file for hint_traversal_test.
# This may be replaced when dependencies are built.

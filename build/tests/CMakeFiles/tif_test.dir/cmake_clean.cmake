file(REMOVE_RECURSE
  "CMakeFiles/tif_test.dir/tif_test.cc.o"
  "CMakeFiles/tif_test.dir/tif_test.cc.o.d"
  "tif_test"
  "tif_test.pdb"
  "tif_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tif_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tif_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hint_test.dir/hint_test.cc.o"
  "CMakeFiles/hint_test.dir/hint_test.cc.o.d"
  "hint_test"
  "hint_test.pdb"
  "hint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

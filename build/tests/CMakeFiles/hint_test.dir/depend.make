# Empty dependencies file for hint_test.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/table_printer.cc" "src/CMakeFiles/irhint.dir/common/table_printer.cc.o" "gcc" "src/CMakeFiles/irhint.dir/common/table_printer.cc.o.d"
  "/root/repo/src/core/factory.cc" "src/CMakeFiles/irhint.dir/core/factory.cc.o" "gcc" "src/CMakeFiles/irhint.dir/core/factory.cc.o.d"
  "/root/repo/src/core/irhint_perf.cc" "src/CMakeFiles/irhint.dir/core/irhint_perf.cc.o" "gcc" "src/CMakeFiles/irhint.dir/core/irhint_perf.cc.o.d"
  "/root/repo/src/core/irhint_size.cc" "src/CMakeFiles/irhint.dir/core/irhint_size.cc.o" "gcc" "src/CMakeFiles/irhint.dir/core/irhint_size.cc.o.d"
  "/root/repo/src/core/naive_scan.cc" "src/CMakeFiles/irhint.dir/core/naive_scan.cc.o" "gcc" "src/CMakeFiles/irhint.dir/core/naive_scan.cc.o.d"
  "/root/repo/src/data/corpus.cc" "src/CMakeFiles/irhint.dir/data/corpus.cc.o" "gcc" "src/CMakeFiles/irhint.dir/data/corpus.cc.o.d"
  "/root/repo/src/data/dictionary.cc" "src/CMakeFiles/irhint.dir/data/dictionary.cc.o" "gcc" "src/CMakeFiles/irhint.dir/data/dictionary.cc.o.d"
  "/root/repo/src/data/query_gen.cc" "src/CMakeFiles/irhint.dir/data/query_gen.cc.o" "gcc" "src/CMakeFiles/irhint.dir/data/query_gen.cc.o.d"
  "/root/repo/src/data/real_sim.cc" "src/CMakeFiles/irhint.dir/data/real_sim.cc.o" "gcc" "src/CMakeFiles/irhint.dir/data/real_sim.cc.o.d"
  "/root/repo/src/data/serialize.cc" "src/CMakeFiles/irhint.dir/data/serialize.cc.o" "gcc" "src/CMakeFiles/irhint.dir/data/serialize.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/irhint.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/irhint.dir/data/synthetic.cc.o.d"
  "/root/repo/src/eval/runner.cc" "src/CMakeFiles/irhint.dir/eval/runner.cc.o" "gcc" "src/CMakeFiles/irhint.dir/eval/runner.cc.o.d"
  "/root/repo/src/eval/workload.cc" "src/CMakeFiles/irhint.dir/eval/workload.cc.o" "gcc" "src/CMakeFiles/irhint.dir/eval/workload.cc.o.d"
  "/root/repo/src/hint/allen.cc" "src/CMakeFiles/irhint.dir/hint/allen.cc.o" "gcc" "src/CMakeFiles/irhint.dir/hint/allen.cc.o.d"
  "/root/repo/src/hint/cost_model.cc" "src/CMakeFiles/irhint.dir/hint/cost_model.cc.o" "gcc" "src/CMakeFiles/irhint.dir/hint/cost_model.cc.o.d"
  "/root/repo/src/hint/hint.cc" "src/CMakeFiles/irhint.dir/hint/hint.cc.o" "gcc" "src/CMakeFiles/irhint.dir/hint/hint.cc.o.d"
  "/root/repo/src/interval_baselines/grid1d.cc" "src/CMakeFiles/irhint.dir/interval_baselines/grid1d.cc.o" "gcc" "src/CMakeFiles/irhint.dir/interval_baselines/grid1d.cc.o.d"
  "/root/repo/src/interval_baselines/interval_tree.cc" "src/CMakeFiles/irhint.dir/interval_baselines/interval_tree.cc.o" "gcc" "src/CMakeFiles/irhint.dir/interval_baselines/interval_tree.cc.o.d"
  "/root/repo/src/ir/division_index.cc" "src/CMakeFiles/irhint.dir/ir/division_index.cc.o" "gcc" "src/CMakeFiles/irhint.dir/ir/division_index.cc.o.d"
  "/root/repo/src/ir/intersect.cc" "src/CMakeFiles/irhint.dir/ir/intersect.cc.o" "gcc" "src/CMakeFiles/irhint.dir/ir/intersect.cc.o.d"
  "/root/repo/src/ir/tif.cc" "src/CMakeFiles/irhint.dir/ir/tif.cc.o" "gcc" "src/CMakeFiles/irhint.dir/ir/tif.cc.o.d"
  "/root/repo/src/irfirst/tif_hint.cc" "src/CMakeFiles/irhint.dir/irfirst/tif_hint.cc.o" "gcc" "src/CMakeFiles/irhint.dir/irfirst/tif_hint.cc.o.d"
  "/root/repo/src/irfirst/tif_hint_slicing.cc" "src/CMakeFiles/irhint.dir/irfirst/tif_hint_slicing.cc.o" "gcc" "src/CMakeFiles/irhint.dir/irfirst/tif_hint_slicing.cc.o.d"
  "/root/repo/src/irfirst/tif_sharding.cc" "src/CMakeFiles/irhint.dir/irfirst/tif_sharding.cc.o" "gcc" "src/CMakeFiles/irhint.dir/irfirst/tif_sharding.cc.o.d"
  "/root/repo/src/irfirst/tif_slicing.cc" "src/CMakeFiles/irhint.dir/irfirst/tif_slicing.cc.o" "gcc" "src/CMakeFiles/irhint.dir/irfirst/tif_slicing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libirhint.a"
)

# Empty compiler generated dependencies file for irhint.
# This may be replaced when dependencies are built.

// Ablation C: HINT's internal options — sort modes (beneficial temporal
// sorting vs by-id vs none) and the storage optimization — on range query
// latency and index size. Quantifies the cost the merge-sort tIF+HINT
// variant pays for giving up beneficial sorting (Section 3.1, footnote 8).

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "hint/hint.h"

namespace irhint {
namespace {

constexpr Time kDomainEnd = (1 << 22) - 1;
constexpr size_t kRecords = 500000;

std::vector<IntervalRecord> MakeRecords() {
  Rng rng(90210);
  ZipfSampler durations(kDomainEnd + 1, 1.2);
  std::vector<IntervalRecord> records;
  records.reserve(kRecords);
  for (size_t i = 0; i < kRecords; ++i) {
    const Time st = rng.Uniform(kDomainEnd + 1);
    const Time end = std::min<Time>(kDomainEnd, st + durations.Sample(rng));
    records.push_back(IntervalRecord{static_cast<ObjectId>(i),
                                     Interval(st, end)});
  }
  return records;
}

void Run(benchmark::State& state, HintSortMode sort, bool storage_opt) {
  const auto records = MakeRecords();
  HintIndex index;
  HintOptions options;
  options.num_bits = 12;
  options.sort_mode = sort;
  options.storage_optimization = storage_opt;
  if (!index.Build(records, kDomainEnd, options).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  Rng rng(3);
  const Time length = (kDomainEnd + 1) / 1000;
  std::vector<ObjectId> out;
  for (auto _ : state) {
    const Time st = rng.Uniform(kDomainEnd + 2 - length);
    out.clear();
    index.RangeQuery(Interval(st, st + length - 1), &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["index MB"] =
      static_cast<double>(index.MemoryUsageBytes()) / 1048576.0;
}

void BM_HintSortBeneficial(benchmark::State& state) {
  Run(state, HintSortMode::kBeneficial, false);
}
void BM_HintSortById(benchmark::State& state) {
  Run(state, HintSortMode::kById, false);
}
void BM_HintSortNone(benchmark::State& state) {
  Run(state, HintSortMode::kNone, false);
}
void BM_HintStorageOptimized(benchmark::State& state) {
  Run(state, HintSortMode::kBeneficial, true);
}

BENCHMARK(BM_HintSortBeneficial);
BENCHMARK(BM_HintSortById);
BENCHMARK(BM_HintSortNone);
BENCHMARK(BM_HintStorageOptimized);

}  // namespace
}  // namespace irhint

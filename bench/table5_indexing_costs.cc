// Table 5: indexing time [secs] and index size [MBs] for all seven indexes
// on the ECLOG-like and WIKIPEDIA-like datasets.
//
// Paper shape to reproduce: tIF+Sharding and irHINT-size have the smallest
// sizes; tIF+HINT+Slicing the largest; the HINT-based indexes cost more
// build time than plain slicing; irHINT build times are the highest tier.

#include <iostream>
#include <memory>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "core/factory.h"

using namespace irhint;

namespace {

void RunDataset(const char* dataset_name, const Corpus& corpus,
                TablePrinter* table) {
  for (const IndexKind kind : AllIndexKinds()) {
    std::unique_ptr<TemporalIrIndex> index = CreateIndex(kind);
    const BuildStats stats = MeasureBuild(index.get(), corpus);
    table->AddRow({std::string(dataset_name), std::string(index->Name()),
                   Fmt(stats.seconds, 2), FmtMb(stats.bytes)});
    std::printf("# built %-18s on %-9s in %6.2fs\n",
                std::string(index->Name()).c_str(), dataset_name,
                stats.seconds);
  }
}

}  // namespace

int main() {
  bench::PrintHeader("Table 5: indexing costs (time and size)");
  TablePrinter table({"dataset", "index", "time [s]", "size [MB]"});
  {
    const Corpus eclog = bench::LoadEclog();
    RunDataset("ECLOG", eclog, &table);
  }
  {
    const Corpus wiki = bench::LoadWikipedia();
    RunDataset("WIKIPEDIA", wiki, &table);
  }
  std::printf("\n");
  table.Print(std::cout);
  return 0;
}

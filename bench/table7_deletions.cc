// Table 7: update time [secs] for deletions. The full dataset is indexed
// offline; 1%, 5% and 10% of the objects are then logically deleted
// (tombstoned).
//
// Paper shape to reproduce: deletions resemble querying (entries must be
// located first), so tIF+Sharding — the slowest at querying — also has by
// far the highest deletion cost; the merge-sort tIF+HINT variant is the
// cheapest; dual-structure designs (hybrid, irHINT-size) pay roughly
// double.

#include <iostream>
#include <memory>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "core/factory.h"

using namespace irhint;

namespace {

void RunDataset(const std::string& dataset, const Corpus& corpus,
                TablePrinter* table) {
  const size_t one_pct = corpus.size() / 100;
  for (const IndexKind kind : AllIndexKinds()) {
    std::unique_ptr<TemporalIrIndex> index = CreateIndex(kind);
    const BuildStats build = MeasureBuild(index.get(), corpus);
    if (build.seconds < 0) continue;
    const double t1 = MeasureEraseSeconds(index.get(), corpus, 0, one_pct);
    const double t5 =
        t1 + MeasureEraseSeconds(index.get(), corpus, one_pct, 5 * one_pct);
    const double t10 = t5 + MeasureEraseSeconds(index.get(), corpus,
                                                5 * one_pct, 10 * one_pct);
    table->AddRow({dataset, std::string(index->Name()), Fmt(t1, 3),
                   Fmt(t5, 3), Fmt(t10, 3)});
    std::printf("# %s deletions on %s done\n",
                std::string(index->Name()).c_str(), dataset.c_str());
  }
}

}  // namespace

int main() {
  bench::PrintHeader("Table 7: update time [secs] for deletions");
  TablePrinter table({"dataset", "index", "1%", "5%", "10%"});
  {
    const Corpus eclog = bench::LoadEclog();
    RunDataset("ECLOG", eclog, &table);
  }
  {
    const Corpus wiki = bench::LoadWikipedia();
    RunDataset("WIKIPEDIA", wiki, &table);
  }
  std::printf("\n");
  table.Print(std::cout);
  return 0;
}

// Table 6: update time [secs] for insertions. 90% of each dataset is
// indexed offline; the remaining objects arrive in batches of 1%, 5% and
// 10% of the full cardinality.
//
// Paper shape to reproduce: the simple IR-first methods (tIF+Slicing,
// tIF+Sharding) insert fastest; the irHINT performance variant stays
// competitive; the binary-search tIF+HINT variant and the dual-structure
// designs (hybrid, irHINT-size) pay for maintaining temporal sorting /
// two copies.

#include <iostream>
#include <memory>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "core/factory.h"

using namespace irhint;

namespace {

void RunDataset(const std::string& dataset, const Corpus& corpus,
                TablePrinter* table) {
  const size_t offline = corpus.size() * 9 / 10;
  const Corpus prefix = corpus.Prefix(offline);
  const size_t one_pct = corpus.size() / 100;

  for (const IndexKind kind : AllIndexKinds()) {
    std::unique_ptr<TemporalIrIndex> index = CreateIndex(kind);
    const BuildStats build = MeasureBuild(index.get(), prefix);
    if (build.seconds < 0) continue;
    // Batches of 1%, then up to 5%, then up to 10% (cumulative, matching
    // the paper's offline-90% + batch methodology).
    const double t1 =
        MeasureInsertSeconds(index.get(), corpus, offline, offline + one_pct);
    const double t5 = t1 + MeasureInsertSeconds(index.get(), corpus,
                                                offline + one_pct,
                                                offline + 5 * one_pct);
    const double t10 = t5 + MeasureInsertSeconds(index.get(), corpus,
                                                 offline + 5 * one_pct,
                                                 corpus.size());
    table->AddRow({dataset, std::string(index->Name()), Fmt(t1, 3),
                   Fmt(t5, 3), Fmt(t10, 3)});
    std::printf("# %s insertions on %s done\n",
                std::string(index->Name()).c_str(), dataset.c_str());
  }
}

}  // namespace

int main() {
  bench::PrintHeader("Table 6: update time [secs] for insertions");
  TablePrinter table({"dataset", "index", "1%", "5%", "10%"});
  {
    const Corpus eclog = bench::LoadEclog();
    RunDataset("ECLOG", eclog, &table);
  }
  {
    const Corpus wiki = bench::LoadWikipedia();
    RunDataset("WIKIPEDIA", wiki, &table);
  }
  std::printf("\n");
  table.Print(std::cout);
  return 0;
}

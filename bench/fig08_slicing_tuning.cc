// Figure 8: tuning tIF+Slicing — indexing time, index size and query
// throughput as the number of time-domain slices grows from 1 to 250.
//
// Paper shape to reproduce: throughput first rises with more slices (better
// temporal filtering), then flattens/drops (fragmentation of the
// intersection process); size and build time grow monotonically with the
// slice count (replication). The paper settles on 50 slices.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "data/query_gen.h"
#include "irfirst/tif_slicing.h"

using namespace irhint;

namespace {

void RunDataset(const std::string& dataset, const Corpus& corpus,
                TablePrinter* table) {
  const size_t count = BenchQueriesFromEnv(1000);
  WorkloadGenerator generator(corpus, /*seed=*/808);
  // Default workload: 0.1% extent, |q.d| = 3.
  const std::vector<Query> queries =
      generator.ExtentWorkload(0.1, 3, count);

  for (const uint32_t slices : {1u, 10u, 25u, 50u, 100u, 150u, 200u, 250u}) {
    TifSlicingOptions options;
    options.num_slices = slices;
    TifSlicing index(options);
    const BuildStats build = MeasureBuild(&index, corpus);
    const QueryStats query = MeasureQueries(index, queries);
    table->AddRow({dataset, Fmt(static_cast<uint64_t>(slices)),
                   Fmt(build.seconds, 2), FmtMb(build.bytes),
                   Fmt(query.queries_per_second, 0)});
  }
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 8: tuning tIF+Slicing (number of slices)");
  TablePrinter table(
      {"dataset", "#slices", "index time [s]", "size [MB]", "queries/s"});
  {
    const Corpus eclog = bench::LoadEclog();
    RunDataset("ECLOG", eclog, &table);
  }
  {
    const Corpus wiki = bench::LoadWikipedia();
    RunDataset("WIKIPEDIA", wiki, &table);
  }
  std::printf("\n");
  table.Print(std::cout);
  return 0;
}

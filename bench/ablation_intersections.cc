// Ablation B: sorted-list intersection kernels — linear merge vs per-item
// binary search vs galloping — across list-size ratios. Motivates the
// design choices of Algorithms 3 and 4 (merge wins for comparable sizes,
// search-based probing wins when the candidate set is tiny).

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "ir/intersect.h"

namespace irhint {
namespace {

std::vector<ObjectId> MakeSorted(size_t n, uint64_t seed, uint32_t universe) {
  Rng rng(seed);
  std::vector<ObjectId> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    v.push_back(static_cast<ObjectId>(rng.Uniform(universe)));
  }
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

void BM_IntersectMerge(benchmark::State& state) {
  const size_t small_n = static_cast<size_t>(state.range(0));
  const size_t large_n = static_cast<size_t>(state.range(1));
  const auto a = MakeSorted(small_n, 1, 1 << 22);
  const auto b = MakeSorted(large_n, 2, 1 << 22);
  std::vector<ObjectId> out;
  for (auto _ : state) {
    out.clear();
    IntersectMerge(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}

void BM_IntersectBinary(benchmark::State& state) {
  const size_t small_n = static_cast<size_t>(state.range(0));
  const size_t large_n = static_cast<size_t>(state.range(1));
  const auto a = MakeSorted(small_n, 1, 1 << 22);
  const auto b = MakeSorted(large_n, 2, 1 << 22);
  std::vector<ObjectId> out;
  for (auto _ : state) {
    out.clear();
    IntersectBinary(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * a.size());
}

void BM_IntersectGalloping(benchmark::State& state) {
  const size_t small_n = static_cast<size_t>(state.range(0));
  const size_t large_n = static_cast<size_t>(state.range(1));
  const auto a = MakeSorted(small_n, 1, 1 << 22);
  const auto b = MakeSorted(large_n, 2, 1 << 22);
  std::vector<ObjectId> out;
  for (auto _ : state) {
    out.clear();
    IntersectGalloping(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * a.size());
}

void Ratios(benchmark::internal::Benchmark* b) {
  b->Args({1000, 1000})
      ->Args({1000, 100000})
      ->Args({100, 1000000})
      ->Args({100000, 100000});
}

BENCHMARK(BM_IntersectMerge)->Apply(Ratios);
BENCHMARK(BM_IntersectBinary)->Apply(Ratios);
BENCHMARK(BM_IntersectGalloping)->Apply(Ratios);

}  // namespace
}  // namespace irhint

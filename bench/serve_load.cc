// Sustained-load driver for the sharded serving engine (src/serve/):
// closed-loop client threads replay Zipf-popular narrow queries against a
// 1-shard and an N-shard engine on the same corpus, measuring saturation
// throughput and per-request latency (p50/p99/p999); an open-loop burst
// against a tiny queue exercises admission control (shed rate); and a
// durable N-shard engine serves the same traffic while a writer thread
// ingests held-out objects through the per-shard WALs.
//
// Emits the schema-v1 JSON of the shared harness (family "serve") via
// --out PATH; --smoke shrinks every dimension to CI scale. The key
// derived metric is serve_saturation_speedup: N-shard qps over 1-shard
// qps — per-shard indexes cover a 1/N time span, so their divisions are
// N-fold finer and a narrow query scans far fewer irrelevant postings.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/harness.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/zipf.h"
#include "data/query_gen.h"
#include "data/synthetic.h"
#include "serve/engine.h"

using namespace irhint;

namespace {

struct LoadConfig {
  uint64_t cardinality = 60'000;
  size_t distinct_queries = 1500;
  size_t client_threads = 4;
  double run_seconds = 1.5;
  uint32_t time_shards = 6;
  double zipf_theta = 1.0;
  bench::MeasureOptions measure{/*warmup=*/1, /*trials=*/3};
  std::string out_path;
};

Corpus LoadCorpus(uint64_t cardinality) {
  SyntheticParams params;
  params.cardinality = cardinality;
  params.domain = 80 * cardinality;
  params.sigma = 4 * cardinality;
  params.dictionary_size = std::max<uint64_t>(100, cardinality / 10);
  params.description_size = 8;
  params.seed = 31;
  return GenerateSynthetic(params);
}

struct LoadResult {
  double qps = 0.0;
  std::vector<double> latencies_us;
};

/// Closed-loop run: `threads` clients each keep one request in flight,
/// drawing queries by Zipf(theta) popularity rank, until the deadline.
LoadResult RunClosedLoop(serve::ServeEngine* engine,
                         const std::vector<Query>& queries,
                         const LoadConfig& config, uint64_t seed) {
  const ZipfSampler popularity(queries.size(), config.zipf_theta);
  std::vector<LoadResult> per_client(config.client_threads);
  ThreadPool pool(config.client_threads);
  Timer wall;
  for (size_t c = 0; c < config.client_threads; ++c) {
    pool.Submit([&, c]() {
      Rng rng(seed + 1000 * c + 1);
      LoadResult& mine = per_client[c];
      Timer deadline;
      while (deadline.Seconds() < config.run_seconds) {
        const Query& query =
            queries[popularity.Sample(rng) - 1];
        Timer request;
        const StatusOr<std::vector<ObjectId>> result = engine->Execute(query);
        if (result.ok()) {
          mine.latencies_us.push_back(request.Seconds() * 1e6);
        }
      }
    });
  }
  pool.Wait();
  const double seconds = wall.Seconds();

  LoadResult total;
  for (LoadResult& client : per_client) {
    total.latencies_us.insert(total.latencies_us.end(),
                              client.latencies_us.begin(),
                              client.latencies_us.end());
  }
  total.qps = seconds > 0.0
                  ? static_cast<double>(total.latencies_us.size()) / seconds
                  : 0.0;
  return total;
}

void AddLatencyMetrics(const std::string& label, std::vector<double> samples,
                       bench::BenchReport* report) {
  std::sort(samples.begin(), samples.end());
  const double p999 = bench::PercentileSorted(samples, 99.9);
  report->Add("serve", "serve_latency_us/" + label, "us",
              /*higher_is_better=*/false,
              bench::ComputeTrialStats(std::move(samples)));
  report->Add("serve", "serve_p999_us/" + label, "us",
              /*higher_is_better=*/false, bench::ComputeTrialStats({p999}));
}

/// Saturation throughput of one geometry: MeasureTrials over closed-loop
/// runs; the last run's latencies feed the latency metrics.
double MeasureGeometry(const Corpus& corpus, const LoadConfig& config,
                       uint32_t time_shards,
                       const std::vector<Query>& queries,
                       bench::BenchReport* report) {
  serve::ServeOptions options;
  options.time_shards = time_shards;
  StatusOr<std::unique_ptr<serve::ServeEngine>> engine =
      serve::ServeEngine::Create(corpus, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine start failed: %s\n",
                 engine.status().ToString().c_str());
    return 0.0;
  }
  const std::string label = "shards" + std::to_string(time_shards);
  std::vector<double> last_latencies;
  uint64_t round = 0;
  const bench::TrialStats qps = bench::MeasureTrials(config.measure, [&]() {
    LoadResult result =
        RunClosedLoop(engine->get(), queries, config, /*seed=*/7 + ++round);
    last_latencies = std::move(result.latencies_us);
    return result.qps;
  });
  report->Add("serve", "serve_qps/" + label, "q/s",
              /*higher_is_better=*/true, qps);
  AddLatencyMetrics(label, std::move(last_latencies), report);

  const serve::EngineStats stats = (*engine)->Stats();
  std::printf("# %s: %.0f q/s saturation, %llu batches, %llu dedup hits\n",
              label.c_str(), qps.p50,
              static_cast<unsigned long long>(stats.total_batches),
              static_cast<unsigned long long>(stats.total_dedup_hits));
  return qps.p50;
}

/// Open-loop burst against a tiny queue: admission control must shed
/// instead of queueing without bound, and every future must still resolve.
void MeasureShedding(const Corpus& corpus, const std::vector<Query>& queries,
                     bench::BenchReport* report) {
  serve::ServeOptions options;
  options.time_shards = 1;  // a single queue concentrates the burst
  options.max_queue_depth = 64;
  StatusOr<std::unique_ptr<serve::ServeEngine>> engine =
      serve::ServeEngine::Create(corpus, options);
  if (!engine.ok()) return;

  const size_t burst = std::max<size_t>(2000, 20 * options.max_queue_depth);
  std::vector<serve::ResultFuture> futures;
  futures.reserve(burst);
  for (size_t i = 0; i < burst; ++i) {
    futures.push_back((*engine)->Submit(queries[i % queries.size()]));
  }
  size_t shed = 0;
  for (serve::ResultFuture& future : futures) {
    if (!future.Get().ok()) ++shed;
  }
  const serve::EngineStats stats = (*engine)->Stats();
  const double shed_rate =
      static_cast<double>(shed) / static_cast<double>(burst);
  report->Add("serve", "serve_shed_rate/burst", "frac",
              /*higher_is_better=*/false,
              bench::ComputeTrialStats({shed_rate}));
  std::printf("# burst: %zu submitted, %zu shed (%.1f%%), peak depth %llu\n",
              burst, shed, 100.0 * shed_rate,
              static_cast<unsigned long long>(stats.max_peak_queue_depth));
}

/// Durable N-shard engine under mixed load: clients query while a writer
/// ingests the held-out objects through AppendInsert (per-shard WALs).
void MeasureDurableIngest(const Corpus& corpus, const LoadConfig& config,
                          const std::vector<Query>& queries,
                          bench::BenchReport* report) {
  const size_t offline = corpus.size() * 9 / 10;
  const Corpus prefix = corpus.Prefix(offline);
  const std::string dir = "/tmp/irhint_serve_load_wal";
  std::filesystem::remove_all(dir);

  serve::ServeOptions options;
  options.time_shards = config.time_shards;
  options.wal_dir = dir;
  options.durability = WalDurability::kBatch;
  StatusOr<std::unique_ptr<serve::ServeEngine>> engine =
      serve::ServeEngine::Create(prefix, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "durable engine start failed: %s\n",
                 engine.status().ToString().c_str());
    return;
  }

  double ingest_rate = 0.0;
  ThreadPool writer(1);
  writer.Submit([&]() {
    Timer timer;
    size_t ingested = 0;
    for (size_t i = offline; i < corpus.size(); ++i) {
      const Object& object = corpus.object(static_cast<ObjectId>(i));
      if (!(*engine)
               ->AppendInsert(object.interval, object.elements)
               .ok()) {
        break;
      }
      ++ingested;
    }
    const double seconds = timer.Seconds();
    ingest_rate =
        seconds > 0.0 ? static_cast<double>(ingested) / seconds : 0.0;
  });
  const LoadResult load = RunClosedLoop(engine->get(), queries, config,
                                        /*seed=*/99);
  writer.Wait();
  if (!(*engine)->Flush().ok()) {
    std::fprintf(stderr, "flush failed\n");
  }

  report->Add("serve", "serve_qps_under_ingest/durable", "q/s",
              /*higher_is_better=*/true, bench::ComputeTrialStats({load.qps}));
  report->Add("serve", "serve_ingest_objs_per_s/durable", "obj/s",
              /*higher_is_better=*/true,
              bench::ComputeTrialStats({ingest_rate}));
  std::printf("# durable: %.0f q/s while ingesting %.0f obj/s\n", load.qps,
              ingest_rate);
  engine->reset();  // close the WALs before removing the directory
  std::filesystem::remove_all(dir);
}

void PrintSummary(const bench::BenchReport& report) {
  TablePrinter table({"metric", "unit", "p50", "p99", "samples"});
  for (const bench::BenchMetric& m : report.metrics()) {
    table.AddRow({m.name, m.unit, Fmt(m.stats.p50, 4), Fmt(m.stats.p99, 4),
                  Fmt(static_cast<uint64_t>(m.stats.trials))});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  LoadConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      config.cardinality = 8000;
      config.distinct_queries = 300;
      config.client_threads = 2;
      config.run_seconds = 0.3;
      config.measure.trials = 2;
      config.measure.warmup = 0;
    } else if (arg == "--out" && i + 1 < argc) {
      config.out_path = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      config.out_path = arg.substr(6);
    } else if (arg == "--threads" && i + 1 < argc) {
      config.client_threads = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--shards" && i + 1 < argc) {
      config.time_shards = static_cast<uint32_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out PATH] [--threads N] "
                   "[--shards N]\n",
                   argv[0]);
      return 2;
    }
  }
  config.cardinality = std::max<uint64_t>(
      2000, static_cast<uint64_t>(static_cast<double>(config.cardinality) *
                                  BenchScaleFromEnv()));
  config.measure = bench::MeasureOptionsFromEnv(config.measure);

  bench::PrintHeader("irHINT serving engine sustained load");
  std::printf(
      "# %llu objects, %zu distinct queries (Zipf %.2f), %zu clients, "
      "%.1fs/run, %zu trials\n",
      static_cast<unsigned long long>(config.cardinality),
      config.distinct_queries, config.zipf_theta, config.client_threads,
      config.run_seconds, config.measure.trials);

  const Corpus corpus = LoadCorpus(config.cardinality);
  // Narrow multi-element lookups: the serving sweet spot where a shard's
  // finer divisions pay off (the perf_suite families keep covering the
  // wide-scan end).
  WorkloadGenerator generator(corpus, /*seed=*/97);
  const std::vector<Query> queries =
      generator.ExtentWorkload(0.1, 2, config.distinct_queries);

  bench::BenchReport report("serve_load");
  const double qps1 =
      MeasureGeometry(corpus, config, 1, queries, &report);
  const double qpsN =
      MeasureGeometry(corpus, config, config.time_shards, queries, &report);
  if (qps1 > 0.0) {
    report.Add("serve", "serve_saturation_speedup", "x",
               /*higher_is_better=*/true,
               bench::ComputeTrialStats({qpsN / qps1}));
    std::printf("# saturation speedup %u shards vs 1: %.2fx\n",
                config.time_shards, qpsN / qps1);
  }
  MeasureShedding(corpus, queries, &report);
  MeasureDurableIngest(corpus, config, queries, &report);

  std::printf("\n");
  PrintSummary(report);

  if (!config.out_path.empty()) {
    const Status status = report.WriteJsonFile(config.out_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("# wrote %s (%zu metrics)\n", config.out_path.c_str(),
                report.metrics().size());
  }
  return 0;
}

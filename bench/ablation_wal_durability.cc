// Ablation E: the cost of durability for live ingestion. For each WAL
// durability policy (none / batch group-commit / fsync-per-record) the
// full synthetic stream is ingested through a DurableIndex and then
// recovered cold, reporting ingest throughput, log volume, and recovery
// (replay) time. Checkpointing is disabled so the recovery column measures
// a pure full-log replay; the checkpointed steady state is exercised by
// the wal tests and irhint_cli ingest instead.
//
// Expected shape: `none` rides the page cache and sets the throughput
// ceiling, `batch` stays within a small factor of it (one fsync per group),
// `always` pays a full fsync per object and lands orders of magnitude
// lower, while recovery time is policy-independent (same records replayed).
//
// Knobs: IRHINT_SCALE multiplies the object counts (default sizes 100K and
// 1M), IRHINT_CSV=1 switches the report to CSV.

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "core/durable_index.h"
#include "data/synthetic.h"

using namespace irhint;

namespace {

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

uint64_t WalBytes(const std::string& dir) {
  uint64_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

struct PolicyCase {
  const char* name;
  WalDurability durability;
};

void RunSize(uint64_t cardinality, TablePrinter* table) {
  SyntheticParams params;
  params.cardinality = cardinality;
  params.domain = 80 * cardinality;
  params.sigma = 4 * cardinality;
  params.dictionary_size = std::max<uint64_t>(100, cardinality / 10);
  params.description_size = 8;
  params.seed = 31;
  const Corpus corpus = GenerateSynthetic(params);

  const PolicyCase policies[] = {
      {"none", WalDurability::kNone},
      {"batch", WalDurability::kBatch},
      {"always", WalDurability::kAlways},
  };
  for (const PolicyCase& policy : policies) {
    const std::string dir = "/tmp/irhint_bench_wal_" +
                            std::to_string(cardinality) + "_" + policy.name;
    std::filesystem::remove_all(dir);

    DurableIndexOptions options;
    options.kind = IndexKind::kIrHintPerf;
    options.durability = policy.durability;
    options.checkpoint_bytes = 0;  // measure a pure full-log replay below

    double ingest_seconds = 0;
    {
      auto index = DurableIndex::Open(dir, options);
      if (!index.ok()) {
        std::fprintf(stderr, "open failed: %s\n",
                     index.status().ToString().c_str());
        continue;
      }
      const auto begin = std::chrono::steady_clock::now();
      bool failed = false;
      for (const Object& object : corpus.objects()) {
        if (!(*index)->Insert(object).ok()) {
          failed = true;
          break;
        }
      }
      if (failed || !(*index)->Flush().ok()) {
        std::fprintf(stderr, "ingest failed for %s\n", policy.name);
        continue;
      }
      ingest_seconds = Seconds(begin, std::chrono::steady_clock::now());
    }
    const uint64_t wal_bytes = WalBytes(dir);

    const auto begin = std::chrono::steady_clock::now();
    auto recovered = DurableIndex::Open(dir, options);
    if (!recovered.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   recovered.status().ToString().c_str());
      continue;
    }
    const double recovery_seconds =
        Seconds(begin, std::chrono::steady_clock::now());
    const uint64_t replayed = (*recovered)->recovery_info().records_replayed;
    recovered->reset();
    std::filesystem::remove_all(dir);

    table->AddRow({Fmt(static_cast<uint64_t>(cardinality)), policy.name,
                   Fmt(ingest_seconds, 3),
                   Fmt(cardinality / ingest_seconds, 0), FmtMb(wal_bytes),
                   Fmt(recovery_seconds, 3), Fmt(replayed)});
    std::printf("# %llu objects, policy %s done\n",
                static_cast<unsigned long long>(cardinality), policy.name);
  }
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation E: WAL durability policies — ingest vs recovery");
  TablePrinter table({"objects", "durability", "ingest [s]", "objects/s",
                      "wal [MB]", "recovery [s]", "replayed"});
  const double scale = BenchScaleFromEnv();
  for (const uint64_t base : {uint64_t{100'000}, uint64_t{1'000'000}}) {
    const uint64_t cardinality =
        std::max<uint64_t>(1000, static_cast<uint64_t>(base * scale));
    RunSize(cardinality, &table);
  }
  std::printf("\n");
  const char* csv = GetEnv("IRHINT_CSV");
  if (csv != nullptr && std::atoi(csv) != 0) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  return 0;
}

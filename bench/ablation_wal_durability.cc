// Ablation E: the cost of durability for live ingestion. For each WAL
// durability policy (none / batch group-commit / fsync-per-record) the
// full synthetic stream is ingested through a DurableIndex and then
// recovered cold, reporting ingest throughput, log volume, and recovery
// (replay) time. Checkpointing is disabled so the recovery column measures
// a pure full-log replay; the checkpointed steady state is exercised by
// the wal tests and irhint_cli ingest instead.
//
// Expected shape: `none` rides the page cache and sets the throughput
// ceiling, `batch` stays within a small factor of it (one fsync per group),
// `always` pays a full fsync per object and lands orders of magnitude
// lower, while recovery time is policy-independent (same records replayed).
//
// Runs on the shared bench harness; each cell is the p50 of
// IRHINT_BENCH_TRIALS runs (default 1 — a full pass is expensive — with
// IRHINT_BENCH_WARMUP warmups, default 0). Knobs: IRHINT_SCALE multiplies
// the object counts (default sizes 100K and 1M), --smoke shrinks to CI
// scale, IRHINT_CSV=1 switches the report to CSV, IRHINT_BENCH_JSON=PATH
// additionally writes the harness JSON report.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/harness.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/durable_index.h"
#include "data/synthetic.h"

using namespace irhint;

namespace {

uint64_t WalBytes(const std::string& dir) {
  uint64_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

struct PolicyCase {
  const char* name;
  WalDurability durability;
};

void RunSize(uint64_t cardinality, const bench::MeasureOptions& measure,
             TablePrinter* table, bench::BenchReport* report) {
  SyntheticParams params;
  params.cardinality = cardinality;
  params.domain = 80 * cardinality;
  params.sigma = 4 * cardinality;
  params.dictionary_size = std::max<uint64_t>(100, cardinality / 10);
  params.description_size = 8;
  params.seed = 31;
  const Corpus corpus = GenerateSynthetic(params);
  const std::string size_tag = std::to_string(cardinality);

  const PolicyCase policies[] = {
      {"none", WalDurability::kNone},
      {"batch", WalDurability::kBatch},
      {"always", WalDurability::kAlways},
  };
  for (const PolicyCase& policy : policies) {
    const std::string dir = "/tmp/irhint_bench_wal_" + size_tag + "_" +
                            policy.name;
    DurableIndexOptions options;
    options.kind = IndexKind::kIrHintPerf;
    options.durability = policy.durability;
    options.checkpoint_bytes = 0;  // measure a pure full-log replay below

    // Each ingest trial starts from a fresh directory and leaves the log in
    // place, so the recovery trial that follows replays the full stream.
    uint64_t wal_bytes = 0;
    const bench::TrialStats ingest = bench::MeasureTrials(
        measure, [&corpus, &dir, &options, &wal_bytes]() {
          std::filesystem::remove_all(dir);
          auto index = DurableIndex::Open(dir, options);
          if (!index.ok()) {
            std::fprintf(stderr, "open failed: %s\n",
                         index.status().ToString().c_str());
            return 0.0;
          }
          Timer timer;
          for (const Object& object : corpus.objects()) {
            if (!(*index)->Insert(object).ok()) return 0.0;
          }
          if (!(*index)->Flush().ok()) return 0.0;
          const double seconds = timer.Seconds();
          index->reset();
          wal_bytes = WalBytes(dir);
          return seconds > 0.0 ? static_cast<double>(corpus.size()) / seconds
                               : 0.0;
        });

    uint64_t replayed = 0;
    const bench::TrialStats recovery = bench::MeasureTrials(
        measure, [&dir, &options, &replayed]() {
          Timer timer;
          auto recovered = DurableIndex::Open(dir, options);
          if (!recovered.ok()) {
            std::fprintf(stderr, "recovery failed: %s\n",
                         recovered.status().ToString().c_str());
            return 0.0;
          }
          const double seconds = timer.Seconds();
          replayed = (*recovered)->recovery_info().records_replayed;
          return seconds;
        });
    std::filesystem::remove_all(dir);

    const double ingest_seconds =
        ingest.p50 > 0.0 ? static_cast<double>(cardinality) / ingest.p50 : 0.0;
    table->AddRow({Fmt(cardinality), policy.name, Fmt(ingest_seconds, 3),
                   Fmt(ingest.p50, 0), FmtMb(wal_bytes), Fmt(recovery.p50, 3),
                   Fmt(replayed)});
    report->Add("wal_durability",
                "ingest_objs_per_s/" + size_tag + "/" + policy.name, "obj/s",
                /*higher_is_better=*/true, ingest);
    report->Add("wal_durability",
                "recovery_s/" + size_tag + "/" + policy.name, "s",
                /*higher_is_better=*/false, recovery);
    std::printf("# %llu objects, policy %s done\n",
                static_cast<unsigned long long>(cardinality), policy.name);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<uint64_t> bases = {100'000, 1'000'000};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      bases = {5'000};
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }
  const bench::MeasureOptions measure =
      bench::MeasureOptionsFromEnv({/*warmup=*/0, /*trials=*/1});

  bench::PrintHeader(
      "Ablation E: WAL durability policies — ingest vs recovery");
  TablePrinter table({"objects", "durability", "ingest [s]", "objects/s",
                      "wal [MB]", "recovery [s]", "replayed"});
  bench::BenchReport report("ablation_wal_durability");
  const double scale = BenchScaleFromEnv();
  for (const uint64_t base : bases) {
    const uint64_t cardinality = std::max<uint64_t>(
        1000, static_cast<uint64_t>(static_cast<double>(base) * scale));
    RunSize(cardinality, measure, &table, &report);
  }
  std::printf("\n");
  const char* csv = GetEnv("IRHINT_CSV");
  if (csv != nullptr && std::atoi(csv) != 0) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }

  if (const char* json = GetEnv("IRHINT_BENCH_JSON");
      json != nullptr && json[0] != '\0') {
    const Status status = report.WriteJsonFile(json);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("# wrote %s\n", json);
  }
  return 0;
}

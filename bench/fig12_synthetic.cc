// Figure 12: query throughput on synthetic datasets while sweeping the
// Table 4 construction parameters (cardinality, domain size, interval
// duration skew alpha, interval position deviation sigma, dictionary size,
// description size |d|, element frequency skew zeta) and the query
// parameters (extent, |q.d|, element frequency, selectivity).
//
// Paper shape to reproduce: same trend as Figure 11 — the performance
// irHINT variant leads, followed by the size variant; all indexes slow
// down with cardinality, domain size (longer queries at fixed extent %)
// and description size, and speed up with alpha (shorter intervals) and
// sigma (more spread, more selective temporal predicate).

#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "core/factory.h"
#include "data/query_gen.h"
#include "data/synthetic.h"
#include "eval/workload.h"

using namespace irhint;

namespace {

// Laptop-scale defaults standing in for Table 4's bold column
// (IRHINT_SCALE multiplies the cardinality).
SyntheticParams DefaultParams() {
  SyntheticParams params;
  params.cardinality =
      static_cast<uint64_t>(50000 * BenchScaleFromEnv());
  params.domain = 16'000'000;
  params.alpha = 1.2;
  params.sigma = 1'000'000;
  params.dictionary_size = 10'000;
  params.description_size = 10;
  params.zeta = 1.5;
  params.seed = 4321;
  return params;
}

void RunPanel(const std::string& panel, const std::string& value,
              const SyntheticParams& params, TablePrinter* table) {
  const Corpus corpus = GenerateSynthetic(params);
  const size_t count = BenchQueriesFromEnv(500);
  WorkloadGenerator generator(corpus, /*seed=*/1212);
  const std::vector<Query> queries = generator.ExtentWorkload(0.1, 3, count);
  for (const IndexKind kind : ComparisonIndexKinds()) {
    std::unique_ptr<TemporalIrIndex> index = CreateIndex(kind);
    const BuildStats build = MeasureBuild(index.get(), corpus);
    if (build.seconds < 0) continue;
    const QueryStats stats = bench::MeasureQueriesAuto(*index, queries);
    table->AddRow({panel, value, std::string(index->Name()),
                   Fmt(stats.queries_per_second, 0)});
  }
  std::printf("# panel %s = %s done\n", panel.c_str(), value.c_str());
}

// Query-axis panels reuse one corpus built with the defaults.
void RunQueryPanels(TablePrinter* table) {
  const Corpus corpus = GenerateSynthetic(DefaultParams());
  const size_t count = BenchQueriesFromEnv(500);
  WorkloadGenerator generator(corpus, /*seed=*/3131);

  std::vector<std::unique_ptr<TemporalIrIndex>> indexes;
  for (const IndexKind kind : ComparisonIndexKinds()) {
    indexes.push_back(CreateIndex(kind));
    MeasureBuild(indexes.back().get(), corpus);
  }
  auto run = [&](const std::string& panel, const std::string& value,
                 const std::vector<Query>& queries) {
    if (queries.empty()) return;
    for (const auto& index : indexes) {
      const QueryStats stats = bench::MeasureQueriesAuto(*index, queries);
      table->AddRow({panel, value, std::string(index->Name()),
                     Fmt(stats.queries_per_second, 0)});
    }
  };

  for (const double extent :
       {0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0}) {
    run("query extent%", Fmt(extent, 2),
        generator.ExtentWorkload(extent, 3, count));
  }
  for (uint32_t k = 1; k <= 5; ++k) {
    run("|q.d|", Fmt(static_cast<uint64_t>(k)),
        generator.ExtentWorkload(0.1, k, count));
  }
  struct Bin {
    const char* label;
    double lo, hi;
  };
  for (const Bin& bin :
       {Bin{"[*-0.1]", -1.0, 0.1}, Bin{"(0.1-1]", 0.1, 1.0},
        Bin{"(1-10]", 1.0, 10.0}, Bin{"(10-*]", 10.0, 100.0}}) {
    run("element freq%", bin.label,
        generator.FrequencyBinWorkload(bin.lo, bin.hi, 0.1, 3, count));
  }
  const auto mixed = generator.MixedWorkload(count * 4);
  for (const Workload& bin :
       BinBySelectivity(generator.oracle(), mixed, corpus.size())) {
    if (bin.name == "0") {
      run("results%", "0", generator.EmptyResultWorkload(0.1, 3, count / 2));
    } else {
      run("results%", bin.name, bin.queries);
    }
  }
  std::printf("# query-axis panels done\n");
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 12: synthetic datasets (Table 4 sweeps)");
  TablePrinter table({"panel", "value", "index", "queries/s"});
  const SyntheticParams defaults = DefaultParams();

  // Dataset-axis panels (one corpus per value; the default value reuses the
  // same corpus parameters as the query panels).
  for (const double factor : {0.2, 0.6, 1.0, 2.0}) {
    SyntheticParams p = defaults;
    p.cardinality = static_cast<uint64_t>(p.cardinality * factor);
    RunPanel("cardinality", Fmt(p.cardinality), p, &table);
  }
  for (const uint64_t domain :
       {uint64_t{4'000'000}, uint64_t{16'000'000}, uint64_t{64'000'000},
        uint64_t{256'000'000}}) {
    SyntheticParams p = defaults;
    p.domain = domain;
    RunPanel("domain size", Fmt(domain), p, &table);
  }
  for (const double alpha : {1.01, 1.1, 1.2, 1.4, 1.8}) {
    SyntheticParams p = defaults;
    p.alpha = alpha;
    RunPanel("alpha", Fmt(alpha, 2), p, &table);
  }
  for (const uint64_t sigma :
       {uint64_t{10'000}, uint64_t{100'000}, uint64_t{1'000'000},
        uint64_t{5'000'000}}) {
    SyntheticParams p = defaults;
    p.sigma = sigma;
    RunPanel("sigma", Fmt(sigma), p, &table);
  }
  for (const uint64_t dict :
       {uint64_t{1'000}, uint64_t{10'000}, uint64_t{100'000}}) {
    SyntheticParams p = defaults;
    p.dictionary_size = dict;
    RunPanel("dictionary", Fmt(dict), p, &table);
  }
  for (const uint32_t d : {5u, 10u, 50u, 100u}) {
    SyntheticParams p = defaults;
    p.description_size = d;
    RunPanel("|d|", Fmt(static_cast<uint64_t>(d)), p, &table);
  }
  for (const double zeta : {1.0, 1.25, 1.5, 1.75, 2.0}) {
    SyntheticParams p = defaults;
    p.zeta = zeta;
    RunPanel("zeta", Fmt(zeta, 2), p, &table);
  }

  RunQueryPanels(&table);

  std::printf("\n");
  table.Print(std::cout);
  return 0;
}

// Ablation A: HINT vs 1D-grid vs interval tree on pure interval range
// queries — the premise of the paper ("HINT outperforms all competitive
// interval indices"). Google-benchmark micro harness.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "hint/hint.h"
#include "interval_baselines/grid1d.h"
#include "interval_baselines/interval_tree.h"

namespace irhint {
namespace {

constexpr Time kDomainEnd = (1 << 24) - 1;

std::vector<IntervalRecord> MakeRecords(size_t n) {
  Rng rng(4711);
  ZipfSampler durations(kDomainEnd + 1, 1.2);
  std::vector<IntervalRecord> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Time st = rng.Uniform(kDomainEnd + 1);
    const Time end = std::min<Time>(kDomainEnd, st + durations.Sample(rng));
    records.push_back(IntervalRecord{static_cast<ObjectId>(i),
                                     Interval(st, end)});
  }
  return records;
}

std::vector<Interval> MakeQueries(size_t count, double extent_fraction) {
  Rng rng(1147);
  const Time length = std::max<Time>(
      1, static_cast<Time>(extent_fraction * (kDomainEnd + 1)));
  std::vector<Interval> queries;
  for (size_t i = 0; i < count; ++i) {
    const Time st = rng.Uniform(kDomainEnd + 2 - length);
    queries.emplace_back(st, st + length - 1);
  }
  return queries;
}

template <typename Index>
void RunQueries(benchmark::State& state, const Index& index) {
  const auto queries = MakeQueries(256, 1e-3);
  std::vector<ObjectId> out;
  size_t q = 0;
  size_t results = 0;
  for (auto _ : state) {
    out.clear();
    index.RangeQuery(queries[q % queries.size()], &out);
    results += out.size();
    benchmark::DoNotOptimize(out.data());
    ++q;
  }
  state.counters["results/query"] =
      static_cast<double>(results) / static_cast<double>(q);
}

void BM_Hint(benchmark::State& state) {
  const auto records = MakeRecords(static_cast<size_t>(state.range(0)));
  HintIndex index;
  HintOptions options;
  options.num_bits = 12;
  if (!index.Build(records, kDomainEnd, options).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  RunQueries(state, index);
}
BENCHMARK(BM_Hint)->Arg(100000)->Arg(1000000);

void BM_Grid1D(benchmark::State& state) {
  const auto records = MakeRecords(static_cast<size_t>(state.range(0)));
  Grid1D index;
  Grid1DOptions options;
  options.num_partitions = 4096;
  if (!index.Build(records, kDomainEnd, options).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  RunQueries(state, index);
}
BENCHMARK(BM_Grid1D)->Arg(100000)->Arg(1000000);

void BM_IntervalTree(benchmark::State& state) {
  const auto records = MakeRecords(static_cast<size_t>(state.range(0)));
  IntervalTree index;
  if (!index.Build(records, kDomainEnd).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  RunQueries(state, index);
}
BENCHMARK(BM_IntervalTree)->Arg(100000)->Arg(1000000);

}  // namespace
}  // namespace irhint

// Shared helpers for the paper-reproduction bench binaries.
//
// Every binary regenerates one table or figure of Section 5, printing the
// same rows/series the paper reports. Dataset sizes default to laptop scale;
// IRHINT_SCALE multiplies the dataset scale and IRHINT_QUERIES the number of
// queries per measurement.

#ifndef IRHINT_BENCH_BENCH_COMMON_H_
#define IRHINT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "data/corpus.h"
#include "data/real_sim.h"
#include "eval/runner.h"

namespace irhint {
namespace bench {

/// \brief Default simulator scales: ~18K ECLOG-like and ~8K WIKIPEDIA-like
/// objects — small enough that every bench binary finishes in minutes while
/// preserving the Table 3 shape (IRHINT_SCALE multiplies both).
inline constexpr double kEclogBaseScale = 0.06;
inline constexpr double kWikipediaBaseScale = 0.005;

inline Corpus LoadEclog() {
  const double scale = kEclogBaseScale * BenchScaleFromEnv();
  std::printf("# ECLOG-sim scale %.4f (x%.2f of the paper's dataset)\n",
              scale, scale);
  return MakeEclogLike(std::min(scale, 1.0));
}

inline Corpus LoadWikipedia() {
  const double scale = kWikipediaBaseScale * BenchScaleFromEnv();
  std::printf("# WIKIPEDIA-sim scale %.4f (x%.2f of the paper's dataset)\n",
              scale, scale);
  return MakeWikipediaLike(std::min(scale, 1.0));
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==============================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================\n");
}

}  // namespace bench
}  // namespace irhint

#endif  // IRHINT_BENCH_BENCH_COMMON_H_

// Shared helpers for the paper-reproduction bench binaries.
//
// Every binary regenerates one table or figure of Section 5, printing the
// same rows/series the paper reports. Dataset sizes default to laptop scale;
// IRHINT_SCALE multiplies the dataset scale and IRHINT_QUERIES the number of
// queries per measurement.

#ifndef IRHINT_BENCH_BENCH_COMMON_H_
#define IRHINT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/table_printer.h"
#include "core/temporal_ir_index.h"
#include "data/corpus.h"
#include "data/real_sim.h"
#include "eval/runner.h"

namespace irhint {
namespace bench {

/// \brief Default simulator scales: ~18K ECLOG-like and ~8K WIKIPEDIA-like
/// objects — small enough that every bench binary finishes in minutes while
/// preserving the Table 3 shape (IRHINT_SCALE multiplies both).
inline constexpr double kEclogBaseScale = 0.06;
inline constexpr double kWikipediaBaseScale = 0.005;

inline Corpus LoadEclog() {
  const double scale = kEclogBaseScale * BenchScaleFromEnv();
  std::printf("# ECLOG-sim scale %.4f (x%.2f of the paper's dataset)\n",
              scale, scale);
  return MakeEclogLike(std::min(scale, 1.0));
}

inline Corpus LoadWikipedia() {
  const double scale = kWikipediaBaseScale * BenchScaleFromEnv();
  std::printf("# WIKIPEDIA-sim scale %.4f (x%.2f of the paper's dataset)\n",
              scale, scale);
  return MakeWikipediaLike(std::min(scale, 1.0));
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==============================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================\n");
}

/// \brief Measure the batch serially, or sharded over IRHINT_THREADS pool
/// workers when that is set above 1. Both paths report the same
/// total_results (queries are const and sharding is deterministic), so
/// table shapes are unchanged — only queries/s scales.
inline QueryStats MeasureQueriesAuto(const TemporalIrIndex& index,
                                     const std::vector<Query>& queries) {
  const size_t threads = BenchThreadsFromEnv(1);
  if (threads > 1) return ParallelMeasureQueries(index, queries, threads);
  return MeasureQueries(index, queries);
}

/// \brief True when IRHINT_COUNTERS is set to a non-zero value: benches
/// then enable per-index work counters and print them alongside the
/// throughput tables. Off by default so the headline numbers stay
/// counter-free.
inline bool BenchCountersFromEnv() {
  const char* value = GetEnv("IRHINT_COUNTERS");
  return value != nullptr && std::atoi(value) != 0;
}

/// \brief Append one row per QueryCounters field to `table` (expects the
/// columns {"index", "counter", "value"}); no-op for indexes without
/// counter support.
inline void AddCounterRows(const TemporalIrIndex& index, TablePrinter* table) {
  const std::optional<QueryCounters> stats = index.Stats();
  if (!stats.has_value()) return;
  const std::string name(index.Name());
  table->AddRow({name, "divisions_visited", Fmt(stats->divisions_visited)});
  table->AddRow({name, "postings_scanned", Fmt(stats->postings_scanned)});
  table->AddRow(
      {name, "intersections_performed", Fmt(stats->intersections_performed)});
  table->AddRow(
      {name, "candidates_verified", Fmt(stats->candidates_verified)});
  table->AddRow({name, "postings_scored", Fmt(stats->postings_scored)});
  table->AddRow({name, "blocks_skipped", Fmt(stats->blocks_skipped)});
  table->AddRow({name, "divisions_skipped", Fmt(stats->divisions_skipped)});
}

}  // namespace bench
}  // namespace irhint

#endif  // IRHINT_BENCH_BENCH_COMMON_H_

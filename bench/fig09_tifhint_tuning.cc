// Figure 9: tuning the tIF+HINT variants — indexing time, index size and
// query throughput as the number of HINT bits m grows from 1 to 20
// (binary-search variant, merge-sort variant, and the hybrid with slicing).
//
// Paper shape to reproduce: indexing costs rise with m; throughput first
// improves then degrades (for the merge-sort based variants, subdivisions
// get too small for efficient merge intersections). The paper settles on
// m = 5 for merge-sort/hybrid and m = 10 for binary search. The last row
// set reports the m the interval cost model would pick, which the paper
// found over-sized for the IR-first designs.

#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "core/factory.h"
#include "data/query_gen.h"
#include "hint/cost_model.h"

using namespace irhint;

namespace {

void RunDataset(const std::string& dataset, const Corpus& corpus,
                TablePrinter* table) {
  const size_t count = BenchQueriesFromEnv(600);
  WorkloadGenerator generator(corpus, /*seed=*/909);
  const std::vector<Query> queries = generator.ExtentWorkload(0.1, 3, count);

  struct Variant {
    const char* name;
    IndexKind kind;
  };
  const Variant variants[] = {
      {"binary search", IndexKind::kTifHintBinarySearch},
      {"merge sort", IndexKind::kTifHintMergeSort},
      {"with slicing", IndexKind::kTifHintSlicing},
  };
  for (const int m : {1, 3, 5, 8, 10, 12, 15}) {
    for (const Variant& variant : variants) {
      IndexConfig config;
      config.tif_hint_bits_bs = m;
      config.tif_hint_bits_ms = m;
      std::unique_ptr<TemporalIrIndex> index =
          CreateIndex(variant.kind, config);
      const BuildStats build = MeasureBuild(index.get(), corpus);
      const QueryStats query = MeasureQueries(*index, queries);
      table->AddRow({dataset, Fmt(m), variant.name, Fmt(build.seconds, 2),
                     FmtMb(build.bytes), Fmt(query.queries_per_second, 0)});
    }
  }

  // What the interval-only cost model would pick (Section 5.2 reports this
  // is too large for the IR-first designs).
  std::vector<IntervalRecord> records;
  for (const Object& o : corpus.objects()) {
    records.push_back(IntervalRecord{o.id, o.interval});
  }
  const int model_m = ChooseHintBits(records, corpus.domain_end());
  std::printf("# %s: interval cost model would pick m = %d\n",
              dataset.c_str(), model_m);
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 9: tuning tIF+HINT variants (m)");
  TablePrinter table(
      {"dataset", "m", "variant", "index time [s]", "size [MB]",
       "queries/s"});
  {
    const Corpus eclog = bench::LoadEclog();
    RunDataset("ECLOG", eclog, &table);
  }
  {
    const Corpus wiki = bench::LoadWikipedia();
    RunDataset("WIKIPEDIA", wiki, &table);
  }
  std::printf("\n");
  table.Print(std::cout);
  return 0;
}

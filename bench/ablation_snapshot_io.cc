// Ablation D: snapshot persistence — cold-start load (mmap zero-copy vs
// buffered copying) against a full rebuild, and the save cost, for the two
// irHINT variants. Quantifies the "build once, serve many" win: the mmap
// path defers posting materialization entirely, so load time is dominated
// by directory reconstruction.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/factory.h"
#include "data/synthetic.h"
#include "storage/index_io.h"

namespace irhint {
namespace {

constexpr uint64_t kCardinality = 200000;

const Corpus& SharedCorpus() {
  static const Corpus* corpus = [] {
    SyntheticParams params;
    params.cardinality = kCardinality;
    params.domain = 8'000'000;
    params.sigma = 500'000;
    params.dictionary_size = 5000;
    params.description_size = 8;
    params.seed = 23;
    return new Corpus(GenerateSynthetic(params));
  }();
  return *corpus;
}

std::string SnapshotPath(IndexKind kind) {
  return "/tmp/irhint_bench_" +
         std::to_string(static_cast<int>(kind)) + ".irh";
}

// Build once per kind, save once; benchmarks then measure load paths.
const std::string& EnsureSnapshot(IndexKind kind) {
  static std::string paths[16];
  std::string& path = paths[static_cast<int>(kind)];
  if (path.empty()) {
    path = SnapshotPath(kind);
    std::unique_ptr<TemporalIrIndex> index = CreateIndex(kind);
    if (index->Build(SharedCorpus()).ok()) {
      SaveIndex(*index, path).ok();
    }
  }
  return path;
}

void BM_Rebuild(benchmark::State& state, IndexKind kind) {
  const Corpus& corpus = SharedCorpus();
  for (auto _ : state) {
    std::unique_ptr<TemporalIrIndex> index = CreateIndex(kind);
    if (!index->Build(corpus).ok()) {
      state.SkipWithError("build failed");
      return;
    }
    benchmark::DoNotOptimize(index.get());
  }
}

void BM_Load(benchmark::State& state, IndexKind kind, bool use_mmap) {
  const std::string& path = EnsureSnapshot(kind);
  SnapshotReadOptions options;
  options.use_mmap = use_mmap;
  for (auto _ : state) {
    StatusOr<LoadedIndex> loaded = LoadIndexSnapshot(path, options);
    if (!loaded.ok()) {
      state.SkipWithError("load failed");
      return;
    }
    benchmark::DoNotOptimize(loaded->index.get());
  }
}

void BM_Save(benchmark::State& state, IndexKind kind) {
  std::unique_ptr<TemporalIrIndex> index = CreateIndex(kind);
  if (!index->Build(SharedCorpus()).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  const std::string path = SnapshotPath(kind) + ".save";
  for (auto _ : state) {
    if (!SaveIndex(*index, path).ok()) {
      state.SkipWithError("save failed");
      return;
    }
  }
  std::remove(path.c_str());
}

#define SNAPSHOT_BENCHES(name, kind)                                   \
  void BM_##name##_Rebuild(benchmark::State& s) { BM_Rebuild(s, kind); } \
  BENCHMARK(BM_##name##_Rebuild)->Unit(benchmark::kMillisecond);       \
  void BM_##name##_LoadMmap(benchmark::State& s) {                     \
    BM_Load(s, kind, true);                                            \
  }                                                                    \
  BENCHMARK(BM_##name##_LoadMmap)->Unit(benchmark::kMillisecond);      \
  void BM_##name##_LoadBuffered(benchmark::State& s) {                 \
    BM_Load(s, kind, false);                                           \
  }                                                                    \
  BENCHMARK(BM_##name##_LoadBuffered)->Unit(benchmark::kMillisecond);  \
  void BM_##name##_Save(benchmark::State& s) { BM_Save(s, kind); }     \
  BENCHMARK(BM_##name##_Save)->Unit(benchmark::kMillisecond);

SNAPSHOT_BENCHES(IrHintPerf, IndexKind::kIrHintPerf)
SNAPSHOT_BENCHES(IrHintSize, IndexKind::kIrHintSize)
SNAPSHOT_BENCHES(Tif, IndexKind::kTif)

}  // namespace
}  // namespace irhint

// Ablation D: snapshot persistence — cold-start load (mmap zero-copy vs
// buffered copying) against a full rebuild, and the save cost, for the two
// irHINT variants and the tIF baseline. Quantifies the "build once, serve
// many" win: the mmap path defers posting materialization entirely, so load
// time is dominated by directory reconstruction.
//
// Runs on the shared bench harness (warmup + trials + robust stats). Knobs:
// IRHINT_SCALE multiplies the corpus size, IRHINT_BENCH_TRIALS /
// IRHINT_BENCH_WARMUP the trial schedule; --smoke shrinks to CI scale;
// IRHINT_BENCH_JSON=PATH additionally writes the harness JSON report.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "bench/harness.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/factory.h"
#include "data/synthetic.h"
#include "storage/index_io.h"

using namespace irhint;

namespace {

Corpus MakeCorpus(uint64_t cardinality) {
  SyntheticParams params;
  params.cardinality = cardinality;
  params.domain = 40 * cardinality;
  params.sigma = std::max<uint64_t>(1, cardinality * 5 / 2);
  params.dictionary_size = std::max<uint64_t>(100, cardinality / 40);
  params.description_size = 8;
  params.seed = 23;
  return GenerateSynthetic(params);
}

void RunKind(IndexKind kind, const Corpus& corpus,
             const bench::MeasureOptions& measure, TablePrinter* table,
             bench::BenchReport* report) {
  const std::string name(IndexKindName(kind));

  std::unique_ptr<TemporalIrIndex> index;
  const bench::TrialStats rebuild =
      bench::MeasureTrials(measure, [&corpus, &index, kind]() {
        index = CreateIndex(kind);
        Timer timer;
        if (!index->Build(corpus).ok()) return 0.0;
        return timer.Seconds();
      });
  if (index == nullptr) {
    std::fprintf(stderr, "build failed for %s\n", name.c_str());
    return;
  }

  const std::string path =
      "/tmp/irhint_ablation_snapshot_" +
      std::to_string(static_cast<int>(kind)) + ".irh";
  const bench::TrialStats save =
      bench::MeasureTrials(measure, [&index, &path]() {
        Timer timer;
        if (!SaveIndex(*index, path).ok()) return 0.0;
        return timer.Seconds();
      });

  bench::TrialStats load[2];  // [0] buffered, [1] mmap
  for (const bool use_mmap : {false, true}) {
    SnapshotReadOptions options;
    options.use_mmap = use_mmap;
    load[use_mmap ? 1 : 0] =
        bench::MeasureTrials(measure, [&path, options]() {
          Timer timer;
          auto loaded = LoadIndexSnapshot(path, options);
          if (!loaded.ok()) return 0.0;
          return timer.Seconds();
        });
  }
  std::remove(path.c_str());

  table->AddRow({name, Fmt(rebuild.p50 * 1e3, 1), Fmt(save.p50 * 1e3, 1),
                 Fmt(load[0].p50 * 1e3, 1), Fmt(load[1].p50 * 1e3, 1),
                 Fmt(rebuild.p50 / std::max(load[1].p50, 1e-9), 1)});

  report->Add("snapshot_io", "rebuild_s/" + name, "s",
              /*higher_is_better=*/false, rebuild);
  report->Add("snapshot_io", "save_s/" + name, "s",
              /*higher_is_better=*/false, save);
  report->Add("snapshot_io", "load_buffered_s/" + name, "s",
              /*higher_is_better=*/false, load[0]);
  report->Add("snapshot_io", "load_mmap_s/" + name, "s",
              /*higher_is_better=*/false, load[1]);
  std::printf("# %s done\n", name.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t cardinality = 200'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cardinality = 10'000;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }
  cardinality = std::max<uint64_t>(
      1000, static_cast<uint64_t>(static_cast<double>(cardinality) *
                                  BenchScaleFromEnv()));
  const bench::MeasureOptions measure =
      bench::MeasureOptionsFromEnv({/*warmup=*/1, /*trials=*/3});

  bench::PrintHeader("Ablation D: snapshot I/O — rebuild vs save/load");
  std::printf("# %llu objects, %zu trials (+%zu warmup), p50 shown\n",
              static_cast<unsigned long long>(cardinality), measure.trials,
              measure.warmup);
  const Corpus corpus = MakeCorpus(cardinality);

  TablePrinter table({"index", "rebuild [ms]", "save [ms]",
                      "load-buffered [ms]", "load-mmap [ms]", "speedup"});
  bench::BenchReport report("ablation_snapshot_io");
  for (const IndexKind kind :
       {IndexKind::kIrHintPerf, IndexKind::kIrHintSize, IndexKind::kTif}) {
    RunKind(kind, corpus, measure, &table, &report);
  }
  std::printf("\n");
  table.Print(std::cout);

  if (const char* json = GetEnv("IRHINT_BENCH_JSON");
      json != nullptr && json[0] != '\0') {
    const Status status = report.WriteJsonFile(json);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("# wrote %s\n", json);
  }
  return 0;
}

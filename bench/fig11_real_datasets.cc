// Figure 11: query throughput [queries/sec] of tIF+Slicing, tIF+Sharding,
// tIF+HINT+Slicing and the two irHINT variants on the (simulated) real
// datasets, across the paper's four experimental axes:
//   column 1 — query interval extent (0.01% .. 100% of the domain),
//   column 2 — number of query elements |q.d| (1..5),
//   column 3 — query element frequency bins,
//   column 4 — query selectivity bins (binned by oracle result counts).
//
// Paper shape to reproduce: irHINT-perf is the overall fastest (up to ~2x
// over the best IR-first method), irHINT-size next; IR-first methods are
// competitive only for highly selective queries (single elements on ECLOG,
// rare elements, near-empty results); throughput decreases with extent and
// element frequency and increases with |q.d|.

#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "core/factory.h"
#include "data/query_gen.h"
#include "eval/workload.h"

using namespace irhint;

namespace {

struct BuiltIndex {
  std::unique_ptr<TemporalIrIndex> index;
};

std::vector<BuiltIndex> BuildAll(const Corpus& corpus) {
  std::vector<BuiltIndex> out;
  for (const IndexKind kind : ComparisonIndexKinds()) {
    BuiltIndex b;
    b.index = CreateIndex(kind);
    const BuildStats stats = MeasureBuild(b.index.get(), corpus);
    std::printf("# built %-18s in %5.1fs (%s MB)\n",
                std::string(b.index->Name()).c_str(), stats.seconds,
                FmtMb(stats.bytes).c_str());
    out.push_back(std::move(b));
  }
  return out;
}

void RunWorkload(const std::vector<BuiltIndex>& indexes,
                 const std::string& axis, const std::string& value,
                 const std::vector<Query>& queries, TablePrinter* table) {
  if (queries.empty()) return;
  for (const BuiltIndex& b : indexes) {
    const QueryStats stats = bench::MeasureQueriesAuto(*b.index, queries);
    table->AddRow({axis, value, std::string(b.index->Name()),
                   Fmt(stats.queries_per_second, 0),
                   Fmt(static_cast<uint64_t>(queries.size())),
                   Fmt(stats.total_results)});
  }
}

void RunDataset(const std::string& dataset, const Corpus& corpus) {
  bench::PrintHeader("Figure 11 — " + dataset);
  const size_t count = BenchQueriesFromEnv(1000);
  WorkloadGenerator generator(corpus, /*seed=*/4242);
  const std::vector<BuiltIndex> indexes = BuildAll(corpus);
  if (bench::BenchCountersFromEnv()) {
    for (const BuiltIndex& b : indexes) b.index->EnableStats(true);
  }
  TablePrinter table(
      {"axis", "value", "index", "queries/s", "#q", "#results"});

  // Column 1: query interval extent (0.1% default elsewhere).
  for (const double extent :
       {0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0}) {
    const auto queries = generator.ExtentWorkload(extent, /*k=*/3, count);
    RunWorkload(indexes, "extent%", Fmt(extent, 2), queries, &table);
  }

  // Column 2: |q.d| in 1..5 at the default 0.1% extent.
  for (uint32_t k = 1; k <= 5; ++k) {
    const auto queries = generator.ExtentWorkload(0.1, k, count);
    RunWorkload(indexes, "|q.d|", Fmt(static_cast<uint64_t>(k)), queries,
                &table);
  }

  // Column 3: element frequency bins (percent of objects).
  struct Bin {
    const char* label;
    double lo, hi;
  };
  for (const Bin& bin :
       {Bin{"[*-0.1]", -1.0, 0.1}, Bin{"(0.1-1]", 0.1, 1.0},
        Bin{"(1-10]", 1.0, 10.0}, Bin{"(10-*]", 10.0, 100.0}}) {
    const auto queries =
        generator.FrequencyBinWorkload(bin.lo, bin.hi, 0.1, 3, count);
    RunWorkload(indexes, "elemfreq%", bin.label, queries, &table);
  }

  // Column 4: selectivity bins over a mixed workload.
  const auto mixed = generator.MixedWorkload(count * 4);
  const auto bins = BinBySelectivity(generator.oracle(), mixed, corpus.size());
  {
    const auto empties = generator.EmptyResultWorkload(0.1, 3, count / 2);
    RunWorkload(indexes, "results%", "0", empties, &table);
  }
  for (const Workload& bin : bins) {
    if (bin.name == "0") continue;  // handled above with purpose-built queries
    RunWorkload(indexes, "results%", bin.name, bin.queries, &table);
  }

  std::printf("\n");
  table.Print(std::cout);

  if (bench::BenchCountersFromEnv()) {
    TablePrinter counters({"index", "counter", "value"});
    for (const BuiltIndex& b : indexes) {
      bench::AddCounterRows(*b.index, &counters);
    }
    std::printf("\nper-index work counters (all workloads above):\n");
    counters.Print(std::cout);
  }
}

}  // namespace

int main() {
  // Figure 11 runs at a larger scale than the other benches: the relative
  // behaviour of the five indexes only separates once postings lists are
  // long enough that scanning work dominates fixed per-query costs.
  const double boost = 3.0;
  {
    std::printf("# ECLOG-sim scale %.4f\n",
                bench::kEclogBaseScale * boost * BenchScaleFromEnv());
    const Corpus eclog = MakeEclogLike(std::min(
        bench::kEclogBaseScale * boost * BenchScaleFromEnv(), 1.0));
    RunDataset("ECLOG", eclog);
  }
  {
    std::printf("# WIKIPEDIA-sim scale %.4f\n",
                bench::kWikipediaBaseScale * boost * BenchScaleFromEnv());
    const Corpus wiki = MakeWikipediaLike(std::min(
        bench::kWikipediaBaseScale * boost * BenchScaleFromEnv(), 1.0));
    RunDataset("WIKIPEDIA", wiki);
  }
  return 0;
}

// Canonical performance suite: one binary measuring every metric family the
// perf-trajectory gate tracks, through the shared harness (warmup + trials +
// robust stats), emitting the schema-versioned JSON that tools/bench_diff.py
// compares against the committed baseline BENCH_core.json.
//
// Families:
//   build           — seconds to bulk-build each comparison index kind
//   query_latency   — per-query microseconds (p50/p99) per kind x workload
//   query_throughput— queries/second per kind x workload
//   parallel_query_scaling — irHINT-perf queries/second at 1/2/4/8 threads
//   topk_latency    — ranked top-k microseconds (p50/p99) on scored-irHINT
//                     at k in {1,10,100}, vs the exhaustive oracle, plus
//                     the postings-scored ratio (traversal / oracle)
//   ingest          — objects/second through DurableIndex per WAL policy
//   snapshot        — save / buffered-load / mmap-load seconds (irHINT-perf)
//   footprint       — in-memory and snapshot bytes per object
//
// Flags: --smoke shrinks every dimension to CI scale (the gate and the
// committed baseline both use it); --out PATH writes the JSON report.
// Knobs: IRHINT_SCALE multiplies the corpus size, IRHINT_BENCH_TRIALS /
// IRHINT_BENCH_WARMUP override the trial schedule, IRHINT_GIT_SHA overrides
// the configure-time commit stamp.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/harness.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/durable_index.h"
#include "core/factory.h"
#include "data/query_gen.h"
#include "data/synthetic.h"
#include "rank/scored_index.h"
#include "storage/index_io.h"

using namespace irhint;

namespace {

struct SuiteConfig {
  uint64_t cardinality = 120'000;
  size_t queries = 2000;
  uint64_t ingest_objects = 20'000;
  bench::MeasureOptions measure{/*warmup=*/1, /*trials=*/5};
  std::string out_path;  // empty = print only
};

Corpus SuiteCorpus(uint64_t cardinality) {
  SyntheticParams params;
  params.cardinality = cardinality;
  params.domain = 80 * cardinality;
  params.sigma = 4 * cardinality;
  params.dictionary_size = std::max<uint64_t>(100, cardinality / 10);
  params.description_size = 8;
  params.seed = 31;
  return GenerateSynthetic(params);
}

struct NamedWorkload {
  std::string name;
  std::vector<Query> queries;
};

std::vector<NamedWorkload> SuiteWorkloads(const Corpus& corpus,
                                          size_t queries) {
  WorkloadGenerator gen(corpus, /*seed=*/97);
  std::vector<NamedWorkload> workloads;
  // A narrow multi-element lookup and a wide scan-heavy one: the two ends
  // of the paper's extent axis that stress different index layers.
  workloads.push_back({"extent01_k2", gen.ExtentWorkload(0.1, 2, queries)});
  workloads.push_back({"extent5_k3", gen.ExtentWorkload(5.0, 3, queries)});
  return workloads;
}

/// Per-kind: build (timed trials, keeping the last build for the query and
/// footprint families), then per-workload latency samples and throughput.
void RunIndexFamilies(const SuiteConfig& config, const Corpus& corpus,
                      const std::vector<NamedWorkload>& workloads,
                      bench::BenchReport* report) {
  for (const IndexKind kind : ComparisonIndexKinds()) {
    const std::string kind_name(IndexKindName(kind));
    std::unique_ptr<TemporalIrIndex> index;
    const bench::TrialStats build = bench::MeasureTrials(
        config.measure, [&corpus, &index, kind]() {
          index = CreateIndex(kind);
          Timer timer;
          if (!index->Build(corpus).ok()) return 0.0;
          return timer.Seconds();
        });
    report->Add("build", "build_s/" + kind_name, "s",
                /*higher_is_better=*/false, build);
    if (index == nullptr) continue;

    report->Add("footprint", "mem_bytes_per_object/" + kind_name, "B",
                /*higher_is_better=*/false,
                bench::ComputeTrialStats(
                    {static_cast<double>(index->MemoryUsageBytes()) /
                     static_cast<double>(corpus.size())}));

    for (const NamedWorkload& workload : workloads) {
      std::vector<ObjectId> out;
      // Latency: one untimed warmup pass, then per-query samples — the
      // percentiles are over individual queries, not batch repetitions.
      for (const Query& query : workload.queries) {
        out.clear();
        index->Query(query, &out);
      }
      std::vector<double> latencies_us;
      latencies_us.reserve(workload.queries.size());
      for (const Query& query : workload.queries) {
        out.clear();
        Timer timer;
        index->Query(query, &out);
        latencies_us.push_back(timer.Seconds() * 1e6);
      }
      report->Add("query_latency",
                  "query_us/" + kind_name + "/" + workload.name, "us",
                  /*higher_is_better=*/false,
                  bench::ComputeTrialStats(std::move(latencies_us)));

      const bench::TrialStats throughput = bench::MeasureTrials(
          config.measure, [&index, &workload, &out]() {
            Timer timer;
            for (const Query& query : workload.queries) {
              out.clear();
              index->Query(query, &out);
            }
            const double seconds = timer.Seconds();
            return seconds > 0.0
                       ? static_cast<double>(workload.queries.size()) / seconds
                       : 0.0;
          });
      report->Add("query_throughput",
                  "qps/" + kind_name + "/" + workload.name, "q/s",
                  /*higher_is_better=*/true, throughput);
    }
    std::printf("# %s done\n", kind_name.c_str());
  }
}

/// Thread-scaling of the flagship kind on the narrow workload: the same
/// batch pushed through ParallelMeasureQueries at 1/2/4/8 pool workers.
/// On a single-core runner the curve is flat — the family then gates the
/// parallel path's overhead rather than its speedup.
void RunParallelScalingFamily(const SuiteConfig& config, const Corpus& corpus,
                              const std::vector<NamedWorkload>& workloads,
                              bench::BenchReport* report) {
  std::unique_ptr<TemporalIrIndex> index = CreateIndex(IndexKind::kIrHintPerf);
  if (!index->Build(corpus).ok() || workloads.empty()) return;
  const NamedWorkload& workload = workloads.front();
  for (const size_t threads : {1, 2, 4, 8}) {
    const bench::TrialStats stats =
        bench::MeasureTrials(config.measure, [&index, &workload, threads]() {
          const QueryStats qs =
              threads == 1
                  ? MeasureQueries(*index, workload.queries)
                  : ParallelMeasureQueries(*index, workload.queries, threads);
          return qs.queries_per_second;
        });
    report->Add("parallel_query_scaling",
                "pqs_qps/irhint_perf/t" + std::to_string(threads), "q/s",
                /*higher_is_better=*/true, stats);
  }
  std::printf("# parallel_query_scaling done\n");
}

/// Ranked retrieval on the narrow workload: per-query latency of the
/// MaxScore traversal and of the exhaustive oracle at k in {1,10,100},
/// plus the traversal/oracle postings-scored ratio — the early-termination
/// win the gate tracks (1.0 = no pruning; the acceptance bar is <= 0.5 at
/// k=10). Results are asserted identical while sampling: a divergence
/// zeroes the family rather than publishing latencies of a wrong answer.
void RunTopkFamily(const SuiteConfig& config, const Corpus& corpus,
                   const std::vector<NamedWorkload>& workloads,
                   bench::BenchReport* report) {
  (void)config;
  auto index = std::make_unique<ScoredIndex>(
      ScoredIndexOptions{IndexKind::kIrHintPerf, /*divisions=*/32},
      IndexConfig());
  if (!index->Build(corpus).ok() || workloads.empty()) return;
  const NamedWorkload& workload = workloads.front();
  for (const uint32_t k : {1u, 10u, 100u}) {
    const std::string suffix =
        "/scored_irhint/" + workload.name + "/k" + std::to_string(k);
    std::vector<ScoredHit> hits, oracle_hits;
    // Warmup + correctness pass: every query must answer identically
    // through the traversal and the oracle before its latency counts.
    for (const Query& query : workload.queries) {
      if (!index->TopKQuery(query, k, &hits).ok() ||
          !index->TopKOracle(query, k, &oracle_hits).ok() ||
          hits != oracle_hits) {
        std::fprintf(stderr, "# topk/oracle mismatch at k=%u — skipping\n", k);
        return;
      }
    }

    index->EnableStats(true);
    index->ResetStats();
    std::vector<double> topk_us;
    topk_us.reserve(workload.queries.size());
    for (const Query& query : workload.queries) {
      Timer timer;
      if (!index->TopKQuery(query, k, &hits).ok()) return;
      topk_us.push_back(timer.Seconds() * 1e6);
    }
    const uint64_t traversal_scored = index->Stats()->postings_scored;

    index->ResetStats();
    std::vector<double> oracle_us;
    oracle_us.reserve(workload.queries.size());
    for (const Query& query : workload.queries) {
      Timer timer;
      if (!index->TopKOracle(query, k, &hits).ok()) return;
      oracle_us.push_back(timer.Seconds() * 1e6);
    }
    const uint64_t oracle_scored = index->Stats()->postings_scored;
    index->EnableStats(false);

    report->Add("topk_latency", "topk_us" + suffix, "us",
                /*higher_is_better=*/false,
                bench::ComputeTrialStats(std::move(topk_us)));
    report->Add("topk_latency", "topk_oracle_us" + suffix, "us",
                /*higher_is_better=*/false,
                bench::ComputeTrialStats(std::move(oracle_us)));
    report->Add("topk_latency", "topk_scored_ratio" + suffix, "x",
                /*higher_is_better=*/false,
                bench::ComputeTrialStats(
                    {oracle_scored > 0
                         ? static_cast<double>(traversal_scored) /
                               static_cast<double>(oracle_scored)
                         : 0.0}));
  }
  std::printf("# topk_latency done\n");
}

void RunIngestFamily(const SuiteConfig& config, const Corpus& corpus,
                     bench::BenchReport* report) {
  struct PolicyCase {
    const char* name;
    WalDurability durability;
  };
  const PolicyCase policies[] = {
      {"none", WalDurability::kNone},
      {"batch", WalDurability::kBatch},
      {"always", WalDurability::kAlways},
  };
  const uint64_t count =
      std::min<uint64_t>(config.ingest_objects, corpus.size());
  for (const PolicyCase& policy : policies) {
    const std::string dir =
        std::string("/tmp/irhint_perf_suite_wal_") + policy.name;
    const bench::TrialStats stats = bench::MeasureTrials(
        config.measure, [&corpus, &dir, &policy, count]() {
          std::filesystem::remove_all(dir);
          DurableIndexOptions options;
          options.kind = IndexKind::kIrHintPerf;
          options.durability = policy.durability;
          options.checkpoint_bytes = 0;
          auto index = DurableIndex::Open(dir, options);
          if (!index.ok()) return 0.0;
          Timer timer;
          for (uint64_t id = 0; id < count; ++id) {
            if (!(*index)->Insert(corpus.object(static_cast<ObjectId>(id)))
                     .ok()) {
              return 0.0;
            }
          }
          if (!(*index)->Flush().ok()) return 0.0;
          const double seconds = timer.Seconds();
          return seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
        });
    std::filesystem::remove_all(dir);
    report->Add("ingest", std::string("ingest_objs_per_s/") + policy.name,
                "obj/s", /*higher_is_better=*/true, stats);
    std::printf("# ingest %s done\n", policy.name);
  }
}

void RunSnapshotFamily(const SuiteConfig& config, const Corpus& corpus,
                       bench::BenchReport* report) {
  std::unique_ptr<TemporalIrIndex> index = CreateIndex(IndexKind::kIrHintPerf);
  if (!index->Build(corpus).ok()) return;
  const std::string path = "/tmp/irhint_perf_suite.irh";

  report->Add("snapshot", "snapshot_save_s", "s", /*higher_is_better=*/false,
              bench::MeasureTrials(config.measure, [&index, &path]() {
                Timer timer;
                if (!SaveIndex(*index, path).ok()) return 0.0;
                return timer.Seconds();
              }));

  for (const bool use_mmap : {false, true}) {
    SnapshotReadOptions options;
    options.use_mmap = use_mmap;
    report->Add("snapshot",
                use_mmap ? "snapshot_load_mmap_s" : "snapshot_load_buffered_s",
                "s", /*higher_is_better=*/false,
                bench::MeasureTrials(config.measure, [&path, options]() {
                  Timer timer;
                  auto loaded = LoadIndexSnapshot(path, options);
                  if (!loaded.ok()) return 0.0;
                  return timer.Seconds();
                }));
  }

  auto* env = DefaultWalEnv();
  if (auto size = env->FileSize(path); size.ok()) {
    report->Add("footprint", "snapshot_bytes_per_object/irhint_perf", "B",
                /*higher_is_better=*/false,
                bench::ComputeTrialStats({static_cast<double>(*size) /
                                          static_cast<double>(corpus.size())}));
  }
  std::remove(path.c_str());
  std::printf("# snapshot done\n");
}

void PrintSummary(const bench::BenchReport& report) {
  TablePrinter table({"family", "metric", "unit", "p50", "p99", "trials"});
  for (const bench::BenchMetric& m : report.metrics()) {
    table.AddRow({m.family, m.name, m.unit, Fmt(m.stats.p50, 4),
                  Fmt(m.stats.p99, 4), Fmt(static_cast<uint64_t>(
                                              m.stats.trials))});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  SuiteConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      // CI scale: every family still runs, small enough for a PR gate.
      config.cardinality = 10'000;
      config.queries = 400;
      config.ingest_objects = 1500;
      config.measure.trials = 3;
    } else if (arg == "--out" && i + 1 < argc) {
      config.out_path = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      config.out_path = arg.substr(6);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  config.cardinality = std::max<uint64_t>(
      1000,
      static_cast<uint64_t>(static_cast<double>(config.cardinality) *
                            BenchScaleFromEnv()));
  config.measure = bench::MeasureOptionsFromEnv(config.measure);

  bench::PrintHeader("irHINT canonical perf suite");
  std::printf("# %llu objects, %zu queries/workload, %zu trials (+%zu warmup)\n",
              static_cast<unsigned long long>(config.cardinality),
              config.queries, config.measure.trials, config.measure.warmup);
  const Corpus corpus = SuiteCorpus(config.cardinality);
  const std::vector<NamedWorkload> workloads =
      SuiteWorkloads(corpus, config.queries);

  bench::BenchReport report("core");
  RunIndexFamilies(config, corpus, workloads, &report);
  RunParallelScalingFamily(config, corpus, workloads, &report);
  RunTopkFamily(config, corpus, workloads, &report);
  RunIngestFamily(config, corpus, &report);
  RunSnapshotFamily(config, corpus, &report);

  std::printf("\n");
  PrintSummary(report);

  if (!config.out_path.empty()) {
    const Status status = report.WriteJsonFile(config.out_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("# wrote %s (%zu metrics)\n", config.out_path.c_str(),
                report.metrics().size());
  }
  return 0;
}

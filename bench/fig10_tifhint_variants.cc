// Figure 10: query throughput of the three tIF+HINT variants (binary
// search / merge sort / with slicing) at their tuned m values, across
// query interval extent, |q.d| and element-frequency bins.
//
// Paper shape to reproduce: merge sort beats binary search except for
// single-element queries (where binary search's fully optimized HINT range
// query shines and no intersections happen); the hybrid with slicing is
// the best overall for multi-element queries.

#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "core/factory.h"
#include "data/query_gen.h"

using namespace irhint;

namespace {

void RunDataset(const std::string& dataset, const Corpus& corpus,
                TablePrinter* table) {
  const size_t count = BenchQueriesFromEnv(800);
  WorkloadGenerator generator(corpus, /*seed=*/1010);

  std::vector<std::unique_ptr<TemporalIrIndex>> indexes;
  for (const IndexKind kind :
       {IndexKind::kTifHintBinarySearch, IndexKind::kTifHintMergeSort,
        IndexKind::kTifHintSlicing}) {
    indexes.push_back(CreateIndex(kind));
    const BuildStats stats = MeasureBuild(indexes.back().get(), corpus);
    std::printf("# built %-18s on %-9s in %5.1fs (%s MB)\n",
                std::string(indexes.back()->Name()).c_str(), dataset.c_str(),
                stats.seconds, FmtMb(stats.bytes).c_str());
  }

  auto run = [&](const std::string& axis, const std::string& value,
                 const std::vector<Query>& queries) {
    if (queries.empty()) return;
    for (const auto& index : indexes) {
      const QueryStats stats = MeasureQueries(*index, queries);
      table->AddRow({dataset, axis, value, std::string(index->Name()),
                     Fmt(stats.queries_per_second, 0)});
    }
  };

  for (const double extent : {0.01, 0.05, 0.1, 0.5, 1.0}) {
    run("extent%", Fmt(extent, 2), generator.ExtentWorkload(extent, 3, count));
  }
  for (uint32_t k = 1; k <= 5; ++k) {
    run("|q.d|", Fmt(static_cast<uint64_t>(k)),
        generator.ExtentWorkload(0.1, k, count));
  }
  struct Bin {
    const char* label;
    double lo, hi;
  };
  for (const Bin& bin :
       {Bin{"[*-0.1]", -1.0, 0.1}, Bin{"(0.1-1]", 0.1, 1.0},
        Bin{"(1-10]", 1.0, 10.0}, Bin{"(10-*]", 10.0, 100.0}}) {
    run("elemfreq%", bin.label,
        generator.FrequencyBinWorkload(bin.lo, bin.hi, 0.1, 3, count));
  }
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 10: comparing the tIF+HINT variants");
  TablePrinter table({"dataset", "axis", "value", "index", "queries/s"});
  {
    const Corpus eclog = bench::LoadEclog();
    RunDataset("ECLOG", eclog, &table);
  }
  {
    const Corpus wiki = bench::LoadWikipedia();
    RunDataset("WIKIPEDIA", wiki, &table);
  }
  std::printf("\n");
  table.Print(std::cout);
  return 0;
}

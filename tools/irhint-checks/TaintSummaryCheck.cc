#include "TaintSummaryCheck.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "CheckUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Lex/Lexer.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace irhint_checks {

namespace {

std::set<std::string> SplitNames(StringRef List) {
  std::set<std::string> Names;
  while (!List.empty()) {
    std::pair<StringRef, StringRef> Parts = List.split(';');
    StringRef Name = Parts.first.trim();
    if (!Name.empty()) Names.insert(Name.str());
    List = Parts.second;
  }
  return Names;
}

// Walks every statement in `Root` (inclusive), pre-order.
template <typename Fn>
void ForEachStmt(const Stmt* Root, Fn&& Visit) {
  if (Root == nullptr) return;
  Visit(Root);
  for (const Stmt* Child : Root->children()) ForEachStmt(Child, Visit);
}

// Calls `Visit` for every DeclRefExpr under `Root` that names a VarDecl.
template <typename Fn>
void ForEachVarRef(const Stmt* Root, Fn&& Visit) {
  ForEachStmt(Root, [&](const Stmt* S) {
    if (const auto* Ref = dyn_cast<DeclRefExpr>(S)) {
      if (const auto* Var = dyn_cast<VarDecl>(Ref->getDecl())) {
        Visit(Ref, Var);
      }
    }
  });
}

// The variable a unary & argument takes the address of, if any:
// matches the `reader.ReadU64(&count)` out-parameter idiom.
const VarDecl* AddressOfVar(const Expr* Arg) {
  if (Arg == nullptr) return nullptr;
  const auto* Unary = dyn_cast<UnaryOperator>(Arg->IgnoreParenImpCasts());
  if (Unary == nullptr || Unary->getOpcode() != UO_AddrOf) return nullptr;
  const auto* Ref =
      dyn_cast<DeclRefExpr>(Unary->getSubExpr()->IgnoreParenImpCasts());
  if (Ref == nullptr) return nullptr;
  return dyn_cast<VarDecl>(Ref->getDecl());
}

StringRef MethodName(const CallExpr* Call) {
  const auto* Callee = dyn_cast_or_null<NamedDecl>(Call->getCalleeDecl());
  if (Callee == nullptr) return StringRef();
  const IdentifierInfo* Ident = Callee->getIdentifier();
  return Ident == nullptr ? StringRef() : Ident->getName();
}

// Repo-relative spelling of an absolute path: everything from the last
// top-level repo directory marker on. Keeps summary keys, baselines,
// and sidecars byte-identical across checkouts and machines.
std::string RepoRelative(StringRef Path) {
  static const StringRef Markers[] = {"/src/",   "/tools/", "/fuzz/",
                                      "/bench/", "/tests/", "/examples/"};
  // Pick the *earliest* marker so nested matches ("tools/.../test/")
  // keep the full repo-relative prefix.
  size_t Best = StringRef::npos;
  for (StringRef Marker : Markers) {
    const size_t Pos = Path.find(Marker);
    if (Pos != StringRef::npos && (Best == StringRef::npos || Pos < Best)) {
      Best = Pos;
    }
  }
  if (Best == StringRef::npos) return Path.str();
  return Path.substr(Best + 1).str();
}

// FNV-1a, for stable sidecar filenames.
uint64_t Fnv1a(StringRef S) {
  uint64_t H = 1469598103934665603ull;
  for (const char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  return H;
}

// Matches python's json.dumps escaping for the ASCII strings we emit.
std::string JsonEscape(StringRef S) {
  std::string Out;
  Out.reserve(S.size());
  for (const char C : S) {
    switch (C) {
      case '"':
        Out += "\\\"";
        break;
      case '\\':
        Out += "\\\\";
        break;
      case '\n':
        Out += "\\n";
        break;
      case '\r':
        Out += "\\r";
        break;
      case '\t':
        Out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          char Buf[8];
          std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
          Out += Buf;
        } else {
          Out += C;
        }
    }
  }
  return Out;
}

std::string AnnotationOf(const FunctionDecl* Func) {
  for (const FunctionDecl* R : Func->redecls()) {
    if (HasAnnotation(R, "irhint::untrusted")) return "untrusted";
    if (HasAnnotation(R, "irhint::sanitizer")) return "sanitizer";
  }
  return "";
}

// Stable cross-TU identity: qualified name + arity; internal-linkage
// functions additionally carry their file so same-named static helpers
// in different TUs never merge.
std::string FunctionKey(const FunctionDecl* Func, const SourceManager& SM) {
  std::string Key;
  if (!Func->isExternallyVisible()) {
    const PresumedLoc Loc = SM.getPresumedLoc(
        SM.getExpansionLoc(Func->getFirstDecl()->getLocation()));
    if (Loc.isValid()) {
      Key += RepoRelative(Loc.getFilename());
      Key += "!";
    }
  }
  Key += Func->getQualifiedNameAsString();
  Key += "/";
  Key += std::to_string(Func->getNumParams());
  return Key;
}

using OriginSet = std::set<std::string>;

std::string JoinOrigins(const OriginSet& From) {
  std::string Out = "[";
  bool First = true;
  for (const std::string& O : From) {
    if (!First) Out += ",";
    First = false;
    Out += "\"" + JsonEscape(O) + "\"";
  }
  Out += "]";
  return Out;
}

}  // namespace

TaintSummaryCheck::TaintSummaryCheck(StringRef Name, ClangTidyContext* Context)
    : ClangTidyCheck(Name, Context),
      SummaryDir(Options.get("SummaryDir", "")),
      SourceFunctions(Options.get("SourceFunctions", "")),
      SanitizerFunctions(Options.get(
          "SanitizerFunctions",
          "CheckedAdd;CheckedSub;CheckedMul;CheckedCast;SaturatingAdd;"
          "SaturatingMul;GrowToFit;FitsInBytes")) {}

void TaintSummaryCheck::storeOptions(ClangTidyOptions::OptionMap& Opts) {
  Options.store(Opts, "SummaryDir", SummaryDir);
  Options.store(Opts, "SourceFunctions", SourceFunctions);
  Options.store(Opts, "SanitizerFunctions", SanitizerFunctions);
}

void TaintSummaryCheck::registerMatchers(MatchFinder* Finder) {
  if (SummaryDir.empty()) return;
  // The TU matcher fires even for function-free TUs, so every TU in the
  // compile database produces a sidecar and the driver can verify none
  // silently vanished.
  Finder->addMatcher(translationUnitDecl().bind("tu"), this);
  Finder->addMatcher(functionDecl(isDefinition(), hasBody(stmt()),
                                  unless(isExpansionInSystemHeader()))
                         .bind("func"),
                     this);
}

void TaintSummaryCheck::check(const MatchFinder::MatchResult& Result) {
  if (SummaryDir.empty()) return;
  if (Result.Nodes.getNodeAs<TranslationUnitDecl>("tu") != nullptr) {
    const SourceManager& SM = *Result.SourceManager;
    MainFile =
        SM.getFilename(SM.getLocForStartOfFile(SM.getMainFileID())).str();
    return;
  }
  const auto* Func = Result.Nodes.getNodeAs<FunctionDecl>("func");
  if (Func == nullptr || !Func->doesThisDeclarationHaveABody()) return;
  if (Func->isImplicit()) return;
  AnalyzeFunction(Func, Result);
}

void TaintSummaryCheck::AnalyzeFunction(
    const FunctionDecl* Func, const MatchFinder::MatchResult& Result) {
  const Stmt* Body = Func->getBody();
  const SourceManager& SM = *Result.SourceManager;
  const LangOptions& LangOpts = Result.Context->getLangOpts();

  const PresumedLoc DeclLoc =
      SM.getPresumedLoc(SM.getExpansionLoc(Func->getLocation()));
  if (DeclLoc.isInvalid()) return;
  const PresumedLoc EndLoc =
      SM.getPresumedLoc(SM.getExpansionLoc(Func->getEndLoc()));

  FunctionSummary Summary;
  Summary.Key = FunctionKey(Func, SM);
  Summary.Display = Func->getQualifiedNameAsString();
  Summary.File = RepoRelative(DeclLoc.getFilename());
  Summary.Line = DeclLoc.getLine();
  Summary.EndLine = EndLoc.isValid() ? EndLoc.getLine() : Summary.Line;
  Summary.Params = static_cast<int>(Func->getNumParams());
  Summary.Annotated = AnnotationOf(Func);

  const std::set<std::string> Sources = SplitNames(SourceFunctions);
  const std::set<std::string> Sanitizers = SplitNames(SanitizerFunctions);

  auto NameOf = [](const FunctionDecl* D) -> std::string {
    const IdentifierInfo* Ident = D->getIdentifier();
    return Ident == nullptr ? std::string() : Ident->getName().str();
  };
  auto IsSanitizerCallee = [&](const FunctionDecl* D) {
    if (!AnnotationOf(D).empty() && AnnotationOf(D) == "sanitizer") {
      return true;
    }
    const std::string Name = NameOf(D);
    return !Name.empty() && Sanitizers.count(Name) != 0;
  };
  auto IsSourceCallee = [&](const FunctionDecl* D) {
    if (AnnotationOf(D) == "untrusted") return true;
    const std::string Name = NameOf(D);
    return !Name.empty() && Sources.count(Name) != 0;
  };
  auto CalleeKey = [&](const FunctionDecl* D) { return FunctionKey(D, SM); };
  auto LineOf = [&](SourceLocation Loc) -> unsigned {
    const PresumedLoc P = SM.getPresumedLoc(SM.getExpansionLoc(Loc));
    return P.isValid() ? P.getLine() : 0;
  };

  // A call is an opaque summary boundary when its callee resolves to a
  // plain (non-operator) function; operator calls keep mention
  // semantics so `v[i]` and overloaded arithmetic stay transparent.
  auto BoundaryCallee = [&](const Stmt* S) -> const FunctionDecl* {
    const auto* Call = dyn_cast<CallExpr>(S);
    if (Call == nullptr || isa<CXXOperatorCallExpr>(Call)) return nullptr;
    return Call->getDirectCallee();
  };

  // --- Record callee annotations visible from this TU. ---------------
  ForEachStmt(Body, [&](const Stmt* S) {
    const auto* Call = dyn_cast<CallExpr>(S);
    if (Call == nullptr) return;
    const FunctionDecl* D = Call->getDirectCallee();
    if (D == nullptr) return;
    if (IsSourceCallee(D)) {
      KnownAnnotated[CalleeKey(D)] = "untrusted";
    } else if (IsSanitizerCallee(D)) {
      KnownAnnotated[CalleeKey(D)] = "sanitizer";
    }
  });

  // --- Param indexing and origin seeds. ------------------------------
  std::map<const VarDecl*, OriginSet> Origins;
  std::map<const ParmVarDecl*, int> ParamIndex;
  for (unsigned I = 0; I < Func->getNumParams(); ++I) {
    const ParmVarDecl* Param = Func->getParamDecl(I);
    ParamIndex[Param] = static_cast<int>(I);
    Origins[Param].insert("param:" + std::to_string(I));
  }
  // `Read(&x)` out-parameter idiom and non-const reference arguments:
  // the callee may write into the variable, so it picks up a
  // call_out origin whose hotness the linker decides.
  ForEachStmt(Body, [&](const Stmt* S) {
    const FunctionDecl* D = BoundaryCallee(S);
    if (D == nullptr || IsSanitizerCallee(D)) return;
    const auto* Call = cast<CallExpr>(S);
    const std::string Key = CalleeKey(D);
    unsigned J = 0;
    for (const Expr* Arg : Call->arguments()) {
      const VarDecl* Written = AddressOfVar(Arg);
      if (Written == nullptr && J < D->getNumParams()) {
        const QualType ParamType = D->getParamDecl(J)->getType();
        if (ParamType->isLValueReferenceType() &&
            !ParamType.getNonReferenceType().isConstQualified()) {
          if (const auto* Ref =
                  dyn_cast<DeclRefExpr>(Arg->IgnoreParenImpCasts())) {
            Written = dyn_cast<VarDecl>(Ref->getDecl());
          }
        }
      }
      if (Written != nullptr) {
        Origins[Written].insert("call_out:" + Key + ":" + std::to_string(J));
      }
      ++J;
    }
  });

  // --- Blessing (identical rules to irhint-untrusted-decode). --------
  std::set<const DeclRefExpr*> AddrOfRefs;
  ForEachStmt(Body, [&](const Stmt* S) {
    const auto* Unary = dyn_cast<UnaryOperator>(S);
    if (Unary == nullptr || Unary->getOpcode() != UO_AddrOf) return;
    if (const auto* Ref = dyn_cast<DeclRefExpr>(
            Unary->getSubExpr()->IgnoreParenImpCasts())) {
      AddrOfRefs.insert(Ref);
    }
  });
  std::set<const VarDecl*> Blessed;
  auto BlessAllIn = [&](const Stmt* Root) {
    ForEachVarRef(Root, [&](const DeclRefExpr* Ref, const VarDecl* Var) {
      if (AddrOfRefs.count(Ref) == 0) Blessed.insert(Var);
    });
  };
  ForEachStmt(Body, [&](const Stmt* S) {
    if (const auto* Bin = dyn_cast<BinaryOperator>(S)) {
      if (Bin->isComparisonOp()) BlessAllIn(Bin);
      return;
    }
    if (const auto* If = dyn_cast<IfStmt>(S)) {
      BlessAllIn(If->getCond());
      return;
    }
    if (const auto* While = dyn_cast<WhileStmt>(S)) {
      BlessAllIn(While->getCond());
      return;
    }
    if (const auto* Do = dyn_cast<DoStmt>(S)) {
      BlessAllIn(Do->getCond());
      return;
    }
    if (const auto* For = dyn_cast<ForStmt>(S)) {
      BlessAllIn(For->getCond());
      return;
    }
    if (const auto* Switch = dyn_cast<SwitchStmt>(S)) {
      BlessAllIn(Switch->getCond());
      return;
    }
    if (const auto* Cond = dyn_cast<ConditionalOperator>(S)) {
      BlessAllIn(Cond->getCond());
      return;
    }
    if (const auto* Op = dyn_cast<CXXOperatorCallExpr>(S)) {
      const OverloadedOperatorKind Kind = Op->getOperator();
      if (Kind == OO_Less || Kind == OO_Greater || Kind == OO_LessEqual ||
          Kind == OO_GreaterEqual || Kind == OO_EqualEqual ||
          Kind == OO_ExclaimEqual || Kind == OO_Spaceship) {
        BlessAllIn(Op);
      }
      return;
    }
    if (const auto* Call = dyn_cast<CallExpr>(S)) {
      const FunctionDecl* D = Call->getDirectCallee();
      if (D != nullptr && IsSanitizerCallee(D)) BlessAllIn(Call);
      return;
    }
  });
  ForEachVarRef(Body, [&](const DeclRefExpr* Ref, const VarDecl* Var) {
    if (Blessed.count(Var) != 0 || AddrOfRefs.count(Ref) != 0) return;
    const SourceLocation Loc = Ref->getBeginLoc();
    if (!Loc.isMacroID()) return;
    const StringRef Macro = Lexer::getImmediateMacroName(Loc, SM, LangOpts);
    if (Macro.starts_with("IRHINT_")) Blessed.insert(Var);
  });
  for (const auto& Entry : ParamIndex) {
    if (Blessed.count(Entry.first) != 0) {
      Summary.Sanitizes.push_back(Entry.second);
    }
  }
  std::sort(Summary.Sanitizes.begin(), Summary.Sanitizes.end());

  // --- Origin collection over expressions. ---------------------------
  // SkipBlessed=false during propagation (matching the intra check,
  // where blessing hides a variable but not values copied out of it),
  // true at fact emission.
  std::function<void(const Stmt*, bool, OriginSet&)> Collect =
      [&](const Stmt* S, bool SkipBlessed, OriginSet& Out) {
        if (S == nullptr) return;
        if (const FunctionDecl* D = BoundaryCallee(S)) {
          if (!IsSanitizerCallee(D)) {
            Out.insert("call_ret:" + CalleeKey(D));
          }
          return;  // opaque: argument flows are emitted as arg facts
        }
        if (const auto* Ref = dyn_cast<DeclRefExpr>(S)) {
          if (const auto* Var = dyn_cast<VarDecl>(Ref->getDecl())) {
            if (!SkipBlessed || Blessed.count(Var) == 0) {
              const auto It = Origins.find(Var);
              if (It != Origins.end()) {
                Out.insert(It->second.begin(), It->second.end());
              }
            }
          }
        }
        for (const Stmt* Child : S->children()) {
          Collect(Child, SkipBlessed, Out);
        }
      };
  auto OriginsOf = [&](const Expr* E) {
    OriginSet Out;
    Collect(E, /*SkipBlessed=*/false, Out);
    return Out;
  };
  auto FromOf = [&](const Expr* E) {
    OriginSet Out;
    Collect(E, /*SkipBlessed=*/true, Out);
    return Out;
  };
  auto MergeInto = [](const OriginSet& Src, OriginSet* Dst) {
    bool Grew = false;
    for (const std::string& O : Src) Grew |= Dst->insert(O).second;
    return Grew;
  };

  // --- Propagation through initializations and assignments. ----------
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ForEachStmt(Body, [&](const Stmt* S) {
      if (const auto* DS = dyn_cast<DeclStmt>(S)) {
        for (const Decl* D : DS->decls()) {
          const auto* Var = dyn_cast<VarDecl>(D);
          if (Var == nullptr || !Var->hasInit()) continue;
          Changed |= MergeInto(OriginsOf(Var->getInit()), &Origins[Var]);
        }
        return;
      }
      const auto* Bin = dyn_cast<BinaryOperator>(S);
      if (Bin == nullptr || !Bin->isAssignmentOp()) return;
      const auto* Ref =
          dyn_cast<DeclRefExpr>(Bin->getLHS()->IgnoreParenImpCasts());
      if (Ref == nullptr) return;
      const auto* Var = dyn_cast<VarDecl>(Ref->getDecl());
      if (Var == nullptr) return;
      Changed |= MergeInto(OriginsOf(Bin->getRHS()), &Origins[Var]);
    });
  }

  // --- Fact emission. ------------------------------------------------
  auto AddFact = [&](const std::string& Json) {
    Summary.FactJson.push_back(Json);
  };
  auto RetFact = [&](const OriginSet& From, unsigned Line) {
    AddFact("{\"from\":" + JoinOrigins(From) + ",\"kind\":\"ret\",\"line\":" +
            std::to_string(Line) + "}");
  };
  auto OutFact = [&](const OriginSet& From, unsigned Line, int Param) {
    AddFact("{\"from\":" + JoinOrigins(From) + ",\"kind\":\"out\",\"line\":" +
            std::to_string(Line) + ",\"param\":" + std::to_string(Param) +
            "}");
  };
  auto ArgFact = [&](const std::string& Callee, const OriginSet& From,
                     unsigned Index, unsigned Line) {
    AddFact("{\"callee\":\"" + JsonEscape(Callee) +
            "\",\"from\":" + JoinOrigins(From) +
            ",\"index\":" + std::to_string(Index) +
            ",\"kind\":\"arg\",\"line\":" + std::to_string(Line) + "}");
  };
  auto SinkFact = [&](const OriginSet& From, unsigned Line,
                      const std::string& Sink) {
    AddFact("{\"from\":" + JoinOrigins(From) + ",\"kind\":\"sink\",\"line\":" +
            std::to_string(Line) + ",\"sink\":\"" + JsonEscape(Sink) + "\"}");
  };

  // The parameter written through an lvalue rooted in a pointer or
  // reference parameter (`*out = v`, `out->field = v`, `out[i] = v`,
  // `ref = v`), i.e. a value escaping to the caller.
  auto WrittenParam = [&](const Expr* LHS) -> const ParmVarDecl* {
    const Expr* E = LHS->IgnoreParenImpCasts();
    bool Indirect = false;
    while (true) {
      if (const auto* Member = dyn_cast<MemberExpr>(E)) {
        Indirect |= Member->isArrow();
        E = Member->getBase()->IgnoreParenImpCasts();
        continue;
      }
      if (const auto* Unary = dyn_cast<UnaryOperator>(E)) {
        if (Unary->getOpcode() == UO_Deref) {
          Indirect = true;
          E = Unary->getSubExpr()->IgnoreParenImpCasts();
          continue;
        }
        break;
      }
      if (const auto* Sub = dyn_cast<ArraySubscriptExpr>(E)) {
        Indirect = true;
        E = Sub->getBase()->IgnoreParenImpCasts();
        continue;
      }
      break;
    }
    const auto* Ref = dyn_cast<DeclRefExpr>(E);
    if (Ref == nullptr) return nullptr;
    const auto* Param = dyn_cast<ParmVarDecl>(Ref->getDecl());
    if (Param == nullptr) return nullptr;
    if (Param->getType()->isReferenceType()) return Param;
    return Indirect ? Param : nullptr;
  };

  ForEachStmt(Body, [&](const Stmt* S) {
    // Returns.
    if (const auto* Ret = dyn_cast<ReturnStmt>(S)) {
      const OriginSet From = FromOf(Ret->getRetValue());
      if (!From.empty()) RetFact(From, LineOf(Ret->getBeginLoc()));
      return;
    }
    // Escapes through pointer/reference parameters.
    if (const auto* Bin = dyn_cast<BinaryOperator>(S)) {
      if (Bin->isAssignmentOp()) {
        if (const ParmVarDecl* Param = WrittenParam(Bin->getLHS())) {
          const OriginSet From = FromOf(Bin->getRHS());
          if (!From.empty()) {
            OutFact(From, LineOf(Bin->getOperatorLoc()), ParamIndex[Param]);
          }
        }
      }
      // Pointer arithmetic sinks (may coexist with the assignment case
      // via += on pointers, so fall through on purpose).
      const BinaryOperatorKind Opc = Bin->getOpcode();
      if (Opc == BO_Add || Opc == BO_Sub || Opc == BO_AddAssign ||
          Opc == BO_SubAssign) {
        const bool LHSPtr = Bin->getLHS()->getType()->isPointerType();
        const bool RHSPtr = Bin->getRHS()->getType()->isPointerType();
        const Expr* Offset = nullptr;
        if (LHSPtr && !RHSPtr) Offset = Bin->getRHS();
        if (RHSPtr && !LHSPtr) Offset = Bin->getLHS();
        if (Offset != nullptr) {
          const OriginSet From = FromOf(Offset);
          if (!From.empty()) {
            SinkFact(From, LineOf(Bin->getOperatorLoc()), "ptr-arith");
          }
        }
      }
      return;
    }
    // Container size/view sinks.
    if (const auto* Member = dyn_cast<CXXMemberCallExpr>(S)) {
      const StringRef Method = MethodName(Member);
      if (Method == "resize" || Method == "reserve" || Method == "SetView") {
        for (const Expr* Arg : Member->arguments()) {
          const OriginSet From = FromOf(Arg);
          if (!From.empty()) {
            SinkFact(From, LineOf(Member->getBeginLoc()), Method.str());
          }
        }
      }
      // Member calls also emit arg facts below via the generic case.
    }
    // Subscript sinks.
    if (const auto* Sub = dyn_cast<ArraySubscriptExpr>(S)) {
      const OriginSet From = FromOf(Sub->getIdx());
      if (!From.empty()) {
        SinkFact(From, LineOf(Sub->getBeginLoc()), "subscript");
      }
      return;
    }
    if (const auto* Op = dyn_cast<CXXOperatorCallExpr>(S)) {
      if (Op->getOperator() == OO_Subscript && Op->getNumArgs() >= 2) {
        const OriginSet From = FromOf(Op->getArg(1));
        if (!From.empty()) {
          SinkFact(From, LineOf(Op->getBeginLoc()), "subscript");
        }
      }
      return;
    }
    // memcpy-family length sinks and argument flows into callees.
    if (const auto* Call = dyn_cast<CallExpr>(S)) {
      const StringRef Name = MethodName(Call);
      if ((Name == "memcpy" || Name == "memmove" || Name == "memset") &&
          Call->getNumArgs() >= 3) {
        const OriginSet From = FromOf(Call->getArg(2));
        if (!From.empty()) {
          SinkFact(From, LineOf(Call->getBeginLoc()), "memcpy-length");
        }
      }
      const FunctionDecl* D = BoundaryCallee(S);
      if (D == nullptr || IsSanitizerCallee(D)) return;
      if (D->getLocation().isValid() &&
          SM.isInSystemHeader(D->getLocation())) {
        return;  // no summaries exist for the standard library
      }
      const std::string Key = CalleeKey(D);
      const unsigned Line = LineOf(Call->getBeginLoc());
      unsigned J = 0;
      for (const Expr* Arg : Call->arguments()) {
        const OriginSet From = FromOf(Arg);
        if (!From.empty()) ArgFact(Key, From, J, Line);
        ++J;
      }
      return;
    }
  });

  Summaries.push_back(std::move(Summary));
}

void TaintSummaryCheck::onEndOfTranslationUnit() {
  if (SummaryDir.empty() || MainFile.empty()) return;

  // Merge duplicate keys (template instantiations, redefinitions seen
  // through multiple inclusion) by unioning facts, then order
  // everything deterministically so the sidecar is byte-stable.
  std::map<std::string, FunctionSummary> ByKey;
  for (FunctionSummary& S : Summaries) {
    auto It = ByKey.find(S.Key);
    if (It == ByKey.end()) {
      ByKey.emplace(S.Key, std::move(S));
      continue;
    }
    FunctionSummary& Merged = It->second;
    Merged.FactJson.insert(Merged.FactJson.end(), S.FactJson.begin(),
                           S.FactJson.end());
    for (const int P : S.Sanitizes) {
      if (std::find(Merged.Sanitizes.begin(), Merged.Sanitizes.end(), P) ==
          Merged.Sanitizes.end()) {
        Merged.Sanitizes.push_back(P);
      }
    }
    std::sort(Merged.Sanitizes.begin(), Merged.Sanitizes.end());
    if (Merged.Annotated.empty()) Merged.Annotated = S.Annotated;
  }
  std::vector<const FunctionSummary*> Ordered;
  Ordered.reserve(ByKey.size());
  for (const auto& Entry : ByKey) Ordered.push_back(&Entry.second);
  std::sort(Ordered.begin(), Ordered.end(),
            [](const FunctionSummary* A, const FunctionSummary* B) {
              if (A->File != B->File) return A->File < B->File;
              if (A->Line != B->Line) return A->Line < B->Line;
              return A->Key < B->Key;
            });

  const std::string Rel = RepoRelative(MainFile);
  std::string Base = Rel;
  const size_t Slash = Base.rfind('/');
  if (Slash != std::string::npos) Base = Base.substr(Slash + 1);
  char Hash[32];
  std::snprintf(Hash, sizeof(Hash), "%016llx",
                static_cast<unsigned long long>(Fnv1a(Rel)));
  const std::string Path = SummaryDir + "/" + Base + "-" + Hash + ".json";

  std::ofstream Out(Path, std::ios::trunc);
  if (!Out) {
    std::fprintf(stderr,
                 "irhint-taint-summary: cannot write sidecar %s "
                 "(does SummaryDir exist?)\n",
                 Path.c_str());
    return;
  }

  Out << "{\"functions\":[";
  bool FirstFunc = true;
  for (const FunctionSummary* S : Ordered) {
    if (!FirstFunc) Out << ",";
    FirstFunc = false;
    std::set<std::string> Facts(S->FactJson.begin(), S->FactJson.end());
    Out << "{\"annotated\":\"" << JsonEscape(S->Annotated) << "\""
        << ",\"display\":\"" << JsonEscape(S->Display) << "\""
        << ",\"end_line\":" << S->EndLine << ",\"facts\":[";
    bool FirstFact = true;
    for (const std::string& F : Facts) {
      if (!FirstFact) Out << ",";
      FirstFact = false;
      Out << F;
    }
    Out << "],\"file\":\"" << JsonEscape(S->File) << "\""
        << ",\"key\":\"" << JsonEscape(S->Key) << "\""
        << ",\"line\":" << S->Line << ",\"params\":" << S->Params
        << ",\"sanitizes\":[";
    bool FirstSan = true;
    for (const int P : S->Sanitizes) {
      if (!FirstSan) Out << ",";
      FirstSan = false;
      Out << P;
    }
    Out << "]}";
  }
  Out << "],\"known_annotated\":{";
  bool FirstKnown = true;
  for (const auto& Entry : KnownAnnotated) {
    if (!FirstKnown) Out << ",";
    FirstKnown = false;
    Out << "\"" << JsonEscape(Entry.first) << "\":\""
        << JsonEscape(Entry.second) << "\"";
  }
  Out << "},\"schema\":1,\"tu\":\"" << JsonEscape(Rel) << "\"}";

  Summaries.clear();
  KnownAnnotated.clear();
  MainFile.clear();
}

}  // namespace irhint_checks
}  // namespace tidy
}  // namespace clang

#!/usr/bin/env python3
"""Phase 1 driver: run `irhint-taint-summary` over the compile database.

Wraps clang-tidy so that CI and the one-command local workflow
(`tools/lint/run_clang_tidy.sh --taint`) get:

  * a loud plugin probe — the run aborts unless `--load` actually
    registers `irhint-taint-summary` (a missing or ABI-mismatched .so
    must never degrade to a silent no-op);
  * content-hash caching — each TU's sidecar is keyed by
    sha256(TU bytes || headers digest || plugin digest), so incremental
    runs only re-summarize changed TUs (the headers digest is the hash
    of every tracked header, coarse but sound: any header edit
    invalidates everything);
  * verification that every selected TU produced its sidecar — a TU
    whose sidecar silently vanished fails the run.

The sidecar naming scheme (`<basename>-<fnv1a64 of the repo-relative
TU path>.json`) and the repo-relative path normalization mirror
TaintSummaryCheck.cc exactly; both must stay in sync.

Exit codes: 0 all sidecars present, 1 summarization failed or sidecars
missing, 2 usage / probe / IO errors.
"""

import argparse
import concurrent.futures
import hashlib
import json
import os
import re
import shutil
import subprocess
import sys

# Keep in sync with RepoRelative() in TaintSummaryCheck.cc.
_MARKERS = ("/src/", "/tools/", "/fuzz/", "/bench/", "/tests/", "/examples/")


def repo_relative(path):
    best = None
    for marker in _MARKERS:
        pos = path.find(marker)
        if pos != -1 and (best is None or pos < best):
            best = pos
    if best is None:
        return path
    return path[best + 1 :]


def fnv1a(data):
    h = 0xCBF29CE484222325
    for byte in data.encode("utf-8"):
        h = ((h ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def sidecar_name(tu_path):
    rel = repo_relative(tu_path)
    base = rel.rsplit("/", 1)[-1]
    return "%s-%016x.json" % (base, fnv1a(rel))


def fail(msg):
    print("taint_summarize: error: %s" % msg, file=sys.stderr)
    sys.exit(2)


def sha256_file(path):
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def headers_digest(repo):
    """One digest over every tracked header: coarse cache invalidation."""
    proc = subprocess.run(
        ["git", "-C", repo, "ls-files", "*.h"],
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        return "no-git"
    digest = hashlib.sha256()
    for rel in sorted(proc.stdout.split()):
        path = os.path.join(repo, rel)
        if not os.path.isfile(path):
            continue
        digest.update(rel.encode("utf-8"))
        digest.update(sha256_file(path).encode("utf-8"))
    return digest.hexdigest()


def probe_plugin(clang_tidy, plugin):
    """Aborts unless the plugin loads and registers the summary check."""
    if not os.path.isfile(plugin):
        fail("plugin %s does not exist" % plugin)
    proc = subprocess.run(
        [
            clang_tidy,
            "--load=%s" % plugin,
            "--checks=-*,irhint-*",
            "--list-checks",
        ],
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        fail(
            "clang-tidy failed to load plugin %s:\n%s"
            % (plugin, proc.stderr.strip())
        )
    if "irhint-taint-summary" not in proc.stdout:
        fail(
            "plugin %s loaded but does not register irhint-taint-summary "
            "(--list-checks output:\n%s)" % (plugin, proc.stdout.strip())
        )


def select_tus(build_dir, filter_re):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        fail("no compile_commands.json in %s" % build_dir)
    with open(db_path, "r", encoding="utf-8") as fh:
        entries = json.load(fh)
    pattern = re.compile(filter_re)
    tus = {}
    for entry in entries:
        path = os.path.normpath(
            os.path.join(entry.get("directory", "."), entry["file"])
        )
        rel = repo_relative(path)
        if pattern.search(rel):
            tus[path] = rel
    return sorted(tus.items())


def summarize_one(clang_tidy, plugin, build_dir, out_dir, tu):
    config = json.dumps(
        {
            "Checks": "-*,irhint-taint-summary",
            "CheckOptions": {
                "irhint-taint-summary.SummaryDir": os.path.abspath(out_dir)
            },
        }
    )
    proc = subprocess.run(
        [
            clang_tidy,
            "--load=%s" % plugin,
            "--config=%s" % config,
            "-p",
            build_dir,
            tu,
        ],
        capture_output=True,
        text=True,
        check=False,
    )
    return proc


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Emit per-TU taint summary sidecars with caching."
    )
    parser.add_argument(
        "--build-dir",
        required=True,
        help="build tree containing compile_commands.json",
    )
    parser.add_argument(
        "--plugin", required=True, help="path to libirhint_checks.so"
    )
    parser.add_argument(
        "--out", required=True, help="directory to write sidecars into"
    )
    parser.add_argument(
        "--cache",
        default="",
        help="sidecar cache directory (content-hash keyed); empty disables",
    )
    parser.add_argument(
        "--filter",
        default=r"^(src|fuzz)/",
        help="regex over repo-relative TU paths (default: ^(src|fuzz)/)",
    )
    parser.add_argument(
        "--clang-tidy",
        default=os.environ.get("CLANG_TIDY", "clang-tidy"),
        help="clang-tidy binary (default: $CLANG_TIDY or clang-tidy)",
    )
    parser.add_argument(
        "--jobs", type=int, default=os.cpu_count() or 2
    )
    args = parser.parse_args(argv)

    clang_tidy = shutil.which(args.clang_tidy)
    if clang_tidy is None:
        fail("clang-tidy binary %r not found" % args.clang_tidy)
    probe_plugin(clang_tidy, args.plugin)

    repo = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    tus = select_tus(args.build_dir, args.filter)
    if not tus:
        fail("no TUs match filter %r in the compile database" % args.filter)

    os.makedirs(args.out, exist_ok=True)
    if args.cache:
        os.makedirs(args.cache, exist_ok=True)

    hdr_digest = headers_digest(repo)
    plugin_digest = sha256_file(args.plugin)

    def cache_key(tu_path):
        digest = hashlib.sha256()
        digest.update(sha256_file(tu_path).encode("utf-8"))
        digest.update(hdr_digest.encode("utf-8"))
        digest.update(plugin_digest.encode("utf-8"))
        return digest.hexdigest()

    todo = []
    hits = 0
    for path, rel in tus:
        out_sidecar = os.path.join(args.out, sidecar_name(path))
        if args.cache:
            cached = os.path.join(
                args.cache, "%s-%s" % (cache_key(path), sidecar_name(path))
            )
            if os.path.isfile(cached):
                shutil.copyfile(cached, out_sidecar)
                hits += 1
                continue
        todo.append((path, rel))

    print(
        "taint_summarize: %d TU(s): %d cached, %d to summarize"
        % (len(tus), hits, len(todo))
    )

    failed = []
    if todo:
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, args.jobs)
        ) as pool:
            futures = {
                pool.submit(
                    summarize_one,
                    clang_tidy,
                    args.plugin,
                    args.build_dir,
                    args.out,
                    path,
                ): (path, rel)
                for path, rel in todo
            }
            for future in concurrent.futures.as_completed(futures):
                path, rel = futures[future]
                proc = future.result()
                sidecar = os.path.join(args.out, sidecar_name(path))
                if proc.returncode != 0 or not os.path.isfile(sidecar):
                    failed.append(path)
                    print(
                        "taint_summarize: FAILED %s (exit %d)\n%s"
                        % (rel, proc.returncode, proc.stderr.strip()),
                        file=sys.stderr,
                    )
                elif args.cache:
                    shutil.copyfile(
                        sidecar,
                        os.path.join(
                            args.cache,
                            "%s-%s" % (cache_key(path), sidecar_name(path)),
                        ),
                    )

    # Every selected TU must have produced a sidecar: a TU silently
    # dropping out of the analysis is itself a finding.
    missing = [
        rel
        for path, rel in tus
        if not os.path.isfile(os.path.join(args.out, sidecar_name(path)))
    ]
    for rel in missing:
        print("taint_summarize: missing sidecar for %s" % rel, file=sys.stderr)
    if failed or missing:
        return 1
    print("taint_summarize: %d sidecar(s) in %s" % (len(tus), args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())

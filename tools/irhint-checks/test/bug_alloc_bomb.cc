// Regression fixture for PR 4 bug class 2: an on-disk object count
// trusted straight into reserve() is an allocation bomb — a 16-byte
// file can demand gigabytes. The shipped guard proves the count fits
// in the remaining payload bytes (FitsInBytes, the overflow-safe
// division form) before allocating; -DIRHINT_DELETE_GUARD removes it
// and irhint-untrusted-decode must flag the tainted count at the
// reserve() sink.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/checked_math.h"
#include "common/contracts.h"

namespace irhint {

struct ObjectRec {
  uint64_t st = 0;
  uint64_t end = 0;
  uint64_t elements = 0;
};

IRHINT_UNTRUSTED bool ReadU64(const uint8_t** cursor, uint64_t* out);

// The per-record decode loop (which would re-validate count implicitly
// by running out of bytes) lives elsewhere: the bomb is the up-front
// reserve(), which allocates before any record is read.
bool ReadRecords(const uint8_t** cursor, uint64_t count,
                 std::vector<ObjectRec>* out);

bool LoadObjects(const uint8_t** cursor, size_t remaining,
                 std::vector<ObjectRec>* out) {
  uint64_t count = 0;
  if (!ReadU64(cursor, &count)) return false;
#ifndef IRHINT_DELETE_GUARD
  // 24 = minimum bytes per object record.
  if (!FitsInBytes(count, 24, remaining)) return false;
#endif
  out->reserve(count);
  return ReadRecords(cursor, count, out);
}

}  // namespace irhint

// clang-format off
// CLEAN-NOT: [irhint-
// DIRTY: warning: 'count' comes from an IRHINT_UNTRUSTED decode source and reaches a container size/view argument{{.*}}[irhint-untrusted-decode]
// DIRTY-NOT: [irhint-
// clang-format on

// Known-dirty fixture TU: every irhint-* check must fire here, and the
// FileCheck DIRTY block at the bottom asserts the exact diagnostic
// sequence (source order; DIRTY-NOT lines forbid extras in between).
// The CMake test irhint_checks_dirty_fails_gate additionally runs this
// file under -warnings-as-errors=irhint-* with WILL_FAIL, proving the
// CI gate can actually go red.
//
// Status and FlatArray are local mocks: the mock Status deliberately
// lacks [[nodiscard]] to exercise the class-attribute diagnostic, which
// the real (compliant) common/status.h could not trigger.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/contracts.h"

namespace irhint {

class Status {
 public:
  static Status Corruption() { return Status(); }
  bool ok() const { return true; }
};

template <typename T>
class FlatArray {
 public:
  void SetView(const T* data, size_t n) {
    data_ = data;
    size_ = n;
  }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

// --- irhint-untrusted-decode ------------------------------------------
IRHINT_UNTRUSTED bool ReadU32(const uint8_t** cursor, uint32_t* out);

void GrowTable(const uint8_t** cursor, std::vector<uint32_t>* table) {
  uint32_t count = 0;
  ReadU32(cursor, &count);
  table->resize(count);
}

// --- irhint-status-discipline -----------------------------------------
Status LoadThing();

void DropStatuses() {
  LoadThing();
  Status::Corruption();
  (void)LoadThing();  // explicit discard: no diagnostic
}

// --- irhint-view-lifetime ---------------------------------------------
struct LeakyView {
  FlatArray<uint32_t> ids;
};

// --- irhint-raw-sync --------------------------------------------------
std::mutex raw_mu;
std::mutex waived_mu;  // SYNC_EXEMPT: fixture-local waiver, no warning
using HiddenMutex = std::mutex;
HiddenMutex aliased_mu;

}  // namespace irhint

// clang-format off
// DIRTY-NOT: [irhint-
// DIRTY: warning: 'Status' must be declared {{\[\[}}nodiscard{{\]\]}}{{.*}}[irhint-status-discipline]
// DIRTY-NOT: [irhint-
// DIRTY: warning: 'count' comes from an IRHINT_UNTRUSTED decode source and reaches a container size/view argument{{.*}}[irhint-untrusted-decode]
// DIRTY-NOT: [irhint-
// DIRTY: warning: result of this call is an irhint Status and is silently discarded{{.*}}[irhint-status-discipline]
// DIRTY-NOT: [irhint-
// DIRTY: warning: result of this call is an irhint Status and is silently discarded{{.*}}[irhint-status-discipline]
// DIRTY-NOT: [irhint-
// DIRTY: warning: 'LeakyView' stores FlatArray members{{.*}}[irhint-view-lifetime]
// DIRTY-NOT: [irhint-
// DIRTY: warning: raw 'std::mutex' is banned outside common/synchronization.h{{.*}}[irhint-raw-sync]
// DIRTY-NOT: [irhint-
// DIRTY: warning: raw 'std::mutex' is banned outside common/synchronization.h{{.*}}[irhint-raw-sync]
// DIRTY-NOT: [irhint-
// clang-format on
// DIRTY: warning: raw 'std::mutex' is banned outside common/synchronization.h{{.*}}[irhint-raw-sync]
// DIRTY-NOT: [irhint-

#!/usr/bin/env bash
# Drives the two-phase whole-program taint analysis over a (possibly
# multi-TU) fixture and checks the linker verdict.
#
#   run_taint_fixture.sh CLANG_TIDY PLUGIN FILECHECK SRC_DIR TEST_DIR \
#                        WORK_DIR MODE PREFIX CHECKFILE TU... [-D...]
#
# TU and CHECKFILE paths are relative to TEST_DIR; -D* arguments go to
# the compile line of every TU. MODE is one of:
#
#   link-dirty  summarize every TU with irhint-taint-summary, link the
#               sidecars against an empty baseline, expect exit 1 (new
#               findings) and FileCheck the linker output against
#               CHECKFILE's PREFIX directives.
#   link-clean  same pipeline, expect exit 0 (no findings). PREFIX is
#               ignored (pass NONE).
#   intra       run the intra-procedural irhint-untrusted-decode check
#               over all TUs at once and succeed only if it fires; the
#               WILL_FAIL companions use this to prove a cross-function
#               flow is invisible to the per-function check.
#
# Every link run passes --verify-canonical, so each fixture doubles as
# a bit-exact round-trip test of the C++ sidecar serializer against
# python's canonical json.dumps form.
set -u

CLANG_TIDY=$1
PLUGIN=$2
FILECHECK=$3
SRC_DIR=$4
TEST_DIR=$5
WORK_DIR=$6
MODE=$7
PREFIX=$8
CHECKFILE=$TEST_DIR/$9
shift 9

TUS=()
DEFS=()
for arg in "$@"; do
  case "$arg" in
    -D*) DEFS+=("$arg") ;;
    *) TUS+=("$TEST_DIR/$arg") ;;
  esac
done

rm -rf "$WORK_DIR"
mkdir -p "$WORK_DIR/summaries"

COMPILE_ARGS=(-std=c++20 "-I$SRC_DIR" "-I$TEST_DIR/multi_tu" -Wno-everything)

if [ "$MODE" = intra ]; then
  OUT=$("$CLANG_TIDY" --load="$PLUGIN" --checks='-*,irhint-untrusted-decode' \
          "${TUS[@]}" -- "${COMPILE_ARGS[@]}" ${DEFS[@]+"${DEFS[@]}"} 2>&1)
  STATUS=$?
  echo "$OUT"
  if [ $STATUS -ne 0 ]; then
    echo "clang-tidy failed (exit $STATUS)" >&2
    exit 2
  fi
  # Succeed only if the intra-procedural check found something.
  grep -q '\[irhint-untrusted-decode\]' <<<"$OUT"
  exit $?
fi

CONFIG="{Checks: '-*,irhint-taint-summary', CheckOptions: \
{irhint-taint-summary.SummaryDir: '$WORK_DIR/summaries'}}"
for tu in "${TUS[@]}"; do
  if ! OUT=$("$CLANG_TIDY" --load="$PLUGIN" --config="$CONFIG" "$tu" \
               -- "${COMPILE_ARGS[@]}" ${DEFS[@]+"${DEFS[@]}"} 2>&1); then
    echo "clang-tidy summarization failed on $tu:" >&2
    echo "$OUT" >&2
    exit 2
  fi
done

LINK_OUT=$(python3 "$TEST_DIR/../taint_link.py" \
             --summaries "$WORK_DIR/summaries" \
             --baseline "$WORK_DIR/no_such_baseline.json" \
             --report-out "$WORK_DIR/report.json" \
             --verify-canonical 2>&1)
RC=$?
echo "$LINK_OUT"

case "$MODE" in
  link-dirty)
    if [ $RC -ne 1 ]; then
      echo "expected taint_link exit 1 (new findings), got $RC" >&2
      exit 1
    fi
    "$FILECHECK" --check-prefix="$PREFIX" "$CHECKFILE" <<<"$LINK_OUT"
    ;;
  link-clean)
    if [ $RC -ne 0 ]; then
      echo "expected taint_link exit 0 (clean), got $RC" >&2
      exit 1
    fi
    ;;
  *)
    echo "unknown mode $MODE" >&2
    exit 2
    ;;
esac

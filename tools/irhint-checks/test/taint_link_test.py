#!/usr/bin/env python3
"""Unit tests for the taint linker (taint_link.py, DESIGN.md §13).

These run without clang: sidecars are generated in-process, in the
exact canonical form the C++ emitter produces, so the fixpoint,
baseline-gating, and round-trip semantics are testable in the plain
gcc-only environment. The clang-driven end of the pipe (the
irhint-taint-summary check itself) is covered by the FileCheck
fixtures registered from tools/irhint-checks/CMakeLists.txt.
"""

import importlib.util
import json
import os
import sys
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "taint_link", os.path.join(_HERE, "..", "taint_link.py")
)
taint_link = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(taint_link)


def canon(obj):
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def func(key, facts, annotated="", params=2, file="src/x.cc", line=10,
         sanitizes=None):
    return {
        "annotated": annotated,
        "display": key.rsplit("/", 1)[0],
        "end_line": line + 20,
        "facts": facts,
        "file": file,
        "key": key,
        "line": line,
        "params": params,
        "sanitizes": sanitizes or [],
    }


def sidecar(tu, functions, known=None):
    return {
        "functions": functions,
        "known_annotated": known or {},
        "schema": 1,
        "tu": tu,
    }


class LinkerTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.n = 0

    def tearDown(self):
        self.dir.cleanup()

    def write(self, data):
        self.n += 1
        path = os.path.join(self.dir.name, "s%d.json" % self.n)
        with open(path, "w") as fh:
            fh.write(canon(data))
        return path

    def run_link(self, extra=None):
        argv = [
            "--summaries",
            self.dir.name,
            "--baseline",
            os.path.join(self.dir.name, "baseline.json"),
            "--quiet",
        ] + (extra or [])
        return taint_link.main(argv)

    def link_findings(self):
        sidecars = taint_link.load_sidecars(self.dir.name)
        functions, annotated, _, _ = taint_link.merge_sidecars(sidecars)
        linker = taint_link.Linker(functions, annotated)
        linker.solve()
        return linker.findings()

    # --- the canonical 3-TU flow -----------------------------------------

    def write_flow(self, widen_annotated="", widen_propagates=True):
        self.write(sidecar("src/a.cc", [
            func("ReadLen/2", [], annotated="untrusted", file="src/a.cc"),
            func("LoadAndUse/2", [
                {"callee": "Widen/1", "from": ["call_out:ReadLen/2:1"],
                 "index": 0, "kind": "arg", "line": 12},
                {"callee": "FillBuffer/2", "from": ["call_ret:Widen/1"],
                 "index": 1, "kind": "arg", "line": 13},
            ], file="src/a.cc"),
        ]))
        widen_facts = []
        if widen_propagates:
            widen_facts = [{"from": ["param:0"], "kind": "ret", "line": 5}]
        self.write(sidecar("src/b.cc", [
            func("Widen/1", widen_facts, annotated=widen_annotated,
                 params=1, file="src/b.cc"),
        ]))
        self.write(sidecar("src/c.cc", [
            func("FillBuffer/2", [
                {"from": ["param:1"], "kind": "sink", "line": 8,
                 "sink": "resize"},
            ], file="src/c.cc"),
        ]))

    def test_cross_tu_flow_found_with_chain(self):
        self.write_flow()
        findings = self.link_findings()
        self.assertEqual(len(findings), 1)
        f = findings[0]
        self.assertEqual(f["root"], "LoadAndUse/2")
        self.assertEqual(f["sink"], "resize")
        self.assertEqual(f["source"], "call_out:ReadLen/2:1")
        chain_fns = [step["function"] for step in f["chain"]]
        # >= 2 distinct functions in the chain, in flow order.
        self.assertIn("ReadLen", chain_fns[0])
        self.assertIn("FillBuffer", chain_fns[-1])
        self.assertGreaterEqual(len(set(chain_fns)), 3)
        # Stable id built from keys, not lines.
        self.assertEqual(
            f["id"],
            "LoadAndUse/2|call_out:ReadLen/2:1|FillBuffer/2|resize",
        )

    def test_sanitizer_annotation_in_middle_goes_quiet(self):
        self.write_flow(widen_annotated="sanitizer")
        self.assertEqual(self.link_findings(), [])

    def test_non_propagating_middle_goes_quiet(self):
        # Widen bounds-checks internally: blessing removed its ret fact.
        self.write_flow(widen_propagates=False)
        self.assertEqual(self.link_findings(), [])

    def test_declaration_side_annotation_counts(self):
        # ReadLen's definition is outside the compile DB; only a caller
        # TU saw the annotated declaration (known_annotated).
        self.write(sidecar("src/a.cc", [
            func("LoadAndUse/2", [
                {"callee": "FillBuffer/2",
                 "from": ["call_out:ReadLen/2:1"],
                 "index": 1, "kind": "arg", "line": 13},
            ], file="src/a.cc"),
        ], known={"ReadLen/2": "untrusted"}))
        self.write(sidecar("src/c.cc", [
            func("FillBuffer/2", [
                {"from": ["param:1"], "kind": "sink", "line": 8,
                 "sink": "resize"},
            ], file="src/c.cc"),
        ]))
        findings = self.link_findings()
        self.assertEqual(len(findings), 1)

    # --- cycles ----------------------------------------------------------

    def test_recursive_cycle_converges(self):
        self.write(sidecar("src/r.cc", [
            func("Src/1", [], annotated="untrusted", params=1),
            func("Ping/2", [
                {"callee": "Pong/2", "from": ["param:0"], "index": 0,
                 "kind": "arg", "line": 4},
                {"from": ["call_ret:Pong/2"], "kind": "ret", "line": 4},
            ]),
            func("Pong/2", [
                {"from": ["param:0"], "kind": "ret", "line": 8},
                {"callee": "Ping/2", "from": ["param:0"], "index": 0,
                 "kind": "arg", "line": 9},
                {"from": ["call_ret:Ping/2"], "kind": "ret", "line": 9},
            ]),
            func("Drive/1", [
                {"callee": "Ping/2", "from": ["call_ret:Src/1"],
                 "index": 0, "kind": "arg", "line": 20},
                {"from": ["call_ret:Ping/2"], "kind": "sink", "line": 21,
                 "sink": "resize"},
            ], params=1),
        ]))
        findings = self.link_findings()
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0]["root"], "Drive/1")
        # Prop(Ping, 0, ret) is only derivable through the cycle.

    def test_self_recursion_terminates(self):
        self.write(sidecar("src/s.cc", [
            func("Rec/1", [
                {"callee": "Rec/1", "from": ["param:0"], "index": 0,
                 "kind": "arg", "line": 3},
                {"from": ["call_ret:Rec/1", "param:0"], "kind": "ret",
                 "line": 4},
            ], params=1),
        ]))
        self.assertEqual(self.link_findings(), [])

    # --- conflation is conservative --------------------------------------

    def test_callee_conflation_errs_hot(self):
        # One call to Widen with a hot arg, one with a cold arg: the
        # cold call's result is (conservatively) hot too.
        self.write(sidecar("src/a.cc", [
            func("Src/1", [], annotated="untrusted", params=1),
            func("Widen/1", [
                {"from": ["param:0"], "kind": "ret", "line": 5},
            ], params=1),
            func("Use/1", [
                {"callee": "Widen/1", "from": ["call_ret:Src/1"],
                 "index": 0, "kind": "arg", "line": 11},
                {"callee": "Widen/1", "from": ["param:0"], "index": 0,
                 "kind": "arg", "line": 12},
                {"from": ["call_ret:Widen/1"], "kind": "sink", "line": 13,
                 "sink": "reserve"},
            ], params=1),
        ]))
        findings = self.link_findings()
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0]["sink"], "reserve")

    # --- baseline gating -------------------------------------------------

    def test_new_finding_fails_and_baselined_passes(self):
        self.write_flow()
        self.assertEqual(self.run_link(), 1)
        baseline = {
            "findings": [{
                "id": "LoadAndUse/2|call_out:ReadLen/2:1|"
                      "FillBuffer/2|resize",
                "justification": "tracked: widening audit pending",
            }],
            "schema": 1,
        }
        with open(os.path.join(self.dir.name, "baseline.json"), "w") as fh:
            fh.write(canon(baseline))
        self.assertEqual(self.run_link(), 0)

    def test_stale_baseline_entry_warns_but_passes(self):
        self.write_flow(widen_annotated="sanitizer")
        baseline = {
            "findings": [{"id": "gone|origin|sink|resize",
                          "justification": "obsolete"}],
            "schema": 1,
        }
        with open(os.path.join(self.dir.name, "baseline.json"), "w") as fh:
            fh.write(canon(baseline))
        self.assertEqual(self.run_link(), 0)

    def test_update_baseline_round_trips(self):
        self.write_flow()
        self.assertEqual(self.run_link(["--update-baseline"]), 0)
        self.assertEqual(self.run_link(), 0)  # now baselined

    # --- canonical round-trip --------------------------------------------

    def test_verify_canonical_accepts_canonical(self):
        self.write_flow()
        self.assertEqual(self.run_link(["--verify-canonical"]), 1)
        # exit 1 is from the (unbaselined) finding, not canonicality;
        # prove it by checking the sanitized flow passes.

    def test_verify_canonical_rejects_pretty_printed(self):
        self.write_flow(widen_annotated="sanitizer")
        self.assertEqual(self.run_link(["--verify-canonical"]), 0)
        path = os.path.join(self.dir.name, "s1.json")
        with open(path) as fh:
            data = json.load(fh)
        with open(path, "w") as fh:
            json.dump(data, fh, sort_keys=True, indent=2)
        self.assertEqual(self.run_link(["--verify-canonical"]), 1)

    # --- merged DB -------------------------------------------------------

    def test_merged_out_contains_annotations(self):
        self.write_flow()
        out = os.path.join(self.dir.name, "..", "merged.json")
        self.assertEqual(self.run_link(["--merged-out", out]), 1)
        with open(out) as fh:
            raw = fh.read()
        merged = json.loads(raw)
        self.assertEqual(raw, canon(merged))  # canonical on disk
        self.assertEqual(
            merged["functions"]["ReadLen/2"]["annotated"], "untrusted"
        )
        self.assertIn("LoadAndUse/2", merged["functions"])
        os.unlink(out)

    def test_duplicate_function_merge_unions_facts(self):
        fact_a = {"from": ["param:0"], "kind": "ret", "line": 5}
        fact_b = {"from": ["param:1"], "kind": "ret", "line": 6}
        self.write(sidecar("src/a.cc", [func("Inline/2", [fact_a])]))
        self.write(sidecar("src/b.cc", [func("Inline/2", [fact_a, fact_b])]))
        sidecars = taint_link.load_sidecars(self.dir.name)
        functions, _, _, _ = taint_link.merge_sidecars(sidecars)
        self.assertEqual(len(functions["Inline/2"]["facts"]), 2)


class ContractEightTest(unittest.TestCase):
    """check_contracts.py contract 8 against a merged DB fixture."""

    def setUp(self):
        spec = importlib.util.spec_from_file_location(
            "check_contracts",
            os.path.join(_HERE, "..", "..", "lint", "check_contracts.py"),
        )
        self.cc = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(self.cc)
        self.tmp = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.tmp.cleanup()
        os.environ.pop("IRHINT_TAINT_DB", None)

    def write_db(self, names):
        db = {
            "annotated": {},
            "functions": {
                "irhint::%s/2" % name: {
                    "annotated": kind,
                    "display": "irhint::%s" % name,
                    "file": "src/x.h",
                    "line": 1,
                }
                for name, kind in names.items()
            },
            "schema": 1,
            "tus": [],
        }
        path = os.path.join(self.tmp.name, "merged_summary.json")
        with open(path, "w") as fh:
            fh.write(canon(db))
        os.environ["IRHINT_TAINT_DB"] = path

    def repo_annotation_names(self):
        """Every annotated function name in src/, via the checker's own
        scanner, to build a fully-covering DB."""
        names = {}
        for path in self.cc.cxx_files("src"):
            rel = os.path.relpath(path, self.cc.REPO)
            if rel == os.path.join("src", "common", "contracts.h"):
                continue
            with open(path) as fh:
                lines = self.cc.strip_comments(fh.read()).splitlines()
            for lineno, line in enumerate(lines, 1):
                m = self.cc.TAINT_ANNOT_RE.search(line)
                if not m or "#define" in line:
                    continue
                tail = line[m.end():] + " " + " ".join(
                    lines[lineno:lineno + 2])
                name_m = self.cc.FN_NAME_RE.search(tail)
                if name_m:
                    names[name_m.group(1)] = (
                        "untrusted" if m.group(1) == "UNTRUSTED"
                        else "sanitizer"
                    )
        return names

    def test_full_db_passes(self):
        self.write_db(self.repo_annotation_names())
        errors = []
        self.cc.check_annotations_reach_taint_db(errors)
        self.assertEqual(errors, [])

    def test_missing_annotation_is_flagged(self):
        names = self.repo_annotation_names()
        self.assertIn("LoadCorpus", names)  # src/data/serialize.h
        del names["LoadCorpus"]
        self.write_db(names)
        errors = []
        self.cc.check_annotations_reach_taint_db(errors)
        self.assertTrue(any("LoadCorpus" in e for e in errors), errors)

    def test_wrong_kind_is_flagged(self):
        names = self.repo_annotation_names()
        names["LoadCorpus"] = "sanitizer"  # annotation says untrusted
        self.write_db(names)
        errors = []
        self.cc.check_annotations_reach_taint_db(errors)
        self.assertTrue(any("LoadCorpus" in e for e in errors), errors)

    def test_no_db_skips(self):
        os.environ["IRHINT_TAINT_DB"] = os.path.join(
            self.tmp.name, "nope.json"
        )
        errors = []
        self.cc.check_annotations_reach_taint_db(errors)
        self.assertEqual(errors, [])


if __name__ == "__main__":
    unittest.main()

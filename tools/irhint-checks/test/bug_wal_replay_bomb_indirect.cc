// PR 4 bug class 3 (WAL replay table bomb) behind one helper of
// indirection: the driver decodes the record, GrowTables owns the
// kElementIdLimit guard and the resize sink. The decoded record
// travels as a const reference — the linker must treat the whole
// record as hot via the out-param origin of DecodeRecord. The
// intra-procedural check misses it (WILL_FAIL companion);
// -DIRHINT_DELETE_GUARD must flip the linked gate to failing.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/contracts.h"
#include "data/object.h"

namespace irhint {

struct WalObjectRec {
  uint32_t id = 0;
  ElementId max_element = 0;
};

IRHINT_UNTRUSTED bool DecodeRecord(const uint8_t* data, size_t size,
                                   WalObjectRec* out);

bool GrowTables(std::vector<uint64_t>* tables, const WalObjectRec& rec) {
#ifndef IRHINT_DELETE_GUARD
  if (rec.max_element >= kElementIdLimit) {
    return false;
  }
#endif
  tables->resize(static_cast<size_t>(rec.max_element) + 1, 0);
  return true;
}

bool ReplayIndirect(const uint8_t* data, size_t size,
                    std::vector<uint64_t>* tables) {
  WalObjectRec rec;
  if (!DecodeRecord(data, size, &rec)) {
    return false;
  }
  return GrowTables(tables, rec);
}

}  // namespace irhint

// clang-format off
// CHECK-WAL: 1 finding(s) (1 new, 0 baselined)
// CHECK-WAL: NEW irhint::ReplayIndirect/3: decode-tainted value reaches sink `resize` in irhint::GrowTables
// CHECK-WAL: irhint::DecodeRecord  [untrusted source (out-param 2 carries raw decoded bytes)]
// CHECK-WAL: irhint::ReplayIndirect  [passes tainted value into irhint::GrowTables (arg 1)]
// CHECK-WAL: irhint::GrowTables  [sink resize]
// clang-format on

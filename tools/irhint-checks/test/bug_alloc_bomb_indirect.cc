// PR 4 bug class 2 (allocation bomb via an on-disk count) behind one
// helper of indirection: the driver decodes the count, ReserveRecords
// owns both the FitsInBytes guard and the reserve() sink. The
// intra-procedural check misses both halves (WILL_FAIL companion);
// the linker re-detects the flow when -DIRHINT_DELETE_GUARD removes
// the guard, and the sanitizer-blessing inside the helper keeps the
// guarded shape quiet.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/checked_math.h"
#include "common/contracts.h"

namespace irhint {

struct ObjectRec {
  uint64_t st = 0;
  uint64_t end = 0;
  uint64_t elements = 0;
};

IRHINT_UNTRUSTED bool ReadU64(const uint8_t** cursor, uint64_t* out);

bool ReadRecords(const uint8_t** cursor, uint64_t count,
                 std::vector<ObjectRec>* out);

bool ReserveRecords(std::vector<ObjectRec>* out, uint64_t count,
                    size_t remaining) {
#ifndef IRHINT_DELETE_GUARD
  // 24 = minimum bytes per object record.
  if (!FitsInBytes(count, 24, remaining)) {
    return false;
  }
#endif
  out->reserve(count);
  return true;
}

bool LoadObjectsIndirect(const uint8_t** cursor, size_t remaining,
                         std::vector<ObjectRec>* out) {
  uint64_t count = 0;
  if (!ReadU64(cursor, &count)) {
    return false;
  }
  const bool ok = ReserveRecords(out, count, remaining);
  if (!ok) {
    return false;
  }
  return ReadRecords(cursor, count, out);
}

}  // namespace irhint

// clang-format off
// CHECK-BOMB: 1 finding(s) (1 new, 0 baselined)
// CHECK-BOMB: NEW irhint::LoadObjectsIndirect/3: decode-tainted value reaches sink `reserve` in irhint::ReserveRecords
// CHECK-BOMB: irhint::ReadU64  [untrusted source (out-param 1 carries raw decoded bytes)]
// CHECK-BOMB: irhint::LoadObjectsIndirect  [passes tainted value into irhint::ReserveRecords (arg 1)]
// CHECK-BOMB: irhint::ReserveRecords  [sink reserve]
// clang-format on

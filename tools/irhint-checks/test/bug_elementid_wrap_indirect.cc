// PR 4 bug class 1 (ElementId resize wrap) behind one helper of
// indirection: the decode happens in the driver, the guard and the
// resize sink live inside BumpSlot. irhint-untrusted-decode is
// intra-procedural — in the driver the call is not a sink, and in the
// helper `e` is just an unannotated parameter — so it provably misses
// both shapes (WILL_FAIL companion). The two-phase linker derives
// SinkReach(BumpSlot, 1) and reports the chain; with the shipped guard
// the comparison blesses `e` and the flow must go quiet, and
// -DIRHINT_DELETE_GUARD must flip the gate back to failing.

#include <cstdint>
#include <vector>

#include "common/checked_math.h"
#include "common/contracts.h"
#include "data/object.h"

namespace irhint {

IRHINT_UNTRUSTED bool ReadElementId(const uint8_t** cursor, ElementId* out);

bool BumpSlot(std::vector<uint64_t>* freq, ElementId e) {
#ifndef IRHINT_DELETE_GUARD
  if (e >= kElementIdLimit) {
    return false;
  }
  freq->resize(GrowToFit(e), 0);
#else
  freq->resize(e + 1, 0);
#endif
  return true;
}

bool BumpFrequencyIndirect(const uint8_t** cursor,
                           std::vector<uint64_t>* freq) {
  ElementId e = 0;
  if (!ReadElementId(cursor, &e)) {
    return false;
  }
  return BumpSlot(freq, e);
}

}  // namespace irhint

// clang-format off
// CHECK-WRAP: 1 finding(s) (1 new, 0 baselined)
// CHECK-WRAP: NEW irhint::BumpFrequencyIndirect/2: decode-tainted value reaches sink `resize` in irhint::BumpSlot
// CHECK-WRAP: irhint::ReadElementId  [untrusted source (out-param 1 carries raw decoded bytes)]
// CHECK-WRAP: irhint::BumpFrequencyIndirect  [passes tainted value into irhint::BumpSlot (arg 1)]
// CHECK-WRAP: irhint::BumpSlot  [sink resize]
// clang-format on

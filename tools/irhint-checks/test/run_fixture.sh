#!/usr/bin/env bash
# Runs one irhint-checks fixture TU through `clang-tidy -load` and
# FileChecks the diagnostics against the fixture's own CHECK lines.
#
#   run_fixture.sh CLANG_TIDY PLUGIN FIXTURE FILECHECK PREFIX SRC_DIR \
#                  [extra compiler args...]
#
# PREFIX selects the FileCheck directive family inside the fixture:
# DIRTY fixtures assert the exact expected diagnostics, CLEAN fixtures
# assert (via PREFIX-NOT and --allow-empty) that no irhint-* check
# fires. Extra args (e.g. -DIRHINT_DELETE_GUARD) go to the compile line
# so one fixture can encode both its guarded and guard-deleted shape.
set -u

CLANG_TIDY=$1
PLUGIN=$2
FIXTURE=$3
FILECHECK=$4
PREFIX=$5
SRC_DIR=$6
shift 6

OUT=$("$CLANG_TIDY" \
        --load="$PLUGIN" \
        --checks='-*,irhint-*' \
        "$FIXTURE" \
        -- -std=c++20 "-I$SRC_DIR" -Wno-everything "$@" 2>&1)
STATUS=$?
# clang-tidy exits non-zero on compile *errors* (diagnosed warnings
# still exit 0 without -warnings-as-errors); a broken fixture should
# fail loudly rather than vacuously FileCheck-pass.
if [ $STATUS -ne 0 ]; then
  echo "clang-tidy failed (exit $STATUS) on $FIXTURE:" >&2
  echo "$OUT" >&2
  exit 1
fi
echo "$OUT" | "$FILECHECK" --check-prefix="$PREFIX" --allow-empty "$FIXTURE"

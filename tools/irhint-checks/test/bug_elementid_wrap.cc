// Regression fixture for PR 4 bug class 1: the ElementId frequency-
// table resize spelled `resize(e + 1)` wraps to zero at the maximum
// 32-bit id, turning the following increment into an out-of-bounds
// write. The shipped guard caps the id against kElementIdLimit and
// widens through GrowToFit; compiling with -DIRHINT_DELETE_GUARD
// deletes both, and irhint-untrusted-decode must re-detect the bug
// class (tainted `e` reaching resize with no validation in sight).

#include <cstdint>
#include <vector>

#include "common/checked_math.h"
#include "common/contracts.h"
#include "data/object.h"

namespace irhint {

IRHINT_UNTRUSTED bool ReadElementId(const uint8_t** cursor, ElementId* out);

bool BumpFrequency(const uint8_t** cursor, std::vector<uint64_t>* freq) {
  ElementId e = 0;
  if (!ReadElementId(cursor, &e)) return false;
#ifndef IRHINT_DELETE_GUARD
  if (e >= kElementIdLimit) return false;
  freq->resize(GrowToFit(e), 0);
#else
  freq->resize(e + 1, 0);
#endif
  ++(*freq)[e];
  return true;
}

}  // namespace irhint

// clang-format off
// CLEAN-NOT: [irhint-
// DIRTY: warning: 'e' comes from an IRHINT_UNTRUSTED decode source and reaches a container size/view argument{{.*}}[irhint-untrusted-decode]
// DIRTY-NOT: [irhint-
// clang-format on

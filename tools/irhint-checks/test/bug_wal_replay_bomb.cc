// Regression fixture for PR 4 bug class 3: WAL replay grows dense
// per-element tables out to the largest element id seen in a record, so
// a CRC-valid record carrying an absurd id is an allocation bomb that
// survives checksum verification. The shipped guard rejects ids past
// kElementIdLimit at the decode boundary; -DIRHINT_DELETE_GUARD
// removes it and irhint-untrusted-decode must flag the tainted record
// reaching the table resize.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/contracts.h"
#include "data/object.h"

namespace irhint {

struct WalObjectRec {
  uint32_t id = 0;
  ElementId max_element = 0;
};

IRHINT_UNTRUSTED bool DecodeRecord(const uint8_t* data, size_t size,
                                   WalObjectRec* out);

bool Replay(const uint8_t* data, size_t size,
            std::vector<uint64_t>* tables) {
  WalObjectRec rec;
  if (!DecodeRecord(data, size, &rec)) return false;
#ifndef IRHINT_DELETE_GUARD
  if (rec.max_element >= kElementIdLimit) return false;
#endif
  tables->resize(static_cast<size_t>(rec.max_element) + 1, 0);
  return true;
}

}  // namespace irhint

// clang-format off
// CLEAN-NOT: [irhint-
// DIRTY: warning: 'rec' comes from an IRHINT_UNTRUSTED decode source and reaches a container size/view argument{{.*}}[irhint-untrusted-decode]
// DIRTY-NOT: [irhint-
// clang-format on

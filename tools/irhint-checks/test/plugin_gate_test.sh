#!/usr/bin/env bash
# Asserts run_clang_tidy.sh fails LOUDLY — non-zero with a clear
# message — whenever --with-plugin cannot actually deliver the irhint-*
# checks, instead of degrading to a silent no-op gate. Runs without a
# real clang-tidy: stub binaries (selected via the CLANG_TIDY env hook
# the script already honors) simulate each failure mode, so this is a
# plain-gcc-environment ctest.
#
#   plugin_gate_test.sh REPO_DIR
#
# Covered failure modes:
#   1. plugin .so path does not exist            -> exit 2
#   2. clang-tidy errors out on --load           -> exit 2
#   3. plugin loads but registers no irhint-*    -> exit 2
#   4. healthy plugin + healthy clang-tidy       -> exit 0
#   5. --taint with a clang-tidy that silently drops sidecars -> exit 1
set -u

REPO=${1:?usage: plugin_gate_test.sh REPO_DIR}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

SCRIPT=$REPO/tools/lint/run_clang_tidy.sh
BUILD=$WORK/build
mkdir -p "$BUILD"
cat >"$BUILD/compile_commands.json" <<EOF
[{"directory": "$REPO", "file": "src/data/serialize.cc",
  "command": "c++ -std=c++20 -c src/data/serialize.cc"}]
EOF

PLUGIN=$WORK/libirhint_checks.so
echo "not a real shared object" >"$PLUGIN"

make_stub() {
  local path=$1 mode=$2
  cat >"$path" <<EOF
#!/usr/bin/env bash
case " \$* " in
  *" --list-checks "*)
    case "$mode" in
      loadfail)
        echo "Error: unable to load plugin: invalid ELF header" >&2
        exit 1
        ;;
      noreg)
        echo "Enabled checks:"
        exit 0
        ;;
      ok)
        echo "Enabled checks:"
        for c in irhint-raw-sync irhint-status-discipline \\
                 irhint-taint-summary irhint-untrusted-decode \\
                 irhint-view-lifetime; do
          echo "    \$c"
        done
        exit 0
        ;;
    esac
    ;;
esac
# Any non-probe invocation (the real lint / summarize run): succeed
# without doing anything, like a check that silently never fires.
exit 0
EOF
  chmod +x "$path"
}

make_stub "$WORK/tidy_ok" ok
make_stub "$WORK/tidy_noreg" noreg
make_stub "$WORK/tidy_loadfail" loadfail

fails=0
expect() {
  local name=$1 want=$2 got=$3 out=$4
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $name: expected exit $want, got $got" >&2
    echo "$out" >&2
    fails=$((fails + 1))
  else
    echo "ok: $name (exit $got)"
  fi
}

cd "$REPO"

# 1. Missing plugin file must exit 2 with build instructions.
OUT=$(CLANG_TIDY=$WORK/tidy_ok "$SCRIPT" \
        --with-plugin "$WORK/no_such_libirhint_checks.so" "$BUILD" 2>&1)
expect "missing plugin .so" 2 $? "$OUT"
grep -q "no libirhint_checks" <<<"$OUT" || {
  echo "FAIL: missing-plugin message unclear: $OUT" >&2
  fails=$((fails + 1))
}

# 2. clang-tidy rejecting -load must exit 2 and show the loader error.
OUT=$(CLANG_TIDY=$WORK/tidy_loadfail "$SCRIPT" \
        --with-plugin "$PLUGIN" "$BUILD" 2>&1)
expect "plugin fails to -load" 2 $? "$OUT"
grep -q "failed to load plugin" <<<"$OUT" || {
  echo "FAIL: load-failure message unclear: $OUT" >&2
  fails=$((fails + 1))
}

# 3. Plugin loading as a no-op (no irhint-* registered) must exit 2 —
# this is the silent-degradation case the probe exists for.
OUT=$(CLANG_TIDY=$WORK/tidy_noreg "$SCRIPT" \
        --with-plugin "$PLUGIN" "$BUILD" 2>&1)
expect "plugin registers nothing" 2 $? "$OUT"
grep -q "not" <<<"$OUT" && grep -q "registered" <<<"$OUT" || {
  echo "FAIL: no-registration message unclear: $OUT" >&2
  fails=$((fails + 1))
}

# 4. Healthy probe: the gate proceeds and (with the inert stub) passes.
OUT=$(CLANG_TIDY=$WORK/tidy_ok "$SCRIPT" \
        --with-plugin "$PLUGIN" "$BUILD" 2>&1)
expect "healthy plugin passes probe" 0 $? "$OUT"

# 5. --taint with a clang-tidy that produces no sidecars: the summarize
# driver must notice the missing sidecar and fail, not link nothing.
OUT=$(CLANG_TIDY=$WORK/tidy_ok "$SCRIPT" \
        --with-plugin "$PLUGIN" --taint "$BUILD" 2>&1)
RC=$?
expect "--taint detects vanished sidecars" 1 $RC "$OUT"
grep -q "missing sidecar" <<<"$OUT" || {
  echo "FAIL: vanished-sidecar message unclear: $OUT" >&2
  fails=$((fails + 1))
}

if [ $fails -ne 0 ]; then
  echo "plugin_gate_test: $fails failure(s)" >&2
  exit 1
fi
echo "plugin_gate_test: all plugin failure modes fail loudly"

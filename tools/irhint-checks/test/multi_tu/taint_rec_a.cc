// Recursion fixture, TU 1 of 2 (+ the taint_c.cc sink TU): Ping and
// Pong are mutually recursive across TU boundaries, so the call graph
// has a cycle and the linker's fixpoint must converge instead of
// spinning: Prop(Pong, 0, ret) is direct (the d <= 0 base case), and
// Prop(Ping, 0, ret) only becomes derivable on the next worklist
// round, through the cycle.

#include "common.h"

namespace irhint {

uint64_t Pong(uint64_t n, int d);

uint64_t Ping(uint64_t n, int d) { return Pong(n, d - 1); }

void Drive(const uint8_t* p, Buf* b) {
  uint64_t n = 0;
  if (!ReadLen(p, &n)) {
    return;
  }
  FillBuffer(b, Ping(n, 3));
}

}  // namespace irhint

// clang-format off
// CHECK-REC: 1 finding(s) (1 new, 0 baselined)
// CHECK-REC: NEW irhint::Drive/2: decode-tainted value reaches sink `resize` in irhint::FillBuffer
// CHECK-REC: irhint::ReadLen  [untrusted source (out-param 1 carries raw decoded bytes)]
// CHECK-REC: irhint::Drive  [passes tainted value into irhint::Ping (arg 0)]
// CHECK-REC: irhint::Ping  [propagates arg 0 to ret]
// CHECK-REC: irhint::Drive  [passes tainted value into irhint::FillBuffer (arg 1)]
// CHECK-REC: irhint::FillBuffer  [sink resize]
// clang-format on

// Recursion fixture, TU 2 of 2: the other half of the Ping/Pong cycle.
// The base case returns the parameter unchecked, which is what makes
// the pair a propagator; the d <= 0 comparison blesses only d.

#include "common.h"

namespace irhint {

uint64_t Ping(uint64_t n, int d);

uint64_t Pong(uint64_t n, int d) {
  if (d <= 0) {
    return n;
  }
  return Ping(n, d - 1);
}

}  // namespace irhint

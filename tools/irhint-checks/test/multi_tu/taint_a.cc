// Cross-TU taint fixture, TU 1 of 3: the untrusted source and the
// driver that wires source -> propagator -> sink without ever
// containing a sink itself. The intra-procedural check finds nothing
// in any of the three TUs (asserted by the *_intra_misses WILL_FAIL
// companion); taint_link.py over the merged summaries must report the
// full ReadLen -> LoadAndUse -> Widen -> FillBuffer chain.

#include "common.h"

namespace irhint {

bool ReadLen(const uint8_t* p, uint64_t* out) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | p[i];
  }
  *out = v;
  return true;
}

void LoadAndUse(const uint8_t* p, Buf* b) {
  uint64_t n = 0;
  if (!ReadLen(p, &n)) {
    return;
  }
  FillBuffer(b, Widen(n));
}

}  // namespace irhint

// clang-format off
// CHECK-TAINT: 1 finding(s) (1 new, 0 baselined)
// CHECK-TAINT: NEW irhint::LoadAndUse/2: decode-tainted value reaches sink `resize` in irhint::FillBuffer
// CHECK-TAINT: taint_a.cc:{{[0-9]+}}: irhint::ReadLen  [untrusted source (out-param 1 carries raw decoded bytes)]
// CHECK-TAINT: taint_a.cc:{{[0-9]+}}: irhint::LoadAndUse  [passes tainted value into irhint::Widen (arg 0)]
// CHECK-TAINT: taint_b.cc:{{[0-9]+}}: irhint::Widen  [propagates arg 0 to ret]
// CHECK-TAINT: taint_a.cc:{{[0-9]+}}: irhint::LoadAndUse  [passes tainted value into irhint::FillBuffer (arg 1)]
// CHECK-TAINT: taint_c.cc:{{[0-9]+}}: irhint::FillBuffer  [sink resize]
// clang-format on

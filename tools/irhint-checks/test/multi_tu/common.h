// Shared declarations for the cross-TU taint fixtures. The three TUs
// (taint_a.cc: source + driver, taint_b.cc: propagator, taint_c.cc:
// sink) each see only these signatures — nothing here reveals that
// ReadLen's out-param reaches FillBuffer's resize across TU
// boundaries, which is exactly what the two-phase analysis has to
// reconstruct from the per-TU summaries (DESIGN.md §13).

#ifndef IRHINT_TOOLS_IRHINT_CHECKS_TEST_MULTI_TU_COMMON_H_
#define IRHINT_TOOLS_IRHINT_CHECKS_TEST_MULTI_TU_COMMON_H_

#include <cstdint>
#include <vector>

#include "common/contracts.h"

namespace irhint {

struct Buf {
  std::vector<uint8_t> bytes;
};

// Source: the out-param carries a length straight off the wire.
// Defined in taint_a.cc.
IRHINT_UNTRUSTED bool ReadLen(const uint8_t* p, uint64_t* out);

// Propagator: returns its argument widened. With -DTAINT_SANITIZED the
// definition in taint_b.cc clamps the value against a bound instead,
// and every flow through it must go quiet. Defined in taint_b.cc.
uint64_t Widen(uint64_t n);

// Sink holder: resizes b->bytes to n. Defined in taint_c.cc.
void FillBuffer(Buf* b, uint64_t n);

}  // namespace irhint

#endif  // IRHINT_TOOLS_IRHINT_CHECKS_TEST_MULTI_TU_COMMON_H_

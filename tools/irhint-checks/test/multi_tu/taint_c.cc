// Cross-TU taint fixture, TU 3 of 3: the sink holder. Nothing in this
// TU is tainted on its own — `n` is just a parameter of an unannotated
// function, so the intra-procedural check stays quiet. The summary
// records SinkReach(FillBuffer, 1): if argument 1 is hot in some
// caller, it reaches resize() unvalidated.

#include "common.h"

namespace irhint {

void FillBuffer(Buf* b, uint64_t n) {
  b->bytes.resize(n);
}

}  // namespace irhint

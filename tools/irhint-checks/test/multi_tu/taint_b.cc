// Cross-TU taint fixture, TU 2 of 3: the propagator. The default shape
// forwards its argument (param 0 flows to the return value, so the
// linker derives Prop(Widen, 0, ret)); with -DTAINT_SANITIZED it
// bounds-checks first, the mention in the comparison blesses `n`, no
// ret fact survives, and the whole cross-TU flow must go quiet.

#include "common.h"

namespace irhint {

#ifndef TAINT_SANITIZED

uint64_t Widen(uint64_t n) { return n * 2; }

#else

uint64_t Widen(uint64_t n) {
  if (n > 1024) {
    return 1024;
  }
  return n * 2;
}

#endif

}  // namespace irhint

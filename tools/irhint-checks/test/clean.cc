// Clean fixture TU: compiles against the real repo headers and uses
// every idiom the irhint-* checks are meant to accept — checked_math
// sanitizers, comparison bounds checks, IRHINT_RETURN_NOT_OK, a
// shared_ptr keepalive, an IRHINT_KEEPALIVE_EXTERNAL annotation, and
// the synchronization wrappers. No check may fire.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/checked_math.h"
#include "common/contracts.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "storage/flat_array.h"

namespace irhint {

IRHINT_UNTRUSTED bool ReadU64(const uint8_t** cursor, uint64_t* out);

// Untrusted count blessed through a checked_math sanitizer before it
// sizes an allocation.
Status LoadTable(const uint8_t** cursor, size_t remaining,
                 std::vector<uint64_t>* table) {
  uint64_t count = 0;
  if (!ReadU64(cursor, &count)) return Status::Corruption("truncated");
  if (!FitsInBytes(count, 8, remaining)) {
    return Status::Corruption("count out of bounds");
  }
  table->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t value = 0;
    IRHINT_RETURN_NOT_OK(
        ReadU64(cursor, &value) ? Status::OK()
                                : Status::Corruption("truncated"));
    table->push_back(value);
  }
  return Status::OK();
}

// Untrusted id blessed by an explicit limit comparison, then widened
// through GrowToFit.
Status GrowFrequencies(const uint8_t** cursor,
                       std::vector<uint64_t>* frequencies) {
  uint64_t id = 0;
  if (!ReadU64(cursor, &id)) return Status::Corruption("truncated");
  if (id >= (uint64_t{1} << 28)) {
    return Status::Corruption("id out of range");
  }
  frequencies->resize(GrowToFit(static_cast<uint32_t>(id)), 0);
  return Status::OK();
}

// Status results are consumed, never dropped.
Status UseStatuses(const uint8_t** cursor, size_t remaining) {
  std::vector<uint64_t> table;
  IRHINT_RETURN_NOT_OK(LoadTable(cursor, remaining, &table));
  const Status st = GrowFrequencies(cursor, &table);
  if (!st.ok()) return st;
  return Status::OK();
}

// FlatArray views guarded by an in-record shared_ptr keepalive.
struct KeepaliveView {
  FlatArray<uint64_t> values;
  std::shared_ptr<void> storage_keepalive;
};

// ... or by a documented external owner.
struct IRHINT_KEEPALIVE_EXTERNAL ExternallyOwnedView {
  FlatArray<uint64_t> values;
};

// Synchronization goes through the repo wrappers.
class Counter {
 public:
  void Bump() {
    MutexLock lock(&mu_);
    ++value_;
  }

 private:
  Mutex mu_;
  uint64_t value_ IRHINT_GUARDED_BY(mu_) = 0;
};

}  // namespace irhint

// CLEAN-NOT: [irhint-

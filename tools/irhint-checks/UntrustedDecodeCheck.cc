#include "UntrustedDecodeCheck.h"

#include <set>
#include <string>
#include <vector>

#include "CheckUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Lex/Lexer.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace irhint_checks {

namespace {

std::set<std::string> SplitNames(StringRef List) {
  std::set<std::string> Names;
  while (!List.empty()) {
    std::pair<StringRef, StringRef> Parts = List.split(';');
    StringRef Name = Parts.first.trim();
    if (!Name.empty()) Names.insert(Name.str());
    List = Parts.second;
  }
  return Names;
}

// Walks every statement in `Root` (inclusive), pre-order.
template <typename Fn>
void ForEachStmt(const Stmt* Root, Fn&& Visit) {
  if (Root == nullptr) return;
  Visit(Root);
  for (const Stmt* Child : Root->children()) ForEachStmt(Child, Visit);
}

// Calls `Visit` for every DeclRefExpr under `Root` that names a VarDecl.
template <typename Fn>
void ForEachVarRef(const Stmt* Root, Fn&& Visit) {
  ForEachStmt(Root, [&](const Stmt* S) {
    if (const auto* Ref = dyn_cast<DeclRefExpr>(S)) {
      if (const auto* Var = dyn_cast<VarDecl>(Ref->getDecl())) {
        Visit(Ref, Var);
      }
    }
  });
}

bool MentionsAnyOf(const Stmt* Root, const std::set<const VarDecl*>& Vars) {
  bool Found = false;
  ForEachVarRef(Root, [&](const DeclRefExpr*, const VarDecl* Var) {
    if (Vars.count(Var) != 0) Found = true;
  });
  return Found;
}

// The variable a unary & argument takes the address of, if any:
// matches the `reader.ReadU64(&count)` out-parameter idiom.
const VarDecl* AddressOfVar(const Expr* Arg) {
  if (Arg == nullptr) return nullptr;
  const auto* Unary = dyn_cast<UnaryOperator>(Arg->IgnoreParenImpCasts());
  if (Unary == nullptr || Unary->getOpcode() != UO_AddrOf) return nullptr;
  const auto* Ref =
      dyn_cast<DeclRefExpr>(Unary->getSubExpr()->IgnoreParenImpCasts());
  if (Ref == nullptr) return nullptr;
  return dyn_cast<VarDecl>(Ref->getDecl());
}

StringRef CalleeName(const CallExpr* Call) {
  const auto* Callee =
      dyn_cast_or_null<NamedDecl>(Call->getCalleeDecl());
  if (Callee == nullptr) return StringRef();
  const IdentifierInfo* Ident = Callee->getIdentifier();
  return Ident == nullptr ? StringRef() : Ident->getName();
}

}  // namespace

UntrustedDecodeCheck::UntrustedDecodeCheck(StringRef Name,
                                           ClangTidyContext* Context)
    : ClangTidyCheck(Name, Context),
      SourceFunctions(Options.get("SourceFunctions", "")),
      SanitizerFunctions(Options.get(
          "SanitizerFunctions",
          "CheckedAdd;CheckedSub;CheckedMul;CheckedCast;SaturatingAdd;"
          "SaturatingMul;GrowToFit;FitsInBytes")) {}

void UntrustedDecodeCheck::storeOptions(ClangTidyOptions::OptionMap& Opts) {
  Options.store(Opts, "SourceFunctions", SourceFunctions);
  Options.store(Opts, "SanitizerFunctions", SanitizerFunctions);
}

void UntrustedDecodeCheck::registerMatchers(MatchFinder* Finder) {
  Finder->addMatcher(functionDecl(isDefinition(), hasBody(stmt()),
                                  unless(isExpansionInSystemHeader()))
                         .bind("func"),
      this);
}

void UntrustedDecodeCheck::check(const MatchFinder::MatchResult& Result) {
  const auto* Func = Result.Nodes.getNodeAs<FunctionDecl>("func");
  if (Func == nullptr || !Func->doesThisDeclarationHaveABody()) return;
  const Stmt* Body = Func->getBody();
  const SourceManager& SM = *Result.SourceManager;
  const LangOptions& LangOpts = Result.Context->getLangOpts();

  const std::set<std::string> Sources = SplitNames(SourceFunctions);
  const std::set<std::string> Sanitizers = SplitNames(SanitizerFunctions);

  auto IsSourceCall = [&](const CallExpr* Call) {
    if (HasAnnotation(Call->getCalleeDecl(), "irhint::untrusted")) {
      return true;
    }
    const StringRef Name = CalleeName(Call);
    return !Name.empty() && Sources.count(Name.str()) != 0;
  };
  auto IsSanitizerCall = [&](const CallExpr* Call) {
    if (HasAnnotation(Call->getCalleeDecl(), "irhint::sanitizer")) {
      return true;
    }
    const StringRef Name = CalleeName(Call);
    return !Name.empty() && Sanitizers.count(Name.str()) != 0;
  };

  // --- Seed taint. -------------------------------------------------
  std::set<const VarDecl*> Tainted;
  if (HasAnnotation(Func, "irhint::untrusted")) {
    for (const ParmVarDecl* Param : Func->parameters()) {
      if (Param->getType()->isPointerType()) Tainted.insert(Param);
    }
  }
  ForEachStmt(Body, [&](const Stmt* S) {
    const auto* Call = dyn_cast<CallExpr>(S);
    if (Call == nullptr || !IsSourceCall(Call)) return;
    for (const Expr* Arg : Call->arguments()) {
      if (const VarDecl* Out = AddressOfVar(Arg)) Tainted.insert(Out);
    }
  });

  // --- Propagate through initializations and assignments. ----------
  auto ExprIsTainted = [&](const Expr* E) {
    if (E == nullptr) return false;
    bool Found = MentionsAnyOf(E, Tainted);
    if (!Found) {
      ForEachStmt(E, [&](const Stmt* S) {
        if (const auto* Call = dyn_cast<CallExpr>(S)) {
          if (IsSourceCall(Call)) Found = true;
        }
      });
    }
    return Found;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ForEachStmt(Body, [&](const Stmt* S) {
      if (const auto* DS = dyn_cast<DeclStmt>(S)) {
        for (const Decl* D : DS->decls()) {
          const auto* Var = dyn_cast<VarDecl>(D);
          if (Var == nullptr || Tainted.count(Var) != 0) continue;
          if (ExprIsTainted(Var->getInit())) {
            Tainted.insert(Var);
            Changed = true;
          }
        }
        return;
      }
      const auto* Bin = dyn_cast<BinaryOperator>(S);
      if (Bin == nullptr || !Bin->isAssignmentOp()) return;
      const auto* Ref =
          dyn_cast<DeclRefExpr>(Bin->getLHS()->IgnoreParenImpCasts());
      if (Ref == nullptr) return;
      const auto* Var = dyn_cast<VarDecl>(Ref->getDecl());
      if (Var == nullptr || Tainted.count(Var) != 0) return;
      if (ExprIsTainted(Bin->getRHS())) {
        Tainted.insert(Var);
        Changed = true;
      }
    });
  }
  if (Tainted.empty()) return;

  // --- Blessing: any validation evidence anywhere in the function. --
  // A reference under unary & is an out-parameter slot being written
  // (`Read(&e)`), not a value inspection — it must never count as
  // validation, even inside an if condition or an IRHINT_* macro.
  std::set<const DeclRefExpr*> AddrOfRefs;
  ForEachStmt(Body, [&](const Stmt* S) {
    const auto* Unary = dyn_cast<UnaryOperator>(S);
    if (Unary == nullptr || Unary->getOpcode() != UO_AddrOf) return;
    if (const auto* Ref = dyn_cast<DeclRefExpr>(
            Unary->getSubExpr()->IgnoreParenImpCasts())) {
      AddrOfRefs.insert(Ref);
    }
  });
  std::set<const VarDecl*> Blessed;
  auto BlessAllIn = [&](const Stmt* Root) {
    ForEachVarRef(Root, [&](const DeclRefExpr* Ref, const VarDecl* Var) {
      if (Tainted.count(Var) != 0 && AddrOfRefs.count(Ref) == 0) {
        Blessed.insert(Var);
      }
    });
  };
  ForEachStmt(Body, [&](const Stmt* S) {
    if (const auto* Bin = dyn_cast<BinaryOperator>(S)) {
      if (Bin->isComparisonOp()) BlessAllIn(Bin);
      return;
    }
    if (const auto* If = dyn_cast<IfStmt>(S)) {
      BlessAllIn(If->getCond());
      return;
    }
    if (const auto* While = dyn_cast<WhileStmt>(S)) {
      BlessAllIn(While->getCond());
      return;
    }
    if (const auto* Do = dyn_cast<DoStmt>(S)) {
      BlessAllIn(Do->getCond());
      return;
    }
    if (const auto* For = dyn_cast<ForStmt>(S)) {
      BlessAllIn(For->getCond());
      return;
    }
    if (const auto* Switch = dyn_cast<SwitchStmt>(S)) {
      BlessAllIn(Switch->getCond());
      return;
    }
    if (const auto* Cond = dyn_cast<ConditionalOperator>(S)) {
      BlessAllIn(Cond->getCond());
      return;
    }
    if (const auto* Op = dyn_cast<CXXOperatorCallExpr>(S)) {
      // Overloaded comparisons (e.g. on strong typedefs) bless too.
      const OverloadedOperatorKind Kind = Op->getOperator();
      if (Kind == OO_Less || Kind == OO_Greater || Kind == OO_LessEqual ||
          Kind == OO_GreaterEqual || Kind == OO_EqualEqual ||
          Kind == OO_ExclaimEqual || Kind == OO_Spaceship) {
        BlessAllIn(Op);
      }
      return;
    }
    if (const auto* Call = dyn_cast<CallExpr>(S)) {
      if (IsSanitizerCall(Call)) BlessAllIn(Call);
      return;
    }
  });
  // A mention inside an IRHINT_* macro (IRHINT_RETURN_NOT_OK and
  // friends) means the macro's expansion already branches on it.
  ForEachVarRef(Body, [&](const DeclRefExpr* Ref, const VarDecl* Var) {
    if (Tainted.count(Var) == 0 || Blessed.count(Var) != 0) return;
    if (AddrOfRefs.count(Ref) != 0) return;
    SourceLocation Loc = Ref->getBeginLoc();
    if (!Loc.isMacroID()) return;
    const StringRef Macro = Lexer::getImmediateMacroName(Loc, SM, LangOpts);
    if (Macro.starts_with("IRHINT_")) Blessed.insert(Var);
  });

  std::set<const VarDecl*> Hot;
  for (const VarDecl* Var : Tainted) {
    if (Blessed.count(Var) == 0) Hot.insert(Var);
  }
  if (Hot.empty()) return;

  // --- Sinks. -------------------------------------------------------
  auto Report = [&](const Stmt* ArgTree, StringRef SinkKind) {
    ForEachVarRef(ArgTree, [&](const DeclRefExpr* Ref, const VarDecl* Var) {
      if (Hot.count(Var) == 0) return;
      diag(Ref->getExprLoc(),
           "'%0' comes from an IRHINT_UNTRUSTED decode source and "
           "reaches %1 without any bounds check; validate it or route "
           "it through common/checked_math.h first")
          << Var->getName() << SinkKind;
      // One diagnostic per variable keeps the output readable.
      Hot.erase(Var);
    });
  };
  ForEachStmt(Body, [&](const Stmt* S) {
    if (const auto* Member = dyn_cast<CXXMemberCallExpr>(S)) {
      const StringRef Method = CalleeName(Member);
      if (Method == "resize" || Method == "reserve" || Method == "SetView") {
        for (const Expr* Arg : Member->arguments()) {
          Report(Arg, "a container size/view argument");
        }
      }
      return;
    }
    if (const auto* Sub = dyn_cast<ArraySubscriptExpr>(S)) {
      Report(Sub->getIdx(), "an array index");
      return;
    }
    if (const auto* Op = dyn_cast<CXXOperatorCallExpr>(S)) {
      if (Op->getOperator() == OO_Subscript && Op->getNumArgs() >= 2) {
        Report(Op->getArg(1), "an operator[] index");
      }
      return;
    }
    if (const auto* Call = dyn_cast<CallExpr>(S)) {
      const StringRef Name = CalleeName(Call);
      if ((Name == "memcpy" || Name == "memmove" || Name == "memset") &&
          Call->getNumArgs() >= 3) {
        Report(Call->getArg(2), "a memory-operation length");
      }
      return;
    }
    if (const auto* Bin = dyn_cast<BinaryOperator>(S)) {
      const BinaryOperatorKind Opc = Bin->getOpcode();
      if (Opc != BO_Add && Opc != BO_Sub && Opc != BO_AddAssign &&
          Opc != BO_SubAssign) {
        return;
      }
      const bool LHSPtr = Bin->getLHS()->getType()->isPointerType();
      const bool RHSPtr = Bin->getRHS()->getType()->isPointerType();
      if (LHSPtr && !RHSPtr) Report(Bin->getRHS(), "a pointer offset");
      if (RHSPtr && !LHSPtr) Report(Bin->getLHS(), "a pointer offset");
      return;
    }
  });
}

}  // namespace irhint_checks
}  // namespace tidy
}  // namespace clang

#include "ViewLifetimeCheck.h"

#include "CheckUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace irhint_checks {

namespace {

bool TypeMentions(QualType QT, StringRef Needle,
                  const PrintingPolicy& Policy) {
  if (QT.isNull()) return false;
  return StringRef(QT.getCanonicalType().getAsString(Policy))
      .contains(Needle);
}

// True when the record itself — or any (transitive) base with a visible
// definition — declares a shared_ptr member. That member is the
// keepalive slot; holding it alive is what makes FlatArray views safe.
bool HasKeepaliveField(const CXXRecordDecl* Record,
                       const PrintingPolicy& Policy) {
  if (Record == nullptr) return false;
  for (const FieldDecl* Field : Record->fields()) {
    if (TypeMentions(Field->getType(), "shared_ptr", Policy)) return true;
  }
  if (!Record->hasDefinition()) return false;
  for (const CXXBaseSpecifier& Base : Record->bases()) {
    const auto* BaseRT = Base.getType().getCanonicalType()->getAs<RecordType>();
    if (BaseRT == nullptr) continue;
    const auto* BaseDecl = dyn_cast<CXXRecordDecl>(BaseRT->getDecl());
    if (BaseDecl == nullptr) continue;
    if (HasKeepaliveField(BaseDecl->getDefinition(), Policy)) return true;
  }
  return false;
}

}  // namespace

void ViewLifetimeCheck::registerMatchers(MatchFinder* Finder) {
  // Match definitions once: template *patterns* rather than every
  // instantiation, so DivisionPostings<Entry> diagnoses at one site.
  Finder->addMatcher(cxxRecordDecl(isDefinition(),
                                   unless(isExpansionInSystemHeader()),
                                   unless(isImplicit()),
                                   unless(isTemplateInstantiation()))
                         .bind("record"),
      this);
}

void ViewLifetimeCheck::check(const MatchFinder::MatchResult& Result) {
  const auto* Record = Result.Nodes.getNodeAs<CXXRecordDecl>("record");
  if (Record == nullptr || Record->isUnion()) return;
  const PrintingPolicy& Policy = Result.Context->getPrintingPolicy();

  const FieldDecl* ViewField = nullptr;
  for (const FieldDecl* Field : Record->fields()) {
    if (TypeMentions(Field->getType(), "FlatArray<", Policy)) {
      ViewField = Field;
      break;
    }
  }
  if (ViewField == nullptr) return;
  // FlatArray itself manages its owned/view duality; don't flag it.
  if (Record->getQualifiedNameAsString() == "irhint::FlatArray") return;
  if (HasAnnotation(Record, "irhint::keepalive-external")) return;
  if (HasKeepaliveField(Record, Policy)) return;

  diag(Record->getLocation(),
       "%0 stores FlatArray members that may be zero-copy views into a "
       "snapshot mapping, but holds no shared_ptr keepalive and is not "
       "annotated IRHINT_KEEPALIVE_EXTERNAL; views could outlive their "
       "MappedFile")
      << Record;
  diag(ViewField->getLocation(), "first FlatArray member is here",
       DiagnosticIDs::Note);
}

}  // namespace irhint_checks
}  // namespace tidy
}  // namespace clang

// Enforces the repo's Status discipline:
//   * a call returning irhint::Status / irhint::StatusOr<T> used as a
//     bare expression statement is a dropped error (wrap the call in
//     IRHINT_RETURN_NOT_OK, check .ok(), or cast to void with a
//     comment);
//   * a Status constructed as a discarded temporary is almost always a
//     forgotten `return`;
//   * the Status / StatusOr class definitions themselves must stay
//     [[nodiscard]] so plain compiles keep the first line of defence.

#ifndef IRHINT_TOOLS_IRHINT_CHECKS_STATUSDISCIPLINECHECK_H_
#define IRHINT_TOOLS_IRHINT_CHECKS_STATUSDISCIPLINECHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace irhint_checks {

class StatusDisciplineCheck : public ClangTidyCheck {
 public:
  StatusDisciplineCheck(StringRef Name, ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions& LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;
};

}  // namespace irhint_checks
}  // namespace tidy
}  // namespace clang

#endif  // IRHINT_TOOLS_IRHINT_CHECKS_STATUSDISCIPLINECHECK_H_

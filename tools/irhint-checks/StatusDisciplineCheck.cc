#include "StatusDisciplineCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace irhint_checks {

namespace {

// True when `QT` is (canonically) irhint::Status or a specialization of
// irhint::StatusOr.
bool IsStatusType(QualType QT) {
  if (QT.isNull()) return false;
  const auto* RT = QT.getCanonicalType()->getAs<RecordType>();
  if (RT == nullptr) return false;
  const std::string Name = RT->getDecl()->getQualifiedNameAsString();
  return Name == "irhint::Status" || Name == "irhint::StatusOr";
}

// Peels the implicit wrappers the AST inserts around a discarded
// prvalue (cleanups, temporary binding, implicit casts) without peeling
// explicit casts — `(void)DropIt()` stays visible as a CStyleCastExpr
// and counts as a deliberate discard.
const Expr* IgnoreImplicitDiscardWrappers(const Expr* E) {
  while (true) {
    E = E->IgnoreParens();
    if (const auto* EWC = dyn_cast<ExprWithCleanups>(E)) {
      E = EWC->getSubExpr();
      continue;
    }
    if (const auto* BTE = dyn_cast<CXXBindTemporaryExpr>(E)) {
      E = BTE->getSubExpr();
      continue;
    }
    if (const auto* ICE = dyn_cast<ImplicitCastExpr>(E)) {
      E = ICE->getSubExpr();
      continue;
    }
    return E;
  }
}

}  // namespace

void StatusDisciplineCheck::registerMatchers(MatchFinder* Finder) {
  // An expression appearing directly as a statement is a discarded
  // value; cover compound bodies plus the unbraced single-statement
  // positions.
  auto Discarded = expr(unless(isExpansionInSystemHeader())).bind("top");
  Finder->addMatcher(compoundStmt(forEach(Discarded)), this);
  Finder->addMatcher(ifStmt(hasThen(Discarded)), this);
  Finder->addMatcher(ifStmt(hasElse(Discarded)), this);
  Finder->addMatcher(whileStmt(hasBody(Discarded)), this);
  Finder->addMatcher(forStmt(hasBody(Discarded)), this);
  Finder->addMatcher(doStmt(hasBody(Discarded)), this);
  Finder->addMatcher(cxxForRangeStmt(hasBody(Discarded)), this);

  // The classes themselves must keep [[nodiscard]]; removing it would
  // silently disarm the compiler-side warning repo-wide.
  Finder->addMatcher(
      cxxRecordDecl(hasAnyName("::irhint::Status", "::irhint::StatusOr"),
                    isDefinition())
          .bind("status-record"),
      this);
}

void StatusDisciplineCheck::check(const MatchFinder::MatchResult& Result) {
  if (const auto* Record =
          Result.Nodes.getNodeAs<CXXRecordDecl>("status-record")) {
    if (!Record->hasAttr<WarnUnusedResultAttr>()) {
      diag(Record->getLocation(),
           "%0 must be declared [[nodiscard]]; dropping it disables the "
           "compiler's discarded-Status warnings everywhere")
          << Record;
    }
    return;
  }

  const auto* Top = Result.Nodes.getNodeAs<Expr>("top");
  if (Top == nullptr) return;
  const Expr* E = IgnoreImplicitDiscardWrappers(Top);
  if (isa<ExplicitCastExpr>(E)) {
    // An explicit cast at statement level — `(void)Call()` — is a
    // deliberate, reviewable discard.
    return;
  }

  if (const auto* Call = dyn_cast<CallExpr>(E)) {
    if (!IsStatusType(Call->getType())) return;
    diag(Call->getExprLoc(),
         "result of this call is an irhint Status and is silently "
         "discarded; wrap it in IRHINT_RETURN_NOT_OK, test .ok(), or "
         "cast to void with a justification");
    return;
  }
  if (const auto* Construct = dyn_cast<CXXConstructExpr>(E)) {
    if (!IsStatusType(Construct->getType())) return;
    diag(Construct->getExprLoc(),
         "irhint::Status constructed and immediately discarded; this is "
         "usually a missing 'return'");
  }
}

}  // namespace irhint_checks
}  // namespace tidy
}  // namespace clang

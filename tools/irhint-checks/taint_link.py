#!/usr/bin/env python3
"""Phase 2 of the whole-program decode-taint analysis (DESIGN.md §13).

Phase 1 (the `irhint-taint-summary` clang-tidy check) runs over the full
compile database and writes one JSON sidecar per translation unit into a
summary directory. This driver merges the sidecars, builds the call
graph from the per-function facts, runs a worklist fixpoint over
function summaries, and reports every unsanitized source->sink path
with its full call chain, diffed against a committed findings baseline
so that *new* cross-TU flows fail CI while residual baselined ones are
tracked.

Sidecar schema (schema version 1) — this file owns the schema; the C++
emitter in TaintSummaryCheck.cc mirrors it byte-for-byte:

    {
      "functions": [
        {
          "annotated": "untrusted" | "sanitizer" | "",
          "display":   "ns::Class::Fn",
          "end_line":  123,
          "facts":     [fact...],        # sorted, dedup'd
          "file":      "src/foo/bar.cc", # repo-relative
          "key":       "ns::Class::Fn/2",
          "line":      100,
          "params":    2,
          "sanitizes": [0]               # params blessed in the body
        }
      ],
      "known_annotated": {"key": "untrusted" | "sanitizer"},
      "schema": 1,
      "tu": "src/foo/bar.cc"
    }

Facts (keys alphabetical, values canonical):

    {"from": [origin...], "kind": "ret",  "line": N}
    {"from": [origin...], "kind": "out",  "line": N, "param": J}
    {"callee": KEY, "from": [origin...], "index": J,
     "kind": "arg", "line": N}
    {"from": [origin...], "kind": "sink", "line": N, "sink": NAME}

Origins name where a value may have come from *locally*:

    param:I          the function's I-th parameter
    call_ret:KEY     the return value of a call to KEY
    call_out:KEY:J   a variable passed by address/reference as the J-th
                     argument of a call to KEY

Serialization is canonical: every sidecar is byte-identical to
`json.dumps(obj, sort_keys=True, separators=(",", ":"))` of its parsed
content (checked by --verify-canonical), so content-hash caching and
round-trip tests are exact.

Fixpoint relations (all monotone, so cycles/recursion converge):

    Emits(F, ret)       F's return carries source-derived taint even
                        when F is called with clean arguments.
    Emits(F, out:J)     F writes such taint through its J-th parameter.
    Prop(F, I, ret)     if F's I-th argument is tainted, so is F's
                        return value.
    Prop(F, I, out:J)   ... so is what F writes through parameter J.
    SinkReach(F, I)     if F's I-th argument is tainted it reaches a
                        resize/subscript/memcpy-length/pointer-arith
                        sink (directly or transitively) unvalidated.

Hotness of an origin in a context (a set of tainted parameters):
param:I is hot iff I is in the context; call_ret:KEY is hot iff KEY is
annotated untrusted or Emits(KEY, ret); call_out:KEY:J likewise via
Emits(KEY, out:J). Within one function, hot arguments flowing into a
callee whose Prop relation fires make the corresponding call_ret /
call_out origins hot too (conflated per callee key — conservative when
the same callee is invoked with both hot and cold arguments). Origins
that reference an annotated sanitizer are never hot, which is what
makes a bound-checking helper in another TU silence a flow.

Findings are root-context flows: a hot sink fact, or a hot arg fact
into a callee whose SinkReach fires. Finding ids are built from
function keys only (no line numbers), so routine edits don't churn the
baseline:  root-key|origin|sink-function-key|sink-name.

Exit codes: 0 clean (or all findings baselined), 1 new findings or
canonical-form violation, 2 usage / IO / schema errors.
"""

import argparse
import json
import os
import sys

SCHEMA = 1

UNTRUSTED = "untrusted"
SANITIZER = "sanitizer"


def canonical(obj):
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def fail(msg):
    print("taint_link: error: %s" % msg, file=sys.stderr)
    sys.exit(2)


# --------------------------------------------------------------------------
# Loading and merging
# --------------------------------------------------------------------------


def load_sidecars(summary_dir):
    """Returns a list of (path, parsed) for every .json sidecar."""
    if not os.path.isdir(summary_dir):
        fail("summary directory %s does not exist" % summary_dir)
    sidecars = []
    for name in sorted(os.listdir(summary_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(summary_dir, name)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            fail("cannot parse sidecar %s: %s" % (path, exc))
        if data.get("schema") != SCHEMA:
            fail(
                "sidecar %s has schema %r, this driver speaks %d"
                % (path, data.get("schema"), SCHEMA)
            )
        sidecars.append((path, data))
    if not sidecars:
        fail("no .json sidecars found in %s" % summary_dir)
    return sidecars


def verify_canonical(sidecars):
    """Checks every sidecar file is in canonical serialized form."""
    bad = []
    for path, data in sidecars:
        with open(path, "rb") as fh:
            raw = fh.read()
        if raw.decode("utf-8") != canonical(data):
            bad.append(path)
    return bad


def merge_sidecars(sidecars):
    """Unions sidecars into (functions, annotated, tus, warnings).

    functions: key -> merged function record (facts dedup'd + sorted).
    annotated: key -> "untrusted"/"sanitizer" from definitions and from
    declaration-side annotations observed in any TU.
    """
    functions = {}
    annotated = {}
    warnings = []
    tus = []

    def note_annotation(key, kind, where):
        prev = annotated.get(key)
        if prev is not None and prev != kind:
            # An untrusted/sanitizer conflict is a contract bug; err on
            # the side that keeps taint flowing.
            warnings.append(
                "conflicting annotations for %s (%s vs %s, seen in %s); "
                "treating as untrusted" % (key, prev, kind, where)
            )
            annotated[key] = UNTRUSTED
            return
        annotated[key] = kind

    for path, data in sidecars:
        tus.append(data.get("tu", path))
        for kind_key, kind in data.get("known_annotated", {}).items():
            note_annotation(kind_key, kind, data.get("tu", path))
        for func in data.get("functions", []):
            key = func["key"]
            if func.get("annotated"):
                note_annotation(key, func["annotated"], func["file"])
            have = functions.get(key)
            if have is None:
                merged = dict(func)
                merged["facts"] = list(func["facts"])
                merged["sanitizes"] = sorted(set(func["sanitizes"]))
                functions[key] = merged
                continue
            # Same function seen from several TUs (header-inline,
            # templates): union the facts, keep the first location.
            seen = {canonical(f) for f in have["facts"]}
            for fact in func["facts"]:
                if canonical(fact) not in seen:
                    seen.add(canonical(fact))
                    have["facts"].append(fact)
            have["sanitizes"] = sorted(
                set(have["sanitizes"]) | set(func["sanitizes"])
            )
            if not have.get("annotated") and func.get("annotated"):
                have["annotated"] = func["annotated"]
    for func in functions.values():
        func["facts"].sort(key=canonical)
    return functions, annotated, sorted(set(tus)), warnings


# --------------------------------------------------------------------------
# Fixpoint
# --------------------------------------------------------------------------


def _origin_parts(origin):
    """Splits an origin into (kind, callee-key-or-None, index-or-None)."""
    if origin.startswith("param:"):
        return "param", None, int(origin.split(":", 1)[1])
    if origin.startswith("call_ret:"):
        return "call_ret", origin[len("call_ret:") :], None
    if origin.startswith("call_out:"):
        rest = origin[len("call_out:") :]
        key, _, idx = rest.rpartition(":")
        return "call_out", key, int(idx)
    return "unknown", None, None


class Linker:
    """Worklist fixpoint over merged function summaries."""

    def __init__(self, functions, annotated):
        self.functions = functions
        self.annotated = annotated
        self.emits = {}  # (key, slot) -> witness chain (list of steps)
        self.prop = {}  # (key, param) -> set of slots
        self.sink_reach = {}  # (key, param) -> (chain, sink_key, sink_name)

    # -- presentation helpers ---------------------------------------------

    def _display(self, key):
        func = self.functions.get(key)
        return func["display"] if func else key

    def _step(self, key, line, note):
        func = self.functions.get(key)
        return {
            "file": func["file"] if func else "?",
            "function": self._display(key),
            "key": key,
            "line": line if line else (func["line"] if func else 0),
            "note": note,
        }

    # -- hotness ----------------------------------------------------------

    def _base_hot(self, origin, ctx_params):
        kind, callee, idx = _origin_parts(origin)
        if kind == "param":
            return idx in ctx_params
        if kind == "call_ret":
            if self.annotated.get(callee) == SANITIZER:
                return False
            return (
                self.annotated.get(callee) == UNTRUSTED
                or (callee, "ret") in self.emits
            )
        if kind == "call_out":
            if self.annotated.get(callee) == SANITIZER:
                return False
            return (
                self.annotated.get(callee) == UNTRUSTED
                or (callee, "out:%d" % idx) in self.emits
            )
        return False

    def _close(self, func, ctx_params):
        """Closes hotness over Prop within one function body.

        Returns (hot_of, prov): hot_of(from_list) gives a hot origin
        from the list or None; prov maps Prop-derived hot origins to
        (via_origin, line, callee_key, arg_index, slot) provenance.
        """
        extra = set()
        prov = {}

        def is_hot(origin):
            return origin in extra or self._base_hot(origin, ctx_params)

        def hot_of(from_list):
            for origin in from_list:
                if is_hot(origin):
                    return origin
            return None

        changed = True
        while changed:
            changed = False
            for fact in func["facts"]:
                if fact["kind"] != "arg":
                    continue
                callee = fact["callee"]
                if self.annotated.get(callee) == SANITIZER:
                    continue
                via = hot_of(fact["from"])
                if via is None:
                    continue
                for slot in self.prop.get((callee, fact["index"]), ()):
                    if slot == "ret":
                        origin = "call_ret:%s" % callee
                    else:
                        origin = "call_out:%s:%s" % (
                            callee,
                            slot.split(":", 1)[1],
                        )
                    if not is_hot(origin):
                        extra.add(origin)
                        prov[origin] = (
                            via,
                            fact["line"],
                            callee,
                            fact["index"],
                            slot,
                        )
                        changed = True
        return hot_of, prov

    # -- witness chains ---------------------------------------------------

    def _trace(self, func, origin, prov):
        """Source-side witness chain for a hot origin (root context)."""
        if origin in prov:
            via, line, callee, idx, slot = prov[origin]
            chain = self._trace(func, via, prov)
            chain.append(
                self._step(
                    func["key"],
                    line,
                    "passes tainted value into %s (arg %d)"
                    % (self._display(callee), idx),
                )
            )
            chain.append(
                self._step(
                    callee, 0, "propagates arg %d to %s" % (idx, slot)
                )
            )
            return chain
        kind, callee, idx = _origin_parts(origin)
        if kind == "param":
            return [
                self._step(func["key"], 0, "parameter %d tainted" % idx)
            ]
        what = "return value" if kind == "call_ret" else "out-param %d" % idx
        if self.annotated.get(callee) == UNTRUSTED:
            return [
                self._step(
                    callee,
                    0,
                    "untrusted source (%s carries raw decoded bytes)" % what,
                )
            ]
        slot = "ret" if kind == "call_ret" else "out:%d" % idx
        chain = list(self.emits.get((callee, slot), ()))
        if not chain:  # defensive: hot implies one of the cases above
            chain = [self._step(callee, 0, "emits tainted %s" % what)]
        return chain

    # -- relation derivation ----------------------------------------------

    def solve(self):
        changed = True
        while changed:
            changed = False
            for key, func in self.functions.items():
                if self.annotated.get(key) == SANITIZER:
                    continue
                changed |= self._derive_param_contexts(key, func)
                changed |= self._derive_root_context(key, func)

    def _derive_param_contexts(self, key, func):
        changed = False
        for i in range(func["params"]):
            hot_of, _ = self._close(func, {i})
            for fact in func["facts"]:
                if hot_of(fact["from"]) is None:
                    continue
                kind = fact["kind"]
                if kind == "ret":
                    slots = self.prop.setdefault((key, i), set())
                    if "ret" not in slots:
                        slots.add("ret")
                        changed = True
                elif kind == "out":
                    slots = self.prop.setdefault((key, i), set())
                    slot = "out:%d" % fact["param"]
                    if slot not in slots:
                        slots.add(slot)
                        changed = True
                elif kind == "sink":
                    if (key, i) not in self.sink_reach:
                        chain = [
                            self._step(
                                key,
                                fact["line"],
                                "sink %s" % fact["sink"],
                            )
                        ]
                        self.sink_reach[(key, i)] = (
                            chain,
                            key,
                            fact["sink"],
                        )
                        changed = True
                elif kind == "arg":
                    callee = fact["callee"]
                    sub = self.sink_reach.get((callee, fact["index"]))
                    if sub is not None and (key, i) not in self.sink_reach:
                        chain = [
                            self._step(
                                key,
                                fact["line"],
                                "passes tainted value into %s (arg %d)"
                                % (self._display(callee), fact["index"]),
                            )
                        ] + list(sub[0])
                        self.sink_reach[(key, i)] = (chain, sub[1], sub[2])
                        changed = True
        return changed

    def _derive_root_context(self, key, func):
        changed = False
        hot_of, prov = self._close(func, set())
        for fact in func["facts"]:
            if fact["kind"] not in ("ret", "out"):
                continue
            via = hot_of(fact["from"])
            if via is None:
                continue
            slot = (
                "ret" if fact["kind"] == "ret" else "out:%d" % fact["param"]
            )
            if (key, slot) not in self.emits:
                chain = self._trace(func, via, prov)
                what = (
                    "returns tainted value"
                    if slot == "ret"
                    else "writes tainted value through parameter %d"
                    % fact["param"]
                )
                chain = chain + [self._step(key, fact["line"], what)]
                self.emits[(key, slot)] = chain
                changed = True
        return changed

    # -- findings ---------------------------------------------------------

    @staticmethod
    def _root_origin(origin, prov):
        """Follows Prop-closure provenance back to the base hot origin,
        so finding ids name the ultimate source, not the last hop."""
        seen = set()
        while origin in prov and origin not in seen:
            seen.add(origin)
            origin = prov[origin][0]
        return origin

    def findings(self):
        found = {}

        def add(root_key, origin, sink_key, sink_name, chain):
            fid = "|".join((root_key, origin, sink_key, sink_name))
            if fid not in found:
                found[fid] = {
                    "chain": chain,
                    "id": fid,
                    "root": root_key,
                    "sink": sink_name,
                    "sink_function": self._display(sink_key),
                    "source": origin,
                }

        for key, func in self.functions.items():
            if self.annotated.get(key) == SANITIZER:
                continue
            hot_of, prov = self._close(func, set())
            for fact in func["facts"]:
                via = hot_of(fact["from"])
                if via is None:
                    continue
                if fact["kind"] == "sink":
                    chain = self._trace(func, via, prov) + [
                        self._step(
                            key, fact["line"], "sink %s" % fact["sink"]
                        )
                    ]
                    add(
                        key,
                        self._root_origin(via, prov),
                        key,
                        fact["sink"],
                        chain,
                    )
                elif fact["kind"] == "arg":
                    sub = self.sink_reach.get(
                        (fact["callee"], fact["index"])
                    )
                    if sub is None:
                        continue
                    chain = (
                        self._trace(func, via, prov)
                        + [
                            self._step(
                                key,
                                fact["line"],
                                "passes tainted value into %s (arg %d)"
                                % (
                                    self._display(fact["callee"]),
                                    fact["index"],
                                ),
                            )
                        ]
                        + list(sub[0])
                    )
                    add(
                        key,
                        self._root_origin(via, prov),
                        sub[1],
                        sub[2],
                        chain,
                    )
        return [found[fid] for fid in sorted(found)]


# --------------------------------------------------------------------------
# Baseline and reporting
# --------------------------------------------------------------------------


def load_baseline(path):
    if not path or not os.path.exists(path):
        return {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        fail("cannot parse baseline %s: %s" % (path, exc))
    if data.get("schema") != SCHEMA:
        fail("baseline %s has schema %r" % (path, data.get("schema")))
    entries = {}
    for entry in data.get("findings", []):
        entries[entry["id"]] = entry.get("justification", "")
    return entries


def print_finding(finding, tag):
    print(
        "%s %s: decode-tainted value reaches sink `%s` in %s"
        % (tag, finding["root"], finding["sink"], finding["sink_function"])
    )
    for step in finding["chain"]:
        print(
            "    %s:%d: %s  [%s]"
            % (step["file"], step["line"], step["function"], step["note"])
        )


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Merge irhint-taint-summary sidecars, run the "
        "whole-program fixpoint, gate findings against a baseline."
    )
    parser.add_argument(
        "--summaries",
        required=True,
        help="directory of per-TU summary sidecars (phase 1 output)",
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "taint_baseline.json"
        ),
        help="findings baseline (default: taint_baseline.json next to "
        "this script); a missing file is an empty baseline",
    )
    parser.add_argument(
        "--merged-out",
        default="",
        help="write the merged summary DB (canonical JSON) here; "
        "check_contracts.py contract 8 reads it",
    )
    parser.add_argument(
        "--report-out",
        default="",
        help="write the full findings report (canonical JSON) here",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline with the current findings and exit 0",
    )
    parser.add_argument(
        "--verify-canonical",
        action="store_true",
        help="additionally fail unless every sidecar is byte-identical "
        "to its canonical re-serialization",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    sidecars = load_sidecars(args.summaries)
    if args.verify_canonical:
        bad = verify_canonical(sidecars)
        if bad:
            for path in bad:
                print(
                    "taint_link: non-canonical sidecar: %s" % path,
                    file=sys.stderr,
                )
            return 1

    functions, annotated, tus, warnings = merge_sidecars(sidecars)
    for warning in warnings:
        print("taint_link: warning: %s" % warning, file=sys.stderr)

    linker = Linker(functions, annotated)
    linker.solve()
    findings = linker.findings()

    if args.merged_out:
        merged = {
            "annotated": annotated,
            "functions": functions,
            "schema": SCHEMA,
            "tus": tus,
        }
        with open(args.merged_out, "w", encoding="utf-8") as fh:
            fh.write(canonical(merged))

    baseline = load_baseline(args.baseline)
    new = [f for f in findings if f["id"] not in baseline]
    baselined = [f for f in findings if f["id"] in baseline]
    stale = sorted(set(baseline) - {f["id"] for f in findings})

    if args.report_out:
        report = {
            "baseline_stale": stale,
            "findings": findings,
            "functions": len(functions),
            "new": [f["id"] for f in new],
            "schema": SCHEMA,
            "tus": tus,
        }
        with open(args.report_out, "w", encoding="utf-8") as fh:
            fh.write(canonical(report))

    if args.update_baseline:
        payload = {
            "findings": [
                {
                    "id": f["id"],
                    "justification": baseline.get(
                        f["id"], "TODO: justify or fix"
                    ),
                }
                for f in findings
            ],
            "schema": SCHEMA,
        }
        with open(args.baseline, "w", encoding="utf-8") as fh:
            fh.write(canonical(payload) + "\n")
        print(
            "taint_link: baseline updated with %d finding(s)" % len(findings)
        )
        return 0

    if not args.quiet:
        print(
            "taint_link: %d TU(s), %d function summaries, %d finding(s) "
            "(%d new, %d baselined)"
            % (len(tus), len(functions), len(findings), len(new), len(baselined))
        )
        for finding in baselined:
            print_finding(finding, "BASELINED")
            print(
                "    justification: %s"
                % (baseline[finding["id"]] or "(none given)")
            )
        for finding in new:
            print_finding(finding, "NEW")
    for fid in stale:
        print(
            "taint_link: warning: stale baseline entry (no longer found): %s"
            % fid,
            file=sys.stderr,
        )

    if new:
        print(
            "taint_link: FAIL: %d new unsanitized source->sink flow(s); "
            "fix the flow, add an IRHINT_SANITIZER bound-check, or (last "
            "resort) baseline it with --update-baseline and a justification."
            % len(new),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

// clang-tidy plugin module registering the irhint-* project checks.
//
// Built as an out-of-tree MODULE library (see CMakeLists.txt in this
// directory) and loaded with `clang-tidy -load libirhint_checks.so
// -checks=irhint-*`. The module links against no clang libraries: every
// clang/LLVM symbol stays undefined in the .so and resolves from the
// host clang-tidy binary at load time, which is the supported plugin
// mechanism (the binary exports its symbols for exactly this purpose).

#include "RawSyncCheck.h"
#include "StatusDisciplineCheck.h"
#include "TaintSummaryCheck.h"
#include "UntrustedDecodeCheck.h"
#include "ViewLifetimeCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace clang {
namespace tidy {
namespace irhint_checks {

class IrhintModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories& CheckFactories) override {
    CheckFactories.registerCheck<UntrustedDecodeCheck>(
        "irhint-untrusted-decode");
    CheckFactories.registerCheck<StatusDisciplineCheck>(
        "irhint-status-discipline");
    CheckFactories.registerCheck<ViewLifetimeCheck>("irhint-view-lifetime");
    CheckFactories.registerCheck<RawSyncCheck>("irhint-raw-sync");
    CheckFactories.registerCheck<TaintSummaryCheck>("irhint-taint-summary");
  }
};

}  // namespace irhint_checks

// Register the module with the host clang-tidy's global registry.
static ClangTidyModuleRegistry::Add<irhint_checks::IrhintModule> X(
    "irhint-module", "Adds the irhint project-specific checks.");

}  // namespace tidy
}  // namespace clang

// Anchor so the linker never discards the registration object.
volatile int IrhintModuleAnchorSource = 0;

// Taint-style check for decode boundaries: a value produced by an
// IRHINT_UNTRUSTED byte reader (snapshot SectionCursor, WAL record
// decoder, score-block loader — or any function named in the
// SourceFunctions option) must not reach an allocation size, a
// container index, pointer-offset arithmetic, or FlatArray::SetView
// until it has been validated.
//
// The analysis is intra-procedural and flow-insensitive, tuned to make
// the repo's idioms pass without annotations at the use sites:
//
//   taint seeds   `reader.ReadU64(&x)` out-params and results of calls
//                 to IRHINT_UNTRUSTED functions; pointer parameters of
//                 a function that is itself IRHINT_UNTRUSTED.
//   propagation   assignments / initializations whose right-hand side
//                 mentions a tainted variable, iterated to fixpoint.
//   blessing      the variable is mentioned in any comparison or
//                 branch condition (a bounds check), passed to an
//                 IRHINT_SANITIZER helper (common/checked_math.h), or
//                 mentioned inside an IRHINT_* macro expansion
//                 (IRHINT_RETURN_NOT_OK's internal check).
//   sinks         arguments of resize/reserve/SetView member calls,
//                 memcpy/memmove/memset length operands, subscript
//                 indices, and the integer operand of pointer + / -.
//
// Flow-insensitivity trades soundness for a near-zero false-positive
// rate: a check *anywhere* in the function blesses the value. That is
// exactly the contract the repo wants enforced — "no decode value may
// reach a sink in a function that never validates it" — and it is what
// makes deleting a PR 4-era guard light this check up again (see the
// bug_*.cc fixtures under test/).

#ifndef IRHINT_TOOLS_IRHINT_CHECKS_UNTRUSTEDDECODECHECK_H_
#define IRHINT_TOOLS_IRHINT_CHECKS_UNTRUSTEDDECODECHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace irhint_checks {

class UntrustedDecodeCheck : public ClangTidyCheck {
 public:
  UntrustedDecodeCheck(StringRef Name, ClangTidyContext* Context);
  bool isLanguageVersionSupported(const LangOptions& LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;
  void storeOptions(ClangTidyOptions::OptionMap& Opts) override;

 private:
  // Semicolon-separated unqualified names treated like annotated
  // sources / sanitizers in addition to the attribute-marked ones.
  const std::string SourceFunctions;
  const std::string SanitizerFunctions;
};

}  // namespace irhint_checks
}  // namespace tidy
}  // namespace clang

#endif  // IRHINT_TOOLS_IRHINT_CHECKS_UNTRUSTEDDECODECHECK_H_

// Guards the FlatArray zero-copy contract: a record that stores
// FlatArray members may be holding *views* into an mmapped snapshot
// (SectionCursor::ReadFlatArray sets views in zero-copy mode), so the
// record must either hold a shared_ptr keepalive itself (directly or in
// a base, like TemporalIrIndex::storage_keepalive_) or be annotated
// IRHINT_KEEPALIVE_EXTERNAL to document that a named owner outlives it.
// A record with neither can outlive its MappedFile and read unmapped
// memory.

#ifndef IRHINT_TOOLS_IRHINT_CHECKS_VIEWLIFETIMECHECK_H_
#define IRHINT_TOOLS_IRHINT_CHECKS_VIEWLIFETIMECHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace irhint_checks {

class ViewLifetimeCheck : public ClangTidyCheck {
 public:
  ViewLifetimeCheck(StringRef Name, ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions& LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;
};

}  // namespace irhint_checks
}  // namespace tidy
}  // namespace clang

#endif  // IRHINT_TOOLS_IRHINT_CHECKS_VIEWLIFETIMECHECK_H_

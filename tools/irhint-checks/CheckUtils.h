// Small shared helpers for the irhint-* checks: attribute-annotation
// lookup and raw source-line inspection (for comment-based waivers).

#ifndef IRHINT_TOOLS_IRHINT_CHECKS_CHECKUTILS_H_
#define IRHINT_TOOLS_IRHINT_CHECKS_CHECKUTILS_H_

#include <string>

#include "clang/AST/Attr.h"
#include "clang/AST/Decl.h"
#include "clang/Basic/SourceManager.h"

namespace clang {
namespace tidy {
namespace irhint_checks {

// True when `D` carries [[clang::annotate(Tag)]] (the IRHINT_ANNOTATE
// macros in src/common/contracts.h expand to exactly this).
inline bool HasAnnotation(const Decl* D, StringRef Tag) {
  if (D == nullptr) return false;
  for (const auto* A : D->specific_attrs<AnnotateAttr>()) {
    if (A->getAnnotation() == Tag) return true;
  }
  return false;
}

// Raw text of the line containing `Loc` (spelling location).
inline StringRef SourceLineOf(const SourceManager& SM, SourceLocation Loc) {
  Loc = SM.getSpellingLoc(Loc);
  if (Loc.isInvalid()) return StringRef();
  bool Invalid = false;
  StringRef Buf = SM.getBufferData(SM.getFileID(Loc), &Invalid);
  if (Invalid) return StringRef();
  size_t Offset = SM.getFileOffset(Loc);
  if (Offset > Buf.size()) return StringRef();
  size_t Begin = Offset;
  while (Begin > 0 && Buf[Begin - 1] != '\n') --Begin;
  size_t End = Offset;
  while (End < Buf.size() && Buf[End] != '\n') ++End;
  return Buf.slice(Begin, End);
}

inline bool LineContains(const SourceManager& SM, SourceLocation Loc,
                         StringRef Needle) {
  return SourceLineOf(SM, Loc).contains(Needle);
}

// True when `Loc` is inside a file whose path contains `PathFragment`.
inline bool InExemptSyncFile(const SourceManager& SM, SourceLocation Loc,
                             StringRef PathFragment) {
  const std::string File = SM.getFilename(SM.getSpellingLoc(Loc)).str();
  return StringRef(File).contains(PathFragment);
}

}  // namespace irhint_checks
}  // namespace tidy
}  // namespace clang

#endif  // IRHINT_TOOLS_IRHINT_CHECKS_CHECKUTILS_H_

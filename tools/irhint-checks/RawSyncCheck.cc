#include "RawSyncCheck.h"

#include "CheckUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace irhint_checks {

namespace {

// Canonical-type spellings of the banned std primitives. Matching on
// the *canonical* type string defeats typedefs and alias templates.
const char* const kBannedTypes[] = {
    "std::mutex",          "std::timed_mutex",
    "std::recursive_mutex", "std::recursive_timed_mutex",
    "std::shared_mutex",   "std::shared_timed_mutex",
    "std::condition_variable", "std::condition_variable_any",
    "std::lock_guard<",    "std::unique_lock<",
    "std::scoped_lock<",   "std::shared_lock<",
};

const char* BannedTypeIn(const std::string& Canonical) {
  for (const char* Banned : kBannedTypes) {
    if (Canonical.find(Banned) != std::string::npos) return Banned;
  }
  return nullptr;
}

}  // namespace

void RawSyncCheck::registerMatchers(MatchFinder* Finder) {
  Finder->addMatcher(
      valueDecl(anyOf(varDecl(), fieldDecl()),
                unless(isExpansionInSystemHeader()))
          .bind("decl"),
      this);
  Finder->addMatcher(
      typedefNameDecl(unless(isExpansionInSystemHeader())).bind("alias"),
      this);
}

void RawSyncCheck::check(const MatchFinder::MatchResult& Result) {
  const SourceManager& SM = *Result.SourceManager;
  QualType Type;
  SourceLocation Loc;
  if (const auto* D = Result.Nodes.getNodeAs<ValueDecl>("decl")) {
    Type = D->getType();
    Loc = D->getLocation();
  } else if (const auto* A =
                 Result.Nodes.getNodeAs<TypedefNameDecl>("alias")) {
    Type = A->getUnderlyingType();
    Loc = A->getLocation();
  } else {
    return;
  }
  if (Loc.isInvalid() || Type.isNull()) return;
  const std::string Canonical =
      Type.getCanonicalType().getAsString(Result.Context->getPrintingPolicy());
  const char* Banned = BannedTypeIn(Canonical);
  if (Banned == nullptr) return;
  // The wrapper implementation itself is the one legitimate user; a
  // trailing `// SYNC_EXEMPT` comment grants a reviewed local waiver,
  // mirroring the regex contract in tools/lint/check_contracts.py.
  if (InExemptSyncFile(SM, Loc, "common/synchronization")) return;
  if (LineContains(SM, Loc, "SYNC_EXEMPT")) return;
  diag(Loc,
       "raw '%0' is banned outside common/synchronization.h; use the "
       "repo Mutex/CondVar/lock wrappers (or annotate the line with "
       "SYNC_EXEMPT and justify it)")
      << StringRef(Banned).rtrim('<');
}

}  // namespace irhint_checks
}  // namespace tidy
}  // namespace clang

// Phase 1 of the whole-program decode-taint analysis (DESIGN.md §13):
// a summary-emission "check" that never diagnoses anything. For every
// function definition in the TU it computes a signature-level taint
// summary — which outputs carry decode-derived bytes, how parameters
// flow to outputs and into callee arguments, which parameters reach a
// resize/subscript/memcpy/pointer-arithmetic sink unvalidated — and
// writes one canonical JSON sidecar per TU into SummaryDir. Phase 2
// (tools/irhint-checks/taint_link.py) merges the sidecars, builds the
// call graph, and runs a worklist fixpoint that reports cross-TU
// source→sink paths the intra-procedural irhint-untrusted-decode check
// cannot see.
//
// The intra-procedural machinery mirrors UntrustedDecodeCheck (same
// seeds, same mention-based propagation, same blessing rules), with two
// deliberate differences:
//
//   origins   instead of a boolean "tainted" bit, every variable carries
//             a set of origins — param:<i>, call_ret:<callee>,
//             call_out:<callee>:<arg> — so the linker can re-root each
//             local flow in whichever caller/callee context makes it hot.
//   calls     a call with a resolvable callee is an opaque boundary:
//             mentioning `n` inside `Widen(n)` does NOT taint the
//             enclosing expression with n's origins. The argument flow
//             is emitted as an `arg` fact instead, and the call result
//             only becomes hot at link time if the callee's summary says
//             taint enters it or escapes through its return. This is
//             what lets a bound-checking helper in another TU make a
//             flow go quiet (its summary propagates nothing).
//
// With the SummaryDir option unset (the default, e.g. when the check is
// swept up by `--checks=irhint-*`) the check is a complete no-op.
//
// Sidecar schema and canonical serialization rules (alphabetical keys,
// compact separators, sorted dedup'd facts — byte-identical to python's
// json.dumps(obj, sort_keys=True, separators=(",", ":"))) are
// documented in taint_link.py, which owns the schema version.

#ifndef IRHINT_TOOLS_IRHINT_CHECKS_TAINTSUMMARYCHECK_H_
#define IRHINT_TOOLS_IRHINT_CHECKS_TAINTSUMMARYCHECK_H_

#include <map>
#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace irhint_checks {

class TaintSummaryCheck : public ClangTidyCheck {
 public:
  TaintSummaryCheck(StringRef Name, ClangTidyContext* Context);
  bool isLanguageVersionSupported(const LangOptions& LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;
  void onEndOfTranslationUnit() override;
  void storeOptions(ClangTidyOptions::OptionMap& Opts) override;

 private:
  struct FunctionSummary {
    std::string Key;
    std::string Display;
    std::string File;
    unsigned Line = 0;
    unsigned EndLine = 0;
    int Params = 0;
    std::string Annotated;  // "untrusted", "sanitizer", or ""
    std::vector<int> Sanitizes;
    // Facts pre-serialized in canonical JSON (sorted + dedup'd at emit).
    std::vector<std::string> FactJson;
  };

  void AnalyzeFunction(const FunctionDecl* Func,
                       const ast_matchers::MatchFinder::MatchResult& Result);

  // Directory to write sidecars into; empty disables the check entirely.
  const std::string SummaryDir;
  // Same option semantics as irhint-untrusted-decode.
  const std::string SourceFunctions;
  const std::string SanitizerFunctions;

  std::string MainFile;
  std::vector<FunctionSummary> Summaries;
  // Annotations observed on callee *declarations* (the definition may
  // live outside the compile database); merged by the linker.
  std::map<std::string, std::string> KnownAnnotated;
};

}  // namespace irhint_checks
}  // namespace tidy
}  // namespace clang

#endif  // IRHINT_TOOLS_IRHINT_CHECKS_TAINTSUMMARYCHECK_H_

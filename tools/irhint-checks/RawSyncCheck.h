// AST port of the raw-synchronization ban (repo contract 5): outside
// common/synchronization.{h,cc}, code must use the repo's Mutex /
// CondVar / lock wrappers, never std primitives directly. The AST
// version matches canonical types, so `using M = std::mutex; M m;`
// is caught where the line-regex contract is blind.

#ifndef IRHINT_TOOLS_IRHINT_CHECKS_RAWSYNCCHECK_H_
#define IRHINT_TOOLS_IRHINT_CHECKS_RAWSYNCCHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace irhint_checks {

class RawSyncCheck : public ClangTidyCheck {
 public:
  RawSyncCheck(StringRef Name, ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions& LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;
};

}  // namespace irhint_checks
}  // namespace tidy
}  // namespace clang

#endif  // IRHINT_TOOLS_IRHINT_CHECKS_RAWSYNCCHECK_H_

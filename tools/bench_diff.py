#!/usr/bin/env python3
"""Compare two bench-harness JSON reports and fail on perf regressions.

Usage:
    bench_diff.py BASELINE.json CURRENT.json [options]

For every metric present in both reports the p50 and p99 are compared,
with the direction taken from the metric's higher_is_better flag. The p99
is only compared when both runs have at least --min-tail-trials samples:
with a handful of trials the p99 is just the max, and a single scheduler
or fsync hiccup would flip the gate. A metric regresses when it is worse
than the baseline by more than the allowance:

    allowance = max(threshold, min(noise_mult * cv, max_allowance))

where cv is the larger coefficient of variation (stddev / mean) of the two
runs — a metric that is noisy in either run gets a wider band, capped at
--max-allowance so pure noise can never excuse an arbitrarily large slide.
I/O-bound families drift far more than compute-bound ones between runs on
shared machines; --family-threshold FAMILY=X raises the base threshold for
just that family (e.g. --family-threshold ingest=0.5).

Exit codes: 0 = no regression, 1 = regression found, 2 = usage/input error.

The perf-gate CI job runs this against the committed baseline at the repo
root (BENCH_core.json); refresh the baseline by re-running the suite with
the same flags and committing the new file (see README, "Perf trajectory").
"""

import argparse
import fnmatch
import json
import sys


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"bench_diff: cannot read {path}: {exc}")
    version = doc.get("schema_version")
    if version != 1:
        raise SystemExit(
            f"bench_diff: {path}: unsupported schema_version {version!r}"
        )
    for key in ("suite", "environment", "metrics"):
        if key not in doc:
            raise SystemExit(f"bench_diff: {path}: missing field {key!r}")
    return doc


def metric_key(metric):
    return metric["name"]


def noise_cv(metric):
    """Estimated run-to-run noise of the gated statistic, as a fraction.

    Few-trial metrics (MeasureTrials): each sample is an independent full
    run, so the sample cv IS the run-to-run noise. Many-sample metrics
    (per-query latencies): the samples form one heavy-tailed distribution
    and the gated statistic is its median, whose sampling error shrinks as
    stddev/sqrt(n) — using the raw cv there would widen the band to the
    distribution's dispersion and let real median shifts through.
    """
    mean = metric.get("mean", 0.0)
    trials = metric.get("trials", 0)
    if not mean or trials < 2:
        return 0.0
    cv = abs(metric.get("stddev", 0.0) / mean)
    if trials >= 30:
        cv /= trials ** 0.5
    return cv


def compare_metric(base, cur, args, threshold):
    """Returns a list of (stat, base_value, cur_value, change, allowance)
    regressions for one metric."""
    regressions = []
    higher_is_better = bool(base.get("higher_is_better", False))
    cv = max(noise_cv(base), noise_cv(cur))
    allowance = max(threshold,
                    min(args.noise_mult * cv, args.max_allowance))
    tail_ok = (base.get("trials", 0) >= args.min_tail_trials
               and cur.get("trials", 0) >= args.min_tail_trials)
    for stat in ("p50", "p99"):
        if stat == "p99" and not tail_ok:
            continue  # too few samples for the tail to mean anything
        base_value = base.get(stat)
        cur_value = cur.get(stat)
        if base_value is None or cur_value is None:
            continue
        if base_value == 0:
            continue  # nothing meaningful to compare against
        if higher_is_better:
            change = (base_value - cur_value) / abs(base_value)
        else:
            change = (cur_value - base_value) / abs(base_value)
        if change > allowance:
            regressions.append((stat, base_value, cur_value, change,
                                allowance))
    return regressions


def environments_comparable(base_env, cur_env):
    """Same machine class: cpu_model and hardware_threads must agree for a
    latency comparison to mean anything."""
    mismatches = []
    for key in ("cpu_model", "hardware_threads"):
        if base_env.get(key) != cur_env.get(key):
            mismatches.append(
                f"{key}: baseline={base_env.get(key)!r} "
                f"current={cur_env.get(key)!r}"
            )
    return mismatches


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("baseline", help="baseline JSON report")
    parser.add_argument("current", help="current JSON report")
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="minimum relative slowdown that counts as a regression "
             "(default 0.25 = 25%%)")
    parser.add_argument(
        "--family-threshold", action="append", default=[],
        metavar="FAMILY=X",
        help="override the base threshold for one family (repeatable), "
             "e.g. --family-threshold ingest=0.5 for I/O-bound families "
             "that drift more between runs")
    parser.add_argument(
        "--min-tail-trials", type=int, default=5,
        help="compare p99 only when both runs have at least this many "
             "trials (default 5; below that the p99 is just the max)")
    parser.add_argument(
        "--noise-mult", type=float, default=3.0,
        help="widen the band to this multiple of the runs' coefficient of "
             "variation (default 3)")
    parser.add_argument(
        "--max-allowance", type=float, default=0.60,
        help="cap on the noise-widened band (default 0.60)")
    parser.add_argument(
        "--families", default="",
        help="comma-separated families to compare (default: all)")
    parser.add_argument(
        "--exclude", action="append", default=[], metavar="GLOB",
        help="skip metrics whose name matches this glob (repeatable); for "
             "tail metrics recorded as single-trial values (trials=1, so "
             "the noise-widened band cannot apply) whose measured "
             "run-to-run spread exceeds any sane threshold, e.g. "
             "--exclude 'serve_p999_us/*'")
    parser.add_argument(
        "--skip-on-env-mismatch", action="store_true",
        help="exit 0 with a warning when the two reports were produced on "
             "different machines (cpu_model / hardware_threads differ)")
    parser.add_argument(
        "--allow-missing", action="store_true",
        help="ignore metrics present in only one report (default: baseline "
             "metrics missing from the current report are an error)")
    args = parser.parse_args()

    family_thresholds = {}
    for spec in args.family_threshold:
        family, sep, value = spec.partition("=")
        try:
            if not sep or not family:
                raise ValueError(spec)
            family_thresholds[family] = float(value)
        except ValueError:
            print(f"bench_diff: bad --family-threshold {spec!r} "
                  f"(expected FAMILY=FLOAT)", file=sys.stderr)
            return 2

    base = load_report(args.baseline)
    cur = load_report(args.current)

    if base["suite"] != cur["suite"]:
        print(f"bench_diff: suite mismatch: baseline {base['suite']!r} vs "
              f"current {cur['suite']!r}", file=sys.stderr)
        return 2

    mismatches = environments_comparable(base["environment"],
                                         cur["environment"])
    if mismatches:
        for m in mismatches:
            print(f"bench_diff: environment mismatch — {m}", file=sys.stderr)
        if args.skip_on_env_mismatch:
            print("bench_diff: --skip-on-env-mismatch set; comparison "
                  "skipped (not a pass)", file=sys.stderr)
            return 0
        print("bench_diff: refusing cross-machine comparison "
              "(use --skip-on-env-mismatch to tolerate)", file=sys.stderr)
        return 2

    families = {f for f in args.families.split(",") if f}
    base_metrics = {metric_key(m): m for m in base["metrics"]
                    if not families or m.get("family") in families}
    cur_metrics = {metric_key(m): m for m in cur["metrics"]
                   if not families or m.get("family") in families}

    missing = sorted(set(base_metrics) - set(cur_metrics))
    if missing and not args.allow_missing:
        for name in missing:
            print(f"bench_diff: metric missing from current report: {name}",
                  file=sys.stderr)
        return 2

    # Candidate-only metrics are a newly landed family, not a regression:
    # the committed baseline simply predates them. Report them so the log
    # shows they were seen, but never gate on them — the next baseline
    # refresh starts tracking them.
    additions = sorted(set(cur_metrics) - set(base_metrics))
    if additions:
        print(f"bench_diff: {len(additions)} metric(s) only in current "
              f"report — additions (not gated):")
        for name in additions:
            print(f"  {name}")

    regressed = []
    improved = []
    compared = 0
    excluded = sorted(
        name for name in set(base_metrics) & set(cur_metrics)
        if any(fnmatch.fnmatch(name, g) for g in args.exclude))
    if excluded:
        print(f"bench_diff: {len(excluded)} metric(s) excluded by "
              f"--exclude (not gated):")
        for name in excluded:
            print(f"  {name}")
    for name in sorted(set(base_metrics) & set(cur_metrics)):
        if name in excluded:
            continue
        b, c = base_metrics[name], cur_metrics[name]
        compared += 1
        threshold = family_thresholds.get(b.get("family"), args.threshold)
        found = compare_metric(b, c, args, threshold)
        for stat, bv, cv_, change, allowance in found:
            regressed.append(
                f"  {name} [{stat}]: {bv:.6g} -> {cv_:.6g} "
                f"({change:+.1%}, allowed {allowance:.0%})")
        if not found and b.get("p50") and c.get("p50"):
            # Informational: big wins are worth a line in the log.
            if b["higher_is_better"]:
                gain = (c["p50"] - b["p50"]) / abs(b["p50"])
            else:
                gain = (b["p50"] - c["p50"]) / abs(b["p50"])
            if gain > threshold:
                improved.append(f"  {name} [p50]: {gain:+.1%}")

    print(f"bench_diff: compared {compared} metrics "
          f"({len(regressed)} regression(s), {len(improved)} improvement(s))")
    if improved:
        print("improvements:")
        for line in improved:
            print(line)
    if regressed:
        print("regressions:", file=sys.stderr)
        for line in regressed:
            print(line, file=sys.stderr)
        print(f"\nbench_diff: FAIL — {len(regressed)} metric stat(s) "
              f"regressed beyond the allowance", file=sys.stderr)
        return 1
    print("bench_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// make_golden_snapshot — regenerate the committed snapshot fixtures under
// tests/golden/. Run from the repo root after a deliberate format-version
// bump (the old fixtures then move aside to keep pinning older versions):
//
//   build/tools/make_golden_snapshot tests/golden
//
// The corpus is deterministic (fixed seed), so the fixture stays tiny and
// reproducible; the compat test rebuilds a reference index from the golden
// corpus and differentially checks the golden index snapshot against it.

#include <cstdio>
#include <string>

#include "core/factory.h"
#include "data/serialize.h"
#include "data/synthetic.h"
#include "storage/index_io.h"

using namespace irhint;

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_golden_snapshot DIR\n");
    return 2;
  }
  const std::string dir = argv[1];

  SyntheticParams params;
  params.cardinality = 300;
  params.domain = 20000;
  params.sigma = 2000;
  params.dictionary_size = 40;
  params.description_size = 4;
  params.seed = 7;
  const Corpus corpus = GenerateSynthetic(params);

  const std::string corpus_path = dir + "/corpus_v1.snap";
  if (Status st = SaveCorpus(corpus, corpus_path); !st.ok()) {
    std::fprintf(stderr, "%s: %s\n", corpus_path.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", corpus_path.c_str());

  for (const auto& [kind, name] :
       {std::pair{IndexKind::kIrHintPerf, "irhint_perf_v1.irh"},
        std::pair{IndexKind::kTif, "tif_v1.irh"}}) {
    std::unique_ptr<TemporalIrIndex> index = CreateIndex(kind);
    if (Status st = index->Build(corpus); !st.ok()) {
      std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
      return 1;
    }
    const std::string path = dir + "/" + name;
    if (Status st = SaveIndex(*index, path); !st.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

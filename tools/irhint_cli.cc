// irhint_cli — command-line driver for the library.
//
// Subcommands:
//   generate   synthesize a corpus and write it to disk
//       --out FILE [--kind synthetic|eclog|wikipedia] [--scale S]
//       [--cardinality N] [--domain T] [--alpha A] [--sigma S]
//       [--dictionary D] [--dsize K] [--zeta Z] [--seed S]
//   stats      print Table 3-style statistics of a corpus file
//       --in FILE
//   build      build one index over a corpus and save it as a snapshot
//       --in FILE --save FILE [--index NAME]
//   bench      build one index over a corpus and measure throughput
//       --in FILE [--index NAME] [--queries N] [--extent PCT] [--k K]
//       [--threads N] (0/1 = serial; defaults to IRHINT_THREADS)
//       [--stats 1]   (collect and print per-index work counters)
//       [--load FILE] (load a snapshot instead of building; reports the
//                      cold-start load time) [--mmap 0|1] (default 1)
//       [--verify 1]  (with --load: also rebuild from the corpus and check
//                      that both indexes answer the workload identically)
//   query      evaluate one time-travel IR query
//       --in FILE --st T --end T --elements e1,e2,... [--index NAME]
//   topk       evaluate one ranked top-k query (disjunctive, impact-scored;
//              needs a scored-* index, default scored-irhint)
//       --in FILE --st T --end T --elements e1,e2,... [--k K] [--index NAME]
//       [--oracle 1] (also run the exhaustive scorer and cross-check)
//   ingest     durably ingest a corpus into a WAL-backed live index; the
//              directory is recovered first, so re-running after a crash
//              (or on a half-ingested directory) resumes where it stopped
//       --in FILE --wal-dir DIR [--index NAME]
//       [--durability none|batch|always] (default batch)
//       [--checkpoint-bytes N] (default 64 MiB; 0 = never checkpoint)
//       [--batch-bytes N]      (group-commit threshold, default 256 KiB)
//       [--count N] [--start N] (object range to ingest; default: all)
//       [--verify 1]  (answer a workload on the ingested index and on a
//                      NaiveScan over the same objects, compare)
//   serve      run the sharded serving engine over stdin/stdout (the same
//              loop as the irhint_server binary; see src/serve/server_loop.h)
//       --in FILE [--shards N] [--buckets N] [--index NAME]
//       [--queue-depth N] [--max-batch N]
//       [--wal-dir DIR] [--durability none|batch|always]
//       [--checkpoint-bytes N]
//
// Index names: tif, slicing, sharding, hint-bs, hint-ms, hybrid,
// irhint-perf (default), irhint-size, scored-tif, scored-irhint.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.h"
#include "core/durable_index.h"
#include "core/factory.h"
#include "core/integrity.h"
#include "data/query_gen.h"
#include "data/real_sim.h"
#include "data/serialize.h"
#include "data/synthetic.h"
#include "eval/runner.h"
#include "rank/scored_index.h"
#include "serve/server_loop.h"
#include "storage/index_io.h"

using namespace irhint;

namespace {

struct Args {
  std::string command;
  FlatHashMap<std::string, std::string> options;

  const char* Get(const std::string& key, const char* fallback) const {
    const std::string* value = options.find(key);
    return value != nullptr ? value->c_str() : fallback;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const std::string* value = options.find(key);
    return value != nullptr ? std::atof(value->c_str()) : fallback;
  }
  uint64_t GetU64(const std::string& key, uint64_t fallback) const {
    const std::string* value = options.find(key);
    return value != nullptr
               ? static_cast<uint64_t>(std::atoll(value->c_str()))
               : fallback;
  }
  bool Has(const std::string& key) const {
    return options.find(key) != nullptr;
  }
};

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return false;
    args->options.insert_or_assign(argv[i] + 2, argv[i + 1]);
  }
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: irhint_cli "
               "<generate|stats|build|bench|query|topk|ingest|serve> "
               "[--opt value]\n"
               "see the header of tools/irhint_cli.cc for details\n");
  return 2;
}

IndexKind KindFromName(const std::string& name) {
  if (name == "tif") return IndexKind::kTif;
  if (name == "slicing") return IndexKind::kTifSlicing;
  if (name == "sharding") return IndexKind::kTifSharding;
  if (name == "hint-bs") return IndexKind::kTifHintBinarySearch;
  if (name == "hint-ms") return IndexKind::kTifHintMergeSort;
  if (name == "hybrid") return IndexKind::kTifHintSlicing;
  if (name == "irhint-size") return IndexKind::kIrHintSize;
  if (name == "scored-tif") return IndexKind::kScoredTif;
  if (name == "scored-irhint") return IndexKind::kScoredIrHint;
  return IndexKind::kIrHintPerf;
}

int Generate(const Args& args) {
  if (!args.Has("out")) return Usage();
  const std::string kind = args.Get("kind", "synthetic");
  Corpus corpus;
  if (kind == "eclog") {
    corpus = MakeEclogLike(args.GetDouble("scale", 0.05),
                           args.GetU64("seed", 7));
  } else if (kind == "wikipedia") {
    corpus = MakeWikipediaLike(args.GetDouble("scale", 0.005),
                               args.GetU64("seed", 11));
  } else {
    SyntheticParams params;
    params.cardinality = args.GetU64("cardinality", 100000);
    params.domain = args.GetU64("domain", 16'000'000);
    params.alpha = args.GetDouble("alpha", 1.2);
    params.sigma = args.GetU64("sigma", 1'000'000);
    params.dictionary_size = args.GetU64("dictionary", 10'000);
    params.description_size =
        static_cast<uint32_t>(args.GetU64("dsize", 10));
    params.zeta = args.GetDouble("zeta", 1.5);
    params.seed = args.GetU64("seed", 42);
    corpus = GenerateSynthetic(params);
  }
  const Status st = SaveCorpus(corpus, args.Get("out", ""));
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu objects to %s\n", corpus.size(),
              args.Get("out", ""));
  return 0;
}

StatusOr<Corpus> LoadFromArgs(const Args& args) {
  if (!args.Has("in")) return Status::InvalidArgument("--in required");
  return LoadCorpus(args.Get("in", ""));
}

int Stats(const Args& args) {
  StatusOr<Corpus> corpus = LoadFromArgs(args);
  if (!corpus.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", corpus->Stats().ToString().c_str());
  return 0;
}

int Build(const Args& args) {
  if (!args.Has("save")) return Usage();
  StatusOr<Corpus> corpus = LoadFromArgs(args);
  if (!corpus.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<TemporalIrIndex> index =
      CreateIndex(KindFromName(args.Get("index", "irhint-perf")));
  const BuildStats build = MeasureBuild(index.get(), *corpus);
  if (build.seconds < 0) {
    std::fprintf(stderr, "build failed\n");
    return 1;
  }
  std::printf("built %s in %.2fs (%.1f MB)\n",
              std::string(index->Name()).c_str(), build.seconds,
              static_cast<double>(build.bytes) / 1048576.0);
  Timer timer;
  const Status st = SaveIndex(*index, args.Get("save", ""));
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("saved snapshot to %s in %.2fs\n", args.Get("save", ""),
              timer.Seconds());
  return 0;
}

int Bench(const Args& args) {
  StatusOr<Corpus> corpus = LoadFromArgs(args);
  if (!corpus.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<TemporalIrIndex> index;
  if (args.Has("load")) {
    SnapshotReadOptions options;
    options.use_mmap = args.GetU64("mmap", 1) != 0;
    Timer timer;
    StatusOr<LoadedIndex> loaded =
        LoadIndexSnapshot(args.Get("load", ""), options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "snapshot load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    const double seconds = timer.Seconds();
    index = std::move(loaded->index);
    std::printf("loaded %s from %s in %.4fs (cold start, %s; %.1f MB heap)\n",
                std::string(index->Name()).c_str(), args.Get("load", ""),
                seconds, options.use_mmap ? "mmap" : "buffered",
                static_cast<double>(index->MemoryUsageBytes()) / 1048576.0);
  } else {
    index = CreateIndex(KindFromName(args.Get("index", "irhint-perf")));
    const BuildStats build = MeasureBuild(index.get(), *corpus);
    if (build.seconds < 0) {
      std::fprintf(stderr, "build failed\n");
      return 1;
    }
    std::printf("built %s in %.2fs (%.1f MB)\n",
                std::string(index->Name()).c_str(), build.seconds,
                static_cast<double>(build.bytes) / 1048576.0);
  }
  WorkloadGenerator generator(*corpus, args.GetU64("seed", 1));
  const std::vector<Query> queries = generator.ExtentWorkload(
      args.GetDouble("extent", 0.1),
      static_cast<uint32_t>(args.GetU64("k", 3)),
      args.GetU64("queries", 1000));

  if (args.Has("load") && args.GetU64("verify", 0) != 0) {
    // Same deep pass as irhint_fsck: structural invariants first, then the
    // behavioural cross-check against a fresh build.
    if (Status st = index->IntegrityCheck(CheckLevel::kDeep); !st.ok()) {
      std::fprintf(stderr, "verify FAILED: integrity check: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::unique_ptr<TemporalIrIndex> fresh = CreateIndex(index->Kind());
    if (Status st = fresh->Build(*corpus); !st.ok()) {
      std::fprintf(stderr, "verify build failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::vector<ObjectId> got, want;
    for (size_t i = 0; i < queries.size(); ++i) {
      index->Query(queries[i], &got);
      fresh->Query(queries[i], &want);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      if (got != want) {
        std::fprintf(stderr,
                     "verify FAILED: query %zu differs (%zu vs %zu results)\n",
                     i, got.size(), want.size());
        return 1;
      }
    }
    std::printf("verify: %zu queries answered identically by the loaded "
                "and rebuilt index\n",
                queries.size());
  }

  const bool collect_stats = args.GetU64("stats", 0) != 0;
  if (collect_stats) index->EnableStats(true);

  // A negative --threads would wrap to a huge size_t; treat it as serial.
  const long long threads_flag = static_cast<long long>(
      args.GetU64("threads", BenchThreadsFromEnv(1)));
  const size_t threads =
      threads_flag > 0 ? static_cast<size_t>(threads_flag) : 1;
  if (threads > 1) {
    const QueryStats stats = ParallelMeasureQueries(*index, queries, threads);
    std::printf(
        "%zu queries x %zu threads: %.0f queries/s (%llu results, "
        "p50 %.1f us, p99 %.1f us)\n",
        queries.size(), stats.num_threads, stats.queries_per_second,
        static_cast<unsigned long long>(stats.total_results),
        stats.latency_p50_us, stats.latency_p99_us);
  } else {
    const QueryStats stats = MeasureQueries(*index, queries);
    std::printf("%zu queries: %.0f queries/s (%llu results)\n",
                queries.size(), stats.queries_per_second,
                static_cast<unsigned long long>(stats.total_results));
  }

  if (collect_stats) {
    if (const std::optional<QueryCounters> counters = index->Stats()) {
      std::printf("work counters:\n");
      std::printf("  divisions_visited        %llu\n",
                  static_cast<unsigned long long>(counters->divisions_visited));
      std::printf("  postings_scanned         %llu\n",
                  static_cast<unsigned long long>(counters->postings_scanned));
      std::printf(
          "  intersections_performed  %llu\n",
          static_cast<unsigned long long>(counters->intersections_performed));
      std::printf(
          "  candidates_verified      %llu\n",
          static_cast<unsigned long long>(counters->candidates_verified));
      std::printf("  postings_scored          %llu\n",
                  static_cast<unsigned long long>(counters->postings_scored));
      std::printf("  blocks_skipped           %llu\n",
                  static_cast<unsigned long long>(counters->blocks_skipped));
      std::printf(
          "  divisions_skipped        %llu\n",
          static_cast<unsigned long long>(counters->divisions_skipped));
    } else {
      std::printf("work counters: not supported by %s\n",
                  std::string(index->Name()).c_str());
    }
  }
  return 0;
}

int RunQuery(const Args& args) {
  StatusOr<Corpus> corpus = LoadFromArgs(args);
  if (!corpus.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }
  if (!args.Has("st") || !args.Has("end") || !args.Has("elements")) {
    return Usage();
  }
  std::vector<ElementId> elements;
  const char* spec = args.Get("elements", "");
  while (*spec != '\0') {
    char* next = nullptr;
    elements.push_back(
        static_cast<ElementId>(std::strtoull(spec, &next, 10)));
    spec = (*next == ',') ? next + 1 : next;
  }
  std::unique_ptr<TemporalIrIndex> index =
      CreateIndex(KindFromName(args.Get("index", "irhint-perf")));
  if (Status st = index->Build(*corpus); !st.ok()) {
    std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  Query query(Interval(args.GetU64("st", 0), args.GetU64("end", 0)),
              std::move(elements));
  std::vector<ObjectId> results;
  Timer timer;
  index->Query(query, &results);
  const double micros = timer.Seconds() * 1e6;
  std::printf("%zu results in %.1f us:", results.size(), micros);
  const size_t shown = std::min<size_t>(results.size(), 20);
  for (size_t i = 0; i < shown; ++i) std::printf(" %u", results[i]);
  if (results.size() > shown) std::printf(" ...");
  std::printf("\n");
  return 0;
}

int TopK(const Args& args) {
  StatusOr<Corpus> corpus = LoadFromArgs(args);
  if (!corpus.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }
  if (!args.Has("st") || !args.Has("end") || !args.Has("elements")) {
    return Usage();
  }
  std::vector<ElementId> elements;
  const char* spec = args.Get("elements", "");
  while (*spec != '\0') {
    char* next = nullptr;
    elements.push_back(
        static_cast<ElementId>(std::strtoull(spec, &next, 10)));
    spec = (*next == ',') ? next + 1 : next;
  }
  std::unique_ptr<TemporalIrIndex> index =
      CreateIndex(KindFromName(args.Get("index", "scored-irhint")));
  if (Status st = index->Build(*corpus); !st.ok()) {
    std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  Query query(Interval(args.GetU64("st", 0), args.GetU64("end", 0)),
              std::move(elements));
  const uint32_t k = static_cast<uint32_t>(args.GetU64("k", 10));
  std::vector<ScoredHit> hits;
  Timer timer;
  if (Status st = index->TopKQuery(query, k, &hits); !st.ok()) {
    std::fprintf(stderr, "topk failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const double micros = timer.Seconds() * 1e6;
  std::printf("top-%u (%zu hits) in %.1f us:", k, hits.size(), micros);
  for (const ScoredHit& hit : hits) {
    std::printf(" %u:%llu", hit.id, static_cast<unsigned long long>(hit.score));
  }
  std::printf("\n");
  if (args.GetU64("oracle", 0) != 0) {
    auto* scored = dynamic_cast<ScoredIndex*>(index.get());
    if (scored == nullptr) {
      std::fprintf(stderr, "--oracle needs a scored-* index\n");
      return 1;
    }
    std::vector<ScoredHit> oracle;
    if (Status st = scored->TopKOracle(query, k, &oracle); !st.ok()) {
      std::fprintf(stderr, "oracle failed: %s\n", st.ToString().c_str());
      return 1;
    }
    if (oracle != hits) {
      std::fprintf(stderr, "MISMATCH: traversal and oracle disagree\n");
      return 1;
    }
    std::printf("oracle: identical (%zu hits)\n", oracle.size());
  }
  return 0;
}

int Ingest(const Args& args) {
  if (!args.Has("wal-dir")) return Usage();
  StatusOr<Corpus> corpus = LoadFromArgs(args);
  if (!corpus.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }

  DurableIndexOptions options;
  options.kind = KindFromName(args.Get("index", "irhint-perf"));
  StatusOr<WalDurability> durability =
      ParseWalDurability(args.Get("durability", "batch"));
  if (!durability.ok()) {
    std::fprintf(stderr, "%s\n", durability.status().ToString().c_str());
    return 1;
  }
  options.durability = durability.value();
  options.checkpoint_bytes = args.GetU64("checkpoint-bytes", 64ull << 20);
  options.batch_bytes = args.GetU64("batch-bytes", 256 * 1024);

  Timer open_timer;
  StatusOr<std::unique_ptr<DurableIndex>> opened =
      DurableIndex::Open(args.Get("wal-dir", ""), options);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<DurableIndex> index = std::move(opened).value();
  const RecoveryResult& recovery = index->recovery_info();
  std::printf("recovered %s in %.3fs: last LSN %llu", args.Get("wal-dir", ""),
              open_timer.Seconds(),
              static_cast<unsigned long long>(recovery.last_lsn));
  if (!recovery.snapshot_file.empty()) {
    std::printf(", snapshot %s (LSN %llu)", recovery.snapshot_file.c_str(),
                static_cast<unsigned long long>(recovery.snapshot_lsn));
  }
  std::printf(", %llu records replayed",
              static_cast<unsigned long long>(recovery.records_replayed));
  if (recovery.torn_bytes_dropped > 0) {
    std::printf(", %llu torn bytes dropped",
                static_cast<unsigned long long>(recovery.torn_bytes_dropped));
  }
  std::printf("\n");

  const size_t start =
      std::min<size_t>(args.GetU64("start", 0), corpus->size());
  const size_t count =
      std::min<size_t>(args.GetU64("count", corpus->size() - start),
                       corpus->size() - start);
  size_t inserted = 0, already = 0;
  Timer timer;
  for (size_t i = start; i < start + count; ++i) {
    const Status st = index->Insert(corpus->object(static_cast<ObjectId>(i)));
    if (st.ok()) {
      ++inserted;
    } else if (st.IsAlreadyExists()) {
      ++already;  // a previous (possibly crashed) run got this far
    } else {
      std::fprintf(stderr, "insert of object %zu failed: %s\n", i,
                   st.ToString().c_str());
      return 1;
    }
  }
  if (Status st = index->Flush(); !st.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const double seconds = timer.Seconds();
  std::printf(
      "ingested %zu objects (%zu already present) in %.3fs under "
      "durability=%s: %.0f objects/s\n",
      inserted, already, seconds,
      std::string(WalDurabilityName(options.durability)).c_str(),
      seconds > 0 ? static_cast<double>(inserted) / seconds : 0.0);
  if (Status st = index->WaitForCheckpoint(); !st.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wal: next LSN %llu, synced LSN %llu, live segment %llu "
              "(%llu bytes)\n",
              static_cast<unsigned long long>(index->next_lsn()),
              static_cast<unsigned long long>(index->last_synced_lsn()),
              static_cast<unsigned long long>(index->wal_segment_seq()),
              static_cast<unsigned long long>(index->wal_segment_bytes()));

  if (args.GetU64("verify", 0) != 0) {
    // Same deep pass as irhint_fsck, covering the WAL watermarks and the
    // inner index, before the behavioural cross-check.
    if (Status st = index->IntegrityCheck(CheckLevel::kDeep); !st.ok()) {
      std::fprintf(stderr, "verify FAILED: integrity check: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    // The directory may have been ingested across several runs, but always
    // from a prefix of this corpus (inserts only), so NaiveScan over the
    // same prefix is the ground truth.
    const Corpus prefix = corpus->Prefix(start + count);
    std::unique_ptr<TemporalIrIndex> naive =
        CreateIndex(IndexKind::kNaiveScan);
    if (Status st = naive->Build(prefix); !st.ok()) {
      std::fprintf(stderr, "verify build failed: %s\n", st.ToString().c_str());
      return 1;
    }
    WorkloadGenerator generator(*corpus, args.GetU64("seed", 1));
    const std::vector<Query> queries = generator.ExtentWorkload(
        0.1, /*k=*/3, args.GetU64("queries", 200));
    std::vector<ObjectId> got, want;
    for (size_t i = 0; i < queries.size(); ++i) {
      index->Query(queries[i], &got);
      naive->Query(queries[i], &want);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      if (got != want) {
        std::fprintf(stderr,
                     "verify FAILED: query %zu differs (%zu vs %zu results)\n",
                     i, got.size(), want.size());
        return 1;
      }
    }
    std::printf("verify: %zu queries answered identically by the durable "
                "index and a NaiveScan reference\n",
                queries.size());
  }
  return 0;
}

int Serve(const Args& args) {
  StatusOr<Corpus> corpus = LoadFromArgs(args);
  if (!corpus.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }

  serve::ServeOptions options;
  options.time_shards = static_cast<uint32_t>(args.GetU64("shards", 4));
  options.term_buckets = static_cast<uint32_t>(args.GetU64("buckets", 1));
  options.kind = KindFromName(args.Get("index", "irhint-perf"));
  options.max_queue_depth = args.GetU64("queue-depth", 1024);
  options.max_batch = args.GetU64("max-batch", 64);
  options.wal_dir = args.Get("wal-dir", "");
  options.checkpoint_bytes = args.GetU64("checkpoint-bytes", 0);
  StatusOr<WalDurability> durability =
      ParseWalDurability(args.Get("durability", "batch"));
  if (!durability.ok()) {
    std::fprintf(stderr, "%s\n", durability.status().ToString().c_str());
    return 1;
  }
  options.durability = durability.value();

  StatusOr<std::unique_ptr<serve::ServeEngine>> engine =
      serve::ServeEngine::Create(*corpus, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine start failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "serving %zu objects across %zu shards (%u time x %u term, "
               "%s%s); type 'help'\n",
               corpus->size(), (*engine)->num_shards(),
               (*engine)->time_shards(), (*engine)->term_buckets(),
               std::string(IndexKindName(options.kind)).c_str(),
               options.wal_dir.empty() ? "" : ", durable");
  serve::RunServerLoop(engine->get(), std::cin, std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();
  if (args.command == "generate") return Generate(args);
  if (args.command == "stats") return Stats(args);
  if (args.command == "build") return Build(args);
  if (args.command == "bench") return Bench(args);
  if (args.command == "query") return RunQuery(args);
  if (args.command == "topk") return TopK(args);
  if (args.command == "ingest") return Ingest(args);
  if (args.command == "serve") return Serve(args);
  return Usage();
}

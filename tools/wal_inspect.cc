// wal_inspect — dump a WAL directory or a single segment file.
//
//   wal_inspect DIR              overview: every segment (size, record
//                                count, LSN range, clean/torn tail) and
//                                every checkpoint snapshot (LSN, whether
//                                it still loads)
//   wal_inspect FILE [--records] one segment; with --records, one line
//                                per record (lsn, type, payload summary)
//
// Inspection never mutates the directory (no torn-tail truncation).

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "storage/index_io.h"
#include "wal/recovery.h"
#include "wal/wal_env.h"
#include "wal/wal_format.h"
#include "wal/wal_reader.h"

using namespace irhint;

namespace {

void PrintRecord(const WalRecord& record) {
  std::printf("  lsn %8" PRIu64 "  %-10s", record.lsn,
              std::string(WalRecordTypeName(
                  static_cast<uint32_t>(record.type))).c_str());
  switch (record.type) {
    case WalRecordType::kInsert:
    case WalRecordType::kErase:
      std::printf(" id=%u [%" PRIu64 ", %" PRIu64 "] |d|=%zu",
                  record.object.id, record.object.interval.st,
                  record.object.interval.end, record.object.elements.size());
      break;
    case WalRecordType::kCheckpoint:
      std::printf(" covers_lsn=%" PRIu64 " snapshot=%s",
                  record.checkpoint_lsn, record.snapshot_file.c_str());
      break;
    case WalRecordType::kRotate:
      std::printf(" next_seq=%" PRIu64, record.next_seq);
      break;
  }
  std::printf("\n");
}

int InspectSegment(WalEnv* env, const std::string& path, bool records) {
  auto contents = ReadWalSegment(env, path);
  if (!contents.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 contents.status().ToString().c_str());
    return 1;
  }
  std::printf("segment      %s\n", path.c_str());
  std::printf("seq          %" PRIu64 "\n", contents->seq);
  std::printf("file bytes   %" PRIu64 "\n", contents->file_bytes);
  std::printf("valid bytes  %" PRIu64 "\n", contents->valid_bytes);
  std::printf("records      %zu\n", contents->records.size());
  if (!contents->records.empty()) {
    std::printf("lsn range    [%" PRIu64 ", %" PRIu64 "]\n",
                contents->records.front().lsn, contents->records.back().lsn);
  }
  if (contents->clean) {
    std::printf("tail         clean%s\n",
                contents->ends_with_rotate ? " (rotated)" : "");
  } else {
    std::printf("tail         TORN at byte %" PRIu64 ": %s\n",
                contents->valid_bytes,
                contents->tail_status.ToString().c_str());
    if (contents->valid_record_after_tail) {
      std::printf("             valid record past the tear -> MID-LOG"
                  " CORRUPTION\n");
    }
  }
  if (records) {
    std::printf("\n");
    for (const WalRecord& record : contents->records) PrintRecord(record);
  }
  return 0;
}

int InspectDir(WalEnv* env, const std::string& dir) {
  auto segments = ListWalSegments(env, dir);
  if (!segments.ok()) {
    std::fprintf(stderr, "%s: %s\n", dir.c_str(),
                 segments.status().ToString().c_str());
    return 1;
  }
  auto checkpoints = ListCheckpointLsns(env, dir);
  if (!checkpoints.ok()) {
    std::fprintf(stderr, "%s: %s\n", dir.c_str(),
                 checkpoints.status().ToString().c_str());
    return 1;
  }

  std::printf("wal dir      %s\n", dir.c_str());
  std::printf("segments     %zu\n", segments->size());
  std::printf("checkpoints  %zu\n\n", checkpoints->size());

  for (const uint64_t seq : *segments) {
    const std::string path = WalPathJoin(dir, WalSegmentFileName(seq));
    auto contents = ReadWalSegment(env, path);
    if (!contents.ok()) {
      std::printf("  seq %6" PRIu64 "  UNREADABLE: %s\n", seq,
                  contents.status().ToString().c_str());
      continue;
    }
    std::printf("  seq %6" PRIu64 "  %8" PRIu64 " bytes  %6zu records", seq,
                contents->file_bytes, contents->records.size());
    if (!contents->records.empty()) {
      std::printf("  lsn [%" PRIu64 ", %" PRIu64 "]",
                  contents->records.front().lsn,
                  contents->records.back().lsn);
    }
    if (contents->clean) {
      std::printf("  clean%s", contents->ends_with_rotate ? " rotated" : "");
    } else {
      std::printf("  TORN at %" PRIu64 "%s", contents->valid_bytes,
                  contents->valid_record_after_tail ? " (MID-LOG CORRUPTION)"
                                                    : "");
    }
    std::printf("\n");
  }

  // Newest first, the order recovery tries them in.
  for (const uint64_t lsn : *checkpoints) {
    const std::string name = CheckpointFileName(lsn);
    auto loaded = LoadIndexCheckpoint(WalPathJoin(dir, name));
    if (loaded.ok()) {
      std::printf("  %s  kind=%s  loads OK\n", name.c_str(),
                  std::string(IndexKindName(loaded->loaded.kind)).c_str());
    } else {
      std::printf("  %s  DOES NOT LOAD: %s\n", name.c_str(),
                  loaded.status().ToString().c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: wal_inspect DIR | FILE [--records]\n");
    return 2;
  }
  const std::string target = argv[1];
  const bool records = argc > 2 && std::strcmp(argv[2], "--records") == 0;

  WalEnv* env = DefaultWalEnv();
  uint64_t seq = 0;
  const size_t slash = target.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? target : target.substr(slash + 1);
  if (ParseWalSegmentFileName(base, &seq)) {
    return InspectSegment(env, target, records);
  }
  return InspectDir(env, target);
}

#!/usr/bin/env python3
"""Repo-contract linter (DESIGN.md §9). Zero third-party dependencies.

Machine-checkable contracts that clang-tidy cannot express:

  1. Decode paths never assert/abort/exit on input bytes. Every file on
     the decode surface (readers, recovery, format parsers, fsck, the
     corpus loader) must be free of assert()/abort()/exit()/_Exit();
     hostile bytes must come back as a Status. Writers may assert on
     their own state machine and are not covered.

  2. Decode entry points return Status. Functions named Decode*/Parse*
     on the decode surface must return Status, StatusOr, or bool (bool
     only for TryParse-style probes) so callers cannot ignore failure.

  3. The committed fuzz regression corpus is non-empty for every
     harness. The replay ctest passes trivially over an empty directory,
     which would silently retire the crash-regression gate.

  4. Every .cc under src/ is listed in src/CMakeLists.txt — an
     unreferenced translation unit compiles in nobody's build and rots.

  5. Raw standard-library synchronization primitives (std::mutex,
     std::shared_mutex, lock_guard, unique_lock, condition_variable, …)
     appear only inside src/common/synchronization.{h,cc}. Everywhere
     else uses the annotated, named, lock-order-checked wrappers — a raw
     mutex is invisible to both -Wthread-safety and the order registry.

     This contract has an AST-accurate twin, irhint-raw-sync, in the
     clang-tidy plugin under tools/irhint-checks/ (it matches canonical
     types, so `using M = std::mutex;` cannot hide). Division of labor:
     the regex here is the cheap gcc-only prefilter that runs in every
     ctest invocation; when a built plugin and a clang-tidy binary are
     both discoverable, regex hits are *re-validated* through the plugin
     before being reported, which removes string/identifier false
     positives. The full-strength AST run over the whole compilation
     database happens in the static-analysis CI job
     (tools/lint/run_clang_tidy.sh --with-plugin). The plugin's own
     sources and fixtures under tools/irhint-checks/ name the banned
     primitives on purpose and are exempt.

  6. In headers whose classes own a Mutex/SharedMutex, every data member
     is either annotated IRHINT_GUARDED_BY/IRHINT_PT_GUARDED_BY or
     carries an explicit `// unguarded:` justification. Unannotated
     state next to a lock is exactly where silent races grow.

  7. Thread-safety escape hatches are justified: every use of
     IRHINT_NO_THREAD_SAFETY_ANALYSIS outside its defining header needs
     a `// thread-safety:` comment, and non-test code reads the
     environment through common/env.h GetEnv() (the one audited
     concurrency-mt-unsafe suppression), never raw getenv().

  8. Every IRHINT_UNTRUSTED / IRHINT_SANITIZER annotation in src/ is
     visible to the whole-program taint analysis: the annotated
     function must appear, with the matching annotation kind, in the
     merged summary DB produced by the two-phase pipeline (DESIGN.md
     §13). A misspelled or dead annotation parses fine and silently
     weakens the analysis — this catches it. Checked only when a
     merged DB exists ($IRHINT_TAINT_DB or build*/taint/
     merged_summary.json, written by run_clang_tidy.sh --taint); the
     plugin-less gcc-only setup skips it.

Exit status: 0 clean, 1 any contract violated. Run from anywhere.
"""

import glob
import json
import os
import re
import shutil
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

# Contract 1+2 scope: decode-surface files under src/.
DECODE_FILE_RE = re.compile(
    r"(snapshot_reader|wal_reader|recovery|fsck|serialize|mapped_file|"
    r"snapshot_format|wal_format|crc32c|score_block_store)\.(cc|h)$")

BANNED_CALL_RE = re.compile(r"(?<![\w.])(assert|abort|exit|_Exit)\s*\(")
DECODE_FN_RE = re.compile(
    r"^\s*([\w:<>,\s&*]+?)\s+(Decode\w*|Parse\w*)\s*\(")


def strip_comments(text):
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def decode_surface_files():
    for root, _, names in os.walk(os.path.join(REPO, "src")):
        for name in names:
            if DECODE_FILE_RE.search(name):
                yield os.path.join(root, name)


def check_no_asserts(errors):
    for path in decode_surface_files():
        with open(path) as f:
            clean = strip_comments(f.read())
        for lineno, line in enumerate(clean.splitlines(), 1):
            if "static_assert" in line:
                continue
            m = BANNED_CALL_RE.search(line)
            if m:
                errors.append(
                    f"{os.path.relpath(path, REPO)}:{lineno}: decode path "
                    f"calls {m.group(1)}() — hostile input must surface as "
                    f"a Status, never a process kill")


def check_decode_returns_status(errors):
    for path in decode_surface_files():
        with open(path) as f:
            clean = strip_comments(f.read())
        for lineno, line in enumerate(clean.splitlines(), 1):
            m = DECODE_FN_RE.match(line)
            if not m:
                continue
            ret = m.group(1).strip()
            # Call sites ("return Parse...(…)") are not declarations.
            if ret == "return" or ret.endswith(" return"):
                continue
            if re.search(r"\b(Status|StatusOr|bool)\b", ret):
                continue
            errors.append(
                f"{os.path.relpath(path, REPO)}:{lineno}: decode entry "
                f"point {m.group(2)}() returns '{ret}', not "
                f"Status/StatusOr — callers cannot see failure")


def check_fuzz_corpus_nonempty(errors):
    corpus_root = os.path.join(REPO, "tests", "fuzz_corpus")
    for target in ("snapshot", "wal", "corpus"):
        d = os.path.join(corpus_root, target)
        entries = os.listdir(d) if os.path.isdir(d) else []
        if not entries:
            errors.append(
                f"tests/fuzz_corpus/{target}/ is missing or empty — the "
                f"replay ctest would pass without exercising anything")


def check_sources_listed(errors):
    cmake_path = os.path.join(REPO, "src", "CMakeLists.txt")
    with open(cmake_path) as f:
        listed = set(re.findall(r"[\w/]+\.cc", f.read()))
    for root, _, names in os.walk(os.path.join(REPO, "src")):
        for name in names:
            if not name.endswith(".cc"):
                continue
            rel = os.path.relpath(os.path.join(root, name),
                                  os.path.join(REPO, "src"))
            if rel not in listed:
                errors.append(
                    f"src/{rel} is not listed in src/CMakeLists.txt — it "
                    f"is compiled into no target")


SYNC_DIRS = ("src", "tests", "tools", "bench", "fuzz", "examples")
RAW_SYNC_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|shared_timed_mutex|lock_guard|unique_lock|"
    r"shared_lock|scoped_lock|condition_variable|condition_variable_any)\b")
SYNC_EXEMPT = {
    os.path.join("src", "common", "synchronization.h"),
    os.path.join("src", "common", "synchronization.cc"),
}
# The AST checker and its fixtures name the banned primitives on
# purpose (in matcher tables and known-dirty test TUs).
SYNC_EXEMPT_DIR = os.path.join("tools", "irhint-checks")


def cxx_files(*dirs):
    for d in dirs:
        for root, _, names in os.walk(os.path.join(REPO, d)):
            for name in names:
                if name.endswith((".cc", ".h", ".cpp")):
                    yield os.path.join(root, name)


def find_raw_sync_plugin():
    """A built irhint_checks plugin plus a clang-tidy to load it, if any."""
    tidy = shutil.which("clang-tidy")
    if not tidy:
        return None
    candidates = glob.glob(
        os.path.join(REPO, "build*", "tools", "irhint-checks",
                     "libirhint_checks.*"))
    return (tidy, candidates[0]) if candidates else None


def check_no_raw_sync(errors):
    hits = []
    for path in cxx_files(*SYNC_DIRS):
        rel = os.path.relpath(path, REPO)
        if rel in SYNC_EXEMPT or rel.startswith(SYNC_EXEMPT_DIR):
            continue
        with open(path) as f:
            clean = strip_comments(f.read())
        for lineno, line in enumerate(clean.splitlines(), 1):
            if "SYNC_EXEMPT" in line:
                continue
            m = RAW_SYNC_RE.search(line)
            if m:
                hits.append((rel, lineno, m.group(1), path))
    if not hits:
        return
    # Delegate to the AST-accurate plugin check when one is available:
    # it sees through strings and comments the regex cannot, so its
    # verdict on the regex candidates wins. With no plugin built (the
    # normal gcc-only local setup) the regex hits stand on their own.
    plugin = find_raw_sync_plugin()
    if plugin is not None:
        tidy, so = plugin
        files = sorted({p for (_, _, _, p) in hits})
        proc = subprocess.run(
            [tidy, f"--load={so}", "--checks=-*,irhint-raw-sync", *files,
             "--", "-std=c++20", "-I" + os.path.join(REPO, "src")],
            capture_output=True, text=True)
        if proc.returncode == 0:
            for line in proc.stdout.splitlines():
                if "[irhint-raw-sync]" in line:
                    errors.append(line.strip() + " (via irhint-raw-sync)")
            return
        # Plugin run itself failed: fall through to the regex verdict.
    for rel, lineno, name, _ in hits:
        errors.append(
            f"{rel}:{lineno}: raw std::{name} — use the "
            f"named, annotated wrappers from "
            f"common/synchronization.h (the only place raw "
            f"primitives are allowed)")


# Contract 6 scope: a member declaration line `Type name_ ...` inside a
# header that declares a Mutex/SharedMutex member. The type part admits
# only identifier/template/pointer characters, so function definitions
# (which contain parentheses before the trailing `_` name) never match.
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:irhint::)?(?:Mutex|SharedMutex)\s+\w+_\s*\{",
    re.M)
FIELD_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?"
    r"[A-Za-z_][\w:]*(?:<[\w:<>,\s*&]*>)?[\s*&]+(\w+_)\s*(?:[={;]|IRHINT_)")
FIELD_EXEMPT_RE = re.compile(
    r"\b(Mutex|SharedMutex|CondVar|std::atomic|static|constexpr)\b")
GUARD_OK_RE = re.compile(r"IRHINT_(PT_)?GUARDED_BY|//\s*unguarded:")
UNGUARDED_COMMENT_RE = re.compile(r"//\s*unguarded:")


def check_guarded_by_coverage(errors):
    for path in cxx_files("src"):
        if not path.endswith(".h"):
            continue
        rel = os.path.relpath(path, REPO)
        if rel in SYNC_EXEMPT:
            continue
        with open(path) as f:
            lines = f.read().splitlines()
        if not MUTEX_MEMBER_RE.search("\n".join(lines)):
            continue
        for lineno, line in enumerate(lines, 1):
            stripped = line.strip()
            if stripped.startswith("//") or stripped.startswith("*"):
                continue
            m = FIELD_RE.match(line)
            if not m or FIELD_EXEMPT_RE.search(line):
                continue
            # The annotation must sit on the declaration line; a
            # justification comment may sit there or on the line above.
            prev = lines[lineno - 2] if lineno >= 2 else ""
            if GUARD_OK_RE.search(line) or UNGUARDED_COMMENT_RE.search(prev):
                continue
            errors.append(
                f"{rel}:{lineno}: member {m.group(1)} sits in a class "
                f"owning a Mutex but is neither IRHINT_GUARDED_BY an "
                f"annotation nor justified with `// unguarded: <why>`")


def check_escape_hatches_justified(errors):
    annotations_header = os.path.join("src", "common", "thread_annotations.h")
    for path in cxx_files(*SYNC_DIRS):
        rel = os.path.relpath(path, REPO)
        if rel == annotations_header:
            continue
        with open(path) as f:
            lines = f.read().splitlines()
        for lineno, line in enumerate(lines, 1):
            if "IRHINT_NO_THREAD_SAFETY_ANALYSIS" not in line:
                continue
            prev = lines[lineno - 2] if lineno >= 2 else ""
            nxt = lines[lineno] if lineno < len(lines) else ""
            if any("// thread-safety:" in l for l in (prev, line, nxt)):
                continue
            errors.append(
                f"{rel}:{lineno}: IRHINT_NO_THREAD_SAFETY_ANALYSIS without "
                f"an adjacent `// thread-safety: <why>` justification — "
                f"blanket suppressions are banned")


def check_getenv_centralized(errors):
    env_header = os.path.join("src", "common", "env.h")
    for path in cxx_files("src", "tools", "bench", "fuzz", "examples"):
        rel = os.path.relpath(path, REPO)
        if rel == env_header:
            continue
        with open(path) as f:
            clean = strip_comments(f.read())
        for lineno, line in enumerate(clean.splitlines(), 1):
            if re.search(r"(?<![\w.])(std::)?getenv\s*\(", line):
                errors.append(
                    f"{rel}:{lineno}: raw getenv() — use GetEnv() from "
                    f"common/env.h, the single audited "
                    f"concurrency-mt-unsafe suppression")


# Contract 8: taint annotations must surface in the merged summary DB.
TAINT_ANNOT_RE = re.compile(r"\bIRHINT_(UNTRUSTED|SANITIZER)\b")
FN_NAME_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")


def find_taint_db():
    env = os.environ.get("IRHINT_TAINT_DB")
    if env:
        return env if os.path.isfile(env) else None
    candidates = sorted(glob.glob(
        os.path.join(REPO, "build*", "taint", "merged_summary.json")))
    return candidates[0] if candidates else None


def summary_db_names(db):
    """Unqualified function name -> set of annotation kinds in the DB."""
    names = {}

    def note(key, kind):
        # Keys look like "ns::Class::Fn/2", internal-linkage ones
        # "src/foo.cc!Fn/2"; reduce to the unqualified name.
        base = key.rsplit("/", 1)[0].split("!")[-1]
        names.setdefault(base.split("::")[-1], set()).add(kind)

    for key, fn in db.get("functions", {}).items():
        if fn.get("annotated"):
            note(key, fn["annotated"])
    for key, kind in db.get("annotated", {}).items():
        note(key, kind)
    return names


def check_annotations_reach_taint_db(errors):
    db_path = find_taint_db()
    if db_path is None:
        return  # no merged DB: the taint pipeline has not run
    with open(db_path) as f:
        db = json.load(f)
    names = summary_db_names(db)
    want = {"UNTRUSTED": "untrusted", "SANITIZER": "sanitizer"}
    contracts_header = os.path.join("src", "common", "contracts.h")
    for path in cxx_files("src"):
        rel = os.path.relpath(path, REPO)
        if rel == contracts_header:
            continue
        with open(path) as f:
            lines = strip_comments(f.read()).splitlines()
        for lineno, line in enumerate(lines, 1):
            m = TAINT_ANNOT_RE.search(line)
            if not m or "#define" in line:
                continue
            # The annotated function's name is the first call-ish
            # identifier after the annotation (same line or the next
            # couple of continuation lines).
            tail = line[m.end():] + " " + " ".join(
                lines[lineno:lineno + 2])
            name_m = FN_NAME_RE.search(tail)
            if not name_m:
                errors.append(
                    f"{rel}:{lineno}: IRHINT_{m.group(1)} with no "
                    f"function declarator in reach — annotation is dead")
                continue
            name = name_m.group(1)
            if want[m.group(1)] not in names.get(name, set()):
                errors.append(
                    f"{rel}:{lineno}: IRHINT_{m.group(1)} on {name}() "
                    f"does not appear in the merged taint summary DB "
                    f"({os.path.relpath(db_path, REPO)}) — dead or "
                    f"misspelled annotation silently weakens the "
                    f"whole-program analysis")


def main():
    errors = []
    check_no_asserts(errors)
    check_decode_returns_status(errors)
    check_fuzz_corpus_nonempty(errors)
    check_sources_listed(errors)
    check_no_raw_sync(errors)
    check_guarded_by_coverage(errors)
    check_escape_hatches_justified(errors)
    check_getenv_centralized(errors)
    check_annotations_reach_taint_db(errors)
    if errors:
        print("contract violations:", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print("all repo contracts hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Repo-contract linter (DESIGN.md §9). Zero third-party dependencies.

Machine-checkable contracts that clang-tidy cannot express:

  1. Decode paths never assert/abort/exit on input bytes. Every file on
     the decode surface (readers, recovery, format parsers, fsck, the
     corpus loader) must be free of assert()/abort()/exit()/_Exit();
     hostile bytes must come back as a Status. Writers may assert on
     their own state machine and are not covered.

  2. Decode entry points return Status. Functions named Decode*/Parse*
     on the decode surface must return Status, StatusOr, or bool (bool
     only for TryParse-style probes) so callers cannot ignore failure.

  3. The committed fuzz regression corpus is non-empty for every
     harness. The replay ctest passes trivially over an empty directory,
     which would silently retire the crash-regression gate.

  4. Every .cc under src/ is listed in src/CMakeLists.txt — an
     unreferenced translation unit compiles in nobody's build and rots.

Exit status: 0 clean, 1 any contract violated. Run from anywhere.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

# Contract 1+2 scope: decode-surface files under src/.
DECODE_FILE_RE = re.compile(
    r"(snapshot_reader|wal_reader|recovery|fsck|serialize|mapped_file|"
    r"snapshot_format|wal_format|crc32c)\.(cc|h)$")

BANNED_CALL_RE = re.compile(r"(?<![\w.])(assert|abort|exit|_Exit)\s*\(")
DECODE_FN_RE = re.compile(
    r"^\s*([\w:<>,\s&*]+?)\s+(Decode\w*|Parse\w*)\s*\(")


def strip_comments(text):
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def decode_surface_files():
    for root, _, names in os.walk(os.path.join(REPO, "src")):
        for name in names:
            if DECODE_FILE_RE.search(name):
                yield os.path.join(root, name)


def check_no_asserts(errors):
    for path in decode_surface_files():
        with open(path) as f:
            clean = strip_comments(f.read())
        for lineno, line in enumerate(clean.splitlines(), 1):
            if "static_assert" in line:
                continue
            m = BANNED_CALL_RE.search(line)
            if m:
                errors.append(
                    f"{os.path.relpath(path, REPO)}:{lineno}: decode path "
                    f"calls {m.group(1)}() — hostile input must surface as "
                    f"a Status, never a process kill")


def check_decode_returns_status(errors):
    for path in decode_surface_files():
        with open(path) as f:
            clean = strip_comments(f.read())
        for lineno, line in enumerate(clean.splitlines(), 1):
            m = DECODE_FN_RE.match(line)
            if not m:
                continue
            ret = m.group(1).strip()
            # Call sites ("return Parse...(…)") are not declarations.
            if ret == "return" or ret.endswith(" return"):
                continue
            if re.search(r"\b(Status|StatusOr|bool)\b", ret):
                continue
            errors.append(
                f"{os.path.relpath(path, REPO)}:{lineno}: decode entry "
                f"point {m.group(2)}() returns '{ret}', not "
                f"Status/StatusOr — callers cannot see failure")


def check_fuzz_corpus_nonempty(errors):
    corpus_root = os.path.join(REPO, "tests", "fuzz_corpus")
    for target in ("snapshot", "wal", "corpus"):
        d = os.path.join(corpus_root, target)
        entries = os.listdir(d) if os.path.isdir(d) else []
        if not entries:
            errors.append(
                f"tests/fuzz_corpus/{target}/ is missing or empty — the "
                f"replay ctest would pass without exercising anything")


def check_sources_listed(errors):
    cmake_path = os.path.join(REPO, "src", "CMakeLists.txt")
    with open(cmake_path) as f:
        listed = set(re.findall(r"[\w/]+\.cc", f.read()))
    for root, _, names in os.walk(os.path.join(REPO, "src")):
        for name in names:
            if not name.endswith(".cc"):
                continue
            rel = os.path.relpath(os.path.join(root, name),
                                  os.path.join(REPO, "src"))
            if rel not in listed:
                errors.append(
                    f"src/{rel} is not listed in src/CMakeLists.txt — it "
                    f"is compiled into no target")


def main():
    errors = []
    check_no_asserts(errors)
    check_decode_returns_status(errors)
    check_fuzz_corpus_nonempty(errors)
    check_sources_listed(errors)
    if errors:
        print("contract violations:", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print("all repo contracts hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

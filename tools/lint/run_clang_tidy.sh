#!/usr/bin/env bash
# Run the project clang-tidy gate locally, the same way CI does.
#
#   tools/lint/run_clang_tidy.sh [--with-plugin [PLUGIN.so]] [BUILD_DIR]
#
# Needs a configured build directory (default: build) — the top-level
# CMakeLists.txt exports compile_commands.json unconditionally. Checks and
# warning policy come from .clang-tidy at the repo root; any warning fails
# (WarningsAsErrors: '*').
#
# --with-plugin additionally loads the irhint-* checks plugin (built via
# -DIRHINT_CHECKS=ON, see tools/irhint-checks/) and appends
# -checks=irhint-* so the project checks run on top of the stock set.
# The plugin path defaults to the first libirhint_checks.* under any
# build*/tools/irhint-checks/. Extra diagnostics can be exported for CI
# artifacts with EXPORT_FIXES=<file.yaml>.
set -euo pipefail

WITH_PLUGIN=0
PLUGIN=""
if [[ "${1:-}" == "--with-plugin" ]]; then
  WITH_PLUGIN=1
  shift
  if [[ $# -gt 0 && "${1}" == *libirhint_checks* ]]; then
    PLUGIN="$1"
    shift
  fi
fi

BUILD_DIR="${1:-build}"
REPO="$(cd "$(dirname "$0")/../.." && pwd)"
cd "$REPO"

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "error: $BUILD_DIR/compile_commands.json not found; configure first:" >&2
  echo "  cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null; then
  echo "error: $TIDY not found (set CLANG_TIDY to your binary)" >&2
  exit 2
fi

EXTRA_ARGS=()
if [[ $WITH_PLUGIN -eq 1 ]]; then
  if [[ -z "$PLUGIN" ]]; then
    PLUGIN="$(ls build*/tools/irhint-checks/libirhint_checks.* 2>/dev/null |
              head -n1 || true)"
  fi
  if [[ -z "$PLUGIN" || ! -f "$PLUGIN" ]]; then
    echo "error: --with-plugin but no libirhint_checks.* found; build with" >&2
    echo "  cmake -B build-checks -S . -DIRHINT_CHECKS=ON ... && \\" >&2
    echo "  cmake --build build-checks --target irhint_checks" >&2
    exit 2
  fi
  EXTRA_ARGS+=("--load=$PLUGIN" "--checks=irhint-*")
fi
if [[ -n "${EXPORT_FIXES:-}" ]]; then
  EXTRA_ARGS+=("--export-fixes=$EXPORT_FIXES")
fi

# Library + tools + fuzz sources; tests are gtest-macro-heavy and stay out
# of the gate.
mapfile -t FILES < <(git ls-files 'src/**/*.cc' 'tools/*.cc' 'fuzz/*.cc')

"$TIDY" -p "$BUILD_DIR" --quiet ${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"} \
  "${FILES[@]}"
echo "clang-tidy: ${#FILES[@]} files clean"

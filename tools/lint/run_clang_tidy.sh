#!/usr/bin/env bash
# Run the project clang-tidy gate locally, the same way CI does.
#
#   tools/lint/run_clang_tidy.sh [BUILD_DIR]
#
# Needs a configured build directory (default: build) — the top-level
# CMakeLists.txt exports compile_commands.json unconditionally. Checks and
# warning policy come from .clang-tidy at the repo root; any warning fails
# (WarningsAsErrors: '*').
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO="$(cd "$(dirname "$0")/../.." && pwd)"
cd "$REPO"

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "error: $BUILD_DIR/compile_commands.json not found; configure first:" >&2
  echo "  cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null; then
  echo "error: $TIDY not found (set CLANG_TIDY to your binary)" >&2
  exit 2
fi

# Library + tools + fuzz sources; tests are gtest-macro-heavy and stay out
# of the gate.
mapfile -t FILES < <(git ls-files 'src/**/*.cc' 'tools/*.cc' 'fuzz/*.cc')

"$TIDY" -p "$BUILD_DIR" --quiet "${FILES[@]}"
echo "clang-tidy: ${#FILES[@]} files clean"

#!/usr/bin/env bash
# Run the project clang-tidy gate locally, the same way CI does.
#
#   tools/lint/run_clang_tidy.sh [--with-plugin [PLUGIN.so]] [--taint] \
#                                [BUILD_DIR]
#
# Needs a configured build directory (default: build) — the top-level
# CMakeLists.txt exports compile_commands.json unconditionally. Checks and
# warning policy come from .clang-tidy at the repo root; any warning fails
# (WarningsAsErrors: '*').
#
# --with-plugin additionally loads the irhint-* checks plugin (built via
# -DIRHINT_CHECKS=ON, see tools/irhint-checks/) and appends
# -checks=irhint-* so the project checks run on top of the stock set.
# The plugin path defaults to the first libirhint_checks.* under any
# build*/tools/irhint-checks/. Before anything runs, the plugin is
# probed with --list-checks: a .so that is missing, fails to -load, or
# loads without registering the irhint-* checks aborts the gate with
# exit 2 — a broken plugin must never degrade to a silent no-op.
#
# --taint (implies --with-plugin) runs the whole-program decode-taint
# analysis instead of the per-file gate: phase 1 summarizes every
# src/fuzz TU into $BUILD_DIR/taint/summaries (content-hash cached in
# $BUILD_DIR/taint/cache), phase 2 links them and diffs the findings
# against tools/irhint-checks/taint_baseline.json. See DESIGN.md §13.
#
# Extra diagnostics can be exported for CI artifacts with
# EXPORT_FIXES=<file.yaml>.
set -euo pipefail

WITH_PLUGIN=0
TAINT=0
PLUGIN=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --with-plugin)
      WITH_PLUGIN=1
      shift
      if [[ $# -gt 0 && "${1}" == *libirhint_checks* ]]; then
        PLUGIN="$1"
        shift
      fi
      ;;
    --taint)
      TAINT=1
      WITH_PLUGIN=1
      shift
      ;;
    *)
      break
      ;;
  esac
done

BUILD_DIR="${1:-build}"
REPO="$(cd "$(dirname "$0")/../.." && pwd)"
cd "$REPO"

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "error: $BUILD_DIR/compile_commands.json not found; configure first:" >&2
  echo "  cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null; then
  echo "error: $TIDY not found (set CLANG_TIDY to your binary)" >&2
  exit 2
fi

EXTRA_ARGS=()
if [[ $WITH_PLUGIN -eq 1 ]]; then
  if [[ -z "$PLUGIN" ]]; then
    PLUGIN="$(ls build*/tools/irhint-checks/libirhint_checks.* 2>/dev/null |
              head -n1 || true)"
  fi
  if [[ -z "$PLUGIN" || ! -f "$PLUGIN" ]]; then
    echo "error: --with-plugin but no libirhint_checks.* found; build with" >&2
    echo "  cmake -B build-checks -S . -DIRHINT_CHECKS=ON ... && \\" >&2
    echo "  cmake --build build-checks --target irhint_checks" >&2
    exit 2
  fi
  # Probe: -load must succeed AND register the project checks. clang-tidy
  # happily exits 0 when a plugin fails to add any check (or when -load
  # dlopen fails only at matcher time on some platforms), which would
  # turn the whole gate into a silent no-op.
  if ! PROBE="$("$TIDY" "--load=$PLUGIN" --checks='-*,irhint-*' \
                --list-checks 2>&1)"; then
    echo "error: clang-tidy failed to load plugin $PLUGIN:" >&2
    echo "$PROBE" >&2
    exit 2
  fi
  if ! grep -q 'irhint-untrusted-decode' <<<"$PROBE" ||
     ! grep -q 'irhint-taint-summary' <<<"$PROBE"; then
    echo "error: plugin $PLUGIN loaded but the irhint-* checks are not" >&2
    echo "registered (ABI mismatch with $TIDY?). --list-checks said:" >&2
    echo "$PROBE" >&2
    exit 2
  fi
  EXTRA_ARGS+=("--load=$PLUGIN" "--checks=irhint-*")
fi
if [[ -n "${EXPORT_FIXES:-}" ]]; then
  EXTRA_ARGS+=("--export-fixes=$EXPORT_FIXES")
fi

if [[ $TAINT -eq 1 ]]; then
  SUMDIR="$BUILD_DIR/taint/summaries"
  rm -rf "$SUMDIR"
  mkdir -p "$SUMDIR"
  CLANG_TIDY="$TIDY" python3 tools/irhint-checks/taint_summarize.py \
    --build-dir "$BUILD_DIR" \
    --plugin "$PLUGIN" \
    --out "$SUMDIR" \
    --cache "$BUILD_DIR/taint/cache"
  python3 tools/irhint-checks/taint_link.py \
    --summaries "$SUMDIR" \
    --merged-out "$BUILD_DIR/taint/merged_summary.json" \
    --report-out "$BUILD_DIR/taint/report.json"
  echo "taint: clean against tools/irhint-checks/taint_baseline.json"
  exit 0
fi

# Library + tools + fuzz sources; tests are gtest-macro-heavy and stay out
# of the gate.
mapfile -t FILES < <(git ls-files 'src/**/*.cc' 'tools/*.cc' 'fuzz/*.cc')

"$TIDY" -p "$BUILD_DIR" --quiet ${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"} \
  "${FILES[@]}"
echo "clang-tidy: ${#FILES[@]} files clean"

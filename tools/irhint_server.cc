// irhint_server — the sharded serving engine behind a line-oriented
// request loop on stdin/stdout (protocol: src/serve/server_loop.h).
//
//   irhint_server [--in FILE | --cardinality N [--domain T] [--seed S]]
//                 [--shards N]           time-range partitions (default 4)
//                 [--buckets N]          hashed-term sub-partitions (default 1)
//                 [--index NAME]         per-shard index kind (irhint-perf)
//                 [--queue-depth N]      admission-control bound (default 1024)
//                 [--max-batch N]        coalescing cap (default 64)
//                 [--wal-dir DIR]        durable mode: fresh dir for WALs
//                 [--durability none|batch|always]   (default batch)
//                 [--checkpoint-bytes N] (default 0 = never checkpoint)
//
// Without --in, a synthetic corpus is generated so the server can be
// played with immediately:
//   printf 'query 0 500000 3 17\nstats\nquit\n' | irhint_server

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "common/flat_hash_map.h"
#include "core/factory.h"
#include "data/serialize.h"
#include "data/synthetic.h"
#include "serve/server_loop.h"

using namespace irhint;

namespace {

struct Args {
  FlatHashMap<std::string, std::string> options;

  const char* Get(const std::string& key, const char* fallback) const {
    const std::string* value = options.find(key);
    return value != nullptr ? value->c_str() : fallback;
  }
  uint64_t GetU64(const std::string& key, uint64_t fallback) const {
    const std::string* value = options.find(key);
    return value != nullptr
               ? static_cast<uint64_t>(std::atoll(value->c_str()))
               : fallback;
  }
  bool Has(const std::string& key) const {
    return options.find(key) != nullptr;
  }
};

int Usage() {
  std::fprintf(stderr,
               "usage: irhint_server [--in FILE | --cardinality N] "
               "[--shards N] [--buckets N] [--index NAME] [--queue-depth N] "
               "[--max-batch N] [--wal-dir DIR] "
               "[--durability none|batch|always] [--checkpoint-bytes N]\n"
               "see the header of tools/irhint_server.cc for the protocol\n");
  return 2;
}

IndexKind KindFromName(const std::string& name) {
  if (name == "tif") return IndexKind::kTif;
  if (name == "slicing") return IndexKind::kTifSlicing;
  if (name == "sharding") return IndexKind::kTifSharding;
  if (name == "hint-bs") return IndexKind::kTifHintBinarySearch;
  if (name == "hint-ms") return IndexKind::kTifHintMergeSort;
  if (name == "hybrid") return IndexKind::kTifHintSlicing;
  if (name == "irhint-size") return IndexKind::kIrHintSize;
  return IndexKind::kIrHintPerf;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return Usage();
    args.options.insert_or_assign(argv[i] + 2, argv[i + 1]);
  }

  Corpus corpus;
  if (args.Has("in")) {
    StatusOr<Corpus> loaded = LoadCorpus(args.Get("in", ""));
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    corpus = std::move(loaded).value();
  } else {
    SyntheticParams params;
    params.cardinality = args.GetU64("cardinality", 20000);
    params.domain = args.GetU64("domain", 1'000'000);
    params.seed = args.GetU64("seed", 42);
    corpus = GenerateSynthetic(params);
  }

  serve::ServeOptions options;
  options.time_shards = static_cast<uint32_t>(args.GetU64("shards", 4));
  options.term_buckets = static_cast<uint32_t>(args.GetU64("buckets", 1));
  options.kind = KindFromName(args.Get("index", "irhint-perf"));
  options.max_queue_depth = args.GetU64("queue-depth", 1024);
  options.max_batch = args.GetU64("max-batch", 64);
  options.wal_dir = args.Get("wal-dir", "");
  options.checkpoint_bytes = args.GetU64("checkpoint-bytes", 0);
  StatusOr<WalDurability> durability =
      ParseWalDurability(args.Get("durability", "batch"));
  if (!durability.ok()) {
    std::fprintf(stderr, "%s\n", durability.status().ToString().c_str());
    return 1;
  }
  options.durability = durability.value();

  StatusOr<std::unique_ptr<serve::ServeEngine>> engine =
      serve::ServeEngine::Create(corpus, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine start failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "serving %zu objects across %zu shards (%u time x %u term, "
               "%s%s); type 'help'\n",
               corpus.size(), (*engine)->num_shards(), (*engine)->time_shards(),
               (*engine)->term_buckets(),
               std::string(IndexKindName(options.kind)).c_str(),
               options.wal_dir.empty() ? "" : ", durable");

  serve::RunServerLoop(engine->get(), std::cin, std::cout);
  return 0;
}

// snapshot_inspect — dump the header and section table of a snapshot file.
//
//   snapshot_inspect FILE [--check]
//
// Prints the format version, the index/corpus kind, and one line per
// section (id, name, file offset, payload size, stored CRC32C). With
// --check the payload of every section is re-read and its checksum
// recomputed (OK or MISMATCH per section), and then the whole file runs
// through the irhint_fsck deep pass — the payload is decoded and the
// loaded index audited with IntegrityCheck(kDeep).

#include <cstdio>
#include <cstring>
#include <string>

#include "core/fsck.h"
#include "storage/snapshot_format.h"
#include "storage/snapshot_reader.h"

using namespace irhint;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: snapshot_inspect FILE [--check]\n");
    return 2;
  }
  const std::string path = argv[1];
  const bool check = argc > 2 && std::strcmp(argv[2], "--check") == 0;

  SnapshotReader reader;
  SnapshotReadOptions options;
  options.verify_checksums = false;  // report per-section status instead
  if (Status st = reader.Open(path, options); !st.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
    return 1;
  }

  std::printf("snapshot     %s\n", path.c_str());
  std::printf("format       v%u\n", reader.version());
  std::printf("kind         %u (%s)\n", reader.kind(),
              std::string(SnapshotKindName(reader.kind())).c_str());
  std::printf("sections     %zu\n", reader.sections().size());
  if (reader.HasSection(kSectionWalState)) {
    // WAL checkpoint snapshots record the LSN they cover and the id
    // watermark.
    auto cursor = reader.OpenSection(kSectionWalState);
    uint64_t lsn = 0, next_id = 0;
    if (cursor.ok() && cursor->ReadU64(&lsn).ok() &&
        cursor->ReadU64(&next_id).ok()) {
      std::printf("checkpoint   LSN %llu, next object id %llu\n",
                  static_cast<unsigned long long>(lsn),
                  static_cast<unsigned long long>(next_id));
    } else {
      std::printf("checkpoint   (wal_state section unreadable)\n");
    }
  }
  std::printf("\n");

  std::printf("%4s  %-12s %12s %14s %10s", "id", "name", "offset", "size",
              "crc32c");
  if (check) std::printf("  %s", "status");
  std::printf("\n");
  for (const SectionInfo& section : reader.sections()) {
    std::printf("%4u  %-12s %12llu %14llu   %08x", section.id,
                std::string(SnapshotSectionName(section.id)).c_str(),
                static_cast<unsigned long long>(section.offset),
                static_cast<unsigned long long>(section.size), section.crc);
    if (check) {
      const Status st = reader.VerifySection(section);
      std::printf("  %s", st.ok() ? "OK" : "MISMATCH");
    }
    std::printf("\n");
  }
  if (check) {
    // One code path with irhint_fsck: decode the payload and deep-audit
    // the loaded structure.
    const Status st = CheckSnapshotFile(path, CheckLevel::kDeep);
    std::printf("\ndeep check   %s\n",
                st.ok() ? "OK" : st.ToString().c_str());
    if (!st.ok()) return 1;
  }
  return 0;
}

// irhint_fsck — audit persisted state for structural damage.
//
//   irhint_fsck [--quick] [--no-mmap] PATH...
//
// Every PATH is either a snapshot file (index, corpus, or checkpoint) or a
// WAL directory; directories get the end-to-end log audit, files the
// snapshot audit. The default is the deep pass (decode everything, run
// IntegrityCheck(kDeep) on every index reachable from the input); --quick
// stops at framing and CRC validation. Exit status: 0 when every input
// passed, 1 when any input failed, 2 on usage errors.

#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/fsck.h"
#include "storage/snapshot_format.h"

using namespace irhint;

namespace {

bool IsDirectory(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

void PrintReport(const FsckReport& report) {
  if (report.snapshot_kind != 0) {
    std::printf("  kind                 %u (%s)\n", report.snapshot_kind,
                std::string(SnapshotKindName(report.snapshot_kind)).c_str());
  }
  if (report.sections_verified > 0) {
    std::printf("  sections verified    %llu\n",
                static_cast<unsigned long long>(report.sections_verified));
  }
  if (report.segments_scanned > 0) {
    std::printf("  segments scanned     %llu (%llu records)\n",
                static_cast<unsigned long long>(report.segments_scanned),
                static_cast<unsigned long long>(report.records_decoded));
  }
  if (report.checkpoints_checked > 0) {
    std::printf("  checkpoints checked  %llu\n",
                static_cast<unsigned long long>(report.checkpoints_checked));
  }
  if (report.torn_tail_bytes > 0) {
    std::printf("  torn tail tolerated  %llu bytes (live segment; recovery "
                "will truncate)\n",
                static_cast<unsigned long long>(report.torn_tail_bytes));
  }
  if (report.indexes_deep_checked > 0) {
    std::printf("  indexes deep-checked %llu\n",
                static_cast<unsigned long long>(report.indexes_deep_checked));
  }
}

}  // namespace

int main(int argc, char** argv) {
  CheckLevel level = CheckLevel::kDeep;
  SnapshotReadOptions read_options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      level = CheckLevel::kQuick;
    } else if (std::strcmp(argv[i], "--deep") == 0) {
      level = CheckLevel::kDeep;
    } else if (std::strcmp(argv[i], "--no-mmap") == 0) {
      read_options.use_mmap = false;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::fprintf(stderr, "usage: irhint_fsck [--quick] [--no-mmap] "
                           "PATH...\n");
      return 2;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: irhint_fsck [--quick] [--no-mmap] "
                         "PATH...\n");
    return 2;
  }

  int failures = 0;
  for (const std::string& path : paths) {
    FsckReport report;
    Status status;
    if (IsDirectory(path)) {
      status = CheckWalDirectory(path, level, nullptr, &report);
    } else {
      status = CheckSnapshotFile(path, level, read_options, &report);
    }
    std::printf("%s: %s (%s pass)\n", path.c_str(),
                status.ok() ? "OK" : status.ToString().c_str(),
                level == CheckLevel::kQuick ? "quick" : "deep");
    PrintReport(report);
    if (!status.ok()) ++failures;
  }
  return failures > 0 ? 1 : 0;
}

#include "serve/engine.h"

#include <algorithm>
#include <filesystem>
#include <limits>
#include <utility>

#include "core/durable_index.h"

namespace irhint {
namespace serve {

namespace {

/// Replication targets of one object inside a time shard: the distinct
/// buckets of its elements (bucket 0 for element-less objects, which only
/// element-less queries — routed to every bucket — can match).
void ObjectBuckets(const Object& object, uint32_t buckets,
                   std::vector<uint32_t>* out) {
  out->clear();
  if (buckets == 1 || object.elements.empty()) {
    out->push_back(0);
    return;
  }
  for (const ElementId element : object.elements) {
    out->push_back(TermBucket(element, buckets));
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

}  // namespace

uint32_t TermBucket(ElementId element, uint32_t buckets) {
  // splitmix64 finalizer: cheap, well-mixed, stable across platforms.
  uint64_t z = static_cast<uint64_t>(element) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<uint32_t>(z % buckets);
}

StatusOr<std::unique_ptr<ServeEngine>> ServeEngine::Create(
    const Corpus& corpus, const ServeOptions& options) {
  if (options.time_shards < 1 || options.term_buckets < 1) {
    return Status::InvalidArgument("time_shards and term_buckets must be >= 1");
  }
  if (options.max_queue_depth < 1 || options.max_batch < 1) {
    return Status::InvalidArgument(
        "max_queue_depth and max_batch must be >= 1");
  }

  std::unique_ptr<ServeEngine> engine(new ServeEngine());
  const Time domain_end = corpus.domain_end();
  // Number of representable time points; 128-bit so domain_end ==
  // Time::max does not wrap.
  const unsigned __int128 span =
      static_cast<unsigned __int128>(domain_end) + 1;
  const uint32_t time_shards = static_cast<uint32_t>(
      std::min<unsigned __int128>(options.time_shards, span));
  engine->time_shards_ = time_shards;
  engine->term_buckets_ = options.term_buckets;
  engine->shard_starts_.reserve(time_shards);
  for (uint32_t t = 0; t < time_shards; ++t) {
    engine->shard_starts_.push_back(static_cast<Time>(span * t / time_shards));
  }

  // Per-time-shard coordinate frames: shard t serves [lo, hi] rebased to
  // 0 (hi saturated for the last shard so live inserts past the built
  // domain still route somewhere). Building over the rebased 1/N span
  // makes each shard's divisions proportionally finer — the throughput
  // lever narrow queries pay for.
  std::vector<Interval> ranges(time_shards);
  for (uint32_t t = 0; t < time_shards; ++t) {
    ranges[t] = Interval(engine->shard_starts_[t],
                         t + 1 < time_shards
                             ? engine->shard_starts_[t + 1] - 1
                             : std::numeric_limits<Time>::max());
  }

  // Partition: replicate every object into each covering (time, bucket)
  // cell, clamped+rebased to the shard frame and renumbered to dense local
  // ids with the global id remembered in the shard's id map. Scored kinds
  // keep GLOBAL coordinates instead: an impact score is a pure function of
  // the global interval end, so a rebased replica would score differently
  // than the same object on another shard and break the cross-shard merge.
  const bool scored = KindSupportsTopK(options.kind);
  const size_t num_shards =
      static_cast<size_t>(time_shards) * options.term_buckets;
  std::vector<Corpus> locals(num_shards);
  std::vector<std::vector<ObjectId>> id_maps(num_shards);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    const Interval& range = ranges[shard / options.term_buckets];
    locals[shard].set_dictionary(corpus.dictionary());
    locals[shard].DeclareDomain(
        scored ? domain_end : std::min(domain_end, range.end) - range.st);
  }
  std::vector<uint32_t> buckets;
  for (const Object& object : corpus.objects()) {
    const uint32_t t0 = engine->TimeShardOf(object.interval.st);
    const uint32_t t1 = engine->TimeShardOf(object.interval.end);
    ObjectBuckets(object, options.term_buckets, &buckets);
    for (uint32_t t = t0; t <= t1; ++t) {
      const Interval local =
          scored ? object.interval
                 : Interval(
                       std::max(object.interval.st, ranges[t].st) -
                           ranges[t].st,
                       std::min(object.interval.end, ranges[t].end) -
                           ranges[t].st);
      for (const uint32_t b : buckets) {
        const size_t shard = engine->ShardAt(t, b);
        locals[shard].Append(local, object.elements);
        id_maps[shard].push_back(object.id);
      }
    }
  }

  const bool durable = !options.wal_dir.empty();
  if (durable) {
    std::error_code ec;
    std::filesystem::create_directories(options.wal_dir, ec);
    if (ec) {
      return Status::IoError("cannot create wal_dir " + options.wal_dir +
                             ": " + ec.message());
    }
  }

  ShardOptions shard_options;
  shard_options.max_queue_depth = options.max_queue_depth;
  shard_options.max_batch = options.max_batch;
  shard_options.localize = !scored;
  shard_options.batch_hook = options.batch_hook;

  engine->shards_.reserve(num_shards);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    const uint32_t t = static_cast<uint32_t>(shard / options.term_buckets);
    const Interval& range = ranges[t];
    IRHINT_RETURN_NOT_OK(locals[shard].Finalize());

    std::unique_ptr<TemporalIrIndex> index;
    if (durable) {
      const std::string dir =
          options.wal_dir + "/shard-" +
          std::to_string(t) + "-" +
          std::to_string(shard % options.term_buckets);
      std::error_code ec;
      if (std::filesystem::exists(dir, ec) &&
          !std::filesystem::is_empty(dir, ec)) {
        return Status::InvalidArgument(
            "serve wal_dir must be fresh; found existing state in " + dir);
      }
      DurableIndexOptions durable_options;
      durable_options.kind = options.kind;
      durable_options.config = options.config;
      durable_options.durability = options.durability;
      durable_options.checkpoint_bytes = options.checkpoint_bytes;
      durable_options.snapshot_read.use_mmap = options.mmap_snapshots;
      StatusOr<std::unique_ptr<DurableIndex>> opened =
          DurableIndex::Open(dir, durable_options);
      IRHINT_RETURN_NOT_OK(opened.status());
      IRHINT_RETURN_NOT_OK((*opened)->Build(locals[shard]));
      index = std::move(opened).value();
    } else {
      index = CreateIndex(options.kind, options.config);
      IRHINT_RETURN_NOT_OK(index->Build(locals[shard]));
    }
    engine->shards_.push_back(std::make_unique<Shard>(
        shard, range, std::move(index), std::move(id_maps[shard]),
        shard_options));
    // Free the replicated sub-corpus before building the next shard.
    locals[shard] = Corpus();
  }
  engine->next_object_id_.store(static_cast<ObjectId>(corpus.size()),
                                std::memory_order_relaxed);
  for (std::unique_ptr<Shard>& shard : engine->shards_) shard->Start();
  return engine;
}

ServeEngine::~ServeEngine() {
  for (std::unique_ptr<Shard>& shard : shards_) shard->Stop();
}

uint32_t ServeEngine::TimeShardOf(Time t) const {
  // shard_starts_ is strictly ascending and starts at 0, so the covering
  // shard is the last start <= t.
  const auto it =
      std::upper_bound(shard_starts_.begin(), shard_starts_.end(), t);
  return static_cast<uint32_t>(it - shard_starts_.begin()) - 1;
}

void ServeEngine::RouteQuery(const Query& query,
                             std::vector<Shard*>* targets) const {
  targets->clear();
  const uint32_t t0 = TimeShardOf(query.interval.st);
  const uint32_t t1 = TimeShardOf(query.interval.end);
  for (uint32_t t = t0; t <= t1; ++t) {
    if (term_buckets_ == 1) {
      targets->push_back(shards_[ShardAt(t, 0)].get());
    } else if (query.elements.empty()) {
      // Element-less queries cannot pick a bucket; fan out to all (the
      // merge deduplicates replicas).
      for (uint32_t b = 0; b < term_buckets_; ++b) {
        targets->push_back(shards_[ShardAt(t, b)].get());
      }
    } else {
      // Any one query element suffices: matching objects contain every
      // query element, so they are replicated into this element's bucket.
      targets->push_back(shards_[ShardAt(
          t, TermBucket(query.elements[0], term_buckets_))].get());
    }
  }
}

void ServeEngine::RouteTopK(const Query& query,
                            std::vector<Shard*>* targets) const {
  targets->clear();
  const uint32_t t0 = TimeShardOf(query.interval.st);
  const uint32_t t1 = TimeShardOf(query.interval.end);
  std::vector<uint32_t> buckets;
  if (term_buckets_ == 1 || query.elements.empty()) {
    // One bucket, or element-less ranked queries (empty top-k either way,
    // but the legs must still run so NotSupported surfaces): bucket 0 or
    // all of them.
    for (uint32_t b = 0; b < term_buckets_; ++b) buckets.push_back(b);
  } else {
    // Disjunctive scoring: an object matching ANY query element can rank,
    // and it is only guaranteed replicated into that element's bucket —
    // so every element's bucket must be visited (replicas in several
    // buckets score identically and the merge dedups them).
    for (const ElementId element : query.elements) {
      buckets.push_back(TermBucket(element, term_buckets_));
    }
    std::sort(buckets.begin(), buckets.end());
    buckets.erase(std::unique(buckets.begin(), buckets.end()), buckets.end());
  }
  for (uint32_t t = t0; t <= t1; ++t) {
    for (const uint32_t b : buckets) {
      targets->push_back(shards_[ShardAt(t, b)].get());
    }
  }
}

void ServeEngine::RouteObject(const Object& object,
                              std::vector<Shard*>* targets) const {
  targets->clear();
  const uint32_t t0 = TimeShardOf(object.interval.st);
  const uint32_t t1 = TimeShardOf(object.interval.end);
  std::vector<uint32_t> buckets;
  ObjectBuckets(object, term_buckets_, &buckets);
  for (uint32_t t = t0; t <= t1; ++t) {
    for (const uint32_t b : buckets) {
      targets->push_back(shards_[ShardAt(t, b)].get());
    }
  }
}

ResultFuture ServeEngine::Submit(const Query& query) {
  std::vector<Shard*> targets;
  RouteQuery(query, &targets);
  auto state = std::make_shared<ResultState>(
      static_cast<uint32_t>(targets.size()));
  for (Shard* shard : targets) {
    if (!shard->TrySubmitQuery(query, state)) {
      state->FailLeg(Status::Unavailable(
          "shard " + std::to_string(shard->shard_index()) +
          " queue full; query shed"));
    }
  }
  return ResultFuture(std::move(state));
}

StatusOr<std::vector<ObjectId>> ServeEngine::Execute(const Query& query) {
  return Submit(query).Get();
}

TopKFuture ServeEngine::SubmitTopK(const Query& query, uint32_t k) {
  std::vector<Shard*> targets;
  RouteTopK(query, &targets);
  auto state = std::make_shared<TopKState>(
      static_cast<uint32_t>(targets.size()), k);
  for (Shard* shard : targets) {
    if (!shard->TrySubmitTopK(query, k, state)) {
      state->FailLeg(Status::Unavailable(
          "shard " + std::to_string(shard->shard_index()) +
          " queue full; query shed"));
    }
  }
  return TopKFuture(std::move(state));
}

StatusOr<std::vector<ScoredHit>> ServeEngine::ExecuteTopK(const Query& query,
                                                          uint32_t k) {
  return SubmitTopK(query, k).Get();
}

Status ServeEngine::RunUpdate(bool erase, const Object& object) {
  std::vector<Shard*> targets;
  RouteObject(object, &targets);
  auto state = std::make_shared<ResultState>(
      static_cast<uint32_t>(targets.size()));
  for (Shard* shard : targets) {
    shard->SubmitUpdate(erase, object, state);
  }
  return state->Wait().status();
}

Status ServeEngine::Insert(const Object& object) {
  if (object.id < next_object_id_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument(
        "insert ids must strictly increase (single-writer model)");
  }
  IRHINT_RETURN_NOT_OK(RunUpdate(/*erase=*/false, object));
  next_object_id_.store(object.id + 1, std::memory_order_relaxed);
  return Status::OK();
}

StatusOr<ObjectId> ServeEngine::AppendInsert(
    Interval interval, std::vector<ElementId> elements) {
  // Descriptions carry set semantics, like Corpus::Finalize produces.
  std::sort(elements.begin(), elements.end());
  elements.erase(std::unique(elements.begin(), elements.end()),
                 elements.end());
  Object object(next_object_id_.load(std::memory_order_relaxed), interval,
                std::move(elements));
  IRHINT_RETURN_NOT_OK(Insert(object));
  return object.id;
}

Status ServeEngine::Erase(const Object& object) {
  return RunUpdate(/*erase=*/true, object);
}

void ServeEngine::WaitIdle() {
  for (const std::unique_ptr<Shard>& shard : shards_) shard->WaitIdle();
}

Status ServeEngine::Flush() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (auto* durable = dynamic_cast<DurableIndex*>(shard->index())) {
      IRHINT_RETURN_NOT_OK(durable->Flush());
    }
  }
  return Status::OK();
}

EngineStats ServeEngine::Stats() const {
  EngineStats stats;
  stats.shards.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    ShardStats s = shard->Stats();
    stats.total_submitted += s.submitted;
    stats.total_shed += s.shed;
    stats.total_completed += s.completed;
    stats.total_executed_queries += s.executed_queries;
    stats.total_dedup_hits += s.dedup_hits;
    stats.total_updates_applied += s.updates_applied;
    stats.total_batches += s.batches;
    stats.max_queue_depth = std::max(stats.max_queue_depth, s.queue_depth);
    stats.max_peak_queue_depth =
        std::max(stats.max_peak_queue_depth, s.peak_queue_depth);
    stats.shards.push_back(std::move(s));
  }
  return stats;
}

size_t ServeEngine::MemoryUsageBytes() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->index()->MemoryUsageBytes();
  }
  return total;
}

}  // namespace serve
}  // namespace irhint

#include "serve/shard.h"

#include <algorithm>
#include <tuple>

#include "common/timer.h"

namespace irhint {
namespace serve {

namespace {

/// Strict weak order grouping identical queries next to each other so the
/// batch executor can reuse one descent for all duplicates.
bool QueryLess(const Query& a, const Query& b) {
  return std::tie(a.interval.st, a.interval.end, a.elements) <
         std::tie(b.interval.st, b.interval.end, b.elements);
}

bool QueryEqual(const Query& a, const Query& b) {
  return a.interval == b.interval && a.elements == b.elements;
}

void BumpMax(std::atomic<uint64_t>& cell, uint64_t value) {
  uint64_t seen = cell.load(std::memory_order_relaxed);
  while (seen < value &&
         !cell.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

Shard::Shard(size_t shard_index, Interval time_range,
             std::unique_ptr<TemporalIrIndex> index,
             std::vector<ObjectId> id_map, ShardOptions options)
    : shard_index_(shard_index),
      time_range_(time_range),
      options_(std::move(options)),
      index_(std::move(index)),
      id_map_(std::move(id_map)) {}

Shard::~Shard() { Stop(); }

void Shard::Start() {
  worker_ = std::thread([this]() { WorkerLoop(); });
}

void Shard::Stop() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
    work_cv_.NotifyAll();
    // Unblock SubmitUpdate() callers waiting for queue space.
    idle_cv_.NotifyAll();
  }
  if (worker_.joinable()) worker_.join();
}

bool Shard::TrySubmitQuery(const Query& query,
                           std::shared_ptr<ResultState> result) {
  {
    MutexLock lock(&mu_);
    if (!stopping_ && queue_.size() < options_.max_queue_depth) {
      Request request;
      request.kind = Request::Kind::kQuery;
      // Localized at enqueue so the batch executor's duplicate grouping
      // compares shard-local coordinates.
      request.query.interval = Localize(query.interval);
      request.query.elements = query.elements;
      request.result = std::move(result);
      queue_.push_back(std::move(request));
      submitted_.fetch_add(1, std::memory_order_relaxed);
      BumpMax(peak_queue_depth_, queue_.size());
      work_cv_.NotifyOne();
      return true;
    }
  }
  shed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool Shard::TrySubmitTopK(const Query& query, uint32_t k,
                          std::shared_ptr<TopKState> result) {
  {
    MutexLock lock(&mu_);
    if (!stopping_ && queue_.size() < options_.max_queue_depth) {
      Request request;
      request.kind = Request::Kind::kTopK;
      // Scored engines run with localize=false, so this is the identity;
      // kept for symmetry with TrySubmitQuery.
      request.query.interval = Localize(query.interval);
      request.query.elements = query.elements;
      request.k = k;
      request.topk = std::move(result);
      queue_.push_back(std::move(request));
      submitted_.fetch_add(1, std::memory_order_relaxed);
      BumpMax(peak_queue_depth_, queue_.size());
      work_cv_.NotifyOne();
      return true;
    }
  }
  shed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void Shard::SubmitUpdate(bool erase, Object object,
                         std::shared_ptr<ResultState> result) {
  Request request;
  request.kind = erase ? Request::Kind::kErase : Request::Kind::kInsert;
  object.interval = Localize(object.interval);
  request.object = std::move(object);
  request.result = std::move(result);
  std::shared_ptr<ResultState> reject;
  {
    MutexLock lock(&mu_);
    // Backpressure, not shedding: block the ingesting thread until the
    // worker drains below the limit (or the shard shuts down).
    while (!stopping_ && queue_.size() >= options_.max_queue_depth) {
      idle_cv_.Wait(&mu_);
    }
    if (stopping_) {
      reject = std::move(request.result);
    } else {
      queue_.push_back(std::move(request));
      submitted_.fetch_add(1, std::memory_order_relaxed);
      BumpMax(peak_queue_depth_, queue_.size());
      work_cv_.NotifyOne();
    }
  }
  if (reject != nullptr) {
    reject->FailLeg(Status::NotSupported("shard is shutting down"));
  }
}

void Shard::WaitIdle() {
  MutexLock lock(&mu_);
  while (!queue_.empty() || executing_) idle_cv_.Wait(&mu_);
}

ShardStats Shard::Stats() const {
  ShardStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.executed_queries = executed_queries_.load(std::memory_order_relaxed);
  stats.dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
  stats.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.max_batch = max_batch_.load(std::memory_order_relaxed);
  stats.peak_queue_depth = peak_queue_depth_.load(std::memory_order_relaxed);
  stats.busy_seconds =
      static_cast<double>(busy_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  {
    MutexLock lock(&mu_);
    stats.queue_depth = queue_.size();
  }
  return stats;
}

void Shard::WorkerLoop() {
  std::vector<Request> batch;
  while (true) {
    batch.clear();
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && !stopping_) work_cv_.Wait(&mu_);
      if (queue_.empty() && stopping_) return;
      const size_t take = std::min(queue_.size(), options_.max_batch);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      executing_ = true;
      // Blocked SubmitUpdate() callers can refill the freed queue slots.
      idle_cv_.NotifyAll();
    }
    ExecuteBatch(&batch);
    {
      MutexLock lock(&mu_);
      executing_ = false;
      if (queue_.empty()) idle_cv_.NotifyAll();
    }
  }
}

void Shard::ExecuteBatch(std::vector<Request>* batch) {
  if (options_.batch_hook) options_.batch_hook(shard_index_);
  Timer timer;
  batches_.fetch_add(1, std::memory_order_relaxed);
  BumpMax(max_batch_, batch->size());

  // Updates first, in submission order (ids are strictly increasing, so
  // order matters); queries in the batch then observe every update that
  // was admitted before the batch formed.
  std::vector<size_t> query_indices;
  std::vector<size_t> topk_indices;
  query_indices.reserve(batch->size());
  for (size_t i = 0; i < batch->size(); ++i) {
    Request& request = (*batch)[i];
    if (request.kind == Request::Kind::kQuery) {
      query_indices.push_back(i);
    } else if (request.kind == Request::Kind::kTopK) {
      topk_indices.push_back(i);
    } else {
      ApplyUpdate(&request);
    }
  }

  // Group identical queries: one index descent per distinct query, the
  // ids fan out to every duplicate. Zipf-popular queries make this the
  // main amortization lever of the batch.
  std::stable_sort(query_indices.begin(), query_indices.end(),
                   [batch](size_t a, size_t b) {
                     return QueryLess((*batch)[a].query, (*batch)[b].query);
                   });
  std::vector<ObjectId> local_ids;
  std::vector<ObjectId> global_ids;
  for (size_t i = 0; i < query_indices.size(); ++i) {
    Request& request = (*batch)[query_indices[i]];
    if (i > 0 &&
        QueryEqual(request.query, (*batch)[query_indices[i - 1]].query)) {
      dedup_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      index_->Query(request.query, &local_ids);
      executed_queries_.fetch_add(1, std::memory_order_relaxed);
      global_ids.clear();
      global_ids.reserve(local_ids.size());
      for (const ObjectId local : local_ids) {
        global_ids.push_back(id_map_[local]);
      }
    }
    request.result->CompleteLeg(global_ids);
    completed_.fetch_add(1, std::memory_order_relaxed);
  }

  // Top-k legs run after the batch's updates for the same visibility
  // guarantee as Boolean queries. No duplicate grouping: ranked traffic
  // is rarer and each leg's k can differ.
  for (const size_t i : topk_indices) ExecuteTopK(&(*batch)[i]);

  busy_nanos_.fetch_add(timer.Nanos(), std::memory_order_relaxed);
}

void Shard::ExecuteTopK(Request* request) {
  std::vector<ScoredHit> hits;
  const Status status = index_->TopKQuery(request->query, request->k, &hits);
  executed_queries_.fetch_add(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (!status.ok()) {
    request->topk->FailLeg(status);
    return;
  }
  // Report global ids; scores are already global because scored shards
  // never rebase intervals (options_.localize == false).
  for (ScoredHit& hit : hits) hit.id = id_map_[hit.id];
  request->topk->CompleteLeg(std::move(hits));
}

void Shard::ApplyUpdate(Request* request) {
  const Object& object = request->object;
  Status status;
  if (request->kind == Request::Kind::kInsert) {
    Object local = object;
    local.id = static_cast<ObjectId>(id_map_.size());
    status = index_->Insert(local);
    if (status.ok()) id_map_.push_back(object.id);
  } else {
    // The id map is ascending (inserts arrive in global id order), so the
    // global→local translation is a binary search.
    const auto it =
        std::lower_bound(id_map_.begin(), id_map_.end(), object.id);
    if (it == id_map_.end() || *it != object.id) {
      status = Status::NotFound("object not mapped on this shard");
    } else {
      Object local = object;
      local.id = static_cast<ObjectId>(it - id_map_.begin());
      status = index_->Erase(local);
    }
  }
  updates_applied_.fetch_add(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (status.ok()) {
    request->result->CompleteLeg({});
  } else {
    request->result->FailLeg(status);
  }
}

}  // namespace serve
}  // namespace irhint

// Completion futures shared between the query router and the shard
// workers. A routed request owns one ResultState with one "leg" per
// target shard; legs complete (or fail) in any order on the shard worker
// threads, and the submitting client blocks in ResultFuture::Get() until
// every leg has landed. The merge is deterministic: per-leg id vectors
// are concatenated, sorted and deduplicated, so the final result is
// byte-identical for any shard count, bucket count, thread count or
// completion order (the property tests/serve_test.cc locks in).
//
// Concurrency (DESIGN.md §11): one leaf Mutex per state object,
// "serve::ResultState::mu" — it is never held while acquiring another
// lock (completion copies the payload in, Get() moves it out), so it
// cannot participate in a cycle.

#ifndef IRHINT_SERVE_RESULT_FUTURE_H_
#define IRHINT_SERVE_RESULT_FUTURE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/synchronization.h"
#include "common/thread_annotations.h"
#include "data/object.h"

namespace irhint {
namespace serve {

/// \brief Shared completion state of one routed request.
///
/// Constructed with the number of legs (target shards); every leg must be
/// resolved exactly once via CompleteLeg() or FailLeg(). Queries carry id
/// payloads; updates use empty payloads and only the status matters.
class ResultState {
 public:
  explicit ResultState(uint32_t legs) : pending_(legs) {}

  ResultState(const ResultState&) = delete;
  ResultState& operator=(const ResultState&) = delete;

  /// \brief Resolve one leg with the ids a shard reported (global ids;
  /// replicas across shards are deduplicated by the final merge).
  void CompleteLeg(std::vector<ObjectId> ids) {
    MutexLock lock(&mu_);
    legs_.push_back(std::move(ids));
    FinishLegLocked();
  }

  /// \brief Resolve one leg as failed (shed under admission control, or an
  /// update error). The first failure wins; the request still waits for
  /// the remaining legs so no completion is ever lost.
  void FailLeg(const Status& status) {
    MutexLock lock(&mu_);
    if (error_.ok() && !status.ok()) error_ = status;
    FinishLegLocked();
  }

  /// \brief Block until every leg resolved; single consumer. Returns the
  /// first leg failure, or the merged (sorted, duplicate-free) ids.
  StatusOr<std::vector<ObjectId>> Wait() {
    MutexLock lock(&mu_);
    while (pending_ > 0) cv_.Wait(&mu_);
    if (!error_.ok()) return error_;
    size_t total = 0;
    for (const std::vector<ObjectId>& leg : legs_) total += leg.size();
    std::vector<ObjectId> merged;
    merged.reserve(total);
    for (std::vector<ObjectId>& leg : legs_) {
      merged.insert(merged.end(), leg.begin(), leg.end());
    }
    legs_.clear();
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    return merged;
  }

  /// \brief True once every leg has resolved (non-blocking probe).
  bool Ready() const {
    MutexLock lock(&mu_);
    return (pending_ == 0);
  }

 private:
  void FinishLegLocked() IRHINT_REQUIRES(mu_) {
    if (pending_ > 0) --pending_;
    if (pending_ == 0) cv_.NotifyAll();
  }

  mutable Mutex mu_{"serve::ResultState::mu"};
  CondVar cv_;
  uint32_t pending_ IRHINT_GUARDED_BY(mu_) = 0;
  std::vector<std::vector<ObjectId>> legs_ IRHINT_GUARDED_BY(mu_);
  Status error_ IRHINT_GUARDED_BY(mu_);
};

/// \brief Shared completion state of one routed top-k request
/// (DESIGN.md §12). Same leg protocol as ResultState, but legs carry
/// (id, score) hits and the merge keeps the ranked order: replicas of an
/// object across shards report identical scores (shards hold whole
/// objects and impacts are a pure function of term and interval), so the
/// merge dedups by id, re-sorts by the ranked total order (score desc,
/// id asc) and truncates to k — byte-identical to a 1-shard engine.
class TopKState {
 public:
  TopKState(uint32_t legs, uint32_t k) : pending_(legs), k_(k) {}

  TopKState(const TopKState&) = delete;
  TopKState& operator=(const TopKState&) = delete;

  /// \brief Resolve one leg with a shard's local top-k (global ids).
  void CompleteLeg(std::vector<ScoredHit> hits) {
    MutexLock lock(&mu_);
    legs_.push_back(std::move(hits));
    FinishLegLocked();
  }

  /// \brief Resolve one leg as failed; first failure wins, all legs are
  /// still awaited.
  void FailLeg(const Status& status) {
    MutexLock lock(&mu_);
    if (error_.ok() && !status.ok()) error_ = status;
    FinishLegLocked();
  }

  /// \brief Block until every leg resolved; single consumer. Returns the
  /// first leg failure, or the merged global top-k.
  StatusOr<std::vector<ScoredHit>> Wait() {
    MutexLock lock(&mu_);
    while (pending_ > 0) cv_.Wait(&mu_);
    if (!error_.ok()) return error_;
    std::vector<ScoredHit> merged;
    for (std::vector<ScoredHit>& leg : legs_) {
      merged.insert(merged.end(), leg.begin(), leg.end());
    }
    legs_.clear();
    std::sort(merged.begin(), merged.end(),
              [](const ScoredHit& a, const ScoredHit& b) {
                return a.id < b.id;
              });
    merged.erase(std::unique(merged.begin(), merged.end(),
                             [](const ScoredHit& a, const ScoredHit& b) {
                               return a.id == b.id;
                             }),
                 merged.end());
    std::sort(merged.begin(), merged.end(), ScoredBetter);
    if (merged.size() > static_cast<size_t>(k_)) merged.resize(k_);
    return merged;
  }

  bool Ready() const {
    MutexLock lock(&mu_);
    return (pending_ == 0);
  }

 private:
  void FinishLegLocked() IRHINT_REQUIRES(mu_) {
    if (pending_ > 0) --pending_;
    if (pending_ == 0) cv_.NotifyAll();
  }

  mutable Mutex mu_{"serve::ResultState::mu"};
  CondVar cv_;
  uint32_t pending_ IRHINT_GUARDED_BY(mu_) = 0;
  const uint32_t k_;  // unguarded: immutable after construction
  std::vector<std::vector<ScoredHit>> legs_ IRHINT_GUARDED_BY(mu_);
  Status error_ IRHINT_GUARDED_BY(mu_);
};

/// \brief Client-side handle on a submitted request. Move-friendly thin
/// wrapper; Get() blocks until the router's legs are all resolved.
class ResultFuture {
 public:
  ResultFuture() = default;
  explicit ResultFuture(std::shared_ptr<ResultState> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  bool Ready() const { return state_ != nullptr && state_->Ready(); }

  /// \brief Block for the merged result (see ResultState::Wait).
  StatusOr<std::vector<ObjectId>> Get() {
    if (state_ == nullptr) {
      return Status::InvalidArgument("Get() on an empty ResultFuture");
    }
    return state_->Wait();
  }

 private:
  // unguarded: owned by the single client thread holding the future
  std::shared_ptr<ResultState> state_;
};

/// \brief Client-side handle on a submitted top-k request.
class TopKFuture {
 public:
  TopKFuture() = default;
  explicit TopKFuture(std::shared_ptr<TopKState> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  bool Ready() const { return state_ != nullptr && state_->Ready(); }

  /// \brief Block for the merged ranked result (see TopKState::Wait).
  StatusOr<std::vector<ScoredHit>> Get() {
    if (state_ == nullptr) {
      return Status::InvalidArgument("Get() on an empty TopKFuture");
    }
    return state_->Wait();
  }

 private:
  // unguarded: owned by the single client thread holding the future
  std::shared_ptr<TopKState> state_;
};

}  // namespace serve
}  // namespace irhint

#endif  // IRHINT_SERVE_RESULT_FUTURE_H_

// The sharded serving engine (DESIGN.md §11): partitions a corpus into
// time_shards contiguous time ranges (optionally sub-partitioned into
// term_buckets hashed-term buckets, boolIR-style), builds one index per
// shard — plain in-memory, or a DurableIndex over a per-shard WAL
// directory — and serves concurrent traffic through a thread-safe
// Submit(Query) -> ResultFuture API.
//
// Routing: an object is replicated into every time shard its lifespan
// overlaps; with term_buckets > 1 it lands in bucket h(e) for each of its
// elements e (so any single query element locates every matching object).
// A query fans out only to the time shards overlapping its interval, and
// within each to the bucket of its first element (all buckets for
// element-less queries). The future merges per-shard ids deterministically
// (sort + dedup), so results are byte-identical to a 1-shard engine for
// any shard/bucket/thread count.
//
// Updates: Insert/Erase route to the same shard set as placement and ride
// the per-shard queues (the worker is the only thread touching its index,
// so plain indexes need no locking). The engine is single-writer, like
// the paper's Section 5.5 update model: one thread issues updates with
// strictly increasing ids; queries are fully concurrent.

#ifndef IRHINT_SERVE_ENGINE_H_
#define IRHINT_SERVE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/factory.h"
#include "data/corpus.h"
#include "serve/shard.h"
#include "wal/wal_writer.h"

namespace irhint {
namespace serve {

/// \brief Engine configuration. Defaults serve an in-memory engine of 4
/// time shards with no term sub-partitioning.
struct ServeOptions {
  /// Contiguous time-range partitions (>= 1). Clamped down when the
  /// domain has fewer time points than shards.
  uint32_t time_shards = 4;
  /// Hashed-term sub-partitions per time shard (>= 1; 1 disables).
  uint32_t term_buckets = 1;

  /// Index kind (and tuning) instantiated per shard.
  IndexKind kind = IndexKind::kIrHintPerf;
  IndexConfig config;

  /// Admission control: per-shard bounded queue depth; queries past it
  /// are shed with kUnavailable, updates block (backpressure).
  size_t max_queue_depth = 1024;
  /// Batch coalescing cap: requests popped per worker wakeup.
  size_t max_batch = 64;

  /// Non-empty: durable mode. Each shard owns a DurableIndex under
  /// wal_dir/shard-<t>-<b>; the directories must be fresh (the engine
  /// does not yet recover a sharded layout across runs).
  std::string wal_dir;
  WalDurability durability = WalDurability::kBatch;
  uint64_t checkpoint_bytes = 0;
  /// Checkpoint snapshots load back through mmap (zero-copy) when true.
  bool mmap_snapshots = true;

  /// Test hook forwarded to every shard (see ShardOptions::batch_hook).
  std::function<void(size_t shard_index)> batch_hook;
};

/// \brief Aggregate of the per-shard counters (sums; max for the gauges).
struct EngineStats {
  std::vector<ShardStats> shards;
  uint64_t total_submitted = 0;
  uint64_t total_shed = 0;
  uint64_t total_completed = 0;
  uint64_t total_executed_queries = 0;
  uint64_t total_dedup_hits = 0;
  uint64_t total_updates_applied = 0;
  uint64_t total_batches = 0;
  uint64_t max_queue_depth = 0;
  uint64_t max_peak_queue_depth = 0;
};

/// \brief Deterministic hashed-term bucket (splitmix64 finalizer).
uint32_t TermBucket(ElementId element, uint32_t buckets);

/// \brief N-shard serving engine over one corpus.
class ServeEngine {
 public:
  /// \brief Partition `corpus`, bulk-build every shard index, start the
  /// workers. The corpus must be finalized; objects keep their global ids
  /// in every result.
  static StatusOr<std::unique_ptr<ServeEngine>> Create(
      const Corpus& corpus, const ServeOptions& options);

  /// Stops every shard worker (outstanding requests complete first).
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  // -- Query path (thread-safe, any number of concurrent callers) ----------

  /// \brief Route the query to the shards overlapping its interval and
  /// return a future over the merged result. Never blocks on shard work;
  /// a full target queue fails that leg with kUnavailable (the future's
  /// Get() then reports the shed).
  ResultFuture Submit(const Query& query);

  /// \brief Submit + Get in one call.
  StatusOr<std::vector<ObjectId>> Execute(const Query& query);

  /// \brief Route a ranked top-k query (kind must support TopKQuery, see
  /// KindSupportsTopK) to the shards overlapping its interval — across
  /// the buckets of ALL its elements, the query being disjunctive — and
  /// return a future over the deterministically merged global top-k.
  TopKFuture SubmitTopK(const Query& query, uint32_t k);

  /// \brief SubmitTopK + Get in one call.
  StatusOr<std::vector<ScoredHit>> ExecuteTopK(const Query& query, uint32_t k);

  // -- Update path (single writer, Section 5.5 model) -----------------------

  /// \brief Route an insert to every covering shard and wait for it to
  /// apply. `object.id` must exceed every id inserted so far.
  Status Insert(const Object& object);

  /// \brief Convenience for live ingestion: assigns the next global id.
  StatusOr<ObjectId> AppendInsert(Interval interval,
                                  std::vector<ElementId> elements);

  /// \brief Route a tombstoning erase (same interval/description as the
  /// insert) to every covering shard and wait.
  Status Erase(const Object& object);

  // -- Control & observability ----------------------------------------------

  /// \brief Block until every shard queue is drained and idle.
  void WaitIdle();

  /// \brief Durable mode: fsync every shard's WAL. No-op otherwise.
  Status Flush();

  EngineStats Stats() const;

  /// \brief Heap footprint across shard indexes. Quiesce (WaitIdle) first:
  /// plain-index shards are worker-owned.
  size_t MemoryUsageBytes() const;

  uint32_t time_shards() const { return time_shards_; }
  uint32_t term_buckets() const { return term_buckets_; }
  size_t num_shards() const { return shards_.size(); }
  const Interval& shard_time_range(size_t shard) const {
    return shards_[shard]->time_range();
  }
  /// \brief The id AppendInsert() will assign next.
  ObjectId next_object_id() const { return next_object_id_; }

 private:
  ServeEngine() = default;

  /// Shards overlapping [query interval] x [bucket of the query terms].
  void RouteQuery(const Query& query, std::vector<Shard*>* targets) const;
  /// Shards overlapping [query interval] x [buckets of ALL query terms]
  /// (disjunctive semantics: any one element can rank an object).
  void RouteTopK(const Query& query, std::vector<Shard*>* targets) const;
  /// Shards that must hold `object` under the placement rule.
  void RouteObject(const Object& object, std::vector<Shard*>* targets) const;
  Status RunUpdate(bool erase, const Object& object);

  size_t ShardAt(uint32_t time_shard, uint32_t bucket) const {
    return static_cast<size_t>(time_shard) * term_buckets_ + bucket;
  }
  /// First time shard whose range may overlap a point at or after `t`.
  uint32_t TimeShardOf(Time t) const;

  uint32_t time_shards_ = 1;         // unguarded: immutable after Create
  uint32_t term_buckets_ = 1;        // unguarded: immutable after Create
  std::vector<Time> shard_starts_;   // unguarded: immutable after Create
  std::vector<std::unique_ptr<Shard>> shards_;  // unguarded: immutable ptrs
  // Single-writer id allocator for AppendInsert (monitoring reads relaxed).
  std::atomic<ObjectId> next_object_id_{0};
};

}  // namespace serve
}  // namespace irhint

#endif  // IRHINT_SERVE_ENGINE_H_

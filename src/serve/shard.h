// One serving shard: a time-range (and optionally hashed-term) partition
// of the corpus, owning its own TemporalIrIndex (plain in-memory or a
// DurableIndex over a per-shard WAL directory) plus a bounded request
// queue drained by a dedicated worker thread.
//
// Batching: the worker pops every queued request up to max_batch in one
// lock acquisition — the natural coalescing window is however long the
// previous batch took — applies the batch's updates in submission order,
// then sorts its queries so identical ones (common under Zipf traffic)
// run the index descent once and fan the ids out to every duplicate.
//
// Admission control: TrySubmitQuery() rejects when the queue is at
// max_queue_depth (the router fails that leg with kUnavailable and the
// shard counts a shed); SubmitUpdate() instead blocks — shedding a query
// costs a retry, shedding an update would lose data — so ingestion sees
// backpressure, not loss.
//
// Concurrency (DESIGN.md §11): "serve::Shard::queue" guards the queue and
// the worker handshake; it is released before the batch executes, so index
// locks (e.g. "DurableIndex::state") and the ResultState leaf mutex are
// only ever acquired with no shard lock held. The index and the local→
// global id map are touched exclusively by the worker thread once Start()
// has run (bulk build happens before, on the constructing thread).

#ifndef IRHINT_SERVE_SHARD_H_
#define IRHINT_SERVE_SHARD_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/synchronization.h"
#include "common/thread_annotations.h"
#include "core/temporal_ir_index.h"
#include "data/object.h"
#include "serve/result_future.h"

namespace irhint {
namespace serve {

/// \brief Monotonic counters plus instantaneous gauges for one shard.
/// Snapshot reads are relaxed and best-effort (monitoring semantics, like
/// QueryCounters).
struct ShardStats {
  uint64_t submitted = 0;        ///< requests accepted into the queue
  uint64_t shed = 0;             ///< queries rejected at max_queue_depth
  uint64_t completed = 0;        ///< requests resolved (incl. dedup twins)
  uint64_t executed_queries = 0; ///< distinct index descents performed
  uint64_t dedup_hits = 0;       ///< batched duplicates served by a twin
  uint64_t updates_applied = 0;  ///< inserts + erases applied
  uint64_t batches = 0;          ///< worker wakeups that processed >= 1 req
  uint64_t max_batch = 0;        ///< largest batch popped so far
  uint64_t queue_depth = 0;      ///< instantaneous queued requests
  uint64_t peak_queue_depth = 0; ///< high-water mark of queue_depth
  double busy_seconds = 0.0;     ///< wall time spent executing batches
};

/// \brief Knobs one shard needs (the engine fans ServeOptions out).
struct ShardOptions {
  size_t max_queue_depth = 1024;
  size_t max_batch = 64;
  /// Clamp+rebase intervals into the shard's local frame at enqueue.
  /// Scored engines disable this: impact scores are a function of the
  /// GLOBAL interval end, so every shard must keep global coordinates or
  /// replicas of one object would score differently across shards.
  bool localize = true;
  /// Test hook: runs on the worker thread before each batch executes (no
  /// lock held). The admission-control tests inject a sleep here to make
  /// a shard slow; never set in production configs.
  std::function<void(size_t shard_index)> batch_hook;
};

/// \brief A single serving partition. Construction takes the already
/// bulk-built index plus the local→global id map; Start() arms the worker.
class Shard {
 public:
  /// \param time_range   the [lo, hi] slice of the time domain this shard
  ///                     covers (hi is saturated for the last shard).
  /// \param id_map       global id of each local id, ascending (bulk-built
  ///                     objects; live inserts append).
  Shard(size_t shard_index, Interval time_range,
        std::unique_ptr<TemporalIrIndex> index,
        std::vector<ObjectId> id_map, ShardOptions options);

  /// Stops and joins the worker; any still-queued requests are resolved
  /// (queries execute, updates apply) before the thread exits.
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// \brief Arm the worker thread. Call exactly once, after construction.
  void Start();

  /// \brief Drain the queue and join the worker. Idempotent; the
  /// destructor calls it too.
  void Stop();

  /// \brief Enqueue one query leg. Returns false (and counts a shed)
  /// when the queue is at max_queue_depth; the caller must then fail the
  /// leg with kUnavailable.
  bool TrySubmitQuery(const Query& query, std::shared_ptr<ResultState> result);

  /// \brief Enqueue one ranked top-k leg (same admission control as
  /// TrySubmitQuery). The worker answers it with the shard index's
  /// TopKQuery and reports global ids; indexes without scored postings
  /// fail the leg with NotSupported.
  bool TrySubmitTopK(const Query& query, uint32_t k,
                     std::shared_ptr<TopKState> result);

  /// \brief Enqueue an insert (erase=false) or erase (erase=true) leg.
  /// Blocks while the queue is full — updates are never shed, they see
  /// backpressure instead. `object` carries the global id; the worker
  /// translates through the id map.
  void SubmitUpdate(bool erase, Object object,
                    std::shared_ptr<ResultState> result);

  /// \brief Block until the queue is empty and no batch is executing.
  void WaitIdle();

  ShardStats Stats() const;
  size_t shard_index() const { return shard_index_; }
  const Interval& time_range() const { return time_range_; }

  /// \brief The wrapped index. Only for thread-safe operations (e.g.
  /// DurableIndex::Flush) or quiesced inspection after WaitIdle().
  TemporalIrIndex* index() { return index_.get(); }
  const TemporalIrIndex* index() const { return index_.get(); }

  /// \brief Local objects currently mapped (bulk-built + live inserts).
  /// Quiesced inspection only.
  size_t mapped_objects() const { return id_map_.size(); }

 private:
  struct Request {
    enum class Kind { kQuery, kInsert, kErase, kTopK };
    Kind kind = Kind::kQuery;
    Query query;     // kQuery / kTopK payload
    uint32_t k = 0;  // kTopK payload
    Object object;   // update payload (global id)
    std::shared_ptr<ResultState> result;
    std::shared_ptr<TopKState> topk;  // kTopK completion state
  };

  void WorkerLoop();
  /// Runs one popped batch with no shard lock held.
  void ExecuteBatch(std::vector<Request>* batch) IRHINT_EXCLUDES(mu_);
  void ApplyUpdate(Request* request);
  void ExecuteTopK(Request* request);

  /// Clamp to the shard's time range and rebase to its local origin. The
  /// shard index covers only [lo, hi] rebased to 0, so its divisions are
  /// proportionally finer; correctness is unchanged because a query and an
  /// object replica that both overlap [lo, hi] intersect somewhere iff
  /// their clamped images do, and the router covers every shard the true
  /// intersection can fall in. Callers must only pass intervals
  /// overlapping time_range_ (the router guarantees it).
  Interval Localize(const Interval& interval) const {
    if (!options_.localize) return interval;
    return Interval(std::max(interval.st, time_range_.st) - time_range_.st,
                    std::min(interval.end, time_range_.end) - time_range_.st);
  }

  const size_t shard_index_;       // unguarded: immutable after construction
  const Interval time_range_;      // unguarded: immutable after construction
  const ShardOptions options_;     // unguarded: immutable after construction

  // Worker-thread-only once Start() ran (bulk build precedes Start on the
  // constructing thread); quiesced readers must WaitIdle() first.
  std::unique_ptr<TemporalIrIndex> index_;  // unguarded: worker-owned
  std::vector<ObjectId> id_map_;            // unguarded: worker-owned

  mutable Mutex mu_{"serve::Shard::queue"};
  CondVar work_cv_;
  CondVar idle_cv_;
  std::deque<Request> queue_ IRHINT_GUARDED_BY(mu_);
  bool stopping_ IRHINT_GUARDED_BY(mu_) = false;
  bool executing_ IRHINT_GUARDED_BY(mu_) = false;

  // Monitoring counters: relaxed atomics, racy-by-design best-effort reads
  // (same contract as core/query_counters.h).
  mutable std::atomic<uint64_t> submitted_{0};
  mutable std::atomic<uint64_t> shed_{0};
  mutable std::atomic<uint64_t> completed_{0};
  mutable std::atomic<uint64_t> executed_queries_{0};
  mutable std::atomic<uint64_t> dedup_hits_{0};
  mutable std::atomic<uint64_t> updates_applied_{0};
  mutable std::atomic<uint64_t> batches_{0};
  mutable std::atomic<uint64_t> max_batch_{0};
  mutable std::atomic<uint64_t> peak_queue_depth_{0};
  mutable std::atomic<uint64_t> busy_nanos_{0};

  std::thread worker_;  // unguarded: Start() arms it, Stop() joins it
};

}  // namespace serve
}  // namespace irhint

#endif  // IRHINT_SERVE_SHARD_H_

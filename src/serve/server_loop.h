// Line-oriented request loop shared by the irhint_server binary and the
// `irhint_cli serve` subcommand. One command per line on `in`, one reply
// line (or stats block) per command on `out` — trivially scriptable and
// unit-testable through stringstreams.
//
// Protocol (times and element ids are unsigned integers):
//   query <st> <end> [elem ...]      -> "OK <n> [id ...]" sorted ids
//   topk <k> <st> <end> [elem ...]   -> "OK <n> [id:score ...]" ranked
//                                       (score desc, id asc); needs a
//                                       scored-* engine kind
//   insert <st> <end> [elem ...]     -> "OK id=<id>"      assigned global id
//   erase <id> <st> <end> [elem ...] -> "OK"              tombstones the object
//   stats                            -> multi-line "stat <name> <value>" block
//   flush                            -> "OK"              fsync WALs (durable)
//   help                             -> command summary
//   quit                             -> "BYE" and the loop returns
// Any failure replies "ERR <Status::ToString()>"; unknown commands reply
// "ERR ..." and the loop continues. EOF behaves like quit.

#ifndef IRHINT_SERVE_SERVER_LOOP_H_
#define IRHINT_SERVE_SERVER_LOOP_H_

#include <istream>
#include <ostream>

#include "serve/engine.h"

namespace irhint {
namespace serve {

/// \brief Drive `engine` from a command stream until quit/EOF. Returns the
/// number of commands executed (excluding blank lines and comments).
size_t RunServerLoop(ServeEngine* engine, std::istream& in, std::ostream& out);

}  // namespace serve
}  // namespace irhint

#endif  // IRHINT_SERVE_SERVER_LOOP_H_

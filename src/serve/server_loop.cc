#include "serve/server_loop.h"

#include <sstream>
#include <string>
#include <vector>

namespace irhint {
namespace serve {

namespace {

bool ReadTime(std::istringstream& in, Time* out) {
  return static_cast<bool>(in >> *out);
}

std::vector<ElementId> ReadElements(std::istringstream& in) {
  std::vector<ElementId> elements;
  ElementId element = 0;
  while (in >> element) elements.push_back(element);
  return elements;
}

void ReplyStatus(std::ostream& out, const Status& status) {
  if (status.ok()) {
    out << "OK\n";
  } else {
    out << "ERR " << status.ToString() << "\n";
  }
}

void PrintStats(const EngineStats& stats, std::ostream& out) {
  out << "stat shards " << stats.shards.size() << "\n";
  out << "stat submitted " << stats.total_submitted << "\n";
  out << "stat shed " << stats.total_shed << "\n";
  out << "stat completed " << stats.total_completed << "\n";
  out << "stat executed_queries " << stats.total_executed_queries << "\n";
  out << "stat dedup_hits " << stats.total_dedup_hits << "\n";
  out << "stat updates_applied " << stats.total_updates_applied << "\n";
  out << "stat batches " << stats.total_batches << "\n";
  out << "stat queue_depth " << stats.max_queue_depth << "\n";
  out << "stat peak_queue_depth " << stats.max_peak_queue_depth << "\n";
}

}  // namespace

size_t RunServerLoop(ServeEngine* engine, std::istream& in,
                     std::ostream& out) {
  size_t commands = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream tokens(line);
    std::string command;
    if (!(tokens >> command) || command[0] == '#') continue;
    ++commands;

    if (command == "quit" || command == "exit") {
      out << "BYE\n";
      break;
    }
    if (command == "help") {
      out << "commands: query <st> <end> [elem ...] | topk <k> <st> <end> "
             "[elem ...] | insert <st> <end> [elem ...] | erase <id> <st> "
             "<end> [elem ...] | stats | flush | help | quit\n";
      continue;
    }
    if (command == "stats") {
      PrintStats(engine->Stats(), out);
      continue;
    }
    if (command == "flush") {
      ReplyStatus(out, engine->Flush());
      continue;
    }
    if (command == "query") {
      Interval interval;
      if (!ReadTime(tokens, &interval.st) || !ReadTime(tokens, &interval.end)) {
        out << "ERR query needs <st> <end>\n";
        continue;
      }
      Query query(interval, ReadElements(tokens));
      StatusOr<std::vector<ObjectId>> result = engine->Execute(query);
      if (!result.ok()) {
        out << "ERR " << result.status().ToString() << "\n";
        continue;
      }
      out << "OK " << result->size();
      for (const ObjectId id : *result) out << " " << id;
      out << "\n";
      continue;
    }
    if (command == "topk") {
      uint32_t k = 0;
      Interval interval;
      if (!(tokens >> k) || !ReadTime(tokens, &interval.st) ||
          !ReadTime(tokens, &interval.end)) {
        out << "ERR topk needs <k> <st> <end>\n";
        continue;
      }
      Query query(interval, ReadElements(tokens));
      StatusOr<std::vector<ScoredHit>> result = engine->ExecuteTopK(query, k);
      if (!result.ok()) {
        out << "ERR " << result.status().ToString() << "\n";
        continue;
      }
      out << "OK " << result->size();
      for (const ScoredHit& hit : *result) {
        out << " " << hit.id << ":" << hit.score;
      }
      out << "\n";
      continue;
    }
    if (command == "insert") {
      Interval interval;
      if (!ReadTime(tokens, &interval.st) || !ReadTime(tokens, &interval.end)) {
        out << "ERR insert needs <st> <end>\n";
        continue;
      }
      StatusOr<ObjectId> id =
          engine->AppendInsert(interval, ReadElements(tokens));
      if (!id.ok()) {
        out << "ERR " << id.status().ToString() << "\n";
      } else {
        out << "OK id=" << *id << "\n";
      }
      continue;
    }
    if (command == "erase") {
      ObjectId id = 0;
      Interval interval;
      if (!(tokens >> id) || !ReadTime(tokens, &interval.st) ||
          !ReadTime(tokens, &interval.end)) {
        out << "ERR erase needs <id> <st> <end>\n";
        continue;
      }
      ReplyStatus(out,
                  engine->Erase(Object(id, interval, ReadElements(tokens))));
      continue;
    }
    out << "ERR unknown command '" << command << "' (try help)\n";
  }
  return commands;
}

}  // namespace serve
}  // namespace irhint

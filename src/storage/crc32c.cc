#include "storage/crc32c.h"

#include <cstring>

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace irhint {

namespace {

#if !defined(__SSE4_2__)

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

// Slicing-by-8 lookup tables, generated once at first use.
struct Tables {
  uint32_t t[8][256];
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (int k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFF] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

#endif  // !defined(__SSE4_2__)

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
#if defined(__SSE4_2__)
  // Hardware path: one 8-byte CRC instruction per quadword.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc = static_cast<uint32_t>(_mm_crc32_u64(crc, chunk));
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
#else
  const Tables& tb = GetTables();
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    chunk ^= crc;
    crc = tb.t[7][chunk & 0xFF] ^ tb.t[6][(chunk >> 8) & 0xFF] ^
          tb.t[5][(chunk >> 16) & 0xFF] ^ tb.t[4][(chunk >> 24) & 0xFF] ^
          tb.t[3][(chunk >> 32) & 0xFF] ^ tb.t[2][(chunk >> 40) & 0xFF] ^
          tb.t[1][(chunk >> 48) & 0xFF] ^ tb.t[0][(chunk >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    --n;
  }
#endif
  return ~crc;
}

}  // namespace irhint

// Buffered snapshot writer. Each section is accumulated in memory, then
// flushed with its CRC32C recorded in the section table; Finish() writes
// the table and patches the header. Errors are sticky: any failed write
// poisons the writer and surfaces from EndSection()/Finish().

#ifndef IRHINT_STORAGE_SNAPSHOT_WRITER_H_
#define IRHINT_STORAGE_SNAPSHOT_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/status.h"
#include "storage/flat_array.h"
#include "storage/snapshot_format.h"

namespace irhint {

struct SnapshotWriteOptions {
  /// fsync the file (and its parent directory after the rename) in
  /// Finish(), so a power loss right after saving cannot leave a torn or
  /// missing snapshot. On by default; benches may turn it off.
  bool sync_on_finish = true;
};

class SnapshotWriter {
 public:
  SnapshotWriter() = default;
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// \brief Start writing. Bytes go to `path`.tmp; Finish() atomically
  /// renames over `path`, so a crash mid-save never clobbers an existing
  /// good snapshot, and `path` either remains the old file or becomes the
  /// complete new one. An abandoned writer removes its temp file.
  Status Open(const std::string& path, SnapshotKind kind,
              const SnapshotWriteOptions& options = {});

  /// \brief Start accumulating a section. Sections cannot nest.
  void BeginSection(uint32_t id);

  /// \brief Flush the current section to disk and record its table entry.
  Status EndSection();

  /// \brief Write the section table, patch the header, fsync (per the
  /// open options), close, and rename the temp file into place.
  Status Finish();

  // -- Field writers (append to the open section) --------------------------

  void WriteU8(uint8_t v) { Append(&v, 1); }
  void WriteU16(uint16_t v) { AppendScalar(v); }
  void WriteU32(uint32_t v) { AppendScalar(v); }
  void WriteU64(uint64_t v) { AppendScalar(v); }
  void WriteI32(int32_t v) { AppendScalar(static_cast<uint32_t>(v)); }
  void WriteBytes(const void* p, size_t n) { Append(p, n); }

  void WriteString(std::string_view s) {
    WriteU64(s.size());
    Append(s.data(), s.size());
  }

  /// \brief Array protocol: u64 count, pad to 8, raw bytes. T must be
  /// trivially copyable and padding-free.
  template <typename T>
  void WriteArray(const T* p, size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(n);
    AlignTo8();
    Append(p, n * sizeof(T));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    WriteArray(v.data(), v.size());
  }

  template <typename T>
  void WriteFlatArray(const FlatArray<T>& a) {
    WriteArray(a.data(), a.size());
  }

  Status status() const { return status_; }

 private:
  void AppendScalar(auto v) {
    // The format is little-endian; this library targets LE hosts only
    // (x86-64 / aarch64), so a raw copy is the encoding.
    Append(&v, sizeof(v));
  }
  void Append(const void* p, size_t n) {
    const uint8_t* bytes = static_cast<const uint8_t*>(p);
    section_buf_.insert(section_buf_.end(), bytes, bytes + n);
  }
  void AlignTo8() {
    while (section_buf_.size() % 8 != 0) section_buf_.push_back(0);
  }

  Status WriteFileBytes(const void* p, size_t n);
  Status PadFileTo8();
  void WriteHeaderInto(uint8_t* out) const;

  struct TableEntry {
    uint32_t id = 0;
    uint64_t offset = 0;
    uint64_t size = 0;
    uint32_t crc = 0;
  };

  std::FILE* file_ = nullptr;
  std::string path_;
  std::string tmp_path_;
  SnapshotWriteOptions options_;
  SnapshotKind kind_ = SnapshotKind::kCorpus;
  uint64_t file_offset_ = 0;
  std::vector<uint8_t> section_buf_;
  uint32_t section_id_ = 0;
  bool in_section_ = false;
  std::vector<TableEntry> table_;
  Status status_;
};

}  // namespace irhint

#endif  // IRHINT_STORAGE_SNAPSHOT_WRITER_H_

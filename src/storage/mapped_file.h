// Read-only memory-mapped file, the backing store of the zero-copy
// snapshot load path.

#ifndef IRHINT_STORAGE_MAPPED_FILE_H_
#define IRHINT_STORAGE_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace irhint {

/// \brief An immutable byte range backed by mmap. Unmapped on destruction;
/// loaded indexes hold a shared_ptr to keep their views valid.
class MappedFile {
 public:
  /// \brief Map `path` read-only. Fails with IoError if the file cannot be
  /// opened or mapped (callers fall back to buffered reads).
  static StatusOr<std::shared_ptr<MappedFile>> Open(const std::string& path);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  MappedFile(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace irhint

#endif  // IRHINT_STORAGE_MAPPED_FILE_H_

// The versioned on-disk snapshot format.
//
// File layout (all integers little-endian, fixed width):
//
//   +0   Header (40 bytes)
//        magic          u64   "IRHSNAP1"
//        format_version u32   kFormatVersion
//        kind           u32   SnapshotKind payload tag
//        table_offset   u64   file offset of the section table
//        section_count  u32
//        flags          u32   reserved, 0
//        header_crc     u32   CRC32C of the 32 bytes above
//        reserved       u32   0
//   +40  Sections: each payload starts at an 8-byte-aligned offset
//        (zero padding in between). A payload is an opaque byte string;
//        the cursor protocol below gives it structure.
//   ...  Section table: section_count entries of 32 bytes each
//        id        u32
//        flags     u32   reserved, 0
//        offset    u64   file offset of the payload
//        size      u64   payload bytes
//        crc       u32   CRC32C of the payload
//        reserved  u32   0
//        followed by table_crc u32 (CRC32C over all entries).
//
// Section payload protocol (SnapshotWriter / SectionCursor):
//   scalars    fixed-width little-endian (u8/u16/u32/u64/i32)
//   string     u64 length + raw bytes
//   array<T>   u64 count, zero padding to the next 8-byte boundary
//              (relative to the payload start, which is itself 8-aligned
//              in the file), then count * sizeof(T) raw bytes. T must be
//              trivially copyable with no padding; the alignment rule is
//              what lets the mmap path hand out zero-copy views.
//
// Version policy: bump kFormatVersion whenever the encoding of any
// existing section changes shape. Adding a NEW section id to a snapshot
// is backward compatible (readers ignore unknown sections); removing or
// re-encoding one is not. Readers reject versions newer than their own
// with NotSupported and must keep loading all older versions they ever
// shipped (tests/golden pins this).

#ifndef IRHINT_STORAGE_SNAPSHOT_FORMAT_H_
#define IRHINT_STORAGE_SNAPSHOT_FORMAT_H_

#include <cstdint>
#include <string_view>

namespace irhint {

inline constexpr uint64_t kSnapshotMagic = 0x3150414E53485249ULL;  // "IRHSNAP1"
inline constexpr uint32_t kFormatVersion = 1;

inline constexpr size_t kSnapshotHeaderBytes = 40;
inline constexpr size_t kSectionEntryBytes = 32;

/// \brief What a snapshot file contains. Values are stable on-disk tags:
/// never renumber, only append.
enum class SnapshotKind : uint32_t {
  kCorpus = 1,
  kNaiveScan = 10,
  kTif = 11,
  kTifSlicing = 12,
  kTifSharding = 13,
  kTifHintBinarySearch = 14,
  kTifHintMergeSort = 15,
  kTifHintSlicing = 16,
  kIrHintPerf = 17,
  kIrHintSize = 18,
  kScoredTif = 19,
  kScoredIrHint = 20,
};

/// \brief Section ids. Stable on-disk tags; never renumber.
enum SnapshotSection : uint32_t {
  /// Options + scalar state of the payload (index kind specific).
  kSectionMeta = 1,
  /// Lookup structure: element/partition directories, per-list counts.
  kSectionDirectory = 2,
  /// The large contiguous arrays (postings, subdivision entries) — the
  /// zero-copy targets of the mmap load path.
  kSectionPayload = 3,
  /// Auxiliary state: overflow stores, frequencies, tombstone counts.
  kSectionAux = 4,
  /// Corpus snapshots: the dictionary (terms + frequencies).
  kSectionDictionary = 5,
  /// Corpus snapshots: the object collection.
  kSectionObjects = 6,
  /// Checkpoint snapshots (src/wal): the WAL LSN the snapshot covers.
  /// Added after format v1 shipped — readers ignore unknown sections, so
  /// no version bump (see the version policy above).
  kSectionWalState = 7,
  /// Ranked retrieval (src/rank): per-division impact-scored posting
  /// blocks of a ScoredIndex. Also post-v1; same no-bump rationale.
  kSectionRank = 8,
};

/// \brief Human-readable name of a snapshot kind tag ("?" if unknown).
std::string_view SnapshotKindName(uint32_t kind);

/// \brief Human-readable name of a section id ("?" if unknown).
std::string_view SnapshotSectionName(uint32_t id);

}  // namespace irhint

#endif  // IRHINT_STORAGE_SNAPSHOT_FORMAT_H_

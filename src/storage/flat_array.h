// FlatArray<T>: a contiguous array that either owns its storage (a plain
// std::vector) or is a zero-copy view into a memory-mapped snapshot. The
// hot read paths (scans, binary searches, merges) see a single `const T*` +
// size either way; mutation transparently materializes a private copy first
// (copy-on-write at array granularity), so a loaded index supports inserts
// and tombstoning exactly like a freshly built one.
//
// Lifetime: a view does NOT keep the mapping alive. The index that loads a
// snapshot retains the mapping (TemporalIrIndex::storage_keepalive_) for as
// long as it lives, which covers every view inside it.

#ifndef IRHINT_STORAGE_FLAT_ARRAY_H_
#define IRHINT_STORAGE_FLAT_ARRAY_H_

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace irhint {

template <typename T>
class FlatArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "FlatArray requires trivially copyable elements");

 public:
  FlatArray() = default;

  FlatArray(const FlatArray& other) { CopyFrom(other); }
  FlatArray& operator=(const FlatArray& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  FlatArray(FlatArray&& other) noexcept { MoveFrom(&other); }
  FlatArray& operator=(FlatArray&& other) noexcept {
    if (this != &other) MoveFrom(&other);
    return *this;
  }

  FlatArray& operator=(std::vector<T> v) {
    owned_ = std::move(v);
    SyncOwned();
    return *this;
  }

  /// \brief Point at externally owned memory (e.g. an mmapped section).
  void SetView(const T* data, size_t n) {
    owned_.clear();
    data_ = data;
    size_ = n;
    is_view_ = true;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T* data() const { return data_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T& back() const { return data_[size_ - 1]; }
  std::span<const T> span() const { return {data_, size_}; }
  bool is_view() const { return is_view_; }

  /// \brief Ensure the array owns its storage (copies a view's contents).
  void Materialize() {
    if (!is_view_) return;
    owned_.assign(data_, data_ + size_);
    SyncOwned();
  }

  /// \brief Mutable base pointer; materializes a view first.
  T* MutableData() {
    Materialize();
    return owned_.data();
  }

  std::span<T> MutableSpan() {
    Materialize();
    return {owned_.data(), owned_.size()};
  }

  void push_back(const T& v) {
    Materialize();
    owned_.push_back(v);
    SyncOwned();
  }

  /// \brief Insert at position `pos` (0 <= pos <= size()).
  void insert(size_t pos, const T& v) {
    Materialize();
    owned_.insert(owned_.begin() + static_cast<ptrdiff_t>(pos), v);
    SyncOwned();
  }

  void clear() {
    owned_.clear();
    SyncOwned();
  }

  void reserve(size_t n) {
    Materialize();
    owned_.reserve(n);
    SyncOwned();
  }

  void shrink_to_fit() {
    if (is_view_) return;
    owned_.shrink_to_fit();
    SyncOwned();
  }

  /// \brief Heap bytes owned by this array (0 while it views a mapping).
  size_t MemoryUsageBytes() const {
    return owned_.capacity() * sizeof(T);
  }

 private:
  void SyncOwned() {
    data_ = owned_.data();
    size_ = owned_.size();
    is_view_ = false;
  }

  void CopyFrom(const FlatArray& other) {
    if (other.is_view_) {
      // Copying a view yields another view of the same mapping (the
      // keepalive is per-index, shared by all copies inside it).
      owned_.clear();
      data_ = other.data_;
      size_ = other.size_;
      is_view_ = true;
    } else {
      owned_ = other.owned_;
      SyncOwned();
    }
  }

  void MoveFrom(FlatArray* other) {
    if (other->is_view_) {
      owned_.clear();
      data_ = other->data_;
      size_ = other->size_;
      is_view_ = true;
    } else {
      owned_ = std::move(other->owned_);
      SyncOwned();
    }
    other->owned_.clear();
    other->SyncOwned();
  }

  std::vector<T> owned_;
  const T* data_ = nullptr;
  size_t size_ = 0;
  bool is_view_ = false;
};

}  // namespace irhint

#endif  // IRHINT_STORAGE_FLAT_ARRAY_H_

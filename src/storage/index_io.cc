#include "storage/index_io.h"

#include <utility>

#include "core/factory.h"
#include "storage/snapshot_writer.h"

namespace irhint {

SnapshotKind SnapshotKindFor(IndexKind kind) {
  switch (kind) {
    case IndexKind::kNaiveScan: return SnapshotKind::kNaiveScan;
    case IndexKind::kTif: return SnapshotKind::kTif;
    case IndexKind::kTifSlicing: return SnapshotKind::kTifSlicing;
    case IndexKind::kTifSharding: return SnapshotKind::kTifSharding;
    case IndexKind::kTifHintBinarySearch:
      return SnapshotKind::kTifHintBinarySearch;
    case IndexKind::kTifHintMergeSort: return SnapshotKind::kTifHintMergeSort;
    case IndexKind::kTifHintSlicing: return SnapshotKind::kTifHintSlicing;
    case IndexKind::kIrHintPerf: return SnapshotKind::kIrHintPerf;
    case IndexKind::kIrHintSize: return SnapshotKind::kIrHintSize;
    case IndexKind::kScoredTif: return SnapshotKind::kScoredTif;
    case IndexKind::kScoredIrHint: return SnapshotKind::kScoredIrHint;
  }
  return SnapshotKind::kNaiveScan;  // unreachable
}

StatusOr<IndexKind> IndexKindForSnapshot(uint32_t tag) {
  switch (static_cast<SnapshotKind>(tag)) {
    case SnapshotKind::kNaiveScan: return IndexKind::kNaiveScan;
    case SnapshotKind::kTif: return IndexKind::kTif;
    case SnapshotKind::kTifSlicing: return IndexKind::kTifSlicing;
    case SnapshotKind::kTifSharding: return IndexKind::kTifSharding;
    case SnapshotKind::kTifHintBinarySearch:
      return IndexKind::kTifHintBinarySearch;
    case SnapshotKind::kTifHintMergeSort:
      return IndexKind::kTifHintMergeSort;
    case SnapshotKind::kTifHintSlicing: return IndexKind::kTifHintSlicing;
    case SnapshotKind::kIrHintPerf: return IndexKind::kIrHintPerf;
    case SnapshotKind::kIrHintSize: return IndexKind::kIrHintSize;
    case SnapshotKind::kScoredTif: return IndexKind::kScoredTif;
    case SnapshotKind::kScoredIrHint: return IndexKind::kScoredIrHint;
    case SnapshotKind::kCorpus:
      return Status::InvalidArgument("snapshot holds a corpus, not an index");
  }
  return Status::Corruption("snapshot has unknown index kind tag");
}

Status SaveIndex(const TemporalIrIndex& index, const std::string& path) {
  SnapshotWriter writer;
  IRHINT_RETURN_NOT_OK(writer.Open(path, SnapshotKindFor(index.Kind())));
  IRHINT_RETURN_NOT_OK(index.SaveTo(&writer));
  return writer.Finish();
}

namespace {

StatusOr<LoadedIndex> LoadIndexFromReader(SnapshotReader* reader) {
  auto kind = IndexKindForSnapshot(reader->kind());
  IRHINT_RETURN_NOT_OK(kind.status());
  LoadedIndex loaded;
  loaded.kind = kind.value();
  loaded.index = CreateIndex(loaded.kind);
  if (loaded.index == nullptr) {
    return Status::Corruption("snapshot has unknown index kind tag");
  }
  IRHINT_RETURN_NOT_OK(loaded.index->LoadFrom(reader));
  // Zero-copy views inside the index alias the mapping; pin it.
  loaded.index->set_storage_keepalive(reader->mapping());
  return loaded;
}

}  // namespace

StatusOr<LoadedIndex> LoadIndexSnapshot(const std::string& path,
                                        const SnapshotReadOptions& options) {
  SnapshotReader reader;
  IRHINT_RETURN_NOT_OK(reader.Open(path, options));
  return LoadIndexFromReader(&reader);
}

Status SaveIndexCheckpoint(const TemporalIrIndex& index,
                           const std::string& path, uint64_t wal_lsn,
                           uint64_t next_object_id) {
  SnapshotWriter writer;
  IRHINT_RETURN_NOT_OK(writer.Open(path, SnapshotKindFor(index.Kind())));
  IRHINT_RETURN_NOT_OK(index.SaveTo(&writer));
  writer.BeginSection(kSectionWalState);
  writer.WriteU64(wal_lsn);
  writer.WriteU64(next_object_id);
  IRHINT_RETURN_NOT_OK(writer.EndSection());
  return writer.Finish();
}

StatusOr<CheckpointInfo> LoadIndexCheckpoint(
    const std::string& path, const SnapshotReadOptions& options) {
  SnapshotReader reader;
  IRHINT_RETURN_NOT_OK(reader.Open(path, options));
  auto cursor = reader.OpenSection(kSectionWalState);
  if (cursor.status().IsNotFound()) {
    return Status::InvalidArgument(
        "snapshot has no WAL state section (not a checkpoint): " + path);
  }
  IRHINT_RETURN_NOT_OK(cursor.status());
  CheckpointInfo info;
  IRHINT_RETURN_NOT_OK(cursor->ReadU64(&info.wal_lsn));
  IRHINT_RETURN_NOT_OK(cursor->ReadU64(&info.next_object_id));
  auto loaded = LoadIndexFromReader(&reader);
  IRHINT_RETURN_NOT_OK(loaded.status());
  info.loaded = std::move(loaded).value();
  return info;
}

}  // namespace irhint

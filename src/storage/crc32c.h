// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum protecting every snapshot section. The same polynomial is used by
// RocksDB, LevelDB and iSCSI; it detects all burst errors up to 32 bits and
// has hardware support on modern x86 (SSE4.2) and ARM.

#ifndef IRHINT_STORAGE_CRC32C_H_
#define IRHINT_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace irhint {

/// \brief Extend a running CRC32C with `n` bytes. Start with crc == 0.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// \brief CRC32C of a whole buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace irhint

#endif  // IRHINT_STORAGE_CRC32C_H_

// Snapshot reading: header/table validation, per-section CRC checks, and a
// bounds-checked cursor over section payloads. Two backends:
//
//   mmap (default)  the whole file is mapped once; ReadFlatArray hands out
//                   zero-copy views into the mapping. The caller must keep
//                   reader.mapping() alive for as long as any view lives
//                   (indexes stash it in storage_keepalive_).
//   buffered        the file stays on a FILE*; each OpenSection freads the
//                   payload into a cursor-owned buffer and ReadFlatArray
//                   copies. Fallback when mmap fails, and the path the
//                   corruption tests exercise in both flavours.
//
// Every decode error is a clean Status (Corruption / NotSupported /
// IoError); no input, however mangled, may crash the reader.

#ifndef IRHINT_STORAGE_SNAPSHOT_READER_H_
#define IRHINT_STORAGE_SNAPSHOT_READER_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/checked_math.h"
#include "common/contracts.h"
#include "common/status.h"
#include "storage/flat_array.h"
#include "storage/mapped_file.h"
#include "storage/snapshot_format.h"

namespace irhint {

struct SnapshotReadOptions {
  /// Map the file and serve large arrays as zero-copy views.
  bool use_mmap = true;
  /// Verify the CRC32C of each section payload on OpenSection().
  bool verify_checksums = true;
};

/// \brief One entry of the section table, as read from disk.
struct SectionInfo {
  uint32_t id = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t crc = 0;
};

/// \brief Bounds-checked decoder over one section payload. Obtained from
/// SnapshotReader::OpenSection; movable, not copyable.
///
/// Every Read* method is IRHINT_UNTRUSTED: the values it produces come
/// straight from snapshot bytes an attacker may control. Sizes, counts
/// and ids read here must pass through checked_math.h helpers or an
/// explicit bound check before they reach a resize, an allocation or an
/// index expression (enforced by irhint-untrusted-decode).
class SectionCursor {
 public:
  SectionCursor() = default;
  SectionCursor(SectionCursor&&) = default;
  SectionCursor& operator=(SectionCursor&&) = default;
  SectionCursor(const SectionCursor&) = delete;
  SectionCursor& operator=(const SectionCursor&) = delete;

  IRHINT_UNTRUSTED Status ReadU8(uint8_t* out) { return ReadScalar(out); }
  IRHINT_UNTRUSTED Status ReadU16(uint16_t* out) { return ReadScalar(out); }
  IRHINT_UNTRUSTED Status ReadU32(uint32_t* out) { return ReadScalar(out); }
  IRHINT_UNTRUSTED Status ReadU64(uint64_t* out) { return ReadScalar(out); }
  IRHINT_UNTRUSTED Status ReadI32(int32_t* out) {
    uint32_t v = 0;
    IRHINT_RETURN_NOT_OK(ReadScalar(&v));
    *out = static_cast<int32_t>(v);
    return Status::OK();
  }

  IRHINT_UNTRUSTED Status ReadBytes(void* out, size_t n) {
    if (n > remaining()) return Truncated();
    std::memcpy(out, base_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  IRHINT_UNTRUSTED Status ReadString(std::string* out) {
    uint64_t len = 0;
    IRHINT_RETURN_NOT_OK(ReadU64(&len));
    if (len > remaining()) return Truncated();
    out->assign(reinterpret_cast<const char*>(base_ + pos_),
                static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return Status::OK();
  }

  /// \brief Decode the array protocol (u64 count, pad to 8, raw bytes) into
  /// an owned vector.
  template <typename T>
  IRHINT_UNTRUSTED Status ReadVector(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    const T* data = nullptr;
    size_t count = 0;
    IRHINT_RETURN_NOT_OK(ReadArrayRaw<T>(&data, &count));
    out->assign(data, data + count);
    return Status::OK();
  }

  /// \brief Decode the array protocol into a FlatArray: a zero-copy view of
  /// the mapping when this cursor is mmap-backed, an owned copy otherwise.
  template <typename T>
  IRHINT_UNTRUSTED Status ReadFlatArray(FlatArray<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    const T* data = nullptr;
    size_t count = 0;
    IRHINT_RETURN_NOT_OK(ReadArrayRaw<T>(&data, &count));
    if (zero_copy_) {
      out->SetView(data, count);
    } else {
      std::vector<T> copy(data, data + count);
      *out = std::move(copy);
    }
    return Status::OK();
  }

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  friend class SnapshotReader;

  static Status Truncated() {
    return Status::Corruption("section payload truncated");
  }

  Status ReadScalar(auto* out) {
    if (sizeof(*out) > remaining()) return Truncated();
    std::memcpy(out, base_ + pos_, sizeof(*out));
    pos_ += sizeof(*out);
    return Status::OK();
  }

  template <typename T>
  Status ReadArrayRaw(const T** data, size_t* count) {
    uint64_t n = 0;
    IRHINT_RETURN_NOT_OK(ReadU64(&n));
    size_t aligned = 0;
    if (!CheckedAdd(pos_, size_t{7}, &aligned)) return Truncated();
    aligned &= ~size_t{7};
    if (aligned > size_) return Truncated();
    pos_ = aligned;
    // n is attacker-controlled: the multiply must not wrap before the
    // bound check, or a huge count would alias a small byte span.
    size_t bytes = 0;
    if (!CheckedMul(static_cast<size_t>(n), sizeof(T), &bytes) ||
        static_cast<size_t>(n) != n || bytes > remaining()) {
      return Truncated();
    }
    *data = reinterpret_cast<const T*>(base_ + pos_);
    *count = static_cast<size_t>(n);
    pos_ += bytes;
    return Status::OK();
  }

  const uint8_t* base_ = nullptr;
  size_t size_ = 0;
  size_t pos_ = 0;
  /// True when base_ points into the reader's long-lived mapping.
  bool zero_copy_ = false;
  /// Buffered mode: the cursor owns the payload bytes it decodes.
  std::vector<uint8_t> owned_;
};

class SnapshotReader {
 public:
  SnapshotReader() = default;
  ~SnapshotReader();

  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  /// \brief Open and validate `path`: magic, format version, header CRC,
  /// section-table bounds and CRC. Section payloads are only checksummed
  /// when opened. With options.use_mmap the reader transparently falls back
  /// to buffered reads if mapping fails.
  Status Open(const std::string& path,
              const SnapshotReadOptions& options = {});

  uint32_t version() const { return version_; }
  uint32_t kind() const { return kind_; }
  const std::vector<SectionInfo>& sections() const { return sections_; }
  bool HasSection(uint32_t id) const;

  /// \brief Open the first section with this id, verifying its CRC (unless
  /// disabled). NotFound if the snapshot has no such section.
  StatusOr<SectionCursor> OpenSection(uint32_t id);

  /// \brief Recompute a section's CRC32C and compare against the table
  /// entry (used by snapshot_inspect to report per-section status).
  Status VerifySection(const SectionInfo& info);

  /// \brief The mapping backing zero-copy views; null in buffered mode.
  /// Loaded indexes must retain this for the lifetime of their views.
  std::shared_ptr<MappedFile> mapping() const { return mapping_; }

 private:
  Status ReadAt(uint64_t offset, size_t n, uint8_t* out);
  Status ParseHeaderAndTable();

  std::string path_;
  SnapshotReadOptions options_;
  std::shared_ptr<MappedFile> mapping_;  // mmap mode
  std::FILE* file_ = nullptr;            // buffered mode
  uint64_t file_size_ = 0;
  uint32_t version_ = 0;
  uint32_t kind_ = 0;
  std::vector<SectionInfo> sections_;
};

}  // namespace irhint

#endif  // IRHINT_STORAGE_SNAPSHOT_READER_H_

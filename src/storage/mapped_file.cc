#include "storage/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>

namespace irhint {

StatusOr<std::shared_ptr<MappedFile>> MappedFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + ": " +
                           std::generic_category().message(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    // mmap of length 0 is undefined; an empty file can never hold a valid
    // snapshot header anyway.
    return Status::Corruption("empty snapshot file " + path);
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) {
    return Status::IoError("mmap failed for " + path + ": " +
                           std::generic_category().message(errno));
  }
  return std::shared_ptr<MappedFile>(
      new MappedFile(static_cast<const uint8_t*>(base), size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

}  // namespace irhint

#include "storage/snapshot_format.h"

namespace irhint {

std::string_view SnapshotKindName(uint32_t kind) {
  switch (static_cast<SnapshotKind>(kind)) {
    case SnapshotKind::kCorpus: return "corpus";
    case SnapshotKind::kNaiveScan: return "naive_scan";
    case SnapshotKind::kTif: return "tif";
    case SnapshotKind::kTifSlicing: return "tif_slicing";
    case SnapshotKind::kTifSharding: return "tif_sharding";
    case SnapshotKind::kTifHintBinarySearch: return "tif_hint_bs";
    case SnapshotKind::kTifHintMergeSort: return "tif_hint_ms";
    case SnapshotKind::kTifHintSlicing: return "tif_hint_slicing";
    case SnapshotKind::kIrHintPerf: return "irhint_perf";
    case SnapshotKind::kIrHintSize: return "irhint_size";
    case SnapshotKind::kScoredTif: return "scored_tif";
    case SnapshotKind::kScoredIrHint: return "scored_irhint";
  }
  return "?";
}

std::string_view SnapshotSectionName(uint32_t id) {
  switch (static_cast<SnapshotSection>(id)) {
    case kSectionMeta: return "meta";
    case kSectionDirectory: return "directory";
    case kSectionPayload: return "payload";
    case kSectionAux: return "aux";
    case kSectionDictionary: return "dictionary";
    case kSectionObjects: return "objects";
    case kSectionWalState: return "wal_state";
    case kSectionRank: return "rank";
  }
  return "?";
}

}  // namespace irhint

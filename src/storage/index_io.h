// Save/Load dispatch for whole indexes: maps every IndexKind to its stable
// on-disk SnapshotKind tag, writes an index as a snapshot file, and loads a
// snapshot back into a freshly instantiated index of the recorded kind.

#ifndef IRHINT_STORAGE_INDEX_IO_H_
#define IRHINT_STORAGE_INDEX_IO_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/index_kind.h"
#include "core/temporal_ir_index.h"
#include "storage/snapshot_format.h"
#include "storage/snapshot_reader.h"

namespace irhint {

/// \brief Stable on-disk tag for an index kind (never renumbered).
SnapshotKind SnapshotKindFor(IndexKind kind);

/// \brief Inverse of SnapshotKindFor; kCorpus and unknown tags fail.
StatusOr<IndexKind> IndexKindForSnapshot(uint32_t tag);

/// \brief Write `index` to `path` as a versioned snapshot.
Status SaveIndex(const TemporalIrIndex& index, const std::string& path);

struct LoadedIndex {
  IndexKind kind;
  std::unique_ptr<TemporalIrIndex> index;
};

/// \brief Load a snapshot written by SaveIndex. The index kind is read from
/// the file header; with mmap enabled (the default) large posting arrays
/// alias the mapping, which the returned index keeps alive.
StatusOr<LoadedIndex> LoadIndexSnapshot(
    const std::string& path, const SnapshotReadOptions& options = {});

}  // namespace irhint

#endif  // IRHINT_STORAGE_INDEX_IO_H_

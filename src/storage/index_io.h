// Save/Load dispatch for whole indexes: maps every IndexKind to its stable
// on-disk SnapshotKind tag, writes an index as a snapshot file, and loads a
// snapshot back into a freshly instantiated index of the recorded kind.

#ifndef IRHINT_STORAGE_INDEX_IO_H_
#define IRHINT_STORAGE_INDEX_IO_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/index_kind.h"
#include "core/temporal_ir_index.h"
#include "storage/snapshot_format.h"
#include "storage/snapshot_reader.h"

namespace irhint {

/// \brief Stable on-disk tag for an index kind (never renumbered).
SnapshotKind SnapshotKindFor(IndexKind kind);

/// \brief Inverse of SnapshotKindFor; kCorpus and unknown tags fail.
StatusOr<IndexKind> IndexKindForSnapshot(uint32_t tag);

/// \brief Write `index` to `path` as a versioned snapshot.
Status SaveIndex(const TemporalIrIndex& index, const std::string& path);

struct LoadedIndex {
  IndexKind kind;
  std::unique_ptr<TemporalIrIndex> index;
};

/// \brief Load a snapshot written by SaveIndex. The index kind is read from
/// the file header; with mmap enabled (the default) large posting arrays
/// alias the mapping, which the returned index keeps alive.
StatusOr<LoadedIndex> LoadIndexSnapshot(
    const std::string& path, const SnapshotReadOptions& options = {});

/// \brief Write `index` to `path` as a snapshot that additionally records
/// the WAL LSN it covers and the id high-water mark (a kSectionWalState
/// section). Used by WAL checkpointing; the file is a regular index
/// snapshot plus one extra section, so LoadIndexSnapshot can still open it.
Status SaveIndexCheckpoint(const TemporalIrIndex& index,
                           const std::string& path, uint64_t wal_lsn,
                           uint64_t next_object_id);

struct CheckpointInfo {
  LoadedIndex loaded;
  /// Every update with LSN <= wal_lsn is contained in the snapshot.
  uint64_t wal_lsn = 0;
  /// Smallest id a future insert may use (ids strictly increase; the inner
  /// indexes trust this precondition, so the durable layer enforces it and
  /// must persist the watermark).
  uint64_t next_object_id = 0;
};

/// \brief Load a snapshot written by SaveIndexCheckpoint. Fails with
/// InvalidArgument if the file has no WAL state section (i.e. it is a plain
/// SaveIndex snapshot).
StatusOr<CheckpointInfo> LoadIndexCheckpoint(
    const std::string& path, const SnapshotReadOptions& options = {});

}  // namespace irhint

#endif  // IRHINT_STORAGE_INDEX_IO_H_

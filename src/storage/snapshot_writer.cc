#include "storage/snapshot_writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <cassert>
#include <cstdio>

#include "storage/crc32c.h"

namespace irhint {

namespace {

void PutU32(uint8_t* out, uint32_t v) { std::memcpy(out, &v, 4); }
void PutU64(uint8_t* out, uint64_t v) { std::memcpy(out, &v, 8); }

Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open directory " + dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError("fsync failed on directory " + dir);
  return Status::OK();
}

}  // namespace

SnapshotWriter::~SnapshotWriter() {
  if (file_ != nullptr) {
    // Abandoned without Finish(): drop the temp file; `path_` keeps
    // whatever good snapshot it held before.
    std::fclose(file_);
    std::remove(tmp_path_.c_str());
  }
}

Status SnapshotWriter::Open(const std::string& path, SnapshotKind kind,
                            const SnapshotWriteOptions& options) {
  assert(file_ == nullptr);
  path_ = path;
  tmp_path_ = path + ".tmp";
  options_ = options;
  kind_ = kind;
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot create " + tmp_path_);
    return status_;
  }
  // Placeholder header; Finish() rewrites it with the real table offset.
  uint8_t header[kSnapshotHeaderBytes];
  WriteHeaderInto(header);
  return WriteFileBytes(header, sizeof(header));
}

void SnapshotWriter::WriteHeaderInto(uint8_t* out) const {
  std::memset(out, 0, kSnapshotHeaderBytes);
  PutU64(out + 0, kSnapshotMagic);
  PutU32(out + 8, kFormatVersion);
  PutU32(out + 12, static_cast<uint32_t>(kind_));
  PutU64(out + 16, /*table_offset=*/0);
  PutU32(out + 24, static_cast<uint32_t>(table_.size()));
  PutU32(out + 28, /*flags=*/0);
  // header_crc and the trailing reserved word are filled by Finish().
}

Status SnapshotWriter::WriteFileBytes(const void* p, size_t n) {
  if (!status_.ok()) return status_;
  if (n > 0 && std::fwrite(p, 1, n, file_) != n) {
    status_ = Status::IoError("write failed: " + path_);
    return status_;
  }
  file_offset_ += n;
  return Status::OK();
}

Status SnapshotWriter::PadFileTo8() {
  static const uint8_t kZeros[8] = {0};
  const size_t pad = (8 - (file_offset_ % 8)) % 8;
  return WriteFileBytes(kZeros, pad);
}

void SnapshotWriter::BeginSection(uint32_t id) {
  assert(!in_section_);
  in_section_ = true;
  section_id_ = id;
  section_buf_.clear();
}

Status SnapshotWriter::EndSection() {
  assert(in_section_);
  in_section_ = false;
  if (!status_.ok()) return status_;
  IRHINT_RETURN_NOT_OK(PadFileTo8());
  TableEntry entry;
  entry.id = section_id_;
  entry.offset = file_offset_;
  entry.size = section_buf_.size();
  entry.crc = Crc32c(section_buf_.data(), section_buf_.size());
  IRHINT_RETURN_NOT_OK(WriteFileBytes(section_buf_.data(),
                                      section_buf_.size()));
  table_.push_back(entry);
  section_buf_.clear();
  return Status::OK();
}

Status SnapshotWriter::Finish() {
  assert(!in_section_);
  if (!status_.ok()) return status_;
  IRHINT_RETURN_NOT_OK(PadFileTo8());
  const uint64_t table_offset = file_offset_;

  std::vector<uint8_t> table_bytes(table_.size() * kSectionEntryBytes, 0);
  for (size_t i = 0; i < table_.size(); ++i) {
    uint8_t* e = table_bytes.data() + i * kSectionEntryBytes;
    PutU32(e + 0, table_[i].id);
    PutU32(e + 4, /*flags=*/0);
    PutU64(e + 8, table_[i].offset);
    PutU64(e + 16, table_[i].size);
    PutU32(e + 24, table_[i].crc);
    PutU32(e + 28, 0);
  }
  IRHINT_RETURN_NOT_OK(WriteFileBytes(table_bytes.data(),
                                      table_bytes.size()));
  uint8_t table_crc[4];
  PutU32(table_crc, Crc32c(table_bytes.data(), table_bytes.size()));
  IRHINT_RETURN_NOT_OK(WriteFileBytes(table_crc, 4));

  uint8_t header[kSnapshotHeaderBytes];
  WriteHeaderInto(header);
  PutU64(header + 16, table_offset);
  PutU32(header + 32, Crc32c(header, 32));
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(header, 1, sizeof(header), file_) != sizeof(header) ||
      std::fflush(file_) != 0) {
    status_ = Status::IoError("header rewrite failed: " + tmp_path_);
    return status_;
  }
  if (options_.sync_on_finish && ::fsync(fileno(file_)) != 0) {
    status_ = Status::IoError("fsync failed: " + tmp_path_);
    return status_;
  }
  std::fclose(file_);
  file_ = nullptr;
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    status_ = Status::IoError("rename failed: " + tmp_path_ + " -> " + path_);
    return status_;
  }
  // Persist the rename itself; without this a crash can resurface the old
  // directory entry even though the file data is durable.
  if (options_.sync_on_finish) {
    IRHINT_RETURN_NOT_OK(SyncParentDir(path_));
  }
  return Status::OK();
}

}  // namespace irhint

#include "storage/snapshot_reader.h"

#include <algorithm>

#include "common/checked_math.h"
#include "storage/crc32c.h"

namespace irhint {

namespace {

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

SnapshotReader::~SnapshotReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SnapshotReader::Open(const std::string& path,
                            const SnapshotReadOptions& options) {
  path_ = path;
  options_ = options;
  if (options.use_mmap) {
    auto mapped = MappedFile::Open(path);
    if (mapped.ok()) {
      mapping_ = std::move(mapped).value();
      file_size_ = mapping_->size();
      return ParseHeaderAndTable();
    }
    if (mapped.status().IsCorruption()) return mapped.status();
    // IoError (e.g. mmap unavailable): fall through to buffered reads.
  }
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IoError("cannot open " + path);
  }
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IoError("cannot seek " + path);
  }
  const long end = std::ftell(file_);
  if (end < 0) return Status::IoError("cannot tell " + path);
  file_size_ = static_cast<uint64_t>(end);
  return ParseHeaderAndTable();
}

Status SnapshotReader::ReadAt(uint64_t offset, size_t n, uint8_t* out) {
  if (offset > file_size_ || n > file_size_ - offset) {
    return Status::Corruption("snapshot truncated: " + path_);
  }
  if (mapping_ != nullptr) {
    std::memcpy(out, mapping_->data() + offset, n);
    return Status::OK();
  }
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fread(out, 1, n, file_) != n) {
    return Status::IoError("read failed: " + path_);
  }
  return Status::OK();
}

Status SnapshotReader::ParseHeaderAndTable() {
  uint8_t header[kSnapshotHeaderBytes];
  if (file_size_ < kSnapshotHeaderBytes) {
    return Status::Corruption("snapshot smaller than header: " + path_);
  }
  IRHINT_RETURN_NOT_OK(ReadAt(0, sizeof(header), header));

  if (GetU64(header + 0) != kSnapshotMagic) {
    return Status::Corruption("bad snapshot magic: " + path_);
  }
  version_ = GetU32(header + 8);
  if (version_ > kFormatVersion) {
    return Status::NotSupported(
        "snapshot format version " + std::to_string(version_) +
        " is newer than this build supports (" +
        std::to_string(kFormatVersion) + "): " + path_);
  }
  if (GetU32(header + 32) != Crc32c(header, 32)) {
    return Status::Corruption("snapshot header checksum mismatch: " + path_);
  }
  kind_ = GetU32(header + 12);
  const uint64_t table_offset = GetU64(header + 16);
  const uint32_t section_count = GetU32(header + 24);

  // Both values come from the (CRC-valid but possibly hostile) header;
  // the table size computation must not wrap before the bounds check.
  uint64_t table_bytes = 0;
  if (!CheckedMul(uint64_t{section_count}, uint64_t{kSectionEntryBytes},
                  &table_bytes) ||
      !CheckedAdd(table_bytes, uint64_t{4}, &table_bytes)) {
    return Status::Corruption("snapshot section table out of bounds: " +
                              path_);
  }
  if (table_offset < kSnapshotHeaderBytes || table_offset > file_size_ ||
      table_bytes > file_size_ - table_offset) {
    return Status::Corruption("snapshot section table out of bounds: " +
                              path_);
  }
  std::vector<uint8_t> table(static_cast<size_t>(table_bytes));
  IRHINT_RETURN_NOT_OK(ReadAt(table_offset, table.size(), table.data()));
  const size_t entries_bytes = table.size() - 4;
  if (GetU32(table.data() + entries_bytes) !=
      Crc32c(table.data(), entries_bytes)) {
    return Status::Corruption("snapshot section table checksum mismatch: " +
                              path_);
  }

  sections_.clear();
  sections_.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    const uint8_t* e = table.data() + size_t{i} * kSectionEntryBytes;
    SectionInfo info;
    info.id = GetU32(e + 0);
    info.offset = GetU64(e + 8);
    info.size = GetU64(e + 16);
    info.crc = GetU32(e + 24);
    if (info.offset < kSnapshotHeaderBytes || info.offset % 8 != 0 ||
        info.offset > table_offset || info.size > table_offset - info.offset) {
      return Status::Corruption("snapshot section " +
                                std::string(SnapshotSectionName(info.id)) +
                                " out of bounds: " + path_);
    }
    sections_.push_back(info);
  }
  return Status::OK();
}

bool SnapshotReader::HasSection(uint32_t id) const {
  return std::any_of(sections_.begin(), sections_.end(),
                     [id](const SectionInfo& s) { return s.id == id; });
}

StatusOr<SectionCursor> SnapshotReader::OpenSection(uint32_t id) {
  const auto it =
      std::find_if(sections_.begin(), sections_.end(),
                   [id](const SectionInfo& s) { return s.id == id; });
  if (it == sections_.end()) {
    return Status::NotFound("snapshot has no section " +
                            std::string(SnapshotSectionName(id)) + ": " +
                            path_);
  }
  SectionCursor cursor;
  cursor.size_ = static_cast<size_t>(it->size);
  if (mapping_ != nullptr) {
    cursor.base_ = mapping_->data() + it->offset;
    cursor.zero_copy_ = true;
  } else {
    cursor.owned_.resize(cursor.size_);
    IRHINT_RETURN_NOT_OK(ReadAt(it->offset, cursor.size_,
                                cursor.owned_.data()));
    cursor.base_ = cursor.owned_.data();
  }
  if (options_.verify_checksums &&
      Crc32c(cursor.base_, cursor.size_) != it->crc) {
    return Status::Corruption("snapshot section " +
                              std::string(SnapshotSectionName(id)) +
                              " checksum mismatch: " + path_);
  }
  return cursor;
}

Status SnapshotReader::VerifySection(const SectionInfo& info) {
  uint32_t actual;
  if (mapping_ != nullptr) {
    actual = Crc32c(mapping_->data() + info.offset,
                    static_cast<size_t>(info.size));
  } else {
    std::vector<uint8_t> buf(static_cast<size_t>(info.size));
    IRHINT_RETURN_NOT_OK(ReadAt(info.offset, buf.size(), buf.data()));
    actual = Crc32c(buf.data(), buf.size());
  }
  if (actual != info.crc) {
    return Status::Corruption("section " +
                              std::string(SnapshotSectionName(info.id)) +
                              " checksum mismatch");
  }
  return Status::OK();
}

}  // namespace irhint

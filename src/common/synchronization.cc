#include "common/synchronization.h"

#include <cstdio>
#include <cstdlib>

#ifdef IRHINT_DEBUG_LOCK_ORDER
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>
#endif

namespace irhint {
namespace lock_order {

#ifdef IRHINT_DEBUG_LOCK_ORDER

namespace {

struct HeldLock {
  const void* lock;
  const char* name;
};

// The calling thread's lock stack, innermost last. thread_local keeps the
// hot path allocation- and contention-free; only the order graph below is
// shared.
thread_local std::vector<HeldLock> g_held;

/// Global acquisition-order graph over lock *names* (class-level ranks):
/// an edge A -> B means "A was held while B was acquired" was observed on
/// some thread. An acquisition that would create a cycle is an inversion:
/// two threads interleaving the two observed orders can deadlock, whether
/// or not this run's schedule ever does.
class OrderGraph {
 public:
  /// \brief Returns true (and records the edge) if `before -> after` is
  /// consistent with every order seen so far; false when the opposite
  /// order is already established (directly or transitively).
  bool RecordEdge(const char* before, const char* after) {
    // Raw std::mutex on purpose: the registry must not instrument itself.
    std::lock_guard<std::mutex> lock(mu_);
    if (Reachable(after, before)) return false;
    edges_[before].insert(after);
    return true;
  }

 private:
  bool Reachable(const std::string& from, const std::string& to) {
    if (from == to) return true;
    auto it = edges_.find(from);
    if (it == edges_.end()) return false;
    for (const std::string& next : it->second) {
      if (Reachable(next, to)) return true;
    }
    return false;
  }

  std::mutex mu_;
  std::unordered_map<std::string, std::unordered_set<std::string>> edges_;
};

OrderGraph& Graph() {
  static OrderGraph* graph = new OrderGraph;  // leaked: outlives all threads
  return *graph;
}

[[noreturn]] void Die(const std::string& message) {
  std::string held_stack;
  for (const HeldLock& held : g_held) {
    held_stack += " \"";
    held_stack += held.name;
    held_stack += "\"";
  }
  std::fprintf(stderr,
               "irhint lock-order check failed: %s\nheld stack (outermost "
               "first):%s\n",
               message.c_str(), held_stack.c_str());
  std::fflush(stderr);
  std::abort();
}

void OnAcquire(const void* lock, const char* name) {
  for (const HeldLock& held : g_held) {
    if (held.lock == lock) {
      Die(std::string("recursive acquisition of \"") + name +
          "\" (already held by this thread)");
    }
  }
  for (const HeldLock& held : g_held) {
    if (std::string(held.name) == name) {
      Die(std::string("two locks named \"") + name +
          "\" held together — simultaneously held locks need distinct "
          "names (ranks)");
    }
    if (!Graph().RecordEdge(held.name, name)) {
      Die(std::string("lock-order inversion: acquiring \"") + name +
          "\" while holding \"" + held.name +
          "\", but the opposite order was established earlier (this pair "
          "can deadlock)");
    }
  }
  g_held.push_back({lock, name});
}

void OnRelease(const void* lock) {
  for (size_t i = g_held.size(); i > 0; --i) {
    if (g_held[i - 1].lock == lock) {
      g_held.erase(g_held.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
}

// CondVar::Wait releases and reacquires its mutex around the sleep. The
// reacquisition repeats an order already validated at the original
// acquire, so it only adjusts the held stack and records no new edges
// (recording them could manufacture false cycles against locks taken by
// the notifying thread).
void OnWaitRelease(const void* lock) { OnRelease(lock); }
void OnWaitReacquire(const void* lock, const char* name) {
  g_held.push_back({lock, name});
}

}  // namespace

size_t HeldCount() { return g_held.size(); }

#else  // !IRHINT_DEBUG_LOCK_ORDER

size_t HeldCount() { return 0; }

#endif  // IRHINT_DEBUG_LOCK_ORDER

}  // namespace lock_order

#ifdef IRHINT_DEBUG_LOCK_ORDER
#define IRHINT_LOCK_ORDER_ACQUIRE(lock, name) \
  lock_order::OnAcquire(lock, name)
#define IRHINT_LOCK_ORDER_RELEASE(lock) lock_order::OnRelease(lock)
#define IRHINT_LOCK_ORDER_WAIT_RELEASE(lock) \
  lock_order::OnWaitRelease(lock)
#define IRHINT_LOCK_ORDER_WAIT_REACQUIRE(lock, name) \
  lock_order::OnWaitReacquire(lock, name)
#else
#define IRHINT_LOCK_ORDER_ACQUIRE(lock, name) (void)0
#define IRHINT_LOCK_ORDER_RELEASE(lock) (void)0
#define IRHINT_LOCK_ORDER_WAIT_RELEASE(lock) (void)0
#define IRHINT_LOCK_ORDER_WAIT_REACQUIRE(lock, name) (void)0
#endif

void Mutex::Lock() {
  IRHINT_LOCK_ORDER_ACQUIRE(this, name_);
  mu_.lock();
}

void Mutex::Unlock() {
  mu_.unlock();
  IRHINT_LOCK_ORDER_RELEASE(this);
}

void SharedMutex::Lock() {
  IRHINT_LOCK_ORDER_ACQUIRE(this, name_);
  mu_.lock();
}

void SharedMutex::Unlock() {
  mu_.unlock();
  IRHINT_LOCK_ORDER_RELEASE(this);
}

void SharedMutex::LockShared() {
  IRHINT_LOCK_ORDER_ACQUIRE(this, name_);
  mu_.lock_shared();
}

void SharedMutex::UnlockShared() {
  mu_.unlock_shared();
  IRHINT_LOCK_ORDER_RELEASE(this);
}

void CondVar::Wait(Mutex* mu) {
  IRHINT_LOCK_ORDER_WAIT_RELEASE(mu);
  // The caller holds mu (IRHINT_REQUIRES); adopt its native handle for the
  // wait and release the std::unique_lock's ownership claim afterwards so
  // the caller's RAII scope (or explicit Unlock) stays the sole owner.
  std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
  cv_.wait(native);
  native.release();
  IRHINT_LOCK_ORDER_WAIT_REACQUIRE(mu, mu->name_);
}

}  // namespace irhint

// Fixed-size thread pool shared by the parallel query-execution engine.
//
// Workers pull tasks from a single locked queue; Wait() blocks until every
// submitted task has finished, so the pool doubles as a fork-join region.
// ParallelFor shards an index range into contiguous chunks (one per worker
// by default), runs them on the pool, and rethrows the first task exception
// on the calling thread — the library itself never throws, but user-supplied
// callables (and test assertions) may.
//
// The default worker count reads the IRHINT_THREADS environment variable and
// falls back to std::thread::hardware_concurrency().

#ifndef IRHINT_COMMON_THREAD_POOL_H_
#define IRHINT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace irhint {

/// \brief Fixed-size pool of worker threads with a fork-join Wait().
class ThreadPool {
 public:
  /// \brief Start `num_threads` workers (0 selects DefaultThreadCount()).
  explicit ThreadPool(size_t num_threads = 0);

  /// \brief Drains outstanding tasks, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// \brief Enqueue one task. Tasks must not throw (use ParallelFor for
  /// exception-propagating regions) and may be executed in any order.
  void Submit(std::function<void()> task);

  /// \brief Block until every task submitted so far has completed.
  void Wait();

  /// \brief Run fn(i) for every i in [begin, end), sharded into contiguous
  /// chunks across the workers, and block until all chunks finish. The
  /// first exception thrown by fn (if any) is rethrown on the caller.
  /// An empty or inverted range is a no-op.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

  /// \brief Worker count implied by the environment: IRHINT_THREADS if set
  /// to a positive integer, else std::thread::hardware_concurrency()
  /// (minimum 1).
  static size_t DefaultThreadCount();

  /// \brief Dense index of the current pool worker in [0, num_threads), or
  /// -1 when called off-pool (e.g. from the main thread).
  static int CurrentWorkerIndex();

 private:
  void WorkerLoop(int worker_index);

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently running tasks
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace irhint

#endif  // IRHINT_COMMON_THREAD_POOL_H_

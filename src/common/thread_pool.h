// Fixed-size thread pool shared by the parallel query-execution engine.
//
// Workers pull tasks from a single locked queue; Wait() blocks until every
// submitted task has finished, so the pool doubles as a fork-join region.
// Wait() is re-entrant from inside a pool task: a worker that calls it
// helps drain the queue inline (instead of deadlocking on its own
// in-flight count) and returns once every task other than the blocked
// callers has finished. A task that throws no longer takes the process
// down: the first exception is captured and rethrown from the next Wait()
// on the submitting side. ParallelFor shards an index range into
// contiguous chunks (one per worker by default), runs them on the pool,
// and rethrows the first task exception on the calling thread with
// run-to-completion semantics (a throw skips only the throwing index).
//
// The default worker count reads the IRHINT_THREADS environment variable
// and falls back to std::thread::hardware_concurrency().
//
// Concurrency (DESIGN.md §10): one lock, "ThreadPool::mu", guards the
// queue and the fork-join accounting; the annotations below are enforced
// by clang -Wthread-safety. Tasks run with no pool lock held, so they may
// take any lock of their own.

#ifndef IRHINT_COMMON_THREAD_POOL_H_
#define IRHINT_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/synchronization.h"
#include "common/thread_annotations.h"

namespace irhint {

/// \brief Fixed-size pool of worker threads with a fork-join Wait().
class ThreadPool {
 public:
  /// \brief Start `num_threads` workers (0 selects DefaultThreadCount()).
  explicit ThreadPool(size_t num_threads = 0);

  /// \brief Drains outstanding tasks, then joins every worker. A pending
  /// captured exception is dropped (destructors cannot throw) — call
  /// Wait() first if you care.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// \brief Enqueue one task. Tasks may run in any order. If a task
  /// throws, the first exception is rethrown from the next Wait().
  void Submit(std::function<void()> task);

  /// \brief Block until every task submitted so far has completed, then
  /// rethrow the first exception any of them raised (if any). Callable
  /// from inside a pool task: the calling worker helps run queued tasks
  /// while it waits.
  void Wait();

  /// \brief Run fn(i) for every i in [begin, end), sharded into contiguous
  /// chunks across the workers, and block until all chunks finish. The
  /// first exception thrown by fn (if any) is rethrown on the caller.
  /// An empty or inverted range is a no-op.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

  /// \brief Worker count implied by the environment: IRHINT_THREADS if set
  /// to a positive integer, else std::thread::hardware_concurrency()
  /// (minimum 1).
  static size_t DefaultThreadCount();

  /// \brief Dense index of the current pool worker in [0, num_threads), or
  /// -1 when called off-pool (e.g. from the main thread).
  static int CurrentWorkerIndex();

 private:
  void WorkerLoop(int worker_index);
  /// Run one task with no lock held, capturing its exception (first one
  /// wins) into pending_error_.
  void RunTask(std::function<void()> task) IRHINT_EXCLUDES(mu_);
  /// Retire one finished task and wake waiters whose condition may now
  /// hold.
  void FinishTaskLocked() IRHINT_REQUIRES(mu_);

  Mutex mu_{"ThreadPool::mu"};
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ IRHINT_GUARDED_BY(mu_);
  size_t in_flight_ IRHINT_GUARDED_BY(mu_) = 0;  // queued + running tasks
  /// Workers currently blocked inside a re-entrant Wait(); their tasks
  /// count as in-flight but can never finish before Wait returns, so the
  /// fork-join condition for helpers is in_flight_ == waiting_workers_.
  size_t waiting_workers_ IRHINT_GUARDED_BY(mu_) = 0;
  bool stopping_ IRHINT_GUARDED_BY(mu_) = false;
  /// First exception thrown by a Submit()ed task; rethrown by Wait().
  std::exception_ptr pending_error_ IRHINT_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  // unguarded: ctor starts, dtor joins
};

}  // namespace irhint

#endif  // IRHINT_COMMON_THREAD_POOL_H_

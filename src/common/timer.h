// Wall-clock timing helper used by the benchmark harness.

#ifndef IRHINT_COMMON_TIMER_H_
#define IRHINT_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace irhint {

/// \brief Monotonic stopwatch. Construction starts the clock.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// \brief Restart the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// \brief Elapsed time in seconds since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// \brief Elapsed time in nanoseconds.
  uint64_t Nanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace irhint

#endif  // IRHINT_COMMON_TIMER_H_

#include "common/table_printer.h"

#include <cassert>
#include <cstdio>
#include <iomanip>

namespace irhint {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Fmt(uint64_t value) { return std::to_string(value); }
std::string Fmt(int64_t value) { return std::to_string(value); }
std::string Fmt(int value) { return std::to_string(value); }

std::string FmtMb(size_t bytes) {
  return Fmt(static_cast<double>(bytes) / (1024.0 * 1024.0), 1);
}

}  // namespace irhint

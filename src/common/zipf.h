// Zipfian sampling used by the synthetic workload generators (Table 4 of the
// paper: interval durations follow a Zipf(alpha) distribution, element
// frequencies follow Zipf(zeta)).

#ifndef IRHINT_COMMON_ZIPF_H_
#define IRHINT_COMMON_ZIPF_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace irhint {

/// \brief Samples ranks 1..n with P(rank = k) proportional to 1 / k^theta.
///
/// Uses the rejection-inversion method of Hörmann & Derflinger, which is
/// O(1) per sample and does not materialize the n-term harmonic table, so it
/// stays fast for the paper's largest configurations (n up to 512M duration
/// values).
class ZipfSampler {
 public:
  /// \param n      number of ranks (>= 1).
  /// \param theta  skew parameter (> 0). Larger theta -> more skew toward
  ///               rank 1. theta == 1 is handled via the exact logarithmic
  ///               integral.
  ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
    assert(n >= 1);
    assert(theta > 0.0);
    h_x1_ = H(1.5) - 1.0;
    h_n_ = H(static_cast<double>(n) + 0.5);
    s_ = 2.0 - HInv(H(2.5) - std::pow(2.0, -theta));
  }

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// \brief Draw one rank in [1, n].
  uint64_t Sample(Rng& rng) const {
    if (n_ == 1) return 1;
    while (true) {
      const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
      const double x = HInv(u);
      uint64_t k = static_cast<uint64_t>(x + 0.5);
      if (k < 1) k = 1;
      if (k > n_) k = n_;
      const double kd = static_cast<double>(k);
      if (kd - x <= s_ || u >= H(kd + 0.5) - std::pow(kd, -theta_)) {
        return k;
      }
    }
  }

  /// \brief Exact probability mass of rank k (for tests; O(n) normalizer is
  /// computed lazily and cached).
  double Pmf(uint64_t k) const {
    if (norm_ == 0.0) {
      double sum = 0.0;
      for (uint64_t i = 1; i <= n_; ++i) {
        sum += std::pow(static_cast<double>(i), -theta_);
      }
      norm_ = sum;
    }
    return std::pow(static_cast<double>(k), -theta_) / norm_;
  }

 private:
  // H(x) = integral of x^-theta: the antiderivative used by
  // rejection-inversion.
  double H(double x) const {
    if (theta_ == 1.0) return std::log(x);
    return (std::pow(x, 1.0 - theta_) - 1.0) / (1.0 - theta_);
  }

  double HInv(double x) const {
    if (theta_ == 1.0) return std::exp(x);
    return std::pow(1.0 + x * (1.0 - theta_), 1.0 / (1.0 - theta_));
  }

  uint64_t n_;
  double theta_;
  double h_x1_;
  double h_n_;
  double s_;
  mutable double norm_ = 0.0;
};

}  // namespace irhint

#endif  // IRHINT_COMMON_ZIPF_H_

// Annotated synchronization primitives — the only locks in the repo.
//
// Every mutex in the codebase is a named irhint::Mutex or
// irhint::SharedMutex from this header (tools/lint/check_contracts.py
// rejects raw std::mutex & friends anywhere else). The wrappers carry the
// Clang capability attributes from common/thread_annotations.h, so the
// `<lock, data>` contracts are compile-checked by -Wthread-safety, and in
// IRHINT_DEBUG_LOCK_ORDER builds (Debug and sanitizer presets) they feed a
// runtime lock-order registry: each thread's held-lock stack plus a global
// acquisition-order graph, which aborts — printing both participants'
// names — on any acquisition that inverts an order established earlier.
// That catches lock-order deadlocks even when the two acquisitions never
// actually collide in the observed schedule, which is exactly the class
// TSan cannot see.
//
// Lock names are class-level ranks: two simultaneously held locks must
// have distinct names (same-name pairs are reported as inversions), so
// name locks "Class::purpose" and never hold two instances of one class.

#ifndef IRHINT_COMMON_SYNCHRONIZATION_H_
#define IRHINT_COMMON_SYNCHRONIZATION_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace irhint {

/// \brief Named exclusive mutex (std::mutex + annotations + lock-order
/// instrumentation). Non-recursive: relocking from the owning thread is a
/// deadlock, and the debug registry aborts on it.
class IRHINT_CAPABILITY("mutex") Mutex {
 public:
  /// \brief `name` must outlive the mutex (string literals in practice)
  /// and is the lock's rank in the order registry and in diagnostics.
  explicit Mutex(const char* name) : name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() IRHINT_ACQUIRE();
  void Unlock() IRHINT_RELEASE();

  const char* name() const { return name_; }

 private:
  friend class CondVar;

  std::mutex mu_;
  const char* name_;
};

/// \brief Named reader/writer mutex. Shared acquisitions participate in
/// lock-order checking exactly like exclusive ones (a shared/exclusive
/// inversion deadlocks just the same).
class IRHINT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(const char* name) : name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() IRHINT_ACQUIRE();
  void Unlock() IRHINT_RELEASE();
  void LockShared() IRHINT_ACQUIRE_SHARED();
  void UnlockShared() IRHINT_RELEASE_SHARED();

  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const char* name_;
};

/// \brief RAII exclusive lock on a Mutex.
class IRHINT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) IRHINT_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() IRHINT_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief RAII exclusive (writer) lock on a SharedMutex.
class IRHINT_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) IRHINT_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterLock() IRHINT_RELEASE() { mu_->Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief RAII shared (reader) lock on a SharedMutex.
class IRHINT_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) IRHINT_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderLock() IRHINT_RELEASE() { mu_->UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief Condition variable bound to Mutex. No predicate overload on
/// purpose: spell waits as `while (!cond) cv.Wait(&mu);` so the predicate
/// reads stay inside the locked scope the thread-safety analysis sees.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// \brief Atomically release `*mu`, sleep, and reacquire it before
  /// returning. Spurious wakeups happen; always re-test the predicate.
  void Wait(Mutex* mu) IRHINT_REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

namespace lock_order {

// Instrumentation hooks called by the wrappers in IRHINT_DEBUG_LOCK_ORDER
// builds (no-ops otherwise; see synchronization.cc). Exposed for tests.

/// \brief Number of locks the calling thread currently holds (0 when
/// checking is compiled out).
size_t HeldCount();

}  // namespace lock_order

}  // namespace irhint

#endif  // IRHINT_COMMON_SYNCHRONIZATION_H_

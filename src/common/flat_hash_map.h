// Open-addressing hash containers with robin-hood probing and backward-shift
// deletion. Used on hot query paths (per-division inverted indexes,
// candidate de-duplication) where std::unordered_map's node allocations and
// pointer chasing would dominate; the layout here is a single flat array of
// slots, as in the swiss-table style maps used by modern database engines.

#ifndef IRHINT_COMMON_FLAT_HASH_MAP_H_
#define IRHINT_COMMON_FLAT_HASH_MAP_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace irhint {

namespace internal {

/// \brief Mixes a size_t hash so that low bits are well distributed even for
/// identity-style hashes of sequential integer keys.
inline size_t MixHash(size_t h) {
  uint64_t z = static_cast<uint64_t>(h) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<size_t>(z ^ (z >> 31));
}

}  // namespace internal

/// \brief Flat robin-hood hash map.
///
/// Invariants: capacity is a power of two; load factor <= 7/8; each occupied
/// slot records its probe distance, and slot distances along a probe chain
/// are kept "robin hood" ordered so that lookups can stop as soon as the
/// probe distance exceeds the stored one.
template <typename K, typename V, typename Hash = std::hash<K>>
class FlatHashMap {
 public:
  using value_type = std::pair<K, V>;

  FlatHashMap() = default;

  explicit FlatHashMap(size_t initial_capacity) {
    Rehash(NormalizeCapacity(initial_capacity));
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    size_ = 0;
    mask_ = 0;
  }

  /// \brief Ensure space for n elements without rehashing.
  void reserve(size_t n) {
    const size_t needed = NormalizeCapacity(n + n / 7 + 1);
    if (needed > slots_.size()) Rehash(needed);
  }

  /// \brief Returns a pointer to the mapped value or nullptr if absent.
  V* find(const K& key) {
    return const_cast<V*>(
        static_cast<const FlatHashMap*>(this)->find(key));
  }

  const V* find(const K& key) const {
    if (slots_.empty()) return nullptr;
    size_t index = internal::MixHash(Hash{}(key)) & mask_;
    uint32_t distance = 0;
    while (true) {
      const Slot& slot = slots_[index];
      if (!slot.occupied || distance > slot.distance) return nullptr;
      if (slot.kv.first == key) return &slot.kv.second;
      index = (index + 1) & mask_;
      ++distance;
    }
  }

  bool contains(const K& key) const { return find(key) != nullptr; }

  /// \brief Insert or overwrite; returns true if a new key was inserted.
  bool insert_or_assign(const K& key, V value) {
    V* existing = find(key);
    if (existing != nullptr) {
      *existing = std::move(value);
      return false;
    }
    EmplaceNew(key, std::move(value));
    return true;
  }

  /// \brief Access the value for key, default-constructing it if absent.
  V& operator[](const K& key) {
    V* existing = find(key);
    if (existing != nullptr) return *existing;
    return EmplaceNew(key, V{});
  }

  /// \brief Remove key; returns true if it was present.
  bool erase(const K& key) {
    if (slots_.empty()) return false;
    size_t index = internal::MixHash(Hash{}(key)) & mask_;
    uint32_t distance = 0;
    while (true) {
      Slot& slot = slots_[index];
      if (!slot.occupied || distance > slot.distance) return false;
      if (slot.kv.first == key) break;
      index = (index + 1) & mask_;
      ++distance;
    }
    // Backward-shift deletion: pull subsequent displaced entries back.
    size_t hole = index;
    while (true) {
      const size_t next = (hole + 1) & mask_;
      Slot& next_slot = slots_[next];
      if (!next_slot.occupied || next_slot.distance == 0) break;
      slots_[hole].kv = std::move(next_slot.kv);
      slots_[hole].occupied = true;
      slots_[hole].distance = next_slot.distance - 1;
      hole = next;
    }
    slots_[hole].occupied = false;
    slots_[hole].kv = value_type{};
    --size_;
    return true;
  }

  /// \brief Visit every (key, value) pair; fn(const K&, V&).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (Slot& slot : slots_) {
      if (slot.occupied) fn(slot.kv.first, slot.kv.second);
    }
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.occupied) fn(slot.kv.first, slot.kv.second);
    }
  }

  /// \brief Approximate heap footprint in bytes (for index-size reporting).
  size_t MemoryUsageBytes() const { return slots_.size() * sizeof(Slot); }

 private:
  struct Slot {
    value_type kv{};
    uint32_t distance = 0;
    bool occupied = false;
  };

  static size_t NormalizeCapacity(size_t n) {
    size_t cap = 8;
    while (cap < n) cap <<= 1;
    return cap;
  }

  V& EmplaceNew(const K& key, V value) {
    if (slots_.empty() || (size_ + 1) * 8 > slots_.size() * 7) {
      Rehash(slots_.empty() ? 8 : slots_.size() * 2);
    }
    ++size_;
    return *InsertSlot(key, std::move(value));
  }

  // Robin-hood insertion of a key known to be absent. Returns the address of
  // the mapped value for the originally inserted key.
  V* InsertSlot(K key, V value) {
    size_t index = internal::MixHash(Hash{}(key)) & mask_;
    uint32_t distance = 0;
    V* result = nullptr;
    bool carrying_original = true;
    while (true) {
      Slot& slot = slots_[index];
      if (!slot.occupied) {
        slot.kv = value_type(std::move(key), std::move(value));
        slot.distance = distance;
        slot.occupied = true;
        return carrying_original ? &slot.kv.second : result;
      }
      if (slot.distance < distance) {
        std::swap(slot.kv.first, key);
        std::swap(slot.kv.second, value);
        std::swap(slot.distance, distance);
        if (carrying_original) {
          result = &slot.kv.second;
          carrying_original = false;
        }
      }
      index = (index + 1) & mask_;
      ++distance;
    }
  }

  void Rehash(size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    size_ = 0;
    for (Slot& slot : old) {
      if (slot.occupied) {
        ++size_;
        InsertSlot(std::move(slot.kv.first), std::move(slot.kv.second));
      }
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

/// \brief Flat robin-hood hash set built on FlatHashMap.
template <typename K, typename Hash = std::hash<K>>
class FlatHashSet {
 public:
  FlatHashSet() = default;
  explicit FlatHashSet(size_t initial_capacity) : map_(initial_capacity) {}

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(size_t n) { map_.reserve(n); }

  /// \brief Insert key; returns true if it was newly added.
  bool insert(const K& key) { return map_.insert_or_assign(key, Empty{}); }
  bool contains(const K& key) const { return map_.contains(key); }
  bool erase(const K& key) { return map_.erase(key); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    map_.ForEach([&fn](const K& key, const Empty&) { fn(key); });
  }

  size_t MemoryUsageBytes() const { return map_.MemoryUsageBytes(); }

 private:
  struct Empty {};
  FlatHashMap<K, Empty, Hash> map_;
};

}  // namespace irhint

#endif  // IRHINT_COMMON_FLAT_HASH_MAP_H_

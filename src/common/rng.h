// Deterministic pseudo-random number generation used by the synthetic data
// generators and the tests. A small, fast xoshiro256** engine with explicit
// seeding keeps workloads reproducible across platforms (std::mt19937 would
// also be deterministic, but the distributions in <random> are not
// implementation-stable; we implement the few we need ourselves).

#ifndef IRHINT_COMMON_RNG_H_
#define IRHINT_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>

namespace irhint {

/// \brief xoshiro256** pseudo-random generator with SplitMix64 seeding.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// \brief Re-seed the generator; the same seed reproduces the same stream.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// \brief Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// \brief Uniform integer in [0, bound). bound must be positive.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    // Lemire's unbiased bounded generation.
    __uint128_t product = static_cast<__uint128_t>(Next()) * bound;
    uint64_t low = static_cast<uint64_t>(product);
    if (low < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        product = static_cast<__uint128_t>(Next()) * bound;
        low = static_cast<uint64_t>(product);
      }
    }
    return static_cast<uint64_t>(product >> 64);
  }

  /// \brief Uniform integer in the inclusive range [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// \brief Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// \brief Standard normal via Box-Muller (deterministic, no cached spare).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    while (u1 <= 1e-300) u1 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// \brief Bernoulli draw with probability p of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace irhint

#endif  // IRHINT_COMMON_RNG_H_

// Environment-variable access for the whole repo.
//
// std::getenv is on clang-tidy's concurrency-mt-unsafe list because it
// races with setenv/putenv. This process never mutates its environment
// after main() starts (tests that do use setenv are single-threaded at
// that point), so reads are safe; centralizing them here keeps that
// argument — and the one suppression it justifies — in a single place.

#ifndef IRHINT_COMMON_ENV_H_
#define IRHINT_COMMON_ENV_H_

#include <cstdlib>

namespace irhint {

/// \brief Value of environment variable `name`, or nullptr when unset.
/// Safe under concurrent readers; see the file comment for why.
inline const char* GetEnv(const char* name) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — no setenv after threads start.
  return std::getenv(name);
}

}  // namespace irhint

#endif  // IRHINT_COMMON_ENV_H_

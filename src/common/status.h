// Lightweight Status / StatusOr error-handling types, in the spirit of
// RocksDB's rocksdb::Status and Arrow's arrow::Status. The library does not
// use exceptions; every fallible operation returns a Status (or StatusOr<T>
// when a value is produced).

#ifndef IRHINT_COMMON_STATUS_H_
#define IRHINT_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace irhint {

/// \brief Result of a fallible operation: an error code plus a message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the
/// message is empty in the OK case, which is the common path).
///
/// The class itself is [[nodiscard]]: any call returning a Status by
/// value that drops the result is a compiler warning on gcc and clang,
/// and an error under the irhint-status-discipline clang-tidy check
/// (tools/irhint-checks/). Ignoring a Status is how decode failures and
/// I/O errors silently become corruption; a caller that genuinely cannot
/// act on one must still inspect it and say why.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kOutOfDomain,
    kNotFound,
    kAlreadyExists,
    kNotSupported,
    kIoError,
    kCorruption,
    kUnavailable,
  };

  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status OutOfDomain(std::string msg) {
    return Status(Code::kOutOfDomain, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsOutOfDomain() const { return code_ == Code::kOutOfDomain; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  /// \brief Human-readable rendering, e.g. "InvalidArgument: bad m".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = CodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  static const char* CodeName(Code code) {
    switch (code) {
      case Code::kOk: return "OK";
      case Code::kInvalidArgument: return "InvalidArgument";
      case Code::kOutOfDomain: return "OutOfDomain";
      case Code::kNotFound: return "NotFound";
      case Code::kAlreadyExists: return "AlreadyExists";
      case Code::kNotSupported: return "NotSupported";
      case Code::kIoError: return "IoError";
      case Code::kCorruption: return "Corruption";
      case Code::kUnavailable: return "Unavailable";
    }
    return "Unknown";
  }

  Code code_ = Code::kOk;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result / absl::StatusOr. Accessing the value of an
/// erroneous StatusOr is a programming error (asserts in debug builds).
/// [[nodiscard]] for the same reason as Status: a dropped StatusOr is a
/// dropped error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok());
  }
  StatusOr(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

/// \brief Propagate a non-OK Status to the caller.
#define IRHINT_RETURN_NOT_OK(expr)           \
  do {                                       \
    ::irhint::Status _st = (expr);           \
    if (!_st.ok()) return _st;               \
  } while (false)

}  // namespace irhint

#endif  // IRHINT_COMMON_STATUS_H_

// Clang thread-safety-analysis attribute macros (DESIGN.md §10).
//
// The `<lock, data>` associations that DESIGN.md's concurrency model
// describes in prose are spelled in code with these macros and checked by
// `clang -Wthread-safety` (a CI gate, -Werror=thread-safety): a field
// tagged IRHINT_GUARDED_BY(mu) cannot be touched without holding `mu`, a
// method tagged IRHINT_REQUIRES(mu) cannot be called without it, and the
// RAII lock types in common/synchronization.h are the only way to hold
// one. Under gcc (which has no such analysis) every macro expands to
// nothing, so the annotations are free documentation there.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#ifndef IRHINT_COMMON_THREAD_ANNOTATIONS_H_
#define IRHINT_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define IRHINT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define IRHINT_THREAD_ANNOTATION(x)  // no-op on gcc/msvc
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define IRHINT_CAPABILITY(x) IRHINT_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define IRHINT_SCOPED_CAPABILITY IRHINT_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be accessed while holding `x` (exclusively for writes,
/// at least shared for reads).
#define IRHINT_GUARDED_BY(x) IRHINT_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is protected by `x` (the pointer itself
/// may additionally be IRHINT_GUARDED_BY the same or another capability).
#define IRHINT_PT_GUARDED_BY(x) IRHINT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares the global acquisition order between two capabilities.
#define IRHINT_ACQUIRED_BEFORE(...) \
  IRHINT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define IRHINT_ACQUIRED_AFTER(...) \
  IRHINT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function requires the capability held exclusively (resp. shared) on
/// entry and does not release it.
#define IRHINT_REQUIRES(...) \
  IRHINT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define IRHINT_REQUIRES_SHARED(...) \
  IRHINT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (must not be held on entry).
#define IRHINT_ACQUIRE(...) \
  IRHINT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define IRHINT_ACQUIRE_SHARED(...) \
  IRHINT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define IRHINT_RELEASE(...) \
  IRHINT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define IRHINT_RELEASE_SHARED(...) \
  IRHINT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define IRHINT_TRY_ACQUIRE(b, ...) \
  IRHINT_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Function must NOT be called while holding the capability (deadlock
/// guard for self-locking public APIs).
#define IRHINT_EXCLUDES(...) \
  IRHINT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code reached only
/// under a lock the analysis cannot see).
#define IRHINT_ASSERT_CAPABILITY(x) \
  IRHINT_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define IRHINT_RETURN_CAPABILITY(x) IRHINT_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a `// thread-safety:` justification comment on the same or the
/// preceding line — tools/lint/check_contracts.py enforces this.
#define IRHINT_NO_THREAD_SAFETY_ANALYSIS \
  IRHINT_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // IRHINT_COMMON_THREAD_ANNOTATIONS_H_

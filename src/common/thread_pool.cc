#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <utility>

namespace irhint {

namespace {
thread_local int g_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreadCount();
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<int>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop(int worker_index) {
  g_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t total = end - begin;
  const size_t num_chunks = std::min(total, num_threads());
  const size_t chunk = (total + num_chunks - 1) / num_chunks;

  // First exception wins; later ones are swallowed. Every other index
  // still runs to completion (a throw skips only the throwing index), so
  // state stays consistent and callers can inspect partial progress.
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t lo = begin + c * chunk;
    const size_t hi = std::min(end, lo + chunk);
    Submit([&, lo, hi] {
      for (size_t i = lo; i < hi; ++i) {
        try {
          fn(i);
        } catch (...) {
          if (!failed.exchange(true)) {
            std::lock_guard<std::mutex> lock(error_mu);
            first_error = std::current_exception();
          }
        }
      }
    });
  }
  Wait();
  if (failed.load()) {
    std::lock_guard<std::mutex> lock(error_mu);
    std::rethrow_exception(first_error);
  }
}

size_t ThreadPool::DefaultThreadCount() {
  if (const char* value = std::getenv("IRHINT_THREADS")) {
    const long long n = std::atoll(value);
    if (n > 0) return static_cast<size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

int ThreadPool::CurrentWorkerIndex() { return g_worker_index; }

}  // namespace irhint

#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/env.h"

namespace irhint {

namespace {
thread_local int g_worker_index = -1;
// Which pool the current thread is a worker of; lets Wait() detect
// re-entrancy from this pool's own tasks (helping) vs. a foreign pool's
// task (which waits like any external caller).
thread_local ThreadPool* g_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreadCount();
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<int>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
    // A worker blocked in a re-entrant Wait() sleeps on all_done_, not
    // work_available_; it must wake to help with the new task, or the
    // queue can starve when every worker is a waiter.
    if (waiting_workers_ > 0) all_done_.NotifyAll();
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  mu_.Lock();
  if (g_worker_pool == this) {
    // Called from one of our own tasks: that task is itself in-flight, so
    // waiting for in_flight_ == 0 would deadlock. Help drain the queue
    // instead, and treat the blocked callers as already-retired: the join
    // condition is "all remaining in-flight tasks are blocked right here".
    ++waiting_workers_;
    all_done_.NotifyAll();  // our own entry may complete others' condition
    for (;;) {
      if (!queue_.empty()) {
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        mu_.Unlock();
        RunTask(std::move(task));
        mu_.Lock();
        FinishTaskLocked();
        continue;
      }
      if (in_flight_ == waiting_workers_) break;
      all_done_.Wait(&mu_);
    }
    --waiting_workers_;
  } else {
    while (in_flight_ != 0) all_done_.Wait(&mu_);
  }
  error = pending_error_;
  pending_error_ = nullptr;
  mu_.Unlock();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::RunTask(std::function<void()> task) {
  try {
    task();
  } catch (...) {
    MutexLock lock(&mu_);
    if (!pending_error_) pending_error_ = std::current_exception();
  }
}

void ThreadPool::FinishTaskLocked() {
  --in_flight_;
  if (in_flight_ <= waiting_workers_) all_done_.NotifyAll();
}

void ThreadPool::WorkerLoop(int worker_index) {
  g_worker_index = worker_index;
  g_worker_pool = this;
  mu_.Lock();
  for (;;) {
    while (!stopping_ && queue_.empty()) work_available_.Wait(&mu_);
    if (queue_.empty()) break;  // stopping_ and drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    mu_.Unlock();
    RunTask(std::move(task));
    mu_.Lock();
    FinishTaskLocked();
  }
  mu_.Unlock();
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t total = end - begin;
  const size_t num_chunks = std::min(total, num_threads());
  const size_t chunk = (total + num_chunks - 1) / num_chunks;

  // First exception wins; later ones are swallowed. Every other index
  // still runs to completion (a throw skips only the throwing index), so
  // state stays consistent and callers can inspect partial progress.
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  Mutex error_mu{"ThreadPool::parallel_for_error"};

  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t lo = begin + c * chunk;
    const size_t hi = std::min(end, lo + chunk);
    Submit([&, lo, hi] {
      for (size_t i = lo; i < hi; ++i) {
        try {
          fn(i);
        } catch (...) {
          if (!failed.exchange(true)) {
            MutexLock lock(&error_mu);
            first_error = std::current_exception();
          }
        }
      }
    });
  }
  Wait();
  if (failed.load()) {
    MutexLock lock(&error_mu);
    std::rethrow_exception(first_error);
  }
}

size_t ThreadPool::DefaultThreadCount() {
  if (const char* value = GetEnv("IRHINT_THREADS")) {
    const long long n = std::atoll(value);
    if (n > 0) return static_cast<size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

int ThreadPool::CurrentWorkerIndex() { return g_worker_index; }

}  // namespace irhint

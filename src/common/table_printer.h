// Plain-text table rendering for the benchmark harness: each bench binary
// prints the rows/series of the corresponding paper table or figure.

#ifndef IRHINT_COMMON_TABLE_PRINTER_H_
#define IRHINT_COMMON_TABLE_PRINTER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace irhint {

/// \brief Collects rows of string cells and renders an aligned text table.
///
/// Usage:
///   TablePrinter table({"index", "time [s]", "size [MB]"});
///   table.AddRow({"irHINT-perf", Fmt(1.23), Fmt(415.0)});
///   table.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// \brief Append one row; must match the header width.
  void AddRow(std::vector<std::string> cells);

  /// \brief Render with column alignment and a separator under the header.
  void Print(std::ostream& os) const;

  /// \brief Render as CSV (for piping into plotting scripts).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Format a double with a sensible number of significant digits.
std::string Fmt(double value, int precision = 3);

/// \brief Format an integer count with no decoration.
std::string Fmt(uint64_t value);
std::string Fmt(int64_t value);
std::string Fmt(int value);

/// \brief Format bytes as a human-readable MB figure.
std::string FmtMb(size_t bytes);

}  // namespace irhint

#endif  // IRHINT_COMMON_TABLE_PRINTER_H_

// Overflow-detecting and saturating integer arithmetic for decode paths.
//
// Every size or index computed from untrusted bytes (snapshot sections,
// WAL frames, score blocks — anything behind an IRHINT_UNTRUSTED reader)
// must go through these helpers before it reaches an allocation, a
// resize, an index expression, or pointer arithmetic. The fuzzer-found
// decoder bugs (PR 4) were all of this shape: an unchecked `e + 1` that
// wrapped in ElementId width, and byte counts multiplied past SIZE_MAX.
// The helpers make the overflow check the *only* way to spell the
// arithmetic, and the irhint-untrusted-decode clang-tidy check
// (tools/irhint-checks/) treats them as taint sanitizers: a tainted
// value that flows through CheckedAdd/CheckedMul/CheckedCast/GrowToFit
// is blessed, one that reaches a sink directly is a build error.
//
// All helpers are constexpr, branch-cheap (single compiler intrinsic on
// gcc and clang), and never trap: failure is a `false` return (Checked*)
// or a clamped value (Saturating*), so decode code can surface a clean
// Status::Corruption instead of UB.

#ifndef IRHINT_COMMON_CHECKED_MATH_H_
#define IRHINT_COMMON_CHECKED_MATH_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "common/contracts.h"

namespace irhint {

/// \brief out = a + b; false (out untouched) on overflow.
template <typename T>
IRHINT_SANITIZER constexpr bool CheckedAdd(T a, T b, T* out) {
  static_assert(std::is_integral_v<T>);
  T tmp{};
  if (__builtin_add_overflow(a, b, &tmp)) return false;
  *out = tmp;
  return true;
}

/// \brief out = a - b; false (out untouched) on overflow/underflow.
template <typename T>
IRHINT_SANITIZER constexpr bool CheckedSub(T a, T b, T* out) {
  static_assert(std::is_integral_v<T>);
  T tmp{};
  if (__builtin_sub_overflow(a, b, &tmp)) return false;
  *out = tmp;
  return true;
}

/// \brief out = a * b; false (out untouched) on overflow.
template <typename T>
IRHINT_SANITIZER constexpr bool CheckedMul(T a, T b, T* out) {
  static_assert(std::is_integral_v<T>);
  T tmp{};
  if (__builtin_mul_overflow(a, b, &tmp)) return false;
  *out = tmp;
  return true;
}

/// \brief Narrow (or widen) `v` to To; false if the value does not fit.
template <typename To, typename From>
IRHINT_SANITIZER constexpr bool CheckedCast(From v, To* out) {
  static_assert(std::is_integral_v<From> && std::is_integral_v<To>);
  To tmp{};
  // add_overflow with a zero addend is the canonical "does it fit"
  // intrinsic; it handles every signedness combination correctly.
  if (__builtin_add_overflow(v, From{0}, &tmp)) return false;
  if (static_cast<From>(tmp) != v ||
      (v < From{0}) != (tmp < To{0})) {
    return false;
  }
  *out = tmp;
  return true;
}

/// \brief a + b clamped to the representable range instead of wrapping.
template <typename T>
IRHINT_SANITIZER constexpr T SaturatingAdd(T a, T b) {
  static_assert(std::is_unsigned_v<T>,
                "saturation direction is only unambiguous unsigned");
  T tmp{};
  if (__builtin_add_overflow(a, b, &tmp)) {
    return std::numeric_limits<T>::max();
  }
  return tmp;
}

/// \brief a * b clamped to the representable range instead of wrapping.
template <typename T>
IRHINT_SANITIZER constexpr T SaturatingMul(T a, T b) {
  static_assert(std::is_unsigned_v<T>,
                "saturation direction is only unambiguous unsigned");
  T tmp{};
  if (__builtin_mul_overflow(a, b, &tmp)) {
    return std::numeric_limits<T>::max();
  }
  return tmp;
}

/// \brief Table length needed so index `id` is addressable: id + 1 in
/// size_t width. The unchecked spelling `resize(e + 1)` wraps to zero at
/// the max ElementId (the PR 4 corpus/dictionary OOB-write bug); here the
/// widening happens before the increment and cannot wrap for any 32-bit
/// id. Pair with a kElementIdLimit-style cap so a hostile id cannot ask
/// for a multi-gigabyte table either.
IRHINT_SANITIZER constexpr size_t GrowToFit(uint32_t id) {
  return static_cast<size_t>(id) + 1;
}

/// \brief True iff `count` elements of `elem_size` bytes fit inside
/// `available` bytes — the standard guard before trusting an on-disk
/// element count. Overflow-safe for every operand combination (the
/// division form cannot wrap, unlike `count * elem_size <= available`).
IRHINT_SANITIZER constexpr bool FitsInBytes(uint64_t count,
                                            size_t elem_size,
                                            size_t available) {
  return elem_size == 0 || count <= available / elem_size;
}

}  // namespace irhint

#endif  // IRHINT_COMMON_CHECKED_MATH_H_

// Source-level contract annotations consumed by the irhint-checks
// clang-tidy plugin (tools/irhint-checks/, DESIGN.md §13). On Clang the
// macros expand to [[clang::annotate]] attributes the AST checks key on;
// on gcc (and any compiler without the attribute) they compile away, so
// annotating a declaration never changes codegen or ABI.
//
//   IRHINT_UNTRUSTED           marks a function whose outputs (return
//                              value and out-parameters) are decoded from
//                              bytes an attacker may control: snapshot
//                              sections, WAL frames, score blocks, bench
//                              JSON. Values flowing out of such a function
//                              are tainted until they pass through a
//                              sanitizer (below) or an explicit bound
//                              check; irhint-untrusted-decode flags any
//                              tainted value reaching resize/reserve/
//                              indexing/pointer arithmetic unchecked.
//
//   IRHINT_SANITIZER           marks a blessed validation helper (the
//                              checked_math.h family, CheckedCast-style
//                              range guards). Passing a tainted value
//                              through one of these launders the taint.
//
//   IRHINT_KEEPALIVE_EXTERNAL  marks a class whose FlatArray/span members
//                              may view a mapping it does not itself keep
//                              alive, because a documented owner one level
//                              up holds the keepalive (e.g. the index's
//                              storage_keepalive_ covers ScoreBlockStore).
//                              irhint-view-lifetime skips such classes
//                              instead of demanding a MappedFile member.

#ifndef IRHINT_COMMON_CONTRACTS_H_
#define IRHINT_COMMON_CONTRACTS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(annotate)
#define IRHINT_ANNOTATE(tag) [[clang::annotate(tag)]]
#endif
#endif
#ifndef IRHINT_ANNOTATE
#define IRHINT_ANNOTATE(tag)
#endif

#define IRHINT_UNTRUSTED IRHINT_ANNOTATE("irhint::untrusted")
#define IRHINT_SANITIZER IRHINT_ANNOTATE("irhint::sanitizer")
#define IRHINT_KEEPALIVE_EXTERNAL IRHINT_ANNOTATE("irhint::keepalive-external")

#endif  // IRHINT_COMMON_CONTRACTS_H_

// Small bit-manipulation helpers used by the HINT domain partitioning.

#ifndef IRHINT_COMMON_BITS_H_
#define IRHINT_COMMON_BITS_H_

#include <bit>
#include <cassert>
#include <cstdint>

namespace irhint {

/// \brief Number of bits needed to represent values 0..v (>= 1 for v == 0).
inline int BitWidth(uint64_t v) {
  return v == 0 ? 1 : std::bit_width(v);
}

/// \brief Smallest power of two >= v (v must leave room in 64 bits).
inline uint64_t CeilPow2(uint64_t v) {
  return std::bit_ceil(v);
}

/// \brief True iff v is a power of two (v > 0).
inline bool IsPow2(uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

/// \brief The level-l prefix of a bottom-level (level m) partition number:
/// drops the (m - l) least significant bits. This is the index of the
/// ancestor partition at level l in the HINT hierarchy.
inline uint64_t LevelPrefix(int level, int m, uint64_t bottom_index) {
  assert(level >= 0 && level <= m);
  return bottom_index >> (m - level);
}

}  // namespace irhint

#endif  // IRHINT_COMMON_BITS_H_

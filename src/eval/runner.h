// Measurement harness shared by all bench binaries: build costs, query
// throughput (queries/second, the paper's efficiency metric), and update
// timings; plus the environment knobs that scale bench workloads.

#ifndef IRHINT_EVAL_RUNNER_H_
#define IRHINT_EVAL_RUNNER_H_

#include <cstdint>
#include <vector>

#include "core/temporal_ir_index.h"
#include "data/corpus.h"
#include "data/object.h"

namespace irhint {

/// \brief Result of timing an index build.
struct BuildStats {
  double seconds = 0.0;
  size_t bytes = 0;
};

/// \brief Result of timing a query batch.
struct QueryStats {
  double seconds = 0.0;
  double queries_per_second = 0.0;
  uint64_t total_results = 0;
  size_t num_queries = 0;
  /// Worker threads used (1 for the serial path).
  size_t num_threads = 1;
  /// Per-query latency percentiles in microseconds, merged across every
  /// worker's samples. Only the parallel path fills these (the serial path
  /// avoids per-query clock reads to keep the paper's throughput metric
  /// undisturbed).
  double latency_p50_us = 0.0;
  double latency_p99_us = 0.0;
};

/// \brief Build `index` from `corpus`, timing it and measuring its size.
BuildStats MeasureBuild(TemporalIrIndex* index, const Corpus& corpus);

/// \brief Run all queries once, reporting throughput.
QueryStats MeasureQueries(const TemporalIrIndex& index,
                          const std::vector<Query>& queries);

/// \brief Run the batch sharded over `num_threads` pool workers (0 reads
/// IRHINT_THREADS, falling back to the hardware concurrency). Each worker
/// owns its shard's result buffer and latency samples; shard tallies are
/// merged deterministically, so total_results is identical to the serial
/// path for any thread count. Requires only the documented read-concurrency
/// contract: concurrent const Query() calls are safe on a built index.
QueryStats ParallelMeasureQueries(const TemporalIrIndex& index,
                                  const std::vector<Query>& queries,
                                  size_t num_threads = 0);

/// \brief Insert the objects [begin, end) of `corpus`, timing the batch.
double MeasureInsertSeconds(TemporalIrIndex* index, const Corpus& corpus,
                            size_t begin, size_t end);

/// \brief Erase the objects [begin, end) of `corpus`, timing the batch.
double MeasureEraseSeconds(TemporalIrIndex* index, const Corpus& corpus,
                           size_t begin, size_t end);

/// \brief Scale factor for bench datasets: env IRHINT_SCALE (default 1.0
/// multiplies each bench's built-in laptop-scale defaults).
double BenchScaleFromEnv();

/// \brief Queries per measurement: env IRHINT_QUERIES (default `fallback`).
size_t BenchQueriesFromEnv(size_t fallback);

/// \brief Query threads: env IRHINT_THREADS (default `fallback`; 1 keeps
/// the serial measurement path).
size_t BenchThreadsFromEnv(size_t fallback);

}  // namespace irhint

#endif  // IRHINT_EVAL_RUNNER_H_

#include "eval/workload.h"

namespace irhint {

std::vector<SelectivityBin> PaperSelectivityBins() {
  return {
      {"0", -1.0, 0.0},
      {"(0,1e-3]", 0.0, 1e-3},
      {"(1e-3,1e-2]", 1e-3, 1e-2},
      {"(1e-2,1e-1]", 1e-2, 1e-1},
      {"(1e-1,1]", 1e-1, 1.0},
      {"(1,10]", 1.0, 10.0},
  };
}

std::vector<Workload> BinBySelectivity(const TemporalIrIndex& oracle,
                                       const std::vector<Query>& mixed,
                                       size_t corpus_cardinality) {
  const std::vector<SelectivityBin> bins = PaperSelectivityBins();
  std::vector<Workload> out(bins.size());
  for (size_t b = 0; b < bins.size(); ++b) out[b].name = bins[b].label;

  std::vector<ObjectId> results;
  for (const Query& q : mixed) {
    oracle.Query(q, &results);
    const double pct = 100.0 * static_cast<double>(results.size()) /
                       static_cast<double>(corpus_cardinality);
    for (size_t b = 0; b < bins.size(); ++b) {
      const bool zero_bin = bins[b].hi_pct == 0.0;
      const bool matches = zero_bin
                               ? results.empty()
                               : (pct > bins[b].lo_pct && pct <= bins[b].hi_pct);
      if (matches) {
        out[b].queries.push_back(q);
        break;
      }
    }
  }
  return out;
}

}  // namespace irhint

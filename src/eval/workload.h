// Named query workloads and selectivity binning (experimental axis (4) of
// Section 5.1).

#ifndef IRHINT_EVAL_WORKLOAD_H_
#define IRHINT_EVAL_WORKLOAD_H_

#include <string>
#include <vector>

#include "core/temporal_ir_index.h"
#include "data/object.h"

namespace irhint {

/// \brief A labeled batch of queries.
struct Workload {
  std::string name;
  std::vector<Query> queries;
};

/// \brief The paper's selectivity bins (% of corpus cardinality):
/// 0, (0, 1e-3], (1e-3, 1e-2], (1e-2, 1e-1], (1e-1, 1], (1, 10].
struct SelectivityBin {
  std::string label;
  double lo_pct;  // exclusive
  double hi_pct;  // inclusive
};

std::vector<SelectivityBin> PaperSelectivityBins();

/// \brief Evaluate `mixed` with `oracle` and distribute the queries into the
/// paper's selectivity bins (queries outside every bin are dropped).
std::vector<Workload> BinBySelectivity(const TemporalIrIndex& oracle,
                                       const std::vector<Query>& mixed,
                                       size_t corpus_cardinality);

}  // namespace irhint

#endif  // IRHINT_EVAL_WORKLOAD_H_

#include "eval/runner.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/env.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace irhint {

namespace {

// Repeat each measured batch until this much wall time accumulates so that
// fast indexes are not measured at timer granularity.
constexpr double kMinSeconds = 0.2;

// Nearest-rank percentile over an unsorted sample vector (sorted in place).
double PercentileUs(std::vector<double>* samples, double pct) {
  if (samples->empty()) return 0.0;
  std::sort(samples->begin(), samples->end());
  const size_t rank = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(samples->size())));
  return (*samples)[std::min(samples->size(), std::max<size_t>(rank, 1)) - 1];
}

}  // namespace

BuildStats MeasureBuild(TemporalIrIndex* index, const Corpus& corpus) {
  BuildStats stats;
  Timer timer;
  const Status st = index->Build(corpus);
  stats.seconds = timer.Seconds();
  if (!st.ok()) {
    stats.seconds = -1.0;
    return stats;
  }
  stats.bytes = index->MemoryUsageBytes();
  return stats;
}

QueryStats MeasureQueries(const TemporalIrIndex& index,
                          const std::vector<Query>& queries) {
  QueryStats stats;
  stats.num_queries = queries.size();
  if (queries.empty()) return stats;
  std::vector<ObjectId> results;

  // Warm-up pass over a prefix (touches index pages, sizes the scratch).
  const size_t warmup = std::min<size_t>(queries.size(), 32);
  for (size_t i = 0; i < warmup; ++i) index.Query(queries[i], &results);

  size_t executed = 0;
  Timer timer;
  do {
    stats.total_results = 0;
    for (const Query& q : queries) {
      index.Query(q, &results);
      stats.total_results += results.size();
    }
    executed += queries.size();
  } while (timer.Seconds() < kMinSeconds);
  stats.seconds = timer.Seconds();
  stats.queries_per_second =
      static_cast<double>(executed) / stats.seconds;
  return stats;
}

QueryStats ParallelMeasureQueries(const TemporalIrIndex& index,
                                  const std::vector<Query>& queries,
                                  size_t num_threads) {
  QueryStats stats;
  stats.num_queries = queries.size();
  if (queries.empty()) return stats;

  ThreadPool pool(num_threads);
  const size_t workers = pool.num_threads();
  stats.num_threads = workers;

  // Contiguous shards, one per worker; the fixed assignment keeps the merge
  // deterministic regardless of scheduling.
  struct Shard {
    size_t begin = 0;
    size_t end = 0;
    uint64_t total_results = 0;
    std::vector<double> latencies_us;
    std::vector<ObjectId> results;  // per-worker scratch, never shared
  };
  const size_t num_shards = std::min(workers, queries.size());
  std::vector<Shard> shards(num_shards);
  const size_t chunk = (queries.size() + num_shards - 1) / num_shards;
  for (size_t s = 0; s < num_shards; ++s) {
    shards[s].begin = s * chunk;
    shards[s].end = std::min(queries.size(), shards[s].begin + chunk);
  }

  // Warm-up pass over a prefix (touches index pages, sizes the scratch).
  const size_t warmup = std::min<size_t>(queries.size(), 32);
  std::vector<ObjectId> warm;
  for (size_t i = 0; i < warmup; ++i) index.Query(queries[i], &warm);

  size_t executed = 0;
  Timer timer;
  do {
    for (Shard& shard : shards) {
      shard.total_results = 0;
      pool.Submit([&index, &queries, &shard] {
        for (size_t i = shard.begin; i < shard.end; ++i) {
          Timer per_query;
          index.Query(queries[i], &shard.results);
          shard.latencies_us.push_back(per_query.Seconds() * 1e6);
          shard.total_results += shard.results.size();
        }
      });
    }
    pool.Wait();
    stats.total_results = 0;
    for (const Shard& shard : shards) stats.total_results += shard.total_results;
    executed += queries.size();
  } while (timer.Seconds() < kMinSeconds);
  stats.seconds = timer.Seconds();
  stats.queries_per_second = static_cast<double>(executed) / stats.seconds;

  std::vector<double> all_latencies;
  for (Shard& shard : shards) {
    all_latencies.insert(all_latencies.end(), shard.latencies_us.begin(),
                         shard.latencies_us.end());
  }
  stats.latency_p50_us = PercentileUs(&all_latencies, 50.0);
  stats.latency_p99_us = PercentileUs(&all_latencies, 99.0);
  return stats;
}

double MeasureInsertSeconds(TemporalIrIndex* index, const Corpus& corpus,
                            size_t begin, size_t end) {
  Timer timer;
  for (size_t i = begin; i < end && i < corpus.size(); ++i) {
    const Status st = index->Insert(corpus.object(static_cast<ObjectId>(i)));
    if (!st.ok()) return -1.0;
  }
  return timer.Seconds();
}

double MeasureEraseSeconds(TemporalIrIndex* index, const Corpus& corpus,
                           size_t begin, size_t end) {
  Timer timer;
  for (size_t i = begin; i < end && i < corpus.size(); ++i) {
    const Status st = index->Erase(corpus.object(static_cast<ObjectId>(i)));
    if (!st.ok()) return -1.0;
  }
  return timer.Seconds();
}

double BenchScaleFromEnv() {
  const char* value = GetEnv("IRHINT_SCALE");
  if (value == nullptr) return 1.0;
  const double scale = std::atof(value);
  return scale > 0.0 ? scale : 1.0;
}

size_t BenchQueriesFromEnv(size_t fallback) {
  const char* value = GetEnv("IRHINT_QUERIES");
  if (value == nullptr) return fallback;
  const long long n = std::atoll(value);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

size_t BenchThreadsFromEnv(size_t fallback) {
  const char* value = GetEnv("IRHINT_THREADS");
  if (value == nullptr) return fallback;
  const long long n = std::atoll(value);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

}  // namespace irhint

#include "eval/runner.h"

#include <algorithm>
#include <cstdlib>

#include "common/timer.h"

namespace irhint {

BuildStats MeasureBuild(TemporalIrIndex* index, const Corpus& corpus) {
  BuildStats stats;
  Timer timer;
  const Status st = index->Build(corpus);
  stats.seconds = timer.Seconds();
  if (!st.ok()) {
    stats.seconds = -1.0;
    return stats;
  }
  stats.bytes = index->MemoryUsageBytes();
  return stats;
}

QueryStats MeasureQueries(const TemporalIrIndex& index,
                          const std::vector<Query>& queries) {
  QueryStats stats;
  stats.num_queries = queries.size();
  if (queries.empty()) return stats;
  std::vector<ObjectId> results;

  // Warm-up pass over a prefix (touches index pages, sizes the scratch).
  const size_t warmup = std::min<size_t>(queries.size(), 32);
  for (size_t i = 0; i < warmup; ++i) index.Query(queries[i], &results);

  // Repeat the whole batch until enough wall time accumulates so that fast
  // indexes are not measured at timer granularity.
  constexpr double kMinSeconds = 0.2;
  size_t executed = 0;
  Timer timer;
  do {
    stats.total_results = 0;
    for (const Query& q : queries) {
      index.Query(q, &results);
      stats.total_results += results.size();
    }
    executed += queries.size();
  } while (timer.Seconds() < kMinSeconds);
  stats.seconds = timer.Seconds();
  stats.queries_per_second =
      static_cast<double>(executed) / stats.seconds;
  return stats;
}

double MeasureInsertSeconds(TemporalIrIndex* index, const Corpus& corpus,
                            size_t begin, size_t end) {
  Timer timer;
  for (size_t i = begin; i < end && i < corpus.size(); ++i) {
    const Status st = index->Insert(corpus.object(static_cast<ObjectId>(i)));
    if (!st.ok()) return -1.0;
  }
  return timer.Seconds();
}

double MeasureEraseSeconds(TemporalIrIndex* index, const Corpus& corpus,
                           size_t begin, size_t end) {
  Timer timer;
  for (size_t i = begin; i < end && i < corpus.size(); ++i) {
    const Status st = index->Erase(corpus.object(static_cast<ObjectId>(i)));
    if (!st.ok()) return -1.0;
  }
  return timer.Seconds();
}

double BenchScaleFromEnv() {
  const char* value = std::getenv("IRHINT_SCALE");
  if (value == nullptr) return 1.0;
  const double scale = std::atof(value);
  return scale > 0.0 ? scale : 1.0;
}

size_t BenchQueriesFromEnv(size_t fallback) {
  const char* value = std::getenv("IRHINT_QUERIES");
  if (value == nullptr) return fallback;
  const long long n = std::atoll(value);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

}  // namespace irhint

// tIF+HINT+Slicing — the hybrid IR-first index (Section 3.2).
//
// Every postings list is stored twice: (1) a HINT whose divisions are
// sorted by object id, used only for the initial range query on the least
// frequent element (where HINT excels); and (2) sliced sub-lists storing
// <o.id, o.t_st> pairs, used for the subsequent intersections (where the
// coarse slices beat HINT's fragmented divisions). The t_st in the second
// copy exists solely for the reference-value de-duplication test — the
// temporal predicate itself never needs re-checking once the initial
// candidates are qualified.

#ifndef IRHINT_IRFIRST_TIF_HINT_SLICING_H_
#define IRHINT_IRFIRST_TIF_HINT_SLICING_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/flat_hash_map.h"
#include "core/temporal_ir_index.h"
#include "hint/hint.h"
#include "irfirst/sliced_postings.h"

namespace irhint {

struct TifHintSlicingOptions {
  /// Bits of every postings HINT (the paper uses m = 5 for the hybrid).
  int num_bits = 5;
  /// Number of time-domain slices for the second copy (paper: 50).
  uint32_t num_slices = 50;
};

/// \brief The tIF+HINT+Slicing hybrid index.
class TifHintSlicing : public TemporalIrIndex {
 public:
  TifHintSlicing() = default;
  explicit TifHintSlicing(const TifHintSlicingOptions& options)
      : options_(options) {}

  Status Build(const Corpus& corpus) override;
  void Query(const irhint::Query& query, std::vector<ObjectId>* out) const override;
  Status Insert(const Object& object) override;
  Status Erase(const Object& object) override;
  size_t MemoryUsageBytes() const override;
  std::string_view Name() const override { return "tIF+HINT+Slicing"; }
  IndexKind Kind() const override { return IndexKind::kTifHintSlicing; }
  Status SaveTo(SnapshotWriter* writer) const override;
  Status LoadFrom(SnapshotReader* reader) override;
  Status IntegrityCheck(CheckLevel level) const override;

  uint64_t Frequency(ElementId e) const;

 private:
  friend struct IntegrityTestPeer;

  // Creates an empty postings HINT if absent; fails without side effects.
  Status SlotFor(ElementId e, uint32_t* out);

  TifHintSlicingOptions options_;
  Time domain_end_ = 0;
  SliceGrid grid_;
  FlatHashMap<ElementId, uint32_t> element_slot_;
  std::vector<HintIndex> hints_;              // copy 1 (id-sorted divisions)
  std::vector<SlicedPostingsIdSt> slices_;    // copy 2 (<id, t_st> entries)
  std::vector<uint64_t> live_counts_;
  bool built_ = false;
};

}  // namespace irhint

#endif  // IRHINT_IRFIRST_TIF_HINT_SLICING_H_

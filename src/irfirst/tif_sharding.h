// tIF+Sharding — the temporal inverted file with horizontally sharded
// postings lists (Anand et al. [4], re-implemented; Section 2.2).
//
// Each postings list is partitioned into shards ordered by t_st that
// (ideally) satisfy the staircase property: within a shard, t_end is
// non-decreasing along t_st. Ideal shards are built by patience chaining
// (the minimal number of staircase chains); a cost-aware merge then bounds
// the shard count per list, relaxing the staircase property. Every shard
// keeps a prefix-max(t_end) array — non-decreasing even for relaxed shards,
// so the skippable prefix (all entries ending before q.t_st) stays binary
// searchable — plus a sampled impact list of (t_end, offset) pairs that is
// probed first to find the scan start, as in the original design.
//
// No replication takes place, so no de-duplication is needed; the price is
// that every query element's shards must be temporally scanned.

#ifndef IRHINT_IRFIRST_TIF_SHARDING_H_
#define IRHINT_IRFIRST_TIF_SHARDING_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/flat_hash_map.h"
#include "core/temporal_ir_index.h"
#include "ir/postings.h"

namespace irhint {

struct TifShardingOptions {
  /// Upper bound on shards per list after cost-aware merging.
  uint32_t max_shards_per_list = 16;
  /// Shards smaller than this are merged away (probe overhead dominates).
  uint32_t min_shard_size = 16;
  /// Impact-list sampling stride.
  uint32_t impact_stride = 64;
};

/// \brief The tIF+Sharding competitor.
class TifSharding : public TemporalIrIndex {
 public:
  TifSharding() = default;
  explicit TifSharding(const TifShardingOptions& options)
      : options_(options) {}

  Status Build(const Corpus& corpus) override;
  void Query(const irhint::Query& query, std::vector<ObjectId>* out) const override;
  Status Insert(const Object& object) override;
  Status Erase(const Object& object) override;
  size_t MemoryUsageBytes() const override;
  std::string_view Name() const override { return "tIF+Sharding"; }
  IndexKind Kind() const override { return IndexKind::kTifSharding; }
  Status SaveTo(SnapshotWriter* writer) const override;
  Status LoadFrom(SnapshotReader* reader) override;
  Status IntegrityCheck(CheckLevel level) const override;

  uint64_t Frequency(ElementId e) const;

  /// \brief Shards currently backing element e (0 if unknown).
  size_t NumShards(ElementId e) const;

 private:
  friend struct IntegrityTestPeer;

  struct Shard {
    PostingsList entries;                    // sorted by (t_st, t_end)
    std::vector<StoredTime> prefix_max_end;  // non-decreasing
    std::vector<std::pair<StoredTime, uint32_t>> impact;  // sampled

    void RebuildDerived(uint32_t impact_stride);
    /// First index whose prefix-max end is >= qst (impact probe + refine).
    size_t ScanStart(StoredTime qst) const;
  };

  struct ShardedList {
    std::vector<Shard> shards;
  };

  uint32_t SlotFor(ElementId e);
  void BuildShards(PostingsList&& postings, ShardedList* list) const;

  // Scans the list's shards for entries overlapping q; emit(const Posting&).
  template <typename Emit>
  void ScanList(const ShardedList& list, const Interval& q, Emit&& emit) const;

  TifShardingOptions options_;
  FlatHashMap<ElementId, uint32_t> element_slot_;
  std::vector<ShardedList> lists_;
  std::vector<uint64_t> live_counts_;
  bool built_ = false;
};

}  // namespace irhint

#endif  // IRHINT_IRFIRST_TIF_SHARDING_H_

// tIF+Slicing — the temporal inverted file with vertically sliced postings
// lists (Berberich et al. [7], re-implemented; Section 2.2 of the paper),
// generalized from stabbing to interval queries via reference-value
// de-duplication.

#ifndef IRHINT_IRFIRST_TIF_SLICING_H_
#define IRHINT_IRFIRST_TIF_SLICING_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/flat_hash_map.h"
#include "core/temporal_ir_index.h"
#include "irfirst/sliced_postings.h"

namespace irhint {

struct TifSlicingOptions {
  /// Number of uniform time-domain slices; Figure 8 tunes this (paper
  /// default after tuning: 50).
  uint32_t num_slices = 50;
};

/// \brief The tIF+Slicing competitor.
class TifSlicing : public TemporalIrIndex {
 public:
  TifSlicing() = default;
  explicit TifSlicing(const TifSlicingOptions& options) : options_(options) {}

  Status Build(const Corpus& corpus) override;
  void Query(const irhint::Query& query, std::vector<ObjectId>* out) const override;
  Status Insert(const Object& object) override;
  Status Erase(const Object& object) override;
  size_t MemoryUsageBytes() const override;
  std::string_view Name() const override { return "tIF+Slicing"; }
  IndexKind Kind() const override { return IndexKind::kTifSlicing; }
  Status SaveTo(SnapshotWriter* writer) const override;
  Status LoadFrom(SnapshotReader* reader) override;
  Status IntegrityCheck(CheckLevel level) const override;

  uint64_t Frequency(ElementId e) const;
  size_t NumEntries() const;  // including replicas

 private:
  friend struct IntegrityTestPeer;

  uint32_t SlotFor(ElementId e);

  TifSlicingOptions options_;
  SliceGrid grid_;
  FlatHashMap<ElementId, uint32_t> element_slot_;
  std::vector<SlicedPostings> lists_;
  std::vector<uint64_t> live_counts_;
  bool built_ = false;
};

}  // namespace irhint

#endif  // IRHINT_IRFIRST_TIF_SLICING_H_

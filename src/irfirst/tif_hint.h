// tIF+HINT — the novel IR-first extension of the temporal inverted file
// that organizes every postings list as a HINT (Section 3.1).
//
// Two query-evaluation variants:
//  * kBinarySearch (Algorithm 3): postings HINTs keep the beneficial
//    temporal sorting; after the initial range query on the least frequent
//    element's HINT, the remaining HINTs are traversed bottom-up with
//    temporal comparisons, probing the sorted candidate set by binary
//    search for every surviving entry.
//  * kMergeSort (Algorithm 4): postings HINTs sort divisions by object id;
//    subsequent intersections run as id-merges over the relevant divisions
//    with no temporal comparisons at all (the candidate set is already
//    temporally qualified, and HINT's duplicate-avoidance rule guarantees
//    each object appears in exactly one relevant division).

#ifndef IRHINT_IRFIRST_TIF_HINT_H_
#define IRHINT_IRFIRST_TIF_HINT_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/flat_hash_map.h"
#include "core/temporal_ir_index.h"
#include "hint/hint.h"

namespace irhint {

enum class TifHintMode {
  kBinarySearch,  // Algorithm 3
  kMergeSort,     // Algorithm 4
};

struct TifHintOptions {
  /// Bits of every postings HINT (Figure 9 tunes this; the paper settles on
  /// m=10 for binary search and m=5 for merge sort).
  int num_bits = 5;
  TifHintMode mode = TifHintMode::kMergeSort;
};

/// \brief The tIF+HINT index (both variants of Section 3.1).
class TifHint : public CountingTemporalIrIndex {
 public:
  TifHint() = default;
  explicit TifHint(const TifHintOptions& options) : options_(options) {}

  Status Build(const Corpus& corpus) override;
  void Query(const irhint::Query& query, std::vector<ObjectId>* out) const override;
  Status Insert(const Object& object) override;
  Status Erase(const Object& object) override;
  size_t MemoryUsageBytes() const override;
  std::string_view Name() const override {
    return options_.mode == TifHintMode::kBinarySearch ? "tIF+HINT(bs)"
                                                       : "tIF+HINT(ms)";
  }
  IndexKind Kind() const override {
    return options_.mode == TifHintMode::kBinarySearch
               ? IndexKind::kTifHintBinarySearch
               : IndexKind::kTifHintMergeSort;
  }
  Status SaveTo(SnapshotWriter* writer) const override;
  Status LoadFrom(SnapshotReader* reader) override;
  Status IntegrityCheck(CheckLevel level) const override;

  uint64_t Frequency(ElementId e) const;
  const HintIndex* PostingsHint(ElementId e) const;

 private:
  friend struct IntegrityTestPeer;

  // Creates an empty postings HINT if absent; fails without side effects.
  Status SlotFor(ElementId e, uint32_t* out);
  HintOptions HintOptionsFor() const;

  TifHintOptions options_;
  Time domain_end_ = 0;
  FlatHashMap<ElementId, uint32_t> element_slot_;
  std::vector<HintIndex> hints_;
  std::vector<uint64_t> live_counts_;
  bool built_ = false;
};

}  // namespace irhint

#endif  // IRHINT_IRFIRST_TIF_HINT_H_

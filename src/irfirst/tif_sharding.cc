#include "irfirst/tif_sharding.h"

#include <algorithm>
#include <limits>
#include <map>

#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

namespace irhint {

void TifSharding::Shard::RebuildDerived(uint32_t impact_stride) {
  prefix_max_end.resize(entries.size());
  impact.clear();
  StoredTime running = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    running = std::max(running, entries[i].end);
    prefix_max_end[i] = running;
    if (i % impact_stride == 0) {
      impact.emplace_back(running, static_cast<uint32_t>(i));
    }
  }
}

size_t TifSharding::Shard::ScanStart(StoredTime qst) const {
  // Probe the impact list for the last sampled point still ending before
  // q.st, then refine linearly over the non-decreasing prefix-max array.
  size_t start = 0;
  auto it = std::lower_bound(
      impact.begin(), impact.end(), qst,
      [](const std::pair<StoredTime, uint32_t>& p, StoredTime v) {
        return p.first < v;
      });
  if (it != impact.begin()) start = std::prev(it)->second;
  while (start < prefix_max_end.size() && prefix_max_end[start] < qst) {
    ++start;
  }
  return start;
}

uint32_t TifSharding::SlotFor(ElementId e) {
  if (const uint32_t* slot = element_slot_.find(e)) return *slot;
  const uint32_t slot = static_cast<uint32_t>(lists_.size());
  element_slot_.insert_or_assign(e, slot);
  lists_.emplace_back();
  live_counts_.push_back(0);
  return slot;
}

void TifSharding::BuildShards(PostingsList&& postings,
                              ShardedList* list) const {
  std::sort(postings.begin(), postings.end(),
            [](const Posting& a, const Posting& b) {
              if (a.st != b.st) return a.st < b.st;
              return a.end < b.end;
            });

  // Patience chaining: place each posting on the chain with the largest
  // last end <= its end; this yields the minimal number of ideal
  // (staircase) shards.
  std::vector<Shard>& shards = list->shards;
  shards.clear();
  std::multimap<StoredTime, uint32_t> tails;  // last end -> shard
  for (const Posting& p : postings) {
    auto it = tails.upper_bound(p.end);
    if (it == tails.begin()) {
      const uint32_t shard = static_cast<uint32_t>(shards.size());
      shards.emplace_back();
      shards[shard].entries.push_back(p);
      tails.emplace(p.end, shard);
    } else {
      --it;
      const uint32_t shard = it->second;
      shards[shard].entries.push_back(p);
      tails.erase(it);
      tails.emplace(p.end, shard);
    }
  }

  // Cost-aware merging: probing a shard costs an impact lookup plus a
  // partial scan, so many tiny shards hurt; merge the two smallest shards
  // (relaxing the staircase property) until both the count cap and the
  // minimum-size threshold hold.
  auto smallest_two = [&shards](size_t* a, size_t* b) {
    *a = 0;
    for (size_t i = 1; i < shards.size(); ++i) {
      if (shards[i].entries.size() < shards[*a].entries.size()) *a = i;
    }
    *b = (*a == 0) ? 1 : 0;
    for (size_t i = 0; i < shards.size(); ++i) {
      if (i != *a &&
          shards[i].entries.size() < shards[*b].entries.size()) {
        *b = i;
      }
    }
  };
  auto needs_merge = [this, &shards]() {
    if (shards.size() <= 1) return false;
    if (shards.size() > options_.max_shards_per_list) return true;
    for (const Shard& s : shards) {
      if (s.entries.size() < options_.min_shard_size) return true;
    }
    return false;
  };
  while (needs_merge()) {
    size_t a, b;
    smallest_two(&a, &b);
    if (a > b) std::swap(a, b);
    Shard& dst = shards[a];
    Shard& src = shards[b];
    dst.entries.insert(dst.entries.end(), src.entries.begin(),
                       src.entries.end());
    std::sort(dst.entries.begin(), dst.entries.end(),
              [](const Posting& x, const Posting& y) {
                if (x.st != y.st) return x.st < y.st;
                return x.end < y.end;
              });
    shards.erase(shards.begin() + b);
  }

  for (Shard& s : shards) s.RebuildDerived(options_.impact_stride);
}

Status TifSharding::Build(const Corpus& corpus) {
  if (corpus.domain_end() >= std::numeric_limits<StoredTime>::max()) {
    return Status::InvalidArgument("domain exceeds 32-bit stored endpoints");
  }
  built_ = true;
  element_slot_.reserve(corpus.dictionary().size());

  // Group postings per element, then shard each list.
  std::vector<PostingsList> grouped;
  for (const Object& o : corpus.objects()) {
    const Posting posting{o.id, static_cast<StoredTime>(o.interval.st),
                          static_cast<StoredTime>(o.interval.end)};
    for (ElementId e : o.elements) {
      const uint32_t slot = SlotFor(e);
      if (slot >= grouped.size()) grouped.resize(slot + 1);
      grouped[slot].push_back(posting);
      ++live_counts_[slot];
    }
  }
  for (size_t slot = 0; slot < grouped.size(); ++slot) {
    BuildShards(std::move(grouped[slot]), &lists_[slot]);
  }
  return Status::OK();
}

Status TifSharding::Insert(const Object& object) {
  if (!built_) return Status::InvalidArgument("index not built");
  if (object.interval.st > object.interval.end) {
    return Status::InvalidArgument("interval start exceeds end");
  }
  if (object.interval.end >= std::numeric_limits<StoredTime>::max()) {
    return Status::OutOfDomain("interval exceeds 32-bit stored endpoints");
  }
  const Posting posting{object.id,
                        static_cast<StoredTime>(object.interval.st),
                        static_cast<StoredTime>(object.interval.end)};
  for (ElementId e : object.elements) {
    const uint32_t slot = SlotFor(e);
    std::vector<Shard>& shards = lists_[slot].shards;
    if (shards.empty()) shards.emplace_back();
    // Pick the shard with the largest max end <= the new end (least
    // staircase damage); fall back to the one with the smallest max end.
    size_t best = 0;
    bool found = false;
    StoredTime best_end = 0;
    size_t fallback = 0;
    StoredTime fallback_end = std::numeric_limits<StoredTime>::max();
    for (size_t i = 0; i < shards.size(); ++i) {
      const StoredTime tail = shards[i].prefix_max_end.empty()
                                  ? 0
                                  : shards[i].prefix_max_end.back();
      if (tail <= posting.end && (!found || tail >= best_end)) {
        best = i;
        best_end = tail;
        found = true;
      }
      if (tail < fallback_end) {
        fallback = i;
        fallback_end = tail;
      }
    }
    Shard& shard = shards[found ? best : fallback];
    const auto pos = std::upper_bound(
        shard.entries.begin(), shard.entries.end(), posting,
        [](const Posting& a, const Posting& b) {
          if (a.st != b.st) return a.st < b.st;
          return a.end < b.end;
        });
    shard.entries.insert(pos, posting);
    shard.RebuildDerived(options_.impact_stride);
    ++live_counts_[slot];
  }
  return Status::OK();
}

Status TifSharding::Erase(const Object& object) {
  size_t tombstoned = 0;
  for (ElementId e : object.elements) {
    const uint32_t* slot = element_slot_.find(e);
    if (slot == nullptr) continue;
    // Locating an entry resembles querying the object's own interval
    // (Section 5.5): probe each shard and scan the whole range that could
    // overlap [o.t_st, o.t_end] — for long-lived objects this range is
    // large, which is what makes sharded deletion the most expensive in
    // the paper's Table 7.
    for (Shard& shard : lists_[*slot].shards) {
      bool done = false;
      for (size_t i = shard.ScanStart(static_cast<StoredTime>(
               object.interval.st));
           i < shard.entries.size() &&
           shard.entries[i].st <= object.interval.end;
           ++i) {
        if (shard.entries[i].id == object.id) {
          shard.entries[i].id = kTombstoneId;
          --live_counts_[*slot];
          ++tombstoned;
          done = true;
          break;
        }
      }
      if (done) break;
    }
  }
  return tombstoned > 0 ? Status::OK()
                        : Status::NotFound("object not present");
}

uint64_t TifSharding::Frequency(ElementId e) const {
  const uint32_t* slot = element_slot_.find(e);
  return slot != nullptr ? live_counts_[*slot] : 0;
}

size_t TifSharding::NumShards(ElementId e) const {
  const uint32_t* slot = element_slot_.find(e);
  return slot != nullptr ? lists_[*slot].shards.size() : 0;
}

template <typename Emit>
void TifSharding::ScanList(const ShardedList& list, const Interval& q,
                           Emit&& emit) const {
  const StoredTime qst = static_cast<StoredTime>(q.st);
  for (const Shard& shard : list.shards) {
    for (size_t i = shard.ScanStart(qst);
         i < shard.entries.size() && shard.entries[i].st <= q.end; ++i) {
      const Posting& p = shard.entries[i];
      if (p.id != kTombstoneId && p.end >= q.st) emit(p);
    }
  }
}

void TifSharding::Query(const irhint::Query& query,
                        std::vector<ObjectId>* out) const {
  out->clear();
  if (query.elements.empty()) return;

  std::vector<ElementId> elements = query.elements;
  std::sort(elements.begin(), elements.end(),
            [this](ElementId a, ElementId b) {
              const uint64_t fa = Frequency(a);
              const uint64_t fb = Frequency(b);
              if (fa != fb) return fa < fb;
              return a < b;
            });

  const uint32_t* first_slot = element_slot_.find(elements[0]);
  if (first_slot == nullptr) return;

  std::vector<ObjectId> candidates;
  ScanList(lists_[*first_slot], query.interval,
           [&candidates](const Posting& p) { candidates.push_back(p.id); });
  std::sort(candidates.begin(), candidates.end());

  std::vector<ObjectId> next;
  for (size_t i = 1; i < elements.size() && !candidates.empty(); ++i) {
    const uint32_t* slot = element_slot_.find(elements[i]);
    if (slot == nullptr) {
      candidates.clear();
      break;
    }
    next.clear();
    ScanList(lists_[*slot], query.interval, [&](const Posting& p) {
      if (std::binary_search(candidates.begin(), candidates.end(), p.id)) {
        next.push_back(p.id);
      }
    });
    std::sort(next.begin(), next.end());
    candidates.swap(next);
  }
  out->swap(candidates);
}

size_t TifSharding::MemoryUsageBytes() const {
  size_t bytes = element_slot_.MemoryUsageBytes();
  bytes += lists_.capacity() * sizeof(ShardedList);
  bytes += live_counts_.capacity() * sizeof(uint64_t);
  for (const ShardedList& list : lists_) {
    bytes += list.shards.capacity() * sizeof(Shard);
    for (const Shard& shard : list.shards) {
      bytes += shard.entries.capacity() * sizeof(Posting);
      bytes += shard.prefix_max_end.capacity() * sizeof(StoredTime);
      bytes += shard.impact.capacity() *
               sizeof(std::pair<StoredTime, uint32_t>);
    }
  }
  return bytes;
}

Status TifSharding::IntegrityCheck(CheckLevel level) const {
  if (lists_.size() != live_counts_.size() ||
      lists_.size() != element_slot_.size()) {
    return Status::Corruption("tif_sharding directory shape mismatch");
  }
  if ((built_ || !lists_.empty()) && options_.impact_stride == 0) {
    return Status::Corruption("tif_sharding impact stride is zero");
  }
  Status status = Status::OK();
  std::vector<bool> slot_seen(lists_.size(), false);
  element_slot_.ForEach([&](const ElementId&, const uint32_t& slot) {
    if (!status.ok()) return;
    if (slot >= lists_.size() || slot_seen[slot]) {
      status = Status::Corruption("tif_sharding element slot map broken");
      return;
    }
    slot_seen[slot] = true;
  });
  IRHINT_RETURN_NOT_OK(status);
  if (level == CheckLevel::kQuick) return Status::OK();

  for (size_t slot = 0; slot < lists_.size(); ++slot) {
    uint64_t live = 0;
    for (const Shard& shard : lists_[slot].shards) {
      if (shard.prefix_max_end.size() != shard.entries.size()) {
        return Status::Corruption("tif_sharding prefix-max array shape "
                                  "mismatch");
      }
      // Replay RebuildDerived: the stored prefix-max and impact samples
      // must match a fresh recomputation (ScanStart trusts both).
      StoredTime running = 0;
      size_t next_impact = 0;
      for (size_t i = 0; i < shard.entries.size(); ++i) {
        const Posting& p = shard.entries[i];
        if (p.st > p.end) {
          return Status::Corruption("tif_sharding entry has inverted "
                                    "interval");
        }
        if (i > 0) {
          const Posting& prev = shard.entries[i - 1];
          if (p.st < prev.st || (p.st == prev.st && p.end < prev.end)) {
            return Status::Corruption("tif_sharding shard not sorted by "
                                      "(st, end)");
          }
        }
        running = std::max(running, p.end);
        if (shard.prefix_max_end[i] != running) {
          return Status::Corruption("tif_sharding prefix-max array stale");
        }
        if (i % options_.impact_stride == 0) {
          if (next_impact >= shard.impact.size() ||
              shard.impact[next_impact].first != running ||
              shard.impact[next_impact].second != i) {
            return Status::Corruption("tif_sharding impact list stale");
          }
          ++next_impact;
        }
        if (p.id != kTombstoneId) ++live;
      }
      if (next_impact != shard.impact.size()) {
        return Status::Corruption("tif_sharding impact list stale");
      }
    }
    if (live != live_counts_[slot]) {
      return Status::Corruption("tif_sharding live count mismatch");
    }
  }
  return Status::OK();
}

Status TifSharding::SaveTo(SnapshotWriter* writer) const {
  writer->BeginSection(kSectionMeta);
  writer->WriteU32(options_.max_shards_per_list);
  writer->WriteU32(options_.min_shard_size);
  writer->WriteU32(options_.impact_stride);
  writer->WriteU8(built_ ? 1 : 0);
  IRHINT_RETURN_NOT_OK(writer->EndSection());

  writer->BeginSection(kSectionDirectory);
  std::vector<ElementId> slot_elements(lists_.size(), 0);
  element_slot_.ForEach([&slot_elements](const ElementId& e,
                                         const uint32_t& slot) {
    slot_elements[slot] = e;
  });
  writer->WriteVector(slot_elements);
  writer->WriteVector(live_counts_);
  IRHINT_RETURN_NOT_OK(writer->EndSection());

  // Only shard entries are persisted; the prefix-max and impact arrays are
  // derived and rebuilt on load.
  writer->BeginSection(kSectionPayload);
  for (const ShardedList& list : lists_) {
    writer->WriteU64(list.shards.size());
    for (const Shard& shard : list.shards) {
      writer->WriteVector(shard.entries);
    }
  }
  return writer->EndSection();
}

Status TifSharding::LoadFrom(SnapshotReader* reader) {
  auto meta = reader->OpenSection(kSectionMeta);
  IRHINT_RETURN_NOT_OK(meta.status());
  uint8_t built = 0;
  IRHINT_RETURN_NOT_OK(meta->ReadU32(&options_.max_shards_per_list));
  IRHINT_RETURN_NOT_OK(meta->ReadU32(&options_.min_shard_size));
  IRHINT_RETURN_NOT_OK(meta->ReadU32(&options_.impact_stride));
  IRHINT_RETURN_NOT_OK(meta->ReadU8(&built));
  if (options_.impact_stride == 0) {
    return Status::Corruption("tif_sharding snapshot has zero stride");
  }
  built_ = built != 0;

  auto directory = reader->OpenSection(kSectionDirectory);
  IRHINT_RETURN_NOT_OK(directory.status());
  std::vector<ElementId> slot_elements;
  IRHINT_RETURN_NOT_OK(directory->ReadVector(&slot_elements));
  IRHINT_RETURN_NOT_OK(directory->ReadVector(&live_counts_));
  if (live_counts_.size() != slot_elements.size()) {
    return Status::Corruption(
        "tif_sharding snapshot directory shape mismatch");
  }
  element_slot_.clear();
  element_slot_.reserve(slot_elements.size());
  for (uint32_t slot = 0; slot < slot_elements.size(); ++slot) {
    element_slot_.insert_or_assign(slot_elements[slot], slot);
  }

  auto payload = reader->OpenSection(kSectionPayload);
  IRHINT_RETURN_NOT_OK(payload.status());
  lists_.assign(slot_elements.size(), {});
  for (ShardedList& list : lists_) {
    uint64_t num_shards = 0;
    IRHINT_RETURN_NOT_OK(payload->ReadU64(&num_shards));
    if (num_shards > payload->remaining() / 8) {
      return Status::Corruption(
          "tif_sharding snapshot shard count out of bounds");
    }
    list.shards.resize(static_cast<size_t>(num_shards));
    for (Shard& shard : list.shards) {
      IRHINT_RETURN_NOT_OK(payload->ReadVector(&shard.entries));
      shard.RebuildDerived(options_.impact_stride);
    }
  }
  return Status::OK();
}

}  // namespace irhint

#include "irfirst/tif_hint.h"

#include <algorithm>
#include <limits>

#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

namespace irhint {

HintOptions TifHint::HintOptionsFor() const {
  HintOptions options;
  options.num_bits = options_.num_bits;
  options.sort_mode = options_.mode == TifHintMode::kBinarySearch
                          ? HintSortMode::kBeneficial
                          : HintSortMode::kById;
  return options;
}

Status TifHint::SlotFor(ElementId e, uint32_t* out) {
  if (const uint32_t* slot = element_slot_.find(e)) {
    *out = *slot;
    return Status::OK();
  }
  // An empty build establishes the domain mapper and options. Build into
  // a local first: if it fails, no half-created slot is left behind.
  HintIndex fresh;
  IRHINT_RETURN_NOT_OK(fresh.Build({}, domain_end_, HintOptionsFor()));
  const uint32_t slot = static_cast<uint32_t>(hints_.size());
  element_slot_.insert_or_assign(e, slot);
  hints_.push_back(std::move(fresh));
  live_counts_.push_back(0);
  *out = slot;
  return Status::OK();
}

Status TifHint::Build(const Corpus& corpus) {
  if (corpus.domain_end() >= std::numeric_limits<StoredTime>::max()) {
    return Status::InvalidArgument("domain exceeds 32-bit stored endpoints");
  }
  domain_end_ = corpus.domain_end();
  built_ = true;
  element_slot_.reserve(corpus.dictionary().size());

  // Group records per element, then build one HINT per postings list.
  std::vector<std::vector<IntervalRecord>> grouped;
  for (const Object& o : corpus.objects()) {
    for (ElementId e : o.elements) {
      uint32_t slot;
      if (const uint32_t* found = element_slot_.find(e)) {
        slot = *found;
      } else {
        slot = static_cast<uint32_t>(hints_.size());
        element_slot_.insert_or_assign(e, slot);
        hints_.emplace_back();
        live_counts_.push_back(0);
      }
      if (slot >= grouped.size()) grouped.resize(slot + 1);
      grouped[slot].push_back(IntervalRecord{o.id, o.interval});
      ++live_counts_[slot];
    }
  }
  for (size_t slot = 0; slot < hints_.size(); ++slot) {
    const std::vector<IntervalRecord> empty;
    const std::vector<IntervalRecord>& records =
        slot < grouped.size() ? grouped[slot] : empty;
    IRHINT_RETURN_NOT_OK(
        hints_[slot].Build(records, domain_end_, HintOptionsFor()));
  }
  return Status::OK();
}

Status TifHint::Insert(const Object& object) {
  if (!built_) return Status::InvalidArgument("index not built");
  // Intervals past the declared domain are accepted: each postings HINT
  // keeps them in its overflow store (time-expanding extension).
  for (ElementId e : object.elements) {
    uint32_t slot = 0;
    IRHINT_RETURN_NOT_OK(SlotFor(e, &slot));
    IRHINT_RETURN_NOT_OK(hints_[slot].Insert(object.id, object.interval));
    ++live_counts_[slot];
  }
  return Status::OK();
}

Status TifHint::Erase(const Object& object) {
  size_t tombstoned = 0;
  for (ElementId e : object.elements) {
    const uint32_t* slot = element_slot_.find(e);
    if (slot == nullptr) continue;
    if (hints_[*slot].Erase(object.id, object.interval).ok()) {
      --live_counts_[*slot];
      ++tombstoned;
    }
  }
  return tombstoned > 0 ? Status::OK()
                        : Status::NotFound("object not present");
}

uint64_t TifHint::Frequency(ElementId e) const {
  const uint32_t* slot = element_slot_.find(e);
  return slot != nullptr ? live_counts_[*slot] : 0;
}

const HintIndex* TifHint::PostingsHint(ElementId e) const {
  const uint32_t* slot = element_slot_.find(e);
  return slot != nullptr ? &hints_[*slot] : nullptr;
}

void TifHint::Query(const irhint::Query& query, std::vector<ObjectId>* out) const {
  out->clear();
  if (query.elements.empty()) return;

  std::vector<ElementId> elements = query.elements;
  std::sort(elements.begin(), elements.end(),
            [this](ElementId a, ElementId b) {
              const uint64_t fa = Frequency(a);
              const uint64_t fb = Frequency(b);
              if (fa != fb) return fa < fb;
              return a < b;
            });

  const uint32_t* first_slot = element_slot_.find(elements[0]);
  if (first_slot == nullptr) return;

  // Initial candidates: a plain HINT range query on the least frequent
  // element's postings HINT (Algorithms 3/4, line 3).
  std::vector<ObjectId> candidates;
  hints_[*first_slot].RangeQuery(query.interval, &candidates);

  QueryCounters local;
  local.divisions_visited = 1;  // one traversed postings HINT so far
  local.postings_scanned = candidates.size();

  std::vector<ObjectId> next;
  for (size_t i = 1; i < elements.size() && !candidates.empty(); ++i) {
    const uint32_t* slot = element_slot_.find(elements[i]);
    if (slot == nullptr) {
      candidates.clear();
      break;
    }
    ++local.divisions_visited;
    ++local.intersections_performed;
    local.candidates_verified += candidates.size();
    std::sort(candidates.begin(), candidates.end());
    next.clear();
    if (options_.mode == TifHintMode::kBinarySearch) {
      hints_[*slot].RangeQueryFiltered(query.interval, candidates, &next);
    } else {
      hints_[*slot].IntersectRelevant(query.interval, candidates, &next);
    }
    candidates.swap(next);
  }
  out->swap(candidates);
  counters_.Accumulate(local);
}

size_t TifHint::MemoryUsageBytes() const {
  size_t bytes = element_slot_.MemoryUsageBytes();
  bytes += hints_.capacity() * sizeof(HintIndex);
  bytes += live_counts_.capacity() * sizeof(uint64_t);
  for (const HintIndex& hint : hints_) {
    bytes += hint.MemoryUsageBytes();
  }
  return bytes;
}

Status TifHint::IntegrityCheck(CheckLevel level) const {
  if (hints_.size() != live_counts_.size() ||
      hints_.size() != element_slot_.size()) {
    return Status::Corruption("tif_hint directory shape mismatch");
  }
  Status status = Status::OK();
  std::vector<bool> slot_seen(hints_.size(), false);
  element_slot_.ForEach([&](const ElementId&, const uint32_t& slot) {
    if (!status.ok()) return;
    if (slot >= hints_.size() || slot_seen[slot]) {
      status = Status::Corruption("tif_hint element slot map broken");
      return;
    }
    slot_seen[slot] = true;
  });
  IRHINT_RETURN_NOT_OK(status);

  for (size_t slot = 0; slot < hints_.size(); ++slot) {
    IRHINT_RETURN_NOT_OK(hints_[slot].IntegrityCheck(level));
    if (level == CheckLevel::kQuick) continue;
    // Each object occupies exactly one original assignment (or the
    // overflow store) of its postings HINT, so live originals must equal
    // the element's live frequency.
    if (hints_[slot].LiveOriginalCount() != live_counts_[slot]) {
      return Status::Corruption("tif_hint live count out of sync with "
                                "postings HINT");
    }
  }
  return Status::OK();
}

Status TifHint::SaveTo(SnapshotWriter* writer) const {
  writer->BeginSection(kSectionMeta);
  writer->WriteI32(options_.num_bits);
  writer->WriteU8(options_.mode == TifHintMode::kBinarySearch ? 0 : 1);
  writer->WriteU64(domain_end_);
  writer->WriteU8(built_ ? 1 : 0);
  IRHINT_RETURN_NOT_OK(writer->EndSection());

  writer->BeginSection(kSectionDirectory);
  std::vector<ElementId> slot_elements(hints_.size(), 0);
  element_slot_.ForEach([&slot_elements](const ElementId& e,
                                         const uint32_t& slot) {
    slot_elements[slot] = e;
  });
  writer->WriteVector(slot_elements);
  writer->WriteVector(live_counts_);
  IRHINT_RETURN_NOT_OK(writer->EndSection());

  writer->BeginSection(kSectionPayload);
  for (const HintIndex& hint : hints_) {
    hint.SaveTo(writer);
  }
  return writer->EndSection();
}

Status TifHint::LoadFrom(SnapshotReader* reader) {
  auto meta = reader->OpenSection(kSectionMeta);
  IRHINT_RETURN_NOT_OK(meta.status());
  uint8_t mode, built;
  IRHINT_RETURN_NOT_OK(meta->ReadI32(&options_.num_bits));
  IRHINT_RETURN_NOT_OK(meta->ReadU8(&mode));
  IRHINT_RETURN_NOT_OK(meta->ReadU64(&domain_end_));
  IRHINT_RETURN_NOT_OK(meta->ReadU8(&built));
  options_.mode =
      mode == 0 ? TifHintMode::kBinarySearch : TifHintMode::kMergeSort;
  built_ = built != 0;

  auto directory = reader->OpenSection(kSectionDirectory);
  IRHINT_RETURN_NOT_OK(directory.status());
  std::vector<ElementId> slot_elements;
  IRHINT_RETURN_NOT_OK(directory->ReadVector(&slot_elements));
  IRHINT_RETURN_NOT_OK(directory->ReadVector(&live_counts_));
  if (live_counts_.size() != slot_elements.size()) {
    return Status::Corruption("tif_hint snapshot directory shape mismatch");
  }
  element_slot_.clear();
  element_slot_.reserve(slot_elements.size());
  for (uint32_t slot = 0; slot < slot_elements.size(); ++slot) {
    element_slot_.insert_or_assign(slot_elements[slot], slot);
  }

  auto payload = reader->OpenSection(kSectionPayload);
  IRHINT_RETURN_NOT_OK(payload.status());
  hints_.assign(slot_elements.size(), {});
  for (HintIndex& hint : hints_) {
    IRHINT_RETURN_NOT_OK(hint.LoadFrom(&payload.value()));
  }
  return Status::OK();
}

}  // namespace irhint

#include "irfirst/tif_hint_slicing.h"

#include <algorithm>
#include <limits>

namespace irhint {

namespace {

HintOptions MakeHintOptions(int num_bits) {
  HintOptions options;
  options.num_bits = num_bits;
  options.sort_mode = HintSortMode::kById;
  return options;
}

}  // namespace

Status TifHintSlicing::SlotFor(ElementId e, uint32_t* out) {
  if (const uint32_t* slot = element_slot_.find(e)) {
    *out = *slot;
    return Status::OK();
  }
  // Build into a local first: a failed empty build (an invariant breach,
  // but one the caller must see) leaves no half-created slot behind.
  HintIndex fresh;
  IRHINT_RETURN_NOT_OK(
      fresh.Build({}, domain_end_, MakeHintOptions(options_.num_bits)));
  const uint32_t slot = static_cast<uint32_t>(hints_.size());
  element_slot_.insert_or_assign(e, slot);
  hints_.push_back(std::move(fresh));
  slices_.emplace_back();
  live_counts_.push_back(0);
  *out = slot;
  return Status::OK();
}

Status TifHintSlicing::Build(const Corpus& corpus) {
  if (corpus.domain_end() >= std::numeric_limits<StoredTime>::max()) {
    return Status::InvalidArgument("domain exceeds 32-bit stored endpoints");
  }
  if (options_.num_slices == 0) {
    return Status::InvalidArgument("num_slices must be positive");
  }
  domain_end_ = corpus.domain_end();
  grid_ = SliceGrid(domain_end_, options_.num_slices);
  built_ = true;
  element_slot_.reserve(corpus.dictionary().size());

  std::vector<std::vector<IntervalRecord>> grouped;
  for (const Object& o : corpus.objects()) {
    for (ElementId e : o.elements) {
      uint32_t slot;
      if (const uint32_t* found = element_slot_.find(e)) {
        slot = *found;
      } else {
        slot = static_cast<uint32_t>(hints_.size());
        element_slot_.insert_or_assign(e, slot);
        hints_.emplace_back();
        slices_.emplace_back();
        live_counts_.push_back(0);
      }
      if (slot >= grouped.size()) grouped.resize(slot + 1);
      grouped[slot].push_back(IntervalRecord{o.id, o.interval});
      slices_[slot].Add(grid_, o.id, o.interval);
      ++live_counts_[slot];
    }
  }
  for (size_t slot = 0; slot < hints_.size(); ++slot) {
    const std::vector<IntervalRecord> empty;
    const std::vector<IntervalRecord>& records =
        slot < grouped.size() ? grouped[slot] : empty;
    IRHINT_RETURN_NOT_OK(hints_[slot].Build(
        records, domain_end_, MakeHintOptions(options_.num_bits)));
  }
  return Status::OK();
}

Status TifHintSlicing::Insert(const Object& object) {
  if (!built_) return Status::InvalidArgument("index not built");
  // Beyond-domain intervals go to the HINT copies' overflow stores; the
  // sliced copy clamps them into its last slice (both remain exact).
  for (ElementId e : object.elements) {
    uint32_t slot = 0;
    IRHINT_RETURN_NOT_OK(SlotFor(e, &slot));
    IRHINT_RETURN_NOT_OK(hints_[slot].Insert(object.id, object.interval));
    slices_[slot].Add(grid_, object.id, object.interval);
    ++live_counts_[slot];
  }
  return Status::OK();
}

Status TifHintSlicing::Erase(const Object& object) {
  size_t tombstoned = 0;
  for (ElementId e : object.elements) {
    const uint32_t* slot = element_slot_.find(e);
    if (slot == nullptr) continue;
    bool any = false;
    if (hints_[*slot].Erase(object.id, object.interval).ok()) any = true;
    if (slices_[*slot].Tombstone(grid_, object.id, object.interval) > 0) {
      any = true;
    }
    if (any) {
      --live_counts_[*slot];
      ++tombstoned;
    }
  }
  return tombstoned > 0 ? Status::OK()
                        : Status::NotFound("object not present");
}

uint64_t TifHintSlicing::Frequency(ElementId e) const {
  const uint32_t* slot = element_slot_.find(e);
  return slot != nullptr ? live_counts_[*slot] : 0;
}

void TifHintSlicing::Query(const irhint::Query& query,
                           std::vector<ObjectId>* out) const {
  out->clear();
  if (query.elements.empty()) return;

  std::vector<ElementId> elements = query.elements;
  std::sort(elements.begin(), elements.end(),
            [this](ElementId a, ElementId b) {
              const uint64_t fa = Frequency(a);
              const uint64_t fb = Frequency(b);
              if (fa != fb) return fa < fb;
              return a < b;
            });

  const uint32_t* first_slot = element_slot_.find(elements[0]);
  if (first_slot == nullptr) return;

  // Initial candidates from the HINT copy of the least frequent element.
  std::vector<ObjectId> candidates;
  hints_[*first_slot].RangeQuery(query.interval, &candidates);
  if (elements.size() == 1) {
    out->swap(candidates);
    return;
  }
  std::sort(candidates.begin(), candidates.end());

  // First intersection: flat candidates against the sliced copy of the
  // second element (reference-value de-duplication splits them into
  // per-slice chunks).
  const uint32_t* slot = element_slot_.find(elements[1]);
  if (slot == nullptr) return;
  CandidateChunks chunks;
  slices_[*slot].IntersectFlat(grid_, query.interval, candidates, &chunks);

  // Remaining intersections run chunk-by-chunk.
  CandidateChunks next;
  for (size_t i = 2; i < elements.size() && !chunks.empty(); ++i) {
    slot = element_slot_.find(elements[i]);
    if (slot == nullptr) return;
    next.clear();
    slices_[*slot].IntersectChunks(chunks, &next);
    chunks.swap(next);
  }
  FlattenChunks(chunks, out);
}

size_t TifHintSlicing::MemoryUsageBytes() const {
  size_t bytes = element_slot_.MemoryUsageBytes();
  bytes += hints_.capacity() * sizeof(HintIndex);
  bytes += slices_.capacity() * sizeof(SlicedPostingsIdSt);
  bytes += live_counts_.capacity() * sizeof(uint64_t);
  for (const HintIndex& hint : hints_) bytes += hint.MemoryUsageBytes();
  for (const SlicedPostingsIdSt& s : slices_) bytes += s.MemoryUsageBytes();
  return bytes;
}

Status TifHintSlicing::IntegrityCheck(CheckLevel level) const {
  if (hints_.size() != live_counts_.size() ||
      hints_.size() != slices_.size() ||
      hints_.size() != element_slot_.size()) {
    return Status::Corruption("tif_hint_slicing directory shape mismatch");
  }
  if (built_ && grid_.num_slices() == 0) {
    return Status::Corruption("tif_hint_slicing grid has zero slices");
  }
  Status status = Status::OK();
  std::vector<bool> slot_seen(hints_.size(), false);
  element_slot_.ForEach([&](const ElementId&, const uint32_t& slot) {
    if (!status.ok()) return;
    if (slot >= hints_.size() || slot_seen[slot]) {
      status = Status::Corruption("tif_hint_slicing element slot map broken");
      return;
    }
    slot_seen[slot] = true;
  });
  IRHINT_RETURN_NOT_OK(status);

  for (size_t slot = 0; slot < hints_.size(); ++slot) {
    IRHINT_RETURN_NOT_OK(hints_[slot].IntegrityCheck(level));
    IRHINT_RETURN_NOT_OK(slices_[slot].CheckStructure(grid_, level));
    if (level == CheckLevel::kQuick) continue;
    // Both copies store every live object exactly once (HINT: one original
    // assignment or overflow; slices: one representative replica), so both
    // censuses must agree with the live-frequency table — catching a
    // desynchronized dual-copy state that queries would answer
    // inconsistently depending on which copy serves the element.
    if (hints_[slot].LiveOriginalCount() != live_counts_[slot]) {
      return Status::Corruption("tif_hint_slicing live count out of sync "
                                "with postings HINT");
    }
    if (slices_[slot].LiveObjectCount(grid_) != live_counts_[slot]) {
      return Status::Corruption("tif_hint_slicing live count out of sync "
                                "with sliced copy");
    }
  }
  return Status::OK();
}

Status TifHintSlicing::SaveTo(SnapshotWriter* writer) const {
  writer->BeginSection(kSectionMeta);
  writer->WriteI32(options_.num_bits);
  writer->WriteU32(options_.num_slices);
  writer->WriteU64(domain_end_);
  writer->WriteU32(grid_.num_slices());
  writer->WriteU64(grid_.domain_end());
  writer->WriteU8(built_ ? 1 : 0);
  IRHINT_RETURN_NOT_OK(writer->EndSection());

  writer->BeginSection(kSectionDirectory);
  std::vector<ElementId> slot_elements(hints_.size(), 0);
  element_slot_.ForEach([&slot_elements](const ElementId& e,
                                         const uint32_t& slot) {
    slot_elements[slot] = e;
  });
  writer->WriteVector(slot_elements);
  writer->WriteVector(live_counts_);
  IRHINT_RETURN_NOT_OK(writer->EndSection());

  writer->BeginSection(kSectionPayload);
  for (const HintIndex& hint : hints_) {
    hint.SaveTo(writer);
  }
  IRHINT_RETURN_NOT_OK(writer->EndSection());

  writer->BeginSection(kSectionAux);
  for (const SlicedPostingsIdSt& s : slices_) {
    s.SaveTo(writer);
  }
  return writer->EndSection();
}

Status TifHintSlicing::LoadFrom(SnapshotReader* reader) {
  auto meta = reader->OpenSection(kSectionMeta);
  IRHINT_RETURN_NOT_OK(meta.status());
  uint32_t grid_slices = 0;
  uint64_t grid_domain_end = 0;
  uint8_t built = 0;
  IRHINT_RETURN_NOT_OK(meta->ReadI32(&options_.num_bits));
  IRHINT_RETURN_NOT_OK(meta->ReadU32(&options_.num_slices));
  IRHINT_RETURN_NOT_OK(meta->ReadU64(&domain_end_));
  IRHINT_RETURN_NOT_OK(meta->ReadU32(&grid_slices));
  IRHINT_RETURN_NOT_OK(meta->ReadU64(&grid_domain_end));
  IRHINT_RETURN_NOT_OK(meta->ReadU8(&built));
  if (grid_slices == 0) {
    return Status::Corruption("tif_hint_slicing snapshot has zero slices");
  }
  grid_ = SliceGrid(grid_domain_end, grid_slices);
  built_ = built != 0;

  auto directory = reader->OpenSection(kSectionDirectory);
  IRHINT_RETURN_NOT_OK(directory.status());
  std::vector<ElementId> slot_elements;
  IRHINT_RETURN_NOT_OK(directory->ReadVector(&slot_elements));
  IRHINT_RETURN_NOT_OK(directory->ReadVector(&live_counts_));
  if (live_counts_.size() != slot_elements.size()) {
    return Status::Corruption(
        "tif_hint_slicing snapshot directory shape mismatch");
  }
  element_slot_.clear();
  element_slot_.reserve(slot_elements.size());
  for (uint32_t slot = 0; slot < slot_elements.size(); ++slot) {
    element_slot_.insert_or_assign(slot_elements[slot], slot);
  }

  auto payload = reader->OpenSection(kSectionPayload);
  IRHINT_RETURN_NOT_OK(payload.status());
  hints_.assign(slot_elements.size(), {});
  for (HintIndex& hint : hints_) {
    IRHINT_RETURN_NOT_OK(hint.LoadFrom(&payload.value()));
  }

  auto aux = reader->OpenSection(kSectionAux);
  IRHINT_RETURN_NOT_OK(aux.status());
  slices_.assign(slot_elements.size(), {});
  for (SlicedPostingsIdSt& s : slices_) {
    IRHINT_RETURN_NOT_OK(s.LoadFrom(&aux.value()));
  }
  return Status::OK();
}

}  // namespace irhint

// Slicing infrastructure shared by tIF+Slicing (Berberich et al.) and the
// tIF+HINT+Slicing hybrid (Section 3.2).
//
// The time domain is divided into uniform, disjoint slices; every postings
// list is vertically partitioned into per-slice sub-lists, replicating an
// entry into each slice its interval overlaps. Duplicates are avoided with
// the reference-value method: an object is emitted only from the slice
// containing max(o.t_st, q.t_st). Because the reference slice of an object
// is the same in every element's list (the interval is a property of the
// object), subsequent list intersections can run slice-by-slice in merge
// fashion over the already de-duplicated candidate chunks.
//
// The template parameter selects the sub-list entry: tIF+Slicing stores
// full <id, t_st, t_end> postings (it must evaluate the temporal predicate
// on the first list); the hybrid only stores <id, t_st> (candidates are
// already temporally qualified by the HINT copy — the t_st is kept solely
// for the reference-value test), the space saving discussed in Section 3.2.

#ifndef IRHINT_IRFIRST_SLICED_POSTINGS_H_
#define IRHINT_IRFIRST_SLICED_POSTINGS_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "common/status.h"
#include "core/integrity.h"
#include "data/object.h"
#include "ir/postings.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

namespace irhint {

/// \brief Sub-list entry of the hybrid: id plus start (for the reference
/// test only).
struct IdStEntry {
  ObjectId id = 0;
  StoredTime st = 0;
};

namespace internal {

// Sliced sub-lists tombstone by invalidating the *temporal* fields while
// keeping the id intact: sub-lists stay id-sorted, so deletions can locate
// entries by binary search (which is what keeps tIF+Slicing's deletion
// cost low in the paper's Table 7). A dead entry can never surface again:
// candidate construction applies the temporal predicate (always false for
// the sentinel), and merge intersections only match ids already present in
// the live candidate set.
inline constexpr StoredTime kDeadStart =
    std::numeric_limits<StoredTime>::max();

inline bool IsLive(const Posting& e) { return e.st != kDeadStart; }
inline bool IsLive(const IdStEntry& e) { return e.st != kDeadStart; }
inline void MarkDead(Posting* e) {
  e->st = kDeadStart;
  e->end = 0;
}
inline void MarkDead(IdStEntry* e) { e->st = kDeadStart; }

}  // namespace internal

/// \brief Uniform division of [0, domain_end] into slices.
class SliceGrid {
 public:
  SliceGrid() = default;
  SliceGrid(Time domain_end, uint32_t num_slices)
      : domain_size_(domain_end + 1), num_slices_(num_slices) {}

  uint32_t num_slices() const { return num_slices_; }
  Time domain_end() const { return domain_size_ - 1; }

  /// \brief Slice containing raw time t (clamped into the last slice).
  uint32_t SliceOf(Time t) const {
    if (t >= domain_size_) return num_slices_ - 1;
    return static_cast<uint32_t>(static_cast<__uint128_t>(t) * num_slices_ /
                                 domain_size_);
  }

 private:
  Time domain_size_ = 1;
  uint32_t num_slices_ = 1;
};

/// \brief De-duplicated per-slice candidate sets: (slice, sorted ids),
/// ordered by slice number.
using CandidateChunks =
    std::vector<std::pair<uint32_t, std::vector<ObjectId>>>;

/// \brief Flatten chunks into one result vector (order unspecified).
inline void FlattenChunks(const CandidateChunks& chunks,
                          std::vector<ObjectId>* out) {
  for (const auto& [slice, ids] : chunks) {
    (void)slice;
    out->insert(out->end(), ids.begin(), ids.end());
  }
}

inline size_t ChunkCount(const CandidateChunks& chunks) {
  size_t n = 0;
  for (const auto& [slice, ids] : chunks) {
    (void)slice;
    n += ids.size();
  }
  return n;
}

/// \brief One element's sliced postings list.
template <typename Entry>
class SlicedPostingsT {
 public:
  /// \brief Replicate an entry into every slice its interval overlaps.
  /// Object ids must arrive in increasing order (sub-lists stay id-sorted).
  void Add(const SliceGrid& grid, ObjectId id, const Interval& interval) {
    const uint32_t first = grid.SliceOf(interval.st);
    const uint32_t last = grid.SliceOf(interval.end);
    for (uint32_t s = first; s <= last; ++s) {
      SublistFor(s).push_back(MakeEntry(id, interval));
      ++num_entries_;
    }
  }

  /// \brief Temporal filter + reference de-duplication over the relevant
  /// slices (the first-element step of tIF+Slicing). Requires full
  /// postings (Entry == Posting).
  void BuildCandidates(const SliceGrid& grid, const Interval& q,
                       CandidateChunks* out) const
    requires std::is_same_v<Entry, Posting>
  {
    const uint32_t s_lo = grid.SliceOf(q.st);
    const uint32_t s_hi = grid.SliceOf(q.end);
    for (size_t pos = LowerBound(s_lo); pos < slice_ids_.size(); ++pos) {
      const uint32_t s = slice_ids_[pos];
      if (s > s_hi) break;
      std::vector<ObjectId> ids;
      for (const Entry& e : sublists_[pos]) {
        if (!internal::IsLive(e)) continue;
        if (e.st > q.end || e.end < q.st) continue;
        if (grid.SliceOf(std::max<Time>(e.st, q.st)) == s) ids.push_back(e.id);
      }
      if (!ids.empty()) out->emplace_back(s, std::move(ids));
    }
  }

  /// \brief Slice-by-slice merge of de-duplicated candidate chunks with
  /// this element's sub-lists (the subsequent-element step).
  void IntersectChunks(const CandidateChunks& in, CandidateChunks* out) const {
    for (const auto& [s, ids] : in) {
      const size_t pos = LowerBound(s);
      if (pos >= slice_ids_.size() || slice_ids_[pos] != s) continue;
      std::vector<ObjectId> merged;
      MergeIds(ids, sublists_[pos], &merged);
      if (!merged.empty()) out->emplace_back(s, std::move(merged));
    }
  }

  /// \brief Merge a flat sorted candidate list against the relevant slices,
  /// de-duplicating with the reference test (the hybrid's first
  /// intersection: candidates come from the HINT copy as a single sorted
  /// vector, already temporally qualified).
  void IntersectFlat(const SliceGrid& grid, const Interval& q,
                     const std::vector<ObjectId>& flat,
                     CandidateChunks* out) const {
    const uint32_t s_lo = grid.SliceOf(q.st);
    const uint32_t s_hi = grid.SliceOf(q.end);
    for (size_t pos = LowerBound(s_lo); pos < slice_ids_.size(); ++pos) {
      const uint32_t s = slice_ids_[pos];
      if (s > s_hi) break;
      std::vector<ObjectId> merged;
      const std::vector<Entry>& list = sublists_[pos];
      size_t i = 0, j = 0;
      while (i < flat.size() && j < list.size()) {
        const ObjectId lid = list[j].id;
        if (!internal::IsLive(list[j])) {
          ++j;
        } else if (flat[i] < lid) {
          ++i;
        } else if (flat[i] > lid) {
          ++j;
        } else {
          if (grid.SliceOf(std::max<Time>(list[j].st, q.st)) == s) {
            merged.push_back(lid);
          }
          ++i;
          ++j;
        }
      }
      if (!merged.empty()) out->emplace_back(s, std::move(merged));
    }
  }

  /// \brief Tombstone every replica of id. The interval (the one the
  /// object was inserted with) pins down exactly which slices hold
  /// replicas, and sub-lists remain id-sorted (the id is kept; the
  /// temporal fields are invalidated), so each replica is located by one
  /// binary search. Returns replicas tombstoned.
  size_t Tombstone(const SliceGrid& grid, ObjectId id,
                   const Interval& interval) {
    const uint32_t first = grid.SliceOf(interval.st);
    const uint32_t last = grid.SliceOf(interval.end);
    size_t tombstoned = 0;
    for (size_t pos = LowerBound(first);
         pos < slice_ids_.size() && slice_ids_[pos] <= last; ++pos) {
      auto& sublist = sublists_[pos];
      const auto it = std::lower_bound(
          sublist.begin(), sublist.end(), id,
          [](const Entry& e, ObjectId v) { return e.id < v; });
      if (it != sublist.end() && it->id == id && internal::IsLive(*it)) {
        internal::MarkDead(&*it);
        ++tombstoned;
      }
    }
    return tombstoned;
  }

  size_t NumEntries() const { return num_entries_; }

  /// \brief Number of live objects in this list, counting each object once
  /// via its representative replica (the one in the slice containing its
  /// start). Owners reconcile this against their live-frequency tables.
  uint64_t LiveObjectCount(const SliceGrid& grid) const {
    uint64_t live = 0;
    for (size_t pos = 0; pos < slice_ids_.size(); ++pos) {
      for (const Entry& e : sublists_[pos]) {
        if (internal::IsLive(e) && grid.SliceOf(e.st) == slice_ids_[pos]) {
          ++live;
        }
      }
    }
    return live;
  }

  /// \brief Audit the sliced-list invariants (DESIGN.md §9). kQuick:
  /// slice directory sorted and inside the grid, entry bookkeeping. kDeep
  /// additionally checks per-sub-list id order (live and dead entries keep
  /// their slot, so the raw order must be strictly increasing — Tombstone()
  /// binary-searches it) and, for live entries, membership of the sub-list's
  /// slice in the entry's replication span.
  Status CheckStructure(const SliceGrid& grid, CheckLevel level) const {
    if (sublists_.size() != slice_ids_.size()) {
      return Status::Corruption("sliced list directory shape mismatch");
    }
    size_t stored = 0;
    for (size_t pos = 0; pos < slice_ids_.size(); ++pos) {
      if (pos > 0 && slice_ids_[pos] <= slice_ids_[pos - 1]) {
        return Status::Corruption("sliced list slice ids not sorted");
      }
      if (slice_ids_[pos] >= grid.num_slices()) {
        return Status::Corruption("sliced list slice id outside grid");
      }
      stored += sublists_[pos].size();
    }
    if (stored != num_entries_) {
      return Status::Corruption("sliced list entry count mismatch");
    }
    if (level == CheckLevel::kQuick) return Status::OK();

    for (size_t pos = 0; pos < slice_ids_.size(); ++pos) {
      const uint32_t s = slice_ids_[pos];
      const std::vector<Entry>& sublist = sublists_[pos];
      for (size_t i = 0; i < sublist.size(); ++i) {
        if (i > 0 && sublist[i].id <= sublist[i - 1].id) {
          return Status::Corruption("sliced sub-list not id-sorted");
        }
        const Entry& e = sublist[i];
        if (!internal::IsLive(e)) continue;
        // A live replica sits only in slices its interval overlaps.
        if (grid.SliceOf(e.st) > s) {
          return Status::Corruption(
              "sliced entry stored before its first slice");
        }
        if constexpr (std::is_same_v<Entry, Posting>) {
          if (e.st > e.end) {
            return Status::Corruption("sliced entry has inverted interval");
          }
          if (grid.SliceOf(e.end) < s) {
            return Status::Corruption(
                "sliced entry stored past its last slice");
          }
        }
      }
    }
    return Status::OK();
  }

  size_t MemoryUsageBytes() const {
    size_t bytes = slice_ids_.capacity() * sizeof(uint32_t);
    bytes += sublists_.capacity() * sizeof(std::vector<Entry>);
    for (const auto& sublist : sublists_) {
      bytes += sublist.capacity() * sizeof(Entry);
    }
    return bytes;
  }

  /// \brief Serialize into the section currently open on `writer`.
  void SaveTo(SnapshotWriter* writer) const {
    writer->WriteVector(slice_ids_);
    for (const auto& sublist : sublists_) {
      writer->WriteVector(sublist);
    }
    writer->WriteU64(num_entries_);
  }

  /// \brief Restore from a section cursor, replacing current contents.
  /// Sub-lists are small per slice; they stay owned vectors.
  IRHINT_UNTRUSTED Status LoadFrom(SectionCursor* cursor) {
    IRHINT_RETURN_NOT_OK(cursor->ReadVector(&slice_ids_));
    sublists_.assign(slice_ids_.size(), {});
    for (auto& sublist : sublists_) {
      IRHINT_RETURN_NOT_OK(cursor->ReadVector(&sublist));
    }
    uint64_t num_entries = 0;
    IRHINT_RETURN_NOT_OK(cursor->ReadU64(&num_entries));
    num_entries_ = static_cast<size_t>(num_entries);
    return Status::OK();
  }

 private:
  friend struct IntegrityTestPeer;

  static Entry MakeEntry(ObjectId id, const Interval& interval) {
    if constexpr (std::is_same_v<Entry, Posting>) {
      return Posting{id, static_cast<StoredTime>(interval.st),
                     static_cast<StoredTime>(interval.end)};
    } else {
      return IdStEntry{id, static_cast<StoredTime>(interval.st)};
    }
  }

  size_t LowerBound(uint32_t s) const {
    return static_cast<size_t>(
        std::lower_bound(slice_ids_.begin(), slice_ids_.end(), s) -
        slice_ids_.begin());
  }

  std::vector<Entry>& SublistFor(uint32_t s) {
    const size_t pos = LowerBound(s);
    if (pos < slice_ids_.size() && slice_ids_[pos] == s) {
      return sublists_[pos];
    }
    slice_ids_.insert(slice_ids_.begin() + pos, s);
    sublists_.insert(sublists_.begin() + pos, std::vector<Entry>());
    return sublists_[pos];
  }

  static void MergeIds(const std::vector<ObjectId>& ids,
                       const std::vector<Entry>& list,
                       std::vector<ObjectId>* out) {
    size_t i = 0, j = 0;
    while (i < ids.size() && j < list.size()) {
      const ObjectId lid = list[j].id;
      if (!internal::IsLive(list[j])) {
        ++j;
      } else if (ids[i] < lid) {
        ++i;
      } else if (ids[i] > lid) {
        ++j;
      } else {
        out->push_back(lid);
        ++i;
        ++j;
      }
    }
  }

  std::vector<uint32_t> slice_ids_;           // sorted slice numbers
  std::vector<std::vector<Entry>> sublists_;  // parallel sub-lists
  size_t num_entries_ = 0;
};

using SlicedPostings = SlicedPostingsT<Posting>;
using SlicedPostingsIdSt = SlicedPostingsT<IdStEntry>;

}  // namespace irhint

#endif  // IRHINT_IRFIRST_SLICED_POSTINGS_H_

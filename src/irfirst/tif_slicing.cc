#include "irfirst/tif_slicing.h"

#include <algorithm>
#include <limits>

namespace irhint {

uint32_t TifSlicing::SlotFor(ElementId e) {
  if (const uint32_t* slot = element_slot_.find(e)) return *slot;
  const uint32_t slot = static_cast<uint32_t>(lists_.size());
  element_slot_.insert_or_assign(e, slot);
  lists_.emplace_back();
  live_counts_.push_back(0);
  return slot;
}

Status TifSlicing::Build(const Corpus& corpus) {
  if (options_.num_slices == 0) {
    return Status::InvalidArgument("num_slices must be positive");
  }
  if (corpus.domain_end() >= std::numeric_limits<StoredTime>::max()) {
    return Status::InvalidArgument("domain exceeds 32-bit stored endpoints");
  }
  grid_ = SliceGrid(corpus.domain_end(), options_.num_slices);
  element_slot_.reserve(corpus.dictionary().size());
  built_ = true;
  for (const Object& o : corpus.objects()) {
    IRHINT_RETURN_NOT_OK(Insert(o));
  }
  return Status::OK();
}

Status TifSlicing::Insert(const Object& object) {
  if (!built_) return Status::InvalidArgument("index not built");
  if (object.interval.st > object.interval.end) {
    return Status::InvalidArgument("interval start exceeds end");
  }
  if (object.interval.end >= std::numeric_limits<StoredTime>::max()) {
    return Status::OutOfDomain("interval exceeds 32-bit stored endpoints");
  }
  for (ElementId e : object.elements) {
    const uint32_t slot = SlotFor(e);
    lists_[slot].Add(grid_, object.id, object.interval);
    ++live_counts_[slot];
  }
  return Status::OK();
}

Status TifSlicing::Erase(const Object& object) {
  size_t tombstoned = 0;
  for (ElementId e : object.elements) {
    const uint32_t* slot = element_slot_.find(e);
    if (slot == nullptr) continue;
    const size_t n =
        lists_[*slot].Tombstone(grid_, object.id, object.interval);
    if (n > 0) {
      --live_counts_[*slot];
      tombstoned += n;
    }
  }
  return tombstoned > 0 ? Status::OK()
                        : Status::NotFound("object not present");
}

uint64_t TifSlicing::Frequency(ElementId e) const {
  const uint32_t* slot = element_slot_.find(e);
  return slot != nullptr ? live_counts_[*slot] : 0;
}

void TifSlicing::Query(const irhint::Query& query,
                       std::vector<ObjectId>* out) const {
  out->clear();
  if (query.elements.empty()) return;

  std::vector<ElementId> elements = query.elements;
  std::sort(elements.begin(), elements.end(),
            [this](ElementId a, ElementId b) {
              const uint64_t fa = Frequency(a);
              const uint64_t fb = Frequency(b);
              if (fa != fb) return fa < fb;
              return a < b;
            });

  const uint32_t* first_slot = element_slot_.find(elements[0]);
  if (first_slot == nullptr) return;

  // Temporal filter + reference de-duplication over the relevant slices of
  // the least frequent element.
  CandidateChunks chunks;
  lists_[*first_slot].BuildCandidates(grid_, query.interval, &chunks);

  // Slice-by-slice merge intersections with the remaining elements.
  CandidateChunks next;
  for (size_t i = 1; i < elements.size() && !chunks.empty(); ++i) {
    const uint32_t* slot = element_slot_.find(elements[i]);
    if (slot == nullptr) return;
    next.clear();
    lists_[*slot].IntersectChunks(chunks, &next);
    chunks.swap(next);
  }
  FlattenChunks(chunks, out);
}

size_t TifSlicing::NumEntries() const {
  size_t n = 0;
  for (const SlicedPostings& list : lists_) n += list.NumEntries();
  return n;
}

size_t TifSlicing::MemoryUsageBytes() const {
  size_t bytes = element_slot_.MemoryUsageBytes();
  bytes += lists_.capacity() * sizeof(SlicedPostings);
  bytes += live_counts_.capacity() * sizeof(uint64_t);
  for (const SlicedPostings& list : lists_) {
    bytes += list.MemoryUsageBytes();
  }
  return bytes;
}

Status TifSlicing::IntegrityCheck(CheckLevel level) const {
  if (lists_.size() != live_counts_.size() ||
      lists_.size() != element_slot_.size()) {
    return Status::Corruption("tif_slicing directory shape mismatch");
  }
  if (built_ && grid_.num_slices() == 0) {
    return Status::Corruption("tif_slicing grid has zero slices");
  }
  Status status = Status::OK();
  std::vector<bool> slot_seen(lists_.size(), false);
  element_slot_.ForEach([&](const ElementId&, const uint32_t& slot) {
    if (!status.ok()) return;
    if (slot >= lists_.size() || slot_seen[slot]) {
      status = Status::Corruption("tif_slicing element slot map broken");
      return;
    }
    slot_seen[slot] = true;
  });
  IRHINT_RETURN_NOT_OK(status);

  for (size_t slot = 0; slot < lists_.size(); ++slot) {
    IRHINT_RETURN_NOT_OK(lists_[slot].CheckStructure(grid_, level));
    if (level == CheckLevel::kQuick) continue;
    // Reference de-duplication counts every live object exactly once (in
    // the slice holding its start), so the representative census must
    // match the live-frequency table.
    if (lists_[slot].LiveObjectCount(grid_) != live_counts_[slot]) {
      return Status::Corruption("tif_slicing live count out of sync with "
                                "sliced list");
    }
  }
  return Status::OK();
}

Status TifSlicing::SaveTo(SnapshotWriter* writer) const {
  writer->BeginSection(kSectionMeta);
  writer->WriteU32(options_.num_slices);
  writer->WriteU32(grid_.num_slices());
  writer->WriteU64(grid_.domain_end());
  writer->WriteU8(built_ ? 1 : 0);
  IRHINT_RETURN_NOT_OK(writer->EndSection());

  writer->BeginSection(kSectionDirectory);
  std::vector<ElementId> slot_elements(lists_.size(), 0);
  element_slot_.ForEach([&slot_elements](const ElementId& e,
                                         const uint32_t& slot) {
    slot_elements[slot] = e;
  });
  writer->WriteVector(slot_elements);
  writer->WriteVector(live_counts_);
  IRHINT_RETURN_NOT_OK(writer->EndSection());

  writer->BeginSection(kSectionPayload);
  for (const SlicedPostings& list : lists_) {
    list.SaveTo(writer);
  }
  return writer->EndSection();
}

Status TifSlicing::LoadFrom(SnapshotReader* reader) {
  auto meta = reader->OpenSection(kSectionMeta);
  IRHINT_RETURN_NOT_OK(meta.status());
  uint32_t grid_slices;
  uint64_t domain_end;
  uint8_t built;
  IRHINT_RETURN_NOT_OK(meta->ReadU32(&options_.num_slices));
  IRHINT_RETURN_NOT_OK(meta->ReadU32(&grid_slices));
  IRHINT_RETURN_NOT_OK(meta->ReadU64(&domain_end));
  IRHINT_RETURN_NOT_OK(meta->ReadU8(&built));
  if (grid_slices == 0) {
    return Status::Corruption("tif_slicing snapshot has zero slices");
  }
  grid_ = SliceGrid(domain_end, grid_slices);
  built_ = built != 0;

  auto directory = reader->OpenSection(kSectionDirectory);
  IRHINT_RETURN_NOT_OK(directory.status());
  std::vector<ElementId> slot_elements;
  IRHINT_RETURN_NOT_OK(directory->ReadVector(&slot_elements));
  IRHINT_RETURN_NOT_OK(directory->ReadVector(&live_counts_));
  if (live_counts_.size() != slot_elements.size()) {
    return Status::Corruption(
        "tif_slicing snapshot directory shape mismatch");
  }
  element_slot_.clear();
  element_slot_.reserve(slot_elements.size());
  for (uint32_t slot = 0; slot < slot_elements.size(); ++slot) {
    element_slot_.insert_or_assign(slot_elements[slot], slot);
  }

  auto payload = reader->OpenSection(kSectionPayload);
  IRHINT_RETURN_NOT_OK(payload.status());
  lists_.assign(slot_elements.size(), {});
  for (SlicedPostings& list : lists_) {
    IRHINT_RETURN_NOT_OK(list.LoadFrom(&payload.value()));
  }
  return Status::OK();
}

}  // namespace irhint

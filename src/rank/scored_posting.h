// Value types of the ranked-retrieval subsystem (DESIGN.md §12): the
// impact-scored posting, the shared block/list/division max-score
// metadata record, and the impact function itself.
//
// The impact of a (term, object) pair is a PURE function of the term id
// and the object's interval end — no collection statistics, no
// build-frozen state. That is the load-bearing design decision: it makes
// scores byte-identical across index kinds, across a WAL replay, across
// serve shards (which each see a subset of the corpus) and across insert
// orders, which in turn is what lets every top-k surface in the library
// be tested for exact equality against the exhaustive oracle.

#ifndef IRHINT_RANK_SCORED_POSTING_H_
#define IRHINT_RANK_SCORED_POSTING_H_

#include <bit>
#include <cstdint>

#include "data/object.h"

namespace irhint {

/// \brief Postings per score block. Block metadata (below) lets the
/// MaxScore traversal skip 64 postings per comparison.
inline constexpr size_t kScoreBlockSize = 64;

/// \brief Tombstone marker in ScoredPosting::flags.
inline constexpr uint16_t kScoredTombstone = 1u << 0;

/// \brief One impact-scored posting: the object id, its precomputed
/// quantized impact for the owning term, and the full (global-domain)
/// lifespan so overlap is checked without consulting the corpus. Lists
/// store these sorted by id; 24 bytes, no implicit padding (snapshot
/// arrays require padding-free layouts).
struct ScoredPosting {
  ObjectId id = 0;
  uint16_t impact = 0;
  uint16_t flags = 0;
  Time st = 0;
  Time end = 0;

  bool tombstoned() const { return (flags & kScoredTombstone) != 0; }
};
static_assert(sizeof(ScoredPosting) == 24, "ScoredPosting must be packed");

/// \brief Max-score metadata over a run of postings: one per 64-posting
/// block, one per list, one per division. Bounds are conservative
/// ("stale-high"): erases tombstone postings without shrinking the
/// bounds, so a stale record can only make pruning less aggressive,
/// never incorrect. An empty record (min_st > max_end) fails every
/// overlap test, so empty runs prune themselves.
struct ScoreBlockMeta {
  Time min_st = static_cast<Time>(-1);
  Time max_end = 0;
  uint16_t max_impact = 0;
  uint16_t pad_a = 0;
  uint32_t pad_b = 0;

  void Cover(const ScoredPosting& p) {
    if (p.st < min_st) min_st = p.st;
    if (p.end > max_end) max_end = p.end;
    if (p.impact > max_impact) max_impact = p.impact;
  }

  /// \brief True iff no covered posting can overlap `q` (safe to skip
  /// the whole run regardless of the current top-k threshold).
  bool MissesInterval(const Interval& q) const {
    return min_st > q.end || max_end < q.st;
  }
};
static_assert(sizeof(ScoreBlockMeta) == 24, "ScoreBlockMeta must be packed");

/// \brief Log with a 4-bit mantissa: 16 * floor(log2 v) + the next four
/// bits below the leading one. Monotone in v, collapses the huge raw
/// ranges (element ids, time points) to a few hundred buckets while
/// keeping relative order at ~6% resolution. Returns 0 for v == 0.
inline uint32_t LogQuant16(uint64_t v) {
  if (v == 0) return 0;
  const int msb = std::bit_width(v) - 1;
  const uint32_t mant =
      msb >= 4 ? static_cast<uint32_t>((v >> (msb - 4)) & 0xF)
               : static_cast<uint32_t>((v << (4 - msb)) & 0xF);
  return 16u * static_cast<uint32_t>(msb) + mant;
}

/// \brief The quantized impact of term `element` in an object whose
/// lifespan ends at `end`. Rarity proxy: synthetic element ids are
/// frequency ranks, so a larger id means a rarer term (idf-like).
/// Recency proxy: a later interval end means a fresher object. Both
/// factors are log-quantized; the product is scaled into [1, ~2048], so
/// every live matching posting contributes at least 1.
inline uint16_t ImpactScore(ElementId element, Time end) {
  const uint32_t rarity = LogQuant16(static_cast<uint64_t>(element) + 1);
  const uint32_t recency =
      LogQuant16(end == static_cast<Time>(-1) ? end : end + 1);
  return static_cast<uint16_t>(1 + ((rarity * recency) >> 8));
}

}  // namespace irhint

#endif  // IRHINT_RANK_SCORED_POSTING_H_

// ScoredIndex: the ranked-retrieval adapter (DESIGN.md §12). Wraps one of
// the Boolean index kinds (tIF or irHINT) for Build/Query/Insert/Erase
// and maintains, alongside it, per-division ScoreBlockStores of
// impact-scored postings. TopKQuery answers ranked disjunctive queries
// with a MaxScore document-at-a-time traversal over those stores: a
// bounded worst-on-top heap supplies the k-th-best threshold, lists whose
// combined bounds cannot reach it are demoted to probe-only, and whole
// blocks and divisions are skipped when their metadata proves they cannot
// produce a winner. TopKOracle is the exhaustive score-everything
// baseline the tests and the topk_latency bench compare against.

#ifndef IRHINT_RANK_SCORED_INDEX_H_
#define IRHINT_RANK_SCORED_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/factory.h"
#include "core/temporal_ir_index.h"
#include "rank/score_block_store.h"

namespace irhint {

struct ScoredIndexOptions {
  /// Boolean base kind answering Query(); kTif or kIrHintPerf (anything
  /// else is normalized to kIrHintPerf).
  IndexKind base = IndexKind::kIrHintPerf;
  /// Pruning divisions: Build() slices the corpus into this many
  /// equal-population start-time divisions (frozen afterwards). Geometry
  /// affects pruning only, never results; insert-only indexes (the
  /// DurableIndex replay path) keep a single division.
  uint32_t divisions = 32;
};

class ScoredIndex : public CountingTemporalIrIndex {
 public:
  ScoredIndex(const ScoredIndexOptions& options, const IndexConfig& config);

  Status Build(const Corpus& corpus) override;
  void Query(const irhint::Query& query,
             std::vector<ObjectId>* out) const override;
  Status TopKQuery(const irhint::Query& query, uint32_t k,
                   std::vector<ScoredHit>* out) const override;
  Status Insert(const Object& object) override;
  Status Erase(const Object& object) override;
  size_t MemoryUsageBytes() const override;
  std::optional<QueryCounters> Stats() const override;
  void ResetStats() override;
  void EnableStats(bool enabled) override;
  std::string_view Name() const override { return name_; }
  IndexKind Kind() const override;
  Status SaveTo(SnapshotWriter* writer) const override;
  Status LoadFrom(SnapshotReader* reader) override;
  Status IntegrityCheck(CheckLevel level) const override;

  /// \brief Exhaustive baseline: score every posting of every query term
  /// (postings_scored counts them all), then take the k best. Same
  /// result contract as TopKQuery — the traversal must match it
  /// byte-for-byte on every input.
  Status TopKOracle(const irhint::Query& query, uint32_t k,
                    std::vector<ScoredHit>* out) const;

  size_t division_count() const { return stores_.size(); }

 private:
  size_t DivisionFor(Time st) const;

  ScoredIndexOptions options_;
  std::string name_;
  std::unique_ptr<TemporalIrIndex> inner_;
  /// stores_[i] holds objects with st in [division_starts_[i],
  /// division_starts_[i+1]); division_starts_[0] == 0, sizes match.
  std::vector<ScoreBlockStore> stores_;
  std::vector<Time> division_starts_;
  bool built_ = false;
};

}  // namespace irhint

#endif  // IRHINT_RANK_SCORED_INDEX_H_

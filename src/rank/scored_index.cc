#include "rank/scored_index.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>

#include "storage/snapshot_format.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

namespace irhint {

namespace {

/// \brief Sane ceiling on divisions accepted from a snapshot (a hostile
/// count would otherwise drive a huge allocation before any data check).
constexpr uint32_t kMaxDivisions = 1u << 16;

ScoredPosting MakePosting(ElementId element, const Object& object) {
  ScoredPosting p;
  p.id = object.id;
  p.impact = ImpactScore(element, object.interval.end);
  p.st = object.interval.st;
  p.end = object.interval.end;
  return p;
}

/// \brief Query terms deduplicated (set semantics: a repeated term must
/// not double its contribution).
std::vector<ElementId> UniqueTerms(const std::vector<ElementId>& elements) {
  std::vector<ElementId> terms = elements;
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

/// \brief One term's traversal state inside a division.
struct TermCursor {
  ScoreBlockStore::ListRef ref;
  uint64_t ub = 0;  // bound on any single posting's contribution
  size_t pos = 0;   // [0, core_len) core, then the delta overlay

  bool exhausted() const { return pos >= ref.total_len(); }
  const ScoredPosting& at() const {
    return pos < ref.core_len ? ref.core[pos] : ref.delta[pos - ref.core_len];
  }
};

/// \brief Worst-on-top comparator: the heap root is the hit every other
/// entry beats, i.e. the current k-th best — the threshold θ.
bool WorseOnTop(const ScoredHit& a, const ScoredHit& b) {
  return ScoredBetter(a, b);
}

uint64_t Threshold(const std::vector<ScoredHit>& heap, uint32_t k) {
  return heap.size() >= k ? heap.front().score : 0;
}

void HeapOffer(std::vector<ScoredHit>* heap, uint32_t k,
               const ScoredHit& hit) {
  if (heap->size() < k) {
    heap->push_back(hit);
    std::push_heap(heap->begin(), heap->end(), WorseOnTop);
    return;
  }
  if (ScoredBetter(hit, heap->front())) {
    std::pop_heap(heap->begin(), heap->end(), WorseOnTop);
    heap->back() = hit;
    std::push_heap(heap->begin(), heap->end(), WorseOnTop);
  }
}

/// \brief Advance the cursor past every leading block that provably holds
/// no winner. Time pruning is always sound (overlap is a property of the
/// object, shared by all of its postings). Impact pruning is sound only
/// when this is the single essential list — then no other list generates
/// candidates, so a skipped document's total score is bounded by
/// block.max_impact + the non-essential bounds; strictly below θ means
/// it cannot enter the heap even on an id tie.
void SkipPrunedBlocks(TermCursor* c, const Interval& q, bool sole_essential,
                      uint64_t nonessential_ub, uint64_t theta,
                      QueryCounters* counters) {
  for (;;) {
    if (c->pos < c->ref.core_len) {
      if (c->pos % kScoreBlockSize != 0) return;  // mid-block: committed
      const size_t b = c->pos / kScoreBlockSize;
      const ScoreBlockMeta& meta = c->ref.blocks[b];
      const bool skip =
          meta.MissesInterval(q) ||
          (sole_essential && theta > 0 &&
           meta.max_impact + nonessential_ub < theta);
      if (!skip) return;
      counters->blocks_skipped++;
      c->pos = std::min((b + 1) * kScoreBlockSize, c->ref.core_len);
      continue;
    }
    if (c->pos == c->ref.core_len && c->ref.delta_len > 0) {
      // The delta overlay acts as one pseudo-block.
      const ScoreBlockMeta& meta = c->ref.delta_meta;
      const bool skip =
          meta.MissesInterval(q) ||
          (sole_essential && theta > 0 &&
           meta.max_impact + nonessential_ub < theta);
      if (skip) {
        counters->blocks_skipped++;
        c->pos = c->ref.total_len();
      }
    }
    return;
  }
}

/// \brief Binary-search a list (core span, then delta overlay) for an id.
const ScoredPosting* FindInList(const ScoreBlockStore::ListRef& ref,
                                ObjectId id) {
  const auto id_less = [](const ScoredPosting& p, ObjectId v) {
    return p.id < v;
  };
  const ScoredPosting* it =
      std::lower_bound(ref.core, ref.core + ref.core_len, id, id_less);
  if (it != ref.core + ref.core_len && it->id == id) return it;
  it = std::lower_bound(ref.delta, ref.delta + ref.delta_len, id, id_less);
  if (it != ref.delta + ref.delta_len && it->id == id) return it;
  return nullptr;
}

/// \brief MaxScore document-at-a-time over one division, folding winners
/// into the shared heap (θ carries across divisions).
void TopKDivision(const ScoreBlockStore& store, const Interval& q,
                  const std::vector<ElementId>& terms, uint32_t k,
                  std::vector<ScoredHit>* heap, QueryCounters* counters) {
  if (store.empty()) return;
  if (store.division_meta().MissesInterval(q)) {
    counters->divisions_skipped++;
    return;
  }
  std::vector<TermCursor> lists;
  lists.reserve(terms.size());
  uint64_t division_ub = 0;
  for (ElementId t : terms) {
    TermCursor c;
    if (!store.FindList(t, &c.ref)) continue;
    if (c.ref.MissesInterval(q)) continue;
    c.ub = c.ref.max_impact();
    division_ub += c.ub;
    lists.push_back(c);
  }
  if (lists.empty()) return;
  {
    const uint64_t theta = Threshold(*heap, k);
    if (theta > 0 && division_ub < theta) {
      counters->divisions_skipped++;
      return;
    }
  }
  counters->divisions_visited++;

  // MaxScore order: ascending bound, ties longer-list-first, so the
  // cheap-but-heavy lists are first in line for probe-only demotion.
  std::sort(lists.begin(), lists.end(),
            [](const TermCursor& a, const TermCursor& b) {
              if (a.ub != b.ub) return a.ub < b.ub;
              return a.ref.total_len() > b.ref.total_len();
            });
  std::vector<uint64_t> prefix_ub(lists.size() + 1, 0);
  for (size_t i = 0; i < lists.size(); ++i) {
    prefix_ub[i + 1] = prefix_ub[i] + lists[i].ub;
  }

  // Lists [0, split) are non-essential: their combined bounds are
  // STRICTLY below θ, so a document found only there scores < θ and
  // loses to the whole heap regardless of id ties. Candidates therefore
  // come from the essential suffix alone; non-essential lists are only
  // probed. The split is re-derived whenever θ grows.
  size_t split = 0;
  uint64_t split_theta = static_cast<uint64_t>(-1);

  for (;;) {
    const uint64_t theta = Threshold(*heap, k);
    if (theta != split_theta) {
      if (theta > 0 && prefix_ub[lists.size()] < theta) return;
      split = 0;
      while (prefix_ub[split + 1] < theta) ++split;
      split_theta = theta;
    }
    const bool sole_essential = split + 1 == lists.size();
    const uint64_t nonessential_ub = prefix_ub[split];

    uint64_t cand = static_cast<uint64_t>(-1);
    for (size_t i = split; i < lists.size(); ++i) {
      SkipPrunedBlocks(&lists[i], q, sole_essential && i == split,
                       nonessential_ub, theta, counters);
      if (!lists[i].exhausted()) {
        cand = std::min(cand, static_cast<uint64_t>(lists[i].at().id));
      }
    }
    if (cand == static_cast<uint64_t>(-1)) return;  // essentials drained
    const ObjectId cand_id = static_cast<ObjectId>(cand);

    uint64_t score = 0;
    for (size_t i = split; i < lists.size(); ++i) {
      TermCursor& c = lists[i];
      if (!c.exhausted() && c.at().id == cand_id) {
        const ScoredPosting& p = c.at();
        counters->postings_scored++;
        if (!p.tombstoned() && p.st <= q.end && p.end >= q.st) {
          score += p.impact;
        }
        c.pos++;
      }
    }
    // A dead or non-overlapping candidate stays dead in every other list
    // (liveness and lifespan belong to the object, not the posting).
    if (score == 0) continue;

    for (size_t j = split; j-- > 0;) {
      // Even perfect probes below j cannot lift the score to θ.
      if (theta > 0 && score + prefix_ub[j + 1] < theta) break;
      const ScoredPosting* p = FindInList(lists[j].ref, cand_id);
      if (p != nullptr) {
        counters->postings_scored++;
        if (!p->tombstoned() && p->st <= q.end && p->end >= q.st) {
          score += p->impact;
        }
      }
    }
    HeapOffer(heap, k, ScoredHit{cand_id, score});
  }
}

}  // namespace

ScoredIndex::ScoredIndex(const ScoredIndexOptions& options,
                         const IndexConfig& config)
    : options_(options) {
  if (options_.base != IndexKind::kTif &&
      options_.base != IndexKind::kIrHintPerf) {
    options_.base = IndexKind::kIrHintPerf;
  }
  if (options_.divisions == 0) options_.divisions = 1;
  name_ = options_.base == IndexKind::kTif ? "scored-tIF" : "scored-irHINT";
  inner_ = CreateIndex(options_.base, config);
  stores_.resize(1);
  division_starts_.assign(1, 0);
}

Status ScoredIndex::Build(const Corpus& corpus) {
  if (built_) {
    return Status::InvalidArgument("scored index is already built");
  }
  for (const ScoreBlockStore& store : stores_) {
    if (!store.empty()) {
      return Status::InvalidArgument("scored index Build after Insert");
    }
  }
  IRHINT_RETURN_NOT_OK(inner_->Build(corpus));
  const std::vector<Object>& objects = corpus.objects();

  // Freeze equal-population start-time boundaries: each division gets
  // ~n/G objects, so suffix pruning by min_st removes postings, not just
  // (possibly empty) time span. Duplicate quantiles collapse.
  division_starts_.assign(1, 0);
  if (options_.divisions > 1 && !objects.empty()) {
    std::vector<Time> starts;
    starts.reserve(objects.size());
    for (const Object& o : objects) starts.push_back(o.interval.st);
    std::sort(starts.begin(), starts.end());
    for (uint32_t j = 1; j < options_.divisions; ++j) {
      const Time b =
          starts[static_cast<size_t>(j) * starts.size() / options_.divisions];
      if (b > division_starts_.back()) division_starts_.push_back(b);
    }
  }

  std::vector<std::map<ElementId, std::vector<ScoredPosting>>> lists(
      division_starts_.size());
  for (const Object& o : objects) {
    auto& division = lists[DivisionFor(o.interval.st)];
    for (ElementId e : o.elements) {
      division[e].push_back(MakePosting(e, o));
    }
  }
  stores_.assign(division_starts_.size(), ScoreBlockStore());
  for (size_t d = 0; d < stores_.size(); ++d) stores_[d].Assemble(lists[d]);
  built_ = true;
  return Status::OK();
}

void ScoredIndex::Query(const irhint::Query& query,
                        std::vector<ObjectId>* out) const {
  inner_->Query(query, out);
}

Status ScoredIndex::TopKQuery(const irhint::Query& query, uint32_t k,
                              std::vector<ScoredHit>* out) const {
  out->clear();
  if (query.interval.st > query.interval.end) {
    return Status::InvalidArgument("query interval is inverted");
  }
  if (k == 0) return Status::OK();
  QueryCounters local;
  const std::vector<ElementId> terms = UniqueTerms(query.elements);
  std::vector<ScoredHit> heap;
  heap.reserve(k);
  for (const ScoreBlockStore& store : stores_) {
    TopKDivision(store, query.interval, terms, k, &heap, &local);
  }
  std::sort(heap.begin(), heap.end(), ScoredBetter);
  *out = std::move(heap);
  counters_.Accumulate(local);
  return Status::OK();
}

Status ScoredIndex::TopKOracle(const irhint::Query& query, uint32_t k,
                               std::vector<ScoredHit>* out) const {
  out->clear();
  if (query.interval.st > query.interval.end) {
    return Status::InvalidArgument("query interval is inverted");
  }
  if (k == 0) return Status::OK();
  QueryCounters local;
  const std::vector<ElementId> terms = UniqueTerms(query.elements);
  std::unordered_map<ObjectId, uint64_t> scores;
  for (const ScoreBlockStore& store : stores_) {
    bool touched = false;
    for (ElementId t : terms) {
      ScoreBlockStore::ListRef ref;
      if (!store.FindList(t, &ref)) continue;
      touched = true;
      for (size_t i = 0; i < ref.total_len(); ++i) {
        const ScoredPosting& p =
            i < ref.core_len ? ref.core[i] : ref.delta[i - ref.core_len];
        local.postings_scored++;
        if (!p.tombstoned() && p.st <= query.interval.end &&
            p.end >= query.interval.st) {
          scores[p.id] += p.impact;
        }
      }
    }
    if (touched) local.divisions_visited++;
  }
  std::vector<ScoredHit> hits;
  hits.reserve(scores.size());
  for (const auto& [id, score] : scores) hits.push_back(ScoredHit{id, score});
  std::sort(hits.begin(), hits.end(), ScoredBetter);
  if (hits.size() > static_cast<size_t>(k)) hits.resize(k);
  *out = std::move(hits);
  counters_.Accumulate(local);
  return Status::OK();
}

Status ScoredIndex::Insert(const Object& object) {
  IRHINT_RETURN_NOT_OK(inner_->Insert(object));
  ScoreBlockStore& store = stores_[DivisionFor(object.interval.st)];
  for (ElementId e : object.elements) store.Append(e, MakePosting(e, object));
  return Status::OK();
}

Status ScoredIndex::Erase(const Object& object) {
  IRHINT_RETURN_NOT_OK(inner_->Erase(object));
  stores_[DivisionFor(object.interval.st)].Tombstone(object);
  return Status::OK();
}

size_t ScoredIndex::MemoryUsageBytes() const {
  size_t bytes = inner_->MemoryUsageBytes() +
                 division_starts_.capacity() * sizeof(Time);
  for (const ScoreBlockStore& store : stores_) {
    bytes += store.MemoryUsageBytes();
  }
  return bytes;
}

std::optional<QueryCounters> ScoredIndex::Stats() const {
  QueryCounters total = counters_.Merged();
  if (auto inner = inner_->Stats()) total += *inner;
  return total;
}

void ScoredIndex::ResetStats() {
  counters_.Reset();
  inner_->ResetStats();
}

void ScoredIndex::EnableStats(bool enabled) {
  counters_.set_enabled(enabled);
  inner_->EnableStats(enabled);
}

IndexKind ScoredIndex::Kind() const {
  return options_.base == IndexKind::kTif ? IndexKind::kScoredTif
                                          : IndexKind::kScoredIrHint;
}

Status ScoredIndex::SaveTo(SnapshotWriter* writer) const {
  IRHINT_RETURN_NOT_OK(inner_->SaveTo(writer));
  writer->BeginSection(kSectionRank);
  writer->WriteU32(static_cast<uint32_t>(stores_.size()));
  writer->WriteU32(built_ ? 1 : 0);
  writer->WriteVector(division_starts_);
  for (const ScoreBlockStore& store : stores_) store.SaveTo(writer);
  return writer->EndSection();
}

Status ScoredIndex::LoadFrom(SnapshotReader* reader) {
  IRHINT_RETURN_NOT_OK(inner_->LoadFrom(reader));
  auto cursor = reader->OpenSection(kSectionRank);
  IRHINT_RETURN_NOT_OK(cursor.status());
  uint32_t ndiv = 0;
  uint32_t built = 0;
  IRHINT_RETURN_NOT_OK(cursor->ReadU32(&ndiv));
  IRHINT_RETURN_NOT_OK(cursor->ReadU32(&built));
  if (ndiv == 0 || ndiv > kMaxDivisions) {
    return Status::Corruption("rank section has implausible division count");
  }
  std::vector<Time> starts;
  IRHINT_RETURN_NOT_OK(cursor->ReadVector(&starts));
  if (starts.size() != ndiv || starts[0] != 0) {
    return Status::Corruption("rank section division starts malformed");
  }
  for (size_t i = 1; i < starts.size(); ++i) {
    if (starts[i - 1] >= starts[i]) {
      return Status::Corruption("rank section division starts not sorted");
    }
  }
  std::vector<ScoreBlockStore> stores(ndiv);
  for (ScoreBlockStore& store : stores) {
    IRHINT_RETURN_NOT_OK(store.LoadFrom(&cursor.value()));
  }
  division_starts_ = std::move(starts);
  stores_ = std::move(stores);
  built_ = built != 0;
  return Status::OK();
}

Status ScoredIndex::IntegrityCheck(CheckLevel level) const {
  IRHINT_RETURN_NOT_OK(inner_->IntegrityCheck(level));
  if (stores_.empty() || stores_.size() != division_starts_.size() ||
      division_starts_[0] != 0) {
    return Status::Corruption("scored index division directory malformed");
  }
  for (size_t i = 1; i < division_starts_.size(); ++i) {
    if (division_starts_[i - 1] >= division_starts_[i]) {
      return Status::Corruption("scored index division starts not sorted");
    }
  }
  for (size_t i = 0; i < stores_.size(); ++i) {
    IRHINT_RETURN_NOT_OK(stores_[i].Check(level));
    if (level == CheckLevel::kDeep && !stores_[i].empty() &&
        stores_[i].division_meta().min_st < division_starts_[i]) {
      return Status::Corruption("scored index posting below its division");
    }
  }
  return Status::OK();
}

size_t ScoredIndex::DivisionFor(Time st) const {
  // First boundary strictly above st, minus one (division_starts_[0] is 0).
  size_t lo = 0, hi = division_starts_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (division_starts_[mid] <= st) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo - 1;
}

}  // namespace irhint

// The per-division container of impact-scored postings (DESIGN.md §12).
//
// Layout: a CSR over the division's terms — sorted keys, offsets, one
// contiguous FlatArray of id-sorted ScoredPostings — plus three tiers of
// ScoreBlockMeta (per 64-posting block, per list, per division) that the
// MaxScore traversal prunes against. Live inserts land in a per-term
// delta overlay; the strictly-increasing-id contract (Section 5.5) makes
// core-then-delta one id-sorted sequence. Erases tombstone in place and
// leave the metadata stale-high (conservative, never incorrect).
//
// Concurrency (DESIGN.md §10): none of its own — like every index
// structure, readers may run concurrently with each other but callers
// serialize updates against reads (DurableIndex / ServeEngine provide
// the locking).

#ifndef IRHINT_RANK_SCORE_BLOCK_STORE_H_
#define IRHINT_RANK_SCORE_BLOCK_STORE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/contracts.h"
#include "common/status.h"
#include "core/integrity.h"
#include "data/object.h"
#include "rank/scored_posting.h"
#include "storage/flat_array.h"

namespace irhint {

class SnapshotWriter;
class SectionCursor;

// Keepalive for mmap-backed FlatArrays: the owning ScoredIndex's
// storage_keepalive_, one level up (irhint-view-lifetime contract).
class IRHINT_KEEPALIVE_EXTERNAL ScoreBlockStore {
 public:
  /// \brief Zero-copy handle to one term's postings: the immutable core
  /// span with its block metadata, the delta overlay span, and the
  /// per-span bounds. Valid until the next mutation of the store.
  struct ListRef {
    const ScoredPosting* core = nullptr;
    size_t core_len = 0;
    const ScoreBlockMeta* blocks = nullptr;
    size_t block_count = 0;
    const ScoredPosting* delta = nullptr;
    size_t delta_len = 0;
    ScoreBlockMeta core_meta;
    ScoreBlockMeta delta_meta;

    size_t total_len() const { return core_len + delta_len; }
    /// \brief Upper bound on any single posting's impact in this list.
    uint16_t max_impact() const {
      return core_meta.max_impact > delta_meta.max_impact
                 ? core_meta.max_impact
                 : delta_meta.max_impact;
    }
    /// \brief True iff no posting of the list can overlap `q`.
    bool MissesInterval(const Interval& q) const {
      return core_meta.MissesInterval(q) && delta_meta.MissesInterval(q);
    }
  };

  /// \brief Bulk-build the core CSR from per-term id-sorted postings,
  /// replacing any current contents. Computes all metadata tiers.
  void Assemble(const std::map<ElementId, std::vector<ScoredPosting>>& lists);

  /// \brief Append one live posting to the term's delta overlay. The
  /// caller guarantees posting.id exceeds every id already in the list.
  void Append(ElementId term, const ScoredPosting& posting);

  /// \brief Tombstone the object's posting under each of its elements
  /// (core postings are flagged in place, materializing a mmap view on
  /// first use; metadata stays stale-high).
  void Tombstone(const Object& object);

  /// \brief Locate a term's postings; false if the division has none.
  bool FindList(ElementId term, ListRef* out) const;

  /// \brief Conservative bounds over every posting in the division.
  const ScoreBlockMeta& division_meta() const { return division_meta_; }

  /// \brief Core + delta postings, tombstones included.
  size_t posting_count() const;

  bool empty() const { return posting_count() == 0; }

  size_t MemoryUsageBytes() const;

  /// \brief Append the store's fields to the writer's open section. The
  /// delta overlay is merged into the core and tombstones are dropped
  /// (compaction), so a loaded store is always pure CSR.
  void SaveTo(SnapshotWriter* writer) const;

  /// \brief Decode the fields written by SaveTo. Validates every shape
  /// invariant the query paths index by before accepting the data; any
  /// malformed input yields Corruption, never a crash.
  IRHINT_UNTRUSTED Status LoadFrom(SectionCursor* cursor);

  /// \brief Structural audit: kQuick re-checks the CSR shapes, kDeep
  /// additionally verifies per-list id-sortedness, that every metadata
  /// tier covers its live postings, and that each live posting's impact
  /// matches the pure impact function.
  Status Check(CheckLevel level) const;

 private:
  struct DeltaList {
    std::vector<ScoredPosting> postings;
    ScoreBlockMeta meta;
  };

  Status CheckShapes() const;

  // Core CSR: keys_ sorted; list i occupies postings_[offsets_[i],
  // offsets_[i+1]) and blocks_[block_offsets_[i], block_offsets_[i+1]).
  FlatArray<ElementId> keys_;
  FlatArray<uint64_t> offsets_;
  FlatArray<ScoredPosting> postings_;
  FlatArray<uint64_t> block_offsets_;
  FlatArray<ScoreBlockMeta> blocks_;
  FlatArray<ScoreBlockMeta> list_meta_;

  // Live-insert overlay, one id-sorted run per term.
  std::map<ElementId, DeltaList> delta_;

  ScoreBlockMeta division_meta_;
};

}  // namespace irhint

#endif  // IRHINT_RANK_SCORE_BLOCK_STORE_H_

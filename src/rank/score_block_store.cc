#include "rank/score_block_store.h"

#include <algorithm>
#include <string>
#include <utility>

#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

namespace irhint {

namespace {

/// \brief Index of the first posting with this id in [begin, begin+n), or
/// n if absent (ids are sorted and unique per list).
size_t LowerBoundById(const ScoredPosting* begin, size_t n, ObjectId id) {
  size_t lo = 0, hi = n;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (begin[mid].id < id) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t BlockCountFor(size_t list_len) {
  return (list_len + kScoreBlockSize - 1) / kScoreBlockSize;
}

}  // namespace

void ScoreBlockStore::Assemble(
    const std::map<ElementId, std::vector<ScoredPosting>>& lists) {
  std::vector<ElementId> keys;
  std::vector<uint64_t> offsets{0};
  std::vector<ScoredPosting> postings;
  std::vector<uint64_t> block_offsets{0};
  std::vector<ScoreBlockMeta> blocks;
  std::vector<ScoreBlockMeta> list_meta;
  division_meta_ = ScoreBlockMeta{};
  delta_.clear();

  size_t total = 0;
  for (const auto& [term, list] : lists) total += list.size();
  postings.reserve(total);
  keys.reserve(lists.size());

  for (const auto& [term, list] : lists) {
    if (list.empty()) continue;
    keys.push_back(term);
    ScoreBlockMeta lmeta;
    for (size_t i = 0; i < list.size(); ++i) {
      if (i % kScoreBlockSize == 0) blocks.emplace_back();
      const ScoredPosting& p = list[i];
      blocks.back().Cover(p);
      lmeta.Cover(p);
      division_meta_.Cover(p);
      postings.push_back(p);
    }
    list_meta.push_back(lmeta);
    offsets.push_back(postings.size());
    block_offsets.push_back(blocks.size());
  }

  keys_ = std::move(keys);
  offsets_ = std::move(offsets);
  postings_ = std::move(postings);
  block_offsets_ = std::move(block_offsets);
  blocks_ = std::move(blocks);
  list_meta_ = std::move(list_meta);
}

void ScoreBlockStore::Append(ElementId term, const ScoredPosting& posting) {
  DeltaList& list = delta_[term];
  list.postings.push_back(posting);
  list.meta.Cover(posting);
  division_meta_.Cover(posting);
}

void ScoreBlockStore::Tombstone(const Object& object) {
  for (ElementId term : object.elements) {
    // Core span first (loaded or assembled ids all precede delta ids).
    size_t lo = 0, hi = keys_.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (keys_[mid] < term) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    bool flagged = false;
    if (lo < keys_.size() && keys_[lo] == term) {
      const size_t begin = static_cast<size_t>(offsets_[lo]);
      const size_t len = static_cast<size_t>(offsets_[lo + 1]) - begin;
      const size_t pos = LowerBoundById(postings_.data() + begin, len,
                                        object.id);
      if (pos < len && postings_[begin + pos].id == object.id) {
        postings_.MutableData()[begin + pos].flags |= kScoredTombstone;
        flagged = true;
      }
    }
    if (!flagged) {
      auto it = delta_.find(term);
      if (it != delta_.end()) {
        std::vector<ScoredPosting>& dl = it->second.postings;
        const size_t pos = LowerBoundById(dl.data(), dl.size(), object.id);
        if (pos < dl.size() && dl[pos].id == object.id) {
          dl[pos].flags |= kScoredTombstone;
        }
      }
    }
  }
}

bool ScoreBlockStore::FindList(ElementId term, ListRef* out) const {
  *out = ListRef{};
  size_t lo = 0, hi = keys_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (keys_[mid] < term) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  bool found = false;
  if (lo < keys_.size() && keys_[lo] == term) {
    const size_t begin = static_cast<size_t>(offsets_[lo]);
    out->core = postings_.data() + begin;
    out->core_len = static_cast<size_t>(offsets_[lo + 1]) - begin;
    const size_t bbegin = static_cast<size_t>(block_offsets_[lo]);
    out->blocks = blocks_.data() + bbegin;
    out->block_count = static_cast<size_t>(block_offsets_[lo + 1]) - bbegin;
    out->core_meta = list_meta_[lo];
    found = true;
  }
  auto it = delta_.find(term);
  if (it != delta_.end() && !it->second.postings.empty()) {
    out->delta = it->second.postings.data();
    out->delta_len = it->second.postings.size();
    out->delta_meta = it->second.meta;
    found = true;
  }
  return found;
}

size_t ScoreBlockStore::posting_count() const {
  size_t n = postings_.size();
  for (const auto& [term, list] : delta_) n += list.postings.size();
  return n;
}

size_t ScoreBlockStore::MemoryUsageBytes() const {
  size_t bytes = keys_.MemoryUsageBytes() + offsets_.MemoryUsageBytes() +
                 postings_.MemoryUsageBytes() +
                 block_offsets_.MemoryUsageBytes() +
                 blocks_.MemoryUsageBytes() + list_meta_.MemoryUsageBytes();
  for (const auto& [term, list] : delta_) {
    bytes += sizeof(DeltaList) + sizeof(std::pair<ElementId, DeltaList>) +
             list.postings.capacity() * sizeof(ScoredPosting);
  }
  return bytes;
}

void ScoreBlockStore::SaveTo(SnapshotWriter* writer) const {
  // Compact on the way out: merge the delta overlay into the core and
  // drop tombstones, so the loaded store is pure CSR with tight metadata.
  std::map<ElementId, std::vector<ScoredPosting>> live;
  for (size_t i = 0; i < keys_.size(); ++i) {
    const size_t begin = static_cast<size_t>(offsets_[i]);
    const size_t end = static_cast<size_t>(offsets_[i + 1]);
    for (size_t p = begin; p < end; ++p) {
      if (!postings_[p].tombstoned()) live[keys_[i]].push_back(postings_[p]);
    }
  }
  for (const auto& [term, list] : delta_) {
    for (const ScoredPosting& p : list.postings) {
      if (!p.tombstoned()) live[term].push_back(p);
    }
  }
  for (auto it = live.begin(); it != live.end();) {
    it = it->second.empty() ? live.erase(it) : std::next(it);
  }

  ScoreBlockStore compact;
  compact.Assemble(live);
  writer->WriteU64(compact.division_meta_.min_st);
  writer->WriteU64(compact.division_meta_.max_end);
  writer->WriteU16(compact.division_meta_.max_impact);
  writer->WriteFlatArray(compact.keys_);
  writer->WriteFlatArray(compact.offsets_);
  writer->WriteFlatArray(compact.postings_);
  writer->WriteFlatArray(compact.block_offsets_);
  writer->WriteFlatArray(compact.blocks_);
  writer->WriteFlatArray(compact.list_meta_);
}

Status ScoreBlockStore::LoadFrom(SectionCursor* cursor) {
  delta_.clear();
  division_meta_ = ScoreBlockMeta{};
  IRHINT_RETURN_NOT_OK(cursor->ReadU64(&division_meta_.min_st));
  IRHINT_RETURN_NOT_OK(cursor->ReadU64(&division_meta_.max_end));
  IRHINT_RETURN_NOT_OK(cursor->ReadU16(&division_meta_.max_impact));
  IRHINT_RETURN_NOT_OK(cursor->ReadFlatArray(&keys_));
  IRHINT_RETURN_NOT_OK(cursor->ReadFlatArray(&offsets_));
  IRHINT_RETURN_NOT_OK(cursor->ReadFlatArray(&postings_));
  IRHINT_RETURN_NOT_OK(cursor->ReadFlatArray(&block_offsets_));
  IRHINT_RETURN_NOT_OK(cursor->ReadFlatArray(&blocks_));
  IRHINT_RETURN_NOT_OK(cursor->ReadFlatArray(&list_meta_));
  return CheckShapes();
}

Status ScoreBlockStore::CheckShapes() const {
  const size_t n = keys_.size();
  if (n == 0) {
    if (!postings_.empty() || !blocks_.empty() || !list_meta_.empty() ||
        offsets_.size() > 1 || block_offsets_.size() > 1) {
      return Status::Corruption("score store: keyless store has payload");
    }
    if (offsets_.size() == 1 && offsets_[0] != 0) {
      return Status::Corruption("score store: nonzero base offset");
    }
    if (block_offsets_.size() == 1 && block_offsets_[0] != 0) {
      return Status::Corruption("score store: nonzero base block offset");
    }
    return Status::OK();
  }
  if (offsets_.size() != n + 1 || block_offsets_.size() != n + 1 ||
      list_meta_.size() != n) {
    return Status::Corruption("score store: directory sizes disagree");
  }
  if (offsets_[0] != 0 || block_offsets_[0] != 0) {
    return Status::Corruption("score store: nonzero base offset");
  }
  if (offsets_[n] != postings_.size() || block_offsets_[n] != blocks_.size()) {
    return Status::Corruption("score store: offsets do not cover payload");
  }
  for (size_t i = 0; i < n; ++i) {
    if (i + 1 < n && keys_[i] >= keys_[i + 1]) {
      return Status::Corruption("score store: keys not strictly sorted");
    }
    if (offsets_[i] > offsets_[i + 1] ||
        block_offsets_[i] > block_offsets_[i + 1]) {
      return Status::Corruption("score store: offsets not monotone");
    }
    const size_t len = static_cast<size_t>(offsets_[i + 1] - offsets_[i]);
    if (len == 0) {
      return Status::Corruption("score store: empty list materialized");
    }
    const size_t nblocks =
        static_cast<size_t>(block_offsets_[i + 1] - block_offsets_[i]);
    if (nblocks != BlockCountFor(len)) {
      return Status::Corruption("score store: block count mismatch");
    }
  }
  return Status::OK();
}

Status ScoreBlockStore::Check(CheckLevel level) const {
  IRHINT_RETURN_NOT_OK(CheckShapes());
  if (level == CheckLevel::kQuick) return Status::OK();
  for (size_t i = 0; i < keys_.size(); ++i) {
    const size_t begin = static_cast<size_t>(offsets_[i]);
    const size_t len = static_cast<size_t>(offsets_[i + 1]) - begin;
    const size_t bbegin = static_cast<size_t>(block_offsets_[i]);
    for (size_t p = 0; p < len; ++p) {
      const ScoredPosting& post = postings_[begin + p];
      if (p > 0 && postings_[begin + p - 1].id >= post.id) {
        return Status::Corruption("score store: list ids not sorted");
      }
      if (post.tombstoned()) continue;
      if (post.st > post.end) {
        return Status::Corruption("score store: inverted posting interval");
      }
      if (post.impact != ImpactScore(keys_[i], post.end)) {
        return Status::Corruption("score store: impact mismatch");
      }
      const ScoreBlockMeta& block = blocks_[bbegin + p / kScoreBlockSize];
      for (const ScoreBlockMeta* meta :
           {&block, &list_meta_[i], &division_meta_}) {
        if (meta->min_st > post.st || meta->max_end < post.end ||
            meta->max_impact < post.impact) {
          return Status::Corruption("score store: metadata under-covers");
        }
      }
    }
  }
  ObjectId max_core_id = 0;
  for (size_t p = 0; p < postings_.size(); ++p) {
    if (postings_[p].id > max_core_id) max_core_id = postings_[p].id;
  }
  for (const auto& [term, list] : delta_) {
    for (size_t p = 0; p < list.postings.size(); ++p) {
      const ScoredPosting& post = list.postings[p];
      if (p > 0 && list.postings[p - 1].id >= post.id) {
        return Status::Corruption("score store: delta ids not sorted");
      }
      if (!postings_.empty() && post.id <= max_core_id) {
        return Status::Corruption("score store: delta id not above core");
      }
      if (post.tombstoned()) continue;
      if (post.impact != ImpactScore(term, post.end)) {
        return Status::Corruption("score store: delta impact mismatch");
      }
      for (const ScoreBlockMeta* meta : {&list.meta, &division_meta_}) {
        if (meta->min_st > post.st || meta->max_end < post.end ||
            meta->max_impact < post.impact) {
          return Status::Corruption("score store: delta metadata under-covers");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace irhint

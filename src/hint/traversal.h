// The shared pieces of HINT's hierarchy logic:
//
//  * AssignToPartitions()  — the canonical dyadic cover of an interval's
//    cell span (at most 2 partitions per level), distinguishing originals
//    (interval starts inside the partition) from replicas;
//  * PlanLevel()           — the per-level query plan of the bottom-up range
//    query (Algorithm 2 of the paper): which partitions are relevant and
//    which endpoint comparisons are still required, given the compfirst /
//    complast pruning flags;
//  * check-mode refinement for the in/aft subdivisions.
//
// These are reused verbatim by the standalone interval index (hint.h), by
// the per-term postings HINTs of the IR-first methods (irfirst/tif_hint.h)
// and by both irHINT variants (core/).

#ifndef IRHINT_HINT_TRAVERSAL_H_
#define IRHINT_HINT_TRAVERSAL_H_

#include <cassert>
#include <cstdint>
#include <utility>

namespace irhint {

/// \brief Division of a partition: originals start inside the partition,
/// replicas start before it.
enum class DivisionKind { kOriginals, kReplicas };

/// \brief Which raw endpoint comparisons a division still requires.
///
///  * kBoth      — check q.st <= i.end AND i.st <= q.end
///  * kStartOnly — check q.st <= i.end only
///  * kEndOnly   — check i.st <= q.end only
///  * kNone      — report everything, no comparisons
enum class CheckMode { kBoth, kStartOnly, kEndOnly, kNone };

/// \brief One (level, partition) assignment of an interval.
struct PartitionRef {
  int level;
  uint64_t index;
  bool original;  // true: starts inside the partition; false: replica
};

/// \brief Compute the canonical cover of the cell span [first, last] over an
/// m-level hierarchy and invoke fn(PartitionRef) for each assignment.
///
/// The cover is the standard segment-tree cover: at each level, a partition
/// whose sibling is not fully covered is emitted; at most 2 partitions per
/// level, at most 2(m+1) in total. A partition stores the interval as an
/// original iff the partition contains the interval's first cell.
template <typename Fn>
void AssignToPartitions(int m, uint64_t first, uint64_t last, Fn&& fn) {
  assert(first <= last);
  uint64_t a = first;
  uint64_t b = last;
  for (int level = m; level >= 0; --level) {
    const uint64_t start_prefix = first >> (m - level);
    if (a == b) {
      fn(PartitionRef{level, a, a == start_prefix});
      return;
    }
    if (a & 1) {
      fn(PartitionRef{level, a, a == start_prefix});
      ++a;
    }
    if (!(b & 1)) {
      fn(PartitionRef{level, b, b == start_prefix});
      --b;
    }
    if (a > b) return;
    a >>= 1;
    b >>= 1;
  }
}

/// \brief Query plan for one hierarchy level (Algorithm 2, lines 5-26).
///
/// Relevant partitions at the level are f..l. Replicas are accessed only at
/// the first partition. Check modes for the three distinguished positions
/// are given explicitly; every partition strictly between f and l reports
/// its originals without comparisons (kNone).
struct LevelPlan {
  uint64_t f;                 // first relevant partition
  uint64_t l;                 // last relevant partition
  CheckMode first_originals;
  CheckMode first_replicas;
  CheckMode last_originals;   // only meaningful when l > f
};

/// \brief Tracks the compfirst/complast pruning flags across the bottom-up
/// sweep and materializes the per-level plan.
///
/// Usage:
///   TraversalState state(m, qst_cell, qend_cell);
///   for (int level = m; level >= 0; --level) {
///     LevelPlan plan = state.PlanLevel(level);
///     ... visit partitions f..l per plan ...
///     state.Descend();   // update flags before the next (upper) level
///   }
class TraversalState {
 public:
  TraversalState(int m, uint64_t qst_cell, uint64_t qend_cell)
      : m_(m), qst_cell_(qst_cell), qend_cell_(qend_cell) {}

  LevelPlan PlanLevel(int level) const {
    LevelPlan plan;
    plan.f = qst_cell_ >> (m_ - level);
    plan.l = qend_cell_ >> (m_ - level);
    if (plan.f == plan.l) {
      if (compfirst_ && complast_) {
        plan.first_originals = CheckMode::kBoth;
        plan.first_replicas = CheckMode::kStartOnly;
      } else if (complast_) {
        // compfirst cleared: q.st <= i.end holds for everything here.
        plan.first_originals = CheckMode::kEndOnly;
        plan.first_replicas = CheckMode::kNone;
      } else if (compfirst_) {
        // complast cleared: i.st <= q.end holds for everything here.
        plan.first_originals = CheckMode::kStartOnly;
        plan.first_replicas = CheckMode::kStartOnly;
      } else {
        plan.first_originals = CheckMode::kNone;
        plan.first_replicas = CheckMode::kNone;
      }
      plan.last_originals = CheckMode::kNone;  // unused
    } else {
      // First relevant partition: i.st <= q.end holds by construction
      // because later partitions exist at this level.
      if (compfirst_) {
        plan.first_originals = CheckMode::kStartOnly;
        plan.first_replicas = CheckMode::kStartOnly;
      } else {
        plan.first_originals = CheckMode::kNone;
        plan.first_replicas = CheckMode::kNone;
      }
      // Last relevant partition: q.st <= i.end holds by construction.
      plan.last_originals = complast_ ? CheckMode::kEndOnly : CheckMode::kNone;
    }
    return plan;
  }

  /// \brief Update the pruning flags after processing `level` (Algorithm 2,
  /// lines 23-26).
  void Descend(int level) {
    const uint64_t f = qst_cell_ >> (m_ - level);
    const uint64_t l = qend_cell_ >> (m_ - level);
    if ((f & 1) == 0) compfirst_ = false;
    if ((l & 1) == 1) complast_ = false;
  }

  bool compfirst() const { return compfirst_; }
  bool complast() const { return complast_; }

 private:
  int m_;
  uint64_t qst_cell_;
  uint64_t qend_cell_;
  bool compfirst_ = true;
  bool complast_ = true;
};

/// \brief Refine an originals-division check mode into modes for the
/// O_in / O_aft subdivisions (Section 2.3 "Optimizations").
///
/// Intervals in O_aft end after the partition, so the q.st <= i.end check is
/// never required for them; the i.st <= q.end check carries over.
inline std::pair<CheckMode, CheckMode> SplitOriginalsMode(CheckMode mode) {
  switch (mode) {
    case CheckMode::kBoth:
      return {CheckMode::kBoth, CheckMode::kEndOnly};
    case CheckMode::kStartOnly:
      return {CheckMode::kStartOnly, CheckMode::kNone};
    case CheckMode::kEndOnly:
      return {CheckMode::kEndOnly, CheckMode::kEndOnly};
    case CheckMode::kNone:
      return {CheckMode::kNone, CheckMode::kNone};
  }
  return {CheckMode::kNone, CheckMode::kNone};
}

/// \brief Refine a replicas-division check mode into modes for the
/// R_in / R_aft subdivisions.
///
/// Replicas are only accessed at the first relevant partition and only ever
/// need the q.st <= i.end check (they start before the partition, hence
/// before q.end); R_aft intervals also end after the partition, so they need
/// no checks at all.
inline std::pair<CheckMode, CheckMode> SplitReplicasMode(CheckMode mode) {
  switch (mode) {
    case CheckMode::kBoth:
    case CheckMode::kStartOnly:
      return {CheckMode::kStartOnly, CheckMode::kNone};
    case CheckMode::kEndOnly:
    case CheckMode::kNone:
      return {CheckMode::kNone, CheckMode::kNone};
  }
  return {CheckMode::kNone, CheckMode::kNone};
}

}  // namespace irhint

#endif  // IRHINT_HINT_TRAVERSAL_H_

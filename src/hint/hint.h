// HINT — the Hierarchical Index for iNTervals (Christodoulou, Bouros,
// Mamoulis; SIGMOD 2022 / VLDBJ 2024), re-implemented from the published
// algorithms.
//
// The domain is uniformly divided into 2^l partitions at each level
// l = 0..m. Every interval is assigned to the canonical dyadic cover of its
// discretized span (<= 2 partitions per level); within a partition it is an
// *original* if it starts there, a *replica* otherwise. Range queries sweep
// the hierarchy bottom-up, and the compfirst/complast flags confine raw
// endpoint comparisons to at most four partitions overall (Algorithm 2 of
// the temporal-IR paper).
//
// Implemented optimizations (Section 2.3):
//  * subdivisions  — O_in / O_aft / R_in / R_aft, each with its own check
//    modes (always on);
//  * beneficial sorting — O_in/O_aft by interval start, R_in by descending
//    end, enabling early-exit scans (HintSortMode::kBeneficial); a by-id
//    sort (kById) instead supports merge-style intersections (Algorithm 4);
//  * storage optimization — drop the endpoint arrays a subdivision never
//    compares against (off by default, matching the paper's experimental
//    configuration);
//  * cache-miss optimization — ids and endpoints live in separate parallel
//    arrays (structure-of-arrays), so comparison-free scans touch only ids;
//  * skewness & sparsity — non-empty partitions are stored sparsely per
//    level (see sparse_levels.h).

#ifndef IRHINT_HINT_HINT_H_
#define IRHINT_HINT_HINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/contracts.h"
#include "common/status.h"
#include "core/integrity.h"
#include "hint/allen.h"
#include "data/object.h"
#include "hint/domain.h"
#include "hint/sparse_levels.h"
#include "hint/traversal.h"
#include "storage/flat_array.h"

namespace irhint {

class SectionCursor;
class SnapshotWriter;

/// \brief Endpoint type used inside index storage. All evaluated domains
/// (up to 512M time points) fit in 32 bits; Build() validates this.
using StoredTime = uint32_t;

/// \brief An (id, interval) pair — HINT's input record.
struct IntervalRecord {
  ObjectId id = 0;
  Interval interval;
};

/// \brief How subdivision contents are ordered.
enum class HintSortMode {
  kNone,        ///< insertion order; every scan checks both endpoints
  kBeneficial,  ///< per-subdivision orders enabling early-exit scans
  kById,        ///< by object id, enabling merge-style intersections
};

struct HintOptions {
  /// Number of bits m; the hierarchy has m+1 levels and 2^m bottom cells.
  int num_bits = 10;
  HintSortMode sort_mode = HintSortMode::kBeneficial;
  /// Keep only the endpoint arrays each subdivision actually compares
  /// against. Off by default to match the paper's configuration.
  bool storage_optimization = false;
};

/// \brief Per-level structure statistics (introspection / ablations).
struct HintLevelStats {
  int level = 0;
  size_t partitions = 0;  // non-empty
  size_t originals = 0;   // entries in O_in + O_aft
  size_t replicas = 0;    // entries in R_in + R_aft
};

/// \brief Whole-index statistics.
struct HintStats {
  std::vector<HintLevelStats> levels;
  size_t total_entries = 0;    // incl. replicas and tombstones
  size_t overflow_entries = 0;
  size_t tombstones = 0;
  /// Average number of stored copies per distinct interval (>= 1).
  double replication_factor = 0.0;
};

/// \brief The HINT interval index.
class HintIndex {
 public:
  HintIndex() = default;

  /// \brief Build from a batch of records over the raw domain
  /// [0, domain_end].
  Status Build(const std::vector<IntervalRecord>& records, Time domain_end,
               const HintOptions& options);

  /// \brief Report ids of all live intervals overlapping q (Algorithm 2).
  /// Output order is unspecified; each id appears exactly once.
  void RangeQuery(const Interval& q, std::vector<ObjectId>* out) const;

  /// \brief Algorithm 3 inner loop: like RangeQuery, but report only ids
  /// contained in `sorted_candidates` (checked by binary search).
  void RangeQueryFiltered(const Interval& q,
                          const std::vector<ObjectId>& sorted_candidates,
                          std::vector<ObjectId>* out) const;

  /// \brief Algorithm 4 inner loop: intersect `sorted_candidates` with the
  /// relevant divisions by id-merge, performing no temporal comparisons.
  /// Requires sort_mode == kById. Output is the union over divisions (each
  /// candidate appears at most once); order is unspecified.
  void IntersectRelevant(const Interval& q,
                         const std::vector<ObjectId>& sorted_candidates,
                         std::vector<ObjectId>* out) const;

  /// \brief Report ids of all live intervals standing in `relation` to q
  /// (Allen's interval algebra; see hint/allen.h for the exact closed-
  /// interval semantics). Uses the tightest candidate range the relation
  /// permits, then filters with the exact predicate. Each id is reported
  /// exactly once. Fails with NotSupported when the storage optimization
  /// dropped the endpoint arrays the filter needs.
  Status AllenQuery(AllenRelation relation, const Interval& q,
                    std::vector<ObjectId>* out) const;

  /// \brief Insert one interval. Intervals that extend past the domain
  /// declared at Build time land in a small linearly scanned overflow store
  /// (the time-expanding extension of LIT [21]: time grows at the end, so
  /// overflow holds only the most recent insertions); Rebuild the index to
  /// fold the overflow back into the hierarchy.
  Status Insert(ObjectId id, const Interval& interval);

  /// \brief Tombstone all entries of (id, interval). The interval must be
  /// the one the id was inserted with (it determines the partitions).
  Status Erase(ObjectId id, const Interval& interval);

  /// \brief Heap footprint of the index in bytes.
  size_t MemoryUsageBytes() const;

  /// \brief Total stored entries, including replicas and tombstones.
  size_t NumEntries() const { return num_entries_; }

  size_t NumTombstones() const { return num_tombstones_; }
  size_t NumOverflow() const { return overflow_.size(); }

  /// \brief Structure statistics; `distinct_intervals` (if non-zero) sets
  /// the denominator of the replication factor.
  HintStats Stats(size_t distinct_intervals = 0) const;
  int m() const { return options_.num_bits; }
  const HintOptions& options() const { return options_; }
  const DomainMapper& mapper() const { return mapper_; }

  /// \brief Live (non-tombstoned) entries in the original subdivisions plus
  /// the live overflow records. Every interval has exactly one original
  /// assignment, so this equals the number of live intervals in the index.
  size_t LiveOriginalCount() const;

  /// \brief Audit the hierarchy's structural invariants (DESIGN.md §9).
  /// kQuick: option ranges, level directory (sorted keys < 2^level),
  /// parallel subdivision array shapes, entry-count bookkeeping. kDeep
  /// additionally re-derives the canonical dyadic cover per stored entry
  /// (partition AND subdivision role must match the assignment rule),
  /// verifies the sort-mode orders, endpoint bounds, overflow id order and
  /// the tombstone census. Never crashes on a malformed structure.
  Status IntegrityCheck(CheckLevel level) const;

  /// \brief Serialize into the section currently open on `writer`.
  void SaveTo(SnapshotWriter* writer) const;

  /// \brief Restore from a section cursor, replacing current contents.
  /// Subdivision arrays become zero-copy views on the mmap path.
  IRHINT_UNTRUSTED Status LoadFrom(SectionCursor* cursor);

 private:
  friend struct IntegrityTestPeer;

  // One subdivision: parallel arrays (SoA). Which endpoint arrays are
  // populated depends on the subdivision role and the storage optimization.
  // FlatArrays so snapshot loads can alias the mapping zero-copy; the
  // mapping itself is kept alive by the owning index's
  // storage_keepalive_, one level up (irhint-view-lifetime contract).
  struct IRHINT_KEEPALIVE_EXTERNAL Subdiv {
    FlatArray<ObjectId> ids;
    FlatArray<StoredTime> sts;
    FlatArray<StoredTime> ends;
  };

  enum SubdivRole { kOin = 0, kOaft = 1, kRin = 2, kRaft = 3 };

  struct Partition {
    Subdiv subs[4];
  };

  void Append(Subdiv* sub, SubdivRole role, ObjectId id,
              const Interval& interval);
  void SortSubdiv(Subdiv* sub, SubdivRole role);

  // Scans one subdivision under `mode`, calling emit(id) for every
  // qualifying live entry. Early-exit strategies depend on sort_mode_.
  template <typename Emit>
  void ScanSubdiv(const Subdiv& sub, SubdivRole role, CheckMode mode,
                  const Interval& q, Emit&& emit) const;

  // Dispatches a whole partition according to the level plan.
  template <typename Emit>
  void ScanPartition(const Partition& part, uint64_t j, const LevelPlan& plan,
                     const Interval& q, Emit&& emit) const;

  template <typename Emit>
  void Traverse(const Interval& q, Emit&& emit) const;

  // Duplicate-free sweep over all live entries whose cell span overlaps
  // `range`, emitting raw endpoints: emit(id, st, end). No comparisons are
  // performed; callers apply their own exact predicate. Requires endpoint
  // arrays (no storage optimization).
  template <typename Emit>
  void TraverseEntries(const Interval& range, Emit&& emit) const;

  // Whether the given subdivision keeps start / end arrays.
  bool KeepsStart(SubdivRole role) const;
  bool KeepsEnd(SubdivRole role) const;

  HintOptions options_;
  DomainMapper mapper_;
  SparseLevels<Partition> levels_;
  // Intervals extending past the declared domain (id-ordered; tombstoned
  // in place like everything else).
  std::vector<IntervalRecord> overflow_;
  size_t num_entries_ = 0;
  size_t num_tombstones_ = 0;
  // Largest interval end ever indexed (>= mapper domain end); bounds the
  // AFTER candidate range so overflow entries are not missed.
  Time max_time_ = 0;
};

}  // namespace irhint

#endif  // IRHINT_HINT_HINT_H_

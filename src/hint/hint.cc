#include "hint/hint.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

namespace irhint {

namespace {

// Applies permutation `perm` to array v (if non-empty).
template <typename T>
void ApplyPermutation(const std::vector<uint32_t>& perm, FlatArray<T>* v) {
  if (v->empty()) return;
  std::vector<T> tmp(v->size());
  for (size_t i = 0; i < perm.size(); ++i) tmp[i] = (*v)[perm[i]];
  *v = std::move(tmp);
}

// Binary search for id in a sorted candidate vector.
bool InCandidates(const std::vector<ObjectId>& cand, ObjectId id) {
  return std::binary_search(cand.begin(), cand.end(), id);
}

}  // namespace

bool HintIndex::KeepsStart(SubdivRole role) const {
  if (!options_.storage_optimization) return true;
  return role == kOin || role == kOaft;
}

bool HintIndex::KeepsEnd(SubdivRole role) const {
  if (!options_.storage_optimization) return true;
  return role == kOin || role == kRin;
}

void HintIndex::Append(Subdiv* sub, SubdivRole role, ObjectId id,
                       const Interval& interval) {
  const StoredTime st = static_cast<StoredTime>(interval.st);
  const StoredTime end = static_cast<StoredTime>(interval.end);
  size_t pos = sub->ids.size();
  switch (options_.sort_mode) {
    case HintSortMode::kNone:
      break;
    case HintSortMode::kById:
      // Object ids arrive in increasing order (see Section 5.5 of the
      // paper); appending keeps the subdivision id-sorted.
      break;
    case HintSortMode::kBeneficial:
      if (role == kOin || role == kOaft) {
        // Sorted by interval start, ascending.
        pos = static_cast<size_t>(
            std::upper_bound(sub->sts.begin(), sub->sts.end(), st) -
            sub->sts.begin());
      } else if (role == kRin) {
        // Sorted by interval end, descending.
        pos = static_cast<size_t>(
            std::upper_bound(sub->ends.begin(), sub->ends.end(), end,
                             std::greater<StoredTime>()) -
            sub->ends.begin());
      }
      break;
  }
  sub->ids.insert(pos, id);
  if (KeepsStart(role)) sub->sts.insert(pos, st);
  if (KeepsEnd(role)) sub->ends.insert(pos, end);
  ++num_entries_;
}

void HintIndex::SortSubdiv(Subdiv* sub, SubdivRole role) {
  const size_t n = sub->ids.size();
  if (n <= 1) return;
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  switch (options_.sort_mode) {
    case HintSortMode::kNone:
      return;
    case HintSortMode::kById:
      std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
        return sub->ids[a] < sub->ids[b];
      });
      break;
    case HintSortMode::kBeneficial:
      if (role == kOin || role == kOaft) {
        std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
          return sub->sts[a] < sub->sts[b];
        });
      } else if (role == kRin) {
        std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
          return sub->ends[a] > sub->ends[b];
        });
      } else {
        return;  // R_aft: no beneficial order exists
      }
      break;
  }
  ApplyPermutation(perm, &sub->ids);
  ApplyPermutation(perm, &sub->sts);
  ApplyPermutation(perm, &sub->ends);
}

Status HintIndex::Build(const std::vector<IntervalRecord>& records,
                        Time domain_end, const HintOptions& options) {
  if (options.num_bits < 0 || options.num_bits > 30) {
    return Status::InvalidArgument("num_bits must be in [0, 30]");
  }
  if (domain_end >= std::numeric_limits<StoredTime>::max()) {
    return Status::InvalidArgument(
        "domain exceeds 32-bit stored endpoints");
  }
  options_ = options;
  mapper_ = DomainMapper(domain_end, options.num_bits);
  levels_.Init(options.num_bits);
  num_entries_ = 0;
  num_tombstones_ = 0;

  const int m = options.num_bits;
  for (const IntervalRecord& rec : records) {
    if (rec.interval.end > domain_end) {
      return Status::OutOfDomain("interval exceeds declared domain");
    }
    uint64_t first, last;
    mapper_.CellSpan(rec.interval, &first, &last);
    // During bulk build we append unsorted and sort once afterwards.
    const HintSortMode saved = options_.sort_mode;
    options_.sort_mode = HintSortMode::kNone;
    AssignToPartitions(m, first, last, [&](const PartitionRef& ref) {
      Partition& part = levels_.FindOrCreate(ref.level, ref.index);
      const bool ends_inside =
          (last >> (m - ref.level)) == ref.index;
      const SubdivRole role =
          ref.original ? (ends_inside ? kOin : kOaft)
                       : (ends_inside ? kRin : kRaft);
      Append(&part.subs[role], role, rec.id, rec.interval);
    });
    options_.sort_mode = saved;
  }

  levels_.ForEachMutable([this](int, uint64_t, Partition& part) {
    for (int role = 0; role < 4; ++role) {
      SortSubdiv(&part.subs[role], static_cast<SubdivRole>(role));
    }
  });
  max_time_ = std::max(max_time_, domain_end);
  return Status::OK();
}

template <typename Emit>
void HintIndex::ScanSubdiv(const Subdiv& sub, SubdivRole role, CheckMode mode,
                           const Interval& q, Emit&& emit) const {
  const size_t n = sub.ids.size();
  const StoredTime qst = static_cast<StoredTime>(q.st);
  const StoredTime qend = static_cast<StoredTime>(
      std::min<Time>(q.end, std::numeric_limits<StoredTime>::max() - 1));
  const bool beneficial = options_.sort_mode == HintSortMode::kBeneficial;

  switch (mode) {
    case CheckMode::kNone:
      for (size_t i = 0; i < n; ++i) {
        if (sub.ids[i] != kTombstoneId) emit(sub.ids[i]);
      }
      break;
    case CheckMode::kStartOnly:  // keep entries with i.end >= q.st
      assert(!sub.ends.empty() || n == 0);
      if (beneficial && role == kRin) {
        // ends sorted descending: stop at the first miss.
        for (size_t i = 0; i < n && sub.ends[i] >= qst; ++i) {
          if (sub.ids[i] != kTombstoneId) emit(sub.ids[i]);
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          if (sub.ends[i] >= qst && sub.ids[i] != kTombstoneId) {
            emit(sub.ids[i]);
          }
        }
      }
      break;
    case CheckMode::kEndOnly:  // keep entries with i.st <= q.end
      assert(!sub.sts.empty() || n == 0);
      if (beneficial && (role == kOin || role == kOaft)) {
        // starts sorted ascending: stop at the first miss.
        for (size_t i = 0; i < n && sub.sts[i] <= qend; ++i) {
          if (sub.ids[i] != kTombstoneId) emit(sub.ids[i]);
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          if (sub.sts[i] <= qend && sub.ids[i] != kTombstoneId) {
            emit(sub.ids[i]);
          }
        }
      }
      break;
    case CheckMode::kBoth:
      assert((!sub.sts.empty() && !sub.ends.empty()) || n == 0);
      if (beneficial && role == kOin) {
        for (size_t i = 0; i < n && sub.sts[i] <= qend; ++i) {
          if (sub.ends[i] >= qst && sub.ids[i] != kTombstoneId) {
            emit(sub.ids[i]);
          }
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          if (sub.sts[i] <= qend && sub.ends[i] >= qst &&
              sub.ids[i] != kTombstoneId) {
            emit(sub.ids[i]);
          }
        }
      }
      break;
  }
}

template <typename Emit>
void HintIndex::ScanPartition(const Partition& part, uint64_t j,
                              const LevelPlan& plan, const Interval& q,
                              Emit&& emit) const {
  CheckMode originals_mode;
  bool scan_replicas = false;
  CheckMode replicas_mode = CheckMode::kNone;
  if (j == plan.f) {
    originals_mode = plan.first_originals;
    scan_replicas = true;
    replicas_mode = plan.first_replicas;
  } else if (j == plan.l) {
    originals_mode = plan.last_originals;
  } else {
    originals_mode = CheckMode::kNone;
  }
  const auto [o_in, o_aft] = SplitOriginalsMode(originals_mode);
  ScanSubdiv(part.subs[kOin], kOin, o_in, q, emit);
  ScanSubdiv(part.subs[kOaft], kOaft, o_aft, q, emit);
  if (scan_replicas) {
    const auto [r_in, r_aft] = SplitReplicasMode(replicas_mode);
    ScanSubdiv(part.subs[kRin], kRin, r_in, q, emit);
    ScanSubdiv(part.subs[kRaft], kRaft, r_aft, q, emit);
  }
}

template <typename Emit>
void HintIndex::Traverse(const Interval& q, Emit&& emit) const {
  if (q.st > q.end) return;
  if (q.st <= mapper_.domain_end()) {
    const int m = options_.num_bits;
    TraversalState state(m, mapper_.Cell(q.st), mapper_.Cell(q.end));
    for (int level = m; level >= 0; --level) {
      const LevelPlan plan = state.PlanLevel(level);
      levels_.ForRange(level, plan.f, plan.l,
                       [&](uint64_t j, const Partition& part) {
                         ScanPartition(part, j, plan, q, emit);
                       });
      state.Descend(level);
    }
  }
  // Overflow: intervals past the declared domain, checked exhaustively.
  for (const IntervalRecord& rec : overflow_) {
    if (rec.id != kTombstoneId && Overlaps(rec.interval, q)) emit(rec.id);
  }
}

void HintIndex::RangeQuery(const Interval& q,
                           std::vector<ObjectId>* out) const {
  Traverse(q, [out](ObjectId id) { out->push_back(id); });
}

void HintIndex::RangeQueryFiltered(
    const Interval& q, const std::vector<ObjectId>& sorted_candidates,
    std::vector<ObjectId>* out) const {
  Traverse(q, [&](ObjectId id) {
    if (InCandidates(sorted_candidates, id)) out->push_back(id);
  });
}

void HintIndex::IntersectRelevant(
    const Interval& q, const std::vector<ObjectId>& sorted_candidates,
    std::vector<ObjectId>* out) const {
  assert(options_.sort_mode == HintSortMode::kById);
  if (q.st > q.end) return;
  const int m = options_.num_bits;
  const uint64_t qst_cell = mapper_.Cell(q.st);
  const uint64_t qend_cell = mapper_.Cell(q.end);

  auto merge = [&](const Subdiv& sub) {
    // Two-pointer id merge; tombstones are skipped in place (their slot
    // keeps the original position, so the live subsequence stays sorted).
    size_t i = 0;
    size_t c = 0;
    const size_t n = sub.ids.size();
    const size_t cn = sorted_candidates.size();
    while (i < n && c < cn) {
      const ObjectId id = sub.ids[i];
      if (id == kTombstoneId) {
        ++i;
        continue;
      }
      if (id < sorted_candidates[c]) {
        ++i;
      } else if (id > sorted_candidates[c]) {
        ++c;
      } else {
        out->push_back(id);
        ++i;
        ++c;
      }
    }
  };

  if (q.st <= mapper_.domain_end()) {
    for (int level = m; level >= 0; --level) {
      const uint64_t f = qst_cell >> (m - level);
      const uint64_t l = qend_cell >> (m - level);
      levels_.ForRange(level, f, l, [&](uint64_t j, const Partition& part) {
        merge(part.subs[kOin]);
        merge(part.subs[kOaft]);
        if (j == f) {
          merge(part.subs[kRin]);
          merge(part.subs[kRaft]);
        }
      });
    }
  }
  // Overflow entries are id-ordered (ids only grow); merge directly. The
  // candidates are temporally qualified, so no endpoint checks are needed.
  size_t i = 0;
  size_t c = 0;
  while (i < overflow_.size() && c < sorted_candidates.size()) {
    const ObjectId id = overflow_[i].id;
    if (id == kTombstoneId) {
      ++i;
    } else if (id < sorted_candidates[c]) {
      ++i;
    } else if (id > sorted_candidates[c]) {
      ++c;
    } else {
      out->push_back(id);
      ++i;
      ++c;
    }
  }
}

Status HintIndex::Insert(ObjectId id, const Interval& interval) {
  if (levels_.empty()) {
    return Status::InvalidArgument("index not built");
  }
  if (interval.st > interval.end) {
    return Status::InvalidArgument("interval start exceeds end");
  }
  if (interval.end >= std::numeric_limits<StoredTime>::max()) {
    return Status::OutOfDomain("interval exceeds 32-bit stored endpoints");
  }
  if (interval.end > mapper_.domain_end()) {
    // Time-expanding extension: the interval outgrows the declared domain;
    // keep it in the overflow store (scanned exhaustively by queries).
    overflow_.push_back(IntervalRecord{id, interval});
    ++num_entries_;
    max_time_ = std::max(max_time_, interval.end);
    return Status::OK();
  }
  const int m = options_.num_bits;
  uint64_t first, last;
  mapper_.CellSpan(interval, &first, &last);
  AssignToPartitions(m, first, last, [&](const PartitionRef& ref) {
    Partition& part = levels_.FindOrCreate(ref.level, ref.index);
    const bool ends_inside = (last >> (m - ref.level)) == ref.index;
    const SubdivRole role = ref.original ? (ends_inside ? kOin : kOaft)
                                         : (ends_inside ? kRin : kRaft);
    Append(&part.subs[role], role, id, interval);
  });
  return Status::OK();
}

Status HintIndex::Erase(ObjectId id, const Interval& interval) {
  if (levels_.empty()) {
    return Status::InvalidArgument("index not built");
  }
  if (interval.end > mapper_.domain_end()) {
    for (IntervalRecord& rec : overflow_) {
      if (rec.id == id) {
        rec.id = kTombstoneId;
        ++num_tombstones_;
        return Status::OK();
      }
    }
    return Status::NotFound("no live entry for id");
  }
  const int m = options_.num_bits;
  uint64_t first, last;
  mapper_.CellSpan(interval, &first, &last);
  size_t tombstoned = 0;
  AssignToPartitions(m, first, last, [&](const PartitionRef& ref) {
    Partition* part = levels_.Find(ref.level, ref.index);
    if (part == nullptr) return;
    const bool ends_inside = (last >> (m - ref.level)) == ref.index;
    const SubdivRole role = ref.original ? (ends_inside ? kOin : kOaft)
                                         : (ends_inside ? kRin : kRaft);
    Subdiv& sub = part->subs[role];
    for (size_t i = 0; i < sub.ids.size(); ++i) {
      if (sub.ids[i] == id) {
        sub.ids.MutableData()[i] = kTombstoneId;
        ++tombstoned;
        break;
      }
    }
  });
  if (tombstoned == 0) {
    return Status::NotFound("no live entry for id");
  }
  num_tombstones_ += tombstoned;
  return Status::OK();
}

template <typename Emit>
void HintIndex::TraverseEntries(const Interval& range, Emit&& emit) const {
  if (range.st > range.end) return;
  if (range.st <= mapper_.domain_end()) {
    const int m = options_.num_bits;
    const uint64_t f_bottom = mapper_.Cell(range.st);
    const uint64_t l_bottom = mapper_.Cell(std::min(range.end,
                                                    mapper_.domain_end()));
    auto scan = [&emit](const Subdiv& sub) {
      for (size_t i = 0; i < sub.ids.size(); ++i) {
        if (sub.ids[i] != kTombstoneId) {
          emit(sub.ids[i], static_cast<Time>(sub.sts[i]),
               static_cast<Time>(sub.ends[i]));
        }
      }
    };
    for (int level = m; level >= 0; --level) {
      const uint64_t f = f_bottom >> (m - level);
      const uint64_t l = l_bottom >> (m - level);
      levels_.ForRange(level, f, l, [&](uint64_t j, const Partition& part) {
        // Originals at every relevant partition; replicas only at the
        // first one. This cannot reach an entry twice even without
        // comparisons: an interval has exactly one original assignment,
        // its cover partitions are pairwise disjoint (so at most one can
        // lie on the first-relevant ancestor chain), and if a replica
        // assignment is on that chain the original partition lies strictly
        // before the query's start cell and is never relevant.
        scan(part.subs[kOin]);
        scan(part.subs[kOaft]);
        if (j == f) {
          scan(part.subs[kRin]);
          scan(part.subs[kRaft]);
        }
      });
    }
  }
  for (const IntervalRecord& rec : overflow_) {
    if (rec.id != kTombstoneId && Overlaps(rec.interval, range)) {
      emit(rec.id, rec.interval.st, rec.interval.end);
    }
  }
}

Status HintIndex::AllenQuery(AllenRelation relation, const Interval& q,
                             std::vector<ObjectId>* out) const {
  out->clear();
  if (levels_.empty()) return Status::InvalidArgument("index not built");
  if (options_.storage_optimization) {
    return Status::NotSupported(
        "AllenQuery needs both endpoint arrays; rebuild without the "
        "storage optimization");
  }
  if (q.st > q.end) return Status::InvalidArgument("inverted query interval");
  Interval range;
  if (!AllenCandidateRange(relation, q, std::max(max_time_,
                                                 mapper_.domain_end()),
                           &range)) {
    return Status::OK();  // provably empty (BEFORE at 0 / AFTER at the end)
  }
  TraverseEntries(range, [&](ObjectId id, Time st, Time end) {
    if (MatchesAllen(relation, Interval(st, end), q)) out->push_back(id);
  });
  return Status::OK();
}

HintStats HintIndex::Stats(size_t distinct_intervals) const {
  HintStats stats;
  stats.levels.resize(static_cast<size_t>(options_.num_bits) + 1);
  for (int level = 0; level <= options_.num_bits; ++level) {
    stats.levels[level].level = level;
  }
  levels_.ForEach([&stats](int level, uint64_t, const Partition& part) {
    HintLevelStats& ls = stats.levels[level];
    ++ls.partitions;
    ls.originals += part.subs[kOin].ids.size() + part.subs[kOaft].ids.size();
    ls.replicas += part.subs[kRin].ids.size() + part.subs[kRaft].ids.size();
  });
  stats.total_entries = num_entries_;
  stats.overflow_entries = overflow_.size();
  stats.tombstones = num_tombstones_;
  if (distinct_intervals > 0) {
    stats.replication_factor = static_cast<double>(num_entries_) /
                               static_cast<double>(distinct_intervals);
  }
  return stats;
}

size_t HintIndex::MemoryUsageBytes() const {
  size_t bytes = levels_.DirectoryBytes();
  bytes += overflow_.capacity() * sizeof(IntervalRecord);
  levels_.ForEach([&bytes](int, uint64_t, const Partition& part) {
    for (const auto& sub : part.subs) {
      bytes += sub.ids.MemoryUsageBytes();
      bytes += sub.sts.MemoryUsageBytes();
      bytes += sub.ends.MemoryUsageBytes();
    }
  });
  return bytes;
}

void HintIndex::SaveTo(SnapshotWriter* writer) const {
  writer->WriteI32(options_.num_bits);
  writer->WriteU8(static_cast<uint8_t>(options_.sort_mode));
  writer->WriteU8(options_.storage_optimization ? 1 : 0);
  writer->WriteU64(mapper_.domain_end());
  writer->WriteU64(max_time_);
  writer->WriteU64(num_entries_);
  writer->WriteU64(num_tombstones_);
  for (int level = 0; level < levels_.num_levels(); ++level) {
    const auto& keys = levels_.keys(level);
    const auto& parts = levels_.parts(level);
    writer->WriteVector(keys);
    for (const Partition& part : parts) {
      for (const Subdiv& sub : part.subs) {
        writer->WriteFlatArray(sub.ids);
        writer->WriteFlatArray(sub.sts);
        writer->WriteFlatArray(sub.ends);
      }
    }
  }
  writer->WriteU64(overflow_.size());
  for (const IntervalRecord& rec : overflow_) {
    writer->WriteU32(rec.id);
    writer->WriteU64(rec.interval.st);
    writer->WriteU64(rec.interval.end);
  }
}

size_t HintIndex::LiveOriginalCount() const {
  size_t live = 0;
  levels_.ForEach([&live](int, uint64_t, const Partition& part) {
    for (int role : {kOin, kOaft}) {
      const Subdiv& sub = part.subs[role];
      for (size_t i = 0; i < sub.ids.size(); ++i) {
        if (sub.ids[i] != kTombstoneId) ++live;
      }
    }
  });
  for (const IntervalRecord& rec : overflow_) {
    if (rec.id != kTombstoneId) ++live;
  }
  return live;
}

Status HintIndex::IntegrityCheck(CheckLevel level) const {
  if (levels_.empty()) {
    // Never built: all bookkeeping must still be zero.
    if (num_entries_ != 0 || num_tombstones_ != 0 || !overflow_.empty()) {
      return Status::Corruption("hint counters nonzero before build");
    }
    return Status::OK();
  }
  if (options_.num_bits < 0 || options_.num_bits > 30) {
    return Status::Corruption("hint num_bits out of range");
  }
  const int m = options_.num_bits;
  if (levels_.num_levels() != m + 1) {
    return Status::Corruption("hint level count does not match num_bits");
  }
  if (max_time_ < mapper_.domain_end()) {
    return Status::Corruption("hint max_time below declared domain");
  }

  // Level directory and parallel-array shapes; tally stored entries.
  size_t stored = 0;
  for (int lvl = 0; lvl <= m; ++lvl) {
    const auto& keys = levels_.keys(lvl);
    const auto& parts = levels_.parts(lvl);
    if (keys.size() != parts.size()) {
      return Status::Corruption("hint level directory shape mismatch");
    }
    for (size_t i = 0; i < keys.size(); ++i) {
      if (i > 0 && keys[i] <= keys[i - 1]) {
        return Status::Corruption("hint partition keys not sorted");
      }
      if (keys[i] >> lvl != 0) {
        return Status::Corruption("hint partition key outside level range");
      }
      for (int role = 0; role < 4; ++role) {
        const Subdiv& sub = parts[i].subs[role];
        const size_t n = sub.ids.size();
        const size_t want_sts =
            KeepsStart(static_cast<SubdivRole>(role)) ? n : 0;
        const size_t want_ends =
            KeepsEnd(static_cast<SubdivRole>(role)) ? n : 0;
        if (sub.sts.size() != want_sts || sub.ends.size() != want_ends) {
          return Status::Corruption("hint subdivision arrays not parallel");
        }
        stored += n;
      }
    }
  }
  stored += overflow_.size();
  if (stored != num_entries_) {
    return Status::Corruption("hint entry count mismatch");
  }
  if (level == CheckLevel::kQuick) return Status::OK();

  // Deep pass: per-entry canonical assignment, sort orders, endpoint
  // bounds and the tombstone census.
  size_t tombstones = 0;
  Status status = Status::OK();
  levels_.ForEach([&](int lvl, uint64_t key, const Partition& part) {
    if (!status.ok()) return;
    for (int role = 0; role < 4; ++role) {
      const Subdiv& sub = part.subs[role];
      const size_t n = sub.ids.size();
      const bool has_st = !sub.sts.empty();
      const bool has_end = !sub.ends.empty();
      ObjectId prev_live_id = 0;
      bool have_live_id = false;
      for (size_t i = 0; i < n; ++i) {
        if (sub.ids[i] == kTombstoneId) {
          ++tombstones;
        } else if (options_.sort_mode == HintSortMode::kById) {
          // Tombstones keep their slot; the live subsequence must stay
          // strictly id-increasing (merge-intersection soundness).
          if (have_live_id && sub.ids[i] <= prev_live_id) {
            status = Status::Corruption("hint by-id subdivision unsorted");
            return;
          }
          prev_live_id = sub.ids[i];
          have_live_id = true;
        }
        if (options_.sort_mode == HintSortMode::kBeneficial && i > 0) {
          if ((role == kOin || role == kOaft) && has_st &&
              sub.sts[i] < sub.sts[i - 1]) {
            status = Status::Corruption("hint originals not start-sorted");
            return;
          }
          if (role == kRin && has_end && sub.ends[i] > sub.ends[i - 1]) {
            status =
                Status::Corruption("hint R_in not end-sorted descending");
            return;
          }
        }
        if (has_st && has_end && sub.sts[i] > sub.ends[i]) {
          status = Status::Corruption("hint entry has inverted interval");
          return;
        }
        if (has_end && sub.ends[i] > mapper_.domain_end()) {
          status = Status::Corruption(
              "hint in-hierarchy entry exceeds declared domain");
          return;
        }
        // Canonical dyadic cover: re-derive the assignment from the stored
        // endpoints and require this exact (level, partition, role).
        if (has_st && has_end) {
          uint64_t first, last;
          mapper_.CellSpan(Interval(sub.sts[i], sub.ends[i]), &first, &last);
          bool matched = false;
          AssignToPartitions(m, first, last, [&](const PartitionRef& ref) {
            if (ref.level != lvl || ref.index != key) return;
            const bool ends_inside = (last >> (m - ref.level)) == ref.index;
            const int expected = ref.original ? (ends_inside ? kOin : kOaft)
                                              : (ends_inside ? kRin : kRaft);
            if (expected == role) matched = true;
          });
          if (!matched) {
            status = Status::Corruption(
                "hint entry stored outside its canonical partition "
                "assignment");
            return;
          }
        } else if (has_st && (role == kOin || role == kOaft)) {
          // Storage optimization dropped the end array: originals must
          // still start inside this partition.
          if (mapper_.Cell(sub.sts[i]) >> (m - lvl) != key) {
            status = Status::Corruption(
                "hint original entry does not start in its partition");
            return;
          }
        } else if (has_end && role == kRin) {
          // R_in keeps only ends: the interval must end inside.
          if (mapper_.Cell(sub.ends[i]) >> (m - lvl) != key) {
            status = Status::Corruption(
                "hint R_in entry does not end in its partition");
            return;
          }
        }
      }
    }
  });
  IRHINT_RETURN_NOT_OK(status);

  // Overflow store: defining property (past the declared domain), id order
  // of the live subsequence (IntersectRelevant merges against it), bounds.
  ObjectId prev_live = 0;
  bool have_live = false;
  for (const IntervalRecord& rec : overflow_) {
    if (rec.id == kTombstoneId) {
      ++tombstones;
    } else {
      if (have_live && rec.id <= prev_live) {
        return Status::Corruption("hint overflow not id-sorted");
      }
      prev_live = rec.id;
      have_live = true;
    }
    if (rec.interval.st > rec.interval.end) {
      return Status::Corruption("hint overflow record has inverted interval");
    }
    if (rec.interval.end <= mapper_.domain_end()) {
      return Status::Corruption(
          "hint overflow record fits the declared domain");
    }
    if (rec.interval.end > max_time_) {
      return Status::Corruption("hint overflow record exceeds max_time");
    }
  }
  if (tombstones != num_tombstones_) {
    return Status::Corruption("hint tombstone count mismatch");
  }
  return Status::OK();
}

Status HintIndex::LoadFrom(SectionCursor* cursor) {
  int32_t num_bits = 0;
  uint8_t sort_mode = 0, storage_opt = 0;
  uint64_t domain_end = 0, max_time = 0, num_entries = 0, num_tombstones = 0;
  IRHINT_RETURN_NOT_OK(cursor->ReadI32(&num_bits));
  IRHINT_RETURN_NOT_OK(cursor->ReadU8(&sort_mode));
  IRHINT_RETURN_NOT_OK(cursor->ReadU8(&storage_opt));
  IRHINT_RETURN_NOT_OK(cursor->ReadU64(&domain_end));
  IRHINT_RETURN_NOT_OK(cursor->ReadU64(&max_time));
  IRHINT_RETURN_NOT_OK(cursor->ReadU64(&num_entries));
  IRHINT_RETURN_NOT_OK(cursor->ReadU64(&num_tombstones));
  if (num_bits < 0 || num_bits > 30 ||
      sort_mode > static_cast<uint8_t>(HintSortMode::kById)) {
    return Status::Corruption("hint snapshot has invalid options");
  }
  options_.num_bits = num_bits;
  options_.sort_mode = static_cast<HintSortMode>(sort_mode);
  options_.storage_optimization = storage_opt != 0;
  mapper_ = DomainMapper(domain_end, num_bits);
  max_time_ = max_time;
  num_entries_ = static_cast<size_t>(num_entries);
  num_tombstones_ = static_cast<size_t>(num_tombstones);
  levels_.Init(num_bits);
  for (int level = 0; level <= num_bits; ++level) {
    std::vector<uint64_t> keys;
    IRHINT_RETURN_NOT_OK(cursor->ReadVector(&keys));
    std::vector<Partition> parts(keys.size());
    for (Partition& part : parts) {
      for (Subdiv& sub : part.subs) {
        IRHINT_RETURN_NOT_OK(cursor->ReadFlatArray(&sub.ids));
        IRHINT_RETURN_NOT_OK(cursor->ReadFlatArray(&sub.sts));
        IRHINT_RETURN_NOT_OK(cursor->ReadFlatArray(&sub.ends));
      }
    }
    levels_.RestoreLevel(level, std::move(keys), std::move(parts));
  }
  uint64_t num_overflow;
  IRHINT_RETURN_NOT_OK(cursor->ReadU64(&num_overflow));
  if (num_overflow > cursor->remaining() / 20) {
    // 20 = bytes per record below; rejects absurd counts up front.
    return Status::Corruption("hint snapshot overflow count out of bounds");
  }
  overflow_.clear();
  overflow_.reserve(static_cast<size_t>(num_overflow));
  for (uint64_t i = 0; i < num_overflow; ++i) {
    IntervalRecord rec;
    IRHINT_RETURN_NOT_OK(cursor->ReadU32(&rec.id));
    IRHINT_RETURN_NOT_OK(cursor->ReadU64(&rec.interval.st));
    IRHINT_RETURN_NOT_OK(cursor->ReadU64(&rec.interval.end));
    overflow_.push_back(rec);
  }
  return Status::OK();
}

}  // namespace irhint

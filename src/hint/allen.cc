#include "hint/allen.h"

namespace irhint {

const char* AllenRelationName(AllenRelation relation) {
  switch (relation) {
    case AllenRelation::kEquals: return "EQUALS";
    case AllenRelation::kStarts: return "STARTS";
    case AllenRelation::kStartedBy: return "STARTED_BY";
    case AllenRelation::kFinishes: return "FINISHES";
    case AllenRelation::kFinishedBy: return "FINISHED_BY";
    case AllenRelation::kMeets: return "MEETS";
    case AllenRelation::kMetBy: return "MET_BY";
    case AllenRelation::kOverlaps: return "OVERLAPS";
    case AllenRelation::kOverlappedBy: return "OVERLAPPED_BY";
    case AllenRelation::kContains: return "CONTAINS";
    case AllenRelation::kDuring: return "DURING";
    case AllenRelation::kBefore: return "BEFORE";
    case AllenRelation::kAfter: return "AFTER";
  }
  return "UNKNOWN";
}

}  // namespace irhint

// Mapping between the raw (application) time domain and HINT's discretized
// [0, 2^m - 1] cell domain.
//
// HINT normalizes every interval into 2^m uniform cells and assigns it to
// the canonical dyadic cover of its cell span. The mapping below is monotone
// (t1 <= t2 implies Cell(t1) <= Cell(t2)), which is what makes the index
// exact even though cells are coarse: partition membership is decided in
// cell space, while the comparisons at the first/last relevant partitions
// always use the raw endpoints.

#ifndef IRHINT_HINT_DOMAIN_H_
#define IRHINT_HINT_DOMAIN_H_

#include <cassert>
#include <cstdint>

#include "data/object.h"

namespace irhint {

/// \brief Monotone discretization of [0, domain_end] into 2^m cells.
class DomainMapper {
 public:
  DomainMapper() = default;

  /// \param domain_end  last raw time point of the domain (inclusive).
  /// \param m           number of bits; the grid has 2^m cells.
  DomainMapper(Time domain_end, int m)
      : domain_size_(domain_end + 1), m_(m), num_cells_(uint64_t{1} << m) {
    assert(m >= 0 && m < 63);
  }

  int m() const { return m_; }
  uint64_t num_cells() const { return num_cells_; }
  Time domain_end() const { return domain_size_ - 1; }

  /// \brief Cell index of raw time t, clamped into [0, 2^m - 1].
  uint64_t Cell(Time t) const {
    if (t >= domain_size_) return num_cells_ - 1;
    // floor(t * 2^m / domain_size); 128-bit to avoid overflow for large
    // domains.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(t) << m_) / domain_size_);
  }

  /// \brief Cell span [first, last] of a raw interval (clamped).
  void CellSpan(const Interval& iv, uint64_t* first, uint64_t* last) const {
    *first = Cell(iv.st);
    *last = Cell(iv.end);
  }

 private:
  Time domain_size_ = 1;
  int m_ = 0;
  uint64_t num_cells_ = 1;
};

}  // namespace irhint

#endif  // IRHINT_HINT_DOMAIN_H_

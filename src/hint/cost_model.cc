#include "hint/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "hint/domain.h"
#include "hint/traversal.h"

namespace irhint {

double EstimateHintQueryCost(const std::vector<IntervalRecord>& records,
                             Time domain_end, int m,
                             const CostModelOptions& options) {
  if (records.empty()) return 0.0;
  // Deterministic subsample: every k-th record.
  const size_t stride =
      std::max<size_t>(1, records.size() / options.max_sample);
  const double scale = static_cast<double>(stride);

  const DomainMapper mapper(domain_end, m);
  std::vector<double> level_entries(static_cast<size_t>(m) + 1, 0.0);
  std::vector<double> level_replicas(static_cast<size_t>(m) + 1, 0.0);
  for (size_t i = 0; i < records.size(); i += stride) {
    uint64_t first, last;
    mapper.CellSpan(records[i].interval, &first, &last);
    AssignToPartitions(m, first, last, [&](const PartitionRef& ref) {
      level_entries[ref.level] += scale;
      if (!ref.original) level_replicas[ref.level] += scale;
    });
  }

  double cost = 0.0;
  for (int level = 0; level <= m; ++level) {
    const double partitions = std::pow(2.0, level);
    // Relevant partitions for a query of the configured extent: the cell
    // span plus the two boundary partitions.
    const double relevant = std::min(
        partitions, options.query_extent_fraction * partitions + 2.0);
    // Originals are scanned in every relevant partition (uniformity
    // assumption); replicas only in the first one.
    const double originals =
        level_entries[level] - level_replicas[level];
    cost += originals * relevant / partitions;
    cost += level_replicas[level] / partitions;
    cost += options.partition_probe_cost * relevant;
  }
  return cost;
}

int ChooseHintBits(const std::vector<IntervalRecord>& records,
                   Time domain_end, const CostModelOptions& options) {
  const int domain_bits = BitWidth(domain_end);
  const int hi = std::min(options.max_bits, domain_bits);
  const int lo = std::min(options.min_bits, hi);
  int best_m = lo;
  double best_cost = -1.0;
  for (int m = lo; m <= hi; ++m) {
    const double cost = EstimateHintQueryCost(records, domain_end, m, options);
    if (best_cost < 0.0 || cost < best_cost) {
      best_cost = cost;
      best_m = m;
    }
  }
  return best_m;
}

}  // namespace irhint

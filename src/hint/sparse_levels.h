// Sparse storage for HINT's hierarchy of partitions.
//
// A dense layout (2^l slots at level l) would waste enormous amounts of
// memory for skewed or sparse data at large m, and iterating empty slots
// would dominate query time for wide query ranges. Instead, each level keeps
// its non-empty partitions in a vector sorted by partition number; range
// queries locate the first relevant partition with a binary search and then
// walk only the non-empty ones — this plays the role of the auxiliary index
// in HINT's skewness & sparsity optimization.

#ifndef IRHINT_HINT_SPARSE_LEVELS_H_
#define IRHINT_HINT_SPARSE_LEVELS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace irhint {

/// \brief m+1 levels of sorted (partition number -> payload P) maps.
template <typename P>
class SparseLevels {
 public:
  void Init(int m) {
    levels_.clear();
    levels_.resize(static_cast<size_t>(m) + 1);
  }

  int num_levels() const { return static_cast<int>(levels_.size()); }
  bool empty() const { return levels_.empty(); }

  /// \brief Payload for partition j at `level`, creating it if absent.
  P& FindOrCreate(int level, uint64_t j) {
    Level& lv = levels_[level];
    const size_t pos = LowerBound(lv, j);
    if (pos < lv.keys.size() && lv.keys[pos] == j) return lv.parts[pos];
    lv.keys.insert(lv.keys.begin() + pos, j);
    lv.parts.insert(lv.parts.begin() + pos, P{});
    return lv.parts[pos];
  }

  /// \brief Payload for partition j at `level`, or nullptr if empty.
  const P* Find(int level, uint64_t j) const {
    const Level& lv = levels_[level];
    const size_t pos = LowerBound(lv, j);
    if (pos < lv.keys.size() && lv.keys[pos] == j) return &lv.parts[pos];
    return nullptr;
  }

  P* Find(int level, uint64_t j) {
    return const_cast<P*>(static_cast<const SparseLevels*>(this)->Find(level, j));
  }

  /// \brief Visit the non-empty partitions with f <= number <= l at `level`;
  /// fn(partition_number, const P&).
  template <typename Fn>
  void ForRange(int level, uint64_t f, uint64_t l, Fn&& fn) const {
    const Level& lv = levels_[level];
    for (size_t pos = LowerBound(lv, f);
         pos < lv.keys.size() && lv.keys[pos] <= l; ++pos) {
      fn(lv.keys[pos], lv.parts[pos]);
    }
  }

  /// \brief Visit every non-empty partition; fn(level, number, const P&).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (int level = 0; level < num_levels(); ++level) {
      const Level& lv = levels_[level];
      for (size_t pos = 0; pos < lv.keys.size(); ++pos) {
        fn(level, lv.keys[pos], lv.parts[pos]);
      }
    }
  }

  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    for (int level = 0; level < num_levels(); ++level) {
      Level& lv = levels_[level];
      for (size_t pos = 0; pos < lv.keys.size(); ++pos) {
        fn(level, lv.keys[pos], lv.parts[pos]);
      }
    }
  }

  /// \brief Total number of non-empty partitions across all levels.
  size_t NumPartitions() const {
    size_t n = 0;
    for (const Level& lv : levels_) n += lv.keys.size();
    return n;
  }

  /// \brief Bytes used by the directory itself (keys), excluding payloads.
  size_t DirectoryBytes() const {
    size_t bytes = 0;
    for (const Level& lv : levels_) {
      bytes += lv.keys.capacity() * sizeof(uint64_t);
    }
    return bytes;
  }

  // -- Serialization hooks -------------------------------------------------

  /// \brief Sorted partition numbers of the non-empty partitions at `level`.
  const std::vector<uint64_t>& keys(int level) const {
    return levels_[level].keys;
  }

  /// \brief Payloads parallel to keys(level).
  const std::vector<P>& parts(int level) const { return levels_[level].parts; }

  /// \brief Replace one level wholesale (snapshot load). `keys` must be
  /// sorted and parallel to `parts`.
  void RestoreLevel(int level, std::vector<uint64_t> keys,
                    std::vector<P> parts) {
    levels_[level].keys = std::move(keys);
    levels_[level].parts = std::move(parts);
  }

 private:
  struct Level {
    std::vector<uint64_t> keys;
    std::vector<P> parts;
  };

  static size_t LowerBound(const Level& lv, uint64_t j) {
    return static_cast<size_t>(
        std::lower_bound(lv.keys.begin(), lv.keys.end(), j) -
        lv.keys.begin());
  }

  std::vector<Level> levels_;
};

}  // namespace irhint

#endif  // IRHINT_HINT_SPARSE_LEVELS_H_
